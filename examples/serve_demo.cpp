// Multi-client service demo: three independent visualization sessions —
// different fields, spot kinds and zoom windows — share one engine runtime
// through the asynchronous SynthesisService, the way a deployment would
// serve many users from one machine.
//
// Each client submits a short animation's worth of frames; the service
// interleaves them (per-session FIFO, round-robin fairness) while the
// runtime's worker pool flows to whichever frame has work. The demo prints
// per-client latency percentiles, queue waits and the cross-session steal
// counters, then writes each client's final frame to a PPM.
//
//   ./serve_demo [--frames=6] [--spots=2500] [--out-prefix=serve_client]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/serial_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "core/synthesis_service.hpp"
#include "field/analytic.hpp"
#include "io/ppm.hpp"
#include "render/image.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 6);
  const auto spot_count = static_cast<std::int64_t>(args.get_int("spots", 2500));
  const std::string prefix = args.get_string("out-prefix", "serve_client");

  // Three clients looking at three different things.
  struct Client {
    const char* name;
    std::unique_ptr<field::VectorField> field;
    core::SynthesisConfig synthesis;
    core::SynthesisService::SessionId session = 0;
    std::vector<core::SpotInstance> spots;
    std::vector<core::SynthesisService::JobTicket> tickets;
    std::vector<util::Stopwatch> watches;
  };
  std::vector<Client> clients(3);

  clients[0].name = "vortex/ellipse";
  clients[0].field = field::analytic::rankine_vortex({0.5, 0.5}, 2.0, 0.15,
                                                     {0.0, 0.0, 1.0, 1.0});
  clients[1].name = "taylor-green/bent";
  clients[1].field = field::analytic::taylor_green(1.0, {0.0, 0.0, 2.0, 2.0});
  clients[2].name = "double-gyre/zoomed";
  clients[2].field = field::analytic::double_gyre(0.1, 0.25, 0.6, 0.0);

  for (std::size_t c = 0; c < clients.size(); ++c) {
    core::SynthesisConfig& config = clients[c].synthesis;
    config.texture_width = 256;
    config.texture_height = 256;
    config.spot_count = spot_count;
    config.spot_radius_px = 7.0;
    config.seed = 42 + c;
    config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  }
  clients[1].synthesis.kind = core::SpotKind::kBent;
  clients[1].synthesis.bent.mesh_cols = 10;
  clients[1].synthesis.bent.mesh_rows = 3;
  clients[1].synthesis.bent.length_px = 24.0;
  // Client 2 browses a magnified window of its field — a different
  // world-to-texture mapping, same service.
  clients[2].synthesis.kind = core::SpotKind::kEllipse;
  clients[2].synthesis.window = field::Rect{0.2, 0.2, 1.0, 0.8};

  core::SynthesisService service({.drivers = 3});
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  for (auto& client : clients) {
    client.session = service.open_session(client.synthesis, dnc);
    util::Rng rng(client.synthesis.seed);
    client.spots = core::make_random_spots(client.field->domain(),
                                           client.synthesis.spot_count, rng);
  }

  // Every client submits its whole animation up front; the service keeps
  // the sessions fair and the runtime keeps the workers busy.
  const util::Stopwatch wall;
  for (int frame = 0; frame < frames; ++frame) {
    for (auto& client : clients) {
      core::SynthesisRequest request;
      request.field = client.field.get();
      request.spots = client.spots;
      request.capture_texture = frame == frames - 1;  // keep the last frame
      client.watches.emplace_back();
      client.tickets.push_back(service.submit(client.session, std::move(request)));
    }
  }

  std::printf("%d clients x %d frames over one runtime (%d drivers, nP=%d "
              "nG=%d per session)\n\n",
              static_cast<int>(clients.size()), frames, 3, dnc.processors,
              dnc.pipes);
  std::printf("%-20s %10s %10s %10s %12s %8s\n", "client", "p50 ms", "p95 ms",
              "wait ms", "x-chunks", "hash");
  for (auto& client : clients) {
    std::vector<double> latency, waits;
    std::int64_t cross = 0;
    std::uint64_t last_hash = 0;
    for (std::size_t t = 0; t < client.tickets.size(); ++t) {
      core::SynthesisResult result = client.tickets[t].result.get();
      latency.push_back(client.watches[t].seconds() * 1e3);
      waits.push_back(result.stats.queue_wait_seconds * 1e3);
      cross += result.stats.cross_session_chunks;
      last_hash = result.content_hash;
      if (result.texture) {
        const std::string out = prefix + "_" +
                                std::to_string(&client - clients.data()) + ".ppm";
        io::write_ppm(out, render::texture_to_image(*result.texture));
      }
    }
    std::printf("%-20s %10.2f %10.2f %10.2f %12lld %08llx\n", client.name,
                percentile(latency, 0.50), percentile(latency, 0.95),
                percentile(waits, 0.50), static_cast<long long>(cross),
                static_cast<unsigned long long>(last_hash & 0xffffffffULL));
  }
  std::printf("\ntotal wall time %.2f s for %d frames; cross-session chunks "
              "count work one client's frames did for another's — the shared "
              "pool in action.\n",
              wall.seconds(), frames * static_cast<int>(clients.size()));
  std::printf("wrote %s_{0,1,2}.ppm (each client's final frame)\n", prefix.c_str());
  return 0;
}
