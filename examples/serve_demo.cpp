// Multi-client streaming demo: three visualization clients — different
// fields, spot kinds and zoom windows — connect to one net::FrameServer
// over a local socket, the way a deployment would serve many users from
// one machine. Unlike an in-process SynthesisService demo, every frame
// here actually crosses a wire: the server streams dirty-tile deltas and
// each client reassembles its framebuffer locally, verified bit-exact
// against the engine's content hash.
//
// Each client advects its spot population along its field between frames
// (small motion per frame), so after the first full frame the server
// transmits only the tiles around moved spots — the delta-vs-full byte
// ratio printed per client is the wire-bandwidth half of the paper's
// temporal-coherence story. The demo prints per-client latency
// percentiles and then writes each client's *received* final frame to a
// PPM.
//
//   ./serve_demo [--frames=6] [--spots=2500] [--out-prefix=serve_client]
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/serial_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "io/ppm.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "render/image.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

struct ClientSetup {
  const char* name = "";
  net::FieldSpec field;
  core::SynthesisConfig synthesis;
};

struct ClientReport {
  std::vector<double> latency_ms;
  std::uint64_t full_bytes = 0;   ///< wire bytes of full frames
  std::uint64_t delta_bytes = 0;  ///< wire bytes of delta frames
  int delta_frames = 0;
  std::uint64_t last_hash = 0;
  render::Framebuffer final_frame;
};

/// One closed-loop client: connect, stream `frames` frames with the spot
/// population advected a small step along the field between submissions.
ClientReport run_client(const std::string& socket_path,
                        const ClientSetup& setup, int frames) {
  ClientReport report;
  net::FrameClient client(socket_path);
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  (void)client.open_session(setup.field, setup.synthesis, dnc);

  const auto field = setup.field.make_field();
  util::Rng rng(setup.synthesis.seed);
  auto spots = core::make_random_spots(field->domain(),
                                       setup.synthesis.spot_count, rng);

  net::ClientSubmitOptions options;
  options.incremental = false;
  // An interactive probe stirring one region: only spots inside the probe
  // disc advect between frames, so after the first full frame the server
  // transmits just the tiles around the probe — local motion is what the
  // delta encoding (and the paper's temporal coherence) pays off on.
  const field::Rect domain = field->domain();
  const field::Vec2 probe{domain.x0 + 0.5 * (domain.x1 - domain.x0),
                          domain.y0 + 0.5 * (domain.y1 - domain.y0)};
  const double probe_radius = 0.15 * (domain.x1 - domain.x0);
  const double step = 0.02;  // advection step per frame, world units
  for (int frame = 0; frame < frames; ++frame) {
    const util::Stopwatch watch;
    (void)client.submit(spots, options);
    const net::FrameClient::FrameResult result = client.await_frame();
    report.latency_ms.push_back(watch.seconds() * 1e3);
    if (result.full) {
      report.full_bytes += result.wire_bytes;
    } else {
      report.delta_bytes += result.wire_bytes;
      ++report.delta_frames;
    }
    report.last_hash = result.content_hash;
    for (auto& spot : spots) {
      const double dx = spot.position.x - probe.x;
      const double dy = spot.position.y - probe.y;
      if (dx * dx + dy * dy > probe_radius * probe_radius) continue;
      const field::Vec2 v = field->sample(spot.position);
      spot.position.x = std::clamp(spot.position.x + v.x * step, domain.x0, domain.x1);
      spot.position.y = std::clamp(spot.position.y + v.y * step, domain.y0, domain.y1);
    }
  }
  report.final_frame = client.framebuffer();  // received, verified pixels
  client.finish_writes();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 6);
  const auto spot_count = static_cast<std::int64_t>(args.get_int("spots", 2500));
  const std::string prefix = args.get_string("out-prefix", "serve_client");

  // Three clients looking at three different things.
  std::vector<ClientSetup> setups(3);
  setups[0].name = "vortex/ellipse";
  setups[0].field.kind = net::FieldSpec::Kind::kRankineVortex;
  setups[0].field.a = 0.5;  // center
  setups[0].field.b = 0.5;
  setups[0].field.c = 2.0;  // strength
  setups[0].field.d = 0.15;  // core radius
  setups[0].field.domain = {0.0, 0.0, 1.0, 1.0};
  setups[1].name = "taylor-green/bent";
  setups[1].field.kind = net::FieldSpec::Kind::kTaylorGreen;
  setups[1].field.a = 1.0;  // amplitude
  setups[1].field.domain = {0.0, 0.0, 2.0, 2.0};
  setups[2].name = "double-gyre/zoomed";
  setups[2].field.kind = net::FieldSpec::Kind::kDoubleGyre;
  setups[2].field.a = 0.1;   // amplitude
  setups[2].field.b = 0.25;  // eps
  setups[2].field.c = 0.6;   // omega
  setups[2].field.d = 0.0;   // t

  for (std::size_t c = 0; c < setups.size(); ++c) {
    core::SynthesisConfig& config = setups[c].synthesis;
    config.texture_width = 256;
    config.texture_height = 256;
    config.spot_count = spot_count;
    config.spot_radius_px = 7.0;
    config.seed = 42 + c;
    config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  }
  setups[1].synthesis.kind = core::SpotKind::kBent;
  setups[1].synthesis.bent.mesh_cols = 10;
  setups[1].synthesis.bent.mesh_rows = 3;
  setups[1].synthesis.bent.length_px = 24.0;
  // Client 2 browses a magnified window of its field — a different
  // world-to-texture mapping, same server.
  setups[2].synthesis.kind = core::SpotKind::kEllipse;
  setups[2].synthesis.window = field::Rect{0.2, 0.2, 1.0, 0.8};

  const std::string socket_path = prefix + ".sock";
  net::FrameServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.service.drivers = 3;
  server_options.wire_tiles = 192;
  net::FrameServer server(server_options);

  const util::Stopwatch wall;
  std::vector<ClientReport> reports(setups.size());
  {
    std::vector<std::jthread> threads;
    threads.reserve(setups.size());
    for (std::size_t c = 0; c < setups.size(); ++c) {
      threads.emplace_back([&, c] {
        reports[c] = run_client(socket_path, setups[c], frames);
      });
    }
  }
  const double wall_seconds = wall.seconds();
  server.stop();
  std::remove(socket_path.c_str());

  std::printf("%d clients x %d frames over one FrameServer (%d drivers, "
              "dirty-tile deltas on the wire)\n\n",
              static_cast<int>(setups.size()), frames, 3);
  std::printf("%-20s %10s %10s %12s %12s %8s\n", "client", "p50 ms", "p95 ms",
              "delta/full", "delta KiB", "hash");
  for (std::size_t c = 0; c < setups.size(); ++c) {
    const ClientReport& r = reports[c];
    // Mean delta frame bytes over the (one) full frame's bytes: the wire
    // compression the spot diff bought for this client's motion rate.
    const double ratio =
        (r.delta_frames > 0 && r.full_bytes > 0)
            ? (static_cast<double>(r.delta_bytes) / r.delta_frames) /
                  static_cast<double>(r.full_bytes)
            : 1.0;
    std::printf("%-20s %10.2f %10.2f %12.3f %12.1f %08llx\n", setups[c].name,
                util::percentile(r.latency_ms, 0.50),
                util::percentile(r.latency_ms, 0.95), ratio,
                static_cast<double>(r.delta_bytes) / 1024.0,
                static_cast<unsigned long long>(r.last_hash & 0xffffffffULL));
    const std::string out = prefix + "_" + std::to_string(c) + ".ppm";
    io::write_ppm(out, render::texture_to_image(r.final_frame));
  }
  std::printf("\ntotal wall time %.2f s for %d frames; every pixel above "
              "crossed the socket as a verified tile payload.\n",
              wall_seconds, frames * static_cast<int>(setups.size()));
  std::printf("wrote %s_{0,1,2}.ppm (each client's final received frame)\n",
              prefix.c_str());
  return 0;
}
