// Slicing a 3D data set — "the data used is a slice from the three
// dimensional data set" (both paper applications).
//
// Builds a 3D ABC flow volume, extracts a stack of z-slices, synthesizes a
// spot-noise texture for each (the browsing pattern: pick a plane, look at
// it, move on), and writes the stack as PPM images plus one zoomed window
// re-synthesized at full resolution.
//
//   ./volume_slices [--slices=4] [--outdir=.]
#include <iostream>
#include <numbers>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/volume.hpp"
#include "io/ppm.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int slices = args.get_int("slices", 4);
  const std::string outdir = args.get_string("outdir", ".");

  // The standard analytic 3D flow with chaotic streamlines.
  const auto volume = field::analytic3d::abc_flow(1.0, std::sqrt(2.0 / 3.0),
                                                  std::sqrt(1.0 / 3.0), 64);

  core::SynthesisConfig config;
  config.spot_count = 4000;
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 16;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 28.0;
  config.spot_radius_px = 4.0;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  core::DncConfig dnc;
  dnc.processors = args.get_int("processors", 4);
  dnc.pipes = args.get_int("pipes", 2);
  core::DncSynthesizer synth(config, dnc);

  const double two_pi = 2.0 * std::numbers::pi;
  for (int s = 0; s < slices; ++s) {
    const double z = two_pi * (s + 0.5) / slices;
    const auto slice = field::extract_slice(volume, field::SliceAxis::kZ, z, 64, 64);
    util::Rng rng(config.seed + static_cast<std::uint64_t>(s));
    const auto spots = core::make_random_spots(slice.domain(), config.spot_count, rng);
    const auto stats = synth.synthesize(slice, spots);
    render::Framebuffer texture = synth.texture();
    core::normalize_contrast(texture);
    const std::string path = outdir + "/abc_slice_" + std::to_string(s) + ".ppm";
    io::write_ppm(path, render::texture_to_image(texture));
    std::cout << "wrote " << path << " (z = " << z << ", "
              << stats.frame_seconds * 1e3 << " ms)\n";
  }

  // Zoom: re-synthesize the central quarter of the mid-slice at the full
  // 512x512 — magnification with fresh detail, not pixel stretching.
  {
    const auto slice =
        field::extract_slice(volume, field::SliceAxis::kZ, std::numbers::pi, 64, 64);
    auto zoom_config = config;
    zoom_config.window =
        field::Rect{two_pi * 0.375, two_pi * 0.375, two_pi * 0.625, two_pi * 0.625};
    core::DncSynthesizer zoom_synth(zoom_config, dnc);
    util::Rng rng(config.seed);
    // Seed spots inside the window only: off-window spots would clip away.
    const auto spots =
        core::make_random_spots(*zoom_config.window, config.spot_count, rng);
    zoom_synth.synthesize(slice, spots);
    render::Framebuffer texture = zoom_synth.texture();
    core::normalize_contrast(texture);
    io::write_ppm(outdir + "/abc_slice_zoom.ppm", render::texture_to_image(texture));
    std::cout << "wrote " << outdir << "/abc_slice_zoom.ppm (4x window)\n";
  }
  return 0;
}
