// Quickstart: synthesize one spot-noise texture of a vortex and write it to
// a PPM image — the smallest end-to-end use of the public API.
//
//   ./quickstart [--out=quickstart.ppm]
#include <iostream>

#include "core/dnc_synthesizer.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "io/ppm.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);

  // 1. A vector field. Any VectorField works: analytic, grid-sampled, or a
  //    live simulation. Here: a Rankine vortex.
  const auto f = field::analytic::rankine_vortex(
      /*center=*/{0.5, 0.5}, /*strength=*/2.0, /*core_radius=*/0.15,
      /*domain=*/{0.0, 0.0, 1.0, 1.0});

  // 2. What the texture should look like: 512x512, ellipse spots stretched
  //    along the local flow.
  core::SynthesisConfig config;
  config.spot_count = 4000;
  config.spot_radius_px = 8.0;
  config.kind = core::SpotKind::kEllipse;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);

  // 3. How to generate it: a divide-and-conquer engine with 4 processors
  //    feeding 2 simulated graphics pipes.
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  core::DncSynthesizer synthesizer(config, dnc);

  // 4. Spots at random positions (animate by advecting a ParticleSystem
  //    instead — see the smog_steering example).
  util::Rng rng(config.seed);
  const auto spots = core::make_random_spots(f->domain(), config.spot_count, rng);

  const core::FrameStats stats = synthesizer.synthesize(*f, spots);

  // 5. Tone-map the float texture and save it.
  const std::string out = args.get_string("out", "quickstart.ppm");
  io::write_ppm(out, render::texture_to_image(synthesizer.texture()));

  std::cout << "wrote " << out << "\n"
            << "  spots:        " << stats.spots << "\n"
            << "  frame time:   " << stats.frame_seconds * 1e3 << " ms ("
            << stats.textures_per_second() << " textures/s)\n"
            << "  genP (CPU):   " << stats.genP_seconds * 1e3 << " ms\n"
            << "  genT (pipes): " << stats.genT_seconds * 1e3 << " ms\n"
            << "  gather:       " << stats.gather_seconds * 1e3 << " ms\n";
  return 0;
}
