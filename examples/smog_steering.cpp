// The paper's §5.1 scenario: computational steering of a smog prediction
// model with the wind field shown as animated spot noise and the pollutant
// superimposed in color (figure 6).
//
// The run simulates a steering session: the model advances in half-hour
// steps while the "user" doubles one city's emissions mid-run and turns the
// wind; every frame is synthesized with the divide-and-conquer engine from
// the live wind field. A few key frames are written as PPM images.
//
//   ./smog_steering [--frames=24] [--processors=4] [--pipes=2] [--outdir=.]
#include <iostream>

#include "core/animator.hpp"
#include "core/dnc_synthesizer.hpp"
#include "core/serial_synthesizer.hpp"
#include "io/ppm.hpp"
#include "render/overlay.hpp"
#include "sim/smog_model.hpp"
#include "util/cli.hpp"

namespace {

using namespace dcsn;

// Fig. 6 composited frame: spot-noise wind texture, rainbow pollutant
// overlay, coastline-like polyline (see DESIGN.md: procedural substitution
// for the Europe map).
render::Image compose_frame(const render::Framebuffer& texture,
                            const sim::SmogModel& model) {
  render::Image img = render::texture_to_image(texture);
  const render::WorldToImage mapping(model.wind().domain(), img.width(), img.height());

  const auto& ozone = model.concentration(sim::Species::kOzone);
  const auto [lo, hi] = ozone.min_max();
  if (hi > lo) {
    render::overlay_scalar(
        img, mapping, [&](field::Vec2 p) { return ozone.sample(p); }, lo, hi,
        render::ColormapKind::kRainbow,
        [](double t) { return 0.55 * t; });  // faint where concentration is low
  }

  // Procedural "coastline": a fixed-seed meandering polyline.
  std::vector<field::Vec2> coast;
  const field::Rect d = model.wind().domain();
  util::Rng rng(4242);
  double y = d.y0 + 0.25 * d.height();
  for (double x = d.x0; x <= d.x1; x += d.width() / 64.0) {
    y += rng.uniform(-1.0, 1.0) * 0.03 * d.height();
    y = std::clamp(y, d.y0 + 0.1 * d.height(), d.y0 + 0.45 * d.height());
    coast.push_back({x, y});
  }
  render::draw_polyline(img, mapping, coast, {30, 30, 30}, 0.8, 2);
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 24);
  const std::string outdir = args.get_string("outdir", ".");

  // The atmospheric model on the paper's 53x55 grid.
  sim::SmogModel model(sim::SmogParams{});

  // The paper's synthesis parameters: 2500 bent spots, 32x17 meshes, 512^2.
  core::SynthesisConfig config;
  config.spot_count = 2500;
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 32;
  config.bent.mesh_rows = 17;
  config.bent.length_px = 40.0;
  config.spot_radius_px = 5.0;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);

  core::DncConfig dnc;
  dnc.processors = args.get_int("processors", 4);
  dnc.pipes = args.get_int("pipes", 2);
  core::DncSynthesizer synthesizer(config, dnc);

  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  pc.mean_lifetime = 3.0;
  particles::ParticleSystem particles(pc, model.wind().domain(),
                                      util::Rng(config.seed));

  // Pipeline step 1 is the steering loop: each frame advances the model by
  // 30 simulated minutes, with user interventions at fixed frames.
  core::AnimatorConfig ac;
  ac.high_pass_radius = 6;
  core::Animator animator(ac, synthesizer, particles,
                          [&](std::int64_t frame) -> const field::VectorField& {
                            if (frame == frames / 3) {
                              std::cout << "[steer] doubling city-1 emissions\n";
                              model.set_source_rate(1, 24.0);
                            }
                            if (frame == 2 * frames / 3) {
                              std::cout << "[steer] backing the wind to the north\n";
                              model.set_base_wind({18.0, -22.0});
                            }
                            model.step(0.5);
                            return model.wind();
                          });

  double total_time = 0.0;
  for (int frame = 0; frame < frames; ++frame) {
    const core::AnimationFrame result = animator.step();
    total_time += result.total_seconds;
    if (frame == 0 || frame == frames / 2 || frame == frames - 1) {
      const std::string path =
          outdir + "/smog_frame_" + std::to_string(frame) + ".ppm";
      io::write_ppm(path, compose_frame(*result.texture, model));
      std::cout << "wrote " << path << "\n";
    }
  }
  std::cout << "steered " << frames << " frames at " << frames / total_time
            << " frames/s (" << dnc.processors << " processors, " << dnc.pipes
            << " pipes)\n";
  return 0;
}
