// The paper's §5.2 scenario: browse a DNS database of turbulent flow behind
// a block (figure 7).
//
// Phase 1 runs the 2D incompressible Navier-Stokes solver on the paper's
// 278x208 grid until the Kármán street develops, writing snapshots to a
// dataset file — the (laptop-scale) counterpart of the paper's terabyte
// database. Phase 2 opens the database with the browser and plays through
// it, synthesizing a spot-noise texture per frame, scrubbing backwards, and
// reporting cache behaviour. One wake image is written as PPM.
//
//   ./dns_browser [--snapshots=12] [--spinup=150] [--stride=25]
//                 [--spots=40000] [--outdir=.]
#include <filesystem>
#include <iostream>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/serial_synthesizer.hpp"
#include "io/ppm.hpp"
#include "render/overlay.hpp"
#include "sim/dataset.hpp"
#include "sim/dns_solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int snapshots = args.get_int("snapshots", 12);
  const int spinup = args.get_int("spinup", 150);
  const int stride = args.get_int("stride", 25);
  const std::string outdir = args.get_string("outdir", ".");
  const std::string db_path = outdir + "/dns_wake.dcsd";

  // ---- Phase 1: produce the scientific database ------------------------
  sim::DnsParams params;  // defaults are the paper's 278x208 slice
  sim::DnsSolver solver(params);
  std::cout << "spinning up DNS (" << params.nx << "x" << params.ny
            << ", Re ~ " << params.inflow_speed * 2.0 / params.viscosity << ")\n";
  for (int step = 0; step < spinup; ++step) solver.step();
  {
    const auto first = solver.snapshot();
    sim::DatasetWriter writer(db_path, first.grid());
    writer.append(first, solver.time());
    for (int s = 1; s < snapshots; ++s) {
      for (int step = 0; step < stride; ++step) solver.step();
      writer.append(solver.snapshot(), solver.time());
    }
    std::cout << "wrote " << writer.frames_written() << " snapshots to "
              << db_path << " ("
              << std::filesystem::file_size(db_path) / (1024.0 * 1024.0)
              << " MB)\n";
  }

  // ---- Phase 2: browse it ----------------------------------------------
  sim::DatasetReader reader(db_path);
  sim::DataBrowser browser(reader, /*cache_frames=*/4);

  // The paper's synthesis parameters for this data set: 40000 bent spots
  // with 16x3 meshes.
  core::SynthesisConfig config;
  config.spot_count = args.get_int("spots", 40000);
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 16;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 24.0;
  config.spot_radius_px = 2.5;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);

  core::DncConfig dnc;
  dnc.processors = args.get_int("processors", 4);
  dnc.pipes = args.get_int("pipes", 2);
  core::DncSynthesizer synthesizer(config, dnc);

  util::Rng rng(config.seed);
  double synth_time = 0.0;
  int synth_frames = 0;

  auto view_frame = [&]() {
    const auto& f = browser.current();
    const auto spots = core::make_random_spots(f.domain(), config.spot_count, rng);
    const auto stats = synthesizer.synthesize(f, spots);
    synth_time += stats.frame_seconds;
    ++synth_frames;
  };

  // Play forward through the database...
  for (std::int64_t k = 0; k < reader.frame_count(); ++k) {
    view_frame();
    browser.step();
  }
  // ...then scrub the last few frames back and forth (cache exercise).
  browser.set_direction(sim::DataBrowser::Direction::kBackward);
  for (int k = 0; k < 4; ++k) {
    browser.step();
    view_frame();
  }
  std::cout << "browsed " << synth_frames << " views at "
            << synth_frames / synth_time << " textures/s; cache hits "
            << browser.cache_hits() << ", misses " << browser.cache_misses()
            << "\n";

  // ---- Figure-7 style image of the final frame -------------------------
  const auto& wake = browser.current();
  render::Framebuffer texture = synthesizer.texture();
  core::normalize_contrast(texture);
  render::Image img = render::texture_to_image(texture);
  const render::WorldToImage mapping(wake.domain(), img.width(), img.height());
  render::fill_rect(img, mapping, params.block, {40, 40, 40});
  const std::string path = outdir + "/dns_wake.ppm";
  io::write_ppm(path, img);
  std::cout << "wrote " << path << "\n";
  return 0;
}
