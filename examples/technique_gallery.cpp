// Renders the same wind field with every visualization technique in the
// library — the paper's motivating comparison (§1: dense texture vs.
// discrete arrows/streamlines) on one page.
//
// Outputs: gallery_arrows.ppm, gallery_streamlines.ppm,
//          gallery_spot_noise.ppm, gallery_spot_noise_zoom.ppm,
//          gallery_lic.ppm
//
//   ./technique_gallery [--outdir=.]
#include <iostream>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/lic.hpp"
#include "core/serial_synthesizer.hpp"
#include "io/ppm.hpp"
#include "render/glyphs.hpp"
#include "render/scene.hpp"
#include "sim/smog_model.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const std::string outdir = args.get_string("outdir", ".");

  // One developed wind field from the smog model drives every rendering.
  sim::SmogModel model(sim::SmogParams{});
  for (int step = 0; step < 10; ++step) model.step(0.5);
  const field::GridVectorField& wind = model.wind();
  const field::Rect domain = wind.domain();
  const render::WorldToImage mapping(domain, 512, 512);

  // 1. Arrow plot — what the smog application used before spot noise.
  {
    render::Image img(512, 512, {255, 255, 255});
    render::draw_arrow_plot(img, mapping, wind, {});
    io::write_ppm(outdir + "/gallery_arrows.ppm", img);
  }

  // 2. Streamlines — the other discrete classic.
  {
    render::Image img(512, 512, {255, 255, 255});
    render::StreamlinePlotConfig config;
    config.seeds_x = 10;
    config.seeds_y = 10;
    render::draw_streamline_plot(img, mapping, wind, config);
    io::write_ppm(outdir + "/gallery_streamlines.ppm", img);
  }

  // 3. Spot noise — the paper's dense texture, plus a zoomed window
  //    rendered from the same texture (pipeline step 4, no re-synthesis).
  {
    core::SynthesisConfig config;
    config.spot_count = 2500;
    config.kind = core::SpotKind::kBent;
    config.bent.mesh_cols = 32;
    config.bent.mesh_rows = 17;
    config.bent.length_px = 40.0;
    config.spot_radius_px = 5.0;
    config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
    core::DncConfig dnc;
    dnc.processors = 4;
    dnc.pipes = 2;
    core::DncSynthesizer synth(config, dnc);
    util::Rng rng(config.seed);
    const auto spots = core::make_random_spots(domain, config.spot_count, rng);
    synth.synthesize(wind, spots);
    render::Framebuffer texture = core::high_pass(synth.texture(), 6);
    core::normalize_contrast(texture);
    io::write_ppm(outdir + "/gallery_spot_noise.ppm",
                  render::texture_to_image(texture));

    render::SceneView view;
    view.texture_world = domain;
    view.window = field::Rect{domain.at(0.55, 0.55).x, domain.at(0.55, 0.55).y,
                              domain.at(0.85, 0.85).x, domain.at(0.85, 0.85).y};
    view.out_width = 512;
    view.out_height = 512;
    io::write_ppm(outdir + "/gallery_spot_noise_zoom.ppm",
                  render::render_scene(texture, view));
  }

  // 4. LIC — the image-order dense technique, for comparison.
  {
    core::LicConfig config;
    config.kernel_half_length_px = 14.0;
    const auto noise = core::make_lic_noise(config.width, config.height,
                                            config.noise_seed);
    render::Framebuffer texture = core::lic(wind, noise, config);
    core::normalize_contrast(texture);
    io::write_ppm(outdir + "/gallery_lic.ppm", render::texture_to_image(texture));
  }

  std::cout << "wrote gallery_{arrows,streamlines,spot_noise,spot_noise_zoom,"
               "lic}.ppm to "
            << outdir << "\n";
  return 0;
}
