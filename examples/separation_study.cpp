// The figure-2 scenario: find where flow separates.
//
// The paper shows skin friction on a block face: with default spot noise
// (top image) the separation line is hard to see; after adjusting spot
// position and life-cycle parameters — advecting the spot population so
// spots accumulate along the flow's convergence structures — the
// separation line stands out (bottom image). This example reproduces both
// renderings on an analytic field with the same critical-point topology and
// reports how strongly the line is highlighted.
//
//   ./separation_study [--spots=6000] [--advect-steps=120] [--outdir=.]
#include <cmath>
#include <iostream>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "io/ppm.hpp"
#include "particles/particle_system.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const std::string outdir = args.get_string("outdir", ".");

  const field::Rect domain{0.0, 0.0, 2.0, 1.0};
  const double sep_x = 1.2;  // the separation line to discover
  const auto f = field::analytic::separation(sep_x, 1.0, domain);

  core::SynthesisConfig config;
  config.texture_width = 512;
  config.texture_height = 256;
  config.spot_count = args.get_int("spots", 6000);
  config.spot_radius_px = 5.0;
  config.kind = core::SpotKind::kEllipse;
  config.ellipse.max_stretch = 4.0;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);

  core::DncConfig dnc;
  dnc.processors = args.get_int("processors", 4);
  dnc.pipes = args.get_int("pipes", 2);
  core::DncSynthesizer synthesizer(config, dnc);

  // --- Default spot noise: uniform random spot positions (fig. 2 top) ----
  util::Rng rng(config.seed);
  const auto uniform_spots =
      core::make_random_spots(domain, config.spot_count, rng);
  synthesizer.synthesize(*f, uniform_spots);
  render::Framebuffer default_texture = synthesizer.texture();
  core::normalize_contrast(default_texture);
  io::write_ppm(outdir + "/separation_default.ppm",
                render::texture_to_image(default_texture));

  // --- Adjusted parameters: advected spot positions (fig. 2 bottom) ------
  // Long-lived particles advected through the field accumulate along the
  // separation line before the texture is synthesized.
  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  pc.mean_lifetime = 1e9;
  pc.respawn_out_of_domain = false;
  particles::ParticleSystem particles(pc, domain, util::Rng(config.seed));
  const int advect_steps = args.get_int("advect-steps", 120);
  for (int step = 0; step < advect_steps; ++step) particles.advance(*f, 0.02);

  const auto advected_spots = core::spots_from_particles(particles);
  synthesizer.synthesize(*f, advected_spots);
  render::Framebuffer advected_texture = synthesizer.texture();
  core::normalize_contrast(advected_texture);
  io::write_ppm(outdir + "/separation_advected.ppm",
                render::texture_to_image(advected_texture));

  // --- Quantify the highlight -------------------------------------------
  // Texture energy (variance) in the band around the separation line vs.
  // elsewhere: the advected rendering concentrates energy on the line.
  auto band_energy_ratio = [&](const render::Framebuffer& tex) {
    const int band_lo = static_cast<int>((sep_x - 0.08) / 2.0 * tex.width());
    const int band_hi = static_cast<int>((sep_x + 0.08) / 2.0 * tex.width());
    double in_band = 0.0, outside = 0.0;
    std::int64_t n_in = 0, n_out = 0;
    for (int y = 0; y < tex.height(); ++y)
      for (int x = 0; x < tex.width(); ++x) {
        const double e = double(tex.at(x, y)) * tex.at(x, y);
        if (x >= band_lo && x <= band_hi) {
          in_band += e;
          ++n_in;
        } else {
          outside += e;
          ++n_out;
        }
      }
    return (in_band / n_in) / (outside / n_out);
  };

  const double ratio_default = band_energy_ratio(default_texture);
  const double ratio_advected = band_energy_ratio(advected_texture);
  std::cout << "wrote " << outdir << "/separation_default.ppm and "
            << outdir << "/separation_advected.ppm\n"
            << "band/background energy ratio, default spot noise:  "
            << ratio_default << "\n"
            << "band/background energy ratio, advected positions:  "
            << ratio_advected << "\n"
            << "the separation line is highlighted "
            << ratio_advected / ratio_default << "x more strongly\n";
  return 0;
}
