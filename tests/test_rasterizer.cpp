// Equivalence fuzzing for the span-based scanline rasterizer.
//
// The contract under test (see render/rasterizer.hpp): RasterAlgorithm::kSpan
// and kReference construct edges from the same canonical endpoint ordering
// and evaluate every edge value with the same expression, so their pixel
// *coverage* is bit-identical for any input — needles, zero-area slivers,
// off-screen and ±1e12 geometry included — while fragment *values* (which
// kSpan computes with the incremental RowSampler) agree to ≤ 1e-5. The
// coverage checks use a constant-texel profile, so every covered pixel
// blends an exact float quantum and framebuffers can be compared bit-exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "field/analytic.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"
#include "render/spot_profile.hpp"
#include "util/rng.hpp"

namespace {

using dcsn::render::BlendMode;
using dcsn::render::Framebuffer;
using dcsn::render::MeshVertex;
using dcsn::render::RasterAlgorithm;
using dcsn::render::RasterStats;
using dcsn::render::RasterTarget;
using dcsn::render::SpotProfile;
using dcsn::render::SpotShape;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

MeshVertex vtx(float x, float y, float u = 0.5f, float v = 0.5f) {
  return MeshVertex{x, y, u, v};
}

// A 2x2 disc profile: all four texels sit inside the inscribed circle, so
// after normalization the table is the constant 0.25 and any in-range UV
// samples exactly that — the "coverage quantum" for exact mask comparison.
const SpotProfile& coverage_profile() {
  static const SpotProfile profile(SpotShape::kDisc, 2);
  return profile;
}

float coverage_quantum() { return coverage_profile().sample(0.5f, 0.5f); }

struct TriRun {
  Framebuffer fb;
  RasterStats stats;
};

TriRun run_triangle(RasterAlgorithm algo, const MeshVertex& a, const MeshVertex& b,
                    const MeshVertex& c, const SpotProfile& profile,
                    BlendMode mode = BlendMode::kAdditive, float weight = 1.0f,
                    int w = 64, int h = 48, float clear = 0.0f) {
  TriRun run{Framebuffer(w, h), {}};
  run.fb.clear(clear);
  const RasterTarget target{run.fb.pixels(), 0, 0, algo};
  dcsn::render::rasterize_triangle(target, a, b, c, weight, profile, mode, run.stats);
  return run;
}

// Max |difference| over all pixels; framebuffers must be same-sized.
float max_abs_diff(const Framebuffer& lhs, const Framebuffer& rhs) {
  return lhs.max_abs_diff(rhs);
}

// Runs one triangle through both algorithms and asserts the equivalence
// contract: identical coverage (exact framebuffer match with constant UVs),
// identical fragment/triangle counts, span never visits more than reference.
// `value_tolerance` covers the fragment-value comparison: the span kernel
// evaluates UV with a per-triangle affine double form while the reference
// recomputes float barycentrics per pixel, so on degenerate (needle)
// geometry the difference is dominated by the *reference's* float
// cancellation noise — a few 1e-5 — not by span-kernel error.
void expect_equivalent(const MeshVertex& a, const MeshVertex& b, const MeshVertex& c,
                       const char* label, float value_tolerance = 2e-5f) {
  // Coverage: constant UV so every fragment blends the exact quantum.
  MeshVertex ca = a, cb = b, cc = c;
  ca.u = cb.u = cc.u = 0.5f;
  ca.v = cb.v = cc.v = 0.5f;
  const TriRun ref = run_triangle(RasterAlgorithm::kReference, ca, cb, cc,
                                  coverage_profile());
  const TriRun span = run_triangle(RasterAlgorithm::kSpan, ca, cb, cc,
                                   coverage_profile());
  EXPECT_EQ(ref.stats.fragments, span.stats.fragments) << label;
  EXPECT_EQ(ref.stats.triangles, span.stats.triangles) << label;
  EXPECT_LE(span.stats.pixels_visited, ref.stats.pixels_visited) << label;
  EXPECT_TRUE(ref.fb == span.fb) << label << ": coverage masks differ";

  // Values: the original (possibly interpolating) UVs under both blends.
  static const SpotProfile smooth(SpotShape::kCosine, 64);
  for (const BlendMode mode : {BlendMode::kAdditive, BlendMode::kMaximum}) {
    const TriRun vref = run_triangle(RasterAlgorithm::kReference, a, b, c, smooth,
                                     mode, 0.8f, 64, 48, -0.01f);
    const TriRun vspan = run_triangle(RasterAlgorithm::kSpan, a, b, c, smooth, mode,
                                      0.8f, 64, 48, -0.01f);
    EXPECT_EQ(vref.stats.fragments, vspan.stats.fragments) << label;
    EXPECT_LE(max_abs_diff(vref.fb, vspan.fb), value_tolerance) << label;
  }
}

TEST(SpanEquivalenceFuzz, RandomTriangles) {
  dcsn::util::Rng rng(2024);
  for (int iter = 0; iter < 300; ++iter) {
    const auto coord = [&](float lo, float hi) {
      return static_cast<float>(rng.uniform(lo, hi));
    };
    const MeshVertex a = vtx(coord(-20, 84), coord(-20, 68),
                             rng.uniform_f(), rng.uniform_f());
    const MeshVertex b = vtx(coord(-20, 84), coord(-20, 68),
                             rng.uniform_f(), rng.uniform_f());
    const MeshVertex c = vtx(coord(-20, 84), coord(-20, 68),
                             rng.uniform_f(), rng.uniform_f());
    expect_equivalent(a, b, c, "random triangle");
  }
}

TEST(SpanEquivalenceFuzz, NeedleTriangles) {
  dcsn::util::Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    // One long axis, sub-pixel thickness: the worst case for bbox walks and
    // for span boundary rounding.
    const float x0 = static_cast<float>(rng.uniform(-10, 74));
    const float y0 = static_cast<float>(rng.uniform(-10, 58));
    const float dx = static_cast<float>(rng.uniform(-60, 60));
    const float dy = static_cast<float>(rng.uniform(-60, 60));
    const float thick = static_cast<float>(rng.uniform(1e-4, 0.3));
    const MeshVertex a = vtx(x0, y0, 0.0f, 0.0f);
    const MeshVertex b = vtx(x0 + dx, y0 + dy, 1.0f, 0.0f);
    const MeshVertex c = vtx(x0 - dy * thick, y0 + dx * thick, 0.5f, 1.0f);
    expect_equivalent(a, b, c, "needle", 2e-4f);
  }
}

TEST(SpanEquivalenceFuzz, DegenerateAndHostileGeometry) {
  // Zero-area: collinear and repeated vertices — both algorithms must draw
  // nothing (and not crash).
  expect_equivalent(vtx(3, 3), vtx(3, 3), vtx(9, 7), "repeated vertex");
  expect_equivalent(vtx(1, 1), vtx(5, 5), vtx(9, 9), "collinear");

  // Fully and partially off-screen.
  expect_equivalent(vtx(-30, -30), vtx(-10, -30), vtx(-20, -5), "fully off");
  expect_equivalent(vtx(-15, 10), vtx(30, -12), vtx(20, 40), "partially off");

  // Far-off-screen vertices: the bbox clamp must keep the int casts defined
  // and both algorithms agreeing.
  expect_equivalent(vtx(-1e12f, -1e12f), vtx(1e12f, 0), vtx(10, 1e12f), "1e12");
  expect_equivalent(vtx(32, -1e12f), vtx(1e12f, 24), vtx(-1e12f, 24), "1e12 mixed");

  // Non-finite coordinates: rejected identically (nothing drawn).
  const TriRun nan_ref = run_triangle(RasterAlgorithm::kReference, vtx(kNaN, 5),
                                      vtx(30, 5), vtx(15, 30), coverage_profile());
  const TriRun nan_span = run_triangle(RasterAlgorithm::kSpan, vtx(kNaN, 5),
                                       vtx(30, 5), vtx(15, 30), coverage_profile());
  EXPECT_EQ(nan_ref.stats.fragments, 0);
  EXPECT_EQ(nan_span.stats.fragments, 0);
  EXPECT_TRUE(nan_ref.fb == nan_span.fb);
  const TriRun inf_span = run_triangle(RasterAlgorithm::kSpan, vtx(kInf, 5),
                                       vtx(30, 5), vtx(15, 30), coverage_profile());
  EXPECT_EQ(inf_span.stats.fragments, 0);
}

TEST(SpanEquivalenceFuzz, OutOfRangeUVFuzz) {
  // UVs pushed beyond [0,1]: the span kernel's hoisted in-range sub-span
  // must agree with the reference's per-fragment bounds check to 1e-5.
  dcsn::util::Rng rng(4242);
  const SpotProfile profile(SpotShape::kGaussian, 64);
  for (int iter = 0; iter < 150; ++iter) {
    const auto coord = [&](float lo, float hi) {
      return static_cast<float>(rng.uniform(lo, hi));
    };
    const auto uv = [&] { return static_cast<float>(rng.uniform(-0.6, 1.6)); };
    const MeshVertex a = vtx(coord(0, 64), coord(0, 48), uv(), uv());
    const MeshVertex b = vtx(coord(0, 64), coord(0, 48), uv(), uv());
    const MeshVertex c = vtx(coord(0, 64), coord(0, 48), uv(), uv());
    const TriRun ref =
        run_triangle(RasterAlgorithm::kReference, a, b, c, profile);
    const TriRun span = run_triangle(RasterAlgorithm::kSpan, a, b, c, profile);
    EXPECT_EQ(ref.stats.fragments, span.stats.fragments);
    EXPECT_LE(max_abs_diff(ref.fb, span.fb), 1e-5f);
  }
}

// Rasterizes a quad split into the two triangles the mesh rasterizer uses,
// with the constant-texel profile: watertightness means every pixel of the
// result carries exactly 0 or 1 quantum (no seam double-blend), and every
// pixel safely interior to the quad carries exactly 1 (no seam gap).
void expect_watertight_rect(RasterAlgorithm algo, float x0, float y0, float x1,
                            float y1, Framebuffer* out = nullptr) {
  Framebuffer fb(64, 48);
  RasterStats stats;
  const RasterTarget target{fb.pixels(), 0, 0, algo};
  const MeshVertex v00 = vtx(x0, y0);
  const MeshVertex v10 = vtx(x1, y0);
  const MeshVertex v11 = vtx(x1, y1);
  const MeshVertex v01 = vtx(x0, y1);
  dcsn::render::rasterize_triangle(target, v00, v10, v11, 1.0f, coverage_profile(),
                                   BlendMode::kAdditive, stats);
  dcsn::render::rasterize_triangle(target, v00, v11, v01, 1.0f, coverage_profile(),
                                   BlendMode::kAdditive, stats);
  const float q = coverage_quantum();
  for (int y = 0; y < fb.height(); ++y) {
    for (int x = 0; x < fb.width(); ++x) {
      const float value = fb.at(x, y);
      ASSERT_TRUE(value == 0.0f || value == q)
          << "seam double-blend or partial at (" << x << "," << y << "): " << value;
      const float cx = static_cast<float>(x) + 0.5f;
      const float cy = static_cast<float>(y) + 0.5f;
      const bool interior = cx > x0 + 0.01f && cx < x1 - 0.01f &&
                            cy > y0 + 0.01f && cy < y1 - 0.01f;
      if (interior) {
        ASSERT_EQ(value, q) << "seam gap at (" << x << "," << y << ")";
      }
    }
  }
  if (out) *out = fb;
}

TEST(SpanWatertight, DiagonalSeamsOnRandomRects) {
  dcsn::util::Rng rng(909);
  for (int iter = 0; iter < 200; ++iter) {
    const float x0 = static_cast<float>(rng.uniform(-4.0, 40.0));
    const float y0 = static_cast<float>(rng.uniform(-4.0, 30.0));
    const float x1 = x0 + static_cast<float>(rng.uniform(0.3, 25.0));
    const float y1 = y0 + static_cast<float>(rng.uniform(0.3, 20.0));
    Framebuffer ref_fb, span_fb;
    expect_watertight_rect(RasterAlgorithm::kReference, x0, y0, x1, y1, &ref_fb);
    expect_watertight_rect(RasterAlgorithm::kSpan, x0, y0, x1, y1, &span_fb);
    ASSERT_TRUE(ref_fb == span_fb);
  }
}

TEST(SpanWatertight, SharedEdgeTrianglePairsNeverDoubleBlend) {
  // Two triangles traversing a random shared edge in opposite directions:
  // no pixel may receive two quanta, under either algorithm.
  dcsn::util::Rng rng(1337);
  const float q = coverage_quantum();
  for (int iter = 0; iter < 200; ++iter) {
    const auto coord = [&](float lo, float hi) {
      return static_cast<float>(rng.uniform(lo, hi));
    };
    const MeshVertex p = vtx(coord(0, 64), coord(0, 48));
    const MeshVertex r = vtx(coord(0, 64), coord(0, 48));
    const MeshVertex s = vtx(coord(0, 64), coord(0, 48));
    const MeshVertex t = vtx(coord(0, 64), coord(0, 48));
    // Keep only pairs where s and t lie on opposite sides of edge p-r, so
    // the triangles only meet along the seam.
    const auto side = [&](const MeshVertex& v) {
      return (r.x - p.x) * (v.y - p.y) - (r.y - p.y) * (v.x - p.x);
    };
    if (side(s) * side(t) >= 0.0f) continue;
    for (const RasterAlgorithm algo :
         {RasterAlgorithm::kReference, RasterAlgorithm::kSpan}) {
      Framebuffer fb(64, 48);
      RasterStats stats;
      const RasterTarget target{fb.pixels(), 0, 0, algo};
      dcsn::render::rasterize_triangle(target, p, r, s, 1.0f, coverage_profile(),
                                       BlendMode::kAdditive, stats);
      dcsn::render::rasterize_triangle(target, r, p, t, 1.0f, coverage_profile(),
                                       BlendMode::kAdditive, stats);
      for (int y = 0; y < fb.height(); ++y) {
        for (int x = 0; x < fb.width(); ++x) {
          const float value = fb.at(x, y);
          ASSERT_TRUE(value == 0.0f || value == q)
              << "double blend at (" << x << "," << y << "): " << value;
        }
      }
    }
  }
}

TEST(SpanVisitedAccounting, SpanSkipsRejectedPixels) {
  // A half-screen diagonal: the bbox walk visits the whole box, the span
  // kernel only the covered interval of each row.
  const MeshVertex a = vtx(1, 1, 0, 0);
  const MeshVertex b = vtx(60, 2, 1, 0);
  const MeshVertex c = vtx(2, 44, 0, 1);
  const TriRun ref = run_triangle(RasterAlgorithm::kReference, a, b, c,
                                  coverage_profile());
  const TriRun span = run_triangle(RasterAlgorithm::kSpan, a, b, c,
                                   coverage_profile());
  EXPECT_EQ(ref.stats.fragments, span.stats.fragments);
  EXPECT_GT(ref.stats.fragments, 0);
  // Reference visits the full bbox; span visits exactly its fragments.
  EXPECT_GT(ref.stats.pixels_visited, ref.stats.fragments);
  EXPECT_EQ(span.stats.pixels_visited, span.stats.fragments);
}

TEST(SpanEquivalence, BentRibbonMesh) {
  // A curved ribbon like the bent-spot generator emits: cols x rows vertices
  // swept along an arc, u along the spine, v across it.
  constexpr int cols = 24;
  constexpr int rows = 5;
  std::vector<MeshVertex> vertices;
  vertices.reserve(cols * rows);
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      const float t = static_cast<float>(i) / (cols - 1);
      const float angle = 0.4f + 2.2f * t;
      const float radius = 18.0f + 2.5f * (static_cast<float>(j) / (rows - 1) - 0.5f) * 2.0f;
      vertices.push_back(vtx(32.0f + radius * std::cos(angle),
                             26.0f + radius * std::sin(angle), t,
                             static_cast<float>(j) / (rows - 1)));
    }
  }
  const SpotProfile profile(SpotShape::kCosine, 64);
  Framebuffer ref_fb(64, 48), span_fb(64, 48);
  RasterStats ref_stats, span_stats;
  dcsn::render::rasterize_mesh({ref_fb.pixels(), 0, 0, RasterAlgorithm::kReference},
                               vertices, cols, rows, 0.7f, profile,
                               BlendMode::kAdditive, ref_stats);
  dcsn::render::rasterize_mesh({span_fb.pixels(), 0, 0, RasterAlgorithm::kSpan},
                               vertices, cols, rows, 0.7f, profile,
                               BlendMode::kAdditive, span_stats);
  EXPECT_EQ(ref_stats.fragments, span_stats.fragments);
  EXPECT_EQ(ref_stats.quads, (cols - 1) * (rows - 1));
  EXPECT_GT(span_stats.fragments, 0);
  EXPECT_LT(span_stats.pixels_visited, ref_stats.pixels_visited);
  EXPECT_LE(max_abs_diff(ref_fb, span_fb), 1e-5f);
}

TEST(SpotProfileBounds, OutOfRangeUVSamplesZero) {
  // Regression for the span setup clamp: UVs at and slightly beyond 0/1 —
  // the float-rounding overshoot that occurs at triangle seams.
  const SpotProfile profile(SpotShape::kGaussian, 64);
  EXPECT_EQ(profile.sample(1.0f, 0.5f), 0.0f);
  EXPECT_EQ(profile.sample(0.5f, 1.0f), 0.0f);
  EXPECT_EQ(profile.sample(1.0f + 1e-6f, 0.5f), 0.0f);
  EXPECT_EQ(profile.sample(-1e-7f, 0.5f), 0.0f);
  EXPECT_EQ(profile.sample(0.5f, -1e-7f), 0.0f);
  EXPECT_EQ(profile.sample(kNaN, 0.5f), 0.0f);
  EXPECT_EQ(profile.sample(0.5f, kNaN), 0.0f);
  EXPECT_EQ(profile.sample(kInf, 0.5f), 0.0f);
  EXPECT_EQ(profile.sample(-kInf, 0.5f), 0.0f);
  // At and just inside the valid boundary: finite, no fault.
  EXPECT_GE(profile.sample(0.0f, 0.0f), 0.0f);
  const float just_inside = std::nextafter(1.0f, 0.0f);
  EXPECT_TRUE(std::isfinite(profile.sample(just_inside, just_inside)));
  EXPECT_GT(profile.sample(0.5f, 0.5f), 0.0f);
}

TEST(SpanEquivalence, HighResolutionProfileSteepGradient) {
  // Regression: the RowSampler's gradient cap must scale with the profile
  // resolution. With a 256-texel profile a legitimate UV gradient of
  // ~0.26/pixel exceeds 64 texels/step; a fixed cap silently zeroed the
  // step and every fragment after the first re-sampled the span start.
  const SpotProfile profile(SpotShape::kCosine, 256);
  const MeshVertex a = vtx(4, 4, 0.02f, 0.1f);
  const MeshVertex b = vtx(7.5f, 5, 0.95f, 0.2f);  // ~0.26 du/dx
  const MeshVertex c = vtx(5, 40, 0.1f, 0.9f);
  const TriRun ref = run_triangle(RasterAlgorithm::kReference, a, b, c, profile);
  const TriRun span = run_triangle(RasterAlgorithm::kSpan, a, b, c, profile);
  EXPECT_EQ(ref.stats.fragments, span.stats.fragments);
  EXPECT_GT(span.stats.fragments, 0);
  EXPECT_LE(max_abs_diff(ref.fb, span.fb), 2e-5f);
}

TEST(SpotProfileBounds, RowSamplerMatchesPointSampler) {
  const SpotProfile profile(SpotShape::kCosine, 64);
  const double u0 = 0.037, v0 = 0.91, du = 0.0123, dv = -0.0117;
  SpotProfile::RowSampler sampler(profile, du, dv);
  sampler.start_row(u0, v0);
  for (int k = 0; k < 70; ++k) {
    const double u = u0 + k * du;
    const double v = v0 + k * dv;
    if (!(u >= 0.0 && u < 1.0 && v >= 0.0 && v < 1.0)) continue;
    EXPECT_NEAR(sampler.sample_at(k),
                profile.sample(static_cast<float>(u), static_cast<float>(v)), 2e-6f)
        << "k=" << k;
  }
}

TEST(SpanEquivalence, TileClippedSpansMatchFullTargetBitwise) {
  // Target independence at the fragment-value level: a triangle straddling
  // a tile's left edge renders the tile's pixels with EXACTLY the bits the
  // full-texture target produces there. This pins the geometric span solve
  // + absolute-k UV rebase — a sampler rebased on the *clipped* span start
  // would differ in the last bits and occasionally flip a contribution
  // across a lattice tie.
  const SpotProfile profile(SpotShape::kCosine, 64);
  dcsn::util::Rng rng(2468);
  for (const auto algo : {RasterAlgorithm::kSpan, RasterAlgorithm::kReference}) {
    for (int i = 0; i < 300; ++i) {
      // Random triangles biased to straddle the x = 32 boundary.
      auto coord = [&](double lo, double hi) {
        return static_cast<float>(rng.uniform(lo, hi));
      };
      const MeshVertex a{coord(8, 40), coord(0, 64), coord(0, 1), coord(0, 1)};
      const MeshVertex b{coord(24, 56), coord(0, 64), coord(0, 1), coord(0, 1)};
      const MeshVertex c{coord(8, 56), coord(0, 64), coord(0, 1), coord(0, 1)};
      const auto weight = static_cast<float>(rng.uniform(-1.0, 1.0));

      Framebuffer full(64, 64);
      RasterStats full_stats;
      dcsn::render::rasterize_triangle({full.pixels(), 0, 0, algo}, a, b, c,
                                       weight, profile, BlendMode::kAdditive,
                                       full_stats);
      Framebuffer tile(32, 64);
      RasterStats tile_stats;
      dcsn::render::rasterize_triangle({tile.pixels(), 32, 0, algo}, a, b, c,
                                       weight, profile, BlendMode::kAdditive,
                                       tile_stats);
      for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 32; ++x) {
          ASSERT_EQ(full.at(x + 32, y), tile.at(x, y))
              << "algo " << static_cast<int>(algo) << " triangle " << i
              << " pixel (" << x << ", " << y << ")";
        }
      }
    }
  }
}

TEST(SpanIntegration, SynthesizerAlgorithmEquivalence) {
  // Whole-engine check: the DnC synthesizer produces the same texture (to
  // row-sampler tolerance) whichever algorithm the pipes rasterize with.
  const auto field = dcsn::field::analytic::rankine_vortex(
      {0.5, 0.5}, 1.0, 0.3, dcsn::field::Rect{0.0, 0.0, 1.0, 1.0});
  dcsn::core::SynthesisConfig synthesis;
  synthesis.texture_width = 96;
  synthesis.texture_height = 96;
  synthesis.spot_count = 150;
  synthesis.kind = dcsn::core::SpotKind::kBent;
  synthesis.bent.mesh_cols = 12;
  synthesis.bent.mesh_rows = 4;
  synthesis.bent.length_px = 20.0;
  synthesis.spot_radius_px = 4.0;
  dcsn::util::Rng rng(7);
  const auto spots =
      dcsn::core::make_random_spots(field->domain(), synthesis.spot_count, rng);

  Framebuffer textures[2];
  const RasterAlgorithm algos[2] = {RasterAlgorithm::kReference,
                                    RasterAlgorithm::kSpan};
  for (int k = 0; k < 2; ++k) {
    dcsn::core::DncConfig dnc;
    dnc.processors = 2;
    dnc.pipes = 1;
    dnc.raster_algorithm = algos[k];
    dcsn::core::DncSynthesizer engine(synthesis, dnc);
    (void)engine.synthesize(*field, spots);
    textures[k] = engine.texture();
  }
  EXPECT_LE(max_abs_diff(textures[0], textures[1]), 1e-4f);
}

}  // namespace
