// Tests for spot transformation: point, ellipse and bent spot geometry.
#include <gtest/gtest.h>

#include <cmath>

#include "core/spot_geometry.hpp"
#include "field/analytic.hpp"
#include "util/error.hpp"

namespace {

using namespace dcsn;
using field::Rect;
using field::Vec2;

core::SynthesisConfig base_config() {
  core::SynthesisConfig config;
  config.texture_width = 256;
  config.texture_height = 256;
  config.spot_radius_px = 8.0;
  return config;
}

// ------------------------------------------------------------- point spots ---

TEST(SpotGeometry, PointSpotIsAxisAlignedSquare) {
  auto config = base_config();
  config.kind = core::SpotKind::kPoint;
  const Rect domain{0, 0, 256, 256};  // 1 world unit = 1 pixel
  const auto f = field::analytic::uniform({1.0, 0.0}, domain);
  const core::SpotGeometryGenerator gen(config, *f);

  render::CommandBuffer buf;
  gen.generate({{128.0, 128.0}, 0.5}, buf);
  ASSERT_EQ(buf.mesh_count(), 1u);
  const auto& h = buf.meshes()[0];
  EXPECT_EQ(h.cols, 2);
  EXPECT_EQ(h.rows, 2);
  EXPECT_FLOAT_EQ(h.intensity, 0.5f);
  const auto v = buf.vertices_of(h);
  // World (128,128) maps to pixel (128, 128) with y flip: (1-0.5)*256 = 128.
  EXPECT_FLOAT_EQ(v[0].x, 120.0f);
  EXPECT_FLOAT_EQ(v[0].y, 120.0f);
  EXPECT_FLOAT_EQ(v[3].x, 136.0f);
  EXPECT_FLOAT_EQ(v[3].y, 136.0f);
}

TEST(SpotGeometry, IntensityScaleApplied) {
  auto config = base_config();
  config.kind = core::SpotKind::kPoint;
  config.intensity_scale = 0.25;
  const auto f = field::analytic::uniform({1.0, 0.0}, Rect{0, 0, 1, 1});
  const core::SpotGeometryGenerator gen(config, *f);
  render::CommandBuffer buf;
  gen.generate({{0.5, 0.5}, 1.0}, buf);
  EXPECT_FLOAT_EQ(buf.meshes()[0].intensity, 0.25f);
}

// ----------------------------------------------------------- ellipse spots ---

TEST(SpotGeometry, EllipseStretchesAlongFlow) {
  auto config = base_config();
  config.kind = core::SpotKind::kEllipse;
  config.ellipse.max_stretch = 3.0;
  const Rect domain{0, 0, 256, 256};
  const auto f = field::analytic::uniform({5.0, 0.0}, domain);  // max speed field
  const core::SpotGeometryGenerator gen(config, *f);

  render::CommandBuffer buf;
  gen.generate({{128.0, 128.0}, 1.0}, buf);
  const auto v = buf.vertices_of(buf.meshes()[0]);
  // Flow along +x at max relative speed: stretch = 3, so the spot spans
  // 2*8*3 = 48 px along x and 2*8/3 px across.
  const float width = std::abs(v[1].x - v[0].x);
  const float height = std::abs(v[2].y - v[0].y);
  EXPECT_NEAR(width, 48.0f, 1e-3f);
  EXPECT_NEAR(height, 16.0f / 3.0f, 1e-3f);
}

TEST(SpotGeometry, EllipseAreaIsPreserved) {
  auto config = base_config();
  config.kind = core::SpotKind::kEllipse;
  const Rect domain{0, 0, 256, 256};
  // A shear field gives different speeds at different positions.
  const auto f = field::analytic::shear(0.1, domain);
  const core::SpotGeometryGenerator gen(config, *f);

  for (const double y : {40.0, 128.0, 200.0}) {
    render::CommandBuffer buf;
    gen.generate({{128.0, y}, 1.0}, buf);
    const auto v = buf.vertices_of(buf.meshes()[0]);
    const Vec2 e1{v[1].x - v[0].x, v[1].y - v[0].y};
    const Vec2 e2{v[2].x - v[0].x, v[2].y - v[0].y};
    const double area = std::abs(e1.cross(e2));
    EXPECT_NEAR(area, 4.0 * 8.0 * 8.0, 1e-2) << "at y = " << y;  // float vertices
  }
}

TEST(SpotGeometry, EllipseFallsBackToPointAtStagnation) {
  auto config = base_config();
  config.kind = core::SpotKind::kEllipse;
  const Rect domain{-1, -1, 1, 1};
  const auto f = field::analytic::saddle({0, 0}, 1.0, domain);
  const core::SpotGeometryGenerator gen(config, *f);
  render::CommandBuffer buf;
  gen.generate({{0.0, 0.0}, 1.0}, buf);  // exactly on the critical point
  const auto v = buf.vertices_of(buf.meshes()[0]);
  // Untransformed square of half-width radius.
  EXPECT_NEAR(std::abs(v[1].x - v[0].x), 16.0f, 1e-4f);
  EXPECT_NEAR(std::abs(v[2].y - v[0].y), 16.0f, 1e-4f);
}

TEST(SpotGeometry, EllipseRotatesWithFlowDirection) {
  auto config = base_config();
  config.kind = core::SpotKind::kEllipse;
  const Rect domain{0, 0, 256, 256};
  const auto f = field::analytic::uniform({0.0, 4.0}, domain);  // straight up
  const core::SpotGeometryGenerator gen(config, *f);
  render::CommandBuffer buf;
  gen.generate({{128.0, 128.0}, 1.0}, buf);
  const auto v = buf.vertices_of(buf.meshes()[0]);
  // The long axis must now be vertical in pixel space.
  const float dx = std::abs(v[1].x - v[0].x);
  const float dy = std::abs(v[1].y - v[0].y);
  EXPECT_GT(dy, dx);
}

// -------------------------------------------------------------- bent spots ---

TEST(SpotGeometry, BentSpotFollowsStraightFlow) {
  auto config = base_config();
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 9;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 64.0;
  const Rect domain{0, 0, 256, 256};
  const auto f = field::analytic::uniform({1.0, 0.0}, domain);
  const core::SpotGeometryGenerator gen(config, *f);

  render::CommandBuffer buf;
  gen.generate({{128.0, 128.0}, 1.0}, buf);
  ASSERT_EQ(buf.mesh_count(), 1u);
  const auto& h = buf.meshes()[0];
  EXPECT_EQ(h.cols, 9);
  EXPECT_EQ(h.rows, 3);
  const auto v = buf.vertices_of(h);
  // The center spine row (j = 1) runs along y = 128 spanning ~64 px.
  const std::size_t row = 9;
  EXPECT_NEAR(v[row].y, 128.0f, 1e-3f);
  EXPECT_NEAR(v[row + 8].y, 128.0f, 1e-3f);
  EXPECT_NEAR(v[row + 8].x - v[row].x, 64.0f, 1.0f);
  // Cross rows sit one radius above/below the spine.
  EXPECT_NEAR(v[0].y, 120.0f, 1e-3f);
  EXPECT_NEAR(v[18].y, 136.0f, 1e-3f);
}

TEST(SpotGeometry, BentSpotBendsAroundVortex) {
  auto config = base_config();
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 17;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 96.0;
  const Rect domain{-128, -128, 128, 128};
  const auto f = field::analytic::rigid_vortex({0, 0}, 1.0, domain);
  const core::SpotGeometryGenerator gen(config, *f);

  render::CommandBuffer buf;
  gen.generate({{64.0, 0.0}, 1.0}, buf);
  const auto& h = buf.meshes()[0];
  const auto v = buf.vertices_of(h);
  // Spine points must stay near the streamline circle of radius 64 world
  // units (= 64 px here), i.e. distance from texture center (128,128).
  const std::size_t spine_row = static_cast<std::size_t>(h.cols);  // j = 1
  for (int i = 0; i < h.cols; ++i) {
    const float dx = v[spine_row + static_cast<std::size_t>(i)].x - 128.0f;
    const float dy = v[spine_row + static_cast<std::size_t>(i)].y - 128.0f;
    EXPECT_NEAR(std::hypot(dx, dy), 64.0f, 0.5f);
  }
  // And it must actually bend: the spine deviates from the chord between
  // its endpoints (a straight ribbon would not).
  const auto& first = v[spine_row];
  const auto& last = v[spine_row + static_cast<std::size_t>(h.cols) - 1];
  const double chord_len = std::hypot(last.x - first.x, last.y - first.y);
  double max_deviation = 0.0;
  for (int i = 1; i + 1 < h.cols; ++i) {
    const auto& p = v[spine_row + static_cast<std::size_t>(i)];
    const double cross = (last.x - first.x) * (p.y - first.y) -
                         (last.y - first.y) * (p.x - first.x);
    max_deviation = std::max(max_deviation, std::abs(cross) / chord_len);
  }
  EXPECT_GT(max_deviation, 2.0);  // pixels of sagitta over a 96 px arc
}

TEST(SpotGeometry, BentSpotTruncatesAtBoundary) {
  auto config = base_config();
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 17;
  config.bent.length_px = 64.0;
  const Rect domain{0, 0, 256, 256};
  const auto f = field::analytic::uniform({1.0, 0.0}, domain);
  const core::SpotGeometryGenerator gen(config, *f);
  render::CommandBuffer buf;
  gen.generate({{250.0, 128.0}, 1.0}, buf);  // 6 px from the outflow edge
  const auto& h = buf.meshes()[0];
  EXPECT_LT(h.cols, 17);  // downstream half truncated
  EXPECT_GE(h.cols, 2);
}

TEST(SpotGeometry, BentSpotAtStagnationDegradesToPoint) {
  auto config = base_config();
  config.kind = core::SpotKind::kBent;
  const Rect domain{-1, -1, 1, 1};
  const auto f = field::analytic::saddle({0, 0}, 1.0, domain);
  const core::SpotGeometryGenerator gen(config, *f);
  render::CommandBuffer buf;
  gen.generate({{0.0, 0.0}, 1.0}, buf);
  ASSERT_EQ(buf.mesh_count(), 1u);
  EXPECT_EQ(buf.meshes()[0].cols, 2);  // point-spot fallback
  EXPECT_EQ(buf.meshes()[0].rows, 2);
}

TEST(SpotGeometry, SubstepsDoNotChangeVertexCount) {
  for (const int substeps : {1, 2, 8}) {
    auto config = base_config();
    config.kind = core::SpotKind::kBent;
    config.bent.mesh_cols = 9;
    config.bent.trace_substeps = substeps;
    const Rect domain{0, 0, 256, 256};
    const auto f = field::analytic::uniform({1.0, 0.0}, domain);
    const core::SpotGeometryGenerator gen(config, *f);
    render::CommandBuffer buf;
    gen.generate({{128.0, 128.0}, 1.0}, buf);
    EXPECT_EQ(buf.meshes()[0].cols, 9) << "substeps = " << substeps;
  }
}

TEST(SpotGeometry, SubstepsImproveSpineAccuracy) {
  // On a vortex, higher substep counts keep the decimated spine closer to
  // the true circular streamline.
  auto config = base_config();
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 9;
  config.bent.length_px = 120.0;
  const Rect domain{-128, -128, 128, 128};
  const auto f = field::analytic::rankine_vortex({0, 0}, 800.0, 30.0, domain);

  auto spine_error = [&](int substeps) {
    auto c = config;
    c.bent.trace_substeps = substeps;
    const core::SpotGeometryGenerator gen(c, *f);
    render::CommandBuffer buf;
    gen.generate({{40.0, 0.0}, 1.0}, buf);
    const auto& h = buf.meshes()[0];
    const auto v = buf.vertices_of(h);
    double worst = 0.0;
    const auto spine = static_cast<std::size_t>(h.cols);
    for (int i = 0; i < h.cols; ++i) {
      const double dx = v[spine + static_cast<std::size_t>(i)].x - 128.0;
      const double dy = v[spine + static_cast<std::size_t>(i)].y - 128.0;
      worst = std::max(worst, std::abs(std::hypot(dx, dy) - 40.0));
    }
    return worst;
  };
  EXPECT_LT(spine_error(8), spine_error(1));
}

// ------------------------------------------------------------- max extent ---

TEST(SpotGeometry, MaxExtentBoundsGeneratedGeometry) {
  // Property: every vertex of any generated spot lies within max_extent_px
  // of the spot's mapped position. The tiling preprocessor relies on this.
  for (const auto kind :
       {core::SpotKind::kPoint, core::SpotKind::kEllipse, core::SpotKind::kBent}) {
    auto config = base_config();
    config.kind = kind;
    const Rect domain{-128, -128, 128, 128};
    const auto f = field::analytic::rigid_vortex({0, 0}, 1.0, domain);
    const core::SpotGeometryGenerator gen(config, *f);
    const double extent = gen.max_extent_px();
    util::Rng rng(99);
    for (int k = 0; k < 100; ++k) {
      const core::SpotInstance spot{
          {rng.uniform(-128, 128), rng.uniform(-128, 128)}, 1.0};
      render::CommandBuffer buf;
      gen.generate(spot, buf);
      const auto [px, py] = gen.mapping().map(spot.position);
      for (const auto& h : buf.meshes()) {
        for (const auto& v : buf.vertices_of(h)) {
          EXPECT_LE(std::abs(v.x - px), extent + 1e-3);
          EXPECT_LE(std::abs(v.y - py), extent + 1e-3);
        }
      }
    }
  }
}

TEST(SpotGeometry, RejectsInvalidConfig) {
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  auto bad = base_config();
  bad.spot_radius_px = 0.0;
  EXPECT_THROW(core::SpotGeometryGenerator(bad, *f), util::Error);
  bad = base_config();
  bad.bent.mesh_cols = 1;
  EXPECT_THROW(core::SpotGeometryGenerator(bad, *f), util::Error);
  bad = base_config();
  bad.bent.trace_substeps = 0;
  EXPECT_THROW(core::SpotGeometryGenerator(bad, *f), util::Error);
}

}  // namespace
