// Unit tests for the software graphics subsystem: framebuffer, spot
// profiles, rasterizer (fill rule, UV interpolation, clipping), command
// buffers, colormaps, images and overlays.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "render/colormap.hpp"
#include "render/command_buffer.hpp"
#include "render/compose.hpp"
#include "render/framebuffer.hpp"
#include "render/image.hpp"
#include "render/overlay.hpp"
#include "render/rasterizer.hpp"
#include "render/spot_profile.hpp"
#include "util/simd.hpp"
#include "util/error.hpp"

namespace {

using namespace dcsn;
using render::MeshVertex;

// ------------------------------------------------------------ Framebuffer ---

TEST(Framebuffer, ClearAndAccess) {
  render::Framebuffer fb(8, 4);
  fb.clear(0.5f);
  EXPECT_EQ(fb.at(7, 3), 0.5f);
  fb.at(2, 1) = -1.0f;
  EXPECT_EQ(fb.at(2, 1), -1.0f);
  EXPECT_EQ(fb.pixel_count(), 32u);
  EXPECT_EQ(fb.byte_size(), 128u);
}

TEST(Framebuffer, AccumulateAdds) {
  render::Framebuffer a(4, 4), b(4, 4);
  a.clear(1.0f);
  b.clear(0.25f);
  a.accumulate(b);
  EXPECT_EQ(a.at(3, 3), 1.25f);
}

TEST(Framebuffer, AccumulateRejectsSizeMismatch) {
  render::Framebuffer a(4, 4), b(4, 5);
  EXPECT_THROW(a.accumulate(b), util::Error);
}

TEST(Framebuffer, CopyRectPlacesTile) {
  render::Framebuffer big(8, 8), tile(3, 2);
  tile.clear(2.0f);
  big.copy_rect_from(tile, 4, 5);
  EXPECT_EQ(big.at(4, 5), 2.0f);
  EXPECT_EQ(big.at(6, 6), 2.0f);
  EXPECT_EQ(big.at(3, 5), 0.0f);
  EXPECT_EQ(big.at(4, 4), 0.0f);
  EXPECT_THROW(big.copy_rect_from(tile, 7, 7), util::Error);
}

// Hostile origins near INT_MAX: naive `x0 + src.width() <= width()` wraps
// (signed overflow, UB) and can ACCEPT an out-of-bounds rect. The checks
// widen to 64-bit before adding; these inputs must throw, not wrap.
TEST(Framebuffer, CopyRectRejectsOverflowingOrigin) {
  render::Framebuffer big(8, 8), tile(3, 2);
  const int huge = std::numeric_limits<int>::max() - 1;
  EXPECT_THROW(big.copy_rect_from(tile, huge, 0), util::Error);
  EXPECT_THROW(big.copy_rect_from(tile, 0, huge), util::Error);
  EXPECT_THROW(big.copy_rect_from(tile, huge, huge), util::Error);
  EXPECT_THROW(big.copy_rect_from(tile, -1, 0), util::Error);
  EXPECT_THROW(big.copy_rect_from(tile, 0, -1), util::Error);
}

TEST(Framebuffer, ExtractRectRoundTripsAndRejectsHostileOrigins) {
  render::Framebuffer big(8, 8), tile(3, 2);
  big.clear(4.0f);
  big.extract_rect_into(tile, 2, 3);
  EXPECT_EQ(tile.at(0, 0), 4.0f);
  EXPECT_EQ(tile.at(2, 1), 4.0f);

  const int huge = std::numeric_limits<int>::max() - 1;
  EXPECT_THROW(big.extract_rect_into(tile, huge, 0), util::Error);
  EXPECT_THROW(big.extract_rect_into(tile, 0, huge), util::Error);
  EXPECT_THROW(big.extract_rect_into(tile, huge, huge), util::Error);
  EXPECT_THROW(big.extract_rect_into(tile, -1, -1), util::Error);
  EXPECT_THROW(big.extract_rect_into(tile, 7, 7), util::Error);
}

TEST(Framebuffer, MeanAndMinMax) {
  render::Framebuffer fb(2, 2);
  fb.at(0, 0) = 1.0f;
  fb.at(1, 0) = -1.0f;
  fb.at(0, 1) = 3.0f;
  fb.at(1, 1) = 1.0f;
  EXPECT_DOUBLE_EQ(fb.mean(), 1.0);
  const auto [lo, hi] = fb.min_max();
  EXPECT_EQ(lo, -1.0f);
  EXPECT_EQ(hi, 3.0f);
}

// ------------------------------------------------------------ SpotProfile ---

TEST(SpotProfile, CenterIsBrightestRimIsZero) {
  for (const auto shape : {render::SpotShape::kDisc, render::SpotShape::kGaussian,
                           render::SpotShape::kCosine}) {
    const render::SpotProfile profile(shape, 64);
    const float center = profile.sample(0.5f, 0.5f);
    EXPECT_GT(center, 0.0f) << static_cast<int>(shape);
    // Corners lie outside the inscribed circle.
    EXPECT_EQ(profile.sample(0.02f, 0.02f), 0.0f);
    EXPECT_EQ(profile.sample(0.98f, 0.98f), 0.0f);
    // Outside [0,1]^2 is zero by contract.
    EXPECT_EQ(profile.sample(-0.1f, 0.5f), 0.0f);
    EXPECT_EQ(profile.sample(0.5f, 1.1f), 0.0f);
  }
}

TEST(SpotProfile, RingPeaksAtMidRadius) {
  const render::SpotProfile ring(render::SpotShape::kRing, 128);
  const float center = ring.sample(0.5f, 0.5f);
  const float mid = ring.sample(0.75f, 0.5f);  // r = 0.5
  EXPECT_GT(mid, center);
}

TEST(SpotProfile, EnergyNormalizedAcrossShapes) {
  // All shapes integrate to the same mean (0.25) over the unit square, so
  // switching shapes keeps texture contrast comparable.
  for (const auto shape : {render::SpotShape::kDisc, render::SpotShape::kGaussian,
                           render::SpotShape::kCosine, render::SpotShape::kRing}) {
    const render::SpotProfile profile(shape, 64);
    double sum = 0.0;
    constexpr int kN = 200;
    for (int y = 0; y < kN; ++y)
      for (int x = 0; x < kN; ++x)
        sum += profile.sample((x + 0.5f) / kN, (y + 0.5f) / kN);
    EXPECT_NEAR(sum / (kN * kN), 0.25, 0.02) << static_cast<int>(shape);
  }
}

TEST(SpotProfile, IsRadiallySymmetric) {
  const render::SpotProfile profile(render::SpotShape::kCosine, 128);
  const float right = profile.sample(0.75f, 0.5f);
  const float left = profile.sample(0.25f, 0.5f);
  const float up = profile.sample(0.5f, 0.75f);
  EXPECT_NEAR(right, left, 1e-5f);
  EXPECT_NEAR(right, up, 1e-5f);
}

// ---------------------------------------------------------- CommandBuffer ---

TEST(CommandBuffer, AddMeshLayout) {
  render::CommandBuffer buf;
  auto v = buf.add_mesh(0.5f, 3, 2);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(buf.mesh_count(), 1u);
  EXPECT_EQ(buf.vertex_count(), 6u);
  const auto& h = buf.meshes()[0];
  EXPECT_EQ(h.cols, 3);
  EXPECT_EQ(h.rows, 2);
  EXPECT_EQ(h.intensity, 0.5f);
  EXPECT_EQ(buf.vertices_of(h).size(), 6u);
}

TEST(CommandBuffer, ByteSizeMatchesBandwidthAccounting) {
  render::CommandBuffer buf;
  buf.add_mesh(1.0f, 32, 17);  // the paper's atmospheric mesh
  // 544 vertices * 16 bytes + 1 header * 12 bytes.
  EXPECT_EQ(buf.byte_size(), 544u * 16u + sizeof(render::MeshHeader));
}

TEST(CommandBuffer, SecondMeshOffsets) {
  render::CommandBuffer buf;
  buf.add_mesh(1.0f, 2, 2);
  auto v2 = buf.add_mesh(2.0f, 2, 2);
  v2[0].x = 99.0f;
  EXPECT_EQ(buf.meshes()[1].vertex_offset, 4u);
  EXPECT_EQ(buf.vertices_of(buf.meshes()[1])[0].x, 99.0f);
}

TEST(CommandBuffer, RejectsDegenerateMesh) {
  render::CommandBuffer buf;
  EXPECT_THROW(buf.add_mesh(1.0f, 1, 2), util::Error);
}

// -------------------------------------------------------------- Rasterizer ---

render::SpotProfile flat_profile() {
  // A disc profile normalized to mean 0.25 has value 0.25/(pi/4) ~ 0.318
  // inside the inscribed circle. For coverage tests we want a profile that
  // is 1 everywhere, so use the disc and divide expectations by its level.
  return render::SpotProfile(render::SpotShape::kDisc, 64);
}

// Fills a rectangle [0,w]x[0,h] with a 2x2 mesh and returns the framebuffer.
render::Framebuffer raster_rect(int fbw, int fbh, float x0, float y0, float x1,
                                float y1, float weight = 1.0f) {
  render::Framebuffer fb(fbw, fbh);
  const render::SpotProfile profile = flat_profile();
  render::CommandBuffer buf;
  auto v = buf.add_mesh(weight, 2, 2);
  // Constant UV at the profile center: every fragment samples the same value.
  v[0] = {x0, y0, 0.5f, 0.5f};
  v[1] = {x1, y0, 0.5f, 0.5f};
  v[2] = {x0, y1, 0.5f, 0.5f};
  v[3] = {x1, y1, 0.5f, 0.5f};
  render::RasterStats stats;
  render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                           render::BlendMode::kAdditive, stats);
  return fb;
}

int count_nonzero(const render::Framebuffer& fb) {
  int count = 0;
  for (int y = 0; y < fb.height(); ++y)
    for (int x = 0; x < fb.width(); ++x)
      if (fb.at(x, y) != 0.0f) ++count;
  return count;
}

TEST(Rasterizer, PixelExactRectangleCoverage) {
  // A rectangle covering [2,6)x[1,5) in pixel coordinates touches exactly
  // those pixel centers: 4x4 = 16 pixels.
  const auto fb = raster_rect(16, 16, 2.0f, 1.0f, 6.0f, 5.0f);
  EXPECT_EQ(count_nonzero(fb), 16);
  EXPECT_NE(fb.at(2, 1), 0.0f);
  EXPECT_NE(fb.at(5, 4), 0.0f);
  EXPECT_EQ(fb.at(6, 4), 0.0f);  // right edge exclusive
  EXPECT_EQ(fb.at(2, 5), 0.0f);  // bottom edge exclusive
}

TEST(Rasterizer, SharedQuadEdgeBlendsEachPixelOnce) {
  // Two quads of one mesh share the edge x = 8: with the top-left fill rule
  // no pixel may receive two contributions (additive doubling would show).
  render::Framebuffer fb(32, 16);
  const render::SpotProfile profile = flat_profile();
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, 3, 2);
  v[0] = {2.0f, 2.0f, 0.5f, 0.5f};
  v[1] = {8.0f, 2.0f, 0.5f, 0.5f};
  v[2] = {14.0f, 2.0f, 0.5f, 0.5f};
  v[3] = {2.0f, 10.0f, 0.5f, 0.5f};
  v[4] = {8.0f, 10.0f, 0.5f, 0.5f};
  v[5] = {14.0f, 10.0f, 0.5f, 0.5f};
  render::RasterStats stats;
  render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                           render::BlendMode::kAdditive, stats);
  EXPECT_EQ(stats.quads, 2);
  // All covered pixels must carry the same value (single contribution).
  const float value = fb.at(4, 4);
  ASSERT_NE(value, 0.0f);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 32; ++x) {
      const float p = fb.at(x, y);
      EXPECT_TRUE(p == 0.0f || std::abs(p - value) < 1e-6f)
          << "pixel (" << x << "," << y << ") = " << p;
    }
  // Total coverage = 12 x 8 pixels.
  EXPECT_EQ(count_nonzero(fb), 96);
}

TEST(Rasterizer, WindingOrderDoesNotMatter) {
  // A folded ribbon flips triangle winding; both orientations must fill.
  render::Framebuffer fb1(16, 16), fb2(16, 16);
  const render::SpotProfile profile = flat_profile();
  const MeshVertex a{2, 2, 0.5f, 0.5f}, b{10, 2, 0.5f, 0.5f}, c{2, 10, 0.5f, 0.5f};
  render::RasterStats stats;
  render::rasterize_triangle({fb1.pixels(), 0, 0}, a, b, c, 1.0f, profile,
                             render::BlendMode::kAdditive, stats);
  render::rasterize_triangle({fb2.pixels(), 0, 0}, a, c, b, 1.0f, profile,
                             render::BlendMode::kAdditive, stats);
  EXPECT_EQ(count_nonzero(fb1), count_nonzero(fb2));
  EXPECT_GT(count_nonzero(fb1), 20);
}

TEST(Rasterizer, DegenerateTriangleIsSkipped) {
  render::Framebuffer fb(8, 8);
  const render::SpotProfile profile = flat_profile();
  render::RasterStats stats;
  const MeshVertex a{1, 1, 0.5f, 0.5f}, b{5, 5, 0.5f, 0.5f};
  render::rasterize_triangle({fb.pixels(), 0, 0}, a, a, b, 1.0f, profile,
                             render::BlendMode::kAdditive, stats);
  EXPECT_EQ(count_nonzero(fb), 0);
  EXPECT_EQ(stats.fragments, 0);
}

TEST(Rasterizer, NonFiniteVerticesAreSkipped) {
  render::Framebuffer fb(8, 8);
  const render::SpotProfile profile = flat_profile();
  render::RasterStats stats;
  const float nan = std::nanf("");
  const MeshVertex a{nan, 1, 0.5f, 0.5f}, b{5, 1, 0.5f, 0.5f}, c{3, 6, 0.5f, 0.5f};
  render::rasterize_triangle({fb.pixels(), 0, 0}, a, b, c, 1.0f, profile,
                             render::BlendMode::kAdditive, stats);
  EXPECT_EQ(count_nonzero(fb), 0);
}

TEST(Rasterizer, ClipsToTargetBounds) {
  // Geometry hanging off all four sides must only touch valid pixels.
  const auto fb = raster_rect(8, 8, -5.0f, -5.0f, 13.0f, 13.0f);
  EXPECT_EQ(count_nonzero(fb), 64);
}

TEST(Rasterizer, ViewportOriginShiftsGeometry) {
  // Tile rasterization: a tile at origin (8, 4) sees global coordinates.
  render::Framebuffer tile(8, 8);
  const render::SpotProfile profile = flat_profile();
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, 2, 2);
  v[0] = {8.0f, 4.0f, 0.5f, 0.5f};
  v[1] = {12.0f, 4.0f, 0.5f, 0.5f};
  v[2] = {8.0f, 8.0f, 0.5f, 0.5f};
  v[3] = {12.0f, 8.0f, 0.5f, 0.5f};
  render::RasterStats stats;
  render::rasterize_buffer({tile.pixels(), 8, 4}, buf, profile,
                           render::BlendMode::kAdditive, stats);
  EXPECT_EQ(count_nonzero(tile), 16);
  EXPECT_NE(tile.at(0, 0), 0.0f);  // global (8,4) = local (0,0)
}

TEST(Rasterizer, AdditiveBlendAccumulates) {
  auto fb = raster_rect(8, 8, 1, 1, 5, 5, 1.0f);
  const float single = fb.at(2, 2);
  const render::SpotProfile profile = flat_profile();
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, 2, 2);
  v[0] = {1, 1, 0.5f, 0.5f};
  v[1] = {5, 1, 0.5f, 0.5f};
  v[2] = {1, 5, 0.5f, 0.5f};
  v[3] = {5, 5, 0.5f, 0.5f};
  render::RasterStats stats;
  render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                           render::BlendMode::kAdditive, stats);
  EXPECT_NEAR(fb.at(2, 2), 2.0f * single, 1e-6f);
}

TEST(Rasterizer, MaximumBlendTakesMax) {
  render::Framebuffer fb(8, 8);
  const render::SpotProfile profile = flat_profile();
  render::CommandBuffer buf;
  auto add_quad = [&buf](float w) {
    auto v = buf.add_mesh(w, 2, 2);
    v[0] = {1, 1, 0.5f, 0.5f};
    v[1] = {5, 1, 0.5f, 0.5f};
    v[2] = {1, 5, 0.5f, 0.5f};
    v[3] = {5, 5, 0.5f, 0.5f};
  };
  add_quad(1.0f);
  add_quad(0.5f);  // smaller: must not reduce the max
  render::RasterStats stats;
  render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                           render::BlendMode::kMaximum, stats);
  const float center_profile = profile.sample(0.5f, 0.5f);
  // Blended values sit on the contribution lattice (util/simd.hpp), so the
  // raw profile sample can differ by up to half a quantum.
  EXPECT_NEAR(fb.at(2, 2), center_profile, util::simd::kContributionQuantum);
}

TEST(Rasterizer, NegativeWeightSubtracts) {
  // Spot intensities are zero-mean: negative spots darken.
  const auto fb = raster_rect(8, 8, 1, 1, 5, 5, -1.0f);
  EXPECT_LT(fb.at(2, 2), 0.0f);
}

TEST(Rasterizer, UvInterpolationSamplesProfile) {
  // Rasterize a quad with full UV range; the framebuffer must reproduce the
  // profile's radial falloff (center bright, corners zero).
  render::Framebuffer fb(64, 64);
  const render::SpotProfile profile(render::SpotShape::kGaussian, 64);
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, 2, 2);
  v[0] = {0, 0, 0, 0};
  v[1] = {64, 0, 1, 0};
  v[2] = {0, 64, 0, 1};
  v[3] = {64, 64, 1, 1};
  render::RasterStats stats;
  render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                           render::BlendMode::kAdditive, stats);
  EXPECT_GT(fb.at(32, 32), fb.at(16, 16));
  EXPECT_GT(fb.at(16, 16), 0.0f);
  EXPECT_EQ(fb.at(1, 1), 0.0f);  // outside the inscribed circle
  EXPECT_EQ(stats.fragments, 64 * 64);
}

TEST(Rasterizer, StatsCountQuadsAndTriangles) {
  render::Framebuffer fb(32, 32);
  const render::SpotProfile profile = flat_profile();
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, 4, 3);  // 3x2 quads
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 4; ++i)
      v[static_cast<std::size_t>(j * 4 + i)] = {static_cast<float>(4 * i),
                                                static_cast<float>(4 * j), 0.5f, 0.5f};
  render::RasterStats stats;
  render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                           render::BlendMode::kAdditive, stats);
  EXPECT_EQ(stats.quads, 6);
  EXPECT_EQ(stats.triangles, 12);
}

// ---------------------------------------------------------------- compose ---

TEST(Compose, GatherBlendSums) {
  std::vector<render::Framebuffer> parts;
  parts.emplace_back(4, 4);
  parts.emplace_back(4, 4);
  parts[0].clear(1.0f);
  parts[1].clear(2.5f);
  render::Framebuffer final_texture(4, 4);
  final_texture.clear(99.0f);  // must be overwritten, not accumulated into
  const auto pixels = render::gather_blend(final_texture, parts);
  EXPECT_EQ(pixels, 32);
  EXPECT_EQ(final_texture.at(2, 2), 3.5f);
}

TEST(Compose, TilesComposeDisjointly) {
  std::vector<render::Framebuffer> tiles;
  tiles.emplace_back(2, 4);
  tiles.emplace_back(2, 4);
  tiles[0].clear(1.0f);
  tiles[1].clear(2.0f);
  const std::vector<render::TilePlacement> placements = {{0, 0}, {2, 0}};
  render::Framebuffer final_texture(4, 4);
  render::compose_tiles(final_texture, tiles, placements);
  EXPECT_EQ(final_texture.at(0, 0), 1.0f);
  EXPECT_EQ(final_texture.at(1, 3), 1.0f);
  EXPECT_EQ(final_texture.at(2, 0), 2.0f);
  EXPECT_EQ(final_texture.at(3, 3), 2.0f);
}

TEST(Compose, MaskedComposeRetainsCleanRegions) {
  // The temporal-coherence merge: dirty tiles are copied over, clean tiles'
  // regions keep the previous frame's pixels, and a clean entry's buffer is
  // never read (it may be empty — the engine skips its readback entirely).
  std::vector<render::Framebuffer> tiles(2);
  tiles[1] = render::Framebuffer(2, 4);
  tiles[1].clear(7.0f);
  const std::vector<render::TilePlacement> placements = {{0, 0}, {2, 0}};
  const std::vector<std::uint8_t> dirty = {0, 1};
  render::Framebuffer final_texture(4, 4);
  final_texture.clear(3.0f);  // "previous frame"
  const auto pixels =
      render::compose_tiles_masked(final_texture, tiles, placements, dirty);
  EXPECT_EQ(pixels, 8);
  EXPECT_EQ(final_texture.at(0, 0), 3.0f);  // retained
  EXPECT_EQ(final_texture.at(1, 3), 3.0f);
  EXPECT_EQ(final_texture.at(2, 0), 7.0f);  // freshly composed
  EXPECT_EQ(final_texture.at(3, 3), 7.0f);
}

// --------------------------------------------------------------- colormap ---

TEST(Colormap, EndpointsAndClamping) {
  using render::ColormapKind;
  // Grayscale endpoints.
  EXPECT_EQ(render::colormap(ColormapKind::kGrayscale, 0.0), (render::Rgb{0, 0, 0}));
  EXPECT_EQ(render::colormap(ColormapKind::kGrayscale, 1.0),
            (render::Rgb{255, 255, 255}));
  // Rainbow: blue at 0, red at 1 (the paper's map).
  const auto blue = render::colormap(ColormapKind::kRainbow, 0.0);
  EXPECT_GT(blue.b, 200);
  EXPECT_LT(blue.r, 50);
  const auto red = render::colormap(ColormapKind::kRainbow, 1.0);
  EXPECT_GT(red.r, 200);
  EXPECT_LT(red.b, 50);
  // Values outside [0,1] clamp instead of wrapping.
  EXPECT_EQ(render::colormap(ColormapKind::kRainbow, -5.0), blue);
  EXPECT_EQ(render::colormap(ColormapKind::kRainbow, 5.0), red);
}

TEST(Colormap, DivergingIsWhiteAtCenter) {
  const auto mid = render::colormap(render::ColormapKind::kDiverging, 0.5);
  EXPECT_GT(mid.r, 240);
  EXPECT_GT(mid.g, 240);
  EXPECT_GT(mid.b, 240);
}

TEST(Colormap, ViridisIsMonotonicInLuminance) {
  double last = -1.0;
  for (int k = 0; k <= 10; ++k) {
    const auto c = render::colormap(render::ColormapKind::kViridis, k / 10.0);
    const double luma = 0.2126 * c.r + 0.7152 * c.g + 0.0722 * c.b;
    EXPECT_GT(luma, last);
    last = luma;
  }
}

// ------------------------------------------------------------------ image ---

TEST(Image, ToneMapCentersZeroAtMidGray) {
  render::Framebuffer fb(4, 4);  // all zeros
  const render::Image img = render::texture_to_image(fb);
  EXPECT_EQ(img.at(0, 0).r, 128);  // lround(0.5 * 255) rounds half up
}

TEST(Image, ToneMapUsesSymmetricRange) {
  render::Framebuffer fb(2, 1);
  fb.at(0, 0) = -1.0f;
  fb.at(1, 0) = 1.0f;
  const render::Image img = render::texture_to_image(fb);
  // Symmetric values map symmetrically around mid-gray.
  EXPECT_NEAR(img.at(0, 0).r + img.at(1, 0).r, 255, 1);
  EXPECT_LT(img.at(0, 0).r, img.at(1, 0).r);
}

TEST(Image, BlendIgnoresOutOfBounds) {
  render::Image img(2, 2);
  EXPECT_NO_THROW(img.blend(-1, 0, {255, 0, 0}, 1.0));
  EXPECT_NO_THROW(img.blend(5, 5, {255, 0, 0}, 1.0));
  img.blend(1, 1, {200, 100, 50}, 1.0);
  EXPECT_EQ(img.at(1, 1), (render::Rgb{200, 100, 50}));
  img.blend(1, 1, {0, 0, 0}, 0.5);
  EXPECT_EQ(img.at(1, 1).r, 100);
}

TEST(Image, StddevOfConstantIsZero) {
  render::Framebuffer fb(8, 8);
  fb.clear(3.0f);
  EXPECT_NEAR(render::texture_stddev(fb), 0.0, 1e-9);
}

// ---------------------------------------------------------------- overlay ---

TEST(Overlay, WorldToImageMapsCornersAndFlipsY) {
  const render::WorldToImage mapping(field::Rect{0, 0, 10, 20}, 100, 200);
  auto [x0, y0] = mapping.map({0.0, 0.0});
  EXPECT_NEAR(x0, 0.0, 1e-12);
  EXPECT_NEAR(y0, 200.0, 1e-12);  // world bottom -> image bottom row
  auto [x1, y1] = mapping.map({10.0, 20.0});
  EXPECT_NEAR(x1, 100.0, 1e-12);
  EXPECT_NEAR(y1, 0.0, 1e-12);
  // unmap is the inverse.
  const auto p = mapping.unmap(50.0, 100.0);
  EXPECT_NEAR(p.x, 5.0, 1e-12);
  EXPECT_NEAR(p.y, 10.0, 1e-12);
}

TEST(Overlay, ScalarOverlayRespectsAlpha) {
  render::Image img(8, 8);
  const render::WorldToImage mapping(field::Rect{0, 0, 1, 1}, 8, 8);
  // Left half value 0 (alpha 0 -> untouched), right half value 1 (opaque).
  render::overlay_scalar(
      img, mapping, [](field::Vec2 p) { return p.x < 0.5 ? 0.0 : 1.0; }, 0.0, 1.0,
      render::ColormapKind::kGrayscale, [](double t) { return t; });
  EXPECT_EQ(img.at(0, 4), (render::Rgb{0, 0, 0}));
  EXPECT_GT(img.at(7, 4).r, 200);
}

TEST(Overlay, PolylineDrawsConnectedPixels) {
  render::Image img(32, 32);
  const render::WorldToImage mapping(field::Rect{0, 0, 32, 32}, 32, 32);
  const std::vector<field::Vec2> line = {{2.0, 16.0}, {30.0, 16.0}};
  render::draw_polyline(img, mapping, line, {255, 0, 0}, 1.0, 1);
  int red = 0;
  for (int x = 0; x < 32; ++x)
    for (int y = 0; y < 32; ++y)
      if (img.at(x, y).r == 255) ++red;
  EXPECT_GE(red, 25);  // a near-horizontal line of ~28 pixels
}

TEST(Overlay, FillRectCoversWorldRect) {
  render::Image img(16, 16);
  const render::WorldToImage mapping(field::Rect{0, 0, 16, 16}, 16, 16);
  render::fill_rect(img, mapping, field::Rect{4, 4, 8, 8}, {0, 255, 0});
  EXPECT_EQ(img.at(6, 9).g, 255);   // inside (world y=6 -> image y=9)
  EXPECT_EQ(img.at(1, 1).g, 0);     // outside
}

}  // namespace
