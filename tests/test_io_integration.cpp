// PPM round trips plus end-to-end integration tests that run the full
// pipeline of figure 3/5: read data -> advect -> synthesize -> image.
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "core/animator.hpp"
#include "core/dnc_synthesizer.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "io/ppm.hpp"
#include "render/scene.hpp"
#include "sim/smog_model.hpp"
#include "util/error.hpp"

namespace {

using namespace dcsn;
using field::Rect;

// --------------------------------------------------------------------- ppm ---

TEST(Ppm, RoundTripPreservesPixels) {
  const std::string path = testing::TempDir() + "/dcsn_ppm_test.ppm";
  render::Image img(7, 5);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 7; ++x)
      img.at(x, y) = {static_cast<std::uint8_t>(x * 30),
                      static_cast<std::uint8_t>(y * 50),
                      static_cast<std::uint8_t>((x + y) * 10)};
  io::write_ppm(path, img);
  const auto back = io::read_ppm(path);
  ASSERT_EQ(back.width(), 7);
  ASSERT_EQ(back.height(), 5);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 7; ++x) EXPECT_EQ(back.at(x, y), img.at(x, y));
  std::filesystem::remove(path);
}

TEST(Ppm, WritesPgmForTexture) {
  const std::string path = testing::TempDir() + "/dcsn_pgm_test.pgm";
  render::Framebuffer fb(8, 8);
  fb.at(4, 4) = 1.0f;
  io::write_pgm(path, fb);
  EXPECT_GT(std::filesystem::file_size(path), 64u);  // header + 64 pixels
  std::filesystem::remove(path);
}

TEST(Ppm, RejectsBadPath) {
  render::Image img(2, 2);
  EXPECT_THROW(io::write_ppm("/nonexistent_dir_xyz/out.ppm", img), util::Error);
  EXPECT_THROW((void)io::read_ppm("/nonexistent_dir_xyz/in.ppm"), util::Error);
}

TEST(Ppm, PgmRoundTripRecoversBytes) {
  const std::string path = testing::TempDir() + "/dcsn_pgm_roundtrip.pgm";
  render::Framebuffer fb(9, 6);
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 9; ++x) fb.at(x, y) = 0.1f * static_cast<float>(x - 4);
  io::write_pgm(path, fb);
  const render::Image back = io::read_pgm(path);
  const render::Image expected = render::texture_to_image(fb);
  ASSERT_EQ(back.width(), 9);
  ASSERT_EQ(back.height(), 6);
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 9; ++x) EXPECT_EQ(back.at(x, y), expected.at(x, y));
  std::filesystem::remove(path);
}

TEST(Ppm, OutOfGamutAndNonFiniteValuesWriteDeterministically) {
  // Hostile framebuffer contents: NaN, +/-inf and values far outside the
  // tone-mapped gamut must clamp/flush to defined bytes — the float->byte
  // cast was UB on NaN before the sanitize in texture_to_image.
  const std::string path = testing::TempDir() + "/dcsn_pgm_hostile.pgm";
  render::Framebuffer fb(4, 2);
  fb.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  fb.at(1, 0) = std::numeric_limits<float>::infinity();
  fb.at(2, 0) = -std::numeric_limits<float>::infinity();
  fb.at(3, 0) = 1.0e30f;   // out of gamut high
  fb.at(0, 1) = -1.0e30f;  // out of gamut low
  fb.at(1, 1) = 0.5f;
  fb.at(2, 1) = -0.5f;

  // Fixed gain so the expectations are exact: gray = 0.5 + value, clamped.
  render::ToneMap tone;
  tone.auto_gain = false;
  tone.gain = 1.0;
  const render::Image img = render::texture_to_image(fb, tone);
  // Non-finite flushes to the texture's neutral zero -> mid-gray.
  EXPECT_EQ(img.at(0, 0).r, 128);
  EXPECT_EQ(img.at(1, 0).r, 128);
  EXPECT_EQ(img.at(2, 0).r, 128);
  // Finite out-of-gamut clamps to the byte range ends.
  EXPECT_EQ(img.at(3, 0).r, 255);
  EXPECT_EQ(img.at(0, 1).r, 0);
  EXPECT_EQ(img.at(1, 1).r, 255);
  EXPECT_EQ(img.at(2, 1).r, 0);

  // And the whole pipeline (auto-gain included) survives the NaN: the
  // write + read round trip reproduces texture_to_image exactly.
  io::write_pgm(path, fb);
  const render::Image back = io::read_pgm(path);
  const render::Image expected = render::texture_to_image(fb);
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 4; ++x) EXPECT_EQ(back.at(x, y), expected.at(x, y));
  std::filesystem::remove(path);

  // render_scene shares the same sanitized tone-map path: the NaN corner
  // resamples to defined neutral mid-gray, never an undefined cast.
  render::SceneView view;
  view.out_width = 8;
  view.out_height = 8;
  view.texture_world = {0.0, 0.0, 1.0, 1.0};
  view.window = view.texture_world;
  view.tone = tone;
  const render::Image scene = render::render_scene(fb, view);
  EXPECT_EQ(scene.at(0, 0).r, 128);
}

// --------------------------------------------------------------- Animator ---

TEST(Animator, RunsFullPipeline) {
  core::SynthesisConfig config;
  config.texture_width = 128;
  config.texture_height = 128;
  config.spot_count = 300;
  const Rect domain{0, 0, 2, 1};
  const auto f = field::analytic::double_gyre(0.1, 0.25, 0.6, 0.0);

  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  core::DncSynthesizer synth(config, dnc);

  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  particles::ParticleSystem particles(pc, domain, util::Rng(1));

  core::AnimatorConfig ac;
  ac.high_pass_radius = 4;
  int reads = 0;
  core::Animator animator(ac, synth, particles,
                          [&](std::int64_t) -> const field::VectorField& {
                            ++reads;
                            return *f;
                          });

  const auto frame0 = animator.step();
  const auto frame1 = animator.step();
  EXPECT_EQ(reads, 2);
  EXPECT_EQ(animator.frame_number(), 2);
  ASSERT_NE(frame1.texture, nullptr);
  EXPECT_EQ(frame1.texture->width(), 128);
  EXPECT_GT(render::texture_stddev(*frame1.texture), 0.0);
  EXPECT_GT(frame0.advect_seconds, 0.0);
  EXPECT_GT(frame0.filter_seconds, 0.0);
  EXPECT_GE(frame0.total_seconds,
            frame0.synthesis.frame_seconds + frame0.advect_seconds - 1e-6);
}

TEST(Animator, TextureEvolvesBetweenFrames) {
  core::SynthesisConfig config;
  config.texture_width = 96;
  config.texture_height = 96;
  config.spot_count = 200;
  const Rect domain{0, 0, 2, 1};
  const auto f = field::analytic::double_gyre(0.2, 0.25, 0.6, 0.0);
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  core::DncSynthesizer synth(config, dnc);
  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  particles::ParticleSystem particles(pc, domain, util::Rng(2));
  core::Animator animator({}, synth, particles,
                          [&](std::int64_t) -> const field::VectorField& { return *f; });
  const auto frame0 = animator.step();
  const render::Framebuffer first = *frame0.texture;
  const auto frame1 = animator.step();
  // Advection moved the spots: the texture must change.
  double diff = 0.0;
  for (int y = 0; y < 96; ++y)
    for (int x = 0; x < 96; ++x)
      diff += std::abs(double(first.at(x, y)) - double(frame1.texture->at(x, y)));
  EXPECT_GT(diff, 0.0);
}

TEST(Animator, ValidatesConfig) {
  core::SynthesisConfig config;
  config.texture_width = 32;
  config.texture_height = 32;
  core::DncConfig dnc;
  dnc.processors = 1;
  dnc.pipes = 1;
  core::DncSynthesizer synth(config, dnc);
  particles::ParticleSystemConfig pc;
  pc.count = 10;
  particles::ParticleSystem particles(pc, Rect{0, 0, 1, 1}, util::Rng(3));
  core::AnimatorConfig bad;
  bad.advect_radius_fraction = 0.0;
  EXPECT_THROW(core::Animator(bad, synth, particles,
                              [&](std::int64_t) -> const field::VectorField& {
                                throw std::logic_error("unused");
                              }),
               util::Error);
}

// ------------------------------------------------------------- integration ---

TEST(Integration, SmogWindDrivesSpotNoise) {
  // The §5.1 loop at test scale: step the model, synthesize from its wind.
  sim::SmogParams sp;
  sp.nx = 27;
  sp.ny = 28;
  sim::SmogModel model(sp);
  model.step(0.5);

  core::SynthesisConfig config;
  config.texture_width = 128;
  config.texture_height = 128;
  config.spot_count = 400;
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 8;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 24.0;
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  core::DncSynthesizer synth(config, dnc);
  util::Rng rng(11);
  const auto spots =
      core::make_random_spots(model.wind().domain(), config.spot_count, rng);
  const auto stats = synth.synthesize(model.wind(), spots);
  EXPECT_EQ(stats.spots, 400);
  EXPECT_GT(render::texture_stddev(synth.texture()), 0.0);
}

TEST(Integration, AnisotropyFollowsTheFlow) {
  // In a strong horizontal shear flow, ellipse spots stretch along x, so
  // horizontal neighbor correlation must exceed vertical correlation —
  // the reason spot noise shows the flow at all.
  core::SynthesisConfig config;
  config.texture_width = 256;
  config.texture_height = 256;
  config.spot_count = 3000;
  config.spot_radius_px = 6.0;
  config.kind = core::SpotKind::kEllipse;
  config.ellipse.max_stretch = 4.0;
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::uniform({1.0, 0.0}, domain);
  core::SerialSynthesizer synth(config);
  util::Rng rng(13);
  const auto spots = core::make_random_spots(domain, config.spot_count, rng);
  synth.synthesize(*f, spots);

  const auto& tex = synth.texture();
  double horizontal = 0.0, vertical = 0.0;
  const int lag = 4;
  for (int y = lag; y < 256 - lag; ++y)
    for (int x = lag; x < 256 - lag; ++x) {
      horizontal += double(tex.at(x, y)) * tex.at(x + lag, y);
      vertical += double(tex.at(x, y)) * tex.at(x, y + lag);
    }
  EXPECT_GT(horizontal, vertical * 1.2);
}

TEST(Integration, AdvectedSpotPositionsRevealSeparationLine) {
  // The figure-2 effect: advect the population through the separation
  // field; spot density concentrates near the separation line x = sep_x.
  const Rect domain{0, 0, 2, 1};
  const double sep_x = 1.2;
  const auto f = field::analytic::separation(sep_x, 1.0, domain);
  particles::ParticleSystemConfig pc;
  pc.count = 4000;
  pc.mean_lifetime = 1e9;
  pc.respawn_out_of_domain = false;  // let them pile up
  particles::ParticleSystem particles(pc, domain, util::Rng(17));
  for (int step = 0; step < 150; ++step) particles.advance(*f, 0.02);

  int near_line = 0;
  for (const auto& p : particles.particles())
    if (std::abs(p.position.x - sep_x) < 0.1) ++near_line;
  // Uniform would put ~10% of spots in that band; the e^{-t} contraction
  // toward the line concentrates the overwhelming majority there.
  EXPECT_GT(near_line, 3000);
}

}  // namespace
