// Unit tests for the field layer: grids, interpolation, analytic fields,
// derived quantities, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "field/analytic.hpp"
#include "field/field_io.hpp"
#include "field/field_ops.hpp"
#include "field/grid.hpp"
#include "field/grid_field.hpp"
#include "field/scalar_field.hpp"
#include "field/vec2.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Rect;
using field::Vec2;

// ------------------------------------------------------------------- Vec2 ---

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
}

TEST(Vec2, LengthAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.length(), 5.0);
  EXPECT_DOUBLE_EQ(v.length_sq(), 25.0);
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.length(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});  // zero vector stays zero, no NaN
}

TEST(Vec2, PerpIsCounterclockwise) {
  const Vec2 v{1.0, 0.0};
  EXPECT_EQ(v.perp(), Vec2(0.0, 1.0));
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
}

TEST(Vec2, Lerp) {
  EXPECT_EQ(lerp(Vec2(0, 0), Vec2(2, 4), 0.5), Vec2(1, 2));
  EXPECT_EQ(lerp(Vec2(1, 1), Vec2(3, 3), 0.0), Vec2(1, 1));
  EXPECT_EQ(lerp(Vec2(1, 1), Vec2(3, 3), 1.0), Vec2(3, 3));
}

TEST(RectTest, ContainsAndClamp) {
  const Rect r{0.0, 0.0, 2.0, 1.0};
  EXPECT_TRUE(r.contains({1.0, 0.5}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));  // inclusive edges
  EXPECT_FALSE(r.contains({2.1, 0.5}));
  EXPECT_EQ(r.clamp({3.0, -1.0}), Vec2(2.0, 0.0));
  EXPECT_EQ(r.center(), Vec2(1.0, 0.5));
  EXPECT_EQ(r.at(0.5, 0.5), Vec2(1.0, 0.5));
}

// ----------------------------------------------------------- RegularGrid ---

TEST(RegularGrid, GeometryAndIndexing) {
  const field::RegularGrid g(11, 6, Rect{0.0, 0.0, 10.0, 5.0});
  EXPECT_DOUBLE_EQ(g.dx(), 1.0);
  EXPECT_DOUBLE_EQ(g.dy(), 1.0);
  EXPECT_EQ(g.position(3, 2), Vec2(3.0, 2.0));
  EXPECT_EQ(g.sample_count(), 66u);
  EXPECT_EQ(g.linear_index(3, 2), 2u * 11u + 3u);
}

TEST(RegularGrid, LocateInterior) {
  const field::RegularGrid g(11, 11, Rect{0.0, 0.0, 10.0, 10.0});
  const auto c = g.locate({3.25, 7.5});
  EXPECT_EQ(c.i, 3);
  EXPECT_EQ(c.j, 7);
  EXPECT_NEAR(c.fx, 0.25, 1e-12);
  EXPECT_NEAR(c.fy, 0.5, 1e-12);
}

TEST(RegularGrid, LocateClampsOutside) {
  const field::RegularGrid g(11, 11, Rect{0.0, 0.0, 10.0, 10.0});
  const auto lo = g.locate({-5.0, -5.0});
  EXPECT_EQ(lo.i, 0);
  EXPECT_EQ(lo.j, 0);
  EXPECT_DOUBLE_EQ(lo.fx, 0.0);
  const auto hi = g.locate({15.0, 15.0});
  EXPECT_EQ(hi.i, 9);  // last cell
  EXPECT_DOUBLE_EQ(hi.fx, 1.0);
}

TEST(RegularGrid, RejectsDegenerate) {
  EXPECT_THROW(field::RegularGrid(1, 5, Rect{0, 0, 1, 1}), util::Error);
  EXPECT_THROW(field::RegularGrid(5, 5, Rect{0, 0, 0, 1}), util::Error);
}

// -------------------------------------------------------- RectilinearGrid ---

TEST(RectilinearGrid, LocateInStretchedAxis) {
  field::RectilinearGrid g({0.0, 1.0, 3.0, 7.0}, {0.0, 2.0, 4.0});
  const auto c = g.locate({4.0, 3.0});
  EXPECT_EQ(c.i, 2);  // interval [3, 7]
  EXPECT_EQ(c.j, 1);  // interval [2, 4]
  EXPECT_NEAR(c.fx, 0.25, 1e-12);
  EXPECT_NEAR(c.fy, 0.5, 1e-12);
}

TEST(RectilinearGrid, RejectsUnsortedAxes) {
  EXPECT_THROW(field::RectilinearGrid({0.0, 2.0, 1.0}, {0.0, 1.0}), util::Error);
  EXPECT_THROW(field::RectilinearGrid({0.0, 0.0, 1.0}, {0.0, 1.0}), util::Error);
}

TEST(RectilinearGrid, StretchedAxisProperties) {
  const auto axis = field::RectilinearGrid::stretched_axis(50, 0.0, 10.0, 0.3, 3.0);
  ASSERT_EQ(axis.size(), 50u);
  EXPECT_DOUBLE_EQ(axis.front(), 0.0);
  EXPECT_DOUBLE_EQ(axis.back(), 10.0);
  for (std::size_t k = 1; k < axis.size(); ++k) EXPECT_GT(axis[k], axis[k - 1]);
  // Spacing near the focus should be finer than at the far end.
  const double near_focus = axis[16] - axis[15];  // ~focus * n
  const double far_away = axis[49] - axis[48];
  EXPECT_LT(near_focus, far_away);
}

// --------------------------------------------------------- GridVectorField ---

TEST(GridVectorField, BilinearInterpolationIsExactForLinearFields) {
  // A bilinear interpolant reproduces any field linear in x and y exactly.
  const field::RegularGrid g(8, 8, Rect{0.0, 0.0, 7.0, 7.0});
  field::GridVectorField f(g);
  f.fill([](Vec2 p) { return Vec2{2.0 * p.x - p.y, 0.5 * p.y + 1.0}; });
  util::Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const Vec2 p{rng.uniform(0.0, 7.0), rng.uniform(0.0, 7.0)};
    const Vec2 v = f.sample(p);
    EXPECT_NEAR(v.x, 2.0 * p.x - p.y, 1e-9);
    EXPECT_NEAR(v.y, 0.5 * p.y + 1.0, 1e-9);
  }
}

TEST(GridVectorField, SampleAtNodesMatchesData) {
  const field::RegularGrid g(5, 4, Rect{0.0, 0.0, 4.0, 3.0});
  field::GridVectorField f(g);
  f.at(2, 1) = {5.0, -3.0};
  f.invalidate_max();
  EXPECT_EQ(f.sample({2.0, 1.0}), Vec2(5.0, -3.0));
}

TEST(GridVectorField, ClampsOutsideDomain) {
  const field::RegularGrid g(4, 4, Rect{0.0, 0.0, 3.0, 3.0});
  field::GridVectorField f(g);
  f.fill([](Vec2 p) { return Vec2{p.x, 0.0}; });
  EXPECT_NEAR(f.sample({-10.0, 1.0}).x, 0.0, 1e-12);
  EXPECT_NEAR(f.sample({10.0, 1.0}).x, 3.0, 1e-12);
}

TEST(GridVectorField, MaxMagnitudeTracksData) {
  const field::RegularGrid g(4, 4, Rect{0.0, 0.0, 1.0, 1.0});
  field::GridVectorField f(g);
  EXPECT_DOUBLE_EQ(f.max_magnitude(), 0.0);
  f.at(1, 2) = {3.0, 4.0};
  f.invalidate_max();
  EXPECT_DOUBLE_EQ(f.max_magnitude(), 5.0);
}

TEST(GridVectorField, RejectsMismatchedData) {
  const field::RegularGrid g(4, 4, Rect{0.0, 0.0, 1.0, 1.0});
  EXPECT_THROW(field::GridVectorField(g, std::vector<Vec2>(5)), util::Error);
}

TEST(RectilinearVectorField, InterpolatesOnStretchedGrid) {
  field::RectilinearGrid g({0.0, 1.0, 4.0}, {0.0, 2.0, 3.0});
  field::RectilinearVectorField f(g);
  f.fill([](Vec2 p) { return Vec2{p.x + p.y, p.x * 0.0}; });
  // Linear field reproduced exactly despite non-uniform spacing.
  EXPECT_NEAR(f.sample({2.5, 2.5}).x, 5.0, 1e-9);
}

// ---------------------------------------------------------- analytic zoo ---

TEST(Analytic, UniformFieldIsConstant) {
  const auto f = field::analytic::uniform({2.0, -1.0}, Rect{0, 0, 1, 1});
  EXPECT_EQ(f->sample({0.3, 0.7}), Vec2(2.0, -1.0));
  EXPECT_DOUBLE_EQ(f->max_magnitude(), std::hypot(2.0, -1.0));
}

TEST(Analytic, ShearProfile) {
  const auto f = field::analytic::shear(2.0, Rect{0, 0, 1, 1});
  EXPECT_NEAR(f->sample({0.5, 0.5}).x, 0.0, 1e-12);  // center line
  EXPECT_NEAR(f->sample({0.5, 1.0}).x, 1.0, 1e-12);
  EXPECT_NEAR(f->sample({0.5, 0.0}).x, -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(f->sample({0.5, 0.8}).y, 0.0);
}

TEST(Analytic, RigidVortexIsTangential) {
  const Vec2 center{0.5, 0.5};
  const auto f = field::analytic::rigid_vortex(center, 2.0, Rect{0, 0, 1, 1});
  const Vec2 p{0.8, 0.5};
  const Vec2 v = f->sample(p);
  EXPECT_NEAR(v.dot(p - center), 0.0, 1e-12);      // tangential
  EXPECT_NEAR(v.length(), 2.0 * 0.3, 1e-12);       // omega * r
  EXPECT_GT((p - center).cross(v), 0.0);           // counterclockwise
}

TEST(Analytic, RankineVortexPeaksAtCore) {
  const Vec2 c{0.0, 0.0};
  const Rect domain{-2, -2, 2, 2};
  const auto f = field::analytic::rankine_vortex(c, 2.0 * std::numbers::pi, 0.5, domain);
  const double v_inside = f->sample({0.25, 0.0}).length();
  const double v_core = f->sample({0.5, 0.0}).length();
  const double v_outside = f->sample({1.0, 0.0}).length();
  EXPECT_LT(v_inside, v_core);
  EXPECT_LT(v_outside, v_core);
  EXPECT_NEAR(v_core, 1.0 / 0.5, 1e-9);  // Gamma/(2 pi R)
  EXPECT_EQ(f->sample(c), Vec2{});       // regular at the center
}

TEST(Analytic, SaddleTopology) {
  const auto f = field::analytic::saddle({0.0, 0.0}, 1.0, Rect{-1, -1, 1, 1});
  EXPECT_EQ(f->sample({0.0, 0.0}), Vec2{});              // critical point
  EXPECT_GT(f->sample({0.5, 0.0}).x, 0.0);               // outflow along x
  EXPECT_LT(f->sample({0.0, 0.5}).y, 0.0);               // inflow along y
}

TEST(Analytic, SeparationFieldHasSaddleOnLine) {
  const Rect domain{0, 0, 2, 1};
  const auto f = field::analytic::separation(1.2, 1.0, domain);
  // On the separation line the horizontal velocity vanishes.
  EXPECT_NEAR(f->sample({1.2, 0.3}).x, 0.0, 1e-12);
  // Left of the line flow runs right, right of it flow runs left...
  EXPECT_GT(f->sample({0.5, 0.5}).x, 0.0);
  EXPECT_LT(f->sample({1.8, 0.5}).x, 0.0);
  // ...and the attachment point on the center line is a critical point.
  EXPECT_NEAR(f->sample({1.2, 0.5}).length(), 0.0, 1e-12);
}

TEST(Analytic, DoubleGyreStaysInDomain) {
  const auto f = field::analytic::double_gyre(0.1, 0.25, 2.0 * std::numbers::pi / 10.0, 0.0);
  // Velocity vanishes on the boundary walls (closed domain).
  EXPECT_NEAR(f->sample({0.0, 0.5}).x, 0.0, 1e-12);
  EXPECT_NEAR(f->sample({1.0, 0.0}).y, 0.0, 1e-12);
  EXPECT_NEAR(f->sample({1.0, 1.0}).y, 0.0, 1e-12);
}

TEST(Analytic, TaylorGreenIsDivergenceFree) {
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::taylor_green(1.0, domain);
  // Numerical divergence via central differences at random points.
  util::Rng rng(5);
  const double h = 1e-6;
  for (int k = 0; k < 50; ++k) {
    const Vec2 p{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
    const double div = (f->sample({p.x + h, p.y}).x - f->sample({p.x - h, p.y}).x +
                        f->sample({p.x, p.y + h}).y - f->sample({p.x, p.y - h}).y) /
                       (2.0 * h);
    EXPECT_NEAR(div, 0.0, 1e-6);
  }
}

// ------------------------------------------------------------- field_ops ---

TEST(FieldOps, CurlOfRigidVortexIsTwiceOmega) {
  const double omega = 1.5;
  const field::RegularGrid g(32, 32, Rect{-1, -1, 1, 1});
  const auto analytic = field::analytic::rigid_vortex({0, 0}, omega, g.domain());
  const auto f = field::resample(*analytic, g);
  const auto vorticity = field::curl(f);
  // Interior samples: curl of rigid rotation = 2*omega everywhere.
  for (int j = 4; j < 28; ++j)
    for (int i = 4; i < 28; ++i) EXPECT_NEAR(vorticity.at(i, j), 2.0 * omega, 1e-9);
}

TEST(FieldOps, DivergenceOfSaddleIsZero) {
  const field::RegularGrid g(32, 32, Rect{-1, -1, 1, 1});
  const auto analytic = field::analytic::saddle({0, 0}, 2.0, g.domain());
  const auto f = field::resample(*analytic, g);
  const auto div = field::divergence(f);
  for (int j = 4; j < 28; ++j)
    for (int i = 4; i < 28; ++i) EXPECT_NEAR(div.at(i, j), 0.0, 1e-9);
}

TEST(FieldOps, DivergenceOfSourceIsPositive) {
  const field::RegularGrid g(32, 32, Rect{-1, -1, 1, 1});
  field::GridVectorField f(g);
  f.fill([](Vec2 p) { return p; });  // radial outflow, div = 2
  const auto div = field::divergence(f);
  EXPECT_NEAR(div.at(16, 16), 2.0, 1e-9);
}

TEST(FieldOps, MagnitudeField) {
  const field::RegularGrid g(8, 8, Rect{0, 0, 1, 1});
  field::GridVectorField f(g);
  f.fill([](Vec2) { return Vec2{3.0, 4.0}; });
  const auto mag = field::magnitude(f);
  EXPECT_DOUBLE_EQ(mag.at(4, 4), 5.0);
}

TEST(FieldOps, StatisticsOfConstantField) {
  const field::RegularGrid g(8, 8, Rect{0, 0, 1, 1});
  field::GridVectorField f(g);
  f.fill([](Vec2) { return Vec2{3.0, 4.0}; });
  const auto stats = field::statistics(f);
  EXPECT_NEAR(stats.mean_magnitude, 5.0, 1e-12);
  EXPECT_NEAR(stats.rms_magnitude, 5.0, 1e-12);
  EXPECT_NEAR(stats.max_magnitude, 5.0, 1e-12);
}

TEST(FieldOps, ResampleRoundTripOnMatchingGrid) {
  const field::RegularGrid g(16, 16, Rect{0, 0, 1, 1});
  const auto analytic = field::analytic::taylor_green(1.0, g.domain());
  const auto f = field::resample(*analytic, g);
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 16; ++i) {
      const Vec2 expect = analytic->sample(g.position(i, j));
      EXPECT_NEAR(f.at(i, j).x, expect.x, 1e-12);
      EXPECT_NEAR(f.at(i, j).y, expect.y, 1e-12);
    }
}

// ------------------------------------------------------------ ScalarField ---

TEST(ScalarField, BilinearSampleAndMinMax) {
  const field::RegularGrid g(3, 3, Rect{0, 0, 2, 2});
  field::ScalarField s(g);
  s.fill([](Vec2 p) { return p.x + 10.0 * p.y; });
  EXPECT_NEAR(s.sample({1.0, 1.0}), 11.0, 1e-12);
  EXPECT_NEAR(s.sample({0.5, 0.5}), 5.5, 1e-12);
  const auto [lo, hi] = s.min_max();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 22.0);
}

// --------------------------------------------------------------- field_io ---

TEST(FieldIo, RectilinearVectorRoundTrip) {
  field::RectilinearGrid g({0.0, 0.5, 2.0}, {0.0, 1.0, 3.0, 4.0});
  field::RectilinearVectorField f(g);
  f.fill([](Vec2 p) { return Vec2{p.x * 2.0, p.y - 1.0}; });
  std::stringstream buffer;
  field::write_field(buffer, f);
  const auto g2 = field::read_rectilinear_field(buffer);
  EXPECT_EQ(g2.grid().xs(), g.xs());
  EXPECT_EQ(g2.grid().ys(), g.ys());
  for (int j = 0; j < g.ny(); ++j)
    for (int i = 0; i < g.nx(); ++i) EXPECT_EQ(g2.at(i, j), f.at(i, j));
}

TEST(FieldIo, RegularVectorRoundTrip) {
  const field::RegularGrid g(5, 4, Rect{0, 0, 2, 2});
  field::GridVectorField f(g);
  f.fill([](Vec2 p) { return Vec2{p.y, -p.x}; });
  std::stringstream buffer;
  field::write_field(buffer, f);
  const auto f2 = field::read_regular_field(buffer);
  EXPECT_EQ(f2.grid(), g);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 5; ++i) EXPECT_EQ(f2.at(i, j), f.at(i, j));
}

TEST(FieldIo, ScalarRoundTrip) {
  field::RectilinearGrid g({0.0, 1.0, 2.0}, {0.0, 2.0});
  field::RectilinearScalarField s(g);
  s.fill([](Vec2 p) { return p.x * p.y + 1.0; });
  std::stringstream buffer;
  field::write_scalar(buffer, s);
  const auto s2 = field::read_rectilinear_scalar(buffer);
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 3; ++i) EXPECT_EQ(s2.at(i, j), s.at(i, j));
}

TEST(FieldIo, RejectsWrongMagic) {
  std::stringstream buffer;
  buffer << "not a field";
  EXPECT_THROW((void)field::read_rectilinear_field(buffer), util::Error);
}

}  // namespace
