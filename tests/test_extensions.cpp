// Tests for the extension modules: LIC comparator, arrow/streamline glyph
// baselines, the scene renderer (pipeline step 4), and the pipelined
// animator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lic.hpp"
#include "core/pipelined_animator.hpp"
#include "field/analytic.hpp"
#include "render/glyphs.hpp"
#include "render/scene.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;
using field::Rect;
using field::Vec2;

// -------------------------------------------------------------------- LIC ---

TEST(Lic, NoiseIsZeroMean) {
  const auto noise = core::make_lic_noise(128, 128, 3);
  EXPECT_LT(std::abs(noise.mean()), 0.05);
  EXPECT_GT(render::texture_stddev(noise), 0.3);
}

TEST(Lic, SmoothsAlongFlowOnly) {
  // In a horizontal flow, LIC correlates pixels along x and leaves y
  // decorrelated — the same anisotropy property spot noise has.
  core::LicConfig config;
  config.width = 128;
  config.height = 128;
  config.kernel_half_length_px = 10.0;
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::uniform({1.0, 0.0}, domain);
  const auto noise = core::make_lic_noise(128, 128, config.noise_seed);
  const auto out = core::lic(*f, noise, config);

  double horizontal = 0.0, vertical = 0.0;
  for (int y = 4; y < 124; ++y)
    for (int x = 4; x < 124; ++x) {
      horizontal += double(out.at(x, y)) * out.at(x + 3, y);
      vertical += double(out.at(x, y)) * out.at(x, y + 3);
    }
  EXPECT_GT(horizontal, 2.0 * std::abs(vertical));
}

TEST(Lic, ReducesVarianceByKernelLength) {
  // Box-convolving N independent samples divides variance by ~N.
  core::LicConfig config;
  config.width = 96;
  config.height = 96;
  config.kernel_half_length_px = 12.0;
  const auto f = field::analytic::uniform({1.0, 0.0}, Rect{0, 0, 1, 1});
  const auto noise = core::make_lic_noise(96, 96, 5);
  const auto out = core::lic(*f, noise, config);
  const double in_sigma = render::texture_stddev(noise);
  const double out_sigma = render::texture_stddev(out);
  EXPECT_LT(out_sigma, in_sigma * 0.5);
  EXPECT_GT(out_sigma, in_sigma * 0.05);
}

TEST(Lic, StagnationPointDegradesGracefully) {
  core::LicConfig config;
  config.width = 64;
  config.height = 64;
  const auto f = field::analytic::saddle({0.5, 0.5}, 1.0, Rect{0, 0, 1, 1});
  const auto noise = core::make_lic_noise(64, 64, 7);
  const auto out = core::lic(*f, noise, config);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) ASSERT_TRUE(std::isfinite(out.at(x, y)));
}

TEST(Lic, RejectsMismatchedNoise) {
  core::LicConfig config;
  config.width = 64;
  config.height = 64;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  const auto noise = core::make_lic_noise(32, 32, 1);
  EXPECT_THROW((void)core::lic(*f, noise, config), util::Error);
}

TEST(Lic, DeterministicForFixedSeed) {
  core::LicConfig config;
  config.width = 64;
  config.height = 64;
  config.threads = 4;  // parallel rows must not change the result
  const auto f = field::analytic::rigid_vortex({0.5, 0.5}, 1.0, Rect{0, 0, 1, 1});
  const auto noise = core::make_lic_noise(64, 64, config.noise_seed);
  const auto a = core::lic(*f, noise, config);
  const auto b = core::lic(*f, noise, config);
  EXPECT_TRUE(a == b);
}

// ------------------------------------------------------------------ glyphs ---

TEST(Glyphs, ArrowPlotDrawsSomething) {
  render::Image img(128, 128, {255, 255, 255});
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::uniform({1.0, 0.5}, domain);
  const render::WorldToImage mapping(domain, 128, 128);
  render::ArrowPlotConfig config;
  config.nx = 6;
  config.ny = 6;
  render::draw_arrow_plot(img, mapping, *f, config);
  int dark = 0;
  for (int y = 0; y < 128; ++y)
    for (int x = 0; x < 128; ++x)
      if (img.at(x, y).r < 128) ++dark;
  EXPECT_GT(dark, 100);  // 36 arrows of ~15 px plus heads
}

TEST(Glyphs, ArrowPlotSkipsZeroField) {
  render::Image img(64, 64, {255, 255, 255});
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::uniform({0.0, 0.0}, domain);
  const render::WorldToImage mapping(domain, 64, 64);
  render::draw_arrow_plot(img, mapping, *f, {});
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) ASSERT_EQ(img.at(x, y).r, 255);
}

TEST(Glyphs, ArrowLengthScalesWithSpeed) {
  // A shear field: arrows near the center line are shorter.
  render::Image img(256, 256, {255, 255, 255});
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::shear(2.0, domain);
  const render::WorldToImage mapping(domain, 256, 256);
  render::ArrowPlotConfig config;
  config.nx = 1;
  config.ny = 5;  // arrows at y = .1, .3, .5, .7, .9
  render::draw_arrow_plot(img, mapping, *f, config);
  auto dark_in_band = [&](int y0, int y1) {
    int count = 0;
    for (int y = y0; y < y1; ++y)
      for (int x = 0; x < 256; ++x)
        if (img.at(x, y).r < 128) ++count;
    return count;
  };
  // The center arrow (y = 0.5 -> rows ~128) is nearly zero-length.
  EXPECT_LT(dark_in_band(115, 141), dark_in_band(13, 39));
}

TEST(Glyphs, StreamlinePlotFollowsVortex) {
  render::Image img(128, 128, {255, 255, 255});
  const Rect domain{-1, -1, 1, 1};
  const auto f = field::analytic::rigid_vortex({0, 0}, 1.0, domain);
  const render::WorldToImage mapping(domain, 128, 128);
  render::StreamlinePlotConfig config;
  config.seeds_x = 1;
  config.seeds_y = 1;  // single seed at the domain center... offset it:
  config.steps_each_way = 300;
  render::draw_streamline_plot(img, mapping, *f, config);
  // The seed sits at (0,0) exactly -> stagnation, so allow empty; then seed
  // a 2x2 grid which orbits at radius ~0.5.
  render::StreamlinePlotConfig grid_config;
  grid_config.seeds_x = 2;
  grid_config.seeds_y = 2;
  grid_config.steps_each_way = 400;
  render::draw_streamline_plot(img, mapping, *f, grid_config);
  // Circle of radius ~sqrt(.25^2+.25^2)*... pixels on the ring around the
  // center must be drawn; center pixel must not.
  int dark = 0;
  for (int y = 0; y < 128; ++y)
    for (int x = 0; x < 128; ++x)
      if (img.at(x, y).r < 128) ++dark;
  EXPECT_GT(dark, 150);
  EXPECT_EQ(img.at(64, 64).r, 255);  // stagnation center untouched
}

// ------------------------------------------------------------------- scene ---

TEST(Scene, SampleTextureBilinear) {
  render::Framebuffer tex(2, 2);
  tex.at(0, 0) = 0.0f;
  tex.at(1, 0) = 1.0f;
  tex.at(0, 1) = 2.0f;
  tex.at(1, 1) = 3.0f;
  // Texel centers at (0.5,0.5) etc.
  EXPECT_FLOAT_EQ(render::sample_texture(tex, 0.5, 0.5), 0.0f);
  EXPECT_FLOAT_EQ(render::sample_texture(tex, 1.5, 1.5), 3.0f);
  EXPECT_FLOAT_EQ(render::sample_texture(tex, 1.0, 0.5), 0.5f);
  EXPECT_FLOAT_EQ(render::sample_texture(tex, 1.0, 1.0), 1.5f);
  // Border clamp.
  EXPECT_FLOAT_EQ(render::sample_texture(tex, -5.0, 0.5), 0.0f);
  EXPECT_FLOAT_EQ(render::sample_texture(tex, 10.0, 10.0), 3.0f);
}

TEST(Scene, FullWindowReproducesTexture) {
  render::Framebuffer tex(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      tex.at(x, y) = static_cast<float>((x + y) % 2 == 0 ? 1 : -1);
  render::SceneView view;
  view.texture_world = {0, 0, 1, 1};
  view.window = {0, 0, 1, 1};
  view.out_width = 32;
  view.out_height = 32;
  const auto img = render::render_scene(tex, view);
  // 1:1 mapping: bright checkerboard cells stay bright.
  EXPECT_GT(img.at(0, 0).r, 128);
  EXPECT_LT(img.at(1, 0).r, 128);
}

TEST(Scene, ZoomWindowMagnifies) {
  // A texture with a single bright quadrant: zooming into that quadrant
  // fills the whole output with bright pixels.
  render::Framebuffer tex(64, 64);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) tex.at(x, y) = 1.0f;  // top-left = world NW
  render::SceneView view;
  view.texture_world = {0, 0, 1, 1};
  view.window = {0.05, 0.55, 0.45, 0.95};  // world NW quadrant interior
  view.out_width = 64;
  view.out_height = 64;
  view.tone.auto_gain = false;
  view.tone.gain = 0.5;
  const auto img = render::render_scene(tex, view);
  int bright = 0;
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      if (img.at(x, y).r > 200) ++bright;
  EXPECT_EQ(bright, 64 * 64);
}

TEST(Scene, RejectsDegenerateView) {
  render::Framebuffer tex(8, 8);
  render::SceneView view;
  view.out_width = 0;
  EXPECT_THROW((void)render::render_scene(tex, view), util::Error);
}

// ------------------------------------------------------- PipelinedAnimator ---

TEST(PipelinedAnimator, ProducesFramesLikeAnimator) {
  core::SynthesisConfig config;
  config.texture_width = 96;
  config.texture_height = 96;
  config.spot_count = 200;
  const Rect domain{0, 0, 2, 1};
  const auto f = field::analytic::double_gyre(0.1, 0.25, 0.6, 0.0);
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  core::DncSynthesizer synth(config, dnc);
  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  particles::ParticleSystem particles(pc, domain, util::Rng(1));

  int reads = 0;
  core::PipelinedAnimator animator(
      {}, synth, particles, [&](std::int64_t) -> const field::VectorField& {
        ++reads;
        return *f;
      });
  const auto frame0 = animator.step();
  const auto frame1 = animator.step();
  EXPECT_EQ(animator.frame_number(), 2);
  EXPECT_GE(reads, 2);  // prologue + one per step
  ASSERT_NE(frame1.texture, nullptr);
  EXPECT_GT(render::texture_stddev(*frame1.texture), 0.0);
  EXPECT_GT(frame0.synthesis.spots, 0);
}

TEST(PipelinedAnimator, OverlapHidesPreparation) {
  // With an artificially slow read_data, the pipelined animator's steady
  // state step should cost ~max(prepare, synthesize), not their sum.
  core::SynthesisConfig config;
  config.texture_width = 256;
  config.texture_height = 256;
  config.spot_count = 4000;
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 8;
  config.bent.mesh_rows = 3;
  const Rect domain{0, 0, 2, 1};
  const auto f = field::analytic::double_gyre(0.1, 0.25, 0.6, 0.0);
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  core::DncSynthesizer synth(config, dnc);
  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  particles::ParticleSystem particles(pc, domain, util::Rng(2));

  constexpr double kReadDelay = 0.03;
  auto slow_read = [&](std::int64_t) -> const field::VectorField& {
    const util::Stopwatch w;
    while (w.seconds() < kReadDelay) {
    }
    return *f;
  };
  core::AnimatorConfig ac;
  ac.normalize = false;
  core::PipelinedAnimator animator(ac, synth, particles, slow_read);
  (void)animator.step();  // warm the pipeline
  util::ThreadCpuStopwatch pipelined_cpu;
  for (int k = 0; k < 3; ++k) (void)animator.step();
  const double pipelined = pipelined_cpu.seconds() / 3;

  // Sequential reference: same work, no overlap.
  particles::ParticleSystem particles2(pc, domain, util::Rng(2));
  core::Animator sequential(ac, synth, particles2, slow_read);
  (void)sequential.step();
  util::ThreadCpuStopwatch serial_cpu;
  for (int k = 0; k < 3; ++k) (void)sequential.step();
  const double serial = serial_cpu.seconds() / 3;

  // Measured on the CALLER's thread-CPU clock, not wall clock. The
  // pipelined animator hands prepare (and its busy-wait read) to a pool
  // worker via Runtime::async, so the caller's CPU time per step excludes
  // the read delay entirely; the serial Animator spins through slow_read on
  // the caller itself, so its CPU time includes it. Wall-clock versions of
  // this assertion flaked on loaded one-core hosts (neighbor tests inflated
  // the pipelined steps); a thread-CPU clock does not advance while the
  // caller is preempted, so host load cancels out of both sides. The margin
  // stays below half the delay for the one effect load can still have: the
  // serial spin accrues CPU only while scheduled.
  EXPECT_LT(pipelined, serial - 0.35 * kReadDelay);
}

}  // namespace
