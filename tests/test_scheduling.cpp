// Tests for the load-balanced scheduler: StealableWorkCounter semantics,
// cross-group work-stealing equivalence against the serial baseline,
// cost-balanced (kd-cut) tiling, worker-exception propagation, and the
// raster/tiling bound fixes that rode along with the scheduler PR.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/serial_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "core/tiling.hpp"
#include "field/analytic.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"
#include "render/spot_profile.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace {

using namespace dcsn;
using field::Rect;

core::SynthesisConfig small_config() {
  core::SynthesisConfig config;
  config.texture_width = 128;
  config.texture_height = 128;
  config.spot_count = 400;
  config.spot_radius_px = 6.0;
  config.kind = core::SpotKind::kEllipse;
  return config;
}

// Half the spots crowded into one corner of the domain, the rest scattered:
// the distribution that starves a static partition (and the one the balance
// bench measures).
std::vector<core::SpotInstance> clustered_spots(const core::SynthesisConfig& config,
                                                Rect domain) {
  util::Rng rng(config.seed);
  std::vector<core::SpotInstance> spots;
  spots.reserve(static_cast<std::size_t>(config.spot_count));
  const double cx = domain.x0 + 0.2 * domain.width();
  const double cy = domain.y0 + 0.2 * domain.height();
  const double spread = 0.08 * domain.width();
  for (std::int64_t k = 0; k < config.spot_count; ++k) {
    core::SpotInstance spot;
    if (k < config.spot_count / 2) {
      spot.position = {rng.uniform(cx - spread, cx + spread),
                       rng.uniform(cy - spread, cy + spread)};
    } else {
      spot.position = {rng.uniform(domain.x0, domain.x1),
                       rng.uniform(domain.y0, domain.y1)};
    }
    spot.intensity = rng.intensity();
    spots.push_back(spot);
  }
  return spots;
}

double max_abs_difference(const render::Framebuffer& a, const render::Framebuffer& b) {
  EXPECT_EQ(a.width(), b.width());
  EXPECT_EQ(a.height(), b.height());
  double worst = 0.0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x)
      worst = std::max(worst, std::abs(double(a.at(x, y)) - double(b.at(x, y))));
  return worst;
}

// ---------------------------------------------------- StealableWorkCounter ---

TEST(StealableWorkCounter, ClaimTakesFromFrontStealFromBack) {
  util::StealableWorkCounter counter(100, 10);
  const auto front = counter.claim();
  EXPECT_EQ(front.begin, 0);
  EXPECT_EQ(front.end, 10);
  const auto back = counter.steal(25);
  EXPECT_EQ(back.begin, 75);
  EXPECT_EQ(back.end, 100);
  EXPECT_EQ(counter.remaining(), 65);
}

TEST(StealableWorkCounter, DrainsExactlyOnceFromBothEnds) {
  util::StealableWorkCounter counter(47, 5);
  std::vector<bool> seen(47, false);
  bool from_front = true;
  while (true) {
    const auto range = from_front ? counter.claim() : counter.steal(3);
    from_front = !from_front;
    if (range.empty()) {
      if ((from_front ? counter.claim() : counter.steal(3)).empty()) break;
      continue;
    }
    for (std::int64_t k = range.begin; k < range.end; ++k) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(k)]) << "item " << k << " handed out twice";
      seen[static_cast<std::size_t>(k)] = true;
    }
  }
  EXPECT_TRUE(counter.drained());
  for (std::size_t k = 0; k < seen.size(); ++k)
    EXPECT_TRUE(seen[k]) << "item " << k << " never handed out";
}

TEST(StealableWorkCounter, ConcurrentClaimAndStealCoverEveryItemOnce) {
  constexpr std::int64_t kTotal = 20000;
  util::StealableWorkCounter counter(kTotal, 7);
  std::vector<std::atomic<int>> hits(kTotal);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);

  auto owner = [&] {
    for (auto range = counter.claim(); !range.empty(); range = counter.claim())
      for (std::int64_t k = range.begin; k < range.end; ++k)
        hits[static_cast<std::size_t>(k)].fetch_add(1, std::memory_order_relaxed);
  };
  auto thief = [&] {
    for (auto range = counter.steal(5); !range.empty(); range = counter.steal(5))
      for (std::int64_t k = range.begin; k < range.end; ++k)
        hits[static_cast<std::size_t>(k)].fetch_add(1, std::memory_order_relaxed);
  };

  {
    std::vector<std::jthread> threads;
    threads.emplace_back(owner);
    for (int t = 0; t < 3; ++t) threads.emplace_back(thief);
  }
  EXPECT_TRUE(counter.drained());
  for (std::int64_t k = 0; k < kTotal; ++k)
    ASSERT_EQ(hits[static_cast<std::size_t>(k)].load(), 1) << "item " << k;
}

TEST(StealableWorkCounter, ResetRearmsForTheNextFrame) {
  util::StealableWorkCounter counter(10, 4);
  while (!counter.claim().empty()) {
  }
  EXPECT_TRUE(counter.drained());
  counter.reset(6);
  EXPECT_EQ(counter.remaining(), 6);
  const auto range = counter.claim();
  EXPECT_EQ(range.begin, 0);
  EXPECT_EQ(range.end, 4);
}

TEST(StealableWorkCounter, RejectsTotalsBeyondThePackedWidth) {
  util::StealableWorkCounter counter(0, 1);
  EXPECT_THROW(counter.reset(std::int64_t{1} << 32), util::Error);
  EXPECT_THROW(counter.reset(-1), util::Error);
}

// -------------------------------------------- stealing equivalence vs serial ---

// Work stealing re-routes which pipe renders which spot, but the blend is a
// sum (contiguous) or a disjoint copy (tiled), so the result must match the
// serial baseline up to float summation order — for every mode, pipe count,
// and spot distribution.
TEST(Scheduling, StealingMatchesSerialAcrossModesAndPipeCounts) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  core::SerialSynthesizer serial(config);

  for (const bool clustered : {false, true}) {
    const auto spots = clustered ? clustered_spots(config, domain)
                                 : [&] {
                                     util::Rng rng(config.seed);
                                     return core::make_random_spots(
                                         domain, config.spot_count, rng);
                                   }();
    serial.synthesize(*f, spots);
    const double sigma = render::texture_stddev(serial.texture());
    for (const bool tiled : {false, true}) {
      for (const int pipes : {1, 2, 4}) {
        core::DncConfig dnc;
        dnc.processors = 4;
        dnc.pipes = pipes;
        dnc.tiled = tiled;
        dnc.steal = true;
        dnc.tile_strategy = core::TileStrategy::kCostBalanced;
        core::DncSynthesizer engine(config, dnc);
        engine.synthesize(*f, spots);
        EXPECT_LT(max_abs_difference(serial.texture(), engine.texture()),
                  1e-4 * sigma + 1e-6)
            << (clustered ? "clustered" : "uniform") << " spots, "
            << (tiled ? "tiled" : "contiguous") << " mode, " << pipes << " pipes";
      }
    }
  }
}

TEST(Scheduling, ThievesDrainTheLoadedGroup) {
  // Grid tiling + clustered spots: one region holds nearly all the work, so
  // the other groups' masters drain instantly and must steal.
  auto config = small_config();
  config.spot_count = 2000;
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = clustered_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 4;
  dnc.tiled = true;
  dnc.tile_strategy = core::TileStrategy::kGrid;
  core::DncSynthesizer engine(config, dnc);
  std::int64_t stolen = 0;
  double imbalance = 0.0;
  for (int frame = 0; frame < 3; ++frame) {
    const auto stats = engine.synthesize(*f, spots);
    stolen += stats.stolen_chunks;
    imbalance = std::max(imbalance, stats.imbalance);
    EXPECT_GE(stats.stolen_spots, stats.stolen_chunks);
    EXPECT_GE(stats.steal_seconds, 0.0);
  }
  EXPECT_GT(imbalance, 1.5) << "the workload no longer stresses the partition";
  EXPECT_GT(stolen, 0) << "idle groups never stole from the loaded one";
}

TEST(Scheduling, ContiguousStealingConservesGeometry) {
  // Contiguous mode has no duplicates, so however chunks migrate between
  // pipes, the total vertex count must equal spots * vertices-per-spot.
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = clustered_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 4;
  core::DncSynthesizer engine(config, dnc);
  const auto stats = engine.synthesize(*f, spots);
  std::int64_t vertices = 0;
  for (int g = 0; g < dnc.pipes; ++g) vertices += engine.pipe_stats(g).vertices;
  EXPECT_EQ(vertices, config.spot_count * config.vertices_per_spot());
  EXPECT_EQ(stats.duplicated_spots, 0);
}

TEST(Scheduling, ModeledCriticalPathIsConsistent) {
  // The eq. 3.2 model: critical paths are maxima of per-component CPU
  // times, and the modeled frame is assign + max(genP, genT) + gather.
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = clustered_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  core::DncSynthesizer engine(config, dnc);
  const auto stats = engine.synthesize(*f, spots);
  EXPECT_GT(stats.genP_critical_seconds, 0.0);
  EXPECT_GT(stats.genT_critical_seconds, 0.0);
  EXPECT_LE(stats.genP_critical_seconds, stats.genP_seconds + 1e-12);
  EXPECT_LE(stats.genT_critical_seconds, stats.genT_seconds + 1e-12);
  EXPECT_NEAR(stats.modeled_frame_seconds,
              stats.assign_seconds +
                  std::max(stats.genP_critical_seconds, stats.genT_critical_seconds) +
                  stats.gather_seconds,
              1e-12);
  EXPECT_GT(stats.modeled_textures_per_second(), 0.0);
}

// ------------------------------------------------- worker exception protocol ---

// A field whose sample() throws inside the workers' generate calls — the
// stand-in for any DCSN_CHECK tripping mid-frame.
std::unique_ptr<field::VectorField> faulty_field(Rect domain) {
  return std::make_unique<field::CallableField>(
      [](field::Vec2 p) -> field::Vec2 {
        if (p.x > 1.0) throw util::Error("injected worker failure");
        return {0.1, 0.2};
      },
      domain, 1.0);
}

TEST(Scheduling, WorkerExceptionRethrownOnCallerAndEngineStaysUsable) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto good = field::analytic::taylor_green(1.0, domain);
  const auto bad = faulty_field(domain);
  util::Rng rng(config.seed);
  const auto spots = core::make_random_spots(domain, config.spot_count, rng);

  for (const bool tiled : {false, true}) {
    core::DncConfig dnc;
    dnc.processors = 4;
    dnc.pipes = 2;  // masters and slaves both in play
    dnc.tiled = tiled;
    core::DncSynthesizer engine(config, dnc);
    // Without the exception protocol this call never returns: the throwing
    // worker skips the end barrier and synthesize() waits forever.
    EXPECT_THROW(engine.synthesize(*bad, spots), util::Error)
        << (tiled ? "tiled" : "contiguous");
    // The frame was abandoned cleanly: the same engine must still produce
    // correct frames afterwards.
    core::SerialSynthesizer serial(config);
    serial.synthesize(*good, spots);
    engine.synthesize(*good, spots);
    const double sigma = render::texture_stddev(serial.texture());
    EXPECT_LT(max_abs_difference(serial.texture(), engine.texture()),
              1e-4 * sigma + 1e-6)
        << (tiled ? "tiled" : "contiguous");
  }
}

// ------------------------------------------------------- rasterizer clamping ---

TEST(Rasterizer, FarOffscreenVerticesAreClampedNotUndefined) {
  render::Framebuffer fb(32, 32);
  const render::RasterTarget target{fb.pixels(), 0, 0};
  const render::SpotProfile profile(render::SpotShape::kCosine, 16);
  render::RasterStats stats;
  // A triangle whose vertices sit ~1e12 px away but whose interior covers
  // the whole target: the unclamped float->int cast was UB here.
  const render::MeshVertex a{-1e12f, -1e12f, 0.5f, 0.5f};
  const render::MeshVertex b{1e12f, -1e12f, 0.5f, 0.5f};
  const render::MeshVertex c{0.0f, 1e12f, 0.5f, 0.5f};
  rasterize_triangle(target, a, b, c, 1.0f, profile,
                     render::BlendMode::kAdditive, stats);
  EXPECT_LE(stats.fragments, 32 * 32);
  for (int y = 0; y < fb.height(); ++y)
    for (int x = 0; x < fb.width(); ++x)
      ASSERT_TRUE(std::isfinite(fb.at(x, y))) << x << "," << y;
}

TEST(Rasterizer, EntirelyOffscreenTriangleIsRejectedInFloatSpace) {
  render::Framebuffer fb(32, 32);
  const render::RasterTarget target{fb.pixels(), 0, 0};
  const render::SpotProfile profile(render::SpotShape::kCosine, 16);
  render::RasterStats stats;
  const render::MeshVertex a{1e12f, 5.0f, 0.0f, 0.0f};
  const render::MeshVertex b{2e12f, 5.0f, 1.0f, 0.0f};
  const render::MeshVertex c{1.5e12f, 2e12f, 0.5f, 1.0f};
  rasterize_triangle(target, a, b, c, 1.0f, profile,
                     render::BlendMode::kAdditive, stats);
  EXPECT_EQ(stats.fragments, 0);
}

TEST(Rasterizer, NanVerticesAreRejected) {
  render::Framebuffer fb(16, 16);
  const render::RasterTarget target{fb.pixels(), 0, 0};
  const render::SpotProfile profile(render::SpotShape::kCosine, 16);
  render::RasterStats stats;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const render::MeshVertex a{nan, 4.0f, 0.0f, 0.0f};
  const render::MeshVertex b{8.0f, nan, 1.0f, 0.0f};
  const render::MeshVertex c{4.0f, 8.0f, 0.5f, 1.0f};
  rasterize_triangle(target, a, b, c, 1.0f, profile,
                     render::BlendMode::kAdditive, stats);
  EXPECT_EQ(stats.fragments, 0);
  for (int y = 0; y < fb.height(); ++y)
    for (int x = 0; x < fb.width(); ++x) ASSERT_EQ(fb.at(x, y), 0.0f);
}

// ----------------------------------------------------------- tiling bounds ---

TEST(TileAssignment, SpotTouchingExclusiveEdgeIsNotDuplicated) {
  // Two side-by-side tiles; a tile covers the half-open rect [x0, x0+w).
  const std::vector<core::Tile> tiles{{0, 0, 64, 128}, {64, 0, 64, 128}};
  // Identity-ish world->pixel map (y flipped; irrelevant here, y is centered).
  const render::WorldToImage mapping({0, 0, 128, 128}, 128, 128);

  // lo_x lands exactly on the boundary: the spot's extent only touches the
  // left tile's exclusive edge, so it belongs to the right tile alone. The
  // old inclusive bound duplicated it into the left tile too.
  std::vector<core::SpotInstance> boundary(1);
  boundary[0].position = {68.0, 64.0};  // extent [64, 72]
  const auto touching = assign_spots_to_tiles(boundary, mapping, 4.0, tiles);
  EXPECT_TRUE(touching.per_tile[0].empty());
  ASSERT_EQ(touching.per_tile[1].size(), 1u);
  EXPECT_EQ(touching.duplicates, 0);

  // hi_x on the boundary genuinely reaches the right tile's first column:
  // that one is a real duplicate.
  std::vector<core::SpotInstance> straddling(1);
  straddling[0].position = {60.0, 64.0};  // extent [56, 64]
  const auto crossing = assign_spots_to_tiles(straddling, mapping, 4.0, tiles);
  EXPECT_EQ(crossing.per_tile[0].size(), 1u);
  EXPECT_EQ(crossing.per_tile[1].size(), 1u);
  EXPECT_EQ(crossing.duplicates, 1);
}

TEST(TileAssignment, EverySpotLandsInAtLeastOneTile) {
  const auto tiles = core::make_tile_grid(128, 128, 4);
  const render::WorldToImage mapping({0, 0, 128, 128}, 128, 128);
  util::Rng rng(7);
  std::vector<core::SpotInstance> spots(500);
  for (auto& spot : spots)
    spot.position = {rng.uniform(0.0, 128.0), rng.uniform(0.0, 128.0)};
  const auto assignment = assign_spots_to_tiles(spots, mapping, 6.0, tiles);
  std::vector<bool> seen(spots.size(), false);
  for (const auto& tile : assignment.per_tile)
    for (const std::int64_t k : tile) seen[static_cast<std::size_t>(k)] = true;
  for (std::size_t k = 0; k < seen.size(); ++k)
    EXPECT_TRUE(seen[k]) << "spot " << k << " assigned to no tile";
  EXPECT_GE(assignment.duplicates, 0);
}

TEST(TileGrid, RejectsMoreTilesThanTheTextureCanHost) {
  // 8 tiles want a 3x3 grid; a 4-px-wide texture only hosts 4 columns of
  // whole-pixel tiles in a 2-row layout — previously this silently produced
  // zero-width tiles and threw from deep inside Framebuffer.
  EXPECT_THROW(core::make_tile_grid(4, 2, 8), util::Error);
  EXPECT_THROW(core::make_tile_grid(2, 100, 9), util::Error);
  try {
    (void)core::make_tile_grid(4, 2, 8);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("4x2"), std::string::npos)
        << "error should name the texture limit: " << e.what();
  }
}

TEST(TileGrid, DncSynthesizerSurfacesTheTileLimitUpFront) {
  auto config = small_config();
  config.texture_width = 4;
  config.texture_height = 2;
  core::DncConfig dnc;
  dnc.processors = 8;
  dnc.pipes = 8;
  dnc.tiled = true;
  EXPECT_THROW(core::DncSynthesizer(config, dnc), util::Error);
}

// ------------------------------------------------------- cost-balanced tiles ---

TEST(BalancedTiles, PartitionTheTextureExactly) {
  const render::WorldToImage mapping({0, 0, 1, 1}, 96, 64);
  util::Rng rng(11);
  std::vector<core::SpotInstance> spots(300);
  for (auto& spot : spots)
    spot.position = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
  for (const int count : {1, 2, 3, 4, 7}) {
    const auto tiles = core::make_balanced_tiles(96, 64, count, spots, mapping);
    ASSERT_EQ(tiles.size(), static_cast<std::size_t>(count));
    std::vector<int> cover(96 * 64, 0);
    for (const auto& tile : tiles) {
      EXPECT_GT(tile.width, 0);
      EXPECT_GT(tile.height, 0);
      for (int y = tile.y0; y < tile.y0 + tile.height; ++y)
        for (int x = tile.x0; x < tile.x0 + tile.width; ++x) ++cover[y * 96 + x];
    }
    for (std::size_t p = 0; p < cover.size(); ++p)
      ASSERT_EQ(cover[p], 1) << "pixel " << p << " covered " << cover[p]
                             << " times with " << count << " tiles";
  }
}

TEST(BalancedTiles, KdCutBalancesAClusteredDistribution) {
  const int width = 128, height = 128;
  const render::WorldToImage mapping({0, 0, 2, 2}, width, height);
  auto config = small_config();
  config.spot_count = 2000;
  const auto spots = clustered_spots(config, {0, 0, 2, 2});

  auto count_per_tile = [&](const std::vector<core::Tile>& tiles) {
    std::vector<std::int64_t> counts(tiles.size(), 0);
    for (const auto& spot : spots) {
      const auto [px, py] = mapping.map(spot.position);
      for (std::size_t t = 0; t < tiles.size(); ++t) {
        const auto& tile = tiles[t];
        if (px >= tile.x0 && px < tile.x0 + tile.width && py >= tile.y0 &&
            py < tile.y0 + tile.height) {
          ++counts[t];
          break;
        }
      }
    }
    return counts;
  };
  auto imbalance = [](const std::vector<std::int64_t>& counts) {
    std::int64_t total = 0, worst = 0;
    for (const std::int64_t c : counts) {
      total += c;
      worst = std::max(worst, c);
    }
    return static_cast<double>(worst) * static_cast<double>(counts.size()) /
           static_cast<double>(total);
  };

  const auto grid = count_per_tile(core::make_tile_grid(width, height, 4));
  const auto kd =
      count_per_tile(core::make_balanced_tiles(width, height, 4, spots, mapping));
  EXPECT_GT(imbalance(grid), 1.8) << "the cluster no longer stresses the grid";
  EXPECT_LT(imbalance(kd), 1.4);
  EXPECT_LT(imbalance(kd), imbalance(grid));
}

TEST(BalancedTiles, HonorsPerSpotCostWeights) {
  // Two spot camps with equal counts, but the left camp is 9x as expensive:
  // the uniform-cost cut lands near the middle, the weighted cut shifts left
  // so each side carries similar cost.
  const int width = 100, height = 10;
  const render::WorldToImage mapping({0, 0, 100, 10}, width, height);
  std::vector<core::SpotInstance> spots(200);
  std::vector<double> costs(200);
  util::Rng rng(3);
  for (std::size_t k = 0; k < spots.size(); ++k) {
    const bool left = k < 100;
    spots[k].position = {left ? rng.uniform(10.0, 30.0) : rng.uniform(70.0, 90.0),
                         rng.uniform(0.0, 10.0)};
    costs[k] = left ? 9.0 : 1.0;
  }
  const auto even = core::make_balanced_tiles(width, height, 2, spots, mapping);
  const auto weighted =
      core::make_balanced_tiles(width, height, 2, spots, mapping, costs);
  ASSERT_EQ(even.size(), 2u);
  ASSERT_EQ(weighted.size(), 2u);
  EXPECT_LT(weighted[0].width, even[0].width)
      << "the weighted cut should move toward the expensive camp";
}

}  // namespace
