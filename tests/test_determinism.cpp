// Cross-configuration determinism of the synthesis engine.
//
// The engine accumulates spot contributions in whatever order the scheduler
// produces: slave interleaving, work stealing, chunk arrival, pipe count and
// tile layout all vary the additions. Two mechanisms make the result exact
// anyway (see render/rasterizer.hpp and util/simd.hpp):
//
//   * rasterization is target-independent — a fragment's coverage and value
//     are pure functions of the triangle and the global pixel, identical
//     whether rendered by a full-texture pipe or any tile containing it;
//   * every contribution is snapped to the contribution lattice before
//     blending, so additive accumulation is exactly associative and
//     commutative — any order or grouping of the sums gives the same bits.
//
// These tests assert the consequence: the same SynthesisConfig seed and
// spot set produce BIT-IDENTICAL textures across worker counts, pipe
// counts, contiguous vs tiled mode, both tile strategies, and with work
// stealing forced on — and across repeated runs of the same configuration,
// which is what the golden-frame suite depends on. No tolerance anywhere:
// Framebuffer::operator== compares every float for equality.
//
// One deliberate exception: the two RasterAlgorithms produce bit-identical
// *coverage* but not bit-identical fragment values (the span kernel's
// affine UV evaluation rounds differently from the reference's barycentric
// floats — see test_rasterizer.cpp). Determinism therefore holds per
// algorithm, and every comparison here pins the algorithm explicitly.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/runtime.hpp"
#include "core/serial_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "core/tile_store.hpp"
#include "field/analytic.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using core::DncConfig;
using core::DncSynthesizer;
using core::SynthesisConfig;
using core::TileStrategy;

struct Scene {
  std::unique_ptr<field::VectorField> field;
  std::vector<core::SpotInstance> spots;
  SynthesisConfig synthesis;
};

Scene make_scene(core::SpotKind kind, std::int64_t spots = 300) {
  Scene s;
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  s.field = field::analytic::rankine_vortex({2.0, 2.0}, 1.5, 1.0, domain);
  s.synthesis.texture_width = 96;
  s.synthesis.texture_height = 96;
  s.synthesis.spot_count = spots;
  s.synthesis.spot_radius_px = 6.0;
  s.synthesis.kind = kind;
  s.synthesis.bent.mesh_cols = 8;
  s.synthesis.bent.mesh_rows = 3;
  s.synthesis.bent.length_px = 18.0;
  util::Rng rng(1234);
  s.spots = core::make_random_spots(domain, spots, rng);
  for (auto& spot : s.spots) spot.intensity *= 0.2;
  return s;
}

render::Framebuffer run(const Scene& scene, const DncConfig& dnc) {
  DncSynthesizer engine(scene.synthesis, dnc);
  engine.synthesize(*scene.field, scene.spots);
  return engine.texture();
}

DncConfig base_config() {
  DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  dnc.chunk_spots = 16;  // small chunks: many scheduling decisions per frame
  dnc.steal = true;
  return dnc;
}

// --------------------------------------------------------------- reruns ---

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  const DncConfig dnc = base_config();
  const render::Framebuffer first = run(scene, dnc);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first, run(scene, dnc)) << "rerun " << i;
  }
}

TEST(Determinism, RepeatedTiledRunsAreBitIdentical) {
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  DncConfig dnc = base_config();
  dnc.tiled = true;
  dnc.pipes = 4;
  const render::Framebuffer first = run(scene, dnc);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first, run(scene, dnc)) << "rerun " << i;
  }
}

// ----------------------------------------------------------- pipe count ---

TEST(Determinism, PipeCountDoesNotChangeBits) {
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  DncConfig dnc = base_config();
  dnc.pipes = 1;
  dnc.processors = 4;
  const render::Framebuffer one = run(scene, dnc);
  for (const int pipes : {2, 4}) {
    dnc.pipes = pipes;
    EXPECT_EQ(one, run(scene, dnc)) << pipes << " pipes";
  }
}

TEST(Determinism, WorkerCountDoesNotChangeBits) {
  const Scene scene = make_scene(core::SpotKind::kBent);
  DncConfig dnc = base_config();
  dnc.pipes = 1;
  dnc.processors = 1;
  const render::Framebuffer serial = run(scene, dnc);
  for (const int processors : {2, 4, 8}) {
    dnc.processors = processors;
    EXPECT_EQ(serial, run(scene, dnc)) << processors << " processors";
  }
}

// ------------------------------------------------------ mode / strategy ---

TEST(Determinism, ContiguousAndTiledModesMatchBitwise) {
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  DncConfig dnc = base_config();
  dnc.pipes = 4;
  const render::Framebuffer contiguous = run(scene, dnc);
  dnc.tiled = true;
  dnc.tile_strategy = TileStrategy::kGrid;
  EXPECT_EQ(contiguous, run(scene, dnc)) << "tiled grid";
  dnc.tile_strategy = TileStrategy::kCostBalanced;
  EXPECT_EQ(contiguous, run(scene, dnc)) << "tiled cost-balanced";
}

TEST(Determinism, TileStrategyDoesNotChangeBits) {
  // Bent spots give the kd-cut non-uniform weights, so the two strategies
  // produce genuinely different tile rectangles — and identical textures.
  const Scene scene = make_scene(core::SpotKind::kBent);
  DncConfig dnc = base_config();
  dnc.tiled = true;
  dnc.pipes = 4;
  dnc.tile_strategy = TileStrategy::kGrid;
  const render::Framebuffer grid = run(scene, dnc);
  dnc.tile_strategy = TileStrategy::kCostBalanced;
  EXPECT_EQ(grid, run(scene, dnc));
}

// ---------------------------------------------------------------- steal ---

TEST(Determinism, WorkStealingDoesNotChangeBits) {
  // Clustered intensities skew the even split, so stealing really happens
  // (the scheduling suite asserts that); here we assert it cannot show up
  // in the pixels.
  const Scene scene = make_scene(core::SpotKind::kBent);
  DncConfig dnc = base_config();
  dnc.pipes = 2;
  dnc.processors = 6;
  dnc.steal = false;
  const render::Framebuffer unstolen = run(scene, dnc);
  dnc.steal = true;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(unstolen, run(scene, dnc)) << "steal rerun " << i;
  }
  DncConfig tiled = dnc;
  tiled.tiled = true;
  EXPECT_EQ(unstolen, run(scene, tiled)) << "tiled + steal";
}

// --------------------------------------------- serial synthesizer oracle ---

TEST(Determinism, SerialSynthesizerMatchesEngineBitwise) {
  // The 1991 serial algorithm and the parallel engine now agree exactly,
  // not just within a summation-order tolerance: same geometry, same
  // target-independent rasterization, same lattice sums.
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  core::SerialSynthesizer serial(scene.synthesis);
  serial.synthesize(*scene.field, scene.spots, 1);
  EXPECT_EQ(serial.texture(), run(scene, base_config()));
}

TEST(Determinism, SerialThreadCountDoesNotChangeBits) {
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  core::SerialSynthesizer one(scene.synthesis);
  one.synthesize(*scene.field, scene.spots, 1);
  for (const int threads : {2, 4}) {
    core::SerialSynthesizer many(scene.synthesis);
    many.synthesize(*scene.field, scene.spots, threads);
    EXPECT_EQ(one.texture(), many.texture()) << threads << " threads";
  }
}

// ------------------------------------------------------ reference walk ---

TEST(Determinism, ReferenceAlgorithmIsDeterministicToo) {
  // The invariants are algorithm-independent; pin them for the bbox walk.
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  DncConfig dnc = base_config();
  dnc.raster_algorithm = render::RasterAlgorithm::kReference;
  dnc.pipes = 1;
  dnc.processors = 1;
  const render::Framebuffer one_pipe = run(scene, dnc);
  dnc.pipes = 4;
  dnc.processors = 8;
  EXPECT_EQ(one_pipe, run(scene, dnc));
  dnc.tiled = true;
  EXPECT_EQ(one_pipe, run(scene, dnc));
}

// ------------------------------------------------ content-addressed cache ---

TEST(Determinism, TileCacheOnOffDoesNotChangeBits) {
  // The content-addressed TileStore (DncConfig::tile_cache) must be
  // bit-invisible: cold frames (publishing), warm frames (every tile served
  // from the store) and uncached frames all produce the same texture —
  // across pipe counts and both tile strategies. Each configuration gets a
  // private Runtime so its store starts cold.
  const Scene scene = make_scene(core::SpotKind::kBent);
  DncConfig dnc = base_config();
  dnc.tiled = true;
  dnc.pipes = 4;
  const render::Framebuffer reference = run(scene, dnc);

  for (const int pipes : {2, 4}) {
    for (const TileStrategy strategy :
         {TileStrategy::kGrid, TileStrategy::kCostBalanced}) {
      core::Runtime runtime({.workers = 4});
      DncConfig cached = dnc;
      cached.pipes = pipes;
      cached.tile_strategy = strategy;
      cached.tile_cache = true;
      DncSynthesizer engine(scene.synthesis, cached, runtime);
      const core::FrameStats cold = engine.synthesize(*scene.field, scene.spots);
      EXPECT_EQ(reference, engine.texture())
          << pipes << " pipes, strategy " << static_cast<int>(strategy)
          << " (cold)";
      EXPECT_EQ(cold.cache_tiles_published, pipes);
      const core::FrameStats warm = engine.synthesize(*scene.field, scene.spots);
      EXPECT_EQ(reference, engine.texture())
          << pipes << " pipes, strategy " << static_cast<int>(strategy)
          << " (warm)";
      EXPECT_EQ(warm.cache_tile_hits, pipes);
    }
  }
}

TEST(Determinism, TileCacheThrashingDoesNotChangeBits) {
  // A store too small for even one frame's tiles: every publish evicts a
  // sibling mid-run and most probes miss. Constant eviction churn must be
  // just as bit-invisible as a perfectly warm cache.
  const Scene scene = make_scene(core::SpotKind::kEllipse);
  DncConfig dnc = base_config();
  dnc.tiled = true;
  dnc.pipes = 4;
  const render::Framebuffer reference = run(scene, dnc);

  // 96x96 over 4 grid tiles = 48x48 tiles of 9216 bytes; budget two tiles
  // across two shards so publishes constantly displace each other.
  core::Runtime runtime(
      {.workers = 4, .tile_cache_bytes = 2 * 48 * 48 * sizeof(float),
       .tile_cache_shards = 2});
  dnc.tile_cache = true;
  DncSynthesizer a(scene.synthesis, dnc, runtime);
  DncSynthesizer b(scene.synthesis, dnc, runtime);
  std::int64_t evictions = 0;
  for (int frame = 0; frame < 4; ++frame) {
    const core::FrameStats sa = a.synthesize(*scene.field, scene.spots);
    const core::FrameStats sb = b.synthesize(*scene.field, scene.spots);
    evictions += sa.cache_evictions + sb.cache_evictions;
    EXPECT_EQ(reference, a.texture()) << "engine a, frame " << frame;
    EXPECT_EQ(reference, b.texture()) << "engine b, frame " << frame;
  }
  EXPECT_GT(evictions, 0) << "budget did not actually thrash";
  EXPECT_LE(runtime.tile_store().stats().bytes,
            runtime.tile_store().stats().budget_bytes);
}

// ------------------------------------------------- cross-session sharing ---

TEST(Determinism, CrossSessionWorkSharingDoesNotChangeBits) {
  // The shared-runtime lattice property: two sessions synthesize
  // concurrently on one Runtime, so pool workers migrate between their
  // frames and a chunk of either scene may be generated by a worker that
  // just served the other session. The per-pixel sums must not care. Solo
  // references first, then three rounds of concurrent frames, every one
  // compared bit for bit.
  const Scene scene_a = make_scene(core::SpotKind::kEllipse, 400);
  const Scene scene_b = make_scene(core::SpotKind::kBent, 250);
  DncConfig dnc_a = base_config();  // contiguous, 2 pipes
  DncConfig dnc_b = base_config();
  dnc_b.tiled = true;  // mixed modes share the same worker pool
  dnc_b.pipes = 4;
  const render::Framebuffer ref_a = run(scene_a, dnc_a);
  const render::Framebuffer ref_b = run(scene_b, dnc_b);

  for (int round = 0; round < 3; ++round) {
    DncSynthesizer engine_a(scene_a.synthesis, dnc_a);
    DncSynthesizer engine_b(scene_b.synthesis, dnc_b);
    {
      std::jthread thread_b([&] {
        for (int frame = 0; frame < 2; ++frame) {
          engine_b.synthesize(*scene_b.field, scene_b.spots);
        }
      });
      for (int frame = 0; frame < 2; ++frame) {
        engine_a.synthesize(*scene_a.field, scene_a.spots);
      }
    }
    EXPECT_EQ(ref_a, engine_a.texture()) << "session A, round " << round;
    EXPECT_EQ(ref_b, engine_b.texture()) << "session B, round " << round;
  }
}

}  // namespace
