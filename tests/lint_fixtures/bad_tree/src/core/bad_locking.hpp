// Fixture for scripts/lock_lint.py --self-test: every rule must trip here.
// This tree is never compiled — it exists so the lint's own failure modes
// are pinned by a test (a lint that silently stops firing is worse than no
// lint).
#pragma once

#include <mutex>  // R1: raw std header, no waiver

#include "util/thread_annotations.hpp"

namespace dcsn::core {

class BadLocking {
 public:
  void touch() {
    mutex_.lock();  // R5: direct lock() outside the wrapper header
    ++value_;
    mutex_.unlock();
  }

 private:
  util::Mutex mutex_;
  util::Mutex orphan_mutex_;  // R2: referenced by no annotation
  int value_ DCSN_GUARDED_BY(mutex_);
  int typo_guarded_ DCSN_GUARDED_BY(mutx_);  // R3: names an undeclared mutex
  int forgotten_ = 0;  // R4: unannotated member of a mutex-owning class
};

}  // namespace dcsn::core
