// Fixture for scripts/determinism_lint.py --self-test: trips D1, D2 and D3.
// Never compiled. Named rasterizer.cpp because D3 (unquantized accumulation)
// only arms in the accumulation hot files.

#include <chrono>
#include <random>

namespace dcsn::render {

float jitter() {
  std::random_device entropy;  // D1: nondeterministic random source
  return static_cast<float>(entropy()) / 4.0e9f;
}

double frame_budget() {
  // D2: wall-clock read, no determinism waiver
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

void accumulate_row(float* row, int n, float value) {
  for (int x = 0; x < n; ++x) {
    row[x] += value;  // D3: no lattice quantization in sight
  }
}

}  // namespace dcsn::render
