// Lint fixture: a kernel file that violates rule D4 — an intrinsic float
// accumulation with no quantize anywhere near it and no waiver. This is the
// vector-tier version of raw `+=` accumulation: order dependence that D3's
// textual pattern cannot see.
#include <immintrin.h>

#include <cstddef>

namespace fixture {

void leaky_add_scaled(float* dst, const float* src, float w, std::size_t n) {
  const __m256 wv = _mm256_set1_ps(w);
  for (std::size_t k = 0; k + 8 <= n; k += 8) {
    const __m256 s = _mm256_mul_ps(wv, _mm256_loadu_ps(src + k));

    const __m256 d = _mm256_loadu_ps(dst + k);

    _mm256_storeu_ps(dst + k, _mm256_add_ps(d, s));
  }
}

}  // namespace fixture
