// Lint fixture: a kernel file that follows the determinism rules. Every
// intrinsic float add either sits next to its quantize (D4 context) or
// carries an explicit waiver, and indexed accumulation quantizes in sight.
#include <immintrin.h>

#include <cstddef>

namespace fixture {

inline __m128 quantize128(__m128 v) { return v; }

void add_scaled_fixture(float* dst, const float* src, float w, std::size_t n) {
  const __m128 wv = _mm_set1_ps(w);
  for (std::size_t k = 0; k + 4 <= n; k += 4) {
    const __m128 s = quantize128(_mm_mul_ps(wv, _mm_loadu_ps(src + k)));
    _mm_storeu_ps(dst + k, _mm_add_ps(_mm_loadu_ps(dst + k), s));
  }
}

void add_fixture(float* dst, const float* src, std::size_t n) {
  for (std::size_t k = 0; k + 4 <= n; k += 4) {
    // determinism: lattice-exact — both operands hold in-range lattice sums
    _mm_storeu_ps(dst + k, _mm_add_ps(_mm_loadu_ps(dst + k),
                                      _mm_loadu_ps(src + k)));
  }
}

float quantize_contribution(float v);

void tail_fixture(float* dst, const float* src, float w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] += quantize_contribution(w * src[i]);
  }
}

}  // namespace fixture
