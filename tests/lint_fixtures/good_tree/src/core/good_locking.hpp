// Fixture for scripts/lock_lint.py --self-test: a fully disciplined file
// exercising every waiver form. Must produce zero violations.
#pragma once

#include <atomic>

#include "util/thread_annotations.hpp"

namespace dcsn::core {

class GoodLocking {
 public:
  void touch() {
    util::MutexLock lock(mutex_);
    ++value_;
    cv_.notify_all();
  }

  [[nodiscard]] int drain() DCSN_REQUIRES(mutex_) { return value_; }

 private:
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  int value_ DCSN_GUARDED_BY(mutex_) = 0;
  const int limit_ = 8;                // const: exempt
  std::atomic<int> counter_{0};        // atomic: exempt
  int scratch_ = 0;  // lock-lint: unguarded(touched by one thread only)
};

}  // namespace dcsn::core
