// Fixture for scripts/determinism_lint.py --self-test: the disciplined twin
// of bad_tree's rasterizer.cpp. Must produce zero violations.

#include <chrono>

namespace dcsn::util::simd {
float quantize_contribution(float v);
}

namespace dcsn::render {

double stamp() {
  // determinism: timing model only — the stamp never reaches a pixel.
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

void accumulate_row(float* row, int n, float raw) {
  const float value = util::simd::quantize_contribution(raw);
  for (int x = 0; x < n; ++x) {
    row[x] += value;  // lattice-snapped: order-independent
  }
}

struct Stats {
  long fragments = 0;
};

void count(Stats& stats, const long* per_row, int n) {
  for (int y = 0; y < n; ++y) {
    stats.fragments += per_row[y];  // bookkeeping, not pixels: exempt
  }
}

}  // namespace dcsn::render
