// Parameterized property suites: invariants that must hold across whole
// families of configurations, swept with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "particles/particle_system.hpp"
#include "particles/seeding.hpp"
#include "particles/tracer.hpp"
#include "render/image.hpp"
#include "render/rasterizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Rect;
using field::Vec2;

// =====================================================================
// Property: for every execution strategy (processors x pipes x tiled),
// the divide-and-conquer engine reproduces the serial baseline texture.
// This is the correctness core of the paper: partitioning spots and
// blending partial textures must not change the image.
// =====================================================================

struct EngineParam {
  int processors;
  int pipes;
  bool tiled;
  core::SpotKind kind;
};

class EngineEquivalence : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineEquivalence, MatchesSerialTexture) {
  const EngineParam param = GetParam();
  core::SynthesisConfig config;
  config.texture_width = 96;
  config.texture_height = 96;
  config.spot_count = 250;
  config.spot_radius_px = 5.0;
  config.kind = param.kind;
  config.bent.mesh_cols = 6;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 20.0;

  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  util::Rng rng(config.seed);
  const auto spots = core::make_random_spots(domain, config.spot_count, rng);

  core::SerialSynthesizer serial(config);
  serial.synthesize(*f, spots);

  core::DncConfig dnc;
  dnc.processors = param.processors;
  dnc.pipes = param.pipes;
  dnc.tiled = param.tiled;
  core::DncSynthesizer engine(config, dnc);
  engine.synthesize(*f, spots);

  const double sigma = render::texture_stddev(serial.texture());
  double worst = 0.0;
  for (int y = 0; y < 96; ++y)
    for (int x = 0; x < 96; ++x)
      worst = std::max(worst, std::abs(double(serial.texture().at(x, y)) -
                                       engine.texture().at(x, y)));
  EXPECT_LT(worst, 1e-4 * sigma + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, EngineEquivalence,
    ::testing::Values(
        EngineParam{1, 1, false, core::SpotKind::kPoint},
        EngineParam{1, 1, false, core::SpotKind::kEllipse},
        EngineParam{1, 1, false, core::SpotKind::kBent},
        EngineParam{3, 1, false, core::SpotKind::kEllipse},
        EngineParam{4, 2, false, core::SpotKind::kEllipse},
        EngineParam{4, 2, false, core::SpotKind::kBent},
        EngineParam{8, 4, false, core::SpotKind::kEllipse},
        EngineParam{2, 2, true, core::SpotKind::kPoint},
        EngineParam{4, 2, true, core::SpotKind::kEllipse},
        EngineParam{4, 4, true, core::SpotKind::kBent},
        EngineParam{6, 3, true, core::SpotKind::kEllipse}),
    [](const auto& param_info) {
      const EngineParam& p = param_info.param;
      std::string name = "p" + std::to_string(p.processors) + "g" +
                         std::to_string(p.pipes) + (p.tiled ? "tiled" : "gather");
      switch (p.kind) {
        case core::SpotKind::kPoint: name += "Point"; break;
        case core::SpotKind::kEllipse: name += "Ellipse"; break;
        case core::SpotKind::kBent: name += "Bent"; break;
      }
      return name;
    });

// =====================================================================
// Property: the spot-noise texture is statistically well-behaved for any
// spot shape and profile — near-zero mean (intensities are zero-mean) and
// non-degenerate variance.
// =====================================================================

struct TextureParam {
  core::SpotKind kind;
  render::SpotShape profile;
};

class TextureStatistics : public ::testing::TestWithParam<TextureParam> {};

TEST_P(TextureStatistics, ZeroMeanNonDegenerate) {
  const TextureParam param = GetParam();
  core::SynthesisConfig config;
  config.texture_width = 128;
  config.texture_height = 128;
  config.spot_count = 3000;
  config.spot_radius_px = 6.0;
  config.kind = param.kind;
  config.profile_shape = param.profile;
  config.bent.mesh_cols = 8;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 24.0;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);

  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::rigid_vortex({1, 1}, 1.0, domain);
  util::Rng rng(7);
  const auto spots = core::make_random_spots(domain, config.spot_count, rng);
  core::SerialSynthesizer synth(config);
  synth.synthesize(*f, spots);

  const double sigma = render::texture_stddev(synth.texture());
  EXPECT_GT(sigma, 0.01);
  EXPECT_LT(std::abs(synth.texture().mean()), 0.5 * sigma);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndProfiles, TextureStatistics,
    ::testing::Values(TextureParam{core::SpotKind::kPoint, render::SpotShape::kDisc},
                      TextureParam{core::SpotKind::kPoint, render::SpotShape::kGaussian},
                      TextureParam{core::SpotKind::kEllipse, render::SpotShape::kCosine},
                      TextureParam{core::SpotKind::kEllipse, render::SpotShape::kRing},
                      TextureParam{core::SpotKind::kBent, render::SpotShape::kCosine},
                      TextureParam{core::SpotKind::kBent, render::SpotShape::kGaussian}),
    [](const auto& param_info) {
      std::string name;
      switch (param_info.param.kind) {
        case core::SpotKind::kPoint: name = "Point"; break;
        case core::SpotKind::kEllipse: name = "Ellipse"; break;
        case core::SpotKind::kBent: name = "Bent"; break;
      }
      switch (param_info.param.profile) {
        case render::SpotShape::kDisc: name += "Disc"; break;
        case render::SpotShape::kGaussian: name += "Gaussian"; break;
        case render::SpotShape::kCosine: name += "Cosine"; break;
        case render::SpotShape::kRing: name += "Ring"; break;
      }
      return name;
    });

// =====================================================================
// Property: rasterizing a mesh grid covers each pixel exactly once no
// matter how the grid is tessellated. Swept over mesh dimensions.
// =====================================================================

class MeshCoverage
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MeshCoverage, EveryCoveredPixelBlendedOnce) {
  const auto [cols, rows] = GetParam();
  render::Framebuffer fb(64, 64);
  const render::SpotProfile profile(render::SpotShape::kDisc, 64);
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, cols, rows);
  // A rectangle split into (cols-1)x(rows-1) quads with constant UV: any
  // double-blended seam pixel would carry 2x the value.
  for (int j = 0; j < rows; ++j)
    for (int i = 0; i < cols; ++i)
      v[static_cast<std::size_t>(j * cols + i)] = {
          4.0f + 48.0f * static_cast<float>(i) / (cols - 1),
          4.0f + 48.0f * static_cast<float>(j) / (rows - 1), 0.5f, 0.5f};
  render::RasterStats stats;
  render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                           render::BlendMode::kAdditive, stats);
  const float expected = fb.at(20, 20);
  ASSERT_NE(expected, 0.0f);
  std::int64_t covered = 0;
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      const float p = fb.at(x, y);
      ASSERT_TRUE(p == 0.0f || std::abs(p - expected) < 1e-6f)
          << "seam double-blend at (" << x << "," << y << "): " << p;
      if (p != 0.0f) ++covered;
    }
  // The rectangle [4,52)^2 covers exactly 48x48 pixel centers.
  EXPECT_EQ(covered, 48 * 48);
  EXPECT_EQ(stats.quads, (cols - 1) * (rows - 1));
}

INSTANTIATE_TEST_SUITE_P(MeshDimensions, MeshCoverage,
                         ::testing::Combine(::testing::Values(2, 3, 5, 16, 32),
                                            ::testing::Values(2, 3, 9, 17)));

// =====================================================================
// Property: integrator order — on a vortex, RK4 error shrinks ~16x when
// the step halves, RK2 ~4x, Euler ~2x. Swept over integrators.
// =====================================================================

class IntegratorOrder
    : public ::testing::TestWithParam<std::tuple<particles::Integrator, double>> {};

TEST_P(IntegratorOrder, ConvergesAtExpectedRate) {
  const auto [method, min_ratio] = GetParam();
  const Rect domain{-2, -2, 2, 2};
  const auto f = field::analytic::rigid_vortex({0, 0}, 1.0, domain);
  auto drift = [&](int steps) {
    const double dt = std::numbers::pi / steps;  // half revolution
    Vec2 p{1.0, 0.0};
    for (int k = 0; k < steps; ++k) p = particles::step(*f, p, dt, method);
    return std::abs(p.length() - 1.0) + 1e-16;
  };
  const double coarse = drift(64);
  const double fine = drift(128);
  EXPECT_GT(coarse / fine, min_ratio)
      << "coarse " << coarse << " fine " << fine;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, IntegratorOrder,
    ::testing::Values(std::make_tuple(particles::Integrator::kEuler, 1.7),
                      std::make_tuple(particles::Integrator::kRk2, 3.3),
                      std::make_tuple(particles::Integrator::kRk4, 10.0)),
    [](const auto& param_info) {
      switch (std::get<0>(param_info.param)) {
        case particles::Integrator::kEuler: return "Euler";
        case particles::Integrator::kRk2: return "Rk2";
        case particles::Integrator::kRk4: return "Rk4";
      }
      return "unknown";
    });

// =====================================================================
// Property: streamline points are spaced exactly step_length apart (to
// integrator accuracy) in every field — arc-length parameterization.
// =====================================================================

class TracerSpacing : public ::testing::TestWithParam<int> {};

TEST_P(TracerSpacing, StepsAreArcLengthUniform) {
  const int field_id = GetParam();
  const Rect domain{-2, -2, 2, 2};
  std::unique_ptr<field::VectorField> f;
  switch (field_id) {
    case 0: f = field::analytic::uniform({1.3, -0.4}, domain); break;
    case 1: f = field::analytic::rigid_vortex({0, 0}, 2.0, domain); break;
    case 2: f = field::analytic::shear(1.0, domain); break;
    default: f = field::analytic::taylor_green(1.0, domain); break;
  }
  particles::TracerConfig config;
  config.step_length = 0.05;
  const particles::StreamlineTracer tracer(config);
  const auto line = tracer.trace(*f, {0.6, 0.3}, 20, 20);
  for (std::size_t k = 1; k < line.size(); ++k) {
    const double spacing = (line.points[k] - line.points[k - 1]).length();
    EXPECT_NEAR(spacing, 0.05, 0.005) << "segment " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Fields, TracerSpacing, ::testing::Range(0, 4));

// =====================================================================
// Property: the particle population stays inside the domain and keeps
// zero-mean intensity under long advection, for several fields and
// lifetimes.
// =====================================================================

class PopulationInvariants
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PopulationInvariants, DomainAndIntensityPreserved) {
  const auto [field_id, lifetime] = GetParam();
  const Rect domain{0, 0, 2, 2};
  std::unique_ptr<field::VectorField> f;
  switch (field_id) {
    case 0: f = field::analytic::uniform({1.0, 0.3}, domain); break;
    case 1: f = field::analytic::rigid_vortex({1, 1}, 3.0, domain); break;
    default: f = field::analytic::saddle({1, 1}, 1.0, domain); break;
  }
  particles::ParticleSystemConfig config;
  config.count = 1000;
  config.mean_lifetime = lifetime;
  particles::ParticleSystem system(config, domain, util::Rng(21));
  for (int step = 0; step < 50; ++step) system.advance(*f, 0.05);

  double intensity_sum = 0.0;
  for (const auto& p : system.particles()) {
    ASSERT_TRUE(domain.contains(p.position));
    ASSERT_GE(p.age, 0.0);
    ASSERT_LT(p.age, p.lifetime);
    ASSERT_GE(p.lifetime, 0.5 * lifetime * 0.999);
    ASSERT_LE(p.lifetime, 1.5 * lifetime * 1.001);
    intensity_sum += p.intensity;
  }
  EXPECT_LT(std::abs(intensity_sum) / 1000.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(FieldsAndLifetimes, PopulationInvariants,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(0.5, 2.0, 8.0)));

// =====================================================================
// Property: high-pass is idempotent-ish in spectrum terms — applying it
// twice changes little compared to applying it once (the low band is
// already gone). Swept over radii.
// =====================================================================

class HighPassProperty : public ::testing::TestWithParam<int> {};

TEST_P(HighPassProperty, SecondApplicationIsNearNoOp) {
  const int radius = GetParam();
  render::Framebuffer fb(96, 96);
  util::Rng rng(31);
  for (int y = 0; y < 96; ++y)
    for (int x = 0; x < 96; ++x)
      fb.at(x, y) = static_cast<float>(rng.intensity() +
                                       0.5 * std::sin(x * 0.05) * std::sin(y * 0.04));
  const auto once = core::high_pass(fb, radius);
  const auto twice = core::high_pass(once, radius);
  const double delta_once = render::texture_stddev(fb) > 0
                                ? std::abs(render::texture_stddev(once) -
                                           render::texture_stddev(fb))
                                : 0.0;
  const double delta_twice = std::abs(render::texture_stddev(twice) -
                                      render::texture_stddev(once));
  EXPECT_LT(delta_twice, 0.5 * delta_once + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Radii, HighPassProperty, ::testing::Values(2, 4, 8, 16));

// =====================================================================
// Property: tile grids cover the texture exactly once for every texture
// size / tile count combination (including awkward remainders).
// =====================================================================

class TileGridProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TileGridProperty, ExactDisjointCover) {
  const auto [w, h, count] = GetParam();
  const auto tiles = core::make_tile_grid(w, h, count);
  ASSERT_EQ(std::ssize(tiles), count);
  std::vector<std::uint8_t> cover(static_cast<std::size_t>(w) * h, 0);
  for (const auto& t : tiles) {
    ASSERT_GE(t.x0, 0);
    ASSERT_GE(t.y0, 0);
    ASSERT_LE(t.x0 + t.width, w);
    ASSERT_LE(t.y0 + t.height, h);
    for (int y = t.y0; y < t.y0 + t.height; ++y)
      for (int x = t.x0; x < t.x0 + t.width; ++x)
        ++cover[static_cast<std::size_t>(y) * w + x];
  }
  for (const auto c : cover) ASSERT_EQ(c, 1);
}

INSTANTIATE_TEST_SUITE_P(SizesAndCounts, TileGridProperty,
                         ::testing::Combine(::testing::Values(64, 97, 512),
                                            ::testing::Values(64, 101),
                                            ::testing::Values(1, 2, 3, 5, 8)));

// =====================================================================
// Property: RNG uniformity across seeds — chi-squared over 16 bins stays
// within generous bounds for every seed tested.
// =====================================================================

class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, ChiSquaredWithinBounds) {
  util::Rng rng(GetParam());
  constexpr int kBins = 16;
  constexpr int kDraws = 32000;
  std::array<int, kBins> histogram{};
  for (int k = 0; k < kDraws; ++k) {
    const auto bin = static_cast<std::size_t>(rng.uniform() * kBins);
    ++histogram[std::min<std::size_t>(bin, kBins - 1)];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (const int h : histogram) {
    const double d = h - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom: p=0.001 critical value ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(1u, 42u, 1234567u, 0xdeadbeefu,
                                           0xffffffffffffffffu));

// =====================================================================
// Property: seeding strategies produce points inside the domain with
// near-uniform quadrant balance, for each strategy and domain shape.
// =====================================================================

class SeedingProperty
    : public ::testing::TestWithParam<std::tuple<int, Rect>> {};

TEST_P(SeedingProperty, InDomainAndBalanced) {
  const auto [strategy, domain] = GetParam();
  util::Rng rng(5);
  std::vector<Vec2> pts;
  switch (strategy) {
    case 0: pts = particles::seed_uniform(domain, 2000, rng); break;
    case 1: pts = particles::seed_jittered_grid(domain, 2000, rng); break;
    default: pts = particles::seed_halton(domain, 2000); break;
  }
  ASSERT_EQ(pts.size(), 2000u);
  int quadrant = 0;
  const Vec2 c = domain.center();
  for (const Vec2& p : pts) {
    ASSERT_TRUE(domain.contains(p));
    if (p.x < c.x && p.y < c.y) ++quadrant;
  }
  EXPECT_NEAR(quadrant, 500, 120);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndDomains, SeedingProperty,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(Rect{0, 0, 1, 1}, Rect{-3, 2, 9, 4},
                                         Rect{0, 0, 1060, 1100})));

}  // namespace
