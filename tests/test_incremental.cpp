// Temporal-coherence incremental resynthesis: the invariant under test is
// that an incrementally rendered frame is BIT-IDENTICAL to full
// resynthesis, for any sequence of spot births, deaths and moves, with
// cache invalidations forced mid-sequence. Framebuffer::operator== — no
// tolerance.
//
// ctest label: incremental (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/animator.hpp"
#include "core/dnc_synthesizer.hpp"
#include "core/frame_delta.hpp"
#include "core/perf_model.hpp"
#include "core/runtime.hpp"
#include "core/spot_source.hpp"
#include "core/synthesis_cache.hpp"
#include "core/tile_store.hpp"
#include "field/analytic.hpp"
#include "field/fingerprint.hpp"
#include "particles/particle_system.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace dcsn;
using core::DncConfig;
using core::DncSynthesizer;
using core::FrameDelta;
using core::SpotInstance;
using core::SynthesisCache;
using core::SynthesisConfig;
using core::Tile;

constexpr field::Rect kDomain{0.0, 0.0, 4.0, 4.0};

std::unique_ptr<field::VectorField> make_field() {
  // Capped swirl: solid rotation inside a compact core, exactly stagnant
  // outside — the slow-flow regime the incremental path targets.
  return std::make_unique<field::CallableField>(
      [](field::Vec2 p) -> field::Vec2 {
        const double dx = p.x - 1.0;
        const double dy = p.y - 1.0;
        if (dx * dx + dy * dy > 0.36) return {0.0, 0.0};
        return {-dy, dx};
      },
      kDomain, 0.6);
}

SynthesisConfig small_synthesis() {
  SynthesisConfig sc;
  sc.texture_width = 64;
  sc.texture_height = 64;
  sc.spot_count = 200;
  sc.spot_radius_px = 5.0;
  // Point spots: a 6px conservative extent, so a spot deep inside a 32px
  // tile really stays inside it. (An ellipse's extent is radius*max_stretch
  // — at this scale every spot would conservatively touch several tiles and
  // the reuse assertions below would be vacuous.)
  sc.kind = core::SpotKind::kPoint;
  return sc;
}

DncConfig tiled_config(int pipes = 4) {
  DncConfig dnc;
  dnc.processors = pipes;
  dnc.pipes = pipes;
  dnc.tiled = true;
  dnc.chunk_spots = 16;
  return dnc;
}

std::vector<SpotInstance> random_spots(util::Rng& rng, std::int64_t count) {
  auto spots = core::make_random_spots(kDomain, count, rng);
  for (auto& s : spots) s.intensity *= 0.2;
  return spots;
}

// --------------------------------------------------------- FrameDelta ---

TEST(FrameDelta, ClassifiesMovesBirthsAndDeaths) {
  util::Rng rng(7);
  std::vector<SpotInstance> prev = random_spots(rng, 10);
  std::vector<SpotInstance> cur = prev;
  cur[3].position.x += 0.25;       // moved
  cur[7].intensity = -cur[7].intensity;  // intensity change counts as moved
  cur.push_back({{1.0, 1.0}, 0.5});      // born
  const FrameDelta delta = core::diff_spots(prev, cur);
  EXPECT_EQ(delta.unchanged, 8);
  EXPECT_EQ(delta.moved, 2);
  EXPECT_EQ(delta.born, 1);
  EXPECT_EQ(delta.died, 0);
  ASSERT_EQ(delta.changed.size(), 2u);
  EXPECT_EQ(delta.changed[0], 3);
  EXPECT_EQ(delta.changed[1], 7);

  const FrameDelta shrunk = core::diff_spots(cur, prev);
  EXPECT_EQ(shrunk.died, 1);
  EXPECT_EQ(shrunk.born, 0);
}

TEST(FrameDelta, NaNPositionIsConservativelyMoved) {
  util::Rng rng(7);
  std::vector<SpotInstance> prev = random_spots(rng, 3);
  std::vector<SpotInstance> cur = prev;
  cur[1].position.x = std::nan("");
  EXPECT_EQ(core::diff_spots(cur, cur).moved, 1);  // NaN != NaN, both frames
  EXPECT_EQ(core::diff_spots(prev, cur).moved, 1);
}

TEST(FrameDelta, DirtyTilesCoverOldAndNewExtent) {
  // Two 32px tiles side by side; a spot moving from the left tile to the
  // right one must dirty both.
  const std::vector<Tile> tiles{{0, 0, 32, 32}, {32, 0, 32, 32}};
  const render::WorldToImage mapping({0.0, 0.0, 64.0, 64.0}, 64, 64);
  std::vector<SpotInstance> prev{{{8.0, 32.0}, 0.5}, {{48.0, 32.0}, 0.5}};
  std::vector<SpotInstance> cur = prev;
  cur[0].position.x = 40.0;  // left -> right
  const FrameDelta delta = core::diff_spots(prev, cur);
  const auto dirty = core::dirty_tiles(delta, prev, cur, mapping, 4.0, tiles);
  EXPECT_EQ(dirty, (std::vector<std::uint8_t>{1, 1}));

  // An unchanged population dirties nothing.
  const FrameDelta none = core::diff_spots(prev, prev);
  const auto clean = core::dirty_tiles(none, prev, prev, mapping, 4.0, tiles);
  EXPECT_EQ(clean, (std::vector<std::uint8_t>{0, 0}));

  // A spot near the boundary dirties both tiles (conservative extent),
  // exactly like assign_spots_to_tiles would assign it to both.
  std::vector<SpotInstance> near = prev;
  near[1].position.x = 30.0;  // extent [26, 34] straddles x = 32
  const FrameDelta moved = core::diff_spots(prev, near);
  const auto both = core::dirty_tiles(moved, prev, near, mapping, 4.0, tiles);
  EXPECT_EQ(both, (std::vector<std::uint8_t>{1, 1}));
}

// ------------------------------------------------- engine-level fuzzing ---

// Drives two identical tiled engines over the same mutating spot sequence:
// one re-renders every frame, the other goes through SynthesisCache. Every
// frame must match bitwise. Returns the number of frames that actually
// reused at least one tile, so callers can assert the test exercised the
// incremental path rather than degenerating to all-dirty frames.
int fuzz_sequence(DncConfig dnc, std::uint64_t seed, int frames,
                  double churn, bool force_invalidations) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncSynthesizer full(sc, dnc);
  DncSynthesizer incremental(sc, dnc);
  SynthesisCache cache;

  util::Rng rng(seed);
  std::vector<SpotInstance> spots = random_spots(rng, sc.spot_count);
  int reused_frames = 0;
  for (int frame = 0; frame < frames; ++frame) {
    if (force_invalidations && frame % 17 == 11) cache.invalidate();

    const SynthesisCache::Decision d = cache.plan(incremental, *field, spots);
    const core::FrameStats stats =
        incremental.synthesize(*field, spots, d.incremental ? &d.plan : nullptr);
    cache.commit(incremental, *field, std::vector<SpotInstance>(spots));
    full.synthesize(*field, spots);

    EXPECT_EQ(full.texture(), incremental.texture())
        << "frame " << frame << " diverged (seed " << seed << ")";
    if (stats.tiles_reused > 0) ++reused_frames;

    // Mutate for the next frame: moves, births, deaths.
    for (auto& s : spots) {
      if (rng.uniform() < churn) {
        if (rng.uniform() < 0.3) {
          // Respawn-style discontinuous jump anywhere in the domain.
          s.position = {rng.uniform(kDomain.x0, kDomain.x1),
                        rng.uniform(kDomain.y0, kDomain.y1)};
          s.intensity = 0.2 * rng.intensity();
        } else {
          // Advection-style small move.
          s.position.x += rng.uniform(-0.05, 0.05);
          s.position.y += rng.uniform(-0.05, 0.05);
        }
      }
    }
    if (rng.uniform() < 0.25 && spots.size() > 50) {
      spots.resize(spots.size() - 1 - static_cast<std::size_t>(rng.uniform() * 4));
    } else if (rng.uniform() < 0.25) {
      const auto born = static_cast<std::int64_t>(1 + rng.uniform() * 4);
      for (std::int64_t k = 0; k < born; ++k) {
        spots.push_back({{rng.uniform(kDomain.x0, kDomain.x1),
                          rng.uniform(kDomain.y0, kDomain.y1)},
                         0.2 * rng.intensity()});
      }
    }
  }
  return reused_frames;
}

TEST(IncrementalFuzz, FiftyFramesLowChurnBitIdentical) {
  const int reused = fuzz_sequence(tiled_config(4), 42, 50, 0.05, true);
  // Low churn on a 2x2 grid must actually reuse tiles, or the test proves
  // nothing about the retention path.
  EXPECT_GT(reused, 0);
}

TEST(IncrementalFuzz, HighChurnStaysExact) {
  fuzz_sequence(tiled_config(4), 1337, 30, 0.5, true);
}

TEST(IncrementalFuzz, ManyTilesWithStealing) {
  DncConfig dnc = tiled_config(8);
  dnc.processors = 8;
  const int reused = fuzz_sequence(dnc, 99, 30, 0.03, false);
  EXPECT_GT(reused, 0);
}

TEST(IncrementalFuzz, CostBalancedTilesFreezeDuringReuse) {
  DncConfig dnc = tiled_config(4);
  dnc.tile_strategy = core::TileStrategy::kCostBalanced;
  fuzz_sequence(dnc, 7, 25, 0.05, true);
}

// ------------------------------------- content-addressed cache + planning ---

// Same protocol as fuzz_sequence, but the incremental engine also runs the
// content-addressed TileStore (DncConfig::tile_cache) on a private Runtime
// with the given byte budget, stacking both reuse layers: planned-clean
// tiles are retained, dirty tiles are probed against the store before
// re-rendering. The oracle stays a plain uncached full re-render. Forced
// invalidations matter here: the all-dirty full frame that follows probes
// every tile. The population holds still on the frame before each
// invalidation, so those probes find the tiles the previous frame
// published — deterministic store hits rather than luck.
struct CachedFuzzTotals {
  std::int64_t hits = 0;
  std::int64_t evictions = 0;
};

CachedFuzzTotals cached_fuzz_sequence(DncConfig dnc, std::uint64_t seed,
                                      int frames, double churn,
                                      std::size_t cache_bytes) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  core::Runtime runtime({.workers = 4,
                         .tile_cache_bytes = cache_bytes,
                         .tile_cache_shards = 2});
  DncConfig cached_cfg = dnc;
  cached_cfg.tile_cache = true;
  DncSynthesizer full(sc, dnc);
  DncSynthesizer incremental(sc, cached_cfg, runtime);
  SynthesisCache cache;

  CachedFuzzTotals totals;
  util::Rng rng(seed);
  std::vector<SpotInstance> spots = random_spots(rng, sc.spot_count);
  for (int frame = 0; frame < frames; ++frame) {
    if (frame % 17 == 11) cache.invalidate();

    const SynthesisCache::Decision d = cache.plan(incremental, *field, spots);
    const core::FrameStats stats =
        incremental.synthesize(*field, spots, d.incremental ? &d.plan : nullptr);
    cache.commit(incremental, *field, std::vector<SpotInstance>(spots));
    full.synthesize(*field, spots);

    EXPECT_EQ(full.texture(), incremental.texture())
        << "frame " << frame << " diverged (seed " << seed << ", budget "
        << cache_bytes << ")";
    totals.hits += stats.cache_tile_hits;
    totals.evictions += stats.cache_evictions;
    EXPECT_LE(runtime.tile_store().stats().bytes,
              runtime.tile_store().stats().budget_bytes);

    if (frame % 17 == 10) continue;  // freeze before the forced invalidation
    for (auto& s : spots) {
      if (rng.uniform() < churn) {
        s.position.x += rng.uniform(-0.05, 0.05);
        s.position.y += rng.uniform(-0.05, 0.05);
      }
    }
    if (rng.uniform() < 0.25 && spots.size() > 50) {
      spots.resize(spots.size() - 1 - static_cast<std::size_t>(rng.uniform() * 4));
    } else if (rng.uniform() < 0.25) {
      const auto born = static_cast<std::int64_t>(1 + rng.uniform() * 4);
      for (std::int64_t k = 0; k < born; ++k) {
        spots.push_back({{rng.uniform(kDomain.x0, kDomain.x1),
                          rng.uniform(kDomain.y0, kDomain.y1)},
                         0.2 * rng.intensity()});
      }
    }
  }
  return totals;
}

TEST(CachedIncrementalFuzz, StackedWithPlanningMatchesUncachedOracle) {
  // Roomy budget: nothing evicts, and invalidation-forced full frames must
  // actually come back from the store.
  const CachedFuzzTotals totals =
      cached_fuzz_sequence(tiled_config(4), 4242, 40, 0.04, 1u << 20);
  EXPECT_GT(totals.hits, 0) << "the store never served a tile";
  EXPECT_EQ(totals.evictions, 0);
}

TEST(CachedIncrementalFuzz, MidRunEvictionsStayBitInvisible) {
  // Two 32x32 tiles' worth of budget for a 4-tile frame: publishes evict
  // mid-sequence every frame, so probes race real churn. Still exact.
  const CachedFuzzTotals totals = cached_fuzz_sequence(
      tiled_config(4), 777, 30, 0.04, 2u * 32u * 32u * sizeof(float));
  EXPECT_GT(totals.evictions, 0) << "budget did not actually thrash";
}

TEST(CachedIncrementalFuzz, CostBalancedStrategyStaysExact) {
  DncConfig dnc = tiled_config(4);
  dnc.tile_strategy = core::TileStrategy::kCostBalanced;
  cached_fuzz_sequence(dnc, 31337, 25, 0.05, 1u << 20);
}

// --------------------------------------------------- cache invalidation ---

TEST(SynthesisCache, FullFrameOnFirstUseAndAfterInvalidate) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncSynthesizer engine(sc, tiled_config(4));
  SynthesisCache cache;
  util::Rng rng(5);
  const auto spots = random_spots(rng, sc.spot_count);

  EXPECT_FALSE(cache.plan(engine, *field, spots).incremental);
  engine.synthesize(*field, spots);
  cache.commit(engine, *field, std::vector<SpotInstance>(spots));
  EXPECT_TRUE(cache.plan(engine, *field, spots).incremental);

  cache.invalidate();
  EXPECT_FALSE(cache.plan(engine, *field, spots).incremental);
}

TEST(SynthesisCache, UncommittedEngineFrameInvalidates) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncSynthesizer engine(sc, tiled_config(4));
  SynthesisCache cache;
  util::Rng rng(5);
  const auto spots = random_spots(rng, sc.spot_count);

  engine.synthesize(*field, spots);
  cache.commit(engine, *field, std::vector<SpotInstance>(spots));
  // Someone else drives the engine: the retained final texture no longer
  // matches the cache's snapshot.
  engine.synthesize(*field, spots);
  EXPECT_FALSE(cache.plan(engine, *field, spots).incremental);
}

TEST(SynthesisCache, FieldChangeInvalidates) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncSynthesizer engine(sc, tiled_config(4));
  SynthesisCache cache;
  util::Rng rng(5);
  const auto spots = random_spots(rng, sc.spot_count);

  engine.synthesize(*field, spots);
  cache.commit(engine, *field, std::vector<SpotInstance>(spots));
  const auto other = make_field();  // different object, same values
  EXPECT_FALSE(cache.plan(engine, *other, spots).incremental);
}

TEST(SynthesisCache, InPlaceFieldMutationInvalidates) {
  // Aliasing regression for the old 8-point probe: the field object is
  // mutated IN PLACE — same address, so the identity check passes — and the
  // change is confined to a 0.05-radius disc placed on a fingerprint grid
  // sample but away from every legacy probe coordinate (nearest was ~0.98
  // domain units). Only the full 16x16 content grid can catch it; under the
  // probe scheme this exact sequence served stale tiles.
  const SynthesisConfig sc = small_synthesis();
  double bump = 0.0;
  constexpr double kCenterX = 1.375;  // grid sample (5, 9) of the 16x16 grid
  constexpr double kCenterY = 2.375;
  field::CallableField field(
      [&bump](field::Vec2 p) -> field::Vec2 {
        const double dx = p.x - kCenterX;
        const double dy = p.y - kCenterY;
        if (dx * dx + dy * dy > 0.0025) return {0.0, 0.0};
        return {bump, 0.0};
      },
      kDomain, 0.6);

  DncSynthesizer engine(sc, tiled_config(4));
  SynthesisCache cache;
  util::Rng rng(5);
  const auto spots = random_spots(rng, sc.spot_count);
  engine.synthesize(field, spots);
  cache.commit(engine, field, std::vector<SpotInstance>(spots));
  ASSERT_TRUE(cache.plan(engine, field, spots).incremental);

  const field::FieldFingerprint before = field::fingerprint_field(field);
  bump = 0.5;  // in-place content change, address unchanged
  const field::FieldFingerprint after = field::fingerprint_field(field);
  EXPECT_NE(before.hash, after.hash);
  EXPECT_FALSE(cache.plan(engine, field, spots).incremental);
}

TEST(SynthesisCache, NonTiledEngineAlwaysFull) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncConfig dnc = tiled_config(2);
  dnc.tiled = false;
  DncSynthesizer engine(sc, dnc);
  SynthesisCache cache;
  util::Rng rng(5);
  const auto spots = random_spots(rng, sc.spot_count);
  engine.synthesize(*field, spots);
  cache.commit(engine, *field, std::vector<SpotInstance>(spots));
  EXPECT_FALSE(cache.plan(engine, *field, spots).incremental);
  EXPECT_FALSE(cache.valid());
}

TEST(SynthesisCache, PlanOnNonTiledEngineRejectedByEngine) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncConfig dnc = tiled_config(2);
  dnc.tiled = false;
  DncSynthesizer engine(sc, dnc);
  util::Rng rng(5);
  const auto spots = random_spots(rng, sc.spot_count);
  core::FramePlan plan;
  plan.tile_dirty = {1, 1};
  EXPECT_THROW((void)engine.synthesize(*field, spots, &plan), util::Error);
}

TEST(SynthesisCache, CostBalancedGridRebalancesPeriodically) {
  // Planned frames freeze a kCostBalanced grid; the rebalance budget must
  // force one full frame per interval so the kd-cut can follow the
  // population — and incremental planning must resume right after.
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncConfig dnc = tiled_config(4);
  dnc.tile_strategy = core::TileStrategy::kCostBalanced;
  DncSynthesizer engine(sc, dnc);
  SynthesisCache cache;
  cache.rebalance_interval = 3;
  util::Rng rng(21);
  const auto spots = random_spots(rng, sc.spot_count);

  engine.synthesize(*field, spots);
  cache.commit(engine, *field, std::vector<SpotInstance>(spots));

  std::vector<bool> planned;
  for (int frame = 0; frame < 8; ++frame) {
    const SynthesisCache::Decision d = cache.plan(engine, *field, spots);
    planned.push_back(d.incremental);
    engine.synthesize(*field, spots, d.incremental ? &d.plan : nullptr);
    cache.commit(engine, *field, std::vector<SpotInstance>(spots));
  }
  // Streak of 3 planned frames, then one forced full, repeating.
  EXPECT_EQ(planned, (std::vector<bool>{true, true, true, false, true, true,
                                        true, false}));

  // A kGrid engine never pays the refresh: its layout is static.
  DncSynthesizer grid_engine(sc, tiled_config(4));
  SynthesisCache grid_cache;
  grid_cache.rebalance_interval = 2;
  grid_engine.synthesize(*field, spots);
  grid_cache.commit(grid_engine, *field, std::vector<SpotInstance>(spots));
  for (int frame = 0; frame < 6; ++frame) {
    const SynthesisCache::Decision d = grid_cache.plan(grid_engine, *field, spots);
    EXPECT_TRUE(d.incremental) << "frame " << frame;
    grid_engine.synthesize(*field, spots, &d.plan);
    grid_cache.commit(grid_engine, *field, std::vector<SpotInstance>(spots));
  }
}

TEST(IncrementalStats, PeakPixelMagnitudeStaysInsideLatticeBudget) {
  // The exactness guarantee needs per-pixel sums inside the lattice's
  // exact range; FrameStats::peak_pixel_magnitude is the canary. A
  // standard population must sit far below the bound.
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncSynthesizer engine(sc, tiled_config(4));
  util::Rng rng(31);
  const auto spots = random_spots(rng, sc.spot_count);
  const core::FrameStats stats = engine.synthesize(*field, spots);
  EXPECT_GT(stats.peak_pixel_magnitude, 0.0);
  EXPECT_LT(stats.peak_pixel_magnitude,
            0.25 * util::simd::kContributionExactBound);
}

// --------------------------------------------------- reuse accounting ---

TEST(IncrementalStats, ReuseIsAccountedAndRetentionSkipsWork) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncSynthesizer engine(sc, tiled_config(4));
  SynthesisCache cache;
  util::Rng rng(11);
  std::vector<SpotInstance> spots = random_spots(rng, sc.spot_count);
  // Pin spot 0 to the interior of the top-left 32x32 tile — pixel (16, 16),
  // far enough from every boundary that its conservative extent stays
  // inside one tile.
  spots[0].position = {1.0, 3.0};

  engine.synthesize(*field, spots);
  cache.commit(engine, *field, std::vector<SpotInstance>(spots));

  // Change only its intensity: exactly one dirty tile.
  spots[0].intensity = -spots[0].intensity;
  const SynthesisCache::Decision d = cache.plan(engine, *field, spots);
  ASSERT_TRUE(d.incremental);
  EXPECT_EQ(d.plan.dirty_count(), 1);
  const core::FrameStats stats =
      engine.synthesize(*field, spots, &d.plan);
  EXPECT_EQ(stats.tiles_reused, 3);
  EXPECT_GT(stats.spots_skipped, 0);
  // Only the dirty tile crossed the bus.
  EXPECT_EQ(stats.readback_bytes, 32u * 32u * sizeof(float));
  // And the result still matches a from-scratch engine exactly.
  DncSynthesizer oracle(sc, tiled_config(4));
  oracle.synthesize(*field, spots);
  EXPECT_EQ(oracle.texture(), engine.texture());
}

// ----------------------------------------------------- animator level ---

TEST(IncrementalAnimator, MatchesFullAnimatorBitwise) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();

  auto run = [&](bool incremental) {
    DncSynthesizer engine(sc, tiled_config(4));
    particles::ParticleSystemConfig pc;
    pc.count = sc.spot_count;
    pc.mean_lifetime = 100.0;  // few respawns across the run
    pc.fade_fraction = 0.0;    // plateau everywhere: intensities bit-stable
    particles::ParticleSystem particles(pc, kDomain, util::Rng(2024));
    core::AnimatorConfig ac;
    ac.normalize = false;  // compare raw synthesis output
    ac.incremental = incremental;
    core::Animator animator(ac, engine, particles,
                            [&](std::int64_t) -> const field::VectorField& {
                              return *field;
                            });
    std::vector<std::uint64_t> hashes;
    std::int64_t reused = 0;
    for (int frame = 0; frame < 12; ++frame) {
      const core::AnimationFrame out = animator.step();
      hashes.push_back(out.texture->content_hash());
      reused += out.synthesis.tiles_reused;
    }
    return std::pair{hashes, reused};
  };

  const auto [full_hashes, full_reused] = run(false);
  const auto [incr_hashes, incr_reused] = run(true);
  EXPECT_EQ(full_hashes, incr_hashes);
  EXPECT_EQ(full_reused, 0);
  EXPECT_GT(incr_reused, 0) << "slow-flow animation never reused a tile";
}

TEST(IncrementalAnimator, RequiresTiledEngine) {
  const SynthesisConfig sc = small_synthesis();
  const auto field = make_field();
  DncConfig dnc = tiled_config(2);
  dnc.tiled = false;
  DncSynthesizer engine(sc, dnc);
  particles::ParticleSystemConfig pc;
  pc.count = 50;
  particles::ParticleSystem particles(pc, kDomain, util::Rng(1));
  core::AnimatorConfig ac;
  ac.incremental = true;
  EXPECT_THROW(core::Animator(ac, engine, particles,
                              [&](std::int64_t) -> const field::VectorField& {
                                return *field;
                              }),
               util::Error);
}

// ------------------------------------------------------- performance model ---

TEST(PerfModelIncremental, ReuseShrinksThePrediction) {
  core::PerfModelParams params;
  params.genP_per_spot = 4e-6;
  params.genT_per_spot = 1e-6;
  params.gather_per_pipe = 1e-4;
  params.fixed_overhead = 5e-5;
  const core::PerfModel model(params);
  const std::int64_t spots = 10000;
  const double full = model.predict(spots, 4, 4);
  // A quarter of the spots re-render, three of four tiles reused.
  const double incremental = model.predict_incremental(spots / 4, 4, 4, 3);
  EXPECT_LT(incremental, full);
  EXPECT_GT(full / incremental, 2.0);
  // No reuse degenerates to the full prediction.
  EXPECT_DOUBLE_EQ(model.predict_incremental(spots, 4, 4, 0),
                   model.predict(spots, 4, 4));
  // Everything reused: only fixed overhead remains.
  EXPECT_DOUBLE_EQ(model.predict_incremental(0, 4, 4, 4), params.fixed_overhead);
}

}  // namespace
