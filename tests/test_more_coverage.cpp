// Second-round coverage: cross-cutting behaviours not pinned elsewhere —
// zoom windows through the parallel engine, concurrent bus scheduling,
// model regimes, boundary conditions of the simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/dnc_synthesizer.hpp"
#include "core/perf_model.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "render/bus.hpp"
#include "render/overlay.hpp"
#include "sim/dns_solver.hpp"
#include "sim/smog_model.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Rect;
using field::Vec2;

TEST(DncWindow, ZoomMatchesSerialZoom) {
  // The window feature must behave identically through the parallel engine.
  core::SynthesisConfig config;
  config.texture_width = 96;
  config.texture_height = 96;
  config.spot_count = 300;
  config.kind = core::SpotKind::kEllipse;
  config.window = Rect{0.25, 0.25, 0.75, 0.75};
  const auto f = field::analytic::taylor_green(1.0, Rect{0, 0, 1, 1});
  util::Rng rng(1);
  const auto spots = core::make_random_spots(*config.window, 300, rng);

  core::SerialSynthesizer serial(config);
  serial.synthesize(*f, spots);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  core::DncSynthesizer engine(config, dnc);
  engine.synthesize(*f, spots);

  const double sigma = render::texture_stddev(serial.texture());
  double worst = 0.0;
  for (int y = 0; y < 96; ++y)
    for (int x = 0; x < 96; ++x)
      worst = std::max(worst, std::abs(double(serial.texture().at(x, y)) -
                                       engine.texture().at(x, y)));
  EXPECT_LT(worst, 1e-4 * sigma + 1e-6);
}

TEST(DncWindow, TiledZoomAssignsByWindowCoordinates) {
  // Tiling must partition by the *window* mapping, not the full domain.
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.spot_count = 200;
  config.kind = core::SpotKind::kPoint;
  config.window = Rect{0.5, 0.5, 1.0, 1.0};
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  util::Rng rng(2);
  const auto spots = core::make_random_spots(*config.window, 200, rng);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 4;
  dnc.tiled = true;
  core::DncSynthesizer engine(config, dnc);
  const auto stats = engine.synthesize(*f, spots);
  // Every spot lands somewhere in the window -> the texture is covered.
  EXPECT_GT(stats.raster.fragments, 0);
  EXPECT_GT(render::texture_stddev(engine.texture()), 0.0);
}

TEST(Bus, ConcurrentSchedulesNeverOverlap) {
  render::Bus bus(1e8);  // 100 MB/s
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  constexpr std::size_t kBytes = 10000;  // 100 us per transfer
  std::vector<std::pair<render::Bus::Clock::time_point,
                        render::Bus::Clock::time_point>>
      intervals(kThreads * kPerThread);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int k = 0; k < kPerThread; ++k) {
          const auto end = bus.schedule(kBytes);
          const auto start = end - std::chrono::microseconds(100);
          intervals[static_cast<std::size_t>(t * kPerThread + k)] = {start, end};
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  // All reserved slots must be pairwise disjoint (the bus serializes).
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t k = 1; k < intervals.size(); ++k) {
    EXPECT_GE(intervals[k].first + std::chrono::microseconds(1),
              intervals[k - 1].second)
        << "slot " << k << " overlaps its predecessor";
  }
  EXPECT_EQ(bus.bytes_moved(), kThreads * kPerThread * kBytes);
}

TEST(PerfModel, PipeBoundRegime) {
  // When genT > genP the serial time is pipe-bound and extra pipes help
  // immediately while extra processors do not.
  core::PerfModelParams p;
  p.genP_per_spot = 1e-4;
  p.genT_per_spot = 4e-4;  // inverted ratio
  const core::PerfModel model(p);
  EXPECT_NEAR(model.processors_per_pipe_balance(), 0.25, 1e-12);
  EXPECT_NEAR(model.predict(1000, 1, 1), model.predict(1000, 8, 1), 1e-12);
  EXPECT_LT(model.predict(1000, 2, 2), model.predict(1000, 2, 1));
}

TEST(Colormap, RainbowPassesThroughGreen) {
  const auto mid = render::colormap(render::ColormapKind::kRainbow, 0.5);
  EXPECT_GT(mid.g, 200);
  EXPECT_LT(mid.r, 80);
  EXPECT_LT(mid.b, 80);
}

TEST(WorldToImage, RoundTripProperty) {
  const render::WorldToImage mapping(Rect{-3, 2, 9, 10}, 640, 480);
  util::Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const Vec2 p{rng.uniform(-3, 9), rng.uniform(2, 10)};
    const auto [px, py] = mapping.map(p);
    const Vec2 back = mapping.unmap(px, py);
    EXPECT_NEAR(back.x, p.x, 1e-9);
    EXPECT_NEAR(back.y, p.y, 1e-9);
  }
}

TEST(SmogModel, PureDiffusionSpreadsSymmetrically) {
  sim::SmogParams params;
  params.nx = 31;
  params.ny = 31;
  params.domain = {0, 0, 310, 310};
  params.base_wind = {0, 0};
  params.pressure_systems = 0;  // no wind at all
  params.photo_rate = 0.0;
  params.precursor_decay = 0.0;
  sim::SmogModel model(params);
  // One central source only.
  while (model.sources().size() > 1) {
    // cannot remove sources; zero the extra ones instead
    model.set_source_rate(model.sources().size() - 1, 0.0);
    break;
  }
  for (std::size_t s = 0; s < model.sources().size(); ++s)
    model.set_source_rate(s, 0.0);
  model.add_source({{155.0, 155.0}, 10.0});
  for (int step = 0; step < 10; ++step) model.step(0.25);
  const auto& c = model.concentration(sim::Species::kPrecursor);
  // Symmetry: mirrored samples around the center agree.
  const double right = c.sample({185.0, 155.0});
  const double left = c.sample({125.0, 155.0});
  const double up = c.sample({155.0, 185.0});
  EXPECT_GT(right, 0.0);
  EXPECT_NEAR(right, left, 0.05 * right + 1e-12);
  EXPECT_NEAR(right, up, 0.05 * right + 1e-12);
}

TEST(DnsSolver, InflowBoundaryHeld) {
  sim::DnsParams params;
  params.nx = 64;
  params.ny = 48;
  params.domain = {0, 0, 8, 6};
  params.block = {2.0, 2.5, 3.0, 3.5};
  params.pressure_iterations = 30;
  sim::DnsSolver solver(params);
  for (int step = 0; step < 30; ++step) solver.step();
  for (int j = 0; j < 48; ++j) {
    EXPECT_NEAR(solver.velocity().at(0, j).x, params.inflow_speed, 1e-9);
  }
  EXPECT_GT(solver.dt(), 0.0);
}

TEST(DnsSolver, FreeSlipWallsHaveNoNormalFlow) {
  sim::DnsParams params;
  params.nx = 64;
  params.ny = 48;
  params.domain = {0, 0, 8, 6};
  params.block = {2.0, 2.5, 3.0, 3.5};
  params.pressure_iterations = 30;
  sim::DnsSolver solver(params);
  for (int step = 0; step < 20; ++step) solver.step();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(solver.velocity().at(i, 0).y, 0.0);
    EXPECT_EQ(solver.velocity().at(i, 47).y, 0.0);
  }
}

TEST(SerialSynthesizer, VarianceGrowsLinearlyWithSpotCount) {
  // f = sum a_i h: independent zero-mean spots add in variance, so texture
  // variance ~ N at fixed intensity scale (until overlap saturates).
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::uniform({0, 0}, domain);
  auto variance_for = [&](std::int64_t n) {
    core::SynthesisConfig config;
    config.texture_width = 128;
    config.texture_height = 128;
    config.spot_count = n;
    config.kind = core::SpotKind::kPoint;
    config.intensity_scale = 1.0;  // fixed, deliberately not normalized
    core::SerialSynthesizer synth(config);
    util::Rng rng(7);
    const auto spots = core::make_random_spots(domain, n, rng);
    synth.synthesize(*f, spots);
    const double sigma = render::texture_stddev(synth.texture());
    return sigma * sigma;
  };
  const double v1 = variance_for(2000);
  const double v4 = variance_for(8000);
  EXPECT_NEAR(v4 / v1, 4.0, 0.8);
}

}  // namespace
