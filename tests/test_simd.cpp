// Cross-tier byte-equality suite for the runtime-dispatched SIMD kernels.
//
// The contract (util/simd_dispatch.hpp): every tier — SSE2, AVX2, NEON —
// reproduces the scalar kernels BIT-FOR-BIT: signed zeros, infinities,
// denormals, and NaN *placement* included. The one sanctioned exception is
// the NaN *payload* when both operands of a float add are NaN: IEEE leaves
// the surviving payload to instruction operand order, and the compiler may
// legally commute an add on either side of the comparison, so a lane where
// both results are NaN compares equal regardless of payload bits. (Real
// profile data is NaN-free; the whole-engine hash test below is strict.)
// This suite enforces the contract three ways:
//
//  1. per-kernel fuzz: every kernel of every available tier against the
//     scalar table on adversarial float streams (random magnitudes, NaN,
//     -0.0, +/-inf, denormals), lane-compared over the whole destination
//     buffer so an out-of-bounds lane write cannot hide;
//  2. the fused span sampler on synthetic 32.32 fixed-point walks over
//     special-valued profile tables, including the slightly-negative
//     positions whose clamp is the subtlest part of the vector port, plus
//     the batched form (which may reorder and pack non-aliasing spans)
//     against span-by-span calls;
//  3. a whole-engine render per tier, hashes compared pairwise — the
//     end-to-end proof that tier choice cannot move one bit of a frame.
//
// ctest label: simd. DCSN_SIMD=<tier> runs the rest of the test suite under
// one tier; this binary instead iterates every tier the host can run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "field/analytic.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/simd_dispatch.hpp"

namespace {

using namespace dcsn;
namespace simd = util::simd;

// Restores the ambient dispatch tier, so a failing test cannot leak a
// non-default tier into later suites.
class TierGuard {
 public:
  TierGuard() : saved_(simd::active_tier()) {}
  ~TierGuard() { simd::set_active_tier(saved_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  simd::Tier saved_;
};

// Adversarial float stream: mostly finite values spanning many magnitudes,
// salted with the IEEE specials every blend kernel must forward untouched.
float fuzz_float(util::Rng& rng) {
  switch (rng() % 16) {
    case 0:
      return std::numeric_limits<float>::quiet_NaN();
    case 1:
      return -0.0f;
    case 2:
      return std::numeric_limits<float>::infinity();
    case 3:
      return -std::numeric_limits<float>::infinity();
    case 4:
      return std::numeric_limits<float>::denorm_min() *
             static_cast<float>(1 + rng() % 100);
    case 5:
      return 0.0f;
    default: {
      const float mag = static_cast<float>(
          std::pow(10.0, rng.uniform(-12.0, 8.0)));
      return rng() % 2 ? mag : -mag;
    }
  }
}

std::vector<float> fuzz_buffer(util::Rng& rng, std::size_t n) {
  std::vector<float> out(n);
  for (float& f : out) f = fuzz_float(rng);
  return out;
}

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

// Lane-by-lane bit comparison, with the sanctioned both-NaN payload
// exception described at the top of the file. NaN placement is still
// exact: a lane that is NaN on one side and not the other fails.
::testing::AssertionResult lanes_match(const std::vector<float>& want,
                                       const std::vector<float>& got) {
  if (want.size() != got.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    const std::uint32_t a = float_bits(want[i]);
    const std::uint32_t b = float_bits(got[i]);
    if (a == b) continue;
    if (std::isnan(want[i]) && std::isnan(got[i])) continue;
    return ::testing::AssertionFailure()
           << "lane " << i << ": want 0x" << std::hex << a << " got 0x" << b;
  }
  return ::testing::AssertionSuccess();
}

#define EXPECT_BYTES_EQ(a, b, tier)                                         \
  EXPECT_TRUE(lanes_match((a), (b)))                                        \
      << "tier " << simd::tier_name(tier) << " diverged from scalar"

TEST(SimdKernels, ElementwiseKernelsMatchScalarBitwise) {
  const auto& scalar = simd::kernels_for(simd::Tier::kScalar);
  util::Rng rng(0x51d0u);
  for (const simd::Tier tier : simd::available_tiers()) {
    const auto& k = simd::kernels_for(tier);
    for (int round = 0; round < 200; ++round) {
      const std::size_t n = rng() % 130;  // covers empty, tails, full blocks
      const auto src = fuzz_buffer(rng, n);
      const auto base = fuzz_buffer(rng, n + 8);  // +8: overrun canary zone
      const float w = fuzz_float(rng);
      const float v = fuzz_float(rng);

      auto want = base;
      auto got = base;
      scalar.add(want.data(), src.data(), n);
      k.add(got.data(), src.data(), n);
      EXPECT_BYTES_EQ(want, got, tier);

      want = base;
      got = base;
      scalar.add_scaled(want.data(), src.data(), w, n);
      k.add_scaled(got.data(), src.data(), w, n);
      EXPECT_BYTES_EQ(want, got, tier);

      want = base;
      got = base;
      scalar.max_scaled(want.data(), src.data(), w, n);
      k.max_scaled(got.data(), src.data(), w, n);
      EXPECT_BYTES_EQ(want, got, tier);

      want = base;
      got = base;
      scalar.max_with(want.data(), v, n);
      k.max_with(got.data(), v, n);
      EXPECT_BYTES_EQ(want, got, tier);

      want = base;
      got = base;
      scalar.quantize_span(want.data(), src.data(), n);
      k.quantize_span(got.data(), src.data(), n);
      EXPECT_BYTES_EQ(want, got, tier);
    }
  }
}

// A synthetic profile table + in-range 32.32 walk. The table carries fuzzed
// values (specials included) — the kernels only require positions to stay
// inside the table, not that the table holds a well-behaved profile.
struct FuzzSpan {
  simd::SampleSpan span;
  std::uint32_t len = 0;
};

constexpr std::size_t kTableStride = 80;  // padded_stride(64 + 1)
constexpr std::size_t kTableRows = 66;

// `like`, when set, copies the prototype's dfx/dfy/weight — the shape of a
// production batch, where one triangle's constant texture gradient makes
// every span share those (only start position and length vary). The batched
// kernels key a fast path off exactly that, so both shapes need coverage.
FuzzSpan make_span(util::Rng& rng, const std::vector<float>& table,
                   std::uint32_t max_len,
                   const simd::SampleSpan* like = nullptr) {
  FuzzSpan f;
  f.len = static_cast<std::uint32_t>(rng() % (max_len + 1));
  f.span.table = table.data();
  f.span.stride = kTableStride;
  if (like != nullptr) {
    f.span.dfx = like->dfx;
    f.span.dfy = like->dfy;
  } else {
    // Steps up to ~2 texels per fragment, either sign.
    f.span.dfx = static_cast<std::int64_t>(rng() % (1ull << 33)) - (1ll << 32);
    f.span.dfy = static_cast<std::int64_t>(rng() % (1ull << 33)) - (1ll << 32);
  }
  // Start so every step of the walk stays in [0, 63] x [0, 63] texels
  // (the +1 bilinear neighbour then stays inside the padded table)...
  const auto place = [&](std::int64_t df) {
    const std::int64_t walk = df * static_cast<std::int64_t>(
                                       f.len > 0 ? f.len - 1 : 0);
    const std::int64_t lo = walk < 0 ? -walk : 0;
    const std::int64_t hi = (63ll << 32) - (walk > 0 ? walk : 0);
    return lo + static_cast<std::int64_t>(
                    rng.uniform() * static_cast<double>(hi - lo));
  };
  f.span.fx0 = place(f.span.dfx);
  f.span.fy0 = place(f.span.dfy);
  // ...except an occasional epsilon-negative start: the scalar sampler
  // clamps fx < 0 to texel 0 / fraction 0, and every tier must too.
  if (f.len > 0 && rng() % 8 == 0 && f.span.dfx > 0) {
    f.span.fx0 = -static_cast<std::int64_t>(rng() % (1u << 20));
  }
  f.span.weight = like != nullptr ? like->weight : fuzz_float(rng);
  return f;
}

TEST(SimdKernels, FusedSpanSamplerMatchesScalarBitwise) {
  const auto& scalar = simd::kernels_for(simd::Tier::kScalar);
  util::Rng rng(0xfa57u);
  const auto table = fuzz_buffer(rng, kTableStride * kTableRows);
  for (const simd::Tier tier : simd::available_tiers()) {
    const auto& k = simd::kernels_for(tier);
    for (int round = 0; round < 400; ++round) {
      const FuzzSpan f = make_span(rng, table, 40);
      const auto base = fuzz_buffer(rng, f.len + 16);
      auto want = base;
      auto got = base;
      if (round % 2 == 0) {
        scalar.sample_row_add(want.data(), f.span, f.len);
        k.sample_row_add(got.data(), f.span, f.len);
      } else {
        scalar.sample_row_max(want.data(), f.span, f.len);
        k.sample_row_max(got.data(), f.span, f.len);
      }
      EXPECT_BYTES_EQ(want, got, tier);
    }
  }
}

// The batched kernels may reorder and pack spans (their documented license:
// batch spans never alias). Lay spans on disjoint rows of one destination
// and require the whole buffer to match span-by-span scalar calls — on
// every tier, with mixed short/single-block/multi-block lengths, zero
// lengths, a batch bigger than the internal chunking, and a batch whose
// spans come from two different tables (packing must fall back, not blend
// across tables).
TEST(SimdKernels, BatchedSpanKernelMatchesPerSpanCalls) {
  const auto& scalar = simd::kernels_for(simd::Tier::kScalar);
  util::Rng rng(0xba7c4u);
  const auto table_a = fuzz_buffer(rng, kTableStride * kTableRows);
  const auto table_b = fuzz_buffer(rng, kTableStride * kTableRows);
  constexpr std::size_t kWidth = 64;
  for (const simd::Tier tier : simd::available_tiers()) {
    const auto& k = simd::kernels_for(tier);
    for (int round = 0; round < 60; ++round) {
      const std::size_t count = 1 + rng() % 150;  // crosses the 64-chunk seam
      std::vector<FuzzSpan> spans;
      std::vector<simd::SampleSpan> raw;
      std::vector<std::uint32_t> lens;
      spans.reserve(count);
      // Alternate batch shapes: production-like (every span shares the
      // first span's dfx/dfy/weight — the batched fast path) and fully
      // heterogeneous (per-span parameters — the generic fallback).
      const bool production_shape = (round / 2) % 2 == 1;  // decoupled from
                                                           // the add/max pick
      for (std::size_t i = 0; i < count; ++i) {
        const auto& table = (round % 3 == 0 && i % 2 == 1) ? table_b : table_a;
        const simd::SampleSpan* like =
            production_shape && i > 0 ? &spans.front().span : nullptr;
        spans.push_back(make_span(rng, table, 30, like));
        raw.push_back(spans.back().span);
        lens.push_back(spans.back().len);
      }
      const auto base = fuzz_buffer(rng, count * kWidth);
      auto want = base;
      auto got = base;
      std::vector<float*> want_dst(count);
      std::vector<float*> got_dst(count);
      for (std::size_t i = 0; i < count; ++i) {
        want_dst[i] = want.data() + i * kWidth;
        got_dst[i] = got.data() + i * kWidth;
      }
      if (round % 2 == 0) {
        for (std::size_t i = 0; i < count; ++i) {
          scalar.sample_row_add(want_dst[i], raw[i], lens[i]);
        }
        k.sample_rows_add(got_dst.data(), raw.data(), lens.data(), count);
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          scalar.sample_row_max(want_dst[i], raw[i], lens[i]);
        }
        k.sample_rows_max(got_dst.data(), raw.data(), lens.data(), count);
      }
      EXPECT_BYTES_EQ(want, got, tier);
    }
  }
}

TEST(SimdKernels, WholeEngineHashIdenticalAcrossTiers) {
  TierGuard guard;
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const auto f = field::analytic::rankine_vortex({2.0, 2.0}, 1.5, 1.0, domain);
  core::SynthesisConfig sc;
  sc.texture_width = 96;
  sc.texture_height = 96;
  sc.spot_count = 200;
  sc.spot_radius_px = 6.0;
  sc.kind = core::SpotKind::kEllipse;
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  dnc.raster_algorithm = render::RasterAlgorithm::kSpan;

  util::Rng rng(20260808);
  auto spots = core::make_random_spots(f->domain(), sc.spot_count, rng);
  for (auto& s : spots) s.intensity *= 0.2;

  std::uint64_t scalar_hash = 0;
  for (const simd::Tier tier : simd::available_tiers()) {
    simd::set_active_tier(tier);
    core::DncSynthesizer engine(sc, dnc);
    engine.synthesize(*f, spots);
    const std::uint64_t h = engine.texture().content_hash();
    if (tier == simd::Tier::kScalar) {
      scalar_hash = h;
    } else {
      EXPECT_EQ(scalar_hash, h)
          << "tier " << simd::tier_name(tier)
          << " rendered a different frame than the scalar tier";
    }
  }
}

TEST(SimdDispatch, TierNamesRoundTripAndRejectUnknown) {
  for (const simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2,
        simd::Tier::kNeon}) {
    simd::Tier parsed{};
    ASSERT_TRUE(simd::tier_from_name(simd::tier_name(t), parsed));
    EXPECT_EQ(t, parsed);
  }
  simd::Tier parsed{};
  EXPECT_FALSE(simd::tier_from_name("avx512", parsed));
  EXPECT_FALSE(simd::tier_from_name("", parsed));
  EXPECT_FALSE(simd::tier_from_name("Scalar", parsed));
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndActiveTierListed) {
  EXPECT_TRUE(simd::tier_available(simd::Tier::kScalar));
  const auto tiers = simd::available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(simd::Tier::kScalar, tiers.front());
  bool listed = false;
  for (const simd::Tier t : tiers) listed |= (t == simd::active_tier());
  EXPECT_TRUE(listed);
  EXPECT_FALSE(simd::cpu_flags().empty());
}

TEST(SimdDispatch, SetActiveTierSwitchesKernelTable) {
  TierGuard guard;
  for (const simd::Tier t : simd::available_tiers()) {
    simd::set_active_tier(t);
    EXPECT_EQ(t, simd::active_tier());
    EXPECT_EQ(&simd::kernels_for(t), &simd::kernels());
  }
}

}  // namespace
