// Unit tests for the util layer: RNG statistics and determinism, timing,
// queues, spans, work distribution, CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/queue.hpp"
#include "util/rng.hpp"
#include "util/span2d.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"
#include "util/threading.hpp"

namespace {

using namespace dcsn;

// ------------------------------------------------------------------- Rng ---

TEST(Rng, DeterministicForFixedSeed) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1);
  util::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  util::Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, IntensityIsZeroMeanSymmetric) {
  util::Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double a = rng.intensity();
    ASSERT_GE(a, -1.0);
    ASSERT_LE(a, 1.0);
    sum += a;
  }
  EXPECT_NEAR(sum / kN, 0.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  util::Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(Rng, IndexStaysInRange) {
  util::Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.index(17);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 17);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  util::Rng parent(23);
  util::Rng child = parent.split();
  // Child and parent should produce (statistically) unrelated sequences.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (parent() == child()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, JumpChangesState) {
  util::Rng a(29);
  util::Rng b(29);
  b.jump();
  EXPECT_NE(a(), b());
}

// -------------------------------------------------------------- Stopwatch ---

TEST(Stopwatch, MeasuresElapsedTime) {
  util::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = watch.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 1.0);
}

TEST(Stopwatch, RestartResets) {
  util::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.restart();
  EXPECT_LT(watch.seconds(), 0.015);
}

TEST(TimeAccumulator, SumsScopedIntervals) {
  util::TimeAccumulator acc;
  for (int i = 0; i < 3; ++i) {
    util::ScopedTimer t(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(acc.seconds(), 0.012);
  EXPECT_EQ(acc.intervals(), 3);
  acc.reset();
  EXPECT_EQ(acc.seconds(), 0.0);
  EXPECT_EQ(acc.intervals(), 0);
}

// ----------------------------------------------------------------- Span2D ---

TEST(Span2D, IndexingAndRows) {
  std::vector<int> data(12);
  util::Span2D<int> span(data.data(), 4, 3);
  span(2, 1) = 42;
  EXPECT_EQ(data[6], 42);
  EXPECT_EQ(span.row(1)[2], 42);
  EXPECT_EQ(span.width(), 4);
  EXPECT_EQ(span.height(), 3);
}

TEST(Span2D, SubviewSharesStorage) {
  std::vector<int> data(16, 0);
  util::Span2D<int> span(data.data(), 4, 4);
  auto sub = span.subview(1, 1, 2, 2);
  sub(0, 0) = 9;
  EXPECT_EQ(span(1, 1), 9);
  EXPECT_EQ(sub.stride(), 4);
  EXPECT_EQ(sub.width(), 2);
}

TEST(Span2D, ConstConversion) {
  std::vector<double> data(4, 1.5);
  util::Span2D<double> span(data.data(), 2, 2);
  util::Span2D<const double> cspan = span;
  EXPECT_EQ(cspan(1, 1), 1.5);
}

// ------------------------------------------------------------ BoundedQueue ---

TEST(BoundedQueue, FifoOrder) {
  util::BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  util::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsAndEnds) {
  util::BoundedQueue<int> q(8);
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingHandoffAcrossThreads) {
  util::BoundedQueue<int> q(2);
  constexpr int kItems = 1000;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(BoundedQueue, ReopenAfterClose) {
  util::BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  q.reopen();
  EXPECT_TRUE(q.push(1));
  EXPECT_EQ(q.pop().value(), 1);
}

// pop_for pins. The engine's group masters wait out their in-flight
// accounting on pop_for (a producer that raced to an empty claim may never
// push, so an unbounded pop could wait forever). These tests pin the
// contract that audit relies on: the predicate re-check makes spurious
// condvar wakeups invisible, a timeout never consumes an item, close() cuts
// a long wait short, and no item is lost when timeouts race pushes.

TEST(BoundedQueue, PopForDeliversItemPushedMidWait) {
  util::BoundedQueue<int> q(4);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(7);
  });
  // Far longer than the push delay: a lost wakeup would eat the whole
  // timeout and return nullopt even though an item arrived.
  const auto v = q.pop_for(std::chrono::seconds(30));
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(BoundedQueue, PopForTimeoutLeavesLaterItemsIntact) {
  util::BoundedQueue<int> q(4);
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(1)).has_value());
  q.push(9);
  // The timed-out pop must not have consumed or corrupted anything.
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(1)).value(), 9);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, CloseCutsPopForWaitShort) {
  util::BoundedQueue<int> q(4);
  const util::Stopwatch elapsed;
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_FALSE(q.pop_for(std::chrono::seconds(30)).has_value());
  EXPECT_LT(elapsed.seconds(), 10.0) << "close() must wake a pop_for waiter";
  closer.join();
}

TEST(BoundedQueue, PopForConservesItemsUnderTimeoutChurn) {
  // Producers block on push (capacity 2 forces handoff), consumers spin on
  // short pop_for timeouts — the master-exit pattern. Every pushed item must
  // be popped exactly once: a pop_for that times out *while* a push commits
  // must leave the item for the next call.
  util::BoundedQueue<int> q(2);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kItemsEach = 400;
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kItemsEach; ++i) q.push(p * kItemsEach + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &sum, &popped] {
      for (;;) {
        if (auto v = q.pop_for(std::chrono::microseconds(200))) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else if (q.closed()) {
          // Drain whatever raced in between the last timeout and close.
          while (auto rest = q.try_pop()) {
            sum.fetch_add(*rest, std::memory_order_relaxed);
            popped.fetch_add(1, std::memory_order_relaxed);
          }
          return;
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  constexpr int kTotal = kProducers * kItemsEach;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
}

// ------------------------------------------------------------- WorkCounter ---

TEST(WorkCounter, CoversRangeExactlyOnce) {
  util::WorkCounter counter(100, 7);
  std::vector<bool> seen(100, false);
  while (true) {
    const auto range = counter.claim();
    if (range.empty()) break;
    for (std::int64_t k = range.begin; k < range.end; ++k) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(k)]);
      seen[static_cast<std::size_t>(k)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(WorkCounter, ParallelClaimsDoNotOverlap) {
  util::WorkCounter counter(10000, 13);
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::int64_t local = 0;
      while (true) {
        const auto range = counter.claim();
        if (range.empty()) break;
        local += range.size();
      }
      total += local;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 10000);
}

TEST(WorkCounter, ResetAllowsReuse) {
  util::WorkCounter counter(10, 10);
  EXPECT_EQ(counter.claim().size(), 10);
  EXPECT_TRUE(counter.claim().empty());
  counter.reset();
  EXPECT_EQ(counter.claim().size(), 10);
}

// ------------------------------------------------------------------- Args ---

TEST(Args, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--spots=500", "--full", "--scale=1.5",
                        "--name=test"};
  util::Args args(5, argv);
  EXPECT_EQ(args.get_int("spots", 0), 500);
  EXPECT_TRUE(args.has("full"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 1.5);
  EXPECT_EQ(args.get_string("name", ""), "test");
}

TEST(Args, FallbacksForMissingKeys) {
  const char* argv[] = {"prog"};
  util::Args args(1, argv);
  EXPECT_EQ(args.get_int("spots", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_string("s", "d"), "d");
}

// ------------------------------------------------------------------ Error ---

TEST(Check, ThrowsWithContext) {
  try {
    DCSN_CHECK(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(DCSN_CHECK(true, "never"));
}

// -------------------------------------------------------------------- Csv ---

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/dcsn_csv_test.csv";
  {
    util::CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({util::CsvWriter::num(3.5), "x"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,x");
}

TEST(Csv, RejectsWrongWidth) {
  const std::string path = testing::TempDir() + "/dcsn_csv_test2.csv";
  util::CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), util::Error);
}

// -------------------------------------------------------------- Threading ---

TEST(Threading, HardwareThreadsPositive) {
  EXPECT_GE(util::hardware_threads(), 1);
}

// ------------------------------------------------------- thread annotations ---
// Functional coverage for the annotated wrapper types. The *analysis* is
// compile-time (see tests/analyze_fail/ and the analyze preset); these tests
// pin the runtime semantics: mutual exclusion, scoped release, condition
// signalling, shared-vs-exclusive access.

TEST(ThreadAnnotations, MutexLockProvidesMutualExclusion) {
  util::Mutex mutex;
  int counter = 0;  // lock-lint: standalone
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        util::MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  util::MutexLock lock(mutex);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(ThreadAnnotations, MutexTryLockReflectsOwnership) {
  util::Mutex mutex;
  EXPECT_TRUE(mutex.try_lock());  // lock-lint: allow-direct-lock
  std::thread other([&] {
    EXPECT_FALSE(mutex.try_lock());  // lock-lint: allow-direct-lock
  });
  other.join();
  mutex.unlock();  // lock-lint: allow-direct-lock
}

TEST(ThreadAnnotations, MutexLockUnlockRelockRoundTrip) {
  util::Mutex mutex;
  util::MutexLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  {
    // Released for real: another scoped lock can take it.
    util::MutexLock inner(mutex);
    EXPECT_TRUE(inner.owns_lock());
  }
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(ThreadAnnotations, CondVarPredicateWaitSeesNotification) {
  util::Mutex mutex;
  util::CondVar cv;
  bool ready = false;  // lock-lint: standalone
  std::thread producer([&] {
    util::MutexLock lock(mutex);
    ready = true;
    cv.notify_one();
  });
  {
    util::MutexLock lock(mutex);
    cv.wait(lock, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(ThreadAnnotations, CondVarWaitForTimesOutWithoutSignal) {
  util::Mutex mutex;
  util::CondVar cv;
  util::MutexLock lock(mutex);
  const bool signalled =
      cv.wait_for(lock, std::chrono::milliseconds(10), [] { return false; });
  EXPECT_FALSE(signalled);
  EXPECT_TRUE(lock.owns_lock());  // wait_for must reacquire before returning
}

TEST(ThreadAnnotations, SharedMutexAllowsConcurrentReaders) {
  util::SharedMutex mutex;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      util::ReaderLock lock(mutex);
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
    });
  }
  for (auto& th : readers) th.join();
  // With 4 readers parked for 5ms each, at least two must have overlapped
  // unless the scheduler serialized everything (possible but vanishingly
  // rare even on one core, since all are asleep, not computing).
  EXPECT_GE(peak.load(), 1);
  util::WriterLock lock(mutex);  // writer acquires fine after all readers exit
  EXPECT_EQ(concurrent.load(), 0);
}

TEST(ThreadAnnotations, WriterLockExcludesReaders) {
  util::SharedMutex mutex;
  std::atomic<bool> writer_done{false};
  std::thread reader;
  {
    util::WriterLock writer(mutex);
    reader = std::thread([&] {
      util::ReaderLock lock(mutex);
      // Can only get here after the writer scope below releases.
      EXPECT_TRUE(writer_done.load());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    writer_done.store(true);
  }
  reader.join();
}

// ----------------------------------------------------------- statistics ---

TEST(Stats, PercentileNearestRank) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};  // unsorted
  EXPECT_EQ(util::percentile(values, 0.0), 1.0);
  EXPECT_EQ(util::percentile(values, 0.5), 3.0);
  EXPECT_EQ(util::percentile(values, 1.0), 5.0);
  // index round(0.95 * 4) = 4 — the nearest-rank rule every caller shares.
  EXPECT_EQ(util::percentile(values, 0.95), 5.0);
  EXPECT_EQ(util::percentile(values, 0.25), 2.0);
}

TEST(Stats, PercentileGuardsEmptyAndClampsP) {
  // The guard this helper was extracted for: an empty sample (a client
  // that completed zero frames) must yield 0.0, not index out of bounds.
  EXPECT_EQ(util::percentile({}, 0.95), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_EQ(util::percentile(one, 0.5), 7.0);
  EXPECT_EQ(util::percentile(one, -3.0), 7.0);  // p clamped to [0, 1]
  EXPECT_EQ(util::percentile(one, 42.0), 7.0);
}

TEST(Stats, PercentileDoesNotReorderCallerSample) {
  const std::vector<double> values = {9.0, 1.0, 5.0};
  const std::vector<double> copy = values;
  (void)util::percentile(values, 0.5);
  EXPECT_EQ(values, copy) << "percentile takes its sample by value";
}

}  // namespace
