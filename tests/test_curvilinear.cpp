// Tests for curvilinear (body-fitted) grids: point location via Newton
// inversion, interpolation accuracy, the annulus factory, and spot noise
// over a curvilinear field.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/serial_synthesizer.hpp"
#include "field/curvilinear.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Vec2;

// A curvilinear grid that happens to be regular: everything must reduce to
// the regular-grid answers.
field::CurvilinearGrid identity_grid(int nx, int ny) {
  return field::CurvilinearGrid::from_mapping(nx, ny, [](int i, int j) {
    return Vec2{static_cast<double>(i), static_cast<double>(j)};
  });
}

// A sheared grid: cells are parallelograms, still convex.
field::CurvilinearGrid sheared_grid(int nx, int ny) {
  return field::CurvilinearGrid::from_mapping(nx, ny, [](int i, int j) {
    return Vec2{i + 0.4 * j, static_cast<double>(j)};
  });
}

TEST(CurvilinearGrid, IdentityGridLocates) {
  const auto grid = identity_grid(8, 6);
  const auto coord = grid.locate({3.25, 2.75});
  ASSERT_TRUE(coord.has_value());
  EXPECT_EQ(coord->i, 3);
  EXPECT_EQ(coord->j, 2);
  EXPECT_NEAR(coord->fx, 0.25, 1e-9);
  EXPECT_NEAR(coord->fy, 0.75, 1e-9);
}

TEST(CurvilinearGrid, OutsideReturnsNullopt) {
  const auto grid = identity_grid(4, 4);
  EXPECT_FALSE(grid.locate({-1.0, 1.0}).has_value());
  EXPECT_FALSE(grid.locate({1.0, 77.0}).has_value());
}

TEST(CurvilinearGrid, ShearedGridRoundTrips) {
  // locate() then re-evaluate the bilinear map: must reproduce the query.
  const auto grid = sheared_grid(9, 7);
  util::Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const double u = rng.uniform(0.0, 7.9);
    const double v = rng.uniform(0.0, 5.9);
    const Vec2 p{u + 0.4 * v, v};  // inside by construction
    const auto coord = grid.locate(p);
    ASSERT_TRUE(coord.has_value()) << "p = (" << p.x << "," << p.y << ")";
    const Vec2 a = grid.position(coord->i, coord->j);
    const Vec2 b = grid.position(coord->i + 1, coord->j);
    const Vec2 c = grid.position(coord->i + 1, coord->j + 1);
    const Vec2 d = grid.position(coord->i, coord->j + 1);
    const double fu = coord->fx, fv = coord->fy;
    const Vec2 back = a * ((1 - fu) * (1 - fv)) + b * (fu * (1 - fv)) +
                      c * (fu * fv) + d * ((1 - fu) * fv);
    EXPECT_NEAR(back.x, p.x, 1e-9);
    EXPECT_NEAR(back.y, p.y, 1e-9);
  }
}

TEST(CurvilinearGrid, AnnulusGeometry) {
  const auto grid = field::make_annulus_grid({0, 0}, 1.0, 2.0, 5, 32);
  EXPECT_EQ(grid.nx(), 32);
  EXPECT_EQ(grid.ny(), 5);
  // All nodes sit between the radii.
  for (int j = 0; j < grid.ny(); ++j)
    for (int i = 0; i < grid.nx(); ++i) {
      const double r = grid.position(i, j).length();
      EXPECT_GE(r, 1.0 - 1e-12);
      EXPECT_LE(r, 2.0 + 1e-12);
    }
}

TEST(CurvilinearGrid, AnnulusLocateInsideRing) {
  const auto grid = field::make_annulus_grid({0, 0}, 1.0, 2.0, 9, 64);
  // A point inside the ring (and not in the seam gap) is found...
  EXPECT_TRUE(grid.locate({1.5, 0.3}).has_value());
  EXPECT_TRUE(grid.locate({-1.2, 0.8}).has_value());
  // ...the hole in the middle is not part of the grid.
  EXPECT_FALSE(grid.locate({0.1, 0.1}).has_value());
}

TEST(CurvilinearGrid, RejectsBadInput) {
  EXPECT_THROW(field::CurvilinearGrid(1, 4, std::vector<Vec2>(4)), util::Error);
  EXPECT_THROW(field::CurvilinearGrid(2, 2, std::vector<Vec2>(3)), util::Error);
  EXPECT_THROW(field::make_annulus_grid({0, 0}, 2.0, 1.0, 4, 16), util::Error);
}

TEST(CurvilinearField, LinearFieldReproducedOnShearedGrid) {
  // Bilinear interpolation in local coordinates reproduces fields linear in
  // world space on parallelogram cells.
  field::CurvilinearVectorField f(sheared_grid(9, 7));
  f.fill([](Vec2 p) { return Vec2{2.0 * p.x - p.y, p.y + 1.0}; });
  util::Rng rng(5);
  for (int k = 0; k < 100; ++k) {
    const double v = rng.uniform(0.5, 5.5);
    const Vec2 p{rng.uniform(0.5, 7.5) + 0.4 * v, v};
    const Vec2 got = f.sample(p);
    EXPECT_NEAR(got.x, 2.0 * p.x - p.y, 1e-9);
    EXPECT_NEAR(got.y, p.y + 1.0, 1e-9);
  }
}

TEST(CurvilinearField, TangentialFlowOnAnnulus) {
  // Store a rigid-rotation field on the annulus; sampled values must stay
  // tangential (perpendicular to the radius) everywhere in the ring.
  field::CurvilinearVectorField f(field::make_annulus_grid({0, 0}, 1.0, 3.0, 17, 96));
  f.fill([](Vec2 p) { return Vec2{-p.y, p.x}; });
  util::Rng rng(7);
  for (int k = 0; k < 200; ++k) {
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double r = rng.uniform(1.05, 2.95);
    const Vec2 p{r * std::cos(theta), r * std::sin(theta)};
    const Vec2 v = f.sample(p);
    if (v.length_sq() == 0.0) continue;  // seam gap
    EXPECT_LT(std::abs(v.dot(p)) / (v.length() * p.length()), 0.02);
  }
}

TEST(CurvilinearField, OutsideSamplesAreZero) {
  field::CurvilinearVectorField f(field::make_annulus_grid({0, 0}, 1.0, 2.0, 5, 32));
  f.fill([](Vec2) { return Vec2{1.0, 1.0}; });
  EXPECT_EQ(f.sample({0.0, 0.0}), Vec2{});  // the hole
}

TEST(CurvilinearField, SpotNoiseSynthesisWorks) {
  // End to end: spot noise over a body-fitted vortex field. Exercises the
  // full generator path (including streamline-based bent spots) on the
  // curvilinear sampler.
  field::CurvilinearVectorField f(field::make_annulus_grid({0, 0}, 0.5, 2.0, 17, 96));
  f.fill([](Vec2 p) {
    const double r2 = p.length_sq();
    return Vec2{-p.y, p.x} / r2;  // ~1/r swirl
  });

  core::SynthesisConfig config;
  config.texture_width = 128;
  config.texture_height = 128;
  config.spot_count = 800;
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 8;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 20.0;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  core::SerialSynthesizer synth(config);
  util::Rng rng(9);
  const auto spots = core::make_random_spots(f.domain(), config.spot_count, rng);
  const auto stats = synth.synthesize(f, spots);
  EXPECT_EQ(stats.spots, 800);
  EXPECT_GT(render::texture_stddev(synth.texture()), 0.0);
}

}  // namespace
