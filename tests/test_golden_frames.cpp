// Golden-frame regression: canonical scenes rendered through the full
// engine, fingerprinted with FNV-1a over the raw float framebuffer, and
// compared against hashes checked in under tests/golden/.
//
// This only works because the engine is bit-deterministic for a fixed
// configuration (see test_determinism.cpp): reruns, thread interleavings
// and steal schedules cannot move a single bit. The hashes ARE
// toolchain-sensitive — a different libm or vectorization strategy may
// round differently — so goldens are regenerated, not hand-edited, when
// the build environment changes:
//
//   ./build/tests/test_golden_frames --update-goldens
//
// (documented in docs/TESTING.md). A missing golden file FAILS the test —
// never silently skips — so a fresh checkout cannot pass vacuously;
// scripts/verify.sh --golden additionally checks the files exist before
// running.
//
// The scene matrix deliberately crosses both raster algorithms and both
// tile strategies with the three field families (analytic, curvilinear,
// volume slice) and all three spot kinds.
//
// ctest label: golden.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "field/analytic.hpp"
#include "field/curvilinear.hpp"
#include "field/volume.hpp"
#include "util/rng.hpp"

#ifndef DCSN_GOLDEN_DIR
#error "build must define DCSN_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace dcsn;
using core::DncConfig;
using core::DncSynthesizer;
using core::SynthesisConfig;
using core::TileStrategy;
using render::RasterAlgorithm;

bool g_update_goldens = false;

std::string golden_path(const std::string& scene) {
  return std::string(DCSN_GOLDEN_DIR) + "/" + scene + ".golden";
}

std::string hex64(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

// Renders a scene and checks (or rewrites) its golden hash.
void check_scene(const std::string& scene, const field::VectorField& f,
                 const SynthesisConfig& sc, const DncConfig& dnc) {
  util::Rng rng(20260730);
  auto spots = core::make_random_spots(f.domain(), sc.spot_count, rng);
  for (auto& s : spots) s.intensity *= 0.2;

  DncSynthesizer engine(sc, dnc);
  // Two frames: the second exercises warm pipe state and (for
  // kCostBalanced) the settled tile layout, which is what animation runs
  // actually hash like.
  engine.synthesize(f, spots);
  engine.synthesize(f, spots);
  const std::string actual = hex64(engine.texture().content_hash());

  const std::string path = golden_path(scene);
  if (g_update_goldens) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    std::printf("updated %s = %s\n", scene.c_str(), actual.c_str());
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run ./build/tests/test_golden_frames --update-goldens";
  std::string expected;
  in >> expected;
  EXPECT_EQ(expected, actual)
      << "frame hash changed for scene '" << scene
      << "'. If the rendering change is intentional (or the toolchain "
         "changed), regenerate with --update-goldens and review the diff.";
}

SynthesisConfig base_synthesis(core::SpotKind kind) {
  SynthesisConfig sc;
  sc.texture_width = 96;
  sc.texture_height = 96;
  sc.spot_count = 250;
  sc.spot_radius_px = 6.0;
  sc.kind = kind;
  sc.bent.mesh_cols = 8;
  sc.bent.mesh_rows = 3;
  sc.bent.length_px = 20.0;
  return sc;
}

DncConfig config(int pipes, bool tiled, TileStrategy strategy,
                 RasterAlgorithm algo) {
  DncConfig dnc;
  dnc.processors = 2 * pipes;
  dnc.pipes = pipes;
  dnc.chunk_spots = 16;
  dnc.tiled = tiled;
  dnc.tile_strategy = strategy;
  dnc.raster_algorithm = algo;
  return dnc;
}

// ----------------------------------------------------------- the scenes ---

TEST(GoldenFrames, VortexEllipseContiguousSpan) {
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const auto f = field::analytic::rankine_vortex({2.0, 2.0}, 1.5, 1.0, domain);
  check_scene("vortex_ellipse_contiguous_span", *f,
              base_synthesis(core::SpotKind::kEllipse),
              config(2, false, TileStrategy::kGrid, RasterAlgorithm::kSpan));
}

TEST(GoldenFrames, ShearPointTiledGridSpan) {
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const auto f = field::analytic::shear(0.8, domain);
  check_scene("shear_point_tiled_grid_span", *f,
              base_synthesis(core::SpotKind::kPoint),
              config(4, true, TileStrategy::kGrid, RasterAlgorithm::kSpan));
}

TEST(GoldenFrames, BentGridBentCostBalancedSpan) {
  // Curvilinear bent grid: a sheared mesh carrying diagonal flow, sampled
  // through the Newton cell inversion.
  auto grid = field::CurvilinearGrid::from_mapping(13, 11, [](int i, int j) {
    return field::Vec2{i + 0.4 * j, static_cast<double>(j)};
  });
  field::CurvilinearVectorField f(std::move(grid));
  f.fill([](field::Vec2 p) { return field::Vec2{0.5 + 0.1 * p.y, 0.3}; });
  check_scene("bentgrid_bent_costbalanced_span", f,
              base_synthesis(core::SpotKind::kBent),
              config(2, true, TileStrategy::kCostBalanced, RasterAlgorithm::kSpan));
}

TEST(GoldenFrames, VolumeSliceEllipseContiguousReference) {
  const auto volume = field::analytic3d::abc_flow(1.0, 0.7, 0.43, 12);
  const auto slice =
      field::extract_slice(volume, field::SliceAxis::kZ, 3.14159, 24, 24);
  check_scene("volume_slice_ellipse_contiguous_reference", slice,
              base_synthesis(core::SpotKind::kEllipse),
              config(2, false, TileStrategy::kGrid, RasterAlgorithm::kReference));
}

TEST(GoldenFrames, VortexBentContiguousSpan) {
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const auto f = field::analytic::rankine_vortex({2.0, 2.0}, 1.5, 1.0, domain);
  check_scene("vortex_bent_contiguous_span", *f,
              base_synthesis(core::SpotKind::kBent),
              config(2, false, TileStrategy::kGrid, RasterAlgorithm::kSpan));
}

TEST(GoldenFrames, ShearEllipseCostBalancedReference) {
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const auto f = field::analytic::shear(0.8, domain);
  check_scene("shear_ellipse_costbalanced_reference", *f,
              base_synthesis(core::SpotKind::kEllipse),
              config(4, true, TileStrategy::kCostBalanced,
                     RasterAlgorithm::kReference));
}

}  // namespace

// Custom main: strips --update-goldens before gtest parses the rest.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      g_update_goldens = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
