// Edge cases and failure injection: extreme sizes, corrupt inputs, unusual
// configurations — everything a downstream user will eventually feed the
// library by accident.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "io/ppm.hpp"
#include "render/rasterizer.hpp"
#include "render/scene.hpp"
#include "sim/dataset.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Rect;
using field::Vec2;

// ------------------------------------------------------------ tiny sizes ---

TEST(EdgeCases, OnePixelFramebuffer) {
  render::Framebuffer fb(1, 1);
  fb.at(0, 0) = 2.0f;
  EXPECT_EQ(fb.min_max(), std::make_pair(2.0f, 2.0f));
  EXPECT_NO_THROW(core::normalize_contrast(fb));
  EXPECT_NO_THROW((void)core::box_blur(fb, 3));
  const auto img = render::texture_to_image(fb);
  EXPECT_EQ(img.width(), 1);
}

TEST(EdgeCases, TinyTextureSynthesis) {
  core::SynthesisConfig config;
  config.texture_width = 4;
  config.texture_height = 4;
  config.spot_count = 10;
  config.spot_radius_px = 2.0;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::SerialSynthesizer synth(config);
  util::Rng rng(1);
  const auto spots = core::make_random_spots(f->domain(), 10, rng);
  EXPECT_NO_THROW(synth.synthesize(*f, spots));
}

TEST(EdgeCases, MinimalDncConfiguration) {
  core::SynthesisConfig config;
  config.texture_width = 8;
  config.texture_height = 8;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::DncConfig dnc;
  dnc.processors = 1;
  dnc.pipes = 1;
  dnc.chunk_spots = 1;
  core::DncSynthesizer engine(config, dnc);
  util::Rng rng(2);
  const auto spots = core::make_random_spots(f->domain(), 3, rng);
  const auto stats = engine.synthesize(*f, spots);
  EXPECT_EQ(stats.spots, 3);
}

TEST(EdgeCases, MorePipesThanSpots) {
  core::SynthesisConfig config;
  config.texture_width = 32;
  config.texture_height = 32;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 4;
  core::DncSynthesizer engine(config, dnc);
  util::Rng rng(3);
  const auto spots = core::make_random_spots(f->domain(), 2, rng);  // < pipes
  const auto stats = engine.synthesize(*f, spots);
  EXPECT_EQ(stats.spots, 2);
  EXPECT_GT(render::texture_stddev(engine.texture()), 0.0);
}

TEST(EdgeCases, HugeChunkSize) {
  core::SynthesisConfig config;
  config.texture_width = 32;
  config.texture_height = 32;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  dnc.chunk_spots = 1 << 20;  // one chunk swallows everything
  core::DncSynthesizer engine(config, dnc);
  util::Rng rng(4);
  const auto spots = core::make_random_spots(f->domain(), 100, rng);
  EXPECT_EQ(engine.synthesize(*f, spots).spots, 100);
}

// ------------------------------------------------------ config validation ---

TEST(ConfigValidation, ZeroSpotsSynthesizeCleanly) {
  // An empty spot set is a valid frame (e.g. all particles advected out of
  // the domain): both engines must return a black texture, not crash.
  core::SynthesisConfig config;
  config.texture_width = 16;
  config.texture_height = 16;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  const std::vector<core::SpotInstance> none;

  core::SerialSynthesizer serial(config);
  const auto serial_stats = serial.synthesize(*f, none);
  EXPECT_EQ(serial_stats.spots, 0);
  EXPECT_EQ(serial.texture().min_max(), std::make_pair(0.0f, 0.0f));

  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 2;
  core::DncSynthesizer engine(config, dnc);
  const auto dnc_stats = engine.synthesize(*f, none);
  EXPECT_EQ(dnc_stats.spots, 0);
  EXPECT_EQ(engine.texture().min_max(), std::make_pair(0.0f, 0.0f));
}

TEST(ConfigValidation, ZeroSizeTextureRejected) {
  for (const auto& [w, h] : {std::pair{0, 16}, {16, 0}, {0, 0}, {-4, 16}}) {
    core::SynthesisConfig config;
    config.texture_width = w;
    config.texture_height = h;
    EXPECT_THROW(core::SerialSynthesizer{config}, util::Error) << w << "x" << h;
    EXPECT_THROW((core::DncSynthesizer{config, core::DncConfig{}}), util::Error)
        << w << "x" << h;
  }
}

TEST(ConfigValidation, DegenerateSpotRadiusRejected) {
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  util::Rng rng(5);
  const auto spots = core::make_random_spots(f->domain(), 4, rng);
  for (const double radius : {0.0, -1.0}) {
    core::SynthesisConfig config;
    config.texture_width = 16;
    config.texture_height = 16;
    config.spot_radius_px = radius;
    // The radius feeds spot-shape generation, so construction succeeds and
    // the first synthesize() throws — from the calling thread, both engines.
    core::SerialSynthesizer serial(config);
    EXPECT_THROW(serial.synthesize(*f, spots), util::Error) << radius;
    core::DncSynthesizer engine(config, core::DncConfig{});
    EXPECT_THROW(engine.synthesize(*f, spots), util::Error) << radius;
  }
}

TEST(ConfigValidation, DegenerateBentMeshRejected) {
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  util::Rng rng(6);
  const auto spots = core::make_random_spots(f->domain(), 4, rng);
  core::SynthesisConfig config;
  config.texture_width = 16;
  config.texture_height = 16;
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 1;  // a mesh needs >= 2x2 vertices
  core::SerialSynthesizer serial(config);
  EXPECT_THROW(serial.synthesize(*f, spots), util::Error);
}

// -------------------------------------------------------- hostile geometry ---

TEST(EdgeCases, SpotsFarOutsideTexture) {
  // Spots positioned outside the field domain map outside the texture and
  // must clip away cleanly.
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::SerialSynthesizer synth(config);
  const std::vector<core::SpotInstance> spots = {
      {{-50.0, -50.0}, 1.0}, {{50.0, 50.0}, 1.0}, {{0.5, 0.5}, 1.0}};
  const auto stats = synth.synthesize(*f, spots);
  EXPECT_EQ(stats.spots, 3);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) ASSERT_TRUE(std::isfinite(synth.texture().at(x, y)));
}

TEST(EdgeCases, RasterizerSurvivesInfiniteCoordinates) {
  render::Framebuffer fb(16, 16);
  const render::SpotProfile profile(render::SpotShape::kDisc, 8);
  render::RasterStats stats;
  const float inf = std::numeric_limits<float>::infinity();
  const render::MeshVertex a{inf, 1, 0.5f, 0.5f}, b{5, 1, 0.5f, 0.5f},
      c{3, 6, 0.5f, 0.5f};
  EXPECT_NO_THROW(render::rasterize_triangle({fb.pixels(), 0, 0}, a, b, c, 1.0f,
                                             profile, render::BlendMode::kAdditive,
                                             stats));
  EXPECT_EQ(stats.fragments, 0);
}

TEST(EdgeCases, RasterizerHugeOffscreenTriangle) {
  // A triangle whose bbox is enormous but which misses the target entirely.
  render::Framebuffer fb(16, 16);
  const render::SpotProfile profile(render::SpotShape::kDisc, 8);
  render::RasterStats stats;
  const render::MeshVertex a{1e7f, 1e7f, 0, 0}, b{2e7f, 1e7f, 1, 0},
      c{1e7f, 2e7f, 0, 1};
  render::rasterize_triangle({fb.pixels(), 0, 0}, a, b, c, 1.0f, profile,
                             render::BlendMode::kAdditive, stats);
  EXPECT_EQ(stats.fragments, 0);
}

TEST(EdgeCases, ZeroIntensitySpotLeavesNoTrace) {
  core::SynthesisConfig config;
  config.texture_width = 32;
  config.texture_height = 32;
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::SerialSynthesizer synth(config);
  const std::vector<core::SpotInstance> spots = {{{0.5, 0.5}, 0.0}};
  synth.synthesize(*f, spots);
  const auto [lo, hi] = synth.texture().min_max();
  EXPECT_EQ(lo, 0.0f);
  EXPECT_EQ(hi, 0.0f);
}

// --------------------------------------------------------- corrupt inputs ---

class CorruptFileTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/dcsn_corrupt_test.bin";
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CorruptFileTest, TruncatedDatasetFailsCleanly) {
  // Write a valid dataset, then truncate mid-frame.
  field::RectilinearGrid grid({0.0, 1.0, 2.0}, {0.0, 1.0});
  {
    sim::DatasetWriter writer(path_, grid);
    field::RectilinearVectorField f(grid);
    writer.append(f, 0.0);
    writer.append(f, 1.0);
  }
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 8);
  sim::DatasetReader reader(path_);
  EXPECT_EQ(reader.frame_count(), 2);
  EXPECT_NO_THROW((void)reader.load(0));
  EXPECT_THROW((void)reader.load(1), util::Error);
}

TEST_F(CorruptFileTest, GarbageDatasetRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a dataset at all, not even close";
  }
  EXPECT_THROW(sim::DatasetReader reader(path_), util::Error);
}

TEST_F(CorruptFileTest, TruncatedPpmRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "P6\n100 100\n255\n";  // header promises 30000 bytes, delivers 0
  }
  EXPECT_THROW((void)io::read_ppm(path_), util::Error);
}

TEST_F(CorruptFileTest, WrongPpmMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "P5\n2 2\n255\n....";
  }
  EXPECT_THROW((void)io::read_ppm(path_), util::Error);
}

// ------------------------------------------------------------ weird fields ---

TEST(EdgeCases, ZeroFieldEverywhere) {
  // A zero field: ellipse spots degrade to points, bent spots to points,
  // nothing crashes, texture still forms.
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.spot_count = 100;
  config.kind = core::SpotKind::kBent;
  const auto f = field::analytic::uniform({0, 0}, Rect{0, 0, 1, 1});
  core::SerialSynthesizer synth(config);
  util::Rng rng(5);
  const auto spots = core::make_random_spots(f->domain(), 100, rng);
  const auto stats = synth.synthesize(*f, spots);
  EXPECT_EQ(stats.spots, 100);
  EXPECT_GT(render::texture_stddev(synth.texture()), 0.0);
}

TEST(EdgeCases, ExtremeVelocityMagnitudes) {
  // 1e12-magnitude field: geometry stays finite because the tracer is
  // arc-length based and the ellipse normalizes by max magnitude.
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.kind = core::SpotKind::kEllipse;
  const auto f = field::analytic::uniform({1e12, 3e11}, Rect{0, 0, 1, 1});
  core::SerialSynthesizer synth(config);
  const std::vector<core::SpotInstance> spots = {{{0.5, 0.5}, 1.0}};
  synth.synthesize(*f, spots);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) ASSERT_TRUE(std::isfinite(synth.texture().at(x, y)));
}

TEST(EdgeCases, NonSquareDomainAndTexture) {
  // Anisotropic world-to-pixel scales: a 4:1 domain on a 1:2 texture.
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 128;
  config.spot_count = 200;
  const auto f = field::analytic::rigid_vortex({2.0, 0.5}, 1.0, Rect{0, 0, 4, 1});
  core::SerialSynthesizer synth(config);
  util::Rng rng(6);
  const auto spots = core::make_random_spots(f->domain(), 200, rng);
  EXPECT_NO_THROW(synth.synthesize(*f, spots));
  EXPECT_GT(render::texture_stddev(synth.texture()), 0.0);
}

// ---------------------------------------------------------- scene extremes ---

TEST(EdgeCases, SceneWindowOutsideTexture) {
  render::Framebuffer tex(16, 16);
  tex.clear(1.0f);
  render::SceneView view;
  view.texture_world = {0, 0, 1, 1};
  view.window = {5, 5, 6, 6};  // entirely outside: clamps to border texels
  view.out_width = 8;
  view.out_height = 8;
  view.tone.auto_gain = false;
  const auto img = render::render_scene(tex, view);
  EXPECT_EQ(img.width(), 8);  // defined output, no crash
}

TEST(EdgeCases, ExtremeZoomIn) {
  render::Framebuffer tex(64, 64);
  tex.at(32, 32) = 1.0f;
  render::SceneView view;
  view.texture_world = {0, 0, 1, 1};
  const double eps = 1e-6;
  view.window = {0.5 - eps, 0.5 - eps, 0.5 + eps, 0.5 + eps};
  view.out_width = 16;
  view.out_height = 16;
  EXPECT_NO_THROW((void)render::render_scene(tex, view));
}

// ------------------------------------------------------------ filter edges ---

TEST(EdgeCases, BlurRadiusLargerThanTexture) {
  render::Framebuffer fb(8, 8);
  fb.at(4, 4) = 1.0f;
  const auto blurred = core::box_blur(fb, 20);  // window wider than the image
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) ASSERT_TRUE(std::isfinite(blurred.at(x, y)));
  // Energy is spread but conserved approximately (border clamp re-weights).
  EXPECT_GT(blurred.mean(), 0.0);
}

TEST(EdgeCases, HighPassOfFlatIsZero) {
  render::Framebuffer fb(16, 16);
  fb.clear(5.0f);
  const auto hp = core::high_pass(fb, 3);
  const auto [lo, hi] = hp.min_max();
  EXPECT_NEAR(lo, 0.0f, 1e-5f);
  EXPECT_NEAR(hi, 0.0f, 1e-5f);
}

}  // namespace
