// Tests for the shared engine runtime and the asynchronous multi-session
// synthesis service: concurrent-session determinism (content hashes match
// serial one-at-a-time runs bitwise), scheduling order (priority + FIFO
// fairness), queue-wait accounting, cancellation before and mid-frame,
// shutdown with pending jobs, session-local failure isolation, and the
// device pools (pipe reuse via resize_target, framebuffer checkout
// hygiene).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/runtime.hpp"
#include "core/serial_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "core/synthesis_service.hpp"
#include "field/analytic.hpp"
#include "render/compose.hpp"
#include "render/framebuffer_pool.hpp"
#include "render/image.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;
using core::SynthesisService;
using field::Rect;

core::SynthesisConfig small_config(std::uint64_t seed = 42) {
  core::SynthesisConfig config;
  config.texture_width = 96;
  config.texture_height = 96;
  config.spot_count = 300;
  config.spot_radius_px = 6.0;
  config.kind = core::SpotKind::kEllipse;
  config.seed = seed;
  return config;
}

core::DncConfig small_dnc() {
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  dnc.chunk_spots = 16;
  return dnc;
}

std::vector<core::SpotInstance> test_spots(const core::SynthesisConfig& config,
                                           Rect domain) {
  util::Rng rng(config.seed);
  auto spots = core::make_random_spots(domain, config.spot_count, rng);
  for (auto& spot : spots) spot.intensity *= 0.2;
  return spots;
}

/// A field whose sampling spins for `delay_per_sample` — the knob that makes
/// a frame long enough to cancel mid-flight on any host.
std::unique_ptr<field::VectorField> slow_field(Rect domain, double delay_per_sample) {
  return std::make_unique<field::CallableField>(
      [delay_per_sample](field::Vec2 p) -> field::Vec2 {
        const util::Stopwatch w;
        while (w.seconds() < delay_per_sample) {
        }
        return {0.2 * p.y + 0.1, -0.2 * p.x + 0.1};
      },
      domain, 1.0);
}

std::unique_ptr<field::VectorField> faulty_field(Rect domain) {
  return std::make_unique<field::CallableField>(
      [](field::Vec2 p) -> field::Vec2 {
        if (p.x > 1.0) throw util::Error("injected session failure");
        return {0.1, 0.2};
      },
      domain, 1.0);
}

// -------------------------------------------- concurrent determinism ------

TEST(SynthesisService, ConcurrentSessionsMatchSerialHashesBitwise) {
  // K sessions with distinct scenes, three frames each, all in flight at
  // once over one runtime — the content hash of every frame must equal the
  // hash a fresh engine produces for that scene alone. Work stealing
  // between the sessions' frames cannot show in the pixels (the lattice
  // guarantee), and per-session FIFO keeps each session's frames ordered.
  constexpr int kSessions = 3;
  constexpr int kFrames = 3;
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);

  std::vector<core::SynthesisConfig> configs;
  std::vector<std::vector<core::SpotInstance>> spots;
  std::vector<std::uint64_t> solo_hash;
  for (int s = 0; s < kSessions; ++s) {
    auto config = small_config(100 + static_cast<std::uint64_t>(s));
    config.kind = s == 1 ? core::SpotKind::kBent : core::SpotKind::kEllipse;
    config.bent.mesh_cols = 8;
    config.bent.mesh_rows = 3;
    config.bent.length_px = 18.0;
    configs.push_back(config);
    spots.push_back(test_spots(config, domain));
    core::DncConfig dnc = small_dnc();
    dnc.tiled = s == 2;
    dnc.pipes = s == 2 ? 2 : 1;
    dnc.processors = 2;
    core::DncSynthesizer solo(config, dnc);
    solo.synthesize(*f, spots.back());
    solo_hash.push_back(solo.texture().content_hash());
  }

  SynthesisService service({.drivers = kSessions});
  std::vector<SynthesisService::SessionId> ids;
  for (int s = 0; s < kSessions; ++s) {
    core::DncConfig dnc = small_dnc();
    dnc.tiled = s == 2;
    dnc.pipes = s == 2 ? 2 : 1;
    ids.push_back(service.open_session(configs[static_cast<std::size_t>(s)], dnc));
  }
  std::vector<SynthesisService::JobTicket> tickets;
  for (int frame = 0; frame < kFrames; ++frame) {
    for (int s = 0; s < kSessions; ++s) {
      core::SynthesisRequest req;
      req.field = f.get();
      req.spots = spots[static_cast<std::size_t>(s)];
      tickets.push_back(service.submit(ids[static_cast<std::size_t>(s)], std::move(req)));
    }
  }
  std::size_t t = 0;
  for (int frame = 0; frame < kFrames; ++frame) {
    for (int s = 0; s < kSessions; ++s) {
      core::SynthesisResult result = tickets[t++].result.get();
      EXPECT_EQ(result.content_hash, solo_hash[static_cast<std::size_t>(s)])
          << "session " << s << " frame " << frame;
      EXPECT_GE(result.stats.queue_wait_seconds, 0.0);
    }
  }
}

// ------------------------------------------------- scheduling order -------

TEST(SynthesisService, PriorityAndFairnessOrderDispatch) {
  // One driver, jobs submitted while it is pinned on a slow frame:
  // the high-priority session goes first, then the two equal-priority
  // sessions alternate (round-robin), FIFO within each. service_seq is the
  // dispatch order the driver actually used.
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto slow = slow_field(domain, 20e-6);
  auto config = small_config();
  config.spot_count = 150;
  const auto spots = test_spots(config, domain);

  SynthesisService service({.drivers = 1});
  const auto low_a = service.open_session(config, small_dnc(), /*priority=*/0);
  const auto low_b = service.open_session(config, small_dnc(), /*priority=*/0);
  const auto high = service.open_session(config, small_dnc(), /*priority=*/1);

  auto request = [&](const field::VectorField& field) {
    core::SynthesisRequest req;
    req.field = &field;
    req.spots = spots;
    return req;
  };

  // Pin the driver so everything below queues up behind one frame.
  auto pin = service.submit(low_a, request(*slow));
  std::vector<SynthesisService::JobTicket> tickets;
  tickets.push_back(service.submit(low_a, request(*f)));   // A1
  tickets.push_back(service.submit(low_a, request(*f)));   // A2
  tickets.push_back(service.submit(low_b, request(*f)));   // B1
  tickets.push_back(service.submit(high, request(*f)));    // H1
  (void)pin.result.get();

  const std::int64_t seq_a1 = tickets[0].result.get().service_seq;
  const std::int64_t seq_a2 = tickets[1].result.get().service_seq;
  const std::int64_t seq_b1 = tickets[2].result.get().service_seq;
  const std::int64_t seq_h1 = tickets[3].result.get().service_seq;
  EXPECT_LT(seq_h1, seq_a1) << "priority session must be dispatched first";
  EXPECT_LT(seq_h1, seq_b1);
  EXPECT_LT(seq_a1, seq_a2) << "FIFO within a session";
  // Fairness: after A1 ran, B has been served less recently than A, so B1
  // must beat A2.
  EXPECT_LT(seq_b1, seq_a2) << "equal-priority sessions round-robin";
}

TEST(SynthesisService, StrictPriorityStarvesWithoutAging) {
  // The starvation regression the aging knob exists for. One driver, a
  // high-priority session that keeps its queue full, and one low-priority
  // job submitted *before* all of the high ones. With aging disabled
  // (priority_aging_dispatches = 0 — the pre-aging strict behavior) the
  // low job is served dead last; with the default aging it gains one
  // effective level per 8 dispatches waited, catches the high session, and
  // is dispatched well before the high queue drains.
  // The high session must *refill* its queue with fresh jobs (a closed
  // loop keeping several in flight): a fresh high job has waited zero
  // dispatches while the parked low job's wait keeps growing, which is
  // exactly the gap aging closes — a static pre-submitted batch would age
  // both queues in lockstep and prove nothing.
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  auto config = small_config();
  config.spot_count = 120;
  const auto spots = test_spots(config, domain);
  constexpr int kHighJobs = 24;
  // Feeder's collection depth — bounds memory, not correctness (the gate
  // fields below are what keep the high queue non-empty).
  constexpr std::size_t kInflight = 4;

  // One run per aging setting; returns (low seq, last high seq).
  const auto run = [&](int aging) {
    SynthesisService service(
        {.drivers = 1, .priority_aging_dispatches = aging});
    const auto low = service.open_session(config, small_dnc(), /*priority=*/0);
    const auto high = service.open_session(config, small_dnc(), /*priority=*/1);

    // "Keeps its queue full" must hold under ANY host scheduling: timed
    // spins raced the feeder on loaded one-core hosts (the driver could
    // drain the whole queue during one feeder deschedule, handing the low
    // job an early dispatch and a bogus strict-run failure). Instead, high
    // job k's field blocks until `released` > k, and the feeder advances
    // `released` to k only *after* submitting job k — so the driver cannot
    // finish job k-1 before job k is queued, and the high queue is provably
    // non-empty at every dispatch until the last high job. Deterministic,
    // no timing dependence.
    std::atomic<int> released{-1};
    std::vector<std::unique_ptr<field::VectorField>> gates;
    for (int k = 0; k < kHighJobs; ++k) {
      gates.push_back(std::make_unique<field::CallableField>(
          [&released, k](field::Vec2 p) -> field::Vec2 {
            while (released.load(std::memory_order_acquire) <= k) {
              std::this_thread::yield();
            }
            return {0.2 * p.y + 0.1, -0.2 * p.x + 0.1};
          },
          domain, 1.0));
    }
    auto request = [&](const field::VectorField& field) {
      core::SynthesisRequest req;
      req.field = &field;
      req.spots = spots;
      return req;
    };

    std::deque<SynthesisService::JobTicket> inflight;
    std::int64_t last_high_seq = 0;
    const auto drain_to = [&](std::size_t depth) {
      while (inflight.size() > depth) {
        last_high_seq = std::max(last_high_seq,
                                 inflight.front().result.get().service_seq);
        inflight.pop_front();
      }
    };
    // High job 0 doubles as the pin: submitted before the low job, it holds
    // the driver until `released` reaches 1, which only happens after the
    // low job AND high job 1 are queued.
    inflight.push_back(service.submit(high, request(*gates[0])));
    auto low_ticket = service.submit(low, request(*f));
    for (int k = 1; k < kHighJobs; ++k) {
      inflight.push_back(
          service.submit(high, request(*gates[static_cast<std::size_t>(k)])));
      released.store(k, std::memory_order_release);  // job k-1 may now finish
      drain_to(kInflight - 1);
    }
    released.store(kHighJobs, std::memory_order_release);
    drain_to(0);
    const std::int64_t low_seq = low_ticket.result.get().service_seq;
    return std::pair(low_seq, last_high_seq);
  };

  const auto [strict_low, strict_last_high] = run(/*aging=*/0);
  EXPECT_GT(strict_low, strict_last_high)
      << "strict priorities must starve the low session until the high "
         "queue drains (the documented pre-aging behavior)";

  const auto [aged_low, aged_last_high] = run(/*aging=*/8);
  EXPECT_LT(aged_low, aged_last_high)
      << "aging must dispatch the starved low-priority job before the "
         "high-priority queue drains";
}

TEST(SynthesisService, DeadlineAtRiskPreemptsViaChunkYield) {
  // A long low-urgency frame holds the only driver while a deadline job
  // arrives: the runner must be asked to yield at its next chunk
  // checkpoint, the urgent job runs, and the yielded frame redoes from the
  // front of its queue — bit-identical, with the attempt counter rolled
  // back (a yield is not a retry).
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto slow = slow_field(domain, 100e-6);
  auto config = small_config();
  const auto spots = test_spots(config, domain);

  // An effectively infinite risk factor makes any finite deadline count as
  // at-risk — the test targets the yield protocol, not the slack estimate.
  SynthesisService service({.drivers = 1, .yield_risk_factor = 1e9});
  const auto slow_session = service.open_session(config, small_dnc());
  const auto urgent_session = service.open_session(config, small_dnc());

  // Calibrate the urgent session's PerfModel (admission needs a completed
  // frame before it can predict).
  {
    core::SynthesisRequest req;
    req.field = f.get();
    req.spots = spots;
    (void)service.submit(urgent_session, std::move(req)).result.get();
  }

  core::SynthesisRequest long_req;
  long_req.field = slow.get();
  long_req.spots = spots;
  auto long_ticket = service.submit(slow_session, std::move(long_req));
  // Wait until the long frame definitely occupies the driver.
  while (service.pending_jobs() > 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  core::SynthesisRequest urgent_req;
  urgent_req.field = f.get();
  urgent_req.spots = spots;
  core::SubmitOptions deadline;
  deadline.deadline_seconds = 30.0;  // finite => at risk under the huge factor
  auto urgent_ticket =
      service.submit(urgent_session, std::move(urgent_req), deadline);

  const auto urgent_result = urgent_ticket.result.get();
  const auto long_result = long_ticket.result.get();
  EXPECT_LT(urgent_result.service_seq, long_result.service_seq)
      << "the urgent job must be dispatched before the yielded redo";
  EXPECT_EQ(long_result.attempts, 1)
      << "a yield rolls the attempt counter back — it is not a retry";

  const auto health = service.health();
  EXPECT_GE(health.yielded, 1) << "the long frame must have yielded";

  // Bit-exactness across the yield: the redone frame equals a fresh solo
  // engine's run of the same scene.
  core::DncSynthesizer solo(config, small_dnc());
  solo.synthesize(*slow, spots);
  EXPECT_EQ(long_result.content_hash, solo.texture().content_hash());
}

TEST(SynthesisService, SecondJobAccountsQueueWait) {
  const Rect domain{0, 0, 2, 2};
  const auto slow = slow_field(domain, 20e-6);
  auto config = small_config();
  config.spot_count = 200;
  const auto spots = test_spots(config, domain);
  SynthesisService service({.drivers = 1});
  const auto id = service.open_session(config, small_dnc());
  core::SynthesisRequest req;
  req.field = slow.get();
  req.spots = spots;
  auto first = service.submit(id, std::move(req));
  core::SynthesisRequest req2;
  req2.field = slow.get();
  req2.spots = spots;
  auto second = service.submit(id, std::move(req2));
  const double first_wait = first.result.get().stats.queue_wait_seconds;
  const double second_wait = second.result.get().stats.queue_wait_seconds;
  EXPECT_GE(first_wait, 0.0);
  EXPECT_GT(second_wait, 0.0) << "the second job waited behind the first";
}

// ----------------------------------------------------- cancellation -------

TEST(SynthesisService, CancelPendingJobResolvesImmediately) {
  const Rect domain{0, 0, 2, 2};
  const auto slow = slow_field(domain, 20e-6);
  auto config = small_config();
  const auto spots = test_spots(config, domain);
  SynthesisService service({.drivers = 1});
  const auto id = service.open_session(config, small_dnc());
  core::SynthesisRequest req;
  req.field = slow.get();
  req.spots = spots;
  auto running = service.submit(id, std::move(req));
  core::SynthesisRequest req2;
  req2.field = slow.get();
  req2.spots = spots;
  auto pending = service.submit(id, std::move(req2));
  EXPECT_TRUE(service.cancel(pending.id));
  EXPECT_THROW((void)pending.result.get(), core::JobCanceled);
  (void)running.result.get();  // unaffected
}

TEST(SynthesisService, CancelMidFrameAbandonsAndSessionRecovers) {
  const Rect domain{0, 0, 2, 2};
  // ~100 us of spinning per field sample makes the frame hundreds of
  // milliseconds long — the cancel below lands mid-frame on any host.
  const auto slow = slow_field(domain, 100e-6);
  const auto fast = field::analytic::taylor_green(1.0, domain);
  auto config = small_config();
  const auto spots = test_spots(config, domain);
  SynthesisService service({.drivers = 1});
  const auto id = service.open_session(config, small_dnc());

  core::SynthesisRequest req;
  req.field = slow.get();
  req.spots = spots;
  auto ticket = service.submit(id, std::move(req));
  // Wait until the job is definitely running (pending count drops), then
  // cancel mid-frame.
  while (service.pending_jobs() > 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(service.cancel(ticket.id));
  EXPECT_THROW((void)ticket.result.get(), core::JobCanceled);

  // The engine abandoned the frame through the failure protocol; the same
  // session must produce a correct frame right after.
  core::SynthesisRequest good;
  good.field = fast.get();
  good.spots = spots;
  auto recovered = service.submit(id, std::move(good));
  core::DncSynthesizer solo(config, small_dnc());
  solo.synthesize(*fast, spots);
  EXPECT_EQ(recovered.result.get().content_hash, solo.texture().content_hash());
}

// --------------------------------------------------------- shutdown -------

TEST(SynthesisService, ShutdownDrainsPendingJobs) {
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  auto config = small_config();
  config.spot_count = 150;
  const auto spots = test_spots(config, domain);
  auto service = std::make_unique<SynthesisService>(core::ServiceConfig{.drivers = 1});
  const auto id = service->open_session(config, small_dnc());
  std::vector<SynthesisService::JobTicket> tickets;
  for (int k = 0; k < 5; ++k) {
    core::SynthesisRequest req;
    req.field = f.get();
    req.spots = spots;
    tickets.push_back(service->submit(id, std::move(req)));
  }
  service->shutdown(/*drain=*/true);
  for (auto& ticket : tickets) {
    EXPECT_NO_THROW((void)ticket.result.get()) << "drained job must complete";
  }
  EXPECT_THROW((void)service->submit(id, {}), util::Error) << "no submits after shutdown";
}

TEST(SynthesisService, ShutdownWithoutDrainCancelsPending) {
  const Rect domain{0, 0, 2, 2};
  const auto slow = slow_field(domain, 50e-6);
  auto config = small_config();
  const auto spots = test_spots(config, domain);
  SynthesisService service({.drivers = 1});
  const auto id = service.open_session(config, small_dnc());
  std::vector<SynthesisService::JobTicket> tickets;
  for (int k = 0; k < 4; ++k) {
    core::SynthesisRequest req;
    req.field = slow.get();
    req.spots = spots;
    tickets.push_back(service.submit(id, std::move(req)));
  }
  service.shutdown(/*drain=*/false);
  int canceled = 0;
  for (auto& ticket : tickets) {
    try {
      (void)ticket.result.get();  // the running head job may win its race
    } catch (const core::JobCanceled&) {
      ++canceled;
    }
  }
  EXPECT_GE(canceled, 3) << "pending jobs must be canceled, not silently run";
}

TEST(SynthesisService, OpenSessionAndSubmitRacingShutdownNeverHang) {
  // Regression for the open/submit-vs-shutdown race: a client thread that
  // loses the race must deterministically observe util::Error — never a
  // hang, never a ticket whose future nobody resolves. Looped so the TSan
  // run (scripts/verify.sh --tsan covers this suite) explores many
  // interleavings of open_session, submit, and both shutdown flavors.
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto config = small_config();
  const auto spots = test_spots(config, domain);
  for (int round = 0; round < 8; ++round) {
    SynthesisService service({.drivers = 2});
    const auto warm = service.open_session(config, small_dnc());
    std::atomic<bool> go{false};
    constexpr int kClients = 4;
    std::vector<std::vector<SynthesisService::JobTicket>> tickets(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int who = 0; who < kClients; ++who) {
      clients.emplace_back([&, who] {
        while (!go.load(std::memory_order_acquire)) {
        }
        try {
          for (int k = 0; k < 4; ++k) {
            if (who % 2 == 0) {
              (void)service.open_session(config, small_dnc());
            } else {
              core::SynthesisRequest req;
              req.field = f.get();
              req.spots = spots;
              tickets[static_cast<std::size_t>(who)].push_back(
                  service.submit(warm, std::move(req)));
            }
          }
        } catch (const util::Error&) {
          // Shutdown won the race: the one acceptable outcome besides
          // success. Anything else (hang, crash, other exception) fails.
        }
      });
    }
    go.store(true, std::memory_order_release);
    if (round % 4 >= 2) std::this_thread::sleep_for(std::chrono::microseconds(200 * (round % 4)));
    service.shutdown(/*drain=*/round % 2 == 0);
    for (auto& client : clients) client.join();
    // Every ticket handed out before shutdown won must resolve: with a
    // value when the drain ran it, with JobCanceled otherwise.
    for (auto& per_client : tickets) {
      for (auto& ticket : per_client) {
        try {
          (void)ticket.result.get();
        } catch (const util::Error&) {
        }
      }
    }
  }
}

TEST(SynthesisService, AdmissionControlRejectsUnmeetableDeadline) {
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto config = small_config();
  const auto spots = test_spots(config, domain);
  SynthesisService service({.drivers = 1});
  const auto id = service.open_session(config, small_dnc());
  // First frame completes normally and calibrates the session's PerfModel —
  // admission control needs a prediction before it can refuse anything.
  core::SynthesisRequest first;
  first.field = f.get();
  first.spots = spots;
  EXPECT_NO_THROW((void)service.submit(id, std::move(first)).result.get());
  // A deadline far below one predicted frame time is unmeetable at any
  // queue depth: kReject fails fast at the door instead of timing out
  // after a dispatch.
  core::SynthesisRequest doomed;
  doomed.field = f.get();
  doomed.spots = spots;
  core::SubmitOptions opt;
  opt.deadline_seconds = 1e-12;
  opt.policy = core::SubmitOptions::DeadlinePolicy::kReject;
  EXPECT_THROW((void)service.submit(id, std::move(doomed), opt),
               core::JobRejected);
  const core::ServiceHealth health = service.health();
  EXPECT_EQ(health.rejected, 1);
  EXPECT_EQ(health.completed, 1);
}

// ------------------------------------------------- failure isolation ------

TEST(SynthesisService, ExceptionInOneSessionDoesNotPoisonOthers) {
  const Rect domain{0, 0, 2, 2};
  const auto good = field::analytic::taylor_green(1.0, domain);
  const auto bad = faulty_field(domain);
  auto config = small_config();
  const auto spots = test_spots(config, domain);

  SynthesisService service({.drivers = 2});
  const auto victim = service.open_session(config, small_dnc());
  const auto bystander = service.open_session(config, small_dnc());

  core::DncSynthesizer solo(config, small_dnc());
  solo.synthesize(*good, spots);
  const std::uint64_t expected = solo.texture().content_hash();

  // Interleave failing jobs on one session with good jobs on the other.
  std::vector<SynthesisService::JobTicket> bad_jobs, good_jobs;
  for (int k = 0; k < 3; ++k) {
    core::SynthesisRequest fail_req;
    fail_req.field = bad.get();
    fail_req.spots = spots;
    bad_jobs.push_back(service.submit(victim, std::move(fail_req)));
    core::SynthesisRequest ok_req;
    ok_req.field = good.get();
    ok_req.spots = spots;
    good_jobs.push_back(service.submit(bystander, std::move(ok_req)));
  }
  for (auto& job : bad_jobs) {
    EXPECT_THROW((void)job.result.get(), util::Error);
  }
  for (auto& job : good_jobs) {
    EXPECT_EQ(job.result.get().content_hash, expected)
        << "a failing session corrupted a healthy one";
  }
  // Three consecutive failures tripped the victim's circuit breaker: the
  // session is quarantined, not torn down, and the bystander never noticed.
  {
    const core::ServiceHealth health = service.health();
    ASSERT_EQ(health.sessions.size(), 2u);
    EXPECT_EQ(health.sessions[0].breaker, core::BreakerState::kOpen);
    EXPECT_EQ(health.sessions[0].consecutive_failures, 3);
    EXPECT_EQ(health.sessions[0].breaker_trips, 1);
    EXPECT_EQ(health.sessions[1].breaker, core::BreakerState::kClosed);
    EXPECT_EQ(health.failed, 3);
    EXPECT_EQ(health.breaker_trips, 1);
  }
  // The failing session itself recovers (the PR 2 frame-failure protocol)
  // once the breaker cooldown elapses and the half-open probe succeeds.
  const util::Stopwatch waited;
  for (;;) {
    core::SynthesisRequest recover;
    recover.field = good.get();
    recover.spots = spots;
    try {
      EXPECT_EQ(
          service.submit(victim, std::move(recover)).result.get().content_hash,
          expected);
      break;
    } catch (const core::SessionQuarantined&) {
      ASSERT_LT(waited.seconds(), 30.0) << "breaker cooldown never elapsed";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_EQ(service.health().sessions[0].breaker, core::BreakerState::kClosed)
      << "a successful half-open probe must re-close the breaker";
}

// ------------------------------------------- cross-session tile sharing ---

TEST(SynthesisService, SecondSessionOnSameDatasetHitsTheSharedTileStore) {
  // Two sessions, same dataset, both opted into DncConfig::tile_cache, on a
  // private runtime whose store starts cold. The first session rasterizes
  // and publishes every tile; the second must render NOTHING — every tile
  // served from the shared store — and still hash identically to an
  // uncached solo engine. This is the tentpole's end-to-end claim: N
  // sessions browsing one dataset pay for rasterization once.
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto config = small_config();
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc = small_dnc();
  dnc.tiled = true;
  dnc.pipes = 2;
  dnc.tile_cache = true;

  core::DncConfig uncached = dnc;
  uncached.tile_cache = false;
  core::DncSynthesizer solo(config, uncached);
  solo.synthesize(*f, spots);
  const std::uint64_t expected = solo.texture().content_hash();

  core::Runtime runtime({.workers = 2});
  SynthesisService service({.drivers = 2}, runtime);
  const auto first = service.open_session(config, dnc);
  const auto second = service.open_session(config, dnc);

  auto request = [&] {
    core::SynthesisRequest req;
    req.field = f.get();
    req.spots = spots;
    return req;
  };
  const core::SynthesisResult r1 = service.submit(first, request()).result.get();
  EXPECT_EQ(r1.content_hash, expected);
  EXPECT_EQ(r1.stats.cache_tile_hits, 0);
  EXPECT_EQ(r1.stats.cache_tile_misses, dnc.pipes);
  EXPECT_EQ(r1.stats.cache_tiles_published, dnc.pipes);

  const core::SynthesisResult r2 = service.submit(second, request()).result.get();
  EXPECT_EQ(r2.content_hash, expected)
      << "a store-served frame must be bit-identical to the solo render";
  EXPECT_EQ(r2.stats.cache_tile_hits, dnc.pipes);
  EXPECT_EQ(r2.stats.spots_submitted, 0)
      << "the second session should not have rendered a single spot";
  EXPECT_EQ(r2.stats.cache_hit_bytes,
            static_cast<std::uint64_t>(config.texture_width) *
                static_cast<std::uint64_t>(config.texture_height) *
                sizeof(float));

  const core::TileStore::Stats stats = service.tile_cache_stats();
  EXPECT_EQ(stats.hits, dnc.pipes);
  EXPECT_EQ(stats.inserts, dnc.pipes);
  EXPECT_EQ(stats.entries, dnc.pipes);
  EXPECT_LE(stats.bytes, stats.budget_bytes);
}

TEST(SynthesisService, FailedFrameNeverPublishesPartialTiles) {
  // A field that survives the 256-sample fingerprint pass, then throws
  // mid-generation: the job fails through the ticket, and the shared store
  // must be exactly as empty as before — publishes happen only in the
  // sequential gather, after the frame-failure check. The session then
  // recovers and publishes a full, correct frame.
  const Rect domain{0, 0, 2, 2};
  const auto good = field::analytic::taylor_green(1.0, domain);
  auto samples = std::make_shared<std::atomic<std::int64_t>>(0);
  const field::CallableField late_fault(
      [samples](field::Vec2 p) -> field::Vec2 {
        if (samples->fetch_add(1) > 300) {
          throw util::Error("injected mid-generation failure");
        }
        return {0.2 * p.y, -0.2 * p.x};
      },
      domain, 1.0);

  const auto config = small_config();
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc = small_dnc();
  dnc.tiled = true;
  dnc.pipes = 2;
  dnc.tile_cache = true;

  core::Runtime runtime({.workers = 2});
  SynthesisService service({.drivers = 1}, runtime);
  const auto id = service.open_session(config, dnc);

  core::SynthesisRequest fail_req;
  fail_req.field = &late_fault;
  fail_req.spots = spots;
  auto ticket = service.submit(id, std::move(fail_req));
  EXPECT_THROW((void)ticket.result.get(), util::Error);
  EXPECT_GT(samples->load(), 300) << "the fault was meant to fire mid-frame";

  core::TileStore::Stats stats = service.tile_cache_stats();
  EXPECT_EQ(stats.entries, 0) << "a failed frame leaked tiles into the store";
  EXPECT_EQ(stats.inserts, 0);
  EXPECT_EQ(stats.bytes, 0u);

  core::DncConfig uncached = dnc;
  uncached.tile_cache = false;
  core::DncSynthesizer solo(config, uncached);
  solo.synthesize(*good, spots);
  core::SynthesisRequest recover;
  recover.field = good.get();
  recover.spots = spots;
  EXPECT_EQ(service.submit(id, std::move(recover)).result.get().content_hash,
            solo.texture().content_hash());
  stats = service.tile_cache_stats();
  EXPECT_EQ(stats.inserts, dnc.pipes);
  EXPECT_EQ(stats.entries, dnc.pipes);
}

// ----------------------------------------------------- device pools -------

TEST(FramebufferPool, RecycledBufferIsCleanAndRightSize) {
  // The checkout contract behind clean-tile retention: a recycled buffer
  // must come back with exactly the requested shape and no pixels from the
  // job that released it.
  render::FramebufferPool pool;
  render::Framebuffer dirty = pool.acquire(32, 16);
  for (int y = 0; y < dirty.height(); ++y)
    for (int x = 0; x < dirty.width(); ++x) dirty.at(x, y) = 7.0f;
  pool.release(std::move(dirty));
  ASSERT_EQ(pool.idle_count(), 1u);

  render::Framebuffer same = pool.acquire(32, 16);
  EXPECT_EQ(same.width(), 32);
  EXPECT_EQ(same.height(), 16);
  for (int y = 0; y < same.height(); ++y)
    for (int x = 0; x < same.width(); ++x)
      ASSERT_EQ(same.at(x, y), 0.0f) << "leaked pixel at " << x << "," << y;
  EXPECT_GT(pool.reuse_count(), 0) << "the buffer must actually be recycled";
  pool.release(std::move(same));

  render::Framebuffer reshaped = pool.acquire(8, 64);
  EXPECT_EQ(reshaped.width(), 8);
  EXPECT_EQ(reshaped.height(), 64);
  for (int y = 0; y < reshaped.height(); ++y)
    for (int x = 0; x < reshaped.width(); ++x) ASSERT_EQ(reshaped.at(x, y), 0.0f);
}

TEST(FramebufferPool, RecycledBufferCannotLeakIntoRetentionCompose) {
  // End-to-end version of the checkout contract: compose fresh tiles over a
  // *recycled* destination with half the tiles masked off. The masked
  // regions must read as the pristine zero checkout, not the previous
  // job's pixels.
  render::FramebufferPool pool;
  render::Framebuffer previous_job = pool.acquire(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) previous_job.at(x, y) = 3.5f;
  pool.release(std::move(previous_job));

  render::Framebuffer final_texture = pool.acquire(64, 64);
  std::vector<render::Framebuffer> tiles;
  tiles.emplace_back(32, 64);
  tiles.emplace_back();  // clean tile: never read
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 32; ++x) tiles[0].at(x, y) = 1.0f;
  const std::vector<render::TilePlacement> placements{{0, 0}, {32, 0}};
  const std::vector<std::uint8_t> dirty{1, 0};
  render::compose_tiles_masked(final_texture, tiles, placements, dirty);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      ASSERT_EQ(final_texture.at(x, y), x < 32 ? 1.0f : 0.0f)
          << "at " << x << "," << y;
    }
  }
}

TEST(Runtime, PipePoolReusesReleasedPipes) {
  core::Runtime runtime;
  const std::int64_t created_before = runtime.pipes_created();
  auto config = small_config();
  core::DncConfig dnc = small_dnc();
  {
    core::DncSynthesizer engine(config, dnc, runtime);
  }
  const std::int64_t created_once = runtime.pipes_created() - created_before;
  EXPECT_GE(created_once, 1);
  {
    // Same behavioral config, different texture size: the pooled pipe is
    // reshaped via resize_target instead of constructing a new one.
    auto bigger = config;
    bigger.texture_width = 128;
    bigger.texture_height = 64;
    core::DncSynthesizer engine(bigger, dnc, runtime);
    const Rect domain{0, 0, 2, 2};
    const auto f = field::analytic::taylor_green(1.0, domain);
    const auto spots = test_spots(bigger, domain);
    engine.synthesize(*f, spots);
    EXPECT_EQ(engine.texture().width(), 128);
    EXPECT_GT(render::texture_stddev(engine.texture()), 0.0);
  }
  EXPECT_GT(runtime.pipes_reused(), 0)
      << "the second session must reuse the released pipe";
  EXPECT_EQ(runtime.pipes_created() - created_before, created_once)
      << "no new pipe should be constructed for a matching config";
}

TEST(Runtime, SessionsOnPrivateRuntimeProduceIdenticalBits) {
  // A session borrowing from an explicit private runtime renders the same
  // bits as one on the global runtime — ownership is invisible to pixels.
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  auto config = small_config();
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc = small_dnc();
  dnc.processors = 3;
  dnc.pipes = 1;
  core::DncSynthesizer on_global(config, dnc);
  on_global.synthesize(*f, spots);
  core::Runtime private_runtime({.workers = 3});
  core::DncSynthesizer on_private(config, dnc, private_runtime);
  on_private.synthesize(*f, spots);
  EXPECT_TRUE(on_global.texture() == on_private.texture());
}

}  // namespace
