// NEGATIVE COMPILE TEST for the Clang Thread Safety Analysis gate.
//
// This TU violates the locking discipline on purpose: it reads and writes a
// DCSN_GUARDED_BY member without holding its mutex, and it calls a
// DCSN_REQUIRES function without the capability. Under the `analyze` CMake
// preset (clang with -Wthread-safety -Werror=thread-safety) building the
// `analyze_fail_thread_safety` target MUST fail; scripts/analyze.sh treats a
// successful compile as a gate failure, because it means the analysis is not
// actually running (wrong compiler, dropped flag, broken macro gate).
//
// Under GCC the annotations expand to nothing and this compiles clean —
// which is fine: the target is EXCLUDE_FROM_ALL and only analyze.sh builds
// it, precisely to detect that situation.

#include "util/thread_annotations.hpp"

namespace dcsn {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // VIOLATION: guarded write without mutex_
  }

  void audited_deposit(int amount) DCSN_REQUIRES(mutex_) { balance_ += amount; }

  void audit() {
    audited_deposit(1);  // VIOLATION: REQUIRES(mutex_) without holding it
  }

  [[nodiscard]] int balance() const {
    return balance_;  // VIOLATION: guarded read without mutex_
  }

 private:
  mutable util::Mutex mutex_;
  int balance_ DCSN_GUARDED_BY(mutex_) = 0;
};

int consume() {
  Account account;
  account.deposit(41);
  account.audit();
  return account.balance();
}

}  // namespace dcsn
