// Tests for texture filters, the performance model (eq. 2.1 / 3.2) and the
// resource-allocation advisor.
#include <gtest/gtest.h>

#include <cmath>

#include "core/filters.hpp"
#include "core/perf_model.hpp"
#include "render/image.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;

render::Framebuffer noise_texture(int w, int h, std::uint64_t seed) {
  render::Framebuffer fb(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      fb.at(x, y) = static_cast<float>(rng.intensity());
  return fb;
}

// ---------------------------------------------------------------- filters ---

TEST(Filters, BoxBlurPreservesConstant) {
  render::Framebuffer fb(32, 32);
  fb.clear(2.5f);
  const auto blurred = core::box_blur(fb, 3);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) EXPECT_NEAR(blurred.at(x, y), 2.5f, 1e-5f);
}

TEST(Filters, BoxBlurZeroRadiusIsIdentity) {
  const auto fb = noise_texture(16, 16, 1);
  const auto out = core::box_blur(fb, 0);
  EXPECT_TRUE(out == fb);
}

TEST(Filters, BoxBlurReducesVariance) {
  const auto fb = noise_texture(64, 64, 2);
  const auto blurred = core::box_blur(fb, 2);
  EXPECT_LT(render::texture_stddev(blurred), render::texture_stddev(fb) * 0.5);
}

TEST(Filters, BoxBlurApproximatelyPreservesMean) {
  // Border clamping re-weights edge pixels, so the mean is only preserved
  // up to a border-sized bias (~radius/size of the noise amplitude).
  const auto fb = noise_texture(64, 64, 3);
  const auto blurred = core::box_blur(fb, 4);
  EXPECT_NEAR(blurred.mean(), fb.mean(), 0.01);
}

TEST(Filters, BoxBlurIsSeparableAverage) {
  // A unit impulse blurred with radius 1 spreads to a 3x3 of 1/9.
  render::Framebuffer fb(9, 9);
  fb.at(4, 4) = 9.0f;
  const auto blurred = core::box_blur(fb, 1);
  for (int y = 3; y <= 5; ++y)
    for (int x = 3; x <= 5; ++x) EXPECT_NEAR(blurred.at(x, y), 1.0f, 1e-5f);
  EXPECT_NEAR(blurred.at(2, 4), 0.0f, 1e-6f);
}

TEST(Filters, HighPassRemovesLowFrequency) {
  // A smooth gradient is almost entirely low frequency: the high-pass
  // output must be much smaller than the input.
  render::Framebuffer fb(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) fb.at(x, y) = static_cast<float>(x) * 0.1f;
  const auto hp = core::high_pass(fb, 8);
  // Interior (away from border clamp effects) should be near zero.
  for (int y = 16; y < 48; ++y)
    for (int x = 16; x < 48; ++x) EXPECT_NEAR(hp.at(x, y), 0.0f, 1e-3f);
}

TEST(Filters, HighPassKeepsHighFrequency) {
  // A single-pixel checkerboard survives a wide high-pass almost intact.
  render::Framebuffer fb(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) fb.at(x, y) = ((x + y) % 2 == 0) ? 1.0f : -1.0f;
  const auto hp = core::high_pass(fb, 4);
  EXPECT_GT(render::texture_stddev(hp), 0.9 * render::texture_stddev(fb));
}

TEST(Filters, NormalizeContrastSetsScale) {
  auto fb = noise_texture(64, 64, 4);
  core::normalize_contrast(fb, 2.0);
  EXPECT_NEAR(fb.mean(), 0.0, 1e-5);
  EXPECT_NEAR(render::texture_stddev(fb), 0.5, 1e-3);  // sigma -> 1/sigmas
}

TEST(Filters, NormalizeContrastHandlesFlatTexture) {
  render::Framebuffer fb(8, 8);
  fb.clear(1.0f);
  EXPECT_NO_THROW(core::normalize_contrast(fb));
  EXPECT_EQ(fb.at(0, 0), 1.0f);  // untouched: zero variance
}

TEST(Filters, EqualizeHistogramFlattens) {
  // Heavily skewed input: equalization spreads values over [-1, 1] with a
  // near-uniform distribution, so the quartiles land near -0.5/0/0.5.
  render::Framebuffer fb(64, 64);
  util::Rng rng(5);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      const double u = rng.uniform();
      fb.at(x, y) = static_cast<float>(u * u * u);  // skewed toward 0
    }
  core::equalize_histogram(fb);
  const auto [lo, hi] = fb.min_max();
  EXPECT_GE(lo, -1.0f);
  EXPECT_LE(hi, 1.0f);
  int below_zero = 0;
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      if (fb.at(x, y) < 0.0f) ++below_zero;
  EXPECT_NEAR(below_zero, 64 * 64 / 2, 64 * 64 / 10);
}

TEST(Filters, EqualizeHistogramHandlesFlatTexture) {
  render::Framebuffer fb(8, 8);
  fb.clear(3.0f);
  EXPECT_NO_THROW(core::equalize_histogram(fb));
}

// -------------------------------------------------------------- PerfModel ---

core::PerfModelParams paper_like_params() {
  // genP : genT = 4 : 1 — the ratio behind the paper's "about 4 processors
  // per pipe" observation.
  core::PerfModelParams p;
  p.genP_per_spot = 4e-4;
  p.genT_per_spot = 1e-4;
  p.gather_per_pipe = 0.02;
  p.fixed_overhead = 0.0;
  return p;
}

TEST(PerfModel, SerialIsMaxNotSum) {
  const core::PerfModel model(paper_like_params());
  // eq. 2.1: overlap means max(), so 1000 spots cost 0.4 s (genP side), not
  // 0.5 s (the sum).
  EXPECT_NEAR(model.predict_serial(1000), 0.4 + 0.02, 1e-9);
}

TEST(PerfModel, BalancePointIsGenPOverGenT) {
  const core::PerfModel model(paper_like_params());
  EXPECT_NEAR(model.processors_per_pipe_balance(), 4.0, 1e-9);
}

TEST(PerfModel, AddingProcessorsSaturatesAtBalance) {
  const core::PerfModel model(paper_like_params());
  const std::int64_t n = 1000;
  // Below balance: processor-bound, adding processors helps.
  EXPECT_GT(model.predict(n, 2, 1), model.predict(n, 4, 1));
  // Beyond balance: pipe-bound, more processors change nothing.
  EXPECT_NEAR(model.predict(n, 5, 1), model.predict(n, 8, 1), 1e-9);
}

TEST(PerfModel, GatherTermPenalizesManyPipes) {
  const core::PerfModel model(paper_like_params());
  const std::int64_t n = 1000;
  // With 4n processors per n pipes the max() term scales perfectly, but the
  // gather term c grows linearly in pipes — speedup must be sublinear.
  const double t1 = model.predict(n, 4, 1);
  const double t4 = model.predict(n, 16, 4);
  EXPECT_GT(t4, t1 / 4.0);
  EXPECT_LT(t4, t1);  // but still faster overall
}

TEST(PerfModel, CalibrationRoundTrip) {
  // Build synthetic frame stats from known parameters, calibrate, predict.
  core::FrameStats frame;
  frame.spots = 2000;
  frame.genP_seconds = 2000 * 4e-4;
  frame.genT_seconds = 2000 * 1e-4;
  frame.gather_seconds = 0.04;
  frame.frame_seconds =
      std::max(frame.genP_seconds / 2, frame.genT_seconds / 2) + 0.04;
  const auto model = core::PerfModel::calibrate(frame, 2);
  EXPECT_NEAR(model.params().genP_per_spot, 4e-4, 1e-9);
  EXPECT_NEAR(model.params().genT_per_spot, 1e-4, 1e-9);
  EXPECT_NEAR(model.params().gather_per_pipe, 0.02, 1e-9);
  EXPECT_NEAR(model.processors_per_pipe_balance(), 4.0, 1e-6);
}

TEST(PerfModel, PredictRateInvertsTime) {
  const core::PerfModel model(paper_like_params());
  const double t = model.predict(1000, 4, 1);
  EXPECT_NEAR(model.predict_rate(1000, 4, 1), 1.0 / t, 1e-9);
}

TEST(PerfModel, RejectsBadInput) {
  const core::PerfModel model(paper_like_params());
  EXPECT_THROW((void)model.predict(100, 0, 1), util::Error);
  core::FrameStats empty;
  EXPECT_THROW((void)core::PerfModel::calibrate(empty, 1), util::Error);
}

// ---------------------------------------------------------- best_allocation ---

TEST(Allocation, PrefersBalancedConfiguration) {
  const core::PerfModel model(paper_like_params());
  const auto choice = core::best_allocation(model, 1000, 8, 4);
  // With 8 CPUs and c = 0.02/pipe: 2 pipes + 8 CPUs gives max(.05, .05)+.04
  // = 0.09; 1 pipe gives max(.05,.1)+.02 = 0.12; 4 pipes gives
  // max(.05,.025)+.08 = 0.13. Expect 2 pipes, 8 processors.
  EXPECT_EQ(choice.pipes, 2);
  EXPECT_EQ(choice.processors, 8);
}

TEST(Allocation, HonorsMachineLimits) {
  const core::PerfModel model(paper_like_params());
  const auto choice = core::best_allocation(model, 1000, 3, 8);
  EXPECT_LE(choice.processors, 3);
  EXPECT_LE(choice.pipes, choice.processors);  // master per pipe
}

TEST(Allocation, CheapGatherFavorsMorePipes) {
  auto params = paper_like_params();
  params.gather_per_pipe = 1e-6;
  const core::PerfModel model(params);
  const auto choice = core::best_allocation(model, 1000, 16, 4);
  EXPECT_EQ(choice.pipes, 4);
  EXPECT_EQ(choice.processors, 16);
}

}  // namespace
