// Content-addressed tile store: unit + torture coverage.
//
// The store's contract has four load-bearing clauses, each pinned here:
//
//   * correctness — a probe hit returns pixels bit-identical to what was
//     published under that key, and (at engine level) a cache-served tile
//     is bit-identical to fresh rasterization;
//   * bounded memory — stats().bytes <= budget at every instant, under
//     random budgets, random tile sizes and constant eviction pressure;
//   * pin safety — an entry with a live Checkout is never evicted and its
//     pixels stay readable (and correct) while the pin is held;
//   * collision safety — the index hash is a performance hint, not a
//     correctness input: even a constant hash (injected through the
//     Config::index_hash test seam) can only cause misses, never serve a
//     stale or wrong tile, because every lookup compares the full key.
//
// The concurrent hammer runs under TSan in scripts/verify.sh --tsan
// (ctest label: cache).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/runtime.hpp"
#include "core/spot_source.hpp"
#include "core/tile_store.hpp"
#include "field/analytic.hpp"
#include "field/fingerprint.hpp"
#include "render/framebuffer_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using core::TileKey;
using core::TileStore;

// Deterministic per-key pixel pattern: lets any test verify that the pixels
// a probe returns belong to the key it asked for, not to some other entry.
float pattern_at(std::uint64_t id, std::size_t i) {
  const std::uint64_t v = (id * 2654435761ULL + i * 97ULL) % 1000ULL;
  return static_cast<float>(v) / 1000.0f - 0.5f;
}

render::Framebuffer make_tile(int width, int height, std::uint64_t id) {
  render::Framebuffer fb(width, height);
  std::size_t i = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) fb.at(x, y) = pattern_at(id, i++);
  }
  return fb;
}

bool matches_pattern(const render::Framebuffer& fb, std::uint64_t id) {
  std::size_t i = 0;
  for (int y = 0; y < fb.height(); ++y) {
    for (int x = 0; x < fb.width(); ++x) {
      if (fb.at(x, y) != pattern_at(id, i++)) return false;
    }
  }
  return true;
}

TileKey key_of(std::uint64_t id, int width = 16, int height = 16) {
  // Distinct content hashes per id; the rect encodes the dimensions so a
  // published buffer always matches its key.
  return TileKey{id * 1000003ULL + 1, id * 7919ULL + 2, 3, 0, 0, width, height};
}

std::size_t tile_bytes(int width, int height) {
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
         sizeof(float);
}

// ------------------------------------------------------------ unit basics ---

TEST(TileStore, PublishThenProbeReturnsBitIdenticalPixels) {
  TileStore store({.max_bytes = 1 << 20, .shards = 4});
  const TileKey key = key_of(1);
  EXPECT_FALSE(store.probe(key));  // cold miss

  ASSERT_TRUE(store.publish(key, make_tile(16, 16, 1)).inserted);
  TileStore::Checkout hit = store.probe(key);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.pixels(), make_tile(16, 16, 1));

  const TileStore::Stats s = store.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, tile_bytes(16, 16));
}

TEST(TileStore, FirstWriterWinsOnDuplicatePublish) {
  TileStore store({.max_bytes = 1 << 20, .shards = 1});
  const TileKey key = key_of(2);
  ASSERT_TRUE(store.publish(key, make_tile(16, 16, 2)).inserted);
  // Bit-determinism means a real duplicate carries identical pixels; use a
  // different pattern here precisely to observe which writer won.
  EXPECT_FALSE(store.publish(key, make_tile(16, 16, 99)).inserted);
  const TileStore::Checkout hit = store.probe(key);
  ASSERT_TRUE(hit);
  EXPECT_TRUE(matches_pattern(hit.pixels(), 2));
  EXPECT_EQ(store.stats().duplicates, 1);
  EXPECT_EQ(store.stats().entries, 1);
}

TEST(TileStore, PublishDimensionMismatchIsAnError) {
  TileStore store({.max_bytes = 1 << 20, .shards = 1});
  EXPECT_THROW((void)store.publish(key_of(3, 16, 16), make_tile(8, 8, 3)),
               util::Error);
}

TEST(TileStore, OversizedTileIsRejectedNotInserted) {
  // 2 KiB budget over 2 shards: a 16x16 float tile (1 KiB) exceeds the
  // 1 KiB shard budget by nothing — use 32x32 (4 KiB) to exceed it.
  TileStore store({.max_bytes = 2048, .shards = 2});
  const TileKey key = key_of(4, 32, 32);
  EXPECT_FALSE(store.publish(key, make_tile(32, 32, 4)).inserted);
  EXPECT_EQ(store.stats().rejects, 1);
  EXPECT_EQ(store.stats().entries, 0);
  EXPECT_EQ(store.stats().bytes, 0u);
}

TEST(TileStore, RejectedAndEvictedBuffersRecycleIntoThePool) {
  render::FramebufferPool pool(8);
  TileStore store({.max_bytes = tile_bytes(16, 16), .shards = 1, .recycle = &pool});
  ASSERT_TRUE(store.publish(key_of(5), make_tile(16, 16, 5)).inserted);
  // Duplicate: the loser's buffer lands in the pool.
  (void)store.publish(key_of(5), make_tile(16, 16, 5));
  EXPECT_EQ(pool.idle_count(), 1u);
  // Eviction: key 6 displaces key 5, whose buffer lands in the pool too.
  EXPECT_EQ(store.publish(key_of(6), make_tile(16, 16, 6)).evicted, 1);
  EXPECT_EQ(pool.idle_count(), 2u);
}

TEST(TileStore, LruEvictsOldestUnpinnedFirst) {
  // Budget: exactly three 16x16 tiles in one shard.
  TileStore store({.max_bytes = 3 * tile_bytes(16, 16), .shards = 1});
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(store.publish(key_of(id), make_tile(16, 16, id)).inserted);
  }
  // Touch 1 so 2 becomes LRU.
  { const auto pin = store.probe(key_of(1)); ASSERT_TRUE(pin); }
  const auto outcome = store.publish(key_of(4), make_tile(16, 16, 4));
  ASSERT_TRUE(outcome.inserted);
  EXPECT_EQ(outcome.evicted, 1);
  EXPECT_TRUE(store.contains(key_of(1)));
  EXPECT_FALSE(store.contains(key_of(2)));  // the LRU victim
  EXPECT_TRUE(store.contains(key_of(3)));
  EXPECT_TRUE(store.contains(key_of(4)));
}

TEST(TileStore, PinnedEntriesSurviveEvictionPressure) {
  TileStore store({.max_bytes = 2 * tile_bytes(16, 16), .shards = 1});
  ASSERT_TRUE(store.publish(key_of(1), make_tile(16, 16, 1)).inserted);
  const TileStore::Checkout pin = store.probe(key_of(1));
  ASSERT_TRUE(pin);
  // Publish far more than the budget holds; key 1 is pinned throughout.
  for (std::uint64_t id = 2; id <= 12; ++id) {
    (void)store.publish(key_of(id), make_tile(16, 16, id));
    EXPECT_LE(store.stats().bytes, store.stats().budget_bytes);
  }
  EXPECT_TRUE(store.contains(key_of(1)));
  EXPECT_TRUE(matches_pattern(pin.pixels(), 1));  // still readable, still right
}

TEST(TileStore, AllPinnedShardRejectsInsteadOfOvershooting) {
  TileStore store({.max_bytes = 2 * tile_bytes(16, 16), .shards = 1});
  ASSERT_TRUE(store.publish(key_of(1), make_tile(16, 16, 1)).inserted);
  ASSERT_TRUE(store.publish(key_of(2), make_tile(16, 16, 2)).inserted);
  const auto pin1 = store.probe(key_of(1));
  const auto pin2 = store.probe(key_of(2));
  ASSERT_TRUE(pin1);
  ASSERT_TRUE(pin2);
  const auto outcome = store.publish(key_of(3), make_tile(16, 16, 3));
  EXPECT_FALSE(outcome.inserted);
  EXPECT_EQ(outcome.evicted, 0);
  EXPECT_LE(store.stats().bytes, store.stats().budget_bytes);
  EXPECT_EQ(store.stats().rejects, 1);
}

TEST(TileStore, ClearDropsUnpinnedKeepsPinned) {
  TileStore store({.max_bytes = 1 << 20, .shards = 2});
  ASSERT_TRUE(store.publish(key_of(1), make_tile(16, 16, 1)).inserted);
  ASSERT_TRUE(store.publish(key_of(2), make_tile(16, 16, 2)).inserted);
  const auto pin = store.probe(key_of(1));
  store.clear();
  EXPECT_TRUE(store.contains(key_of(1)));
  EXPECT_FALSE(store.contains(key_of(2)));
  EXPECT_TRUE(matches_pattern(pin.pixels(), 1));
}

// ------------------------------------------------------- collision seam ---

TEST(TileStore, ConstantIndexHashNeverServesTheWrongTile) {
  // Force every key into one bucket chain: full-key comparison is now the
  // only thing between a lookup and a stale answer.
  TileStore store({.max_bytes = 1 << 20,
                   .shards = 1,
                   .index_hash = [](const TileKey&) { return 7ULL; }});
  for (std::uint64_t id = 1; id <= 16; ++id) {
    ASSERT_TRUE(store.publish(key_of(id), make_tile(16, 16, id)).inserted);
  }
  for (std::uint64_t id = 1; id <= 16; ++id) {
    const auto hit = store.probe(key_of(id));
    ASSERT_TRUE(hit) << "id " << id;
    EXPECT_TRUE(matches_pattern(hit.pixels(), id)) << "id " << id;
  }
  EXPECT_FALSE(store.probe(key_of(99)));  // absent key: a miss, not an alias
}

TEST(TileStore, CollidingKeysStayDistinctAcrossEviction) {
  // Two colliding keys under a one-tile budget: publishing B evicts A, and
  // a probe for A must then miss — never return B's pixels.
  TileStore store({.max_bytes = tile_bytes(16, 16),
                   .shards = 1,
                   .index_hash = [](const TileKey&) { return 7ULL; }});
  ASSERT_TRUE(store.publish(key_of(1), make_tile(16, 16, 1)).inserted);
  const auto outcome = store.publish(key_of(2), make_tile(16, 16, 2));
  ASSERT_TRUE(outcome.inserted);
  EXPECT_EQ(outcome.evicted, 1);
  EXPECT_FALSE(store.probe(key_of(1)));
  const auto hit = store.probe(key_of(2));
  ASSERT_TRUE(hit);
  EXPECT_TRUE(matches_pattern(hit.pixels(), 2));
}

// ------------------------------------------------- eviction-pressure fuzz ---

TEST(TileStore, EvictionFuzzHoldsByteAndPinInvariants) {
  util::Rng rng(20260807);
  for (int round = 0; round < 12; ++round) {
    const std::size_t shards = 1 + static_cast<std::size_t>(rng.uniform() * 4);
    // Budgets from pathologically tiny (evicts every publish) to roomy.
    const std::size_t budget =
        512 + static_cast<std::size_t>(rng.uniform() * 64 * 1024);
    TileStore store({.max_bytes = budget, .shards = shards});
    std::deque<std::pair<std::uint64_t, TileStore::Checkout>> pinned;

    for (int op = 0; op < 300; ++op) {
      const std::uint64_t id = 1 + static_cast<std::uint64_t>(rng.uniform() * 40);
      const int size = 4 << static_cast<int>(rng.uniform() * 4);  // 4..32 px
      const TileKey key = key_of(id, size, size);
      const double dice = rng.uniform();
      if (dice < 0.5) {
        (void)store.publish(key, make_tile(size, size, id));
      } else if (dice < 0.85) {
        TileStore::Checkout hit = store.probe(key);
        if (hit) {
          // A hit must be the exact pixels published under this key.
          ASSERT_TRUE(matches_pattern(hit.pixels(), id));
          if (rng.uniform() < 0.5 && pinned.size() < 8) {
            pinned.emplace_back(id, std::move(hit));
          }
        }
      } else if (!pinned.empty()) {
        pinned.pop_front();  // release the oldest pin
      }
      // THE invariant: never over budget, no matter the op mix.
      ASSERT_LE(store.stats().bytes, budget);
      // Live pins stay resident and correct under any pressure.
      for (const auto& [pid, pin] : pinned) {
        ASSERT_TRUE(matches_pattern(pin.pixels(), pid));
      }
    }
    EXPECT_LE(store.stats().bytes, budget);
  }
}

// ---------------------------------------------------- concurrent hammer ---

TEST(TileStore, ConcurrentHammerIsRaceFreeAndNeverServesWrongPixels) {
  // K threads publish/probe/release a small shared key space under an
  // eviction-heavy budget. TSan (scripts/verify.sh --tsan) is the real
  // assertion; the pattern checks additionally prove no cross-key serving.
  TileStore store({.max_bytes = 8 * tile_bytes(16, 16), .shards = 4});
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 24;
  std::vector<std::jthread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      std::deque<std::pair<std::uint64_t, TileStore::Checkout>> pins;
      for (int op = 0; op < 2000; ++op) {
        const std::uint64_t id =
            1 + static_cast<std::uint64_t>(rng.uniform() * kKeys);
        if (rng.uniform() < 0.4) {
          (void)store.publish(key_of(id), make_tile(16, 16, id));
        } else {
          TileStore::Checkout hit = store.probe(key_of(id));
          if (hit) {
            if (!matches_pattern(hit.pixels(), id)) {
              ADD_FAILURE() << "wrong pixels served for key " << id;
              return;
            }
            if (pins.size() < 4 && rng.uniform() < 0.3) {
              pins.emplace_back(id, std::move(hit));
            }
          }
        }
        if (pins.size() > 2 || (rng.uniform() < 0.2 && !pins.empty())) {
          pins.pop_front();
        }
      }
    });
  }
  threads.clear();  // join
  const TileStore::Stats s = store.stats();
  EXPECT_GT(s.hits, 0);
  EXPECT_GT(s.misses, 0);
  EXPECT_GT(s.evictions, 0);
  EXPECT_LE(s.bytes, s.budget_bytes);
}

// ------------------------------------------------ key-derivation helpers ---

TEST(TileStore, SpotSubsetHashDistinguishesSubsetsAndCounts) {
  util::Rng rng(9);
  const auto spots = core::make_random_spots({0.0, 0.0, 4.0, 4.0}, 20, rng);
  const std::vector<std::int64_t> a{0, 1, 2};
  const std::vector<std::int64_t> b{0, 1, 3};  // different member
  const std::vector<std::int64_t> prefix{0, 1};
  EXPECT_EQ(core::hash_spot_subset(spots, a), core::hash_spot_subset(spots, a));
  EXPECT_NE(core::hash_spot_subset(spots, a), core::hash_spot_subset(spots, b));
  EXPECT_NE(core::hash_spot_subset(spots, a),
            core::hash_spot_subset(spots, prefix));
  EXPECT_NE(core::hash_spot_subset(spots, {}),
            core::hash_spot_subset(spots, prefix));
}

TEST(TileStore, FieldFingerprintSeparatesContentAndFlagsNaN) {
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const auto a = field::analytic::rankine_vortex({2.0, 2.0}, 1.5, 1.0, domain);
  const auto b = field::analytic::rankine_vortex({2.0, 2.0}, 1.5, 1.0, domain);
  const auto c = field::analytic::rankine_vortex({2.0, 2.1}, 1.5, 1.0, domain);
  const field::FieldFingerprint fa = field::fingerprint_field(*a);
  EXPECT_TRUE(fa.finite);
  EXPECT_EQ(fa, field::fingerprint_field(*b));  // same content, any object
  EXPECT_NE(fa.hash, field::fingerprint_field(*c).hash);

  const field::CallableField poisoned(
      [](field::Vec2) -> field::Vec2 { return {std::nan(""), 0.0}; }, domain,
      1.0);
  EXPECT_FALSE(field::fingerprint_field(poisoned).finite);
}

// ------------------------------------------- engine-level bit equality ---

TEST(TileStore, CachedEngineFrameIsBitIdenticalToFreshRasterization) {
  // A private runtime = a private store: frame 1 publishes every tile,
  // frame 2 serves every tile from the store — and both must equal an
  // uncached engine's output bit for bit.
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const auto field = field::analytic::rankine_vortex({2.0, 2.0}, 1.5, 1.0, domain);
  core::SynthesisConfig sc;
  sc.texture_width = 64;
  sc.texture_height = 64;
  sc.spot_count = 200;
  sc.spot_radius_px = 5.0;
  sc.kind = core::SpotKind::kEllipse;
  util::Rng rng(77);
  auto spots = core::make_random_spots(domain, sc.spot_count, rng);
  for (auto& s : spots) s.intensity *= 0.2;

  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 4;
  dnc.tiled = true;
  core::DncSynthesizer uncached(sc, dnc);
  uncached.synthesize(*field, spots);

  core::Runtime runtime({.workers = 2});
  dnc.tile_cache = true;
  core::DncSynthesizer first(sc, dnc, runtime);
  const core::FrameStats cold = first.synthesize(*field, spots);
  EXPECT_EQ(cold.cache_tile_hits, 0);
  EXPECT_EQ(cold.cache_tile_misses, 4);
  EXPECT_EQ(cold.cache_tiles_published, 4);
  EXPECT_EQ(first.texture(), uncached.texture());

  core::DncSynthesizer second(sc, dnc, runtime);
  const core::FrameStats warm = second.synthesize(*field, spots);
  EXPECT_EQ(warm.cache_tile_hits, 4);
  EXPECT_EQ(warm.cache_tile_misses, 0);
  EXPECT_EQ(warm.spots_submitted, 0);  // nothing generated or rasterized
  EXPECT_EQ(second.texture(), uncached.texture());
  EXPECT_EQ(runtime.tile_store().stats().hits, 4);
}

TEST(TileStore, NonFiniteFieldBypassesTheStore) {
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  const field::CallableField poisoned(
      [](field::Vec2) -> field::Vec2 { return {std::nan(""), 0.0}; }, domain,
      1.0);
  core::SynthesisConfig sc;
  sc.texture_width = 32;
  sc.texture_height = 32;
  sc.spot_count = 10;
  sc.kind = core::SpotKind::kPoint;
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 2;
  dnc.tiled = true;
  dnc.tile_cache = true;
  core::Runtime runtime({.workers = 1});
  core::DncSynthesizer engine(sc, dnc, runtime);
  util::Rng rng(3);
  const auto spots = core::make_random_spots(domain, sc.spot_count, rng);
  const core::FrameStats stats = engine.synthesize(poisoned, spots);
  EXPECT_EQ(stats.cache_tile_hits, 0);
  EXPECT_EQ(stats.cache_tile_misses, 0);
  EXPECT_EQ(stats.cache_tiles_published, 0);
  EXPECT_EQ(runtime.tile_store().stats().entries, 0);
}

}  // namespace
