// Tests for 3D volumes + slice extraction ("the data used is a slice from
// the three dimensional data set") and window (zoom) re-synthesis.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "field/volume.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Box;
using field::Rect;
using field::Vec2;
using field::Vec3;

// ----------------------------------------------------------------- volume ---

TEST(Volume, TrilinearExactForLinearFields) {
  field::VolumeField volume(6, 5, 4, Box{0, 0, 0, 5, 4, 3});
  volume.fill([](Vec3 p) {
    return Vec3{2.0 * p.x - p.y + p.z, p.y + 1.0, p.x - 3.0 * p.z};
  });
  util::Rng rng(1);
  for (int k = 0; k < 200; ++k) {
    const Vec3 p{rng.uniform(0, 5), rng.uniform(0, 4), rng.uniform(0, 3)};
    const Vec3 v = volume.sample(p);
    EXPECT_NEAR(v.x, 2.0 * p.x - p.y + p.z, 1e-9);
    EXPECT_NEAR(v.y, p.y + 1.0, 1e-9);
    EXPECT_NEAR(v.z, p.x - 3.0 * p.z, 1e-9);
  }
}

TEST(Volume, SampleClampsOutsideDomain) {
  field::VolumeField volume(3, 3, 3, Box{0, 0, 0, 1, 1, 1});
  volume.fill([](Vec3 p) { return Vec3{p.x, 0, 0}; });
  EXPECT_NEAR(volume.sample({-5, 0.5, 0.5}).x, 0.0, 1e-12);
  EXPECT_NEAR(volume.sample({5, 0.5, 0.5}).x, 1.0, 1e-12);
}

TEST(Volume, RejectsDegenerate) {
  EXPECT_THROW(field::VolumeField(1, 3, 3, Box{}), util::Error);
  EXPECT_THROW(field::VolumeField(3, 3, 3, Box{0, 0, 0, 0, 1, 1}), util::Error);
}

TEST(Volume, AbcFlowMatchesFormula) {
  const double a = 1.0, b = std::sqrt(2.0 / 3.0), c = std::sqrt(1.0 / 3.0);
  const auto volume = field::analytic3d::abc_flow(a, b, c, 48);
  util::Rng rng(2);
  const double two_pi = 2.0 * std::numbers::pi;
  for (int k = 0; k < 50; ++k) {
    // Sample at grid nodes where interpolation is exact.
    const int i = static_cast<int>(rng.index(48));
    const int j = static_cast<int>(rng.index(48));
    const int l = static_cast<int>(rng.index(48));
    const Vec3 p{i * two_pi / 47, j * two_pi / 47, l * two_pi / 47};
    const Vec3 v = volume.sample(p);
    EXPECT_NEAR(v.x, a * std::sin(p.z) + c * std::cos(p.y), 1e-9);
    EXPECT_NEAR(v.y, b * std::sin(p.x) + a * std::cos(p.z), 1e-9);
    EXPECT_NEAR(v.z, c * std::sin(p.y) + b * std::cos(p.x), 1e-9);
  }
}

// ------------------------------------------------------------------ slices ---

TEST(Slice, ZSliceKeepsInPlaneComponents) {
  field::VolumeField volume(8, 8, 8, Box{0, 0, 0, 1, 1, 1});
  volume.fill([](Vec3 p) { return Vec3{p.z, 2.0 * p.z, 99.0}; });
  const auto slice = field::extract_slice(volume, field::SliceAxis::kZ, 0.5, 16, 16);
  // At z = 0.5 the in-plane velocity is (0.5, 1.0) everywhere; w dropped.
  const Vec2 v = slice.sample({0.3, 0.7});
  EXPECT_NEAR(v.x, 0.5, 1e-9);
  EXPECT_NEAR(v.y, 1.0, 1e-9);
  EXPECT_EQ(slice.grid().domain(), (Rect{0, 0, 1, 1}));
}

TEST(Slice, YSliceMapsXZPlane) {
  field::VolumeField volume(8, 8, 8, Box{0, 0, 0, 1, 2, 3});
  volume.fill([](Vec3 p) { return Vec3{p.x, 7.0, p.z}; });
  const auto slice = field::extract_slice(volume, field::SliceAxis::kY, 1.0, 12, 12);
  // Plane coordinates are (x, z); components (u, w).
  EXPECT_EQ(slice.grid().domain(), (Rect{0, 0, 1, 3}));
  const Vec2 v = slice.sample({0.5, 2.0});
  EXPECT_NEAR(v.x, 0.5, 1e-9);  // u = x
  EXPECT_NEAR(v.y, 2.0, 1e-9);  // w = z
}

TEST(Slice, XSliceMapsYZPlane) {
  field::VolumeField volume(8, 8, 8, Box{0, 0, 0, 1, 1, 1});
  volume.fill([](Vec3 p) { return Vec3{42.0, p.y, p.z}; });
  const auto slice = field::extract_slice(volume, field::SliceAxis::kX, 0.25, 8, 8);
  const Vec2 v = slice.sample({0.5, 0.75});
  EXPECT_NEAR(v.x, 0.5, 1e-9);   // v-component
  EXPECT_NEAR(v.y, 0.75, 1e-9);  // w-component
}

TEST(Slice, OutOfVolumePlaneRejected) {
  field::VolumeField volume(4, 4, 4, Box{0, 0, 0, 1, 1, 1});
  EXPECT_THROW(
      (void)field::extract_slice(volume, field::SliceAxis::kZ, 2.0, 8, 8),
      util::Error);
}

TEST(Slice, AbcSliceSynthesizesSpotNoise) {
  // End to end: 3D ABC flow -> z-slice -> spot noise texture, the exact
  // shape of the paper's application pipelines.
  const auto volume = field::analytic3d::abc_flow(1.0, 0.8, 0.6, 32);
  const auto slice =
      field::extract_slice(volume, field::SliceAxis::kZ, std::numbers::pi, 53, 55);
  core::SynthesisConfig config;
  config.texture_width = 128;
  config.texture_height = 128;
  config.spot_count = 500;
  config.kind = core::SpotKind::kEllipse;
  core::SerialSynthesizer synth(config);
  util::Rng rng(3);
  const auto spots = core::make_random_spots(slice.domain(), 500, rng);
  const auto stats = synth.synthesize(slice, spots);
  EXPECT_EQ(stats.spots, 500);
  EXPECT_GT(render::texture_stddev(synth.texture()), 0.0);
}

// --------------------------------------------------------- window synthesis ---

TEST(WindowSynthesis, SpotAtWindowCenterLandsAtTextureCenter) {
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.kind = core::SpotKind::kPoint;
  config.spot_radius_px = 4.0;
  config.window = Rect{0.4, 0.4, 0.6, 0.6};  // zoom into the middle fifth
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::SerialSynthesizer synth(config);
  const std::vector<core::SpotInstance> spots = {{{0.5, 0.5}, 1.0}};
  synth.synthesize(*f, spots);
  EXPECT_NE(synth.texture().at(32, 32), 0.0f);
  EXPECT_EQ(synth.texture().at(4, 4), 0.0f);
}

TEST(WindowSynthesis, SpotsOutsideWindowClipAway) {
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.kind = core::SpotKind::kPoint;
  config.spot_radius_px = 3.0;
  config.window = Rect{0.0, 0.0, 0.25, 0.25};
  const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
  core::SerialSynthesizer synth(config);
  const std::vector<core::SpotInstance> spots = {{{0.9, 0.9}, 1.0}};  // far away
  const auto stats = synth.synthesize(*f, spots);
  EXPECT_EQ(stats.raster.fragments, 0);
}

TEST(WindowSynthesis, ZoomIncreasesEffectiveResolution) {
  // The same world feature (one spot of fixed world size) covers ~4x the
  // pixel width when the window halves in each direction.
  auto run = [&](std::optional<Rect> window) {
    core::SynthesisConfig config;
    config.texture_width = 128;
    config.texture_height = 128;
    config.kind = core::SpotKind::kPoint;
    config.spot_radius_px = 4.0;  // pixels: radius in *texture* pixels
    config.window = window;
    const auto f = field::analytic::uniform({1, 0}, Rect{0, 0, 1, 1});
    core::SerialSynthesizer synth(config);
    const std::vector<core::SpotInstance> spots = {{{0.5, 0.5}, 1.0}};
    core::SerialStats stats = synth.synthesize(*f, spots);
    return stats.raster.fragments;
  };
  // Spot radius is defined in texture pixels, so fragments are ~equal; what
  // changes is the world area those pixels cover. Verify window synthesis
  // produces the same pixel coverage (the spot stays crisp when zoomed).
  const auto full = run(std::nullopt);
  const auto zoomed = run(Rect{0.25, 0.25, 0.75, 0.75});
  EXPECT_NEAR(static_cast<double>(zoomed), static_cast<double>(full),
              0.2 * static_cast<double>(full));
}

TEST(WindowSynthesis, BentSpotsScaleWithWindow) {
  // Bent spot arc length is given in texture pixels; in a zoomed window the
  // same length_px must cover proportionally less world distance, keeping
  // streaks the same pixel size. Compare spine world extents.
  const auto f = field::analytic::uniform({1.0, 0.0}, Rect{0, 0, 1, 1});
  auto spine_world_extent = [&](std::optional<Rect> window) {
    core::SynthesisConfig config;
    config.texture_width = 128;
    config.texture_height = 128;
    config.kind = core::SpotKind::kBent;
    config.bent.mesh_cols = 8;
    config.bent.mesh_rows = 3;
    config.bent.length_px = 40.0;
    config.window = window;
    const core::SpotGeometryGenerator gen(config, *f);
    render::CommandBuffer buf;
    gen.generate({{0.5, 0.5}, 1.0}, buf);
    const auto& h = buf.meshes()[0];
    const auto v = buf.vertices_of(h);
    // Pixel-space extent of the spine row.
    const auto row = static_cast<std::size_t>(h.cols);
    return v[row + static_cast<std::size_t>(h.cols) - 1].x - v[row].x;
  };
  const double full_px = spine_world_extent(std::nullopt);
  const double zoom_px = spine_world_extent(Rect{0.25, 0.25, 0.75, 0.75});
  // Same pixel length either way (it is defined in pixels).
  EXPECT_NEAR(zoom_px, full_px, 2.0);
}

}  // namespace
