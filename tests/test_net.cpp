// Wire-protocol torture suite and loopback round-trips for the streaming
// frame server (src/net/).
//
// Three layers, hostile first:
//
//   * serializer: every message round-trips bit-exactly; truncated
//     payloads, trailing garbage and out-of-range enum bytes throw
//     ProtocolError instead of decoding nonsense;
//   * framing: read_message against raw socket writes — bad magic,
//     oversized declared lengths (rejected before allocating), garbage
//     prefixes, EOF mid-payload, clean EOF at a boundary;
//   * client verification: a fake server feeds crafted frame sequences —
//     swapped tile payloads (valid bytes, wrong rect) and mid-frame
//     disconnects must be rejected, and the reassembled framebuffer must
//     hash to exactly what the header promised.
//
// The loopback tests then run the real FrameServer + FrameClient pair and
// assert the client's framebuffer is operator== identical to a fresh
// in-process engine — the bit-exactness contract the delta encoding rides.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "core/synthesis_service.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "render/framebuffer.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using net::FieldSpec;
using net::FrameBeginMsg;
using net::FrameClient;
using net::FrameEndMsg;
using net::FrameServer;
using net::FrameServerOptions;
using net::FrameTileMsg;
using net::MsgType;
using net::ProtocolError;
using net::Socket;
using net::SubmitAckMsg;
using net::WireReader;
using net::WireWriter;

core::SynthesisConfig small_config(std::uint64_t seed = 7) {
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.spot_count = 200;
  config.spot_radius_px = 5.0;
  config.kind = core::SpotKind::kEllipse;
  config.seed = seed;
  return config;
}

core::DncConfig small_dnc() {
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  dnc.chunk_spots = 16;
  return dnc;
}

FieldSpec vortex_spec() {
  FieldSpec spec;
  spec.kind = FieldSpec::Kind::kRankineVortex;
  spec.a = 1.0;  // center.x
  spec.b = 1.0;  // center.y
  spec.c = 1.5;  // strength
  spec.d = 0.6;  // core radius
  spec.domain = {0.0, 0.0, 2.0, 2.0};
  return spec;
}

std::vector<core::SpotInstance> test_spots(const core::SynthesisConfig& config,
                                           field::Rect domain) {
  util::Rng rng(config.seed);
  auto spots = core::make_random_spots(domain, config.spot_count, rng);
  for (auto& spot : spots) spot.intensity *= 0.2;
  return spots;
}

FrameServerOptions loopback_options() {
  FrameServerOptions options;
  options.service.drivers = 1;
  options.wire_tiles = 96;
  options.max_inflight = 4;
  return options;
}

net::ClientSubmitOptions plain_submit() {
  net::ClientSubmitOptions options;
  options.incremental = false;
  return options;
}

// ------------------------------------------------- serializer layer ------

TEST(NetProtocol, PrimitivesRoundTripBitExact) {
  WireWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f32(-0.0f);
  w.f64(0.1);  // not exactly representable: the bits must survive anyway
  w.f64(std::numeric_limits<double>::infinity());
  const double nan = std::bit_cast<double>(0x7FF8000000000001ull);
  w.f64(nan);
  w.str("frame");
  w.str("");

  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(std::bit_cast<std::uint32_t>(r.f32()),
            std::bit_cast<std::uint32_t>(-0.0f));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(0.1));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(nan));
  EXPECT_EQ(r.str(), "frame");
  EXPECT_EQ(r.str(), "");
  r.expect_end();
}

TEST(NetProtocol, ReaderRejectsTruncationAndTrailingGarbage) {
  WireWriter w;
  w.u64(12345);
  const std::vector<std::uint8_t> buf = w.data();

  WireReader truncated(std::span(buf.data(), buf.size() - 1));
  EXPECT_THROW((void)truncated.u64(), ProtocolError);

  WireReader trailing(buf);
  (void)trailing.u32();
  EXPECT_THROW(trailing.expect_end(), ProtocolError);

  // A string whose declared length exceeds the remaining payload.
  WireWriter lying;
  lying.u32(1000);
  lying.u8('x');
  WireReader r(lying.data());
  EXPECT_THROW((void)r.str(), ProtocolError);
}

TEST(NetProtocol, FieldSpecRoundTripAndUnknownKindRejected) {
  const FieldSpec spec = vortex_spec();
  WireWriter w;
  spec.encode(w);
  WireReader r(w.data());
  const FieldSpec back = FieldSpec::decode(r);
  r.expect_end();
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.a, spec.a);
  EXPECT_EQ(back.b, spec.b);
  EXPECT_EQ(back.c, spec.c);
  EXPECT_EQ(back.d, spec.d);
  EXPECT_EQ(back.domain.x1, spec.domain.x1);
  auto f = back.make_field();
  ASSERT_NE(f, nullptr);

  // An out-of-range kind byte must be rejected at decode.
  WireWriter bad;
  bad.u8(9);
  for (int i = 0; i < 8; ++i) bad.f64(0.0);
  WireReader br(bad.data());
  EXPECT_THROW((void)FieldSpec::decode(br), ProtocolError);
}

TEST(NetProtocol, OpenSessionRoundTripsConfigs) {
  net::OpenSessionMsg msg;
  msg.priority = 3;
  msg.field = vortex_spec();
  msg.synthesis = small_config(99);
  msg.synthesis.kind = core::SpotKind::kBent;
  msg.synthesis.bent.mesh_cols = 8;
  msg.synthesis.bent.length_px = 18.0;
  msg.synthesis.window = field::Rect{0.25, 0.25, 1.75, 1.75};
  msg.dnc = small_dnc();
  msg.dnc.tiled = true;
  msg.dnc.tile_cache = true;

  const auto payload = msg.encode();
  WireReader r(payload);
  const net::OpenSessionMsg back = net::OpenSessionMsg::decode(r);
  EXPECT_EQ(back.version, net::kProtocolVersion);
  EXPECT_EQ(back.priority, 3);
  EXPECT_EQ(back.synthesis.texture_width, msg.synthesis.texture_width);
  EXPECT_EQ(back.synthesis.spot_count, msg.synthesis.spot_count);
  EXPECT_EQ(back.synthesis.kind, core::SpotKind::kBent);
  EXPECT_EQ(back.synthesis.bent.mesh_cols, 8);
  EXPECT_EQ(back.synthesis.bent.length_px, 18.0);
  EXPECT_EQ(back.synthesis.seed, 99u);
  ASSERT_TRUE(back.synthesis.window.has_value());
  EXPECT_EQ(back.synthesis.window->x0, 0.25);
  EXPECT_EQ(back.dnc.processors, msg.dnc.processors);
  EXPECT_EQ(back.dnc.chunk_spots, msg.dnc.chunk_spots);
  EXPECT_TRUE(back.dnc.tiled);
  EXPECT_TRUE(back.dnc.tile_cache);

  // Truncating any suffix must throw, never mis-decode.
  WireReader tr(std::span(payload.data(), payload.size() - 3));
  EXPECT_THROW((void)net::OpenSessionMsg::decode(tr), ProtocolError);
}

TEST(NetProtocol, SubmitRoundTripsSpotsBitExact) {
  net::SubmitMsg msg;
  msg.client_tag = 77;
  msg.flags = net::SubmitMsg::kFlagIncremental;
  msg.deadline_seconds = 0.125;
  msg.policy = 2;
  msg.max_retries = 1;
  msg.spots = {{{0.5, 0.25}, -0.75}, {{1.0, 1.5}, 0.1}};

  const auto payload = msg.encode();
  WireReader r(payload);
  const net::SubmitMsg back = net::SubmitMsg::decode(r);
  EXPECT_EQ(back.client_tag, 77u);
  EXPECT_EQ(back.flags, net::SubmitMsg::kFlagIncremental);
  EXPECT_EQ(back.deadline_seconds, 0.125);
  EXPECT_EQ(back.policy, 2);
  EXPECT_EQ(back.max_retries, 1);
  ASSERT_EQ(back.spots.size(), 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.spots[0].intensity),
            std::bit_cast<std::uint64_t>(-0.75));
  EXPECT_EQ(back.spots[1].position.x, 1.0);
  EXPECT_EQ(back.spots[1].position.y, 1.5);

  // A spot count larger than the payload can hold is rejected before any
  // allocation sized from it.
  WireWriter lie;
  lie.u64(1);
  lie.u8(0);
  lie.f64(1.0);
  lie.u8(0);
  lie.i32(0);
  lie.u32(0x00FFFFFF);  // claims ~16M spots, payload ends here
  WireReader lr(lie.data());
  EXPECT_THROW((void)net::SubmitMsg::decode(lr), ProtocolError);
}

TEST(NetProtocol, ControlMessagesRoundTrip) {
  {
    net::SessionOpenedMsg m{.session_id = 5, .width = 64, .height = 48};
    const auto payload = m.encode();
    WireReader r(payload);
    const auto b = net::SessionOpenedMsg::decode(r);
    EXPECT_EQ(b.session_id, 5);
    EXPECT_EQ(b.width, 64);
    EXPECT_EQ(b.height, 48);
  }
  {
    SubmitAckMsg m{.client_tag = 9, .job_id = 1234};
    const auto payload = m.encode();
    WireReader r(payload);
    const auto b = SubmitAckMsg::decode(r);
    EXPECT_EQ(b.client_tag, 9u);
    EXPECT_EQ(b.job_id, 1234);
  }
  {
    net::CancelMsg m{.job_id = -8};
    const auto payload = m.encode();
    WireReader r(payload);
    EXPECT_EQ(net::CancelMsg::decode(r).job_id, -8);
  }
  {
    net::JobErrorMsg m;
    m.client_tag = 3;
    m.code = static_cast<std::uint8_t>(net::JobErrorCode::kTimedOut);
    m.message = "deadline blown";
    const auto payload = m.encode();
    WireReader r(payload);
    const auto b = net::JobErrorMsg::decode(r);
    EXPECT_EQ(b.client_tag, 3u);
    EXPECT_EQ(static_cast<net::JobErrorCode>(b.code),
              net::JobErrorCode::kTimedOut);
    EXPECT_EQ(b.message, "deadline blown");
  }
  {
    net::HealthRespMsg m;
    m.completed = 10;
    m.yielded = 2;
    m.clock_now = 1.5;
    m.open_sessions = 4;
    const auto payload = m.encode();
    WireReader r(payload);
    const auto b = net::HealthRespMsg::decode(r);
    EXPECT_EQ(b.completed, 10);
    EXPECT_EQ(b.yielded, 2);
    EXPECT_EQ(b.clock_now, 1.5);
    EXPECT_EQ(b.open_sessions, 4);
  }
  {
    net::ErrorMsg m{.message = "boom"};
    const auto payload = m.encode();
    WireReader r(payload);
    EXPECT_EQ(net::ErrorMsg::decode(r).message, "boom");
  }
  {
    FrameEndMsg m{.client_tag = 11};
    const auto payload = m.encode();
    WireReader r(payload);
    EXPECT_EQ(FrameEndMsg::decode(r).client_tag, 11u);
  }
}

TEST(NetProtocol, FrameMessagesRoundTripAndValidate) {
  FrameBeginMsg begin;
  begin.client_tag = 2;
  begin.job_id = 42;
  begin.content_hash = 0xFEEDFACEDEADBEEFull;
  begin.width = 64;
  begin.height = 64;
  begin.tile_count = 3;
  begin.flags = FrameBeginMsg::kFlagFull;
  begin.service_seq = 17;
  begin.attempts = 2;
  const auto begin_payload = begin.encode();
  WireReader br(begin_payload);
  const FrameBeginMsg b = FrameBeginMsg::decode(br);
  EXPECT_EQ(b.content_hash, begin.content_hash);
  EXPECT_EQ(b.tile_count, 3u);
  EXPECT_EQ(b.flags, FrameBeginMsg::kFlagFull);
  EXPECT_EQ(b.service_seq, 17);
  EXPECT_EQ(b.attempts, 2);

  FrameTileMsg tile;
  tile.x0 = 8;
  tile.y0 = 16;
  tile.width = 4;
  tile.height = 2;
  tile.pixels = {1.0f, -2.0f, 0.5f, 0.0f, 3.0f, -0.25f, 8.0f, 9.0f};
  tile.tile_hash = net::tile_payload_hash(tile.x0, tile.y0, tile.width,
                                          tile.height, tile.pixels);
  const auto tp = tile.encode();
  WireReader tr(tp);
  const FrameTileMsg t = FrameTileMsg::decode(tr);
  EXPECT_EQ(t.x0, 8);
  EXPECT_EQ(t.pixels, tile.pixels);
  EXPECT_EQ(t.tile_hash, tile.tile_hash);

  // Pixel payload shorter than width*height claims: rejected.
  WireReader short_r(std::span(tp.data(), tp.size() - 4));
  EXPECT_THROW((void)FrameTileMsg::decode(short_r), ProtocolError);

  // Non-positive rect: rejected.
  FrameTileMsg degenerate = tile;
  degenerate.width = 0;
  degenerate.pixels.clear();
  const auto degenerate_payload = degenerate.encode();
  WireReader dr(degenerate_payload);
  EXPECT_THROW((void)FrameTileMsg::decode(dr), ProtocolError);
}

TEST(NetProtocol, TilePayloadHashBindsRectToPayload) {
  const std::vector<float> pixels = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::uint64_t at_origin = net::tile_payload_hash(0, 0, 2, 2, pixels);
  const std::uint64_t shifted = net::tile_payload_hash(2, 0, 2, 2, pixels);
  EXPECT_NE(at_origin, shifted);  // same bytes, different rect

  std::vector<float> flipped = pixels;
  flipped[0] = -1.0f;
  EXPECT_NE(at_origin, net::tile_payload_hash(0, 0, 2, 2, flipped));

  // -0.0f and 0.0f compare equal as floats but are different bits — the
  // hash must see bits, not values.
  EXPECT_NE(net::tile_payload_hash(0, 0, 1, 1, std::vector<float>{0.0f}),
            net::tile_payload_hash(0, 0, 1, 1, std::vector<float>{-0.0f}));
}

// ---------------------------------------------------- framing layer ------

/// Little-endian header writer for hostile framing bytes.
std::vector<std::uint8_t> raw_header(std::uint32_t magic, std::uint8_t type,
                                     std::uint32_t len) {
  WireWriter w;
  w.u32(magic);
  w.u8(type);
  w.u32(len);
  return w.take();
}

TEST(NetFraming, RejectsBadMagic) {
  auto [a, b] = Socket::pair();
  const auto header = raw_header(0x12345678u, 1, 0);
  a.send_all(header.data(), header.size());
  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)net::read_message(b, &type, &payload), ProtocolError);
}

TEST(NetFraming, RejectsOversizedDeclaredLength) {
  // The declared length exceeds kMaxPayloadBytes: must throw from the
  // header alone, before any payload allocation or read.
  auto [a, b] = Socket::pair();
  const auto header = raw_header(net::kMagic, 2, net::kMaxPayloadBytes + 1);
  a.send_all(header.data(), header.size());
  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)net::read_message(b, &type, &payload), ProtocolError);
}

TEST(NetFraming, RejectsGarbagePrefix) {
  auto [a, b] = Socket::pair();
  util::Rng rng(1);
  std::vector<std::uint8_t> junk(64);
  for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng() & 0xFF);
  junk[0] = 0x00;  // ensure the magic cannot match by chance
  a.send_all(junk.data(), junk.size());
  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)net::read_message(b, &type, &payload), ProtocolError);
}

TEST(NetFraming, RejectsEofMidPayload) {
  auto [a, b] = Socket::pair();
  const auto header = raw_header(net::kMagic, 2, 100);
  a.send_all(header.data(), header.size());
  const std::vector<std::uint8_t> partial(10, 0xCC);
  a.send_all(partial.data(), partial.size());
  a.close();  // EOF with 90 bytes owed: truncation, not a goodbye
  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)net::read_message(b, &type, &payload), ProtocolError);
}

TEST(NetFraming, CleanEofAtBoundaryReturnsFalse) {
  auto [a, b] = Socket::pair();
  net::send_message(a, MsgType::kHealthReq, {});
  a.close();
  MsgType type{};
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(net::read_message(b, &type, &payload));
  EXPECT_EQ(type, MsgType::kHealthReq);
  EXPECT_TRUE(payload.empty());
  EXPECT_FALSE(net::read_message(b, &type, &payload));
}

// ------------------------------------------- client verification ---------
//
// A scripted fake server over Socket::pair(). Replies are pre-written into
// the socketpair buffer before the client call that reads them — the
// messages involved are far below the kernel buffer size, so no second
// thread is needed and every byte on the wire is exactly what the test
// wrote.

struct FakeServer {
  Socket socket;
  FrameClient client;

  FakeServer() : FakeServer(Socket::pair()) {}

  void open(int width, int height) {
    net::SessionOpenedMsg opened{.session_id = 1, .width = width, .height = height};
    net::send_message(socket, MsgType::kSessionOpened, opened.encode());
    (void)client.open_session(vortex_spec(), small_config(), small_dnc());
  }

  void send(MsgType type, std::span<const std::uint8_t> payload) {
    net::send_message(socket, type, payload);
  }

 private:
  explicit FakeServer(std::pair<Socket, Socket> ends)
      : socket(std::move(ends.first)), client(std::move(ends.second)) {}
};

FrameTileMsg make_tile(int x0, int y0, int w, int h, float base) {
  FrameTileMsg tile;
  tile.x0 = x0;
  tile.y0 = y0;
  tile.width = w;
  tile.height = h;
  tile.pixels.resize(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  for (std::size_t i = 0; i < tile.pixels.size(); ++i) {
    tile.pixels[i] = base + static_cast<float>(i) * 0.5f;
  }
  tile.tile_hash = net::tile_payload_hash(x0, y0, w, h, tile.pixels);
  return tile;
}

/// The framebuffer the client should reassemble from `tiles` over a zeroed
/// w x h target (open_session resets the client framebuffer to zeros).
render::Framebuffer expected_fb(int w, int h,
                                const std::vector<FrameTileMsg>& tiles) {
  render::Framebuffer fb;
  fb.reset(w, h);
  render::Framebuffer scratch;
  for (const FrameTileMsg& tile : tiles) {
    scratch.reset(tile.width, tile.height);
    std::copy(tile.pixels.begin(), tile.pixels.end(), scratch.pixels().data());
    fb.copy_rect_from(scratch, tile.x0, tile.y0);
  }
  return fb;
}

FrameBeginMsg begin_for(std::uint64_t tag, int w, int h,
                        const std::vector<FrameTileMsg>& tiles,
                        std::uint64_t content_hash) {
  FrameBeginMsg begin;
  begin.client_tag = tag;
  begin.job_id = 100;
  begin.content_hash = content_hash;
  begin.width = w;
  begin.height = h;
  begin.tile_count = static_cast<std::uint32_t>(tiles.size());
  begin.flags = FrameBeginMsg::kFlagFull;
  return begin;
}

TEST(NetClient, AppliesCraftedFrameAndVerifiesHashes) {
  FakeServer fake;
  fake.open(8, 8);
  const std::vector<FrameTileMsg> tiles = {make_tile(0, 0, 8, 4, 1.0f),
                                           make_tile(0, 4, 8, 4, -3.0f)};
  const render::Framebuffer expected = expected_fb(8, 8, tiles);

  fake.send(MsgType::kSubmitAck, SubmitAckMsg{.client_tag = 1, .job_id = 100}.encode());
  fake.send(MsgType::kFrameBegin,
            begin_for(1, 8, 8, tiles, expected.content_hash()).encode());
  for (const auto& tile : tiles) fake.send(MsgType::kFrameTile, tile.encode());
  fake.send(MsgType::kFrameEnd, FrameEndMsg{.client_tag = 1}.encode());

  (void)fake.client.submit({}, plain_submit());
  const FrameClient::FrameResult result = fake.client.await_frame();
  EXPECT_EQ(result.client_tag, 1u);
  EXPECT_EQ(result.tiles, 2);
  EXPECT_TRUE(result.full);
  EXPECT_EQ(result.content_hash, expected.content_hash());
  EXPECT_GT(result.wire_bytes, 2u * 8u * 4u * sizeof(float));
  EXPECT_TRUE(fake.client.framebuffer() == expected);
}

TEST(NetClient, RejectsSwappedTilePayloads) {
  // Two individually intact tiles whose pixel payloads are swapped: every
  // byte on the wire is "valid", only the binding of payload to rect is
  // wrong, which is exactly what the per-tile hash exists to catch.
  FakeServer fake;
  fake.open(8, 8);
  FrameTileMsg a = make_tile(0, 0, 8, 4, 1.0f);
  FrameTileMsg b = make_tile(0, 4, 8, 4, -3.0f);
  std::swap(a.pixels, b.pixels);  // rects and hashes keep their originals

  fake.send(MsgType::kSubmitAck, SubmitAckMsg{.client_tag = 1, .job_id = 100}.encode());
  fake.send(MsgType::kFrameBegin, begin_for(1, 8, 8, {a, b}, 0).encode());
  fake.send(MsgType::kFrameTile, a.encode());
  fake.send(MsgType::kFrameTile, b.encode());
  fake.send(MsgType::kFrameEnd, FrameEndMsg{.client_tag = 1}.encode());

  (void)fake.client.submit({}, plain_submit());
  EXPECT_THROW((void)fake.client.await_frame(), ProtocolError);
}

TEST(NetClient, RejectsMidFrameDisconnect) {
  FakeServer fake;
  fake.open(8, 8);
  const FrameTileMsg tile = make_tile(0, 0, 8, 4, 1.0f);

  fake.send(MsgType::kSubmitAck, SubmitAckMsg{.client_tag = 1, .job_id = 100}.encode());
  fake.send(MsgType::kFrameBegin, begin_for(1, 8, 8, {tile, tile}, 0).encode());
  fake.send(MsgType::kFrameTile, tile.encode());
  fake.socket.shutdown_write();  // vanish with one tile still owed

  (void)fake.client.submit({}, plain_submit());
  EXPECT_THROW((void)fake.client.await_frame(), ProtocolError);
}

TEST(NetClient, RejectsContentHashMismatch) {
  // Per-tile hashes check out but the assembled frame does not match the
  // engine hash in the header — the end-to-end bit-exactness backstop.
  FakeServer fake;
  fake.open(8, 8);
  const std::vector<FrameTileMsg> tiles = {make_tile(0, 0, 8, 8, 2.0f)};
  const std::uint64_t good = expected_fb(8, 8, tiles).content_hash();

  fake.send(MsgType::kSubmitAck, SubmitAckMsg{.client_tag = 1, .job_id = 100}.encode());
  fake.send(MsgType::kFrameBegin, begin_for(1, 8, 8, tiles, good ^ 1).encode());
  fake.send(MsgType::kFrameTile, tiles[0].encode());
  fake.send(MsgType::kFrameEnd, FrameEndMsg{.client_tag = 1}.encode());

  (void)fake.client.submit({}, plain_submit());
  EXPECT_THROW((void)fake.client.await_frame(), ProtocolError);
}

TEST(NetClient, RejectsTileOutsideFramebuffer) {
  FakeServer fake;
  fake.open(8, 8);
  const FrameTileMsg tile = make_tile(4, 4, 8, 4, 1.0f);  // spills right

  fake.send(MsgType::kSubmitAck, SubmitAckMsg{.client_tag = 1, .job_id = 100}.encode());
  fake.send(MsgType::kFrameBegin, begin_for(1, 8, 8, {tile}, 0).encode());
  fake.send(MsgType::kFrameTile, tile.encode());
  fake.send(MsgType::kFrameEnd, FrameEndMsg{.client_tag = 1}.encode());

  (void)fake.client.submit({}, plain_submit());
  EXPECT_THROW((void)fake.client.await_frame(), ProtocolError);
}

// --------------------------------------------------- loopback layer ------

TEST(NetLoopback, FirstFrameMatchesInProcessEngineBitwise) {
  const auto config = small_config();
  const auto dnc = small_dnc();
  const FieldSpec spec = vortex_spec();
  const auto field = spec.make_field();
  const auto spots = test_spots(config, spec.domain);

  // The reference: a fresh in-process engine on the same scene.
  core::DncSynthesizer solo(config, dnc);
  solo.synthesize(*field, spots);

  FrameServer server(loopback_options());
  auto [client_end, server_end] = Socket::pair();
  server.adopt(std::move(server_end));
  FrameClient client(std::move(client_end));
  const auto opened = client.open_session(spec, config, dnc);
  EXPECT_EQ(opened.width, config.texture_width);
  EXPECT_EQ(opened.height, config.texture_height);

  (void)client.submit(spots, plain_submit());
  const FrameClient::FrameResult result = client.await_frame();
  EXPECT_TRUE(result.full);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.content_hash, solo.texture().content_hash());
  EXPECT_TRUE(client.framebuffer() == solo.texture());
  server.stop();
}

TEST(NetLoopback, DeltaFramesStayBitExactAndTransmitLess) {
  const auto config = small_config();
  const auto dnc = small_dnc();
  const FieldSpec spec = vortex_spec();
  const auto field = spec.make_field();
  auto spots = test_spots(config, spec.domain);

  FrameServer server(loopback_options());
  auto [client_end, server_end] = Socket::pair();
  server.adopt(std::move(server_end));
  FrameClient client(std::move(client_end));
  (void)client.open_session(spec, config, dnc);

  (void)client.submit(spots, plain_submit());
  const auto first = client.await_frame();
  ASSERT_TRUE(first.full);

  // Nudge one spot: the delta must cover its old and new extent and leave
  // everything else untransmitted — yet reassemble bit-identically to a
  // fresh full engine run on the moved population.
  spots[17].position.x += 0.05;
  spots[17].position.y -= 0.03;
  (void)client.submit(spots, plain_submit());
  const auto second = client.await_frame();
  EXPECT_FALSE(second.full);
  EXPECT_GT(second.tiles, 0);
  EXPECT_LT(second.tiles, first.tiles);
  EXPECT_LT(second.wire_bytes, first.wire_bytes);

  core::DncSynthesizer solo(config, dnc);
  solo.synthesize(*field, spots);
  EXPECT_EQ(second.content_hash, solo.texture().content_hash());
  EXPECT_TRUE(client.framebuffer() == solo.texture());

  // An unchanged population transmits zero tiles and still verifies.
  (void)client.submit(spots, plain_submit());
  const auto third = client.await_frame();
  EXPECT_FALSE(third.full);
  EXPECT_EQ(third.tiles, 0);
  EXPECT_TRUE(client.framebuffer() == solo.texture());
  server.stop();
}

TEST(NetLoopback, RejectedDeadlineSurfacesAsJobError) {
  const auto config = small_config();
  const auto dnc = small_dnc();
  const FieldSpec spec = vortex_spec();
  const auto spots = test_spots(config, spec.domain);

  FrameServer server(loopback_options());
  auto [client_end, server_end] = Socket::pair();
  server.adopt(std::move(server_end));
  FrameClient client(std::move(client_end));
  (void)client.open_session(spec, config, dnc);

  // Frame 1 calibrates the session's PerfModel so admission can predict.
  (void)client.submit(spots, plain_submit());
  (void)client.await_frame();

  net::ClientSubmitOptions impossible = plain_submit();
  impossible.deadline_seconds = 1e-9;
  impossible.policy = core::SubmitOptions::DeadlinePolicy::kReject;
  (void)client.submit(spots, impossible);
  try {
    (void)client.await_frame();
    FAIL() << "expected ServerJobError";
  } catch (const net::ServerJobError& e) {
    EXPECT_EQ(e.code(), net::JobErrorCode::kRejected);
  }
  server.stop();
  EXPECT_GE(server.service().health().rejected, 1);
}

TEST(NetLoopback, HealthAndCancelRoundTrip) {
  const auto config = small_config();
  const auto dnc = small_dnc();
  const FieldSpec spec = vortex_spec();
  const auto spots = test_spots(config, spec.domain);

  FrameServer server(loopback_options());
  auto [client_end, server_end] = Socket::pair();
  server.adopt(std::move(server_end));
  FrameClient client(std::move(client_end));
  (void)client.open_session(spec, config, dnc);

  (void)client.submit(spots, plain_submit());
  (void)client.await_frame();
  const net::HealthRespMsg h = client.health();
  EXPECT_GE(h.completed, 1);
  EXPECT_EQ(h.open_sessions, 1);

  // Cancel a later submit: the job either completes first (a frame) or is
  // canceled (a kJobError with kCanceled) — both are valid outcomes; what
  // must not happen is silence or a mis-coded error.
  const std::uint64_t tag = client.submit(spots, plain_submit());
  client.cancel(client.job_id_for(tag));
  try {
    const auto result = client.await_frame();
    EXPECT_EQ(result.client_tag, tag);
  } catch (const net::ServerJobError& e) {
    EXPECT_EQ(e.code(), net::JobErrorCode::kCanceled);
  }
  server.stop();
}

TEST(NetLoopback, GracefulDrainDeliversEverySubmittedFrame) {
  // Over a real AF_UNIX path (listen/accept, not socketpair). stop() is
  // called with three frames submitted and undelivered; the drain contract
  // says all three still arrive, verified, before the connection closes.
  const auto config = small_config();
  const auto dnc = small_dnc();
  const FieldSpec spec = vortex_spec();
  const auto spots = test_spots(config, spec.domain);

  const std::string path = "dcsn_test_net_drain.sock";
  FrameServerOptions options = loopback_options();
  options.socket_path = path;
  FrameServer server(options);

  FrameClient client(path);
  (void)client.open_session(spec, config, dnc);
  std::uint64_t last_tag = 0;
  for (int i = 0; i < 3; ++i) last_tag = client.submit(spots, plain_submit());
  // Make sure the server has accepted all three (the ack proves the submit
  // was enqueued) before the drain starts, so none race the half-close.
  (void)client.job_id_for(last_tag);

  server.stop();

  std::uint64_t prev_hash = 0;
  for (int i = 0; i < 3; ++i) {
    const auto result = client.await_frame();
    if (i > 0) {
      EXPECT_EQ(result.content_hash, prev_hash);  // same scene every frame
    }
    prev_hash = result.content_hash;
  }
  EXPECT_THROW((void)client.await_frame(), net::ConnectionClosed);
  std::remove(path.c_str());
}

TEST(NetLoopback, ServerSurvivesGarbageAndReportsError) {
  FrameServer server(loopback_options());
  auto [raw, server_end] = Socket::pair();
  server.adopt(std::move(server_end));

  // A syntactically valid frame carrying an undecodable payload.
  const std::vector<std::uint8_t> junk(16, 0xEE);
  net::send_message(raw, MsgType::kOpenSession, junk);

  MsgType type{};
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(net::read_message(raw, &type, &payload));
  EXPECT_EQ(type, MsgType::kError);
  // After reporting, the server drops the connection: clean EOF.
  EXPECT_FALSE(net::read_message(raw, &type, &payload));
  server.stop();
}

TEST(NetLoopback, ServerSurvivesAbruptClientDisconnect) {
  const auto config = small_config();
  const auto dnc = small_dnc();
  const FieldSpec spec = vortex_spec();
  const auto spots = test_spots(config, spec.domain);

  FrameServer server(loopback_options());
  {
    auto [client_end, server_end] = Socket::pair();
    server.adopt(std::move(server_end));
    FrameClient client(std::move(client_end));
    (void)client.open_session(spec, config, dnc);
    (void)client.submit(spots, plain_submit());
    // Client destructor closes the socket with a frame still in flight.
  }
  server.stop();  // must not hang or crash; the pump observed the dead peer
  EXPECT_TRUE(server.service().health().sessions.empty());
}

}  // namespace
