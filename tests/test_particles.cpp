// Unit tests for particle advection, streamline tracing, the particle
// system life cycle, and seeding strategies.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "field/analytic.hpp"
#include "particles/integrators.hpp"
#include "particles/particle_system.hpp"
#include "particles/seeding.hpp"
#include "particles/tracer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Rect;
using field::Vec2;

// ------------------------------------------------------------ integrators ---

TEST(Integrators, EulerStepMatchesDefinition) {
  const auto f = field::analytic::uniform({2.0, 1.0}, Rect{0, 0, 10, 10});
  const Vec2 p = particles::euler_step(*f, {1.0, 1.0}, 0.5);
  EXPECT_NEAR(p.x, 2.0, 1e-12);
  EXPECT_NEAR(p.y, 1.5, 1e-12);
}

TEST(Integrators, AllMethodsExactForUniformFlow) {
  const auto f = field::analytic::uniform({1.0, -2.0}, Rect{-10, -10, 10, 10});
  const Vec2 start{0.0, 0.0};
  for (const auto method : {particles::Integrator::kEuler, particles::Integrator::kRk2,
                            particles::Integrator::kRk4}) {
    const Vec2 p = particles::step(*f, start, 0.25, method);
    EXPECT_NEAR(p.x, 0.25, 1e-12);
    EXPECT_NEAR(p.y, -0.5, 1e-12);
  }
}

// On a rigid vortex the exact trajectory is a circle; integrator order shows
// in how well the radius is conserved over a full revolution.
double radius_drift(particles::Integrator method, int steps) {
  const Rect domain{-2, -2, 2, 2};
  const auto f = field::analytic::rigid_vortex({0, 0}, 1.0, domain);
  const double dt = 2.0 * std::numbers::pi / steps;
  Vec2 p{1.0, 0.0};
  for (int k = 0; k < steps; ++k) p = particles::step(*f, p, dt, method);
  return std::abs(p.length() - 1.0);
}

TEST(Integrators, OrderOnCircularOrbit) {
  const double euler = radius_drift(particles::Integrator::kEuler, 200);
  const double rk2 = radius_drift(particles::Integrator::kRk2, 200);
  const double rk4 = radius_drift(particles::Integrator::kRk4, 200);
  EXPECT_LT(rk2, euler / 10.0);
  EXPECT_LT(rk4, rk2 / 10.0);
  EXPECT_LT(rk4, 1e-6);
}

TEST(Integrators, Rk4ConvergenceRate) {
  // Halving the step size should cut the error by about 2^4.
  const double coarse = radius_drift(particles::Integrator::kRk4, 100);
  const double fine = radius_drift(particles::Integrator::kRk4, 200);
  EXPECT_LT(fine, coarse / 8.0);  // allow slack below the ideal 16x
}

// ----------------------------------------------------------------- tracer ---

TEST(Tracer, UniformFlowGivesEvenlySpacedStraightLine) {
  const auto f = field::analytic::uniform({3.0, 0.0}, Rect{0, 0, 100, 10});
  particles::TracerConfig config;
  config.step_length = 1.0;
  const particles::StreamlineTracer tracer(config);
  const auto line = tracer.trace(*f, {50.0, 5.0}, 5, 5);
  ASSERT_EQ(line.size(), 11u);
  EXPECT_EQ(line.seed_index, 5u);
  for (std::size_t k = 0; k < line.size(); ++k) {
    EXPECT_NEAR(line.points[k].x, 45.0 + static_cast<double>(k), 1e-9);
    EXPECT_NEAR(line.points[k].y, 5.0, 1e-12);
    EXPECT_NEAR(line.tangents[k].x, 1.0, 1e-12);  // unit flow direction
  }
}

TEST(Tracer, ArcLengthIndependentOfSpeed) {
  // Same geometry at 100x the speed: spatial streamline must not change.
  const Rect domain{0, 0, 100, 10};
  const auto slow = field::analytic::uniform({0.03, 0.0}, domain);
  const auto fast = field::analytic::uniform({3.0, 0.0}, domain);
  particles::TracerConfig config;
  config.step_length = 0.5;
  const particles::StreamlineTracer tracer(config);
  const auto a = tracer.trace(*slow, {50.0, 5.0}, 8, 0);
  const auto b = tracer.trace(*fast, {50.0, 5.0}, 8, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a.points[k].x, b.points[k].x, 1e-9);
  }
}

TEST(Tracer, FollowsCircularStreamline) {
  const auto f = field::analytic::rigid_vortex({0, 0}, 1.0, Rect{-2, -2, 2, 2});
  particles::TracerConfig config;
  config.step_length = 0.01;
  const particles::StreamlineTracer tracer(config);
  const auto line = tracer.trace(*f, {1.0, 0.0}, 300, 0);
  // Every point stays on the unit circle.
  for (const Vec2& p : line.points) EXPECT_NEAR(p.length(), 1.0, 1e-6);
  // 300 steps of 0.01 should cover an arc of about 3 radians.
  const double angle = std::atan2(line.points.back().y, line.points.back().x);
  EXPECT_NEAR(angle, 3.0, 0.01);
}

TEST(Tracer, StopsAtDomainBoundary) {
  const auto f = field::analytic::uniform({1.0, 0.0}, Rect{0, 0, 10, 10});
  particles::TracerConfig config;
  config.step_length = 1.0;
  const particles::StreamlineTracer tracer(config);
  const auto line = tracer.trace(*f, {8.5, 5.0}, 10, 0);
  // Can take at most 1 step (to 9.5) before the next leaves the domain.
  EXPECT_LE(line.size(), 3u);
  for (const Vec2& p : line.points) EXPECT_LE(p.x, 10.0);
}

TEST(Tracer, StopsAtStagnationPoint) {
  const auto f = field::analytic::saddle({5.0, 5.0}, 1.0, Rect{0, 0, 10, 10});
  particles::TracerConfig config;
  config.step_length = 0.5;
  const particles::StreamlineTracer tracer(config);
  // Seed exactly on the critical point: no motion possible.
  const auto line = tracer.trace(*f, {5.0, 5.0}, 10, 10);
  EXPECT_EQ(line.size(), 1u);
  EXPECT_EQ(line.seed_index, 0u);
}

TEST(Tracer, BackwardPointsPrecedeSeed) {
  const auto f = field::analytic::uniform({1.0, 0.0}, Rect{0, 0, 100, 10});
  particles::TracerConfig config;
  config.step_length = 1.0;
  const particles::StreamlineTracer tracer(config);
  const auto line = tracer.trace(*f, {50.0, 5.0}, 2, 3);
  ASSERT_EQ(line.size(), 6u);
  EXPECT_EQ(line.seed_index, 3u);
  // Points must be ordered upstream -> downstream.
  for (std::size_t k = 1; k < line.size(); ++k)
    EXPECT_GT(line.points[k].x, line.points[k - 1].x);
}

// --------------------------------------------------------- ParticleSystem ---

particles::ParticleSystemConfig small_config() {
  particles::ParticleSystemConfig config;
  config.count = 500;
  config.mean_lifetime = 2.0;
  return config;
}

TEST(ParticleSystem, PopulatesDomainUniformly) {
  const Rect domain{0, 0, 4, 2};
  particles::ParticleSystem system(small_config(), domain, util::Rng(1));
  double mean_x = 0.0, mean_y = 0.0;
  for (const auto& p : system.particles()) {
    EXPECT_TRUE(domain.contains(p.position));
    mean_x += p.position.x;
    mean_y += p.position.y;
  }
  const auto n = static_cast<double>(system.particles().size());
  EXPECT_NEAR(mean_x / n, 2.0, 0.15);
  EXPECT_NEAR(mean_y / n, 1.0, 0.1);
}

TEST(ParticleSystem, AdvectsWithTheFlow) {
  const Rect domain{0, 0, 100, 100};
  const auto f = field::analytic::uniform({1.0, 2.0}, domain);
  particles::ParticleSystemConfig config = small_config();
  config.mean_lifetime = 1e9;  // effectively immortal for this test
  particles::ParticleSystem system(config, domain, util::Rng(2));
  const auto before = std::vector<particles::Particle>(
      system.particles().begin(), system.particles().end());
  system.advance(*f, 0.25);
  auto after = system.particles();
  int moved_correctly = 0;
  for (std::size_t k = 0; k < after.size(); ++k) {
    if (!domain.contains(before[k].position + Vec2{0.25, 0.5})) continue;
    if (std::abs(after[k].position.x - before[k].position.x - 0.25) < 1e-9 &&
        std::abs(after[k].position.y - before[k].position.y - 0.5) < 1e-9)
      ++moved_correctly;
  }
  EXPECT_GT(moved_correctly, 450);
}

TEST(ParticleSystem, RespawnsDeadParticles) {
  const Rect domain{0, 0, 10, 10};
  const auto f = field::analytic::uniform({0.0, 0.0}, domain);
  particles::ParticleSystemConfig config = small_config();
  config.mean_lifetime = 1.0;
  particles::ParticleSystem system(config, domain, util::Rng(3));
  // After advancing well past the max lifetime every particle has respawned
  // at least once, so all ages must be below the elapsed time.
  for (int step = 0; step < 40; ++step) system.advance(*f, 0.1);
  for (const auto& p : system.particles()) {
    EXPECT_LT(p.age, p.lifetime);
    EXPECT_TRUE(domain.contains(p.position));
  }
}

TEST(ParticleSystem, RespawnsEscapedParticles) {
  const Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::uniform({50.0, 0.0}, domain);  // blows out fast
  particles::ParticleSystem system(small_config(), domain, util::Rng(4));
  system.advance(*f, 0.1);  // everything leaves, everything respawns
  for (const auto& p : system.particles()) {
    EXPECT_TRUE(domain.contains(p.position));
    EXPECT_EQ(p.age, 0.0);  // respawn resets the age after the advection step
  }
}

TEST(ParticleSystem, FadeWeightEnvelope) {
  particles::Particle p;
  p.lifetime = 1.0;
  const double fade = 0.25;
  p.age = 0.0;
  EXPECT_NEAR(particles::ParticleSystem::fade_weight(p, fade), 0.0, 1e-12);
  p.age = 0.125;  // halfway through fade-in: sin^2(pi/4) = 1/2
  EXPECT_NEAR(particles::ParticleSystem::fade_weight(p, fade), 0.5, 1e-12);
  p.age = 0.5;
  EXPECT_NEAR(particles::ParticleSystem::fade_weight(p, fade), 1.0, 1e-12);
  p.age = 1.0;
  EXPECT_NEAR(particles::ParticleSystem::fade_weight(p, fade), 0.0, 1e-12);
}

TEST(ParticleSystem, FadeWeightZeroFractionIsConstant) {
  particles::Particle p;
  p.lifetime = 2.0;
  p.age = 0.0;
  EXPECT_DOUBLE_EQ(particles::ParticleSystem::fade_weight(p, 0.0), 1.0);
  p.age = 1.999;
  EXPECT_DOUBLE_EQ(particles::ParticleSystem::fade_weight(p, 0.0), 1.0);
}

TEST(ParticleSystem, DeterministicAcrossThreadCounts) {
  // advance() uses per-particle hash streams, so OMP_NUM_THREADS must not
  // change the result. We emulate by running the same scenario twice (OpenMP
  // scheduling differs run to run when threads > 1).
  const Rect domain{0, 0, 10, 10};
  const auto f = field::analytic::rigid_vortex({5, 5}, 1.0, domain);
  particles::ParticleSystemConfig config = small_config();
  config.mean_lifetime = 0.5;  // force many respawns
  particles::ParticleSystem a(config, domain, util::Rng(7));
  particles::ParticleSystem b(config, domain, util::Rng(7));
  for (int step = 0; step < 20; ++step) {
    a.advance(*f, 0.1);
    b.advance(*f, 0.1);
  }
  auto pa = a.particles();
  auto pb = b.particles();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t k = 0; k < pa.size(); ++k) {
    EXPECT_EQ(pa[k].position.x, pb[k].position.x);
    EXPECT_EQ(pa[k].intensity, pb[k].intensity);
    EXPECT_EQ(pa[k].age, pb[k].age);
  }
}

TEST(ParticleSystem, RejectsBadConfig) {
  particles::ParticleSystemConfig config;
  config.count = 0;
  EXPECT_THROW(particles::ParticleSystem(config, Rect{0, 0, 1, 1}, util::Rng(1)),
               util::Error);
  config.count = 10;
  config.fade_fraction = 0.6;
  EXPECT_THROW(particles::ParticleSystem(config, Rect{0, 0, 1, 1}, util::Rng(1)),
               util::Error);
}

// ---------------------------------------------------------------- seeding ---

TEST(Seeding, UniformCoversDomain) {
  util::Rng rng(11);
  const Rect domain{1, 2, 3, 4};
  const auto pts = particles::seed_uniform(domain, 1000, rng);
  ASSERT_EQ(pts.size(), 1000u);
  for (const Vec2& p : pts) EXPECT_TRUE(domain.contains(p));
}

TEST(Seeding, JitteredGridExactCountAndCoverage) {
  util::Rng rng(12);
  const Rect domain{0, 0, 2, 1};
  const auto pts = particles::seed_jittered_grid(domain, 777, rng);
  ASSERT_EQ(pts.size(), 777u);
  for (const Vec2& p : pts) EXPECT_TRUE(domain.contains(p));
  // Stratification: split the domain in 4 quadrants, each should hold ~1/4.
  int q = 0;
  for (const Vec2& p : pts)
    if (p.x < 1.0 && p.y < 0.5) ++q;
  EXPECT_NEAR(q, 777 / 4, 40);
}

TEST(Seeding, HaltonIsDeterministicAndLowDiscrepancy) {
  const Rect domain{0, 0, 1, 1};
  const auto a = particles::seed_halton(domain, 100);
  const auto b = particles::seed_halton(domain, 100);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  // The offset continues the sequence.
  const auto c = particles::seed_halton(domain, 50, 50);
  for (std::size_t k = 0; k < c.size(); ++k) EXPECT_EQ(c[k], a[k + 50]);
}

TEST(Seeding, ZeroCountIsEmpty) {
  util::Rng rng(13);
  EXPECT_TRUE(particles::seed_uniform(Rect{0, 0, 1, 1}, 0, rng).empty());
  EXPECT_TRUE(particles::seed_jittered_grid(Rect{0, 0, 1, 1}, 0, rng).empty());
  EXPECT_TRUE(particles::seed_halton(Rect{0, 0, 1, 1}, 0).empty());
}

}  // namespace
