// Fault-matrix torture suite (ctest label `faults`; scripts/verify.sh
// --faults runs it, also under TSan/ASan).
//
// Exercises the deterministic fault-injection layer end to end:
//
//   * FaultInjector unit pins — pure decisions, scheduling-site demotion.
//   * Engine matrix — every injection site × {throw, delay}: the engine
//     survives, recovered frames are bitwise identical to a fault-free run,
//     and the FramebufferPool census (outstanding minus live TileStore
//     entries) is conserved — no leak on any failure path.
//   * Service matrix — every site × {throw, delay} × {drain, cancel}
//     shutdown: no deadlock, every future resolves, census conserved after
//     teardown.
//   * Deadline machinery — virtual-deadline timeouts, degraded stale
//     serves, retry/backoff on the virtual clock, the circuit breaker's
//     open → half-open → closed walk, and the wall-mode watchdog.
//   * Replay — the same seed drives the same torture twice and the service
//     health totals must match counter for counter.
//
// Everything here is deterministic given the seed (see
// core/fault_injector.hpp): the rates below are tuned so the seeded
// schedules pass, and because the schedules are pure hashes they pass
// identically on every host.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/fault_injector.hpp"
#include "core/runtime.hpp"
#include "core/service_clock.hpp"
#include "core/spot_source.hpp"
#include "core/synthesis_service.hpp"
#include "field/analytic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;
using core::FaultInjector;
using core::FaultPlan;
using core::FaultRule;
using core::FaultSite;
using core::SynthesisService;
using field::Rect;

constexpr Rect kDomain{0, 0, 2, 2};

core::SynthesisConfig small_config(std::uint64_t seed = 42) {
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.spot_count = 160;
  config.spot_radius_px = 5.0;
  config.kind = core::SpotKind::kEllipse;
  config.seed = seed;
  return config;
}

core::DncConfig tiled_dnc() {
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 2;
  dnc.chunk_spots = 16;
  dnc.tiled = true;
  dnc.tile_cache = true;
  return dnc;
}

/// A field whose sampling spins for `delay_per_sample` wall seconds. Slow
/// producers are what starve a master into its timed inbox wait (the
/// kQueuePop site): the producer registers its delivery as in-flight
/// *before* generating, so the master sees inflight > 0 with nothing to do.
std::unique_ptr<field::VectorField> spinning_field(double delay_per_sample) {
  return std::make_unique<field::CallableField>(
      [delay_per_sample](field::Vec2 p) -> field::Vec2 {
        const util::Stopwatch w;
        while (w.seconds() < delay_per_sample) {
        }
        return {0.2 * p.y + 0.1, -0.2 * p.x + 0.1};
      },
      kDomain, 1.0);
}

std::vector<core::SpotInstance> frame_spots(const core::SynthesisConfig& config,
                                            int frame) {
  util::Rng rng(config.seed + static_cast<std::uint64_t>(frame) * 1000003ULL);
  auto spots = core::make_random_spots(kDomain, config.spot_count, rng);
  for (auto& spot : spots) spot.intensity *= 0.2;
  return spots;
}

/// The two per-spot sites draw once per spot — 160 draws per frame attempt
/// with small_config — so their rates must stay tiny for an attempt to
/// survive often enough to converge under a small retry budget.
bool per_spot_site(FaultSite site) {
  return site == FaultSite::kPipeSubmit || site == FaultSite::kFieldSample;
}

/// Throw rate per site, scaled to how often the site fires per frame (per
/// spot vs per tile) so a frame attempt survives often enough to converge
/// under a small retry budget.
double throw_rate_for(FaultSite site) {
  switch (site) {
    case FaultSite::kWorkerPickup:
    case FaultSite::kQueuePop:
      return 0.2;  // demoted to drops; can be aggressive
    case FaultSite::kPipeSubmit:
    case FaultSite::kFieldSample:
      return 0.004;  // fires per spot (160/frame): ~47% attempt survival
    case FaultSite::kStoreProbe:
    case FaultSite::kStorePublish:
      return 0.3;  // contained: degrades to miss/skip, never fails a frame
    case FaultSite::kFramebufferCheckout:
      return 0.15;  // per tile, mandatory path fails the frame
  }
  return 0.05;
}

FaultPlan single_site_plan(FaultSite site, bool delay_mode,
                           std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule& rule = plan.rule(site);
  if (delay_mode) {
    // Per-spot sites accumulate ~160 draws a frame; keep the expected
    // injected delay (~6 virtual seconds) under the service matrix's 40 s
    // budget so delay-mode frames still complete and pin the bit-exact
    // recovery path.
    rule.delay_rate = per_spot_site(site) ? 0.04 : 0.5;
    rule.delay_seconds = 1.0;  // one virtual second per hit
  } else {
    rule.throw_rate = throw_rate_for(site);
  }
  return plan;
}

/// FramebufferPool census: buffers checked out minus the ones parked in
/// live TileStore entries (published tiles own their pool buffer until
/// eviction recycles it). Conserved across any torture.
std::int64_t census(core::Runtime& runtime) {
  return runtime.framebuffers().outstanding_count() -
         runtime.tile_store().stats().entries;
}

// ------------------------------------------------- injector unit pins -----

TEST(FaultInjector, DecisionsArePureFunctionsOfSeedSiteAndKey) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rule(FaultSite::kFieldSample) = {0.2, 0.2, 0.2, 0.5, 0};
  FaultInjector a(plan);
  FaultInjector b(plan);
  int injected = 0;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const auto action = a.decide(FaultSite::kFieldSample, key);
    EXPECT_EQ(action, b.decide(FaultSite::kFieldSample, key));
    // Repeat visits with the same key decide identically: no hidden state.
    EXPECT_EQ(action, a.decide(FaultSite::kFieldSample, key));
    injected += action != FaultInjector::Action::kNone ? 1 : 0;
  }
  // ~60% of draws should hit something; allow a generous band.
  EXPECT_GT(injected, 1000);
  EXPECT_LT(injected, 1500);
}

TEST(FaultInjector, CheckChargesVirtualPenaltyAndThrows) {
  FaultPlan plan;
  plan.seed = 11;
  plan.rule(FaultSite::kPipeSubmit) = {1.0, 0.0, 0.0, 0.0, 0};
  plan.rule(FaultSite::kFieldSample) = {0.0, 1.0, 0.0, 0.25, 0};
  FaultInjector injector(plan);
  EXPECT_THROW(injector.check(FaultSite::kPipeSubmit, 1), core::FaultInjected);
  std::atomic<std::int64_t> penalty{0};
  EXPECT_EQ(injector.check(FaultSite::kFieldSample, 1, &penalty),
            FaultInjector::Action::kDelay);
  EXPECT_EQ(penalty.load(), 250'000'000);  // 0.25 virtual seconds in ns
  const auto counters = injector.counters();
  EXPECT_EQ(counters.throws[static_cast<std::size_t>(FaultSite::kPipeSubmit)], 1);
  EXPECT_EQ(counters.delays[static_cast<std::size_t>(FaultSite::kFieldSample)], 1);
  EXPECT_EQ(counters.total_injected(), 2);
}

TEST(FaultInjector, SchedulingSitesNeverThrow) {
  FaultPlan plan;
  plan.seed = 13;
  plan.rule(FaultSite::kWorkerPickup) = {1.0, 0.0, 0.0, 0.0, 0};  // all throws
  FaultInjector injector(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NO_THROW({
      const auto action = injector.check_scheduling(FaultSite::kWorkerPickup);
      EXPECT_EQ(action, FaultInjector::Action::kDrop) << "throw must demote";
    });
  }
  const auto counters = injector.counters();
  EXPECT_EQ(counters.drops[static_cast<std::size_t>(FaultSite::kWorkerPickup)],
            200);
  EXPECT_EQ(counters.throws[static_cast<std::size_t>(FaultSite::kWorkerPickup)],
            0);
}

// ------------------------------------------------------ engine matrix -----

/// Runs `kFrames` frames against an engine with the given single-site plan,
/// retrying failed attempts with a fresh per-attempt fault key (the same
/// re-keying the service performs). Asserts bit-exact recovery and census
/// conservation.
void run_engine_case(FaultSite site, bool delay_mode) {
  SCOPED_TRACE(std::string(core::fault_site_name(site)) +
               (delay_mode ? " / delay" : " / throw"));
  constexpr int kFrames = 4;
  const auto config = small_config();
  core::DncConfig dnc = tiled_dnc();
  int pool_workers = 3;
  std::unique_ptr<field::VectorField> field;
  if (site == FaultSite::kQueuePop) {
    // The timed inbox wait only runs when a master starves while deliveries
    // are still in flight: tiny chunks claimed instantly but generated
    // slowly by a crowd of producers keep that window open — which also
    // makes this case the stress pin for the master-exit handshake (exit
    // must terminate through injected spurious timeouts without losing a
    // delivery).
    dnc.chunk_spots = 1;
    dnc.pipe_queue_capacity = 2;
    dnc.processors = 4;
    pool_workers = 6;
    field = spinning_field(50e-6);
  } else {
    field = field::analytic::taylor_green(1.0, kDomain);
  }

  // Fault-free baseline, fresh runtime so no cross-pollination.
  std::array<std::uint64_t, kFrames> expected{};
  {
    core::Runtime clean_runtime({.workers = pool_workers});
    core::DncSynthesizer clean(config, dnc, clean_runtime);
    for (int f = 0; f < kFrames; ++f) {
      (void)clean.synthesize(*field, frame_spots(config, f));
      expected[static_cast<std::size_t>(f)] = clean.texture().content_hash();
    }
  }

  auto injector = std::make_shared<FaultInjector>(single_site_plan(
      site, delay_mode, 0xfa11ULL + static_cast<std::uint64_t>(site)));
  core::Runtime runtime({.workers = pool_workers, .fault_injector = injector});
  core::DncSynthesizer engine(config, dnc, runtime);
  const std::int64_t census0 = census(runtime);

  core::FrameControl control;  // infinite deadline: delays never time out
  for (int f = 0; f < kFrames; ++f) {
    bool done = false;
    for (int attempt = 0; attempt < 10 && !done; ++attempt) {
      control.fault_key =
          static_cast<std::uint64_t>(f) * 131ULL +
          static_cast<std::uint64_t>(attempt) + 1;
      engine.bind_frame_control(&control);
      try {
        (void)engine.synthesize(*field, frame_spots(config, f));
        done = true;
      } catch (const core::FaultInjected&) {
        // The engine's frame-failure protocol rearmed it; re-key and retry.
      }
      engine.bind_frame_control(nullptr);
    }
    ASSERT_TRUE(done) << "frame " << f << " exhausted its retry budget";
    EXPECT_EQ(engine.texture().content_hash(),
              expected[static_cast<std::size_t>(f)])
        << "recovered frame " << f << " must be bitwise fault-free";
  }

  EXPECT_EQ(census(runtime), census0)
      << "framebuffer leak through the failure paths";

  // Non-vacuity. Outcome sites fire as a pure function of the workload, so
  // kFrames frames either hit them or never will. Scheduling sites fire
  // only when the racy window they model actually opens (a starved master,
  // a worker pickup), which depends on the interleaving — if the main
  // frames never opened it, force it open structurally instead of
  // replaying the same schedule and hoping. One group, two wide chunks,
  // tile cache off (a cache hit generates nothing and so can never
  // starve): a single pool producer's register->generate->deliver cycle
  // then spans half the frame, so the master reliably runs dry while a
  // delivery is still in flight. (A 1-core TSan run can starve the
  // tiny-chunk config above out of the window for entire frames at a
  // time, which is exactly the case this fallback exists for.)
  const auto site_evaluations = [&] {
    return injector->counters().evaluations[static_cast<std::size_t>(site)];
  };
  const bool scheduling_site =
      site == FaultSite::kWorkerPickup || site == FaultSite::kQueuePop;
  if (scheduling_site && site_evaluations() == 0) {
    core::DncConfig wide = dnc;
    wide.pipes = 1;
    wide.processors = 2;
    wide.chunk_spots = config.spot_count / 2;
    wide.tile_cache = false;
    const auto slow = spinning_field(100e-6);
    core::DncSynthesizer starved(config, wide, runtime);
    for (int extra = 0; extra < 200 && site_evaluations() == 0; ++extra) {
      control.fault_key = 0x5c3dULL + static_cast<std::uint64_t>(extra);
      starved.bind_frame_control(&control);
      (void)starved.synthesize(*slow, frame_spots(config, 0));
      starved.bind_frame_control(nullptr);
    }
  }
  EXPECT_GT(site_evaluations(), 0) << "vacuous case: the site never fired";
  EXPECT_EQ(census(runtime), census0);
}

TEST(FaultMatrix, EngineEverySiteThrowMode) {
  for (int s = 0; s < core::kFaultSiteCount; ++s) {
    run_engine_case(static_cast<FaultSite>(s), /*delay_mode=*/false);
  }
}

TEST(FaultMatrix, EngineEverySiteDelayMode) {
  for (int s = 0; s < core::kFaultSiteCount; ++s) {
    run_engine_case(static_cast<FaultSite>(s), /*delay_mode=*/true);
  }
}

// ----------------------------------------------------- service matrix -----

/// One service torture: two sessions, a few frames each, retries on, then
/// the requested shutdown flavor. Returns resolved-outcome counts.
struct TortureTally {
  int completed = 0;
  int degraded = 0;
  int canceled = 0;
  int timed_out = 0;
  int failed = 0;
};

TortureTally run_service_case(core::Runtime& runtime,
                              core::VirtualServiceClock& clock, bool drain,
                              const std::array<std::uint64_t, 2>& expected_hash,
                              bool finite_deadlines) {
  core::ServiceConfig config;
  config.drivers = 2;
  config.virtual_clock = &clock;
  config.admission_control = false;  // keep dispatch triage out of replay
  config.watchdog_interval_seconds = 0.0;
  TortureTally tally;
  const auto field = field::analytic::taylor_green(1.0, kDomain);
  {
    SynthesisService service(config, runtime);
    std::array<SynthesisService::SessionId, 2> ids{};
    for (int s = 0; s < 2; ++s) {
      ids[static_cast<std::size_t>(s)] = service.open_session(
          small_config(42 + static_cast<std::uint64_t>(s)), tiled_dnc());
    }
    std::vector<SynthesisService::JobTicket> tickets;
    for (int f = 0; f < 3; ++f) {
      for (int s = 0; s < 2; ++s) {
        core::SynthesisRequest req;
        req.field = field.get();
        req.spots = frame_spots(small_config(42 + static_cast<std::uint64_t>(s)),
                                0);  // frame 0 scene: hash known per session
        core::SubmitOptions opt;
        opt.max_retries = 3;
        opt.backoff_seconds = 0.01;
        if (finite_deadlines) {
          opt.deadline_seconds = 40.0;  // virtual seconds of delay budget
          opt.policy = s == 0 ? core::SubmitOptions::DeadlinePolicy::kStrict
                              : core::SubmitOptions::DeadlinePolicy::kDegrade;
        }
        tickets.push_back(
            service.submit(ids[static_cast<std::size_t>(s)], std::move(req), opt));
      }
    }
    service.shutdown(drain);
    for (auto& ticket : tickets) {
      const std::size_t session_index = ticket.session == ids[0] ? 0 : 1;
      try {
        const core::SynthesisResult result = ticket.result.get();
        if (result.stats.degraded) {
          ++tally.degraded;
        } else {
          ++tally.completed;
          EXPECT_EQ(result.content_hash, expected_hash[session_index])
              << "completed frame must be bitwise fault-free";
        }
      } catch (const core::JobCanceled&) {
        ++tally.canceled;
      } catch (const core::JobTimedOut&) {
        ++tally.timed_out;
      } catch (const util::Error&) {
        ++tally.failed;
      }
    }
  }
  return tally;
}

void run_service_matrix(bool drain) {
  // Per-session fault-free baseline (frame 0 of each session's scene).
  std::array<std::uint64_t, 2> expected{};
  {
    core::Runtime clean_runtime({.workers = 3});
    const auto field = field::analytic::taylor_green(1.0, kDomain);
    for (int s = 0; s < 2; ++s) {
      const auto config = small_config(42 + static_cast<std::uint64_t>(s));
      core::DncSynthesizer engine(config, tiled_dnc(), clean_runtime);
      (void)engine.synthesize(*field, frame_spots(config, 0));
      expected[static_cast<std::size_t>(s)] = engine.texture().content_hash();
    }
  }
  for (int s = 0; s < core::kFaultSiteCount; ++s) {
    for (const bool delay_mode : {false, true}) {
      const auto site = static_cast<FaultSite>(s);
      SCOPED_TRACE(std::string(core::fault_site_name(site)) +
                   (delay_mode ? " / delay" : " / throw") +
                   (drain ? " / drain" : " / cancel"));
      auto injector = std::make_shared<FaultInjector>(single_site_plan(
          site, delay_mode, 0xbadULL + static_cast<std::uint64_t>(s)));
      core::Runtime runtime({.workers = 3, .fault_injector = injector});
      core::VirtualServiceClock clock;
      const TortureTally tally =
          run_service_case(runtime, clock, drain, expected,
                           /*finite_deadlines=*/delay_mode);
      const int total = tally.completed + tally.degraded + tally.canceled +
                        tally.timed_out + tally.failed;
      EXPECT_EQ(total, 6) << "every future must resolve";
      if (drain) {
        EXPECT_EQ(tally.canceled, 0) << "a drain shutdown runs its backlog";
      }
      // The service (and its engines) are gone: every buffer must be back
      // in the pool or parked in a live tile-store entry.
      EXPECT_EQ(census(runtime), 0)
          << "framebuffer leak through service teardown";
    }
  }
}

TEST(FaultMatrix, ServiceEverySiteBothModesDrainShutdown) {
  run_service_matrix(/*drain=*/true);
}

TEST(FaultMatrix, ServiceEverySiteBothModesCancelShutdown) {
  run_service_matrix(/*drain=*/false);
}

// ------------------------------------------------- deadline machinery -----

TEST(FaultTolerance, RetriesWithVirtualBackoffEventuallyComplete) {
  const auto field = field::analytic::taylor_green(1.0, kDomain);
  const auto config = small_config();
  std::array<std::uint64_t, 4> expected{};
  {
    core::Runtime clean_runtime({.workers = 3});
    core::DncSynthesizer clean(config, tiled_dnc(), clean_runtime);
    for (int f = 0; f < 4; ++f) {
      (void)clean.synthesize(*field, frame_spots(config, f));
      expected[static_cast<std::size_t>(f)] = clean.texture().content_hash();
    }
  }
  FaultPlan plan;
  plan.seed = 0x5eedULL;
  plan.rule(FaultSite::kFieldSample).throw_rate = 0.004;  // per-spot draws
  auto injector = std::make_shared<FaultInjector>(plan);
  core::Runtime runtime({.workers = 3, .fault_injector = injector});
  core::VirtualServiceClock clock;
  core::ServiceConfig service_config;
  service_config.drivers = 1;
  service_config.virtual_clock = &clock;
  service_config.watchdog_interval_seconds = 0.0;
  SynthesisService service(service_config, runtime);
  const auto id = service.open_session(config, tiled_dnc());
  std::vector<SynthesisService::JobTicket> tickets;
  for (int f = 0; f < 4; ++f) {
    core::SynthesisRequest req;
    req.field = field.get();
    req.spots = frame_spots(config, f);
    core::SubmitOptions opt;
    opt.max_retries = 6;
    opt.backoff_seconds = 0.01;
    tickets.push_back(service.submit(id, std::move(req), opt));
  }
  for (std::size_t f = 0; f < tickets.size(); ++f) {
    const core::SynthesisResult result = tickets[f].result.get();
    EXPECT_EQ(result.content_hash, expected[f]);
    EXPECT_FALSE(result.stats.degraded);
  }
  const core::ServiceHealth health = service.health();
  EXPECT_EQ(health.completed, 4);
  EXPECT_GT(health.retries, 0) << "the seeded schedule must force retries";
  EXPECT_EQ(health.failed, 0);
  // Backoff waits ran on the virtual clock, not wall time.
  EXPECT_GE(health.clock_now, 0.01);
}

TEST(FaultTolerance, VirtualDeadlineDegradesThenTimesOutStrict) {
  const auto field = field::analytic::taylor_green(1.0, kDomain);
  const auto config = small_config();
  FaultPlan plan;
  plan.seed = 0xdead1ULL;
  plan.rule(FaultSite::kFieldSample) = {0.0, 1.0, 0.0, 1.0, 0};  // +1s/spot
  auto injector = std::make_shared<FaultInjector>(plan);
  core::Runtime runtime({.workers = 3, .fault_injector = injector});
  core::VirtualServiceClock clock;
  core::ServiceConfig service_config;
  service_config.drivers = 1;
  service_config.virtual_clock = &clock;
  service_config.admission_control = false;
  service_config.watchdog_interval_seconds = 0.0;
  SynthesisService service(service_config, runtime);
  const auto id = service.open_session(config, tiled_dnc());

  // Frame 1: infinite deadline — the injected virtual delays are charged
  // but never enforced, so it completes and becomes the stale frame.
  core::SynthesisRequest first;
  first.field = field.get();
  first.spots = frame_spots(config, 0);
  const std::uint64_t stale_hash =
      service.submit(id, std::move(first)).result.get().content_hash;

  // Frame 2: a budget far below the guaranteed per-chunk penalties, policy
  // kDegrade — the engine times out deterministically and the service
  // serves the stale frame, flagged.
  core::SynthesisRequest second;
  second.field = field.get();
  second.spots = frame_spots(config, 1);
  core::SubmitOptions degrade;
  degrade.deadline_seconds = 3.0;
  degrade.policy = core::SubmitOptions::DeadlinePolicy::kDegrade;
  const core::SynthesisResult served =
      service.submit(id, std::move(second), degrade).result.get();
  EXPECT_TRUE(served.stats.degraded);
  EXPECT_EQ(served.content_hash, stale_hash);
  EXPECT_EQ(served.attempts, 1);

  // Frame 3: same budget under kStrict — the caller gets the timeout.
  core::SynthesisRequest third;
  third.field = field.get();
  third.spots = frame_spots(config, 2);
  core::SubmitOptions strict;
  strict.deadline_seconds = 3.0;
  EXPECT_THROW((void)service.submit(id, std::move(third), strict).result.get(),
               core::JobTimedOut);

  const core::ServiceHealth health = service.health();
  EXPECT_EQ(health.completed, 1);
  EXPECT_EQ(health.degraded, 1);
  EXPECT_EQ(health.timeouts, 1);
}

TEST(FaultTolerance, BreakerOpensHoldsAndReclosesOnHalfOpenProbe) {
  const auto good = field::analytic::taylor_green(1.0, kDomain);
  const auto bad = std::make_unique<field::CallableField>(
      [](field::Vec2 p) -> field::Vec2 {
        if (p.x > 1.0) throw util::Error("poisoned sample");
        return {0.1, 0.2};
      },
      kDomain, 1.0);
  const auto config = small_config();
  core::Runtime runtime({.workers = 3});
  core::VirtualServiceClock clock;
  core::ServiceConfig service_config;
  service_config.drivers = 1;
  service_config.virtual_clock = &clock;
  service_config.breaker_failure_threshold = 3;
  service_config.breaker_cooldown_seconds = 0.25;
  service_config.watchdog_interval_seconds = 0.0;
  SynthesisService service(service_config, runtime);
  const auto id = service.open_session(config, tiled_dnc());
  const auto spots = frame_spots(config, 0);

  std::vector<SynthesisService::JobTicket> doomed;
  for (int k = 0; k < 3; ++k) {
    core::SynthesisRequest req;
    req.field = bad.get();
    req.spots = spots;
    doomed.push_back(service.submit(id, std::move(req)));
  }
  for (auto& ticket : doomed) {
    EXPECT_THROW((void)ticket.result.get(), util::Error);
  }
  // Three consecutive failures opened the breaker. A queued (or newly
  // submitted) good job is *held*, not failed; with a virtual clock the
  // idle driver advances time to the cooldown instant and runs it as the
  // half-open probe. A submit landing while the breaker is still open
  // throws SessionQuarantined — advance the clock and resubmit.
  SynthesisService::JobTicket probe;
  for (;;) {
    core::SynthesisRequest req;
    req.field = good.get();
    req.spots = spots;
    try {
      probe = service.submit(id, std::move(req));
      break;
    } catch (const core::SessionQuarantined&) {
      clock.advance(0.05);
    }
  }
  EXPECT_NO_THROW((void)probe.result.get()) << "half-open probe must run";
  const core::ServiceHealth health = service.health();
  EXPECT_EQ(health.failed, 3);
  EXPECT_EQ(health.breaker_trips, 1);
  EXPECT_EQ(health.completed, 1);
  ASSERT_EQ(health.sessions.size(), 1u);
  EXPECT_EQ(health.sessions[0].breaker, core::BreakerState::kClosed)
      << "a successful probe re-closes the breaker";
  EXPECT_GE(health.clock_now, 0.25) << "the cooldown elapsed on the service clock";
}

TEST(FaultTolerance, WatchdogTimesOutWedgedFrame) {
  // A frame whose chunks stop progressing entirely (every sample sleeps)
  // must be reaped by the wall-mode watchdog, not hold a driver forever.
  const auto wedged = std::make_unique<field::CallableField>(
      [](field::Vec2 p) -> field::Vec2 {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return {0.2 * p.y, -0.2 * p.x};
      },
      kDomain, 1.0);
  auto config = small_config();
  config.spot_count = 400;  // long enough that the stall budget expires
  core::ServiceConfig service_config;
  service_config.drivers = 1;
  service_config.watchdog_interval_seconds = 0.005;
  service_config.watchdog_no_progress_seconds = 0.05;
  SynthesisService service(service_config);
  core::DncConfig dnc;
  dnc.processors = 1;
  dnc.chunk_spots = 200;  // one chunk outlives the no-progress budget
  const auto id = service.open_session(config, dnc);
  core::SynthesisRequest req;
  req.field = wedged.get();
  req.spots = frame_spots(config, 0);
  EXPECT_THROW((void)service.submit(id, std::move(req)).result.get(),
               core::JobTimedOut);
  EXPECT_EQ(service.health().timeouts, 1);
}

// ---------------------------------------------------------- replay --------

TEST(FaultReplay, SameSeedReplaysToIdenticalHealthTotals) {
  // The whole point of the stable-key design: one seed, two complete
  // service tortures (throws + retries + virtual-deadline timeouts), and
  // the health totals — which outcome every job reached — must be equal
  // counter for counter, no matter how differently the threads interleaved.
  const auto field = field::analytic::taylor_green(1.0, kDomain);
  auto run_once = [&]() {
    FaultPlan plan;
    plan.seed = 0x2e9144ULL;
    plan.rule(FaultSite::kFieldSample).throw_rate = 0.004;  // per-spot draws
    plan.rule(FaultSite::kFramebufferCheckout).throw_rate = 0.1;
    plan.rule(FaultSite::kWorkerPickup).drop_rate = 0.2;
    auto injector = std::make_shared<FaultInjector>(plan);
    core::Runtime runtime({.workers = 3, .fault_injector = injector});
    core::VirtualServiceClock clock;
    core::ServiceConfig service_config;
    service_config.drivers = 2;
    service_config.virtual_clock = &clock;
    service_config.admission_control = false;
    service_config.watchdog_interval_seconds = 0.0;
    std::array<std::int64_t, 5> totals{};
    {
      SynthesisService service(service_config, runtime);
      std::array<SynthesisService::SessionId, 2> ids{};
      for (int s = 0; s < 2; ++s) {
        ids[static_cast<std::size_t>(s)] = service.open_session(
            small_config(42 + static_cast<std::uint64_t>(s)), tiled_dnc());
      }
      std::vector<SynthesisService::JobTicket> tickets;
      for (int f = 0; f < 4; ++f) {
        for (int s = 0; s < 2; ++s) {
          core::SynthesisRequest req;
          req.field = field.get();
          req.spots = frame_spots(
              small_config(42 + static_cast<std::uint64_t>(s)), f);
          core::SubmitOptions opt;
          opt.max_retries = 2;
          opt.backoff_seconds = 0.01;
          tickets.push_back(service.submit(ids[static_cast<std::size_t>(s)],
                                           std::move(req), opt));
        }
      }
      service.shutdown(/*drain=*/true);
      for (auto& ticket : tickets) {
        try {
          (void)ticket.result.get();
        } catch (const util::Error&) {
        }
      }
      const core::ServiceHealth health = service.health();
      totals = {health.completed, health.degraded, health.failed,
                health.retries, health.timeouts};
    }
    return totals;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second) << "fault outcomes must be replay-deterministic";
  // Non-vacuous: the schedule actually injected frame failures.
  EXPECT_GT(first[3], 0) << "no retries — the torture was a no-op";
}

}  // namespace
