// Tests for the serial baseline and the divide-and-conquer engine: texture
// statistics, equivalence between all execution strategies, tiling
// correctness, and the engine's bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/dnc_synthesizer.hpp"
#include "core/serial_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "field/analytic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;
using field::Rect;

core::SynthesisConfig small_config() {
  core::SynthesisConfig config;
  config.texture_width = 128;
  config.texture_height = 128;
  config.spot_count = 400;
  config.spot_radius_px = 6.0;
  config.kind = core::SpotKind::kEllipse;
  return config;
}

std::vector<core::SpotInstance> test_spots(const core::SynthesisConfig& config,
                                           Rect domain) {
  util::Rng rng(config.seed);
  return core::make_random_spots(domain, config.spot_count, rng);
}

double max_abs_difference(const render::Framebuffer& a, const render::Framebuffer& b) {
  EXPECT_EQ(a.width(), b.width());
  EXPECT_EQ(a.height(), b.height());
  double worst = 0.0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x)
      worst = std::max(worst, std::abs(double(a.at(x, y)) - double(b.at(x, y))));
  return worst;
}

// ------------------------------------------------------ SerialSynthesizer ---

TEST(SerialSynthesizer, ProducesNonTrivialZeroMeanTexture) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::rigid_vortex({1, 1}, 1.0, domain);
  core::SerialSynthesizer synth(config);
  const auto spots = test_spots(config, domain);
  const auto stats = synth.synthesize(*f, spots);

  EXPECT_EQ(stats.spots, config.spot_count);
  EXPECT_GT(stats.raster.fragments, 0);
  EXPECT_GT(render::texture_stddev(synth.texture()), 0.0);
  // Zero-mean intensities: the texture mean is near zero relative to its
  // spread.
  EXPECT_LT(std::abs(synth.texture().mean()),
            render::texture_stddev(synth.texture()));
}

TEST(SerialSynthesizer, DeterministicForFixedSeed) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::SerialSynthesizer a(config), b(config);
  a.synthesize(*f, spots);
  b.synthesize(*f, spots);
  EXPECT_TRUE(a.texture() == b.texture());  // bit-exact
}

TEST(SerialSynthesizer, MultithreadedMatchesSerial) {
  // The §4 "bypass the graphics subsystem" path: OpenMP over spots with
  // framebuffer reduction. Float summation order differs, so compare with a
  // tolerance proportional to the texture scale.
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::SerialSynthesizer serial(config), parallel(config);
  serial.synthesize(*f, spots, 1);
  parallel.synthesize(*f, spots, 4);
  const double sigma = render::texture_stddev(serial.texture());
  EXPECT_LT(max_abs_difference(serial.texture(), parallel.texture()), 1e-4 * sigma + 1e-6);
}

TEST(SerialSynthesizer, StatsSeparateGenPAndGenT) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  core::SerialSynthesizer synth(config);
  const auto stats = synth.synthesize(*f, test_spots(config, domain));
  EXPECT_GT(stats.genP_seconds, 0.0);
  EXPECT_GT(stats.genT_seconds, 0.0);
  EXPECT_GE(stats.total_seconds, stats.genP_seconds + stats.genT_seconds - 1e-6);
  EXPECT_GT(stats.vertices, 0);
}

TEST(SerialSynthesizer, NaturalIntensityScalesInversely) {
  auto sparse = small_config();
  sparse.spot_count = 100;
  auto dense = small_config();
  dense.spot_count = 10000;
  EXPECT_GT(core::SerialSynthesizer::natural_intensity(sparse),
            core::SerialSynthesizer::natural_intensity(dense));
}

TEST(SerialSynthesizer, NaturalIntensityStabilizesContrast) {
  // With intensity_scale = natural_intensity, texture sigma should be
  // roughly independent of spot count (amplitudes add in quadrature).
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  auto sigma_for = [&](std::int64_t count) {
    auto config = small_config();
    config.spot_count = count;
    config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
    core::SerialSynthesizer synth(config);
    synth.synthesize(*f, test_spots(config, domain));
    return render::texture_stddev(synth.texture());
  };
  const double lo = sigma_for(500);
  const double hi = sigma_for(8000);
  EXPECT_LT(std::abs(hi - lo) / lo, 0.5);  // same order of magnitude
}

TEST(SerialSynthesizer, EmptySpotSetGivesBlankTexture) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  core::SerialSynthesizer synth(config);
  const auto stats = synth.synthesize(*f, {});
  EXPECT_EQ(stats.spots, 0);
  const auto [lo, hi] = synth.texture().min_max();
  EXPECT_EQ(lo, 0.0f);
  EXPECT_EQ(hi, 0.0f);
}

// --------------------------------------------------------- DncSynthesizer ---

TEST(DncSynthesizer, MatchesSerialBaseline) {
  // The headline correctness property: divide and conquer produces the same
  // texture as the 1991 serial algorithm, up to float summation order.
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::rigid_vortex({1, 1}, 1.0, domain);
  const auto spots = test_spots(config, domain);

  core::SerialSynthesizer serial(config);
  serial.synthesize(*f, spots);

  for (const auto& [nP, nG] : std::vector<std::pair<int, int>>{
           {1, 1}, {2, 1}, {4, 2}, {6, 3}}) {
    core::DncConfig dnc;
    dnc.processors = nP;
    dnc.pipes = nG;
    core::DncSynthesizer engine(config, dnc);
    engine.synthesize(*f, spots);
    const double sigma = render::texture_stddev(serial.texture());
    EXPECT_LT(max_abs_difference(serial.texture(), engine.texture()),
              1e-4 * sigma + 1e-6)
        << "nP=" << nP << " nG=" << nG;
  }
}

TEST(DncSynthesizer, TiledMatchesSerialBaseline) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::rigid_vortex({1, 1}, 1.0, domain);
  const auto spots = test_spots(config, domain);

  core::SerialSynthesizer serial(config);
  serial.synthesize(*f, spots);

  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 4;
  dnc.tiled = true;
  core::DncSynthesizer engine(config, dnc);
  const auto stats = engine.synthesize(*f, spots);
  const double sigma = render::texture_stddev(serial.texture());
  EXPECT_LT(max_abs_difference(serial.texture(), engine.texture()),
            1e-4 * sigma + 1e-6);
  // Tiling duplicates boundary spots.
  EXPECT_GT(stats.duplicated_spots, 0);
  EXPECT_EQ(stats.spots_submitted, stats.spots + stats.duplicated_spots);
}

TEST(DncSynthesizer, BentSpotsMatchSerial) {
  auto config = small_config();
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 8;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 32.0;
  config.spot_count = 200;
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);

  core::SerialSynthesizer serial(config);
  serial.synthesize(*f, spots);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  core::DncSynthesizer engine(config, dnc);
  engine.synthesize(*f, spots);
  const double sigma = render::texture_stddev(serial.texture());
  EXPECT_LT(max_abs_difference(serial.texture(), engine.texture()),
            1e-4 * sigma + 1e-6);
}

TEST(DncSynthesizer, RepeatedFramesAreStable) {
  // Process groups persist across frames; re-synthesizing the same input
  // must give the same texture (pipes cleared, queues drained).
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  core::DncSynthesizer engine(config, dnc);
  engine.synthesize(*f, spots);
  render::Framebuffer first = engine.texture();
  engine.synthesize(*f, spots);
  const double sigma = render::texture_stddev(first);
  EXPECT_LT(max_abs_difference(first, engine.texture()), 1e-4 * sigma + 1e-6);
}

TEST(DncSynthesizer, StatsAccounting) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 2;
  core::DncSynthesizer engine(config, dnc);
  const auto stats = engine.synthesize(*f, spots);

  EXPECT_EQ(stats.spots, config.spot_count);
  EXPECT_GT(stats.genP_seconds, 0.0);
  EXPECT_GT(stats.genT_seconds, 0.0);
  EXPECT_GT(stats.gather_seconds, 0.0);
  EXPECT_GT(stats.frame_seconds, 0.0);
  // Ellipse spots: 4 vertices each.
  EXPECT_EQ(stats.vertices, config.spot_count * 4);
  // Geometry traffic: vertices plus headers.
  EXPECT_EQ(stats.geometry_bytes,
            static_cast<std::uint64_t>(stats.vertices) * sizeof(render::MeshVertex) +
                static_cast<std::uint64_t>(config.spot_count) *
                    sizeof(render::MeshHeader));
  // Readback: both pipes return a full texture.
  EXPECT_EQ(stats.readback_bytes, 2u * 128u * 128u * sizeof(float));
  EXPECT_GT(stats.raster.fragments, 0);
  EXPECT_DOUBLE_EQ(stats.textures_per_second(), 1.0 / stats.frame_seconds);
}

TEST(DncSynthesizer, MorePipesSplitWorkEvenly) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 4;
  dnc.steal = false;  // the even split is a static-partition property
  core::DncSynthesizer engine(config, dnc);
  engine.synthesize(*f, spots);
  // Each pipe should have received about a quarter of the vertices.
  for (int g = 0; g < 4; ++g) {
    const auto ps = engine.pipe_stats(g);
    EXPECT_NEAR(static_cast<double>(ps.vertices),
                static_cast<double>(config.spot_count), 4.0)
        << "pipe " << g;  // 400 spots * 4 verts / 4 pipes = 400
  }
}

TEST(DncSynthesizer, BusModelAccountsTraffic) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  dnc.bus_bytes_per_second = 4.0e9;  // fast enough not to slow the test
  core::DncSynthesizer engine(config, dnc);
  const auto stats = engine.synthesize(*f, spots);
  EXPECT_GT(stats.geometry_bytes, 0u);
  EXPECT_GT(stats.readback_bytes, 0u);
}

TEST(DncSynthesizer, StateChangeCostIsCharged) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 1;
  dnc.pipes = 1;
  dnc.state_change_seconds = 1e-3;
  core::DncSynthesizer engine(config, dnc);
  // Setup binds profile + blend mode; those fall before the first frame's
  // reset_stats, so issue a frame and check state time is counted per frame
  // only when state changes happen (none mid-frame by default).
  const auto stats = engine.synthesize(*f, spots);
  EXPECT_EQ(stats.pipe_state_seconds, 0.0);
}

TEST(DncSynthesizer, RejectsInvalidConfigs) {
  const auto config = small_config();
  core::DncConfig dnc;
  dnc.processors = 1;
  dnc.pipes = 2;  // a pipe without a master is not a process group
  EXPECT_THROW(core::DncSynthesizer(config, dnc), util::Error);
  dnc.pipes = 0;
  EXPECT_THROW(core::DncSynthesizer(config, dnc), util::Error);
  dnc.pipes = 1;
  dnc.processors = 1;
  dnc.chunk_spots = 0;
  EXPECT_THROW(core::DncSynthesizer(config, dnc), util::Error);
}

TEST(DncSynthesizer, EmptySpotSet) {
  const auto config = small_config();
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 2;
  core::DncSynthesizer engine(config, dnc);
  const auto stats = engine.synthesize(*f, {});
  EXPECT_EQ(stats.spots, 0);
  const auto [lo, hi] = engine.texture().min_max();
  EXPECT_EQ(lo, 0.0f);
  EXPECT_EQ(hi, 0.0f);
}

TEST(DncSynthesizer, ManyFramesNoLeaksOrDeadlocks) {
  // Soak the frame loop: barriers, queues and fences must cycle cleanly.
  auto config = small_config();
  config.spot_count = 50;
  const Rect domain{0, 0, 2, 2};
  const auto f = field::analytic::taylor_green(1.0, domain);
  const auto spots = test_spots(config, domain);
  core::DncConfig dnc;
  dnc.processors = 3;
  dnc.pipes = 2;  // uneven groups: 2 workers + 1 worker
  core::DncSynthesizer engine(config, dnc);
  for (int frame = 0; frame < 50; ++frame) {
    const auto stats = engine.synthesize(*f, spots);
    ASSERT_EQ(stats.spots, 50);
  }
}

// ------------------------------------------------------------------ tiles ---

TEST(Tiling, GridCoversTextureExactly) {
  for (const int count : {1, 2, 3, 4, 5, 7, 8}) {
    const auto tiles = core::make_tile_grid(512, 512, count);
    ASSERT_EQ(std::ssize(tiles), count);
    std::int64_t area = 0;
    for (const auto& t : tiles) {
      EXPECT_GT(t.width, 0);
      EXPECT_GT(t.height, 0);
      area += static_cast<std::int64_t>(t.width) * t.height;
    }
    EXPECT_EQ(area, 512 * 512) << "count = " << count;
  }
}

TEST(Tiling, TilesDoNotOverlap) {
  const auto tiles = core::make_tile_grid(64, 64, 5);
  std::vector<int> cover(64 * 64, 0);
  for (const auto& t : tiles)
    for (int y = t.y0; y < t.y0 + t.height; ++y)
      for (int x = t.x0; x < t.x0 + t.width; ++x)
        ++cover[static_cast<std::size_t>(y * 64 + x)];
  for (const int c : cover) EXPECT_EQ(c, 1);
}

TEST(Tiling, AssignmentCoversEverySpot) {
  const render::WorldToImage mapping(Rect{0, 0, 1, 1}, 256, 256);
  util::Rng rng(5);
  const auto spots = core::make_random_spots(Rect{0, 0, 1, 1}, 500, rng);
  const auto tiles = core::make_tile_grid(256, 256, 4);
  const auto assignment = core::assign_spots_to_tiles(spots, mapping, 10.0, tiles);
  std::vector<int> seen(spots.size(), 0);
  for (const auto& list : assignment.per_tile)
    for (const auto idx : list) ++seen[static_cast<std::size_t>(idx)];
  for (const int s : seen) EXPECT_GE(s, 1);  // nobody dropped
  EXPECT_EQ(assignment.duplicates,
            static_cast<std::int64_t>(
                std::accumulate(seen.begin(), seen.end(), 0) - std::ssize(spots)));
}

TEST(Tiling, LargerExtentMeansMoreDuplicates) {
  const render::WorldToImage mapping(Rect{0, 0, 1, 1}, 256, 256);
  util::Rng rng(6);
  const auto spots = core::make_random_spots(Rect{0, 0, 1, 1}, 500, rng);
  const auto tiles = core::make_tile_grid(256, 256, 4);
  const auto small_extent = core::assign_spots_to_tiles(spots, mapping, 2.0, tiles);
  const auto large_extent = core::assign_spots_to_tiles(spots, mapping, 40.0, tiles);
  EXPECT_GT(large_extent.duplicates, small_extent.duplicates);
}

// ------------------------------------------------------------- spot source ---

TEST(SpotSource, RandomSpotsHaveZeroMeanIntensity) {
  util::Rng rng(9);
  const auto spots = core::make_random_spots(Rect{0, 0, 1, 1}, 20000, rng);
  double sum = 0.0;
  for (const auto& s : spots) {
    sum += s.intensity;
    EXPECT_TRUE((Rect{0, 0, 1, 1}).contains(s.position));
  }
  EXPECT_NEAR(sum / 20000.0, 0.0, 0.02);
}

}  // namespace
