// Tests for the application substrates: smog model physics and steering,
// DNS solver stability and vortex shedding, dataset round trips and the
// browser's playback/caching behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "field/field_ops.hpp"
#include "sim/dataset.hpp"
#include "sim/dns_solver.hpp"
#include "sim/smog_model.hpp"
#include "util/error.hpp"

namespace {

using namespace dcsn;

// -------------------------------------------------------------- SmogModel ---

sim::SmogParams fast_smog() {
  sim::SmogParams params;
  params.nx = 27;  // smaller grid for fast tests; benches use the paper's 53x55
  params.ny = 28;
  return params;
}

TEST(SmogModel, GridMatchesConfiguration) {
  sim::SmogModel model({});
  EXPECT_EQ(model.wind().grid().nx(), 53);  // the paper's grid
  EXPECT_EQ(model.wind().grid().ny(), 55);
}

TEST(SmogModel, WindIncludesBaseFlow) {
  auto params = fast_smog();
  params.pressure_systems = 0;  // base flow only
  sim::SmogModel model(params);
  const auto v = model.wind().sample(params.domain.center());
  EXPECT_NEAR(v.x, params.base_wind.x, 1e-9);
  EXPECT_NEAR(v.y, params.base_wind.y, 1e-9);
}

TEST(SmogModel, PressureSystemsStirTheWind) {
  auto params = fast_smog();
  params.pressure_systems = 3;
  sim::SmogModel model(params);
  const auto stats = field::statistics(model.wind());
  // Rotational systems create spatial variance the base flow lacks.
  EXPECT_GT(stats.max_magnitude, params.base_wind.length() * 1.2);
}

TEST(SmogModel, ConcentrationsStayNonNegativeAndFinite) {
  sim::SmogModel model(fast_smog());
  for (int step = 0; step < 10; ++step) model.step(0.25);
  for (const auto species : {sim::Species::kPrecursor, sim::Species::kOzone}) {
    for (const double c : model.concentration(species).samples()) {
      ASSERT_TRUE(std::isfinite(c));
      ASSERT_GE(c, 0.0);
    }
  }
}

TEST(SmogModel, EmissionsRaisePrecursor) {
  sim::SmogModel model(fast_smog());
  model.step(1.0);
  const auto [lo, hi] = model.concentration(sim::Species::kPrecursor).min_max();
  EXPECT_GT(hi, 0.0);
}

TEST(SmogModel, OzoneFormsFromPrecursor) {
  sim::SmogModel model(fast_smog());
  for (int step = 0; step < 8; ++step) model.step(0.5);
  const auto [lo, hi] = model.concentration(sim::Species::kOzone).min_max();
  EXPECT_GT(hi, 0.0);  // secondary pollutant appears without direct emission
}

TEST(SmogModel, ZeroPhotoRateMakesNoOzone) {
  auto params = fast_smog();
  params.photo_rate = 0.0;
  sim::SmogModel model(params);
  for (int step = 0; step < 5; ++step) model.step(0.5);
  const auto [lo, hi] = model.concentration(sim::Species::kOzone).min_max();
  EXPECT_EQ(hi, 0.0);
}

TEST(SmogModel, SteeringEmissionRateTakesEffect) {
  // Kill all sources: the precursor must decay instead of accumulating.
  sim::SmogModel model(fast_smog());
  for (int step = 0; step < 5; ++step) model.step(0.5);
  double total_before = 0.0;
  for (const double c : model.concentration(sim::Species::kPrecursor).samples())
    total_before += c;
  for (std::size_t s = 0; s < model.sources().size(); ++s)
    model.set_source_rate(s, 0.0);
  for (int step = 0; step < 5; ++step) model.step(0.5);
  double total_after = 0.0;
  for (const double c : model.concentration(sim::Species::kPrecursor).samples())
    total_after += c;
  EXPECT_LT(total_after, total_before);
}

TEST(SmogModel, WindChangesOverTime) {
  sim::SmogModel model(fast_smog());
  const auto v0 = model.wind().sample(model.params().domain.center());
  for (int step = 0; step < 4; ++step) model.step(1.0);
  const auto v1 = model.wind().sample(model.params().domain.center());
  EXPECT_GT((v1 - v0).length(), 1e-6);  // systems drifted
  EXPECT_NEAR(model.time_hours(), 4.0, 1e-12);
}

TEST(SmogModel, SteeringValidation) {
  sim::SmogModel model(fast_smog());
  EXPECT_THROW(model.set_source_rate(99, 1.0), util::Error);
  EXPECT_THROW(model.set_source_rate(0, -1.0), util::Error);
  EXPECT_THROW(model.step(0.0), util::Error);
}

// -------------------------------------------------------------- DnsSolver ---

sim::DnsParams fast_dns() {
  sim::DnsParams params;
  params.nx = 96;  // benches use the paper's 278x208
  params.ny = 64;
  params.domain = {0.0, 0.0, 12.0, 8.0};
  params.block = {3.0, 3.2, 4.0, 4.2};
  params.pressure_iterations = 40;
  return params;
}

TEST(DnsSolver, BlockCellsAreSolidAndStationary) {
  sim::DnsSolver solver(fast_dns());
  const auto& g = solver.grid();
  int solid_count = 0;
  for (int j = 0; j < g.ny(); ++j)
    for (int i = 0; i < g.nx(); ++i)
      if (solver.is_solid(i, j)) {
        ++solid_count;
        EXPECT_EQ(solver.velocity().at(i, j), field::Vec2{});
      }
  EXPECT_GT(solid_count, 10);
  for (int step = 0; step < 5; ++step) solver.step();
  for (int j = 0; j < g.ny(); ++j)
    for (int i = 0; i < g.nx(); ++i)
      if (solver.is_solid(i, j)) {
        EXPECT_EQ(solver.velocity().at(i, j), field::Vec2{});
      }
}

TEST(DnsSolver, StaysStableAndFinite) {
  sim::DnsSolver solver(fast_dns());
  for (int step = 0; step < 60; ++step) solver.step();
  for (const auto& v : solver.velocity().samples()) {
    ASSERT_TRUE(std::isfinite(v.x));
    ASSERT_TRUE(std::isfinite(v.y));
  }
  // Speeds remain of the order of the inflow (no blow-up).
  EXPECT_LT(solver.velocity().max_magnitude(), 5.0 * fast_dns().inflow_speed);
  EXPECT_GT(solver.kinetic_energy(), 0.0);
}

TEST(DnsSolver, ProjectionReducesDivergence) {
  sim::DnsSolver solver(fast_dns());
  for (int step = 0; step < 20; ++step) solver.step();
  const auto div = field::divergence(solver.velocity());
  // Interior divergence should be small relative to U/h.
  const double h = solver.grid().dx();
  const double scale = fast_dns().inflow_speed / h;
  double worst = 0.0;
  for (int j = 8; j < 56; ++j)
    for (int i = 8; i < 88; ++i)
      if (!solver.is_solid(i, j)) worst = std::max(worst, std::abs(div.at(i, j)));
  EXPECT_LT(worst, 0.25 * scale);
}

TEST(DnsSolver, WakeDevelopsBehindBlock) {
  sim::DnsSolver solver(fast_dns());
  for (int step = 0; step < 120; ++step) solver.step();
  // Downstream of the block the flow is slower than the free stream;
  // compare the wake centerline with a line above the block.
  const auto& g = solver.grid();
  const field::CellCoord behind = g.locate({5.5, 3.7});  // just downstream
  const field::CellCoord above = g.locate({5.5, 6.5});
  const double wake_speed = solver.velocity().at(behind.i, behind.j).length();
  const double free_speed = solver.velocity().at(above.i, above.j).length();
  EXPECT_LT(wake_speed, free_speed);
}

TEST(DnsSolver, VortexSheddingProducesOscillation) {
  // After spin-up, the cross-stream velocity behind the block oscillates
  // (Kármán street). We check sign changes of v_y sampled over time.
  auto params = fast_dns();
  params.viscosity = 3e-3;
  sim::DnsSolver solver(params);
  for (int step = 0; step < 200; ++step) solver.step();  // spin-up
  int sign_changes = 0;
  double last = 0.0;
  for (int step = 0; step < 400; ++step) {
    solver.step();
    const double vy = solver.velocity().sample({6.0, 3.7}).y;
    if (vy * last < 0.0) ++sign_changes;
    if (vy != 0.0) last = vy;
  }
  EXPECT_GE(sign_changes, 2) << "no oscillation: wake stayed symmetric";
}

TEST(DnsSolver, SnapshotResamplesOntoStretchedGrid) {
  sim::DnsSolver solver(fast_dns());
  for (int step = 0; step < 5; ++step) solver.step();
  const auto snap = solver.snapshot(2.5);
  EXPECT_EQ(snap.grid().nx(), fast_dns().nx);
  EXPECT_EQ(snap.grid().ny(), fast_dns().ny);
  // The stretched grid concentrates samples near the block center.
  const auto& xs = snap.grid().xs();
  const double block_cx = fast_dns().block.center().x;
  const auto it = std::lower_bound(xs.begin(), xs.end(), block_cx);
  const auto k = static_cast<std::size_t>(it - xs.begin());
  const double near_spacing = xs[k + 1] - xs[k];
  const double far_spacing = xs[xs.size() - 1] - xs[xs.size() - 2];
  EXPECT_LT(near_spacing, far_spacing);
  // Values agree with the solver field at sample positions.
  const auto p = snap.grid().position(10, 10);
  const auto expect = solver.velocity().sample(p);
  EXPECT_NEAR(snap.at(10, 10).x, expect.x, 1e-9);
}

TEST(DnsSolver, RejectsBadParams) {
  auto params = fast_dns();
  params.block = {-5.0, 0.0, 1.0, 1.0};  // outside the domain
  EXPECT_THROW(sim::DnsSolver{params}, util::Error);
  params = fast_dns();
  params.sor_omega = 2.5;
  EXPECT_THROW(sim::DnsSolver{params}, util::Error);
}

// ---------------------------------------------------------------- Dataset ---

class DatasetTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/dcsn_dataset_test.bin";

  field::RectilinearVectorField make_frame(double value) {
    field::RectilinearGrid grid({0.0, 1.0, 2.0, 4.0}, {0.0, 1.0, 3.0});
    field::RectilinearVectorField f(grid);
    f.fill([value](field::Vec2 p) { return field::Vec2{value + p.x, p.y}; });
    return f;
  }

  void write_frames(int count) {
    field::RectilinearGrid grid({0.0, 1.0, 2.0, 4.0}, {0.0, 1.0, 3.0});
    sim::DatasetWriter writer(path_, grid);
    for (int k = 0; k < count; ++k)
      writer.append(make_frame(static_cast<double>(k)), 0.5 * k);
    writer.close();
  }

  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(DatasetTest, RoundTripPreservesFramesAndTimes) {
  write_frames(5);
  sim::DatasetReader reader(path_);
  EXPECT_EQ(reader.frame_count(), 5);
  for (int k = 0; k < 5; ++k) {
    const auto frame = reader.load(k);
    const auto expect = make_frame(static_cast<double>(k));
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 4; ++i) EXPECT_EQ(frame.at(i, j), expect.at(i, j));
    EXPECT_DOUBLE_EQ(reader.time_of(k), 0.5 * k);
  }
}

TEST_F(DatasetTest, RandomAccessIsOrderIndependent) {
  write_frames(10);
  sim::DatasetReader reader(path_);
  EXPECT_EQ(reader.load(7).at(0, 0).x, 7.0);
  EXPECT_EQ(reader.load(2).at(0, 0).x, 2.0);
  EXPECT_EQ(reader.load(9).at(0, 0).x, 9.0);
  EXPECT_THROW((void)reader.load(10), util::Error);
  EXPECT_THROW((void)reader.load(-1), util::Error);
}

TEST_F(DatasetTest, BrowserStepsAndWraps) {
  write_frames(4);
  sim::DatasetReader reader(path_);
  sim::DataBrowser browser(reader);
  EXPECT_EQ(browser.position(), 0);
  browser.step();
  browser.step();
  EXPECT_EQ(browser.position(), 2);
  browser.step();
  browser.step();  // wraps to 0
  EXPECT_EQ(browser.position(), 0);
  browser.set_direction(sim::DataBrowser::Direction::kBackward);
  browser.step();
  EXPECT_EQ(browser.position(), 3);
}

TEST_F(DatasetTest, BrowserCachesFrames) {
  write_frames(4);
  sim::DatasetReader reader(path_);
  sim::DataBrowser browser(reader, 2);
  (void)browser.current();  // miss
  (void)browser.current();  // hit
  browser.step();
  (void)browser.current();  // miss
  browser.seek(0);
  (void)browser.current();  // hit (still cached)
  EXPECT_EQ(browser.cache_misses(), 2u);
  EXPECT_EQ(browser.cache_hits(), 2u);
}

TEST_F(DatasetTest, BrowserEvictsLru) {
  write_frames(5);
  sim::DatasetReader reader(path_);
  sim::DataBrowser browser(reader, 2);
  (void)browser.current();  // load 0
  browser.seek(1);
  (void)browser.current();  // load 1
  browser.seek(2);
  (void)browser.current();  // load 2, evicts 0
  browser.seek(0);
  (void)browser.current();  // miss again
  EXPECT_EQ(browser.cache_misses(), 4u);
}

TEST_F(DatasetTest, BrowserSeekValidation) {
  write_frames(3);
  sim::DatasetReader reader(path_);
  sim::DataBrowser browser(reader);
  EXPECT_THROW(browser.seek(3), util::Error);
  EXPECT_THROW(browser.seek(-1), util::Error);
}

TEST_F(DatasetTest, FrameDataMatchesSolverSnapshot) {
  // End-to-end: DNS -> dataset -> browser returns the same field.
  sim::DnsSolver solver(fast_dns());
  solver.step();
  const auto snap = solver.snapshot();
  {
    sim::DatasetWriter writer(path_, snap.grid());
    writer.append(snap, solver.time());
  }
  sim::DatasetReader reader(path_);
  const auto loaded = reader.load(0);
  EXPECT_EQ(loaded.at(20, 20), snap.at(20, 20));
  EXPECT_DOUBLE_EQ(reader.time_of(0), solver.time());
}

}  // namespace
