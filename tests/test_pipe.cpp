// Tests for the simulated graphics pipe and the bus model: asynchronous
// execution, state machine semantics, fences, readback, stats, throttling.
#include <gtest/gtest.h>

#include <thread>

#include "render/bus.hpp"
#include "render/pipe.hpp"
#include "util/stopwatch.hpp"

// TSan detection for both GCC (__SANITIZE_THREAD__) and Clang
// (__has_feature): the wall-clock overlap assertion is skipped under the
// instrumented build — see OverlapsWithSubmitterWork.
#if defined(__SANITIZE_THREAD__)
#define DCSN_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DCSN_TSAN 1
#endif
#endif

namespace {

using namespace dcsn;

render::CommandBuffer unit_quad(float x0, float y0, float x1, float y1,
                                float intensity = 1.0f) {
  render::CommandBuffer buf;
  auto v = buf.add_mesh(intensity, 2, 2);
  v[0] = {x0, y0, 0.5f, 0.5f};
  v[1] = {x1, y0, 0.5f, 0.5f};
  v[2] = {x0, y1, 0.5f, 0.5f};
  v[3] = {x1, y1, 0.5f, 0.5f};
  return buf;
}

render::PipeConfig small_pipe() {
  render::PipeConfig pc;
  pc.width = 32;
  pc.height = 32;
  pc.state_change_seconds = 0.0;
  return pc;
}

// -------------------------------------------------------------------- Bus ---

TEST(Bus, UnthrottledIsImmediate) {
  render::Bus bus(0.0);
  const auto before = render::Bus::Clock::now();
  const auto done = bus.schedule(1 << 20);
  EXPECT_LE(done, render::Bus::Clock::now());
  EXPECT_GE(done, before - std::chrono::seconds(1));
  EXPECT_EQ(bus.bytes_moved(), 1u << 20);
}

TEST(Bus, ThrottledTransfersSerialize) {
  render::Bus bus(1e6);  // 1 MB/s
  const auto t1 = bus.schedule(100000);  // 0.1 s
  const auto t2 = bus.schedule(100000);  // queued behind the first
  EXPECT_GE(std::chrono::duration<double>(t2 - t1).count(), 0.099);
}

TEST(Bus, SynchronousTransferBlocks) {
  render::Bus bus(1e6);
  const util::Stopwatch watch;
  bus.transfer(50000);  // 50 ms at 1 MB/s
  EXPECT_GE(watch.seconds(), 0.045);
}

TEST(Bus, StatsReset) {
  render::Bus bus(0.0);
  (void)bus.schedule(128);
  bus.reset_stats();
  EXPECT_EQ(bus.bytes_moved(), 0u);
}

// ------------------------------------------------------------ GraphicsPipe ---

TEST(GraphicsPipe, RendersSubmittedGeometry) {
  render::GraphicsPipe pipe(small_pipe(), nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.clear();
  pipe.submit(unit_quad(8, 8, 24, 24));
  const auto fb = pipe.read_back();
  EXPECT_GT(fb.at(16, 16), 0.0f);
  EXPECT_EQ(fb.at(1, 1), 0.0f);
}

TEST(GraphicsPipe, DrawWithoutProfileIsNoOp) {
  render::GraphicsPipe pipe(small_pipe(), nullptr);
  pipe.clear();
  pipe.submit(unit_quad(8, 8, 24, 24));
  const auto fb = pipe.read_back();
  EXPECT_EQ(fb.at(16, 16), 0.0f);
}

TEST(GraphicsPipe, ClearResetsTarget) {
  render::GraphicsPipe pipe(small_pipe(), nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.submit(unit_quad(0, 0, 32, 32));
  pipe.clear();
  const auto fb = pipe.read_back();
  EXPECT_EQ(fb.at(16, 16), 0.0f);
}

TEST(GraphicsPipe, CommandsExecuteInOrder) {
  // Additive then clear then additive: only the second draw survives.
  render::GraphicsPipe pipe(small_pipe(), nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.clear();
  pipe.submit(unit_quad(0, 0, 32, 32, 5.0f));
  pipe.clear();
  pipe.submit(unit_quad(8, 8, 24, 24, 1.0f));
  const auto fb = pipe.read_back();
  const float center = fb.at(16, 16);
  EXPECT_GT(center, 0.0f);
  EXPECT_LT(center, 1.0f);  // not the 5x draw
}

TEST(GraphicsPipe, FinishIsABarrier) {
  render::GraphicsPipe pipe(small_pipe(), nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.clear();
  for (int k = 0; k < 100; ++k) pipe.submit(unit_quad(0, 0, 32, 32));
  pipe.finish();
  const auto stats = pipe.stats();
  EXPECT_EQ(stats.buffers, 100);
}

TEST(GraphicsPipe, StatsCountVerticesAndBytes) {
  render::GraphicsPipe pipe(small_pipe(), nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.reset_stats();
  auto buf = unit_quad(0, 0, 16, 16);
  const auto bytes = buf.byte_size();
  pipe.submit(std::move(buf));
  pipe.finish();
  const auto stats = pipe.stats();
  EXPECT_EQ(stats.vertices, 4);
  EXPECT_EQ(stats.bytes_received, bytes);
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_GT(stats.raster.fragments, 0);
}

TEST(GraphicsPipe, StateChangesAreCharged) {
  auto pc = small_pipe();
  pc.state_change_seconds = 2e-3;
  render::GraphicsPipe pipe(pc, nullptr);
  pipe.reset_stats();
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.set_blend_mode(render::BlendMode::kAdditive);
  pipe.finish();
  const auto stats = pipe.stats();
  EXPECT_EQ(stats.state_changes, 2);
  EXPECT_GE(stats.state_seconds, 2 * 2e-3 * 0.9);
  EXPECT_GE(stats.busy_seconds, stats.state_seconds);
}

TEST(GraphicsPipe, ExtraStateChangesModelTransformOnPipe) {
  auto pc = small_pipe();
  pc.state_change_seconds = 1e-3;
  render::GraphicsPipe pipe(pc, nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.finish();
  pipe.reset_stats();
  pipe.submit_with_state_changes(unit_quad(0, 0, 16, 16), 5);
  pipe.finish();
  const auto stats = pipe.stats();
  EXPECT_EQ(stats.state_changes, 5);
  EXPECT_GE(stats.state_seconds, 5e-3 * 0.9);
}

TEST(GraphicsPipe, ViewportOriginShiftsRendering) {
  auto pc = small_pipe();
  render::GraphicsPipe pipe(pc, nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.set_viewport_origin(100, 200);
  pipe.clear();
  // Geometry in global coordinates [100,132)x[200,232) covers the tile.
  pipe.submit(unit_quad(100, 200, 132, 232));
  const auto fb = pipe.read_back();
  EXPECT_GT(fb.at(16, 16), 0.0f);
}

TEST(GraphicsPipe, OverlapsWithSubmitterWork) {
  // While the pipe rasterizes, the submitting thread stays free: total time
  // must be well below the sum of both sides (eq. 2.1's max, not sum).
  // The cost multiplier keeps the per-quad raster work heavy enough for the
  // overlap to be measurable on a loaded one-core host — the span-kernel
  // rewrite made plain fullscreen quads too cheap for the wall-clock margin.
#if defined(DCSN_TSAN)
  GTEST_SKIP() << "wall-clock overlap margin is not meaningful under TSan's "
                  "slowdown on an oversubscribed host; races in this path are "
                  "covered by the rest of the suite";
#endif
  auto pc = small_pipe();
  pc.width = 256;
  pc.height = 256;
  pc.raster_cost_multiplier = 4.0;
  render::GraphicsPipe pipe(pc, nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.clear();
  pipe.finish();

  const util::Stopwatch watch;
  double cpu_busy = 0.0;
  for (int k = 0; k < 50; ++k) {
    pipe.submit(unit_quad(0, 0, 256, 256));  // heavy pipe work
    const util::Stopwatch cpu;
    volatile double sink = 0.0;
    while (cpu.seconds() < 1e-3) sink = sink + 1.0;  // heavy CPU work
    cpu_busy += cpu.seconds();
  }
  pipe.finish();
  const double total = watch.seconds();
  const double pipe_busy = pipe.stats().raster_seconds;
  // Overlap: total < cpu + pipe (with slack for scheduling noise).
  EXPECT_LT(total, (cpu_busy + pipe_busy) * 0.95);
}

TEST(GraphicsPipe, BusDelayShowsAsStall) {
  auto pc = small_pipe();
  auto bus = std::make_shared<render::Bus>(1e6);  // 1 MB/s: very slow
  render::GraphicsPipe pipe(pc, bus);
  pipe.bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  pipe.finish();
  pipe.reset_stats();
  pipe.submit(unit_quad(0, 0, 16, 16));  // 64+12 bytes -> ~76 us transfer
  pipe.finish();
  EXPECT_GT(pipe.stats().stall_seconds, 0.0);
}

TEST(GraphicsPipe, ReadBackMovesTextureOverBus) {
  auto pc = small_pipe();  // 32*32*4 = 4096 bytes
  auto bus = std::make_shared<render::Bus>(1e6);
  render::GraphicsPipe pipe(pc, bus);
  pipe.finish();
  bus->reset_stats();
  (void)pipe.read_back();
  EXPECT_EQ(bus->bytes_moved(), 4096u);
}

TEST(GraphicsPipe, RasterCostMultiplierSlowsPipe) {
  auto fast_pc = small_pipe();
  fast_pc.width = 128;
  fast_pc.height = 128;
  auto slow_pc = fast_pc;
  slow_pc.raster_cost_multiplier = 4.0;
  render::GraphicsPipe fast(fast_pc, nullptr);
  render::GraphicsPipe slow(slow_pc, nullptr);
  for (auto* pipe : {&fast, &slow}) {
    pipe->bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
    pipe->clear();
    pipe->finish();
    pipe->reset_stats();
    for (int k = 0; k < 20; ++k) pipe->submit(unit_quad(0, 0, 128, 128));
    pipe->finish();
  }
  EXPECT_GT(slow.stats().raster_seconds, 2.0 * fast.stats().raster_seconds);
  // The image itself must be identical: extra passes draw with weight 0.
  // (Verified via a fresh pair of pipes to avoid stats interference.)
  render::GraphicsPipe a(fast_pc, nullptr), b(slow_pc, nullptr);
  for (auto* pipe : {&a, &b}) {
    pipe->bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
    pipe->clear();
    pipe->submit(unit_quad(10, 10, 100, 100));
  }
  EXPECT_TRUE(a.read_back() == b.read_back());
}

TEST(GraphicsPipe, DestructorDrainsCleanly) {
  // Submitting work and destroying the pipe must not hang or crash.
  auto pipe = std::make_unique<render::GraphicsPipe>(small_pipe(), nullptr);
  pipe->bind_profile(render::SpotProfile::make_shared(render::SpotShape::kDisc));
  for (int k = 0; k < 10; ++k) pipe->submit(unit_quad(0, 0, 32, 32));
  pipe.reset();  // no fence: dtor closes the queue
}

}  // namespace
