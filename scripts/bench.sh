#!/usr/bin/env bash
# Machine-readable perf trajectory: runs the rasterizer ablation bench and
# checks its JSON report in at the repo root as BENCH_raster.json, so each
# PR's performance can be diffed against the last instead of guessed.
#
#   scripts/bench.sh             # full workload, writes BENCH_raster.json
#   scripts/bench.sh --smoke     # small workload (CI-sized), same report
#   BUILD_DIR=out scripts/bench.sh
#
# The bench exits nonzero when its speedup/equivalence gate fails, and so
# does this script — wire it into pre-merge checks alongside verify.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_raster_kernel

# The script's --json comes first: parse_json_path takes the first match,
# so this script always refreshes the checked-in report regardless of
# forwarded flags.
"$BUILD_DIR/bench/bench_raster_kernel" --json BENCH_raster.json "$@"
