#!/usr/bin/env bash
# Machine-readable perf trajectory: runs the gated ablation benches and
# checks their JSON reports in at the repo root (BENCH_raster.json,
# BENCH_incremental.json, BENCH_service.json, BENCH_tile_cache.json,
# BENCH_robustness.json, BENCH_stream.json), so each PR's performance can
# be diffed against the last instead of guessed.
#
#   scripts/bench.sh             # full workloads, refreshes BENCH_*.json
#   scripts/bench.sh --smoke     # small workloads (CI-sized); reports go to
#                                # $BUILD_DIR/bench_out/BENCH_*.smoke.json so
#                                # the checked-in full-run reports stay intact
#   BUILD_DIR=out scripts/bench.sh
#
# Each bench exits nonzero when its speedup/equivalence gate fails, and so
# does this script — wire it into pre-merge checks alongside verify.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

BENCHES=(bench_raster_kernel bench_incremental bench_service bench_tile_cache bench_robustness bench_stream)
declare -A REPORT=(
  [bench_raster_kernel]=BENCH_raster.json
  [bench_incremental]=BENCH_incremental.json
  [bench_service]=BENCH_service.json
  [bench_tile_cache]=BENCH_tile_cache.json
  [bench_robustness]=BENCH_robustness.json
  [bench_stream]=BENCH_stream.json
)

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target "${BENCHES[@]}"

# Smoke runs measure CI-sized workloads; their numbers are not comparable to
# the checked-in full-run baselines, so they must never overwrite them.
# Smoke reports land in the build tree with a .smoke.json suffix instead.
smoke=0
for arg in "$@"; do
  [ "$arg" = "--smoke" ] && smoke=1
done

json_dest() {
  if [ "$smoke" = 1 ]; then
    mkdir -p "$BUILD_DIR/bench_out"
    echo "$BUILD_DIR/bench_out/${1%.json}.smoke.json"
  else
    echo "$1"
  fi
}

# The script's --json comes first: parse_json_path takes the first match,
# so the report destination here always wins over forwarded flags.
for bench in "${BENCHES[@]}"; do
  "$BUILD_DIR/bench/$bench" --json "$(json_dest "${REPORT[$bench]}")" "$@"
done
