#!/usr/bin/env bash
# Machine-readable perf trajectory: runs the gated ablation benches and
# checks their JSON reports in at the repo root (BENCH_raster.json,
# BENCH_incremental.json, BENCH_service.json, BENCH_tile_cache.json,
# BENCH_robustness.json), so
# each PR's performance can be diffed against the last instead of guessed.
#
#   scripts/bench.sh             # full workloads, refreshes BENCH_*.json
#   scripts/bench.sh --smoke     # small workloads (CI-sized), same reports
#   BUILD_DIR=out scripts/bench.sh
#
# Each bench exits nonzero when its speedup/equivalence gate fails, and so
# does this script — wire it into pre-merge checks alongside verify.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_raster_kernel bench_incremental bench_service bench_tile_cache bench_robustness

# The script's --json comes first: parse_json_path takes the first match,
# so this script always refreshes the checked-in reports regardless of
# forwarded flags.
"$BUILD_DIR/bench/bench_raster_kernel" --json BENCH_raster.json "$@"
"$BUILD_DIR/bench/bench_incremental" --json BENCH_incremental.json "$@"
"$BUILD_DIR/bench/bench_service" --json BENCH_service.json "$@"
"$BUILD_DIR/bench/bench_tile_cache" --json BENCH_tile_cache.json "$@"
"$BUILD_DIR/bench/bench_robustness" --json BENCH_robustness.json "$@"
