#!/usr/bin/env bash
# Static-analysis gate driver. Runs every checkable discipline over the tree
# and prints one [PASS]/[FAIL]/[SKIP] line per gate:
#
#   1. lock-lint        — scripts/lock_lint.py self-test + tree scan (Python,
#                         always runs): locking discipline that the compiler
#                         can't see (raw std primitives, orphan mutexes,
#                         unannotated guarded members, direct .lock()).
#   2. determinism-lint — scripts/determinism_lint.py self-test + tree scan
#                         (Python, always runs): random sources, unwaivered
#                         wall-clock reads, unquantized accumulation in the
#                         rasterizer/compose hot paths.
#   3. thread-safety    — clang -Wthread-safety -Werror=thread-safety over
#                         the whole library (analyze preset), POSITIVE pass,
#                         plus a NEGATIVE compile check: building the
#                         analyze_fail_thread_safety target must FAIL. If it
#                         compiles, the analysis is not actually running
#                         (wrong compiler / dropped flag / macro gate broken)
#                         and the gate fails loudly. Skipped without clang++.
#   4. clang-tidy       — curated .clang-tidy checks (warnings-as-errors)
#                         over src/ via compile_commands.json. Skipped
#                         without clang-tidy.
#   5. format           — only with --format-check: clang-format --dry-run
#                         -Werror diff mode over src/ and tests/. Skipped
#                         without clang-format.
#
# Exit status: nonzero if ANY non-skipped gate fails. Skips never fail the
# run — this machine may have GCC only — but are always printed so a CI
# reader can see which disciplines were actually enforced.
#
#   scripts/analyze.sh                 # gates 1-4
#   scripts/analyze.sh --format-check  # gates 1-5
#   scripts/analyze.sh --lint-only     # gates 1-2 (no compiler needed)
set -uo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

RUN_FORMAT=0
LINT_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --format-check) RUN_FORMAT=1 ;;
    --lint-only) LINT_ONLY=1 ;;
    *) echo "unknown argument: $arg (supported: --format-check, --lint-only)" >&2; exit 2 ;;
  esac
done

FAILURES=0
declare -a SUMMARY=()

pass() { SUMMARY+=("[PASS] $1"); echo "[PASS] $1"; }
fail() { SUMMARY+=("[FAIL] $1"); echo "[FAIL] $1"; FAILURES=$((FAILURES + 1)); }
skip() { SUMMARY+=("[SKIP] $1 ($2)"); echo "[SKIP] $1 ($2)"; }

# ---------------------------------------------------------------- lock-lint
echo "== gate: lock-lint =="
if python3 scripts/lock_lint.py --self-test && python3 scripts/lock_lint.py; then
  pass "lock-lint"
else
  fail "lock-lint"
fi

# --------------------------------------------------------- determinism-lint
echo "== gate: determinism-lint =="
if python3 scripts/determinism_lint.py --self-test && python3 scripts/determinism_lint.py; then
  pass "determinism-lint"
else
  fail "determinism-lint"
fi

if [[ "$LINT_ONLY" -eq 1 ]]; then
  echo "== summary =="
  printf '%s\n' "${SUMMARY[@]}"
  exit "$((FAILURES > 0 ? 1 : 0))"
fi

# ------------------------------------------------------------ thread-safety
echo "== gate: thread-safety (clang -Wthread-safety) =="
if command -v clang++ >/dev/null 2>&1; then
  if cmake --preset analyze >build-analyze-configure.log 2>&1 &&
     cmake --build --preset analyze -j "$JOBS" --target dcsn >build-analyze.log 2>&1; then
    # Positive pass is clean; now the negative check. The violation TU must
    # NOT compile — a successful build means -Wthread-safety is not biting.
    if cmake --build --preset analyze -j "$JOBS" \
         --target analyze_fail_thread_safety >build-analyze-negative.log 2>&1; then
      echo "ERROR: analyze_fail_thread_safety compiled cleanly; the thread" >&2
      echo "safety analysis is not actually running (see build-analyze-negative.log)." >&2
      fail "thread-safety"
    else
      rm -f build-analyze-configure.log build-analyze.log build-analyze-negative.log
      pass "thread-safety"
    fi
  else
    echo "ERROR: analyze-preset build of dcsn failed; the tree violates the" >&2
    echo "annotated locking discipline (see build-analyze.log)." >&2
    tail -n 40 build-analyze.log 2>/dev/null >&2 || true
    fail "thread-safety"
  fi
else
  skip "thread-safety" "clang++ not installed"
fi

# --------------------------------------------------------------- clang-tidy
echo "== gate: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by every configure (CMakeLists sets
  # CMAKE_EXPORT_COMPILE_COMMANDS); prefer the default build dir, fall back
  # to a fresh release configure.
  COMPDB_DIR=""
  for d in build build-analyze build-debug; do
    if [[ -f "$d/compile_commands.json" ]]; then COMPDB_DIR="$d"; break; fi
  done
  if [[ -z "$COMPDB_DIR" ]]; then
    cmake -B build -S . >/dev/null
    COMPDB_DIR="build"
  fi
  mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' | sort)
  if clang-tidy -p "$COMPDB_DIR" --quiet "${TIDY_SOURCES[@]}"; then
    pass "clang-tidy"
  else
    fail "clang-tidy"
  fi
else
  skip "clang-tidy" "clang-tidy not installed"
fi

# ------------------------------------------------------------------- format
if [[ "$RUN_FORMAT" -eq 1 ]]; then
  echo "== gate: format (clang-format --dry-run) =="
  if command -v clang-format >/dev/null 2>&1; then
    mapfile -t FMT_SOURCES < <(find src tests -name '*.cpp' -o -name '*.hpp' | sort)
    if clang-format --dry-run -Werror "${FMT_SOURCES[@]}"; then
      pass "format"
    else
      fail "format"
    fi
  else
    skip "format" "clang-format not installed"
  fi
fi

echo "== summary =="
printf '%s\n' "${SUMMARY[@]}"
if [[ "$FAILURES" -gt 0 ]]; then
  echo "analyze.sh: $FAILURES gate(s) failed" >&2
  exit 1
fi
exit 0
