#!/usr/bin/env bash
# Tier-1 verification: configure + build + test in one command.
#
#   scripts/verify.sh                # Release build in ./build
#   scripts/verify.sh --tsan         # also run the concurrency suites under
#                                    # ThreadSanitizer (build-tsan, opt-in:
#                                    # the instrumented build is ~10x slower)
#   scripts/verify.sh --bench-smoke  # also run the rasterizer, incremental,
#                                    # service, tile-cache and streaming
#                                    # gates on their small workloads (exits
#                                    # nonzero if the span kernel loses its
#                                    # >=1.5x margin / equivalence,
#                                    # incremental reuse loses its modeled
#                                    # speedup / bit-identity, 4 concurrent
#                                    # sessions stop beating 2x one-at-a-time
#                                    # modeled throughput, 4 same-dataset
#                                    # sessions through the shared tile store
#                                    # cost more than 1.4x one session, or
#                                    # the frame server misses its latency
#                                    # SLO / delta-bandwidth / bit-exactness
#                                    # gates under 4 streamed clients)
#   scripts/verify.sh --golden       # golden-frame mode: verifies the
#                                    # checked-in goldens exist (exits
#                                    # nonzero if missing, never skips) and
#                                    # runs only the `golden`-labelled ctest
#                                    # entries. The goldens also run as part
#                                    # of the default ctest pass; this mode
#                                    # is the quick pre-commit check after a
#                                    # rendering change.
#   scripts/verify.sh --faults       # fault-tolerance mode: runs only the
#                                    # `faults`-labelled ctest entries (the
#                                    # deterministic fault-injection matrix,
#                                    # deadline/retry/breaker machinery and
#                                    # the replay pin). The suite also runs
#                                    # in the default ctest pass and under
#                                    # --tsan/--asan; this mode is the quick
#                                    # pre-commit check after touching the
#                                    # injector, the service retry loop or
#                                    # any engine fault site.
#   scripts/verify.sh --simd-tiers   # SIMD-tier mode: runs the determinism
#                                    # and golden-frame suites once per SIMD
#                                    # tier available on this host (scalar,
#                                    # then sse2/avx2 or neon) by setting
#                                    # DCSN_SIMD, plus the cross-tier
#                                    # byte-equality suite (test_simd). A
#                                    # divergent tier means an intrinsic
#                                    # kernel broke the lattice contract;
#                                    # this is the quick pre-commit check
#                                    # after touching simd_dispatch.cpp.
#   scripts/verify.sh --asan         # build-asan: Address+UndefinedBehavior
#                                    # sanitizers (-fno-sanitize-recover=all)
#                                    # and the FULL ctest suite under them
#                                    # (test_simd included — the gather/
#                                    # maskload kernels run instrumented).
#                                    # Slow; any finding is a hard failure.
#   scripts/verify.sh --analyze      # run scripts/analyze.sh: lock-lint +
#                                    # determinism lint (always), clang
#                                    # thread-safety build + negative compile
#                                    # check and clang-tidy (skip cleanly if
#                                    # clang is not installed)
#   scripts/verify.sh --format-check # analyze.sh gates + clang-format
#                                    # --dry-run -Werror diff mode
#   BUILD_DIR=out scripts/verify.sh
#   JOBS=8 scripts/verify.sh
#
# Mirrors the ROADMAP's verify line exactly; CI and pre-merge checks should
# call this script so the recipe lives in one place.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

RUN_TSAN=0
RUN_BENCH_SMOKE=0
RUN_GOLDEN_ONLY=0
RUN_FAULTS_ONLY=0
RUN_SIMD_TIERS=0
RUN_ASAN=0
RUN_ANALYZE=0
RUN_FORMAT_CHECK=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    --bench-smoke) RUN_BENCH_SMOKE=1 ;;
    --golden) RUN_GOLDEN_ONLY=1 ;;
    --faults) RUN_FAULTS_ONLY=1 ;;
    --simd-tiers) RUN_SIMD_TIERS=1 ;;
    --asan) RUN_ASAN=1 ;;
    --analyze) RUN_ANALYZE=1 ;;
    --format-check) RUN_ANALYZE=1; RUN_FORMAT_CHECK=1 ;;
    *) echo "unknown argument: $arg (supported: --tsan, --bench-smoke, --golden, --faults, --simd-tiers, --asan, --analyze, --format-check)" >&2; exit 2 ;;
  esac
done

# Static-analysis gates run before the build: the lints need no compiler and
# fail fastest, and analyze.sh owns its own build trees (build-analyze).
if [[ "$RUN_ANALYZE" -eq 1 ]]; then
  echo "== static-analysis gates (scripts/analyze.sh) =="
  if [[ "$RUN_FORMAT_CHECK" -eq 1 ]]; then
    scripts/analyze.sh --format-check
  else
    scripts/analyze.sh
  fi
fi

# Goldens must exist before the golden suite runs — fail loudly, never
# skip. Checked *after* the build so the regeneration command it recommends
# is actually runnable from a fresh checkout.
check_goldens() {
  local count
  count=$(find tests/golden -name '*.golden' 2>/dev/null | wc -l)
  if [[ "$count" -lt 1 ]]; then
    echo "ERROR: no golden frames found under tests/golden/." >&2
    echo "Generate them with: $BUILD_DIR/tests/test_golden_frames --update-goldens" >&2
    exit 1
  fi
}

cmake -B "$BUILD_DIR" -S .

if [[ "$RUN_GOLDEN_ONLY" -eq 1 ]]; then
  echo "== golden-frame verification (ctest -L golden) =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target test_golden_frames
  check_goldens
  (cd "$BUILD_DIR" && ctest --output-on-failure -L golden -j "$JOBS")
  exit 0
fi

if [[ "$RUN_FAULTS_ONLY" -eq 1 ]]; then
  echo "== fault-tolerance verification (ctest -L faults) =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target test_faults
  (cd "$BUILD_DIR" && ctest --output-on-failure -L faults -j "$JOBS")
  exit 0
fi

if [[ "$RUN_SIMD_TIERS" -eq 1 ]]; then
  # Per-tier determinism verification: the same pixels must fall out of
  # every SIMD tier, so the determinism and golden-frame suites run once
  # per tier under DCSN_SIMD. Tier availability mirrors the dispatcher's
  # detection (sse2 is x86-64 baseline, avx2 from the cpuinfo flag, neon is
  # aarch64 baseline); if the shell overshoots, the dispatcher warns and
  # falls back, so an overshoot weakens the check rather than failing it.
  echo "== SIMD tier verification (determinism + golden per DCSN_SIMD tier) =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target test_determinism test_golden_frames test_simd
  check_goldens
  tiers="scalar"
  case "$(uname -m)" in
    x86_64|amd64)
      tiers+=" sse2"
      grep -qw avx2 /proc/cpuinfo 2>/dev/null && tiers+=" avx2" ;;
    aarch64|arm64) tiers+=" neon" ;;
  esac
  for tier in $tiers; do
    echo "-- DCSN_SIMD=$tier: test_determinism"
    DCSN_SIMD="$tier" "$BUILD_DIR/tests/test_determinism" --gtest_brief=1
    echo "-- DCSN_SIMD=$tier: test_golden_frames"
    DCSN_SIMD="$tier" "$BUILD_DIR/tests/test_golden_frames" --gtest_brief=1
  done
  echo "-- cross-tier byte equality (test_simd)"
  "$BUILD_DIR/tests/test_simd" --gtest_brief=1
  exit 0
fi

cmake --build "$BUILD_DIR" -j "$JOBS"
check_goldens
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

if [[ "$RUN_BENCH_SMOKE" -eq 1 ]]; then
  # Small-workload runs of the gated ablations: the span-vs-reference
  # rasterizer gate (>=1.5x + coverage/value equivalence) and the
  # incremental-resynthesis gate (modeled speedup + bit-identity to full
  # resynthesis). Full gates: scripts/bench.sh.
  echo "== rasterizer bench smoke (bench_raster_kernel --smoke) =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_raster_kernel bench_incremental bench_service bench_tile_cache bench_stream
  "$BUILD_DIR/bench/bench_raster_kernel" --smoke
  echo "== incremental bench smoke (bench_incremental --smoke) =="
  "$BUILD_DIR/bench/bench_incremental" --smoke
  echo "== service bench smoke (bench_service --smoke) =="
  "$BUILD_DIR/bench/bench_service" --smoke
  echo "== tile-cache bench smoke (bench_tile_cache --smoke) =="
  "$BUILD_DIR/bench/bench_tile_cache" --smoke
  echo "== streaming bench smoke (bench_stream --smoke) =="
  "$BUILD_DIR/bench/bench_stream" --smoke
fi

if [[ "$RUN_ASAN" -eq 1 ]]; then
  # Full suite under ASan+UBSan with -fno-sanitize-recover=all: any heap
  # error, overflow, or UB aborts the test, so a green run is a strong
  # memory-safety statement. Instrumented builds are several times slower;
  # the ctest timeouts (600s) still hold on one core.
  echo "== AddressSanitizer + UBSan pass (build-asan) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS"
  # LeakSanitizer's ptrace-based stop-the-world is refused by many container
  # runtimes (the tracer thread segfaults); heap errors and UB still abort.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1 detect_leaks=0}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
  (cd build-asan && ctest --output-on-failure -j "$JOBS")
fi

if [[ "$RUN_TSAN" -eq 1 ]]; then
  # The scheduler's cross-group stealing, the shared runtime/service, and
  # the pipe/queue machinery are the code where a data race would hide; run
  # exactly those suites instrumented. gtest discovery re-runs each binary,
  # so build only what we need.
  TSAN_SUITES=(test_scheduling test_synthesizers test_service test_pipe test_tile_store test_util test_faults test_net test_simd)
  echo "== ThreadSanitizer pass (build-tsan) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS" --target "${TSAN_SUITES[@]}"
  # TSan needs unrestricted ptrace/ASLR handling in some containers; surface
  # a clear failure rather than a hang if the kernel refuses.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
  for suite in "${TSAN_SUITES[@]}"; do
    echo "-- $suite (tsan)"
    "./build-tsan/tests/$suite" --gtest_brief=1
  done
fi
