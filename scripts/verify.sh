#!/usr/bin/env bash
# Tier-1 verification: configure + build + test in one command.
#
#   scripts/verify.sh            # Release build in ./build
#   BUILD_DIR=out scripts/verify.sh
#   JOBS=8 scripts/verify.sh
#
# Mirrors the ROADMAP's verify line exactly; CI and pre-merge checks should
# call this script so the recipe lives in one place.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS"
