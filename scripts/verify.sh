#!/usr/bin/env bash
# Tier-1 verification: configure + build + test in one command.
#
#   scripts/verify.sh                # Release build in ./build
#   scripts/verify.sh --tsan         # also run the concurrency suites under
#                                    # ThreadSanitizer (build-tsan, opt-in:
#                                    # the instrumented build is ~10x slower)
#   scripts/verify.sh --bench-smoke  # also run the rasterizer ablation gate
#                                    # on its small workload (exits nonzero
#                                    # if the span kernel loses its >=1.5x
#                                    # margin or its equivalence to the
#                                    # reference walk)
#   BUILD_DIR=out scripts/verify.sh
#   JOBS=8 scripts/verify.sh
#
# Mirrors the ROADMAP's verify line exactly; CI and pre-merge checks should
# call this script so the recipe lives in one place.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

RUN_TSAN=0
RUN_BENCH_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    --bench-smoke) RUN_BENCH_SMOKE=1 ;;
    *) echo "unknown argument: $arg (supported: --tsan, --bench-smoke)" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

if [[ "$RUN_BENCH_SMOKE" -eq 1 ]]; then
  # Small-workload run of the span-vs-reference rasterizer ablation: fails
  # the build when kSpan drops below 1.5x kReference fragment throughput or
  # the coverage/value equivalence breaks (full gate: scripts/bench.sh).
  echo "== rasterizer bench smoke (bench_raster_kernel --smoke) =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_raster_kernel
  "$BUILD_DIR/bench/bench_raster_kernel" --smoke
fi

if [[ "$RUN_TSAN" -eq 1 ]]; then
  # The scheduler's cross-group stealing and the pipe/queue machinery are the
  # code where a data race would hide; run exactly those suites instrumented.
  # gtest discovery re-runs each binary, so build only what we need.
  TSAN_SUITES=(test_scheduling test_synthesizers test_pipe test_util)
  echo "== ThreadSanitizer pass (build-tsan) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS" --target "${TSAN_SUITES[@]}"
  # TSan needs unrestricted ptrace/ASLR handling in some containers; surface
  # a clear failure rather than a hang if the kernel refuses.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
  for suite in "${TSAN_SUITES[@]}"; do
    echo "-- $suite (tsan)"
    "./build-tsan/tests/$suite" --gtest_brief=1
  done
fi
