#!/usr/bin/env python3
"""Determinism lint for the dcsn synthesis core (src/core + src/render).

PR 4 made every frame a pure function of its inputs: contributions snap to a
2^-17 lattice (util::simd::quantize_contribution), so accumulation order —
worker interleaving, steal schedules, session multiplexing — cannot show in
the pixels. Three textual rules keep that property from regressing:

  D1  no nondeterministic random sources: std::rand / srand /
      std::random_device / std::mt19937 / std::default_random_engine /
      std::uniform_*_distribution in src/core or src/render. Spot layouts
      come from the deterministic seeded generator in core/spot_params.
      No waiver — if you think you need one, you are breaking the
      golden-frame suite.
  D2  no wall-clock reads (steady_clock / system_clock /
      high_resolution_clock / ::now()) outside util/stopwatch.hpp unless the
      line (or the line above) carries a `// determinism:` comment saying why
      the read cannot affect pixels (timing models, scheduling gates, stats).
  D3  in the accumulation hot files (rasterizer.cpp, framebuffer.cpp,
      compose.cpp) and the SIMD kernel files (src/util/simd*), an
      indexed/pointer float `+=` must sit within a few lines of a
      util::simd lattice helper (quantize_contribution or a util::simd::
      call) — raw unquantized accumulation is how order dependence sneaks
      back in. Stats/counter names are exempt.
      waiver: `// determinism:` comment on the line or the line above.
  D4  in the SIMD kernel files, an intrinsic float add
      (_mm_add_ps / _mm256_add_ps / vaddq_f32) must have a quantize
      reference (quantize128/quantize256/quantize_neon/quantize_contribution)
      within a few lines — the vector tiers carry the same lattice contract
      as the scalar expression, and an unquantized vector accumulation is
      invisible to D3's `+=` pattern.
      waiver: `// determinism:` comment on the line or the line above.

Exit status: 0 clean, 1 violations, 2 usage error.

  scripts/determinism_lint.py [--root DIR]   lint DIR/src/{core,render} and
                                             DIR/src/util/simd*
  scripts/determinism_lint.py --self-test    run against tests/lint_fixtures
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

RANDOM_SOURCE = re.compile(
    r"std::(rand|srand|random_device|mt19937(?:_64)?|default_random_engine|"
    r"minstd_rand0?|uniform_(?:int|real)_distribution|normal_distribution)\b"
    r"|\brand\s*\(\s*\)"
)
WALL_CLOCK = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)\b|::now\s*\("
)
WAIVER = re.compile(r"//\s*determinism:")
# Indexed or pointer-target float accumulation: row[x] += v, *ptr += v,
# frag[k] += v. Plain `name += v` (locals, counters) is not flagged.
ACCUMULATION = re.compile(r"(?:\]|\*\s*\w+)\s*\+=")
LATTICE_HELPER = re.compile(r"quantize_contribution|util::simd::|simd::add")
# Accumulation targets that are bookkeeping, not pixels.
STATS_LHS = re.compile(
    r"\b(stats|sum|sum_sq|fragments|visited|pixels_touched|count|total|"
    r"seconds|genP|genT|bytes)\w*\s*(?:\[[^\]]*\])?\s*\+="
)
ACCUM_FILES = {"rasterizer.cpp", "framebuffer.cpp", "compose.cpp"}
ACCUM_CONTEXT_LINES = 6
# Intrinsic float adds in the explicit-SIMD kernel files (rule D4). Integer
# adds (_mm256_add_epi32 etc.) are position arithmetic and exempt.
INTRINSIC_ADD = re.compile(r"_mm256_add_ps|_mm_add_ps|vaddq_f32")
KERNEL_QUANTIZE = re.compile(
    r"quantize(?:128|256|_neon|_contribution|_span)")
# D4 looks a few lines DOWN as well: the fused samplers compute a lerp and
# quantize the result on the following lines.
D4_DOWN_LINES = 3


class Violation:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule, self.path, self.line, self.message = rule, path, line, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(line: str) -> str:
    return line.split("//", 1)[0]


def has_waiver(lines: list[str], idx: int) -> bool:
    """Waivers cover their own line and the statement directly below the
    comment block they open — scan upward through contiguous comments."""
    if idx < len(lines) and WAIVER.search(lines[idx]):
        return True
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        if WAIVER.search(lines[j]):
            return True
        j -= 1
    return False


def is_kernel_file(path: Path) -> bool:
    return path.name.startswith("simd")


def check_file(path: Path) -> list[Violation]:
    lines = path.read_text(encoding="utf-8").splitlines()
    violations: list[Violation] = []
    name = path.name
    kernel = is_kernel_file(path)

    for idx, line in enumerate(lines):
        code = strip_comments(line)

        if RANDOM_SOURCE.search(code):
            violations.append(Violation(
                "D1", path, idx + 1,
                "nondeterministic random source in the synthesis core — use "
                "the seeded generator in core/spot_params (no waiver)"))

        if WALL_CLOCK.search(code) and not has_waiver(lines, idx):
            violations.append(Violation(
                "D2", path, idx + 1,
                "wall-clock read without a `// determinism:` comment "
                "explaining why it cannot affect pixels"))

        if (name in ACCUM_FILES or kernel) and ACCUMULATION.search(code):
            if STATS_LHS.search(code):
                continue
            lo = max(0, idx - ACCUM_CONTEXT_LINES)
            context = "\n".join(lines[lo:idx + 1])
            if LATTICE_HELPER.search(context) or has_waiver(lines, idx):
                continue
            violations.append(Violation(
                "D3", path, idx + 1,
                "indexed float accumulation with no lattice quantization in "
                "sight — contributions must go through "
                "util::simd::quantize_contribution (waiver: `// determinism:`)"))

        if kernel and INTRINSIC_ADD.search(code):
            lo = max(0, idx - ACCUM_CONTEXT_LINES)
            hi = min(len(lines), idx + 1 + D4_DOWN_LINES)
            context = "\n".join(lines[lo:hi])
            if KERNEL_QUANTIZE.search(context) or has_waiver(lines, idx):
                continue
            violations.append(Violation(
                "D4", path, idx + 1,
                "intrinsic float add with no quantize in sight — vector "
                "accumulation must stay on the contribution lattice "
                "(waiver: `// determinism:`)"))
    return violations


def lint_tree(root: Path) -> list[Violation]:
    files: list[Path] = []
    for sub in ("src/core", "src/render"):
        base = root / sub
        if base.is_dir():
            files.extend(sorted(base.rglob("*.hpp")))
            files.extend(sorted(base.rglob("*.cpp")))
    util = root / "src/util"
    if util.is_dir():
        files.extend(p for p in sorted(util.iterdir())
                     if p.suffix in (".hpp", ".cpp") and is_kernel_file(p))
    violations: list[Violation] = []
    for path in files:
        violations.extend(check_file(path))
    return violations


def self_test(root: Path) -> int:
    fixtures = root / "tests" / "lint_fixtures"
    good = lint_tree(fixtures / "good_tree")
    bad = lint_tree(fixtures / "bad_tree")
    ok = True
    if good:
        ok = False
        print("determinism_lint self-test FAILED: good_tree should be clean:")
        for v in good:
            print(f"  {v}")
    expected = {"D1", "D2", "D3", "D4"}
    seen = {v.rule for v in bad}
    if seen != expected:
        ok = False
        print(f"determinism_lint self-test FAILED: bad_tree should trip "
              f"{sorted(expected)}, tripped {sorted(seen)}:")
        for v in bad:
            print(f"  {v}")
    print(f"determinism_lint self-test: {'PASS' if ok else 'FAIL'} "
          f"(good_tree: {len(good)} violations, bad_tree rules: {sorted(seen)})")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test(REPO)

    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print(f"determinism_lint: {len(violations)} violation(s)")
        return 1
    print("determinism_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
