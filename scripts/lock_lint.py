#!/usr/bin/env python3
"""Textual lock-discipline lint for the dcsn tree.

The Clang Thread Safety Analysis (the `analyze` CMake preset) is the
authoritative checker, but it only runs where a clang frontend exists. This
lint enforces the *textual* half of the discipline on any machine, so the
annotations cannot rot while the tree is built with GCC:

  R1  no raw std synchronization primitives (std::mutex, std::lock_guard,
      std::condition_variable, ...) anywhere in src/ outside
      util/thread_annotations.hpp — everything goes through the annotated
      util::Mutex / util::MutexLock / util::CondVar / util::SharedMutex
      wrappers.           waiver: // lock-lint: allow-std
  R2  every util::Mutex / util::SharedMutex member must be *referenced* by at
      least one DCSN_GUARDED_BY / DCSN_PT_GUARDED_BY / DCSN_REQUIRES /
      DCSN_ACQUIRE / DCSN_RELEASE annotation in the same file — a mutex that
      guards nothing is either dead or undocumented.
                          waiver: // lock-lint: standalone
  R3  every mutex named inside a DCSN_* annotation must be declared in the
      same file (catches typos the no-op GCC expansion would hide).
  R4  in a class/struct that owns a util::Mutex/SharedMutex member, every
      non-static, non-const, non-atomic, non-reference data member must be
      either DCSN_GUARDED_BY-annotated or carry an explicit waiver with a
      reason — this is what catches "added a field to a concurrent class and
      forgot to think about locking" without clang.
                          waiver: // lock-lint: unguarded(<reason>)
  R5  no direct .lock()/.unlock()/.try_lock()/.lock_shared() calls on mutex
      objects outside the wrapper header — RAII only.
                          waiver: // lock-lint: allow-direct-lock

Waiver comments apply to the line they sit on or the line directly below
them. Exit status: 0 clean, 1 violations, 2 usage error.

  scripts/lock_lint.py [--root DIR]       lint DIR/src (default: repo root)
  scripts/lock_lint.py --self-test        run against tests/lint_fixtures
  scripts/lock_lint.py --lock-map         print the ARCHITECTURE.md lock map
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

STD_PRIMITIVES = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:util::)?(?:Mutex|SharedMutex)\s+(\w+)\s*;"
)
ANNOTATION_REF = re.compile(
    r"DCSN_(?:PT_)?GUARDED_BY\(([^)]+)\)"
    r"|DCSN_(?:REQUIRES|REQUIRES_SHARED|ACQUIRE|ACQUIRE_SHARED|RELEASE|"
    r"RELEASE_SHARED|TRY_ACQUIRE|EXCLUDES|ASSERT_CAPABILITY|"
    r"RETURN_CAPABILITY)\(([^)]*)\)"
)
DIRECT_LOCK = re.compile(
    r"\b(\w*[Mm]utex\w*(?:_|\b)|\w+\.mutex|\w+->mutex)\s*"
    r"\.\s*(?:lock|unlock|try_lock|lock_shared|unlock_shared)\s*\("
)
CLASS_DECL = re.compile(
    r"^\s*(?:class|struct)\s+(?:DCSN_\w+(?:\([^)]*\))?\s+)?((?:\w+::)*\w+)")
# A data-member declaration line, approximately: type name(s) terminated by
# ';' or '{...};' or '= ...;' at class scope. Functions are excluded by the
# trailing-paren check below.
MEMBER_DECL = re.compile(
    r"^(?:mutable\s+)?(?!using\b|typedef\b|friend\b|static\b|return\b|"
    r"public\b|private\b|protected\b|template\b|explicit\b|virtual\b|"
    r"case\b|if\b|for\b|while\b|else\b|enum\b|class\b|struct\b|namespace\b)"
    r"(?P<type>(?:const\s+)?[\w:<>,()*&\s]+?)\s+"
    r"(?P<name>\w+_?)\s*(?P<anno>DCSN_(?:PT_)?GUARDED_BY\([^)]*\))?\s*"
    r"(?:=\s*[^;]*|\{[^}]*\})?\s*;"
)
WAIVER = re.compile(r"//\s*lock-lint:\s*(allow-std|standalone|allow-direct-lock|unguarded\([^)]*\))")


def load(path: Path) -> list[str]:
    return path.read_text(encoding="utf-8").splitlines()


def has_waiver(lines: list[str], idx: int, kind: str) -> bool:
    """A waiver covers its own line and the line directly below it."""
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = WAIVER.search(lines[j])
            if m and m.group(1).startswith(kind):
                return True
    return False


def strip_comments(line: str) -> str:
    return line.split("//", 1)[0]


def match_member(code: str):
    """MEMBER_DECL against the lstripped line (avoids ^\s* backtracking
    defeating the keyword lookahead). Rejects continuation lines of
    multi-line function declarations: their tail (`... spots) const;`) can
    satisfy the regex with an unbalanced type and a keyword for a name."""
    m = MEMBER_DECL.match(code.lstrip())
    if not m:
        return None
    if m.group("type").count("(") != m.group("type").count(")"):
        return None
    if m.group("name") in {"const", "noexcept", "override", "final", "default", "delete"}:
        return None
    return m


class Violation:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule, self.path, self.line, self.message = rule, path, line, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def annotation_refs(lines: list[str]) -> set[str]:
    """Every mutex name referenced by any DCSN_* annotation in the file."""
    refs: set[str] = set()
    for line in lines:
        for m in ANNOTATION_REF.finditer(line):
            arg = m.group(1) or m.group(2) or ""
            for token in re.split(r"[,\s]+", arg):
                token = token.strip()
                if token:
                    refs.add(token.split("->")[-1].split(".")[-1].lstrip("&*"))
    return refs


def class_spans(lines: list[str]) -> list[tuple[str, int, int]]:
    """(name, first_line, last_line) for each top-nesting class/struct body.

    Brace counting over comment-stripped lines; good enough for this
    codebase's formatting (clang-format keeps declarations one per line).
    """
    spans = []
    i = 0
    while i < len(lines):
        stripped = strip_comments(lines[i])
        m = CLASS_DECL.match(stripped)
        if m and ";" not in stripped.split("{")[0]:
            name = m.group(1)
            depth = 0
            opened = False
            j = i
            while j < len(lines):
                for ch in strip_comments(lines[j]):
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                if opened and depth <= 0:
                    break
                j += 1
            if opened:
                spans.append((name, i, j))
            i = i + 1
        else:
            i += 1
    return spans


def member_lines_of_class(lines: list[str], begin: int, end: int) -> list[int]:
    """Line indices of class-scope member declarations (depth == 1 only)."""
    result = []
    depth = 0
    for idx in range(begin, min(end + 1, len(lines))):
        code = strip_comments(lines[idx])
        entering = depth
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
        if entering == 1 and depth == 1:
            result.append(idx)
    return result


def check_file(path: Path, wrapper_header: str) -> list[Violation]:
    lines = load(path)
    violations: list[Violation] = []
    is_wrapper = path.as_posix().endswith(wrapper_header)

    declared_mutexes: dict[str, int] = {}
    for idx, line in enumerate(lines):
        code = strip_comments(line)
        m = MUTEX_MEMBER.match(code)
        if m:
            declared_mutexes[m.group(1)] = idx

    # Annotations in a .cpp may name mutex members declared in the paired
    # header (DCSN_REQUIRES lambdas over class members).
    known_mutexes = set(declared_mutexes)
    if path.suffix == ".cpp":
        sibling = path.with_suffix(".hpp")
        if sibling.exists():
            for line in load(sibling):
                m = MUTEX_MEMBER.match(strip_comments(line))
                if m:
                    known_mutexes.add(m.group(1))

    refs = annotation_refs(lines)

    for idx, line in enumerate(lines):
        code = strip_comments(line)

        # R1: raw std primitives.
        if not is_wrapper and STD_PRIMITIVES.search(code):
            if not has_waiver(lines, idx, "allow-std"):
                violations.append(Violation(
                    "R1", path, idx + 1,
                    "raw std synchronization primitive — use util::Mutex / "
                    "util::MutexLock / util::CondVar (waiver: lock-lint: allow-std)"))

        # R5: direct lock()/unlock() calls.
        if not is_wrapper and DIRECT_LOCK.search(code):
            if not has_waiver(lines, idx, "allow-direct-lock"):
                violations.append(Violation(
                    "R5", path, idx + 1,
                    "direct lock()/unlock() on a mutex — use a scoped "
                    "util::MutexLock (waiver: lock-lint: allow-direct-lock)"))

    # R2: every declared mutex must be referenced by an annotation.
    for name, idx in declared_mutexes.items():
        if name not in refs and not has_waiver(lines, idx, "standalone"):
            violations.append(Violation(
                "R2", path, idx + 1,
                f"mutex '{name}' guards nothing: no DCSN_GUARDED_BY/REQUIRES "
                "references it (waiver: lock-lint: standalone)"))

    # R3: every annotated mutex name must be declared in this file or its
    # paired header. The wrapper header is exempt: its DCSN_* *definitions*
    # and constructor parameters legitimately use placeholder names.
    if not is_wrapper:
        for idx, line in enumerate(lines):
            for m in ANNOTATION_REF.finditer(strip_comments(line)):
                arg = (m.group(1) or m.group(2) or "").strip()
                for token in re.split(r"[,\s]+", arg):
                    token = token.split("->")[-1].split(".")[-1].lstrip("&*").strip()
                    if token and token not in known_mutexes and not re.match(r"^(true|false|\d)", token):
                        violations.append(Violation(
                            "R3", path, idx + 1,
                            f"annotation names '{token}', which is not a mutex "
                            "declared in this file or its header (typo?)"))

    # R4: unannotated members of mutex-owning classes.
    if declared_mutexes:
        for cls, begin, end in class_spans(lines):
            direct = set(member_lines_of_class(lines, begin, end))
            span_mutexes = {n for n, i in declared_mutexes.items()
                            if begin <= i <= end and i in direct}
            if not span_mutexes:
                continue
            for idx in sorted(direct):
                code = strip_comments(lines[idx])
                m = match_member(code)
                if not m:
                    continue
                mtype = " ".join(m.group("type").split())
                name = m.group("name")
                if name in declared_mutexes:
                    continue
                if "(" in code.split(";")[0] and "DCSN_" not in code:
                    continue  # function declaration, not a member
                if mtype.startswith("const ") or "std::atomic" in mtype:
                    continue
                if "CondVar" in mtype or "condition_variable" in mtype:
                    continue
                if "&" in mtype:
                    continue  # reference members: bound at construction
                if m.group("anno"):
                    continue
                if re.search(r"DCSN_(?:PT_)?GUARDED_BY", code):
                    continue
                if has_waiver(lines, idx, "unguarded"):
                    continue
                violations.append(Violation(
                    "R4", path, idx + 1,
                    f"member '{cls}::{name}' lives in a mutex-owning class but "
                    "is neither DCSN_GUARDED_BY-annotated nor waived "
                    "(waiver: lock-lint: unguarded(<reason>))"))
    return violations


def lint_tree(root: Path, wrapper_header: str = "util/thread_annotations.hpp") -> list[Violation]:
    src = root / "src"
    files = sorted(list(src.rglob("*.hpp")) + list(src.rglob("*.cpp")))
    violations: list[Violation] = []
    for path in files:
        violations.extend(check_file(path, wrapper_header))
    return violations


# ---------------------------------------------------------------------------
# Lock map: the ARCHITECTURE.md table, generated from the annotations.

def lock_map(root: Path) -> str:
    rows = []
    src = root / "src"
    for path in sorted(list(src.rglob("*.hpp")) + list(src.rglob("*.cpp"))):
        lines = load(path)
        spans = class_spans(lines)

        def owner_of(idx: int) -> str:
            best = "—"
            for cls, begin, end in spans:
                if begin <= idx <= end:
                    best = cls  # innermost span wins (spans nest in order)
            return best

        mutexes: dict[str, tuple[int, str]] = {}
        for idx, line in enumerate(lines):
            m = MUTEX_MEMBER.match(strip_comments(line))
            if m:
                kind = "shared" if "SharedMutex" in line else "exclusive"
                mutexes[m.group(1)] = (idx, kind)
        if not mutexes:
            continue
        guarded: dict[str, list[str]] = {n: [] for n in mutexes}
        for idx, line in enumerate(lines):
            code = strip_comments(lines[idx])
            # The member name directly precedes its annotation, even when the
            # type wrapped onto the previous line (match_member would miss
            # those continuations).
            gm = re.search(r"(\w+)\s+DCSN_(?:PT_)?GUARDED_BY\((\w+)\)", code)
            if gm and gm.group(2) in guarded:
                guarded[gm.group(2)].append(gm.group(1))
        rel = path.relative_to(root)
        for name, (idx, kind) in mutexes.items():
            members = ", ".join(f"`{g}`" for g in guarded[name]) or "*(see annotations)*"
            rows.append(f"| `{rel}` | {owner_of(idx)} | `{name}` ({kind}) | {members} |")
    header = (
        "| File | Owner | Mutex | Guards |\n"
        "|------|-------|-------|--------|\n")
    return header + "\n".join(rows)


# ---------------------------------------------------------------------------
# Self-test against the checked-in fixtures.

def self_test(root: Path) -> int:
    fixtures = root / "tests" / "lint_fixtures"
    good = lint_tree(fixtures / "good_tree")
    bad = lint_tree(fixtures / "bad_tree")
    ok = True
    if good:
        ok = False
        print("lock_lint self-test FAILED: good_tree should be clean, got:")
        for v in good:
            print(f"  {v}")
    expected = {"R1", "R2", "R3", "R4", "R5"}
    seen = {v.rule for v in bad}
    if seen != expected:
        ok = False
        print(f"lock_lint self-test FAILED: bad_tree should trip {sorted(expected)}, "
              f"tripped {sorted(seen)}:")
        for v in bad:
            print(f"  {v}")
    print(f"lock_lint self-test: {'PASS' if ok else 'FAIL'} "
          f"(good_tree: {len(good)} violations, bad_tree rules: {sorted(seen)})")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO,
                        help="tree to lint (expects <root>/src)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the checked-in fixture trees instead")
    parser.add_argument("--lock-map", action="store_true",
                        help="emit the markdown lock-map table and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test(REPO)
    if args.lock_map:
        print(lock_map(args.root))
        return 0

    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print(f"lock_lint: {len(violations)} violation(s)")
        return 1
    print("lock_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
