// Ablation for the paper's §5.2 note: "40,000 spots per texture will result
// in very accurate renderings. Using less spots will result in less
// accurate renderings, but can increase performance substantially."
//
// Sweeps the spot count on the DNS workload; accuracy proxy is texture
// coverage (fraction of pixels receiving at least one spot contribution).
#include <cstdio>

#include "bench_common.hpp"
#include "core/serial_synthesizer.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 2);

  bench::Workload base = bench::make_dns_workload(args.get_int("spinup", 80));
  std::printf("spot-count ablation on: %s\n\n", base.name.c_str());

  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  dnc.bus_bytes_per_second = bench::kPaperBusBytesPerSecond;

  util::CsvWriter csv(bench::csv_path(argc, argv, "ablation_spots.csv"), {"spots", "rate", "coverage"});
  std::printf("%8s %12s %12s\n", "spots", "textures/s", "coverage");
  for (const std::int64_t count : {1000, 5000, 10000, 20000, 40000}) {
    bench::Workload variant = bench::make_dns_workload(0);
    // Reuse the spun-up field; only the spot set changes.
    variant.field = std::make_unique<field::RectilinearVectorField>(
        *static_cast<const field::RectilinearVectorField*>(base.field.get()));
    variant.synthesis.spot_count = count;
    variant.synthesis.intensity_scale =
        core::SerialSynthesizer::natural_intensity(variant.synthesis);
    util::Rng rng(variant.synthesis.seed);
    variant.spots = core::make_random_spots(variant.field->domain(), count, rng);

    core::FrameStats stats;
    const double rate = bench::measure_rate(variant, dnc, frames, &stats);

    core::DncSynthesizer engine(variant.synthesis, dnc);
    engine.synthesize(*variant.field, variant.spots);
    std::int64_t covered = 0;
    const auto& tex = engine.texture();
    for (int y = 0; y < tex.height(); ++y)
      for (int x = 0; x < tex.width(); ++x)
        if (tex.at(x, y) != 0.0f) ++covered;
    const double coverage =
        static_cast<double>(covered) / static_cast<double>(tex.pixel_count());
    std::printf("%8lld %12.2f %11.1f%%\n", static_cast<long long>(count), rate,
                coverage * 100.0);
    csv.row({std::to_string(count), util::CsvWriter::num(rate),
             util::CsvWriter::num(coverage)});
  }
  std::printf("\npaper's claim: fewer spots are substantially faster but leave "
              "the texture undersampled (coverage drops below 100%%).\n");
  return 0;
}
