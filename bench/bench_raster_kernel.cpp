// Ablation gate for the span-based scanline rasterizer (ISSUE 3).
//
// Workload: bent-spot ribbons traced through a swirl — the thin, curved,
// high-aspect meshes central to the paper — pre-transformed into one big
// CommandBuffer so the measurement isolates the fragment hot path. The
// bench:
//
//   1. proves equivalence: identical pixel coverage (exact framebuffer
//      match on a constant-texel clone of the geometry) and per-pixel
//      values within 1e-5 under both blend modes;
//   2. measures fragment throughput of kSpan vs kReference over repeated
//      rasterization (thread-CPU clock, stable on loaded 1-core CI hosts);
//   3. ablates the runtime SIMD dispatch tiers (ISSUE 10): the workload's
//      own blend spans are captured and replayed through each tier's fused
//      sample_row kernel, isolating the kernel from triangle setup (which
//      Amdahl-limits any end-to-end tier ratio);
//   4. runs the whole DnC engine once per algorithm and reports the
//      eq. 3.2 modeled frame seconds;
//   5. gates: span must reach >= 2.0x reference throughput (1.5x with
//      --smoke, whose workload is too small to amortize setup), AND — when
//      the host has AVX2 — the avx2 tier must reach >= 1.5x the scalar
//      (omp-simd) tier's span-kernel fragment throughput (1.2x with
//      --smoke), else the process exits nonzero.
//
// usage: bench_raster_kernel [--smoke] [--json <path>]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/spot_geometry.hpp"
#include "core/spot_source.hpp"
#include "field/analytic.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/simd_dispatch.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

struct RibbonWorkload {
  bench::Workload workload;        // for the eq. 3.2 engine runs
  render::CommandBuffer geometry;  // pre-transformed meshes (kernel timing)
  render::CommandBuffer coverage;  // same meshes, constant UV, unit weight
  std::shared_ptr<const render::SpotProfile> profile;
};

RibbonWorkload make_ribbon_workload(bool smoke) {
  RibbonWorkload r;
  bench::Workload& w = r.workload;
  w.name = smoke ? "bent ribbons (smoke)" : "bent ribbons";

  // Solid rotation under a smooth envelope, exactly zero outside the core
  // (same construction as the balance workload) — but every spot is seeded
  // *inside* the core, so each one traces a full-length curved ribbon.
  const field::Vec2 center{0.5, 0.5};
  const double core_radius = 0.34;
  const field::Rect domain{0, 0, 1, 1};
  auto swirl = [center, core_radius](field::Vec2 p) -> field::Vec2 {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    const double r2 = (dx * dx + dy * dy) / (core_radius * core_radius);
    if (r2 >= 1.0) return {0.0, 0.0};
    const double envelope = (1.0 - r2) * (1.0 - r2);
    return {-dy * envelope, dx * envelope};
  };
  const double max_mag = core_radius * 0.2863;  // max of r * (1-(r/R)^2)^2
  w.field = std::make_unique<field::CallableField>(swirl, domain, max_mag);

  // Spot scale sits at the data-browser zoom level (the window feature:
  // a domain sub-rectangle re-synthesized at full texture resolution), where
  // ribbons span tens of pixels and the frame is genT-bound — exactly the
  // regime where rasterizer throughput decides the frame rate. At overview
  // zoom the paper's meshes tessellate below one pixel per quad and
  // per-triangle setup dominates both algorithms equally.
  w.synthesis.texture_width = smoke ? 256 : 512;
  w.synthesis.texture_height = smoke ? 256 : 512;
  w.synthesis.spot_count = smoke ? 250 : 700;
  w.synthesis.kind = core::SpotKind::kBent;
  w.synthesis.bent.mesh_cols = smoke ? 8 : 10;
  w.synthesis.bent.mesh_rows = 3;
  w.synthesis.bent.length_px = smoke ? 64.0 : 120.0;
  w.synthesis.bent.trace_substeps = 8;
  w.synthesis.spot_radius_px = smoke ? 12.0 : 19.0;
  w.synthesis.intensity_scale =
      core::SerialSynthesizer::natural_intensity(w.synthesis);

  util::Rng rng(20260730);
  const double half_box = core_radius * 0.6;
  w.spots.reserve(static_cast<std::size_t>(w.synthesis.spot_count));
  for (std::int64_t k = 0; k < w.synthesis.spot_count; ++k) {
    core::SpotInstance spot;
    spot.position = {rng.uniform(center.x - half_box, center.x + half_box),
                     rng.uniform(center.y - half_box, center.y + half_box)};
    spot.intensity = rng.intensity();
    w.spots.push_back(spot);
  }

  // Pre-transform every spot once; the kernel timing then excludes genP.
  const core::SpotGeometryGenerator generator(w.synthesis, *w.field);
  r.geometry.reserve(w.spots.size(),
                     static_cast<std::size_t>(w.synthesis.vertices_per_spot()));
  for (const core::SpotInstance& spot : w.spots) {
    generator.generate(spot, r.geometry);
  }

  // Constant-UV unit-weight clone: every covered pixel blends the exact
  // same float quantum, so coverage differences cannot cancel or hide.
  r.coverage.reserve(r.geometry.mesh_count(), 4);
  for (const render::MeshHeader& h : r.geometry.meshes()) {
    auto out = r.coverage.add_mesh(1.0f, h.cols, h.rows);
    const auto in = r.geometry.vertices_of(h);
    for (std::size_t k = 0; k < in.size(); ++k) {
      out[k] = in[k];
      out[k].u = 0.5f;
      out[k].v = 0.5f;
    }
  }

  r.profile = render::SpotProfile::make_shared(w.synthesis.profile_shape,
                                               w.synthesis.profile_resolution);
  return r;
}

render::RasterStats rasterize_once(const RibbonWorkload& r, render::Framebuffer& fb,
                                   render::RasterAlgorithm algo,
                                   render::BlendMode mode,
                                   const render::CommandBuffer& buffer) {
  render::RasterStats stats;
  fb.clear();
  render::rasterize_buffer({fb.pixels(), 0, 0, algo}, buffer, *r.profile,
                           mode, stats);
  return stats;
}


struct KernelRate {
  double seconds = 0.0;
  double frags_per_second = 0.0;
  render::RasterStats stats;
};

// ---------------------------------------------------------------------------
// Kernel-tier ablation: the workload's own spans through each dispatch tier
// ---------------------------------------------------------------------------

// The captured spans re-armed for replay, SoA like the rasterizer's batch
// buffers. `offsets` preserve each span's real framebuffer address so the
// replay touches memory in the rasterizer's own pattern; `groups` records
// how many spans each triangle produced — the production flush unit.
struct SpanWorkload {
  std::vector<util::simd::SampleSpan> spans;
  std::vector<std::uint32_t> lens;
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> groups;
  std::int64_t fragments = 0;
  double mean_length = 0.0;
};

// Recovers the workload's real covered-run distribution: each triangle of
// the constant-UV coverage clone is rasterized alone into a scratch target
// and its bounding-box rows scanned for nonzero runs — exactly the
// contiguous intervals raster_tri_span hands to sample_row_add/max. Each
// run is then rebuilt as a SampleSpan over the actual profile table with an
// in-range UV walk at the workload's texels-per-pixel scale (the profile
// spans the spot diameter), so the replay performs the same gathers, lerps
// and lattice snaps as a production span of that length and address.
SpanWorkload capture_spans(const RibbonWorkload& r, render::Framebuffer& fb) {
  SpanWorkload out;
  fb.clear();
  const render::RasterTarget target{fb.pixels(), 0, 0,
                                    render::RasterAlgorithm::kSpan};
  const int width = fb.width();
  const int height = fb.height();
  render::RasterStats stats;

  struct Run {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };
  std::vector<Run> runs;
  auto capture_triangle = [&](const render::MeshVertex& a,
                              const render::MeshVertex& b,
                              const render::MeshVertex& c) {
    const std::size_t first = runs.size();
    render::rasterize_triangle(target, a, b, c, 1.0f, *r.profile,
                               render::BlendMode::kAdditive, stats);
    // Scan only the triangle's bbox rows, zeroing the runs found so the
    // scratch target is clean for the next triangle.
    const int y0 = std::max(
        0, static_cast<int>(std::floor(std::min({a.y, b.y, c.y}))) - 1);
    const int y1 = std::min(
        height - 1, static_cast<int>(std::ceil(std::max({a.y, b.y, c.y}))) + 1);
    const int x0 = std::max(
        0, static_cast<int>(std::floor(std::min({a.x, b.x, c.x}))) - 1);
    const int x1 = std::min(
        width - 1, static_cast<int>(std::ceil(std::max({a.x, b.x, c.x}))) + 1);
    for (int y = y0; y <= y1; ++y) {
      const auto row = fb.pixels().row(y);
      int x = x0;
      while (x <= x1) {
        if (row[static_cast<std::size_t>(x)] == 0.0f) {
          ++x;
          continue;
        }
        const int start = x;
        while (x <= x1 && row[static_cast<std::size_t>(x)] != 0.0f) {
          row[static_cast<std::size_t>(x)] = 0.0f;
          ++x;
        }
        runs.push_back({static_cast<std::uint32_t>(y * width + start),
                        static_cast<std::uint32_t>(x - start)});
      }
    }
    // Record the triangle's span count as a replay batch, split at the
    // rasterizer's own flush granularity (kSpanBatch rows per flush).
    std::size_t produced = runs.size() - first;
    while (produced > 64) {
      out.groups.push_back(64);
      produced -= 64;
    }
    if (produced > 0) out.groups.push_back(static_cast<std::uint32_t>(produced));
  };
  for (const render::MeshHeader& h : r.coverage.meshes()) {
    const auto verts = r.coverage.vertices_of(h);
    auto vertex = [&](int i, int j) -> const render::MeshVertex& {
      return verts[static_cast<std::size_t>(j) * h.cols +
                   static_cast<std::size_t>(i)];
    };
    // The rasterizer's own quad -> two-triangles traversal.
    for (int j = 0; j + 1 < h.rows; ++j) {
      for (int i = 0; i + 1 < h.cols; ++i) {
        capture_triangle(vertex(i, j), vertex(i + 1, j), vertex(i + 1, j + 1));
        capture_triangle(vertex(i, j), vertex(i + 1, j + 1), vertex(i, j + 1));
      }
    }
  }

  // Re-arm each run with a UV walk that stays in [0,1)^2 (the rasterizer's
  // in-range sub-span guarantee). |du| per fragment ~ 1/(spot diameter in
  // pixels), varied and sign-flipped per span; long spans scale the step
  // down exactly as a long chord through the profile does.
  util::Rng rng(0x5ba9u);
  const double du_base = 1.0 / (2.0 * r.workload.synthesis.spot_radius_px);
  out.spans.reserve(runs.size());
  for (const Run& run : runs) {
    const double steps = static_cast<double>(run.length) - 1.0;
    double du = du_base * rng.uniform(0.6, 1.4) *
                (rng.uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0);
    double dv = du_base * rng.uniform(-0.45, 0.45);
    if (std::abs(du) * steps > 0.92) du *= 0.92 / (std::abs(du) * steps);
    if (std::abs(dv) * steps > 0.90) dv *= 0.90 / (std::abs(dv) * steps);
    const double walk_u = std::abs(du) * steps;
    const double walk_v = std::abs(dv) * steps;
    const double u0 = du >= 0.0 ? rng.uniform(0.02, 0.96 - walk_u)
                                : rng.uniform(0.02 + walk_u, 0.96);
    const double v0 = dv >= 0.0 ? rng.uniform(0.02, 0.96 - walk_v)
                                : rng.uniform(0.02 + walk_v, 0.96);
    render::SpotProfile::RowSampler sampler(*r.profile, du, dv);
    sampler.start_row(u0, v0);
    out.spans.push_back(
        sampler.span(0, static_cast<float>(rng.uniform(0.002, 0.02))));
    out.lens.push_back(run.length);
    out.offsets.push_back(run.offset);
    out.fragments += run.length;
  }
  out.mean_length = runs.empty() ? 0.0
                                 : static_cast<double>(out.fragments) /
                                       static_cast<double>(runs.size());
  return out;
}

// One timed bout of a tier. Tier rates are compared as a ratio, so the
// caller runs several bouts per tier *interleaved across tiers* and keeps
// each tier's best: a noisy-neighbour burst on a shared CI core then lands
// on single bouts instead of poisoning one whole side of the ratio.
double measure_tier_bout(const util::simd::KernelTable& kernels,
                         const SpanWorkload& work, std::vector<float>& dst,
                         std::vector<float*>& dst_ptrs, double min_seconds) {
  std::fill(dst.begin(), dst.end(), 0.0f);
  dst_ptrs.resize(work.offsets.size());
  for (std::size_t i = 0; i < work.offsets.size(); ++i) {
    dst_ptrs[i] = dst.data() + work.offsets[i];
  }
  // Replay through the batched kernel at the rasterizer's flush granularity
  // (one triangle's rows per call) so the measurement covers the production
  // call pattern, not an idealized single-span loop.
  auto replay = [&] {
    std::size_t base = 0;
    for (const std::uint32_t g : work.groups) {
      kernels.sample_rows_add(dst_ptrs.data() + base, work.spans.data() + base,
                              work.lens.data() + base, g);
      base += g;
    }
  };
  replay();  // warm-up: faults pages, primes caches and the predictor
  std::int64_t reps = 0;
  double seconds = 0.0;
  const util::ThreadCpuStopwatch watch;
  do {
    replay();
    ++reps;
    seconds = watch.seconds();
  } while (seconds < min_seconds);
  return static_cast<double>(work.fragments) * static_cast<double>(reps) /
         seconds;
}

KernelRate measure_kernel(const RibbonWorkload& r, render::Framebuffer& fb,
                          render::RasterAlgorithm algo, double min_seconds) {
  // One warm-up pass, then repeat whole-buffer rasterizations until the
  // thread-CPU clock has accumulated a stable measurement.
  (void)rasterize_once(r, fb, algo, render::BlendMode::kAdditive, r.geometry);
  KernelRate rate;
  std::int64_t reps = 0;
  const util::ThreadCpuStopwatch watch;
  do {
    rate.stats = rasterize_once(r, fb, algo, render::BlendMode::kAdditive,
                                r.geometry);
    ++reps;
    rate.seconds = watch.seconds();
  } while (rate.seconds < min_seconds);
  rate.frags_per_second =
      static_cast<double>(rate.stats.fragments) * static_cast<double>(reps) /
      rate.seconds;
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::string json_path = bench::parse_json_path(argc, argv);
  const double gate = smoke ? 1.5 : 2.0;

  std::printf("== span rasterizer ablation (%s workload) ==\n",
              smoke ? "smoke" : "full");
  const RibbonWorkload r = make_ribbon_workload(smoke);
  const std::int64_t triangles = r.geometry.quad_count() * 2;
  std::printf("  %zu ribbons, %lld quads, %dx%d target\n", r.geometry.mesh_count(),
              static_cast<long long>(r.geometry.quad_count()),
              r.workload.synthesis.texture_width,
              r.workload.synthesis.texture_height);

  render::Framebuffer fb(r.workload.synthesis.texture_width,
                         r.workload.synthesis.texture_height);
  render::Framebuffer other(fb.width(), fb.height());

  // --- equivalence: values ---
  const auto ref_stats = rasterize_once(r, fb, render::RasterAlgorithm::kReference,
                                        render::BlendMode::kAdditive, r.geometry);
  const auto span_stats = rasterize_once(r, other, render::RasterAlgorithm::kSpan,
                                         render::BlendMode::kAdditive, r.geometry);
  const float additive_dev = fb.max_abs_diff(other);
  (void)rasterize_once(r, fb, render::RasterAlgorithm::kReference,
                       render::BlendMode::kMaximum, r.geometry);
  (void)rasterize_once(r, other, render::RasterAlgorithm::kSpan,
                       render::BlendMode::kMaximum, r.geometry);
  const float maximum_dev = fb.max_abs_diff(other);

  // --- equivalence: exact coverage ---
  (void)rasterize_once(r, fb, render::RasterAlgorithm::kReference,
                       render::BlendMode::kAdditive, r.coverage);
  (void)rasterize_once(r, other, render::RasterAlgorithm::kSpan,
                       render::BlendMode::kAdditive, r.coverage);
  const bool coverage_identical =
      fb == other && ref_stats.fragments == span_stats.fragments;

  // Value tolerance: the kernels' UV evaluation differs by design (~1e-5,
  // see test_rasterizer.cpp), and each side additionally snaps to the
  // contribution lattice, which can separate the results by up to two
  // quanta (util/simd.hpp).
  const float value_gate = 1e-5f + 2.0f * util::simd::kContributionQuantum;
  const bool equivalent = coverage_identical && additive_dev <= value_gate &&
                          maximum_dev <= value_gate;
  std::printf("  equivalence: coverage %s, max deviation additive %.2e / max %.2e\n",
              coverage_identical ? "identical" : "DIFFERS", additive_dev,
              maximum_dev);

  // --- throughput ---
  const double min_seconds = smoke ? 0.15 : 0.8;
  const KernelRate ref = measure_kernel(r, fb, render::RasterAlgorithm::kReference,
                                        min_seconds);
  const KernelRate span = measure_kernel(r, fb, render::RasterAlgorithm::kSpan,
                                         min_seconds);
  const double speedup = span.frags_per_second / ref.frags_per_second;
  const auto ratio = [](const render::RasterStats& s) {
    return s.pixels_visited > 0 ? static_cast<double>(s.fragments) /
                                      static_cast<double>(s.pixels_visited)
                                : 0.0;
  };
  std::printf("  reference: %8.2f Mfrag/s  (visited ratio %.3f)\n",
              ref.frags_per_second / 1e6, ratio(ref.stats));
  std::printf("  span:      %8.2f Mfrag/s  (visited ratio %.3f)\n",
              span.frags_per_second / 1e6, ratio(span.stats));
  std::printf("  speedup: %.2fx (gate: >= %.1fx)\n", speedup, gate);

  // --- kernel-tier ablation: the fused span kernel per dispatch tier ---
  // End-to-end tier ratios are Amdahl-limited by triangle setup and edge
  // walking, so the AVX2 gate is on the span kernel's own fragment
  // throughput: the workload's spans replayed through each tier's
  // sample_row_add in isolation.
  const SpanWorkload span_work = capture_spans(r, fb);
  std::printf("  tier ablation: %zu spans, %lld fragments, mean length %.1f\n",
              span_work.spans.size(),
              static_cast<long long>(span_work.fragments),
              span_work.mean_length);
  const double bout_seconds = smoke ? 0.06 : 0.18;
  const int bout_rounds = smoke ? 3 : 4;
  std::vector<float> replay_dst(static_cast<std::size_t>(fb.width()) *
                                static_cast<std::size_t>(fb.height()));
  std::vector<float*> replay_ptrs;
  struct TierRate {
    util::simd::Tier tier;
    double frags_per_second;
  };
  std::vector<TierRate> tier_rates;
  for (const util::simd::Tier t : util::simd::available_tiers()) {
    tier_rates.push_back({t, 0.0});
  }
  for (int round = 0; round < bout_rounds; ++round) {
    for (TierRate& tr : tier_rates) {
      tr.frags_per_second = std::max(
          tr.frags_per_second,
          measure_tier_bout(util::simd::kernels_for(tr.tier), span_work,
                            replay_dst, replay_ptrs, bout_seconds));
    }
  }
  double scalar_rate = 0.0;
  double avx2_rate = 0.0;
  for (const TierRate& tr : tier_rates) {
    if (tr.tier == util::simd::Tier::kScalar) scalar_rate = tr.frags_per_second;
    if (tr.tier == util::simd::Tier::kAvx2) avx2_rate = tr.frags_per_second;
  }
  for (const TierRate& tr : tier_rates) {
    std::printf("    %-6s %8.2f Mfrag/s  (%.2fx scalar)\n",
                util::simd::tier_name(tr.tier), tr.frags_per_second / 1e6,
                scalar_rate > 0.0 ? tr.frags_per_second / scalar_rate : 0.0);
  }
  const bool have_avx2 = avx2_rate > 0.0;
  const double tier_gate = smoke ? 1.2 : 1.5;
  const double tier_speedup =
      have_avx2 && scalar_rate > 0.0 ? avx2_rate / scalar_rate : 0.0;
  if (have_avx2) {
    std::printf("  avx2 kernel speedup: %.2fx (gate: >= %.1fx)\n", tier_speedup,
                tier_gate);
  } else {
    std::printf("  avx2 unavailable on this host — tier gate skipped\n");
  }
  const bool tier_pass = !have_avx2 || tier_speedup >= tier_gate;

  // --- eq. 3.2 modeled frame time through the whole engine ---
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  dnc.raster_algorithm = render::RasterAlgorithm::kReference;
  const auto ref_rates = bench::measure_rates(r.workload, dnc, 1);
  dnc.raster_algorithm = render::RasterAlgorithm::kSpan;
  const auto span_rates = bench::measure_rates(r.workload, dnc, 1);
  std::printf("  modeled frame (eq. 3.2): reference %.3fs, span %.3fs, genT %0.3fs -> %0.3fs\n",
              ref_rates.stats.modeled_frame_seconds,
              span_rates.stats.modeled_frame_seconds,
              ref_rates.stats.genT_critical_seconds,
              span_rates.stats.genT_critical_seconds);

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.set("bench", std::string("raster_kernel"));
    report.set("mode", std::string(smoke ? "smoke" : "full"));
    report.set("workload", r.workload.name);
    report.set("texture_width", static_cast<std::int64_t>(fb.width()));
    report.set("spots", r.workload.synthesis.spot_count);
    report.set("triangles", triangles);
    report.set("fragments", span.stats.fragments);
    report.set("frags_per_triangle",
               static_cast<double>(span.stats.fragments) /
                   static_cast<double>(triangles));
    report.set("ref.frags_per_second", ref.frags_per_second);
    report.set("ref.visited_ratio", ratio(ref.stats));
    report.set("ref.modeled_frame_seconds", ref_rates.stats.modeled_frame_seconds);
    report.set("ref.genT_critical_seconds", ref_rates.stats.genT_critical_seconds);
    report.set("span.frags_per_second", span.frags_per_second);
    report.set("span.visited_ratio", ratio(span.stats));
    report.set("span.modeled_frame_seconds",
               span_rates.stats.modeled_frame_seconds);
    report.set("span.genT_critical_seconds",
               span_rates.stats.genT_critical_seconds);
    report.set("speedup", speedup);
    report.set("max_abs_deviation",
               static_cast<double>(std::max(additive_dev, maximum_dev)));
    report.set("coverage_identical", coverage_identical);
    report.set("gate.threshold", gate);
    report.set("gate.pass", equivalent && speedup >= gate);
    report.set("spans.count", static_cast<std::int64_t>(span_work.spans.size()));
    report.set("spans.mean_length", span_work.mean_length);
    for (const TierRate& tr : tier_rates) {
      report.set(std::string("tier.") + util::simd::tier_name(tr.tier) +
                     ".frags_per_second",
                 tr.frags_per_second);
    }
    if (have_avx2) report.set("tier.speedup", tier_speedup);
    report.set("tier.gate.threshold", tier_gate);
    report.set("tier.gate.pass", tier_pass);
    report.set("simd.tier",
               util::simd::tier_name(util::simd::active_tier()));
    report.set("simd.cpu", util::simd::cpu_flags());
    report.write(json_path);
  }

  if (!equivalent) {
    std::printf("FAIL: span/reference equivalence violated\n");
    return 1;
  }
  if (speedup < gate) {
    std::printf("FAIL: speedup %.2fx below the %.1fx gate\n", speedup, gate);
    return 1;
  }
  if (!tier_pass) {
    std::printf("FAIL: avx2 kernel speedup %.2fx below the %.1fx tier gate\n",
                tier_speedup, tier_gate);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
