// Ablation gate for the span-based scanline rasterizer (ISSUE 3).
//
// Workload: bent-spot ribbons traced through a swirl — the thin, curved,
// high-aspect meshes central to the paper — pre-transformed into one big
// CommandBuffer so the measurement isolates the fragment hot path. The
// bench:
//
//   1. proves equivalence: identical pixel coverage (exact framebuffer
//      match on a constant-texel clone of the geometry) and per-pixel
//      values within 1e-5 under both blend modes;
//   2. measures fragment throughput of kSpan vs kReference over repeated
//      rasterization (thread-CPU clock, stable on loaded 1-core CI hosts);
//   3. runs the whole DnC engine once per algorithm and reports the
//      eq. 3.2 modeled frame seconds;
//   4. gates: span must reach >= 2.0x reference throughput (1.5x with
//      --smoke, whose workload is too small to amortize setup), else the
//      process exits nonzero.
//
// usage: bench_raster_kernel [--smoke] [--json <path>]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "core/spot_geometry.hpp"
#include "core/spot_source.hpp"
#include "field/analytic.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

struct RibbonWorkload {
  bench::Workload workload;        // for the eq. 3.2 engine runs
  render::CommandBuffer geometry;  // pre-transformed meshes (kernel timing)
  render::CommandBuffer coverage;  // same meshes, constant UV, unit weight
  std::shared_ptr<const render::SpotProfile> profile;
};

RibbonWorkload make_ribbon_workload(bool smoke) {
  RibbonWorkload r;
  bench::Workload& w = r.workload;
  w.name = smoke ? "bent ribbons (smoke)" : "bent ribbons";

  // Solid rotation under a smooth envelope, exactly zero outside the core
  // (same construction as the balance workload) — but every spot is seeded
  // *inside* the core, so each one traces a full-length curved ribbon.
  const field::Vec2 center{0.5, 0.5};
  const double core_radius = 0.34;
  const field::Rect domain{0, 0, 1, 1};
  auto swirl = [center, core_radius](field::Vec2 p) -> field::Vec2 {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    const double r2 = (dx * dx + dy * dy) / (core_radius * core_radius);
    if (r2 >= 1.0) return {0.0, 0.0};
    const double envelope = (1.0 - r2) * (1.0 - r2);
    return {-dy * envelope, dx * envelope};
  };
  const double max_mag = core_radius * 0.2863;  // max of r * (1-(r/R)^2)^2
  w.field = std::make_unique<field::CallableField>(swirl, domain, max_mag);

  // Spot scale sits at the data-browser zoom level (the window feature:
  // a domain sub-rectangle re-synthesized at full texture resolution), where
  // ribbons span tens of pixels and the frame is genT-bound — exactly the
  // regime where rasterizer throughput decides the frame rate. At overview
  // zoom the paper's meshes tessellate below one pixel per quad and
  // per-triangle setup dominates both algorithms equally.
  w.synthesis.texture_width = smoke ? 256 : 512;
  w.synthesis.texture_height = smoke ? 256 : 512;
  w.synthesis.spot_count = smoke ? 250 : 700;
  w.synthesis.kind = core::SpotKind::kBent;
  w.synthesis.bent.mesh_cols = smoke ? 8 : 10;
  w.synthesis.bent.mesh_rows = 3;
  w.synthesis.bent.length_px = smoke ? 64.0 : 120.0;
  w.synthesis.bent.trace_substeps = 8;
  w.synthesis.spot_radius_px = smoke ? 12.0 : 19.0;
  w.synthesis.intensity_scale =
      core::SerialSynthesizer::natural_intensity(w.synthesis);

  util::Rng rng(20260730);
  const double half_box = core_radius * 0.6;
  w.spots.reserve(static_cast<std::size_t>(w.synthesis.spot_count));
  for (std::int64_t k = 0; k < w.synthesis.spot_count; ++k) {
    core::SpotInstance spot;
    spot.position = {rng.uniform(center.x - half_box, center.x + half_box),
                     rng.uniform(center.y - half_box, center.y + half_box)};
    spot.intensity = rng.intensity();
    w.spots.push_back(spot);
  }

  // Pre-transform every spot once; the kernel timing then excludes genP.
  const core::SpotGeometryGenerator generator(w.synthesis, *w.field);
  r.geometry.reserve(w.spots.size(),
                     static_cast<std::size_t>(w.synthesis.vertices_per_spot()));
  for (const core::SpotInstance& spot : w.spots) {
    generator.generate(spot, r.geometry);
  }

  // Constant-UV unit-weight clone: every covered pixel blends the exact
  // same float quantum, so coverage differences cannot cancel or hide.
  r.coverage.reserve(r.geometry.mesh_count(), 4);
  for (const render::MeshHeader& h : r.geometry.meshes()) {
    auto out = r.coverage.add_mesh(1.0f, h.cols, h.rows);
    const auto in = r.geometry.vertices_of(h);
    for (std::size_t k = 0; k < in.size(); ++k) {
      out[k] = in[k];
      out[k].u = 0.5f;
      out[k].v = 0.5f;
    }
  }

  r.profile = render::SpotProfile::make_shared(w.synthesis.profile_shape,
                                               w.synthesis.profile_resolution);
  return r;
}

render::RasterStats rasterize_once(const RibbonWorkload& r, render::Framebuffer& fb,
                                   render::RasterAlgorithm algo,
                                   render::BlendMode mode,
                                   const render::CommandBuffer& buffer) {
  render::RasterStats stats;
  fb.clear();
  render::rasterize_buffer({fb.pixels(), 0, 0, algo}, buffer, *r.profile,
                           mode, stats);
  return stats;
}


struct KernelRate {
  double seconds = 0.0;
  double frags_per_second = 0.0;
  render::RasterStats stats;
};

KernelRate measure_kernel(const RibbonWorkload& r, render::Framebuffer& fb,
                          render::RasterAlgorithm algo, double min_seconds) {
  // One warm-up pass, then repeat whole-buffer rasterizations until the
  // thread-CPU clock has accumulated a stable measurement.
  (void)rasterize_once(r, fb, algo, render::BlendMode::kAdditive, r.geometry);
  KernelRate rate;
  std::int64_t reps = 0;
  const util::ThreadCpuStopwatch watch;
  do {
    rate.stats = rasterize_once(r, fb, algo, render::BlendMode::kAdditive,
                                r.geometry);
    ++reps;
    rate.seconds = watch.seconds();
  } while (rate.seconds < min_seconds);
  rate.frags_per_second =
      static_cast<double>(rate.stats.fragments) * static_cast<double>(reps) /
      rate.seconds;
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::string json_path = bench::parse_json_path(argc, argv);
  const double gate = smoke ? 1.5 : 2.0;

  std::printf("== span rasterizer ablation (%s workload) ==\n",
              smoke ? "smoke" : "full");
  const RibbonWorkload r = make_ribbon_workload(smoke);
  const std::int64_t triangles = r.geometry.quad_count() * 2;
  std::printf("  %zu ribbons, %lld quads, %dx%d target\n", r.geometry.mesh_count(),
              static_cast<long long>(r.geometry.quad_count()),
              r.workload.synthesis.texture_width,
              r.workload.synthesis.texture_height);

  render::Framebuffer fb(r.workload.synthesis.texture_width,
                         r.workload.synthesis.texture_height);
  render::Framebuffer other(fb.width(), fb.height());

  // --- equivalence: values ---
  const auto ref_stats = rasterize_once(r, fb, render::RasterAlgorithm::kReference,
                                        render::BlendMode::kAdditive, r.geometry);
  const auto span_stats = rasterize_once(r, other, render::RasterAlgorithm::kSpan,
                                         render::BlendMode::kAdditive, r.geometry);
  const float additive_dev = fb.max_abs_diff(other);
  (void)rasterize_once(r, fb, render::RasterAlgorithm::kReference,
                       render::BlendMode::kMaximum, r.geometry);
  (void)rasterize_once(r, other, render::RasterAlgorithm::kSpan,
                       render::BlendMode::kMaximum, r.geometry);
  const float maximum_dev = fb.max_abs_diff(other);

  // --- equivalence: exact coverage ---
  (void)rasterize_once(r, fb, render::RasterAlgorithm::kReference,
                       render::BlendMode::kAdditive, r.coverage);
  (void)rasterize_once(r, other, render::RasterAlgorithm::kSpan,
                       render::BlendMode::kAdditive, r.coverage);
  const bool coverage_identical =
      fb == other && ref_stats.fragments == span_stats.fragments;

  // Value tolerance: the kernels' UV evaluation differs by design (~1e-5,
  // see test_rasterizer.cpp), and each side additionally snaps to the
  // contribution lattice, which can separate the results by up to two
  // quanta (util/simd.hpp).
  const float value_gate = 1e-5f + 2.0f * util::simd::kContributionQuantum;
  const bool equivalent = coverage_identical && additive_dev <= value_gate &&
                          maximum_dev <= value_gate;
  std::printf("  equivalence: coverage %s, max deviation additive %.2e / max %.2e\n",
              coverage_identical ? "identical" : "DIFFERS", additive_dev,
              maximum_dev);

  // --- throughput ---
  const double min_seconds = smoke ? 0.15 : 0.8;
  const KernelRate ref = measure_kernel(r, fb, render::RasterAlgorithm::kReference,
                                        min_seconds);
  const KernelRate span = measure_kernel(r, fb, render::RasterAlgorithm::kSpan,
                                         min_seconds);
  const double speedup = span.frags_per_second / ref.frags_per_second;
  const auto ratio = [](const render::RasterStats& s) {
    return s.pixels_visited > 0 ? static_cast<double>(s.fragments) /
                                      static_cast<double>(s.pixels_visited)
                                : 0.0;
  };
  std::printf("  reference: %8.2f Mfrag/s  (visited ratio %.3f)\n",
              ref.frags_per_second / 1e6, ratio(ref.stats));
  std::printf("  span:      %8.2f Mfrag/s  (visited ratio %.3f)\n",
              span.frags_per_second / 1e6, ratio(span.stats));
  std::printf("  speedup: %.2fx (gate: >= %.1fx)\n", speedup, gate);

  // --- eq. 3.2 modeled frame time through the whole engine ---
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;
  dnc.raster_algorithm = render::RasterAlgorithm::kReference;
  const auto ref_rates = bench::measure_rates(r.workload, dnc, 1);
  dnc.raster_algorithm = render::RasterAlgorithm::kSpan;
  const auto span_rates = bench::measure_rates(r.workload, dnc, 1);
  std::printf("  modeled frame (eq. 3.2): reference %.3fs, span %.3fs, genT %0.3fs -> %0.3fs\n",
              ref_rates.stats.modeled_frame_seconds,
              span_rates.stats.modeled_frame_seconds,
              ref_rates.stats.genT_critical_seconds,
              span_rates.stats.genT_critical_seconds);

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.set("bench", std::string("raster_kernel"));
    report.set("mode", std::string(smoke ? "smoke" : "full"));
    report.set("workload", r.workload.name);
    report.set("texture_width", static_cast<std::int64_t>(fb.width()));
    report.set("spots", r.workload.synthesis.spot_count);
    report.set("triangles", triangles);
    report.set("fragments", span.stats.fragments);
    report.set("frags_per_triangle",
               static_cast<double>(span.stats.fragments) /
                   static_cast<double>(triangles));
    report.set("ref.frags_per_second", ref.frags_per_second);
    report.set("ref.visited_ratio", ratio(ref.stats));
    report.set("ref.modeled_frame_seconds", ref_rates.stats.modeled_frame_seconds);
    report.set("ref.genT_critical_seconds", ref_rates.stats.genT_critical_seconds);
    report.set("span.frags_per_second", span.frags_per_second);
    report.set("span.visited_ratio", ratio(span.stats));
    report.set("span.modeled_frame_seconds",
               span_rates.stats.modeled_frame_seconds);
    report.set("span.genT_critical_seconds",
               span_rates.stats.genT_critical_seconds);
    report.set("speedup", speedup);
    report.set("max_abs_deviation",
               static_cast<double>(std::max(additive_dev, maximum_dev)));
    report.set("coverage_identical", coverage_identical);
    report.set("gate.threshold", gate);
    report.set("gate.pass", equivalent && speedup >= gate);
    report.write(json_path);
  }

  if (!equivalent) {
    std::printf("FAIL: span/reference equivalence violated\n");
    return 1;
  }
  if (speedup < gate) {
    std::printf("FAIL: speedup %.2fx below the %.1fx gate\n", speedup, gate);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
