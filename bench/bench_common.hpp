// Shared benchmark harness: the paper's two workloads, configuration
// sweeps, and side-by-side paper-vs-measured table printing.
//
// Calibration note (see DESIGN.md §2 and §6): a 2026 CPU core rasterizes in
// software relatively faster (vs. its integration speed) than a 1997
// R10000-vs-InfiniteReality pairing, so the presets raise the streamline
// integration accuracy (bent.trace_substeps) until the measured
// genP : genT ratio sits in the paper's regime (~3-4 CPU-seconds per
// pipe-second). The benches print the measured ratio so this calibration is
// visible in every run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/grid_field.hpp"

namespace dcsn::bench {

struct Workload {
  std::string name;
  std::unique_ptr<field::VectorField> field;
  core::SynthesisConfig synthesis;
  std::vector<core::SpotInstance> spots;
};

/// §5.1 workload: smog-model wind on the 53x55 grid, 2500 bent spots with
/// 32x17 meshes, 512x512 texture (~1.3 M quadrilaterals per texture).
Workload make_atmospheric_workload();

/// §5.2 workload: DNS slice on the 278x208 rectilinear grid after spin-up,
/// 40000 bent spots with 16x3 meshes, 512x512 texture (~1.9 M quads).
/// `spinup_steps` trades bench startup time against wake development.
Workload make_dns_workload(int spinup_steps = 120);

/// Load-balance stress workload: a capped swirl (solid rotation inside a
/// compact core, exactly stagnant outside) with bent spots. With `clustered`
/// set, the first half of the spot array sits inside the swirl core — those
/// spots trace full-length streamlines and rasterize full ribbons, while the
/// stagnant background spots degrade to cheap point quads. That skews both
/// the contiguous even-index split (cost varies along the index axis) and
/// the tiled grid split (the expensive spots crowd one region), which is
/// exactly the imbalance bench_ablation_balance measures. With `clustered`
/// false the same field and config get uniformly scattered spots — the
/// "stealing must not regress" control.
Workload make_balance_workload(bool clustered);

/// The paper's hardware model: the Onyx2 bus.
constexpr double kPaperBusBytesPerSecond = 800.0e6;

/// Runs `frames` frames of the workload under the given configuration and
/// returns the mean textures/second (after one warm-up frame). `last_stats`
/// receives the final frame's stats when non-null.
double measure_rate(const Workload& workload, const core::DncConfig& dnc,
                    int frames, core::FrameStats* last_stats = nullptr);

/// Both views of the frame rate over `frames` synthesized textures.
struct RateSample {
  /// Textures/s by wall clock — what this host actually delivered. Only
  /// meaningful as a parallelism measure when the host has at least one core
  /// per worker and pipe; an oversubscribed host serializes the groups and
  /// wall clock can only show scheduling *overhead*, never a balancing win.
  double wall_rate = 0.0;
  /// Textures/s from FrameStats::modeled_frame_seconds — the eq. 3.2
  /// critical path over per-thread CPU time, i.e. what a fully-parallel host
  /// would see. Load-independent, so it is the headline number for
  /// scheduling ablations.
  double modeled_rate = 0.0;
  core::FrameStats stats;  ///< last measured frame
};

RateSample measure_rates(const Workload& workload, const core::DncConfig& dnc,
                         int frames);

/// One measured cell of a paper table.
struct Cell {
  int processors = 0;
  int pipes = 0;
  double paper_rate = 0.0;     ///< textures/s from the paper (0 = cell empty)
  double measured_rate = 0.0;  ///< textures/s measured here
  core::FrameStats stats;
};

/// Runs the paper's (processors x pipes) grid for the given workload.
/// `paper` holds the published numbers row-major over processors {1,2,4,8}
/// x pipes {1,2,4}, 0 marking cells the paper leaves blank.
std::vector<Cell> run_table(const Workload& workload,
                            const std::vector<std::vector<double>>& paper,
                            double bus_bytes_per_second, int frames);

/// Prints the table in the paper's layout with measured values beside the
/// published ones, followed by the shape observations (§5 discussion).
void print_table(const std::string& title, const std::vector<Cell>& cells);

/// The paper's footnote 3: "We expect, but have not verified, that when
/// using 4 graphics pipes an optimal performance will be achieved by using
/// 16 processors." Measures 8/12/16 processors on 4 pipes and reports
/// whether the expectation holds on this machine.
void check_footnote3(const Workload& workload, double bus_bytes_per_second,
                     int frames);

/// Writes cells to a CSV at `path` (see csv_path for where that should be).
void write_csv(const std::string& path, const std::vector<Cell>& cells);

/// Where a bench's CSV belongs: `--out=DIR` wins, otherwise the build
/// tree's bench_out/ directory (DCSN_BENCH_OUT_DIR, injected by CMake).
/// Creates the directory. Keeps measurement droppings out of the source
/// tree — a bare filename used to land a stray CSV at the repo root.
std::string csv_path(int argc, char** argv, const std::string& filename);

// ---------------------------------------------------------------------------
// Machine-readable perf output (the BENCH_*.json trajectory)
// ---------------------------------------------------------------------------

/// Order-preserving key → value collection written as one flat JSON object.
/// Benches fill one of these alongside their human-readable tables;
/// scripts/bench.sh checks the result in as BENCH_*.json so later PRs can
/// diff performance instead of guessing. Keys use dots for grouping
/// ("span.frags_per_second") — flat on purpose, trivially greppable/diffable.
class JsonReport {
 public:
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, bool value);
  void set(const std::string& key, const std::string& value);
  /// Without this overload a string literal would take the bool overload
  /// (pointer-to-bool standard conversion beats std::string construction).
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }

  /// Writes the object (pretty-printed, one key per line). Returns false and
  /// prints a warning if the file cannot be opened. Every report records the
  /// dispatched SIMD tier and the host's ISA flags ("simd.tier"/"simd.cpu",
  /// unless the bench already set them): perf numbers are meaningless in the
  /// trajectory without knowing which kernel tier produced them.
  bool write(const std::string& path) const;

 private:
  void put(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// The shared `--json <path>` bench convention: returns the path following
/// the flag, or "" when absent.
std::string parse_json_path(int argc, char** argv);

/// True when `name` (e.g. "--smoke") appears in argv.
bool has_flag(int argc, char** argv, const std::string& name);

}  // namespace dcsn::bench
