// Reproduces Table 1: textures per second for the atmospheric pollution
// application across processor x pipe configurations.
//
// Paper (SGI Onyx2, 8x R10000, 4x InfiniteReality):
//             1 pipe  2 pipes  4 pipes
//   1 proc      1.0      -        -
//   2 procs     2.0     2.0       -
//   4 procs     2.8     3.6      3.9
//   8 procs     2.7     4.9      5.6
//
// Absolute rates on 2026 hardware are higher; the claims under test are the
// *shape*: saturation at ~4 processors per pipe, pipes only helping when
// fed, the sequential blend keeping the diagonal sublinear, and vertex
// bandwidth far below the bus limit. Run with --frames=N to change the
// measurement length, --quick for a fast smoke run.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", args.has("quick") ? 2 : 4);

  std::printf("Table 1 — %s\n", "atmospheric pollution");
  bench::Workload workload = bench::make_atmospheric_workload();
  std::printf("workload: %s\n", workload.name.c_str());

  const std::vector<std::vector<double>> paper = {
      {1.0, 0.0, 0.0},
      {2.0, 2.0, 0.0},
      {2.8, 3.6, 3.9},
      {2.7, 4.9, 5.6},
  };
  const auto cells = bench::run_table(workload, paper,
                                      bench::kPaperBusBytesPerSecond, frames);
  bench::print_table("Table 1: atmospheric pollution simulation", cells);
  bench::check_footnote3(workload, bench::kPaperBusBytesPerSecond, frames);
  bench::write_csv(bench::csv_path(argc, argv, "table1_atmospheric.csv"), cells);
  return 0;
}
