// Ablation gate for temporal-coherence incremental resynthesis (ISSUE 4).
//
// Workload — "slow flow": the paper's steering scenario has updates arriving
// in a localized region 5-15 times a second while the rest of the texture is
// quasi-static. Here a mild everywhere-flowing shear gives every bent spot a
// full-cost ribbon (so the savings cannot hide in degenerate cheap spots),
// and per frame only the spots inside a compact probe disc move — under 10%
// of the population, confined to one tile of the 2x2 grid. The other three
// tiles' spot sets are bit-identical frame to frame, so the cache retains
// them.
//
// The bench runs the same frame sequence through two identical tiled
// engines, one full-resynthesis and one driven by core::SynthesisCache, and
//
//   1. asserts every frame is BIT-IDENTICAL between the two engines
//      (Framebuffer::operator==, no tolerance) — reuse must be invisible in
//      the pixels;
//   2. compares eq. 3.2 modeled frame seconds (FrameStats, thread-CPU
//      based — meaningful on a loaded 1-core CI host), charging the
//      cache's own planning time to the incremental side;
//   3. reports reuse accounting (tiles_reused, spots_skipped) and the
//      PerfModel::predict_incremental estimate next to the measurement;
//   4. gates: modeled speedup >= 2.0x (>= 1.4x with --smoke, whose small
//      frames leave the fixed per-frame costs unamortized), else exits
//      nonzero.
//
// usage: bench_incremental [--smoke] [--json <path>]
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/perf_model.hpp"
#include "core/spot_source.hpp"
#include "core/synthesis_cache.hpp"
#include "field/analytic.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

struct TemporalWorkload {
  std::unique_ptr<field::VectorField> field;
  core::SynthesisConfig synthesis;
  core::DncConfig dnc;
  std::vector<core::SpotInstance> spots;
  std::vector<std::size_t> probe;  ///< indices that move each frame
  field::Vec2 probe_center;
};

TemporalWorkload make_workload(bool smoke) {
  TemporalWorkload w;
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  // Mild shear, flowing everywhere: every ribbon traces its full length.
  w.field = std::make_unique<field::CallableField>(
      [](field::Vec2 p) -> field::Vec2 { return {0.55 + 0.05 * p.y, 0.22}; },
      domain, 0.97);

  w.synthesis.texture_width = smoke ? 128 : 256;
  w.synthesis.texture_height = w.synthesis.texture_width;
  w.synthesis.spot_count = smoke ? 1500 : 5000;
  w.synthesis.spot_radius_px = 3.0;
  w.synthesis.kind = core::SpotKind::kBent;
  w.synthesis.bent.mesh_cols = 16;
  w.synthesis.bent.mesh_rows = 3;
  w.synthesis.bent.length_px = smoke ? 14.0 : 22.0;
  // genP-heavy calibration (see bench_common.hpp): the incremental win on
  // the eq. 3.2 critical path comes from skipping spot-shape calculation,
  // which work stealing spreads over every processor; the dirty tile's
  // rasterization is irreducible, so the ratio must sit in the paper's
  // CPU-bound regime for the reuse to show.
  w.synthesis.bent.trace_substeps = 14;

  w.dnc.processors = 4;
  w.dnc.pipes = 4;
  w.dnc.tiled = true;
  w.dnc.tile_strategy = core::TileStrategy::kGrid;
  w.dnc.chunk_spots = 32;

  util::Rng rng(20260730);
  w.spots = core::make_random_spots(domain, w.synthesis.spot_count, rng);
  for (auto& s : w.spots) s.intensity *= 0.2;

  // The probe disc sits deep inside the bottom-left tile: world quadrant
  // [0,2)x[0,2), image-space bottom-left after the y flip. Radius 0.55 over
  // a 16-area domain holds ~6% of a uniform population; margin to the tile
  // boundary exceeds the bent spots' conservative extent so moving spots
  // never leak dirt into a second tile.
  w.probe_center = {1.0, 1.0};
  const double probe_radius = 0.55;
  for (std::size_t k = 0; k < w.spots.size(); ++k) {
    const double dx = w.spots[k].position.x - w.probe_center.x;
    const double dy = w.spots[k].position.y - w.probe_center.y;
    if (dx * dx + dy * dy <= probe_radius * probe_radius) w.probe.push_back(k);
  }
  return w;
}

// Rotates the probe spots one step around the probe center — a localized
// stir that keeps them inside the disc (and therefore inside one tile).
void stir_probe(TemporalWorkload& w) {
  constexpr double kStep = 0.12;  // radians per frame
  const double c = std::cos(kStep);
  const double s = std::sin(kStep);
  for (const std::size_t k : w.probe) {
    const double dx = w.spots[k].position.x - w.probe_center.x;
    const double dy = w.spots[k].position.y - w.probe_center.y;
    w.spots[k].position = {w.probe_center.x + c * dx - s * dy,
                           w.probe_center.y + s * dx + c * dy};
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::string json_path = bench::parse_json_path(argc, argv);
  const double gate = smoke ? 1.4 : 2.0;
  const int frames = smoke ? 6 : 10;

  std::printf("== incremental resynthesis ablation (%s workload) ==\n",
              smoke ? "smoke" : "full");
  TemporalWorkload w = make_workload(smoke);
  const double moving_share = static_cast<double>(w.probe.size()) /
                              static_cast<double>(w.spots.size());
  std::printf("  %lld bent spots on %dx%d, 2x2 tiles, %.1f%% moving per frame\n",
              static_cast<long long>(w.synthesis.spot_count),
              w.synthesis.texture_width, w.synthesis.texture_height,
              100.0 * moving_share);

  core::DncSynthesizer full(w.synthesis, w.dnc);
  core::DncSynthesizer incremental(w.synthesis, w.dnc);
  core::SynthesisCache cache;

  // Prologue frame on both engines (uncounted): the incremental side's
  // first frame is always full, and it seeds the cache.
  full.synthesize(*w.field, w.spots);
  incremental.synthesize(*w.field, w.spots);
  cache.commit(incremental, *w.field,
               std::vector<core::SpotInstance>(w.spots));

  double full_modeled = 0.0;
  double incr_modeled = 0.0;
  std::int64_t tiles_reused = 0;
  std::int64_t spots_skipped = 0;
  std::int64_t spots_rendered = 0;
  bool identical = true;
  core::FrameStats full_stats, incr_stats;
  for (int frame = 0; frame < frames; ++frame) {
    stir_probe(w);

    const util::Stopwatch plan_watch;
    const core::SynthesisCache::Decision d =
        cache.plan(incremental, *w.field, w.spots);
    const double plan_seconds = plan_watch.seconds();
    incr_stats = incremental.synthesize(*w.field, w.spots,
                                        d.incremental ? &d.plan : nullptr);
    cache.commit(incremental, *w.field,
                 std::vector<core::SpotInstance>(w.spots));
    full_stats = full.synthesize(*w.field, w.spots);

    identical = identical && full.texture() == incremental.texture();
    full_modeled += full_stats.modeled_frame_seconds;
    incr_modeled += incr_stats.modeled_frame_seconds + plan_seconds;
    tiles_reused += incr_stats.tiles_reused;
    spots_skipped += incr_stats.spots_skipped;
    spots_rendered += incr_stats.spots_submitted;
  }
  full_modeled /= frames;
  incr_modeled /= frames;
  const double speedup = incr_modeled > 0.0 ? full_modeled / incr_modeled : 0.0;

  // The model's view of the same frames, from constants calibrated on the
  // measured full frame.
  const core::PerfModel model =
      core::PerfModel::calibrate(full_stats, w.dnc.pipes);
  const double predicted_full =
      model.predict(full_stats.spots_submitted, w.dnc.processors, w.dnc.pipes);
  const double predicted_incr = model.predict_incremental(
      spots_rendered / frames, w.dnc.processors, w.dnc.pipes,
      static_cast<int>(tiles_reused / frames));

  std::printf("  modeled frame (eq. 3.2): full %.4fs, incremental %.4fs -> %.2fx"
              " (gate: >= %.1fx)\n",
              full_modeled, incr_modeled, speedup, gate);
  std::printf("  model prediction:        full %.4fs, incremental %.4fs\n",
              predicted_full, predicted_incr);
  std::printf("  reuse: %.1f tiles/frame, %.0f spots skipped/frame, bitwise %s\n",
              static_cast<double>(tiles_reused) / frames,
              static_cast<double>(spots_skipped) / frames,
              identical ? "identical" : "DIFFERS");

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.set("bench", std::string("incremental"));
    report.set("mode", std::string(smoke ? "smoke" : "full"));
    report.set("spots", w.synthesis.spot_count);
    report.set("texture_width",
               static_cast<std::int64_t>(w.synthesis.texture_width));
    report.set("frames", static_cast<std::int64_t>(frames));
    report.set("moving_share", moving_share);
    report.set("full.modeled_frame_seconds", full_modeled);
    report.set("incremental.modeled_frame_seconds", incr_modeled);
    report.set("incremental.tiles_reused_per_frame",
               static_cast<double>(tiles_reused) / frames);
    report.set("incremental.spots_skipped_per_frame",
               static_cast<double>(spots_skipped) / frames);
    report.set("model.predicted_full_seconds", predicted_full);
    report.set("model.predicted_incremental_seconds", predicted_incr);
    // Lattice-budget canary: exact summation needs per-pixel sums inside
    // +/-kContributionExactBound; record the workload's actual peak.
    report.set("lattice.peak_pixel_magnitude", full_stats.peak_pixel_magnitude);
    report.set("lattice.exact_bound",
               static_cast<double>(util::simd::kContributionExactBound));
    report.set("speedup", speedup);
    report.set("bitwise_identical", identical);
    report.set("gate.threshold", gate);
    report.set("gate.pass", identical && speedup >= gate);
    report.write(json_path);
  }

  if (!identical) {
    std::printf("FAIL: incremental output diverged from full resynthesis\n");
    return 1;
  }
  if (speedup < gate) {
    std::printf("FAIL: modeled speedup %.2fx below the %.1fx gate\n", speedup,
                gate);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
