// Ablation for the paper's §4 design decision: "An exception to this was
// the spot transformation which is performed in software by the processors,
// thus avoiding the high synchronization overhead costs for setting
// transformation matrices for each rendered spot."
//
// Transform-on-CPU submits pre-transformed geometry (no per-spot state
// changes). Transform-on-pipe is emulated by charging one state-machine
// synchronization per spot. The crossover as the sync latency grows shows
// why the paper put the transformation on the CPUs.
#include <cstdio>

#include "bench_common.hpp"
#include "render/pipe.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

// Renders the workload once on a single raw pipe, optionally paying one
// state change per spot, and returns textures/s.
double run_once(const bench::Workload& workload, double state_change_seconds,
                bool per_spot_state_change) {
  render::PipeConfig pc;
  pc.width = workload.synthesis.texture_width;
  pc.height = workload.synthesis.texture_height;
  pc.state_change_seconds = state_change_seconds;
  render::GraphicsPipe pipe(pc, nullptr);
  pipe.bind_profile(render::SpotProfile::make_shared(
      workload.synthesis.profile_shape, workload.synthesis.profile_resolution));
  pipe.finish();

  const core::SpotGeometryGenerator generator(workload.synthesis, *workload.field);
  const util::Stopwatch watch;
  pipe.clear();
  constexpr std::size_t kChunk = 32;
  for (std::size_t begin = 0; begin < workload.spots.size(); begin += kChunk) {
    const std::size_t end = std::min(workload.spots.size(), begin + kChunk);
    render::CommandBuffer buffer;
    for (std::size_t k = begin; k < end; ++k)
      generator.generate(workload.spots[k], buffer);
    if (per_spot_state_change) {
      pipe.submit_with_state_changes(std::move(buffer),
                                     static_cast<int>(end - begin));
    } else {
      pipe.submit(std::move(buffer));
    }
  }
  pipe.finish();
  return 1.0 / watch.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  bench::Workload workload = bench::make_atmospheric_workload();
  // The sweep isolates the pipe, so lighten the CPU side: accuracy substeps
  // do not matter for state-change costs.
  workload.synthesis.bent.trace_substeps = 1;
  std::printf("state-change ablation on: %s\n\n", workload.name.c_str());

  util::CsvWriter csv(bench::csv_path(argc, argv, "ablation_state_cost.csv"),
                      {"sync_us", "cpu_transform_rate", "pipe_transform_rate"});
  std::printf("%10s %22s %22s %10s\n", "sync (us)", "transform on CPU (t/s)",
              "transform on pipe (t/s)", "penalty");
  for (const double sync_us : {0.0, 5.0, 20.0, 60.0, 200.0}) {
    const double cpu_rate = run_once(workload, sync_us * 1e-6, false);
    const double pipe_rate = run_once(workload, sync_us * 1e-6, true);
    std::printf("%10.0f %22.2f %22.2f %9.1fx\n", sync_us, cpu_rate, pipe_rate,
                cpu_rate / pipe_rate);
    csv.row({util::CsvWriter::num(sync_us), util::CsvWriter::num(cpu_rate),
             util::CsvWriter::num(pipe_rate)});
  }
  std::printf("\npaper's rationale: with InfiniteReality-like sync latencies "
              "(tens of microseconds x 2500 spots) per-spot state changes "
              "dominate the frame — so spot transformation belongs on the "
              "processors.\n");
  return 0;
}
