// Multi-session service throughput/latency ablation — the shared-runtime
// payoff measured.
//
// One synthesis job used to own every worker thread and pipe in the
// process; serving K clients meant either K oversubscribed private pools or
// strict one-at-a-time serialization. The shared core::Runtime +
// SynthesisService multiplex K sessions over one pool. This bench measures
// both regimes on the same workload:
//
//   solo        one session, frames submitted one at a time (the old
//               serialized service model);
//   concurrent  kSessions sessions with their queues primed, all in
//               flight at once.
//
// The headline number is *modeled* throughput — eq. 3.2 critical paths over
// per-thread CPU clocks (FrameStats::modeled_frame_seconds) — because the
// CI host has one core: wall clock there serializes everything and can only
// show scheduling overhead. Modeled, per frame, a session's cost is
// unchanged by multiplexing (attribution uses thread-CPU time), so the
// aggregate of 4 concurrent sessions must approach 4x one-at-a-time; the
// gate demands >= 2x, i.e. multiplexing at worst halves per-frame modeled
// efficiency (it loses far less in practice). Wall-clock latency
// percentiles and queue waits are printed alongside, plus the cross-session
// steal accounting that proves the pool really was shared.
//
// Exits nonzero when the gate fails; scripts/bench.sh checks the JSON
// report in as BENCH_service.json.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/synthesis_service.hpp"
#include "field/analytic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

constexpr int kSessions = 4;

struct JobSample {
  double modeled_seconds = 0.0;
  double latency_seconds = 0.0;  ///< submit → future resolved, wall clock
  double queue_wait_seconds = 0.0;
  std::int64_t cross_session_chunks = 0;
};

double mean_modeled(const std::vector<JobSample>& samples) {
  double sum = 0.0;
  for (const JobSample& s : samples) sum += s.modeled_seconds;
  return samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
}

void print_phase(const char* name, const std::vector<JobSample>& samples) {
  std::vector<double> latency, waits;
  std::int64_t cross = 0;
  for (const JobSample& s : samples) {
    latency.push_back(s.latency_seconds * 1e3);
    waits.push_back(s.queue_wait_seconds * 1e3);
    cross += s.cross_session_chunks;
  }
  std::printf(
      "%-11s %3zu jobs  modeled %7.2f ms/frame  latency p50 %7.2f ms  "
      "p95 %7.2f ms  queue-wait p50 %6.2f ms  cross-session chunks %lld\n",
      name, samples.size(), mean_modeled(samples) * 1e3,
      util::percentile(latency, 0.50), util::percentile(latency, 0.95),
      util::percentile(waits, 0.50), static_cast<long long>(cross));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::string json_path = bench::parse_json_path(argc, argv);

  // A genP-heavy workload (bent spots, deep integration) so the modeled
  // critical path is dominated by thread-CPU attribution, which is immune
  // to host oversubscription.
  core::SynthesisConfig synthesis;
  synthesis.texture_width = smoke ? 128 : 256;
  synthesis.texture_height = smoke ? 128 : 256;
  synthesis.spot_count = smoke ? 1200 : 3500;
  synthesis.spot_radius_px = 6.0;
  synthesis.kind = core::SpotKind::kBent;
  synthesis.bent.mesh_cols = 10;
  synthesis.bent.mesh_rows = 3;
  synthesis.bent.length_px = 28.0;
  synthesis.bent.trace_substeps = 8;

  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 1;

  const field::Rect domain{0.0, 0.0, 2.0, 2.0};
  const auto field = field::analytic::taylor_green(1.0, domain);
  const int frames = smoke ? 3 : 5;

  core::SynthesisService service({.drivers = kSessions});
  std::vector<core::SynthesisService::SessionId> sessions;
  std::vector<std::vector<core::SpotInstance>> spots;
  for (int s = 0; s < kSessions; ++s) {
    auto config = synthesis;
    config.seed = 42 + static_cast<std::uint64_t>(s);
    sessions.push_back(service.open_session(config, dnc));
    util::Rng rng(config.seed);
    spots.push_back(core::make_random_spots(domain, config.spot_count, rng));
    for (auto& spot : spots.back()) spot.intensity *= 0.2;
  }

  auto request = [&](int s) {
    core::SynthesisRequest req;
    req.field = field.get();
    req.spots = spots[static_cast<std::size_t>(s)];
    return req;
  };
  auto sample_of = [](const core::SynthesisResult& result, double latency) {
    JobSample sample;
    sample.modeled_seconds = result.stats.modeled_frame_seconds;
    sample.latency_seconds = latency;
    sample.queue_wait_seconds = result.stats.queue_wait_seconds;
    sample.cross_session_chunks = result.stats.cross_session_chunks;
    return sample;
  };

  std::printf("service workload: %lld bent spots (%dx%d mesh), %dx%d texture, "
              "%d sessions x %d frames, nP=%d nG=%d per session\n",
              static_cast<long long>(synthesis.spot_count), synthesis.bent.mesh_cols,
              synthesis.bent.mesh_rows, synthesis.texture_width,
              synthesis.texture_height, kSessions, frames, dnc.processors, dnc.pipes);

  // --- solo: one session, one frame in flight at a time (warm-up first) ---
  (void)service.submit(sessions[0], request(0)).result.get();
  std::vector<JobSample> solo;
  for (int frame = 0; frame < frames; ++frame) {
    const util::Stopwatch watch;
    auto ticket = service.submit(sessions[0], request(0));
    const core::SynthesisResult result = ticket.result.get();
    solo.push_back(sample_of(result, watch.seconds()));
  }

  // --- concurrent: every session's queue primed, all in flight ---
  std::vector<core::SynthesisService::JobTicket> tickets;
  std::vector<util::Stopwatch> watches;
  for (int frame = 0; frame < frames; ++frame) {
    for (int s = 0; s < kSessions; ++s) {
      watches.emplace_back();
      tickets.push_back(service.submit(sessions[static_cast<std::size_t>(s)],
                                       request(s)));
    }
  }
  std::vector<JobSample> concurrent;
  for (std::size_t t = 0; t < tickets.size(); ++t) {
    const core::SynthesisResult result = tickets[t].result.get();
    concurrent.push_back(sample_of(result, watches[t].seconds()));
  }

  print_phase("solo", solo);
  print_phase("concurrent", concurrent);

  const double solo_rate = 1.0 / mean_modeled(solo);
  const double aggregate_rate =
      static_cast<double>(kSessions) / mean_modeled(concurrent);
  const double speedup = aggregate_rate / solo_rate;
  const double target = 2.0;
  std::int64_t cross_chunks = 0;
  for (const JobSample& s : concurrent) cross_chunks += s.cross_session_chunks;

  std::printf(
      "\nmodeled throughput: solo %.2f textures/s, %d-session aggregate %.2f "
      "textures/s -> %.2fx one-at-a-time (target >= %.1fx)\n",
      solo_rate, kSessions, aggregate_rate, speedup, target);
  std::printf(
      "the aggregate holds because multiplexing does not inflate a frame's "
      "CPU critical path: sessions share one pool instead of fighting with "
      "private ones.\n");

  const bool ok = speedup >= target;
  if (!json_path.empty()) {
    bench::JsonReport report;
    report.set("workload.spots", synthesis.spot_count);
    report.set("workload.texture",
               static_cast<std::int64_t>(synthesis.texture_width));
    report.set("workload.sessions", static_cast<std::int64_t>(kSessions));
    report.set("workload.frames_per_session", static_cast<std::int64_t>(frames));
    report.set("workload.processors_per_session",
               static_cast<std::int64_t>(dnc.processors));
    report.set("solo.modeled_frame_ms", mean_modeled(solo) * 1e3);
    report.set("solo.modeled_rate", solo_rate);
    report.set("concurrent.modeled_frame_ms", mean_modeled(concurrent) * 1e3);
    report.set("concurrent.aggregate_modeled_rate", aggregate_rate);
    report.set("concurrent.cross_session_chunks", cross_chunks);
    {
      std::vector<double> latency;
      for (const JobSample& s : concurrent) latency.push_back(s.latency_seconds * 1e3);
      report.set("concurrent.latency_p50_ms", util::percentile(latency, 0.50));
      report.set("concurrent.latency_p95_ms", util::percentile(latency, 0.95));
    }
    report.set("gate.aggregate_speedup", speedup);
    report.set("gate.target", target);
    report.set("gate.pass", ok);
    report.set("mode", smoke ? "smoke" : "full");
    report.write(json_path);
  }
  if (!ok) std::printf("TARGET MISSED\n");
  return ok ? 0 : 1;
}
