#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "field/analytic.hpp"
#include "sim/dns_solver.hpp"
#include "sim/smog_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/simd_dispatch.hpp"

#ifndef DCSN_BENCH_OUT_DIR
#define DCSN_BENCH_OUT_DIR "bench_out"
#endif

namespace dcsn::bench {

Workload make_atmospheric_workload() {
  Workload w;
  w.name = "atmospheric pollution (53x55 wind, 2500 bent spots, 32x17 mesh)";

  // A developed weather state: run the model for a few simulated hours.
  sim::SmogModel model(sim::SmogParams{});
  for (int step = 0; step < 8; ++step) model.step(0.5);
  w.field = std::make_unique<field::GridVectorField>(model.wind());

  w.synthesis.texture_width = 512;
  w.synthesis.texture_height = 512;
  w.synthesis.spot_count = 2500;
  w.synthesis.kind = core::SpotKind::kBent;
  w.synthesis.bent.mesh_cols = 32;  // the paper's 32x17 mesh
  w.synthesis.bent.mesh_rows = 17;
  w.synthesis.bent.length_px = 40.0;
  w.synthesis.bent.trace_substeps = 24;  // calibration: genP/genT ~ 3-4
  w.synthesis.spot_radius_px = 5.0;
  w.synthesis.intensity_scale =
      core::SerialSynthesizer::natural_intensity(w.synthesis);

  util::Rng rng(w.synthesis.seed);
  w.spots = core::make_random_spots(w.field->domain(), w.synthesis.spot_count, rng);
  return w;
}

Workload make_dns_workload(int spinup_steps) {
  Workload w;
  w.name = "DNS turbulent flow (278x208 slice, 40000 bent spots, 16x3 mesh)";

  sim::DnsSolver solver(sim::DnsParams{});
  for (int step = 0; step < spinup_steps; ++step) solver.step();
  w.field = std::make_unique<field::RectilinearVectorField>(solver.snapshot());

  w.synthesis.texture_width = 512;
  w.synthesis.texture_height = 512;
  w.synthesis.spot_count = 40000;
  w.synthesis.kind = core::SpotKind::kBent;
  w.synthesis.bent.mesh_cols = 16;  // the paper's 16x3 mesh
  w.synthesis.bent.mesh_rows = 3;
  w.synthesis.bent.length_px = 24.0;
  w.synthesis.bent.trace_substeps = 4;  // calibration: genP/genT ~ 3-4
  w.synthesis.spot_radius_px = 2.5;
  w.synthesis.intensity_scale =
      core::SerialSynthesizer::natural_intensity(w.synthesis);

  util::Rng rng(w.synthesis.seed);
  w.spots = core::make_random_spots(w.field->domain(), w.synthesis.spot_count, rng);
  return w;
}

Workload make_balance_workload(bool clustered) {
  Workload w;
  w.name = std::string("load-balance stress (capped swirl, 10000 bent spots, ") +
           (clustered ? "clustered" : "uniform") + ")";

  // Solid rotation under a (1 - (r/R)^2)^2 envelope: smooth inside the core,
  // *exactly* zero outside it. Outside spots see a stagnant field, so their
  // streamline trace stops at the seed and the bent spot degrades to a cheap
  // point quad — per-spot cost genuinely varies with position.
  const field::Vec2 center{0.26, 0.28};
  const double core_radius = 0.22;
  const double omega = 1.0;
  const field::Rect domain{0, 0, 1, 1};
  auto swirl = [center, core_radius, omega](field::Vec2 p) -> field::Vec2 {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    const double r2 = (dx * dx + dy * dy) / (core_radius * core_radius);
    if (r2 >= 1.0) return {0.0, 0.0};
    const double envelope = (1.0 - r2) * (1.0 - r2);
    return {-dy * omega * envelope, dx * omega * envelope};
  };
  // max of r * (1 - (r/R)^2)^2 over r is at r = R/sqrt(5).
  const double max_mag = omega * core_radius * 0.2863;
  w.field = std::make_unique<field::CallableField>(swirl, domain, max_mag);

  w.synthesis.texture_width = 512;
  w.synthesis.texture_height = 512;
  w.synthesis.spot_count = 10000;
  w.synthesis.kind = core::SpotKind::kBent;
  w.synthesis.bent.mesh_cols = 16;
  w.synthesis.bent.mesh_rows = 5;
  w.synthesis.bent.length_px = 36.0;
  w.synthesis.bent.trace_substeps = 8;
  w.synthesis.spot_radius_px = 3.0;
  w.synthesis.intensity_scale =
      core::SerialSynthesizer::natural_intensity(w.synthesis);

  util::Rng rng(w.synthesis.seed);
  if (clustered) {
    // First half: dense cluster inside the swirl core (expensive spots,
    // contiguous in index order). Second half: scattered over the whole
    // domain, mostly stagnant (cheap).
    const std::int64_t in_cluster = w.synthesis.spot_count / 2;
    const double half_box = core_radius * 0.55;  // box stays inside the core
    w.spots.reserve(static_cast<std::size_t>(w.synthesis.spot_count));
    for (std::int64_t k = 0; k < in_cluster; ++k) {
      core::SpotInstance spot;
      spot.position = {rng.uniform(center.x - half_box, center.x + half_box),
                       rng.uniform(center.y - half_box, center.y + half_box)};
      spot.intensity = rng.intensity();
      w.spots.push_back(spot);
    }
    for (std::int64_t k = in_cluster; k < w.synthesis.spot_count; ++k) {
      core::SpotInstance spot;
      spot.position = {rng.uniform(domain.x0, domain.x1),
                       rng.uniform(domain.y0, domain.y1)};
      spot.intensity = rng.intensity();
      w.spots.push_back(spot);
    }
  } else {
    w.spots = core::make_random_spots(domain, w.synthesis.spot_count, rng);
  }
  return w;
}

double measure_rate(const Workload& workload, const core::DncConfig& dnc,
                    int frames, core::FrameStats* last_stats) {
  core::DncSynthesizer engine(workload.synthesis, dnc);
  (void)engine.synthesize(*workload.field, workload.spots);  // warm-up
  double total = 0.0;
  core::FrameStats stats;
  for (int k = 0; k < frames; ++k) {
    stats = engine.synthesize(*workload.field, workload.spots);
    total += stats.frame_seconds;
  }
  if (last_stats) *last_stats = stats;
  return frames / total;
}

RateSample measure_rates(const Workload& workload, const core::DncConfig& dnc,
                         int frames) {
  core::DncSynthesizer engine(workload.synthesis, dnc);
  (void)engine.synthesize(*workload.field, workload.spots);  // warm-up
  RateSample sample;
  double wall = 0.0;
  double modeled = 0.0;
  for (int k = 0; k < frames; ++k) {
    sample.stats = engine.synthesize(*workload.field, workload.spots);
    wall += sample.stats.frame_seconds;
    modeled += sample.stats.modeled_frame_seconds;
  }
  sample.wall_rate = frames / wall;
  sample.modeled_rate = modeled > 0.0 ? frames / modeled : 0.0;
  return sample;
}

std::vector<Cell> run_table(const Workload& workload,
                            const std::vector<std::vector<double>>& paper,
                            double bus_bytes_per_second, int frames) {
  const std::vector<int> processor_rows = {1, 2, 4, 8};
  const std::vector<int> pipe_cols = {1, 2, 4};
  std::vector<Cell> cells;
  for (std::size_t r = 0; r < processor_rows.size(); ++r) {
    for (std::size_t c = 0; c < pipe_cols.size(); ++c) {
      if (paper[r][c] == 0.0) continue;  // cell blank in the paper
      Cell cell;
      cell.processors = processor_rows[r];
      cell.pipes = pipe_cols[c];
      cell.paper_rate = paper[r][c];
      core::DncConfig dnc;
      dnc.processors = cell.processors;
      dnc.pipes = cell.pipes;
      dnc.bus_bytes_per_second = bus_bytes_per_second;
      cell.measured_rate = measure_rate(workload, dnc, frames, &cell.stats);
      std::printf("  measured nP=%d nG=%d : %6.2f textures/s\n", cell.processors,
                  cell.pipes, cell.measured_rate);
      std::fflush(stdout);
      cells.push_back(cell);
    }
  }
  return cells;
}

namespace {
const Cell* find(const std::vector<Cell>& cells, int p, int g) {
  for (const Cell& c : cells)
    if (c.processors == p && c.pipes == g) return &c;
  return nullptr;
}
}  // namespace

void print_table(const std::string& title, const std::vector<Cell>& cells) {
  std::printf("\n%s\n", title.c_str());
  std::printf("textures per second, measured (paper) — rows: processors, cols: pipes\n");
  std::printf("%6s %18s %18s %18s\n", "", "1 pipe", "2 pipes", "4 pipes");
  for (const int p : {1, 2, 4, 8}) {
    std::printf("%6d", p);
    for (const int g : {1, 2, 4}) {
      if (const Cell* c = find(cells, p, g)) {
        std::printf("   %7.2f (%4.1f)  ", c->measured_rate, c->paper_rate);
      } else {
        std::printf("   %16s", "-");
      }
    }
    std::printf("\n");
  }

  // The §5 discussion points, recomputed from the measured cells.
  std::printf("\nshape observations:\n");
  const Cell* c11 = find(cells, 1, 1);
  const Cell* c41 = find(cells, 4, 1);
  const Cell* c81 = find(cells, 8, 1);
  if (c11 && c41 && c81) {
    std::printf(
        "  processors per pipe saturate: 1->4 procs gains %.2fx, 4->8 procs gains "
        "%.2fx (paper: large, then ~none)\n",
        c41->measured_rate / c11->measured_rate,
        c81->measured_rate / c41->measured_rate);
  }
  const Cell* c84 = find(cells, 8, 4);
  const Cell* c82 = find(cells, 8, 2);
  if (c81 && c82 && c84) {
    std::printf(
        "  pipes help when fed: at 8 procs, 1->2 pipes %.2fx, 2->4 pipes %.2fx\n",
        c82->measured_rate / c81->measured_rate,
        c84->measured_rate / c82->measured_rate);
  }
  const Cell* c21 = find(cells, 2, 1);
  const Cell* c22 = find(cells, 2, 2);
  if (c21 && c22) {
    std::printf(
        "  pipes idle when starved: at 2 procs, 1->2 pipes %.2fx (paper: 1.00x)\n",
        c22->measured_rate / c21->measured_rate);
  }
  if (c11 && c84) {
    const double speedup = c84->measured_rate / c11->measured_rate;
    std::printf(
        "  8 procs + 4 pipes vs 1+1: %.2fx of the ideal 8x — sequential gather c = "
        "%.1f ms/frame keeps it sublinear (paper: 5.6x of 8x)\n",
        speedup, c84->stats.gather_seconds * 1e3);
  }
  if (c84) {
    const double bytes_per_texture = static_cast<double>(c84->stats.geometry_bytes);
    const double mb_per_s = bytes_per_texture * c84->measured_rate / 1.0e6;
    std::printf(
        "  geometry traffic at the fastest config: %.1f MB/texture, %.0f MB/s of "
        "the modeled 800 MB/s bus (paper: well below the maximum)\n",
        bytes_per_texture / 1.0e6, mb_per_s);
    const double ratio = c84->stats.genP_seconds / c84->stats.genT_seconds;
    std::printf("  calibration: measured genP/genT per spot = %.2f\n", ratio);
  }
}

void check_footnote3(const Workload& workload, double bus_bytes_per_second,
                     int frames) {
  std::printf("\nfootnote 3 — the paper *expected* 16 processors to be optimal "
              "for 4 pipes:\n");
  double best_rate = 0.0;
  int best_procs = 0;
  for (const int procs : {8, 12, 16}) {
    core::DncConfig dnc;
    dnc.processors = procs;
    dnc.pipes = 4;
    dnc.bus_bytes_per_second = bus_bytes_per_second;
    const double rate = measure_rate(workload, dnc, frames);
    std::printf("  %2d procs / 4 pipes : %6.2f textures/s\n", procs, rate);
    if (rate > best_rate) {
      best_rate = rate;
      best_procs = procs;
    }
  }
  std::printf("  best measured: %d processors — the paper's expectation %s on "
              "this machine\n",
              best_procs, best_procs == 16 ? "holds" : "does not quite hold");
}

void JsonReport::put(const std::string& key, std::string rendered) {
  for (auto& [existing, value] : entries_) {
    if (existing == key) {
      value = std::move(rendered);
      return;
    }
  }
  entries_.emplace_back(key, std::move(rendered));
}

void JsonReport::set(const std::string& key, double value) {
  char buffer[64];
  // %.17g round-trips doubles; JSON has no inf/nan, fall back to null.
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
  } else {
    std::snprintf(buffer, sizeof buffer, "null");
  }
  put(key, buffer);
}

void JsonReport::set(const std::string& key, std::int64_t value) {
  put(key, std::to_string(value));
}

void JsonReport::set(const std::string& key, bool value) {
  put(key, value ? "true" : "false");
}

void JsonReport::set(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': quoted += "\\\""; break;
      case '\\': quoted += "\\\\"; break;
      case '\n': quoted += "\\n"; break;
      case '\t': quoted += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          quoted += esc;
        } else {
          quoted += c;
        }
    }
  }
  quoted += '"';
  put(key, std::move(quoted));
}

bool JsonReport::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    std::printf("warning: cannot open %s for the JSON report\n", path.c_str());
    return false;
  }
  // Stamp the dispatched kernel tier and host ISA into every report (unless
  // the bench set them itself, e.g. a tier-ablation bench).
  auto entries = entries_;
  auto append_if_absent = [&entries](const char* key, const std::string& value) {
    for (const auto& [existing, unused] : entries) {
      if (existing == key) return;
    }
    std::string quoted = "\"";
    quoted += value;
    quoted += '"';
    entries.emplace_back(key, std::move(quoted));
  };
  append_if_absent("simd.tier", util::simd::tier_name(util::simd::active_tier()));
  append_if_absent("simd.cpu", util::simd::cpu_flags());
  std::fprintf(file, "{\n");
  for (std::size_t k = 0; k < entries.size(); ++k) {
    std::fprintf(file, "  \"%s\": %s%s\n", entries[k].first.c_str(),
                 entries[k].second.c_str(),
                 k + 1 < entries.size() ? "," : "");
  }
  std::fprintf(file, "}\n");
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::string parse_json_path(int argc, char** argv) {
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--json") {
      if (k + 1 >= argc) {
        std::fprintf(stderr, "error: --json requires a path argument\n");
        std::exit(2);
      }
      return argv[k + 1];
    }
  }
  return {};
}

bool has_flag(int argc, char** argv, const std::string& name) {
  for (int k = 1; k < argc; ++k) {
    if (name == argv[k]) return true;
  }
  return false;
}

void write_csv(const std::string& path, const std::vector<Cell>& cells) {
  util::CsvWriter csv(path, {"processors", "pipes", "paper_rate", "measured_rate",
                             "genP_s", "genT_s", "gather_s", "geometry_bytes"});
  for (const Cell& c : cells) {
    csv.row({std::to_string(c.processors), std::to_string(c.pipes),
             util::CsvWriter::num(c.paper_rate), util::CsvWriter::num(c.measured_rate),
             util::CsvWriter::num(c.stats.genP_seconds),
             util::CsvWriter::num(c.stats.genT_seconds),
             util::CsvWriter::num(c.stats.gather_seconds),
             std::to_string(c.stats.geometry_bytes)});
  }
  std::printf("wrote %s\n", path.c_str());
}

std::string csv_path(int argc, char** argv, const std::string& filename) {
  const util::Args args(argc, argv);
  std::filesystem::path dir =
      args.get_string("out", std::string(DCSN_BENCH_OUT_DIR));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create %s (%s); writing %s in cwd\n",
                 dir.string().c_str(), ec.message().c_str(), filename.c_str());
    return filename;
  }
  return (dir / filename).string();
}

}  // namespace dcsn::bench
