// Ablation for the paper's §3 texture-decomposition tradeoff and §4
// implementation: full-texture gather-blend vs. tiled rendering.
//
// Tiling buys a cheap disjoint compose (copies instead of blends, smaller
// readbacks) at the price of duplicated spot-shape work for spots whose
// extent straddles region boundaries. Which side wins depends on spot size:
// this bench sweeps both strategies on both paper workloads.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 2);

  util::CsvWriter csv(bench::csv_path(argc, argv, "ablation_tiling.csv"),
                      {"workload", "pipes", "mode", "modeled_rate", "wall_rate",
                       "duplicates", "gather_ms", "readback_mb", "imbalance",
                       "stolen_chunks"});

  struct Mode {
    const char* name;
    bool tiled;
    core::TileStrategy strategy;
  };
  const Mode modes[] = {
      {"gather-blend", false, core::TileStrategy::kGrid},
      {"tiled-grid", true, core::TileStrategy::kGrid},
      {"tiled-kd", true, core::TileStrategy::kCostBalanced},
  };

  for (const bool dns : {false, true}) {
    bench::Workload workload = dns ? bench::make_dns_workload(80)
                                   : bench::make_atmospheric_workload();
    std::printf("\n%s\n", workload.name.c_str());
    std::printf("%6s %14s %11s %9s %12s %11s %12s %11s %9s\n", "pipes", "mode",
                "modeled/s", "wall/s", "duplicates", "gather ms", "readback MB",
                "imbalance", "stolen");
    for (const int pipes : {2, 4}) {
      for (const Mode& mode : modes) {
        core::DncConfig dnc;
        dnc.processors = 8;
        dnc.pipes = pipes;
        dnc.tiled = mode.tiled;
        dnc.tile_strategy = mode.strategy;
        dnc.bus_bytes_per_second = bench::kPaperBusBytesPerSecond;
        const bench::RateSample sample = bench::measure_rates(workload, dnc, frames);
        const core::FrameStats& stats = sample.stats;
        std::printf("%6d %14s %11.2f %9.2f %12lld %11.2f %12.2f %11.2f %9lld\n",
                    pipes, mode.name, sample.modeled_rate, sample.wall_rate,
                    static_cast<long long>(stats.duplicated_spots),
                    stats.gather_seconds * 1e3,
                    static_cast<double>(stats.readback_bytes) / 1e6,
                    stats.imbalance,
                    static_cast<long long>(stats.stolen_chunks));
        csv.row({dns ? "dns" : "atmospheric", std::to_string(pipes), mode.name,
                 util::CsvWriter::num(sample.modeled_rate),
                 util::CsvWriter::num(sample.wall_rate),
                 std::to_string(stats.duplicated_spots),
                 util::CsvWriter::num(stats.gather_seconds * 1e3),
                 util::CsvWriter::num(static_cast<double>(stats.readback_bytes) / 1e6),
                 util::CsvWriter::num(stats.imbalance),
                 std::to_string(stats.stolen_chunks)});
      }
    }
  }
  std::printf(
      "\npaper's tradeoff: tiling shrinks the sequential compose (gather ms, "
      "readback MB) but duplicates boundary spots; large spots (atmospheric "
      "32x17 ribbons) duplicate more than small ones (DNS 16x3).\n");
  return 0;
}
