// Ablation for the paper's §5.1 bandwidth observation: "At 5.6 textures per
// second the total bandwidth needed is approximately 116 MBytes/sec ...
// well below the maximum of 800 MBytes/sec."
//
// Sweeps the modeled bus bandwidth from unthrottled down to starvation and
// reports throughput and pipe stall time: the 800 MB/s Onyx2 bus never
// binds, narrower buses eventually do.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 2);

  bench::Workload workload = bench::make_dns_workload(args.get_int("spinup", 80));
  std::printf("bus-bandwidth ablation on: %s\n", workload.name.c_str());
  std::printf("(geometry traffic is ~31 MB per texture in this workload)\n\n");

  util::CsvWriter csv(bench::csv_path(argc, argv, "ablation_bandwidth.csv"),
                      {"bus_mb_s", "rate", "stall_ms", "traffic_mb_s"});
  std::printf("%12s %12s %14s %16s\n", "bus (MB/s)", "textures/s",
              "pipe stall ms", "traffic (MB/s)");
  for (const double mb_per_s : {0.0, 800.0, 200.0, 60.0, 20.0}) {
    core::DncConfig dnc;
    dnc.processors = 8;
    dnc.pipes = 4;
    dnc.bus_bytes_per_second = mb_per_s * 1e6;
    core::FrameStats stats;
    const double rate = bench::measure_rate(workload, dnc, frames, &stats);
    const double traffic =
        static_cast<double>(stats.geometry_bytes + stats.readback_bytes) * rate / 1e6;
    if (mb_per_s == 0.0) {
      std::printf("%12s %12.2f %14.2f %16.1f\n", "unlimited", rate,
                  stats.pipe_stall_seconds * 1e3, traffic);
    } else {
      std::printf("%12.0f %12.2f %14.2f %16.1f\n", mb_per_s, rate,
                  stats.pipe_stall_seconds * 1e3, traffic);
    }
    csv.row({util::CsvWriter::num(mb_per_s), util::CsvWriter::num(rate),
             util::CsvWriter::num(stats.pipe_stall_seconds * 1e3),
             util::CsvWriter::num(traffic)});
  }
  std::printf("\npaper's observation reproduced if the 800 MB/s row matches the "
              "unlimited row (bus not the limiting factor) while narrow buses "
              "stall the pipes and cap throughput.\n");
  return 0;
}
