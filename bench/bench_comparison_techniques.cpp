// Technique comparison: spot noise (this paper) vs. LIC (the image-order
// dense technique that eventually displaced it) vs. the discrete baselines
// (arrow plot) the paper's applications replaced.
//
// Reports synthesis time and flow-direction anisotropy (the signal a dense
// flow texture exists to carry) on the same field, plus how each dense
// technique scales with worker threads.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/lic.hpp"
#include "field/analytic.hpp"
#include "render/glyphs.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

// Directional autocorrelation contrast: along-flow correlation over
// across-flow correlation at a 4-pixel lag, for a horizontal flow.
double anisotropy(const render::Framebuffer& tex) {
  double along = 0.0, across = 0.0;
  const int lag = 4;
  for (int y = lag; y < tex.height() - lag; ++y)
    for (int x = lag; x < tex.width() - lag; ++x) {
      along += double(tex.at(x, y)) * tex.at(x + lag, y);
      across += double(tex.at(x, y)) * tex.at(x, y + lag);
    }
  return across != 0.0 ? along / std::abs(across) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const field::Rect domain{0, 0, 1, 1};
  const auto f = field::analytic::shear(2.0, domain);  // strongly directional

  std::printf("technique comparison on a shear field, 512x512 output\n\n");
  std::printf("%24s %12s %12s\n", "technique", "time (ms)", "anisotropy");

  // Spot noise via the divide-and-conquer engine (the paper's technique).
  core::SynthesisConfig sc;
  sc.spot_count = args.get_int("spots", 8000);
  sc.kind = core::SpotKind::kEllipse;
  sc.ellipse.max_stretch = 4.0;
  sc.spot_radius_px = 6.0;
  sc.intensity_scale = core::SerialSynthesizer::natural_intensity(sc);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  render::Framebuffer spot_texture;
  {
    core::DncSynthesizer synth(sc, dnc);
    util::Rng rng(sc.seed);
    const auto spots = core::make_random_spots(domain, sc.spot_count, rng);
    (void)synth.synthesize(*f, spots);  // warm-up
    const auto stats = synth.synthesize(*f, spots);
    spot_texture = synth.texture();
    std::printf("%24s %12.1f %12.2f\n", "spot noise (4p/2g)",
                stats.frame_seconds * 1e3, anisotropy(spot_texture));
  }

  // LIC at matched output size and comparable worker count.
  core::LicConfig lc;
  lc.kernel_half_length_px = 12.0;
  const auto noise = core::make_lic_noise(lc.width, lc.height, lc.noise_seed);
  for (const int threads : {1, 4, 8}) {
    lc.threads = threads;
    (void)core::lic(*f, noise, lc);  // warm-up
    const util::Stopwatch watch;
    const auto lic_texture = core::lic(*f, noise, lc);
    const double ms = watch.millis();
    std::printf("%21s/%dt %12.1f %12.2f\n", "LIC", threads, ms,
                anisotropy(lic_texture));
  }

  // Arrow plot: near-free but discrete (no anisotropy measure applies; its
  // information lives at 24x24 sample positions only).
  {
    render::Image img(512, 512, {255, 255, 255});
    const render::WorldToImage mapping(domain, 512, 512);
    const util::Stopwatch watch;
    render::draw_arrow_plot(img, mapping, *f, {});
    std::printf("%24s %12.1f %12s\n", "arrow plot (24x24)", watch.millis(),
                "discrete");
  }

  std::printf(
      "\nreading: both dense techniques show strong along-flow anisotropy; "
      "spot noise is object-order (cost ~ spots x spot area -> the paper's "
      "divide-and-conquer over spots), LIC is image-order (cost ~ pixels x "
      "kernel -> parallel over pixels).\n");
  return 0;
}
