// Cross-session content-addressed tile cache — the shared-store payoff
// measured.
//
// PR 5 let K sessions share one worker/pipe pool; each still rasterized its
// own frames from scratch. The core::TileStore adds the missing layer for
// the many-users-one-dataset deployment: tile pixels are a pure function of
// (spot subset, field content, raster config) — PR 4's lattice guarantee —
// so a tile rendered by one session IS the tile every other session needs,
// bit for bit. This bench measures the claim end to end:
//
//   uncached    K sessions on one service, tile_cache off: every session
//               pays the full generation + rasterization cost.
//   cached      a fresh service whose store starts cold. Session 1 renders
//               and publishes every tile; sessions 2..K compose their
//               frames straight from the store.
//
// Costs are *modeled* (FrameStats::modeled_frame_seconds — eq. 3.2 critical
// paths over per-thread CPU clocks) so a one-core CI host measures the same
// thing a big one would. The fingerprint, key hashing and store probes are
// deliberately charged inside the assignment phase of that model, so the
// cache cannot look free: a hit frame's cost is its real bookkeeping cost.
//
// Gates (both must hold, plus bit-identity):
//   * K-session cached aggregate <= 1.4x one session's uncached cost —
//     serving K users costs barely more than serving one;
//   * aggregate speedup (uncached K-session cost / cached) >= 2.5x;
//   * every frame's content_hash equals the solo uncached engine's.
//
// Exits nonzero when a gate fails; scripts/bench.sh checks the JSON report
// in as BENCH_tile_cache.json.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/synthesis_service.hpp"
#include "field/analytic.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;

constexpr int kSessions = 4;

double aggregate_modeled(const std::vector<core::SynthesisResult>& results) {
  double sum = 0.0;
  for (const core::SynthesisResult& r : results) {
    sum += r.stats.modeled_frame_seconds;
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::string json_path = bench::parse_json_path(argc, argv);

  // A genP-heavy workload (bent spots, deep integration): the cost a warm
  // session avoids is dominated by generation, exactly the term the store
  // removes. Every session views the SAME dataset — same seed, same spots,
  // same field — which is the deployment the tentpole targets.
  core::SynthesisConfig synthesis;
  synthesis.texture_width = smoke ? 128 : 256;
  synthesis.texture_height = smoke ? 128 : 256;
  synthesis.spot_count = smoke ? 1200 : 3500;
  synthesis.spot_radius_px = 6.0;
  synthesis.kind = core::SpotKind::kBent;
  synthesis.bent.mesh_cols = 10;
  synthesis.bent.mesh_rows = 3;
  synthesis.bent.length_px = 28.0;
  synthesis.bent.trace_substeps = 8;

  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 2;
  dnc.tiled = true;  // the store caches the tiled decomposition's units

  const field::Rect domain{0.0, 0.0, 2.0, 2.0};
  const auto field = field::analytic::taylor_green(1.0, domain);
  util::Rng rng(synthesis.seed);
  auto spots = core::make_random_spots(domain, synthesis.spot_count, rng);
  for (auto& spot : spots) spot.intensity *= 0.2;

  std::printf(
      "tile-cache workload: %lld bent spots (%dx%d mesh), %dx%d texture, "
      "%d sessions x 1 frame on one dataset, nP=%d nG=%d, %d grid tiles\n",
      static_cast<long long>(synthesis.spot_count), synthesis.bent.mesh_cols,
      synthesis.bent.mesh_rows, synthesis.texture_width,
      synthesis.texture_height, kSessions, dnc.processors, dnc.pipes,
      dnc.pipes);

  // Solo uncached engine: the bit-identity oracle.
  core::DncSynthesizer solo(synthesis, dnc);
  solo.synthesize(*field, spots);
  const std::uint64_t expected_hash = solo.texture().content_hash();

  auto run_sessions = [&](bool tile_cache, core::TileStore::Stats* store_stats) {
    core::Runtime runtime({.workers = 2});
    core::SynthesisService service({.drivers = 1}, runtime);
    core::DncConfig session_dnc = dnc;
    session_dnc.tile_cache = tile_cache;
    std::vector<core::SynthesisResult> results;
    for (int s = 0; s < kSessions; ++s) {
      const auto id = service.open_session(synthesis, session_dnc);
      core::SynthesisRequest req;
      req.field = field.get();
      req.spots = spots;
      // Sequential on one driver: session s+1 starts only after session s
      // published, the arrive-one-after-another browsing pattern.
      results.push_back(service.submit(id, std::move(req)).result.get());
    }
    if (store_stats != nullptr) *store_stats = service.tile_cache_stats();
    return results;
  };

  const auto uncached = run_sessions(false, nullptr);
  core::TileStore::Stats store_stats;
  const auto cached = run_sessions(true, &store_stats);

  bool bit_identical = true;
  for (int s = 0; s < kSessions; ++s) {
    const auto i = static_cast<std::size_t>(s);
    if (uncached[i].content_hash != expected_hash ||
        cached[i].content_hash != expected_hash) {
      bit_identical = false;
      std::printf("HASH MISMATCH session %d: uncached %016llx cached %016llx "
                  "expected %016llx\n",
                  s, static_cast<unsigned long long>(uncached[i].content_hash),
                  static_cast<unsigned long long>(cached[i].content_hash),
                  static_cast<unsigned long long>(expected_hash));
    }
  }

  const double uncached_aggregate = aggregate_modeled(uncached);
  const double cached_aggregate = aggregate_modeled(cached);
  const double single_cost = uncached_aggregate / kSessions;
  const double cost_ratio = cached_aggregate / single_cost;
  const double speedup = uncached_aggregate / cached_aggregate;
  std::int64_t hits = 0, published = 0;
  for (const core::SynthesisResult& r : cached) {
    hits += r.stats.cache_tile_hits;
    published += r.stats.cache_tiles_published;
  }

  std::printf("\n%-9s", "session:");
  for (int s = 0; s < kSessions; ++s) std::printf("  %8d", s);
  std::printf("\n%-9s", "uncached");
  for (const auto& r : uncached)
    std::printf("  %6.2fms", r.stats.modeled_frame_seconds * 1e3);
  std::printf("\n%-9s", "cached");
  for (const auto& r : cached)
    std::printf("  %6.2fms", r.stats.modeled_frame_seconds * 1e3);
  std::printf("\n\nstore: %lld tiles published by session 0, %lld hits by "
              "sessions 1..%d (%lld store hits total), %llu bytes live\n",
              static_cast<long long>(published), static_cast<long long>(hits),
              kSessions - 1, static_cast<long long>(store_stats.hits),
              static_cast<unsigned long long>(store_stats.bytes));
  std::printf(
      "modeled cost: one uncached session %.2f ms; %d cached sessions "
      "%.2f ms aggregate = %.2fx one session (target <= 1.4x), "
      "%.2fx aggregate speedup (target >= 2.5x)\n",
      single_cost * 1e3, kSessions, cached_aggregate * 1e3, cost_ratio,
      speedup);

  const bool sharing_happened =
      hits == static_cast<std::int64_t>(kSessions - 1) * dnc.pipes;
  const bool ok =
      bit_identical && sharing_happened && cost_ratio <= 1.4 && speedup >= 2.5;

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.set("workload.spots", synthesis.spot_count);
    report.set("workload.texture",
               static_cast<std::int64_t>(synthesis.texture_width));
    report.set("workload.sessions", static_cast<std::int64_t>(kSessions));
    report.set("workload.tiles", static_cast<std::int64_t>(dnc.pipes));
    report.set("uncached.single_session_modeled_ms", single_cost * 1e3);
    report.set("uncached.aggregate_modeled_ms", uncached_aggregate * 1e3);
    report.set("cached.aggregate_modeled_ms", cached_aggregate * 1e3);
    report.set("cached.cold_session_modeled_ms",
               cached.front().stats.modeled_frame_seconds * 1e3);
    report.set("cached.warm_session_modeled_ms",
               cached.back().stats.modeled_frame_seconds * 1e3);
    report.set("store.tiles_published", published);
    report.set("store.tile_hits", hits);
    report.set("store.live_bytes",
               static_cast<std::int64_t>(store_stats.bytes));
    report.set("gate.bit_identical", bit_identical);
    report.set("gate.cost_ratio_vs_one_session", cost_ratio);
    report.set("gate.cost_ratio_target", 1.4);
    report.set("gate.aggregate_speedup", speedup);
    report.set("gate.speedup_target", 2.5);
    report.set("gate.pass", ok);
    report.set("mode", smoke ? "smoke" : "full");
    report.write(json_path);
  }
  if (!ok) std::printf("TARGET MISSED\n");
  return ok ? 0 : 1;
}
