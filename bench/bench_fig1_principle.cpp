// Regenerates Figure 1: the principle of spot noise — a single spot (left)
// and the texture that results from blending many randomly placed,
// randomly weighted copies (right).
//
// Outputs: fig1_single_spot.ppm, fig1_texture.ppm
#include <cstdio>

#include "core/serial_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "field/analytic.hpp"
#include "io/ppm.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);

  // Left image: one circular spot, rendered large.
  {
    core::SynthesisConfig config;
    config.texture_width = 256;
    config.texture_height = 256;
    config.spot_count = 1;
    config.spot_radius_px = 80.0;
    config.kind = core::SpotKind::kPoint;
    config.profile_shape = render::SpotShape::kCosine;
    const auto f = field::analytic::uniform({0.0, 0.0}, {0.0, 0.0, 1.0, 1.0});
    core::SerialSynthesizer synth(config);
    const std::vector<core::SpotInstance> one = {{{0.5, 0.5}, 1.0}};
    synth.synthesize(*f, one);
    io::write_ppm("fig1_single_spot.ppm", render::texture_to_image(synth.texture()));
  }

  // Right image: f(x) = sum a_i h(x - x_i) over many random spots. The
  // field is irrelevant for untransformed spots; a zero field makes that
  // explicit.
  core::SynthesisConfig config;
  config.texture_width = 512;
  config.texture_height = 512;
  config.spot_count = args.get_int("spots", 20000);
  config.spot_radius_px = 8.0;
  config.kind = core::SpotKind::kPoint;
  config.profile_shape = render::SpotShape::kCosine;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  const auto f = field::analytic::uniform({0.0, 0.0}, {0.0, 0.0, 1.0, 1.0});
  core::SerialSynthesizer synth(config);
  util::Rng rng(config.seed);
  const auto spots = core::make_random_spots(f->domain(), config.spot_count, rng);

  const util::Stopwatch watch;
  const auto stats = synth.synthesize(*f, spots);
  const double seconds = watch.seconds();
  io::write_ppm("fig1_texture.ppm", render::texture_to_image(synth.texture()));

  std::printf("fig1: single spot -> fig1_single_spot.ppm\n");
  std::printf("fig1: %lld-spot texture -> fig1_texture.ppm (%.1f ms, mean %.4f "
              "~ 0, sigma %.4f)\n",
              static_cast<long long>(stats.spots), seconds * 1e3,
              synth.texture().mean(), render::texture_stddev(synth.texture()));
  return 0;
}
