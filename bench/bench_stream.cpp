// Streaming frame-server gate (latency SLO + delta bandwidth + end-to-end
// bit-exactness).
//
// Workload: the steering scenario of the incremental ablation, seen from
// the wire. Four clients connect to one net::FrameServer over a local
// socket and stream the SAME deterministic frame sequence — a probe disc
// holding ~6% of the spot population stirs one region while the rest of
// the texture is static — closed-loop (submit, await, next). Identical
// sequences mean ONE in-process reference engine replay provides the
// ground-truth content hash for every frame of every client.
//
// Gates, all must hold (exit nonzero otherwise):
//
//   1. latency SLO: p95 submit->verified-frame latency under 4 concurrent
//      streamed sessions must stay within max(kSloFloorMs, kSloFactor x
//      the measured solo mean). Declared relative to a solo baseline run
//      on the same host so the gate measures multiplexing + wire overhead,
//      not the absolute speed of a loaded 1-core CI box.
//   2. delta bandwidth: steady-state delta frames must average <= 0.35x
//      the bytes of a full frame — the dirty-tile encoding has to actually
//      compress the ~6%-motion workload, headers and hashes included.
//   3. bit-exactness: every frame reassembled by every client must hash to
//      exactly the reference engine's hash for that frame index (on top of
//      the client's own per-tile and whole-frame verification, which
//      throws on any corruption).
//
// usage: bench_stream [--smoke] [--json <path>]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/dnc_synthesizer.hpp"
#include "core/spot_source.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

constexpr int kClients = 4;
constexpr double kDeltaTarget = 0.35;  ///< delta bytes / full bytes ceiling
constexpr double kSloFloorMs = 250.0;  ///< absolute SLO floor
constexpr double kSloFactor = 8.0;     ///< x solo mean latency

struct StreamWorkload {
  net::FieldSpec field;
  core::SynthesisConfig synthesis;
  core::DncConfig dnc;
  /// Per-frame spot populations: frame f's snapshot after f stir steps.
  std::vector<std::vector<core::SpotInstance>> frames;
};

StreamWorkload make_workload(bool smoke, int frames) {
  StreamWorkload w;
  const field::Rect domain{0.0, 0.0, 4.0, 4.0};
  w.field.kind = net::FieldSpec::Kind::kRankineVortex;
  w.field.a = 2.0;  // center
  w.field.b = 2.0;
  w.field.c = 1.2;  // strength
  w.field.d = 0.8;  // core radius
  w.field.domain = domain;

  w.synthesis.texture_width = smoke ? 128 : 192;
  w.synthesis.texture_height = w.synthesis.texture_width;
  w.synthesis.spot_count = smoke ? 1200 : 2500;
  w.synthesis.spot_radius_px = 3.0;
  w.synthesis.kind = core::SpotKind::kEllipse;
  w.synthesis.seed = 20260808;

  w.dnc.processors = 2;
  w.dnc.pipes = 1;
  w.dnc.chunk_spots = 32;

  util::Rng rng(w.synthesis.seed);
  auto spots = core::make_random_spots(domain, w.synthesis.spot_count, rng);
  for (auto& s : spots) s.intensity *= 0.2;

  // The probe disc of the incremental ablation: radius 0.55 over a
  // 16-area domain holds ~6% of a uniform population. Each frame rotates
  // the probe spots 0.12 rad around the center — localized motion, so the
  // dirty-tile delta has something to compress.
  const field::Vec2 center{1.0, 1.0};
  const double radius = 0.55;
  std::vector<std::size_t> probe;
  for (std::size_t k = 0; k < spots.size(); ++k) {
    const double dx = spots[k].position.x - center.x;
    const double dy = spots[k].position.y - center.y;
    if (dx * dx + dy * dy <= radius * radius) probe.push_back(k);
  }
  constexpr double kStep = 0.12;
  const double c = std::cos(kStep);
  const double s = std::sin(kStep);
  w.frames.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    w.frames.push_back(spots);
    for (const std::size_t k : probe) {
      const double dx = spots[k].position.x - center.x;
      const double dy = spots[k].position.y - center.y;
      spots[k].position = {center.x + c * dx - s * dy,
                          center.y + s * dx + c * dy};
    }
  }
  return w;
}

struct ClientStats {
  std::vector<double> latency_ms;
  std::uint64_t full_bytes = 0;
  std::uint64_t delta_bytes = 0;
  int full_frames = 0;
  int delta_frames = 0;
};

/// Streams the whole frame sequence closed-loop; counts hash mismatches
/// against the reference replay into `mismatches`.
ClientStats run_client(const std::string& socket_path, const StreamWorkload& w,
                       const std::vector<std::uint64_t>& reference,
                       std::atomic<int>& mismatches) {
  ClientStats stats;
  net::FrameClient client(socket_path);
  (void)client.open_session(w.field, w.synthesis, w.dnc);
  net::ClientSubmitOptions options;
  options.incremental = false;
  for (std::size_t f = 0; f < w.frames.size(); ++f) {
    const util::Stopwatch watch;
    (void)client.submit(w.frames[f], options);
    const net::FrameClient::FrameResult result = client.await_frame();
    stats.latency_ms.push_back(watch.seconds() * 1e3);
    if (result.content_hash != reference[f]) mismatches.fetch_add(1);
    if (result.full) {
      stats.full_bytes += result.wire_bytes;
      ++stats.full_frames;
    } else {
      stats.delta_bytes += result.wire_bytes;
      ++stats.delta_frames;
    }
  }
  client.finish_writes();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::string json_path = bench::parse_json_path(argc, argv);
  const int frames = smoke ? 6 : 10;

  std::printf("== streaming frame server gate (%s workload) ==\n",
              smoke ? "smoke" : "full");
  const StreamWorkload w = make_workload(smoke, frames);

  // Ground truth: one in-process engine replays the sequence. Every client
  // of every phase must reassemble exactly these hashes from the wire.
  std::vector<std::uint64_t> reference;
  {
    const auto field = w.field.make_field();
    core::DncSynthesizer engine(w.synthesis, w.dnc);
    for (const auto& spots : w.frames) {
      engine.synthesize(*field, spots);
      reference.push_back(engine.texture().content_hash());
    }
  }

  const std::string socket_path = "bench_stream.sock";
  net::FrameServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.service.drivers = 2;
  server_options.wire_tiles = 144;
  net::FrameServer server(server_options);
  std::atomic<int> mismatches{0};

  // Solo baseline: one client alone calibrates what a frame costs on this
  // host, wire included. The SLO is declared relative to its mean.
  const ClientStats solo = run_client(socket_path, w, reference, mismatches);
  double solo_mean_ms = 0.0;
  for (const double ms : solo.latency_ms) solo_mean_ms += ms;
  solo_mean_ms /= static_cast<double>(solo.latency_ms.size());

  // The streamed phase: kClients concurrent closed-loop sessions.
  std::vector<ClientStats> streamed(kClients);
  const util::Stopwatch wall;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        streamed[static_cast<std::size_t>(c)] =
            run_client(socket_path, w, reference, mismatches);
      });
    }
  }
  const double wall_seconds = wall.seconds();
  server.stop();
  std::remove(socket_path.c_str());

  std::vector<double> latency;
  std::uint64_t full_bytes = 0, delta_bytes = 0;
  int full_frames = 0, delta_frames = 0;
  for (const ClientStats& s : streamed) {
    latency.insert(latency.end(), s.latency_ms.begin(), s.latency_ms.end());
    full_bytes += s.full_bytes;
    delta_bytes += s.delta_bytes;
    full_frames += s.full_frames;
    delta_frames += s.delta_frames;
  }
  const double p50 = util::percentile(latency, 0.50);
  const double p95 = util::percentile(latency, 0.95);
  const double slo_ms = std::max(kSloFloorMs, kSloFactor * solo_mean_ms);
  const double mean_full =
      full_frames > 0 ? static_cast<double>(full_bytes) / full_frames : 0.0;
  const double mean_delta =
      delta_frames > 0 ? static_cast<double>(delta_bytes) / delta_frames : 0.0;
  const double delta_ratio = mean_full > 0.0 ? mean_delta / mean_full : 1.0;

  std::printf(
      "solo: %d frames, mean %.2f ms   streamed: %d clients x %d frames in "
      "%.2f s\n",
      frames, solo_mean_ms, kClients, frames, wall_seconds);
  std::printf(
      "latency p50 %.2f ms  p95 %.2f ms  (SLO %.2f ms = max(%.0f, %.0f x "
      "solo mean))\n",
      p50, p95, slo_ms, kSloFloorMs, kSloFactor);
  std::printf(
      "wire: full frame %.1f KiB, steady-state delta %.1f KiB -> ratio %.3f "
      "(target <= %.2f) over %d delta frames\n",
      mean_full / 1024.0, mean_delta / 1024.0, delta_ratio, kDeltaTarget,
      delta_frames);
  std::printf("hash verification: %d mismatches across %d frames\n",
              mismatches.load(), (kClients + 1) * frames);

  const bool slo_ok = p95 <= slo_ms;
  const bool delta_ok = delta_frames > 0 && delta_ratio <= kDeltaTarget;
  const bool hash_ok = mismatches.load() == 0;
  const bool ok = slo_ok && delta_ok && hash_ok;

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.set("workload.spots", w.synthesis.spot_count);
    report.set("workload.texture",
               static_cast<std::int64_t>(w.synthesis.texture_width));
    report.set("workload.clients", static_cast<std::int64_t>(kClients));
    report.set("workload.frames_per_client", static_cast<std::int64_t>(frames));
    report.set("solo.mean_latency_ms", solo_mean_ms);
    report.set("stream.latency_p50_ms", p50);
    report.set("stream.latency_p95_ms", p95);
    report.set("stream.wall_seconds", wall_seconds);
    report.set("wire.full_frame_bytes", mean_full);
    report.set("wire.delta_frame_bytes", mean_delta);
    report.set("wire.delta_frames", static_cast<std::int64_t>(delta_frames));
    report.set("gate.slo_ms", slo_ms);
    report.set("gate.p95_ms", p95);
    report.set("gate.slo_pass", slo_ok);
    report.set("gate.delta_ratio", delta_ratio);
    report.set("gate.delta_target", kDeltaTarget);
    report.set("gate.delta_pass", delta_ok);
    report.set("gate.hash_mismatches",
               static_cast<std::int64_t>(mismatches.load()));
    report.set("gate.pass", ok);
    report.set("mode", smoke ? "smoke" : "full");
    report.write(json_path);
  }
  if (!ok) std::printf("TARGET MISSED\n");
  return ok ? 0 : 1;
}
