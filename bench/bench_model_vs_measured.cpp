// Validates the paper's performance model:
//   eq. 2.1  T = max(sum genP, sum genT)            (overlap, not sum)
//   eq. 3.2  T = max(sum genP / nP, sum genT / nG) + c
//
// Calibrates genP/genT/c from a single (1 proc, 1 pipe) frame, predicts the
// whole Table-1 configuration grid, and compares against measurements. Also
// reports the balance point genP/genT (the paper's "approximately 4
// processors per graphics pipe") and the ResourceAdvisor's pick.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/perf_model.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", args.has("quick") ? 2 : 3);

  bench::Workload workload = bench::make_atmospheric_workload();
  std::printf("workload: %s\n\n", workload.name.c_str());

  // --- eq. 2.1: overlap ---------------------------------------------------
  core::DncConfig base;
  base.processors = 1;
  base.pipes = 1;
  base.bus_bytes_per_second = bench::kPaperBusBytesPerSecond;
  core::FrameStats frame11;
  const double rate11 = bench::measure_rate(workload, base, frames, &frame11);
  const double overlap_t = 1.0 / rate11;
  const double sum_t = frame11.genP_seconds + frame11.genT_seconds;
  const double max_t = std::max(frame11.genP_seconds, frame11.genT_seconds);
  std::printf("eq 2.1 (1 proc, 1 pipe): frame %.0f ms vs max(genP,genT) %.0f ms "
              "vs sum %.0f ms\n",
              overlap_t * 1e3, max_t * 1e3, sum_t * 1e3);
  std::printf("  overlap verified: frame/%s = %.2f (1.0 = perfect overlap; "
              "frame/sum = %.2f would be 1.0 with no overlap)\n\n",
              "max", overlap_t / max_t, overlap_t / sum_t);

  // --- eq. 3.2: predict the grid from the 1x1 calibration ------------------
  const auto model = core::PerfModel::calibrate(frame11, 1);
  std::printf("calibrated: genP %.1f us/spot, genT %.1f us/spot, gather %.2f "
              "ms/pipe, balance point %.1f procs/pipe (paper: ~4)\n\n",
              model.params().genP_per_spot * 1e6, model.params().genT_per_spot * 1e6,
              model.params().gather_per_pipe * 1e3,
              model.processors_per_pipe_balance());

  std::printf("%6s %6s %12s %12s %8s\n", "procs", "pipes", "predicted t/s",
              "measured t/s", "error");
  double worst_error = 0.0;
  for (const auto& [p, g] : std::vector<std::pair<int, int>>{
           {1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 4}, {8, 1}, {8, 2}, {8, 4}}) {
    core::DncConfig dnc = base;
    dnc.processors = p;
    dnc.pipes = g;
    const double measured = bench::measure_rate(workload, dnc, frames);
    const double predicted =
        model.predict_rate(workload.synthesis.spot_count, p, g);
    const double error = std::abs(predicted - measured) / measured;
    worst_error = std::max(worst_error, error);
    std::printf("%6d %6d %12.2f %12.2f %7.0f%%\n", p, g, predicted, measured,
                error * 100.0);
  }
  std::printf("\nworst model error: %.0f%% (the model ignores memory contention "
              "and scheduling, as the paper's eq. 3.2 does)\n",
              worst_error * 100.0);

  // --- balanced resource allocation (§3) -----------------------------------
  const auto choice =
      core::best_allocation(model, workload.synthesis.spot_count, 8, 4);
  std::printf("resource advisor: best config within 8 procs / 4 pipes -> %d "
              "procs, %d pipes (predicted %.2f t/s)\n",
              choice.processors, choice.pipes, 1.0 / choice.predicted_seconds);
  return 0;
}
