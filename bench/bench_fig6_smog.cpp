// Regenerates Figure 6: pollutant O3 superimposed on the wind-field spot
// noise texture, with a map overlay — one frame of the steering loop, with
// the full pipeline timing breakdown (read / advect / synthesize / filter).
//
// Output: fig6_smog.ppm
#include <cstdio>

#include "core/animator.hpp"
#include "core/dnc_synthesizer.hpp"
#include "core/serial_synthesizer.hpp"
#include "io/ppm.hpp"
#include "render/overlay.hpp"
#include "sim/smog_model.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);

  sim::SmogModel model(sim::SmogParams{});
  // Develop the episode so an ozone plume exists to display.
  for (int step = 0; step < 16; ++step) model.step(0.5);

  core::SynthesisConfig config;
  config.spot_count = 2500;
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 32;
  config.bent.mesh_rows = 17;
  config.bent.length_px = 40.0;
  config.spot_radius_px = 5.0;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  core::DncConfig dnc;
  dnc.processors = args.get_int("processors", 4);
  dnc.pipes = args.get_int("pipes", 2);
  core::DncSynthesizer synth(config, dnc);

  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  particles::ParticleSystem particles(pc, model.wind().domain(),
                                      util::Rng(config.seed));

  core::AnimatorConfig ac;
  ac.high_pass_radius = 6;
  core::Animator animator(ac, synth, particles,
                          [&](std::int64_t) -> const field::VectorField& {
                            model.step(0.5);
                            return model.wind();
                          });

  // A few frames so the particle population reaches its steady texture.
  core::AnimationFrame frame;
  for (int k = 0; k < args.get_int("frames", 6); ++k) frame = animator.step();

  render::Image img = render::texture_to_image(*frame.texture);
  const render::WorldToImage mapping(model.wind().domain(), img.width(),
                                     img.height());
  const auto& ozone = model.concentration(sim::Species::kOzone);
  const auto [lo, hi] = ozone.min_max();
  render::overlay_scalar(
      img, mapping, [&](field::Vec2 p) { return ozone.sample(p); }, lo, hi,
      render::ColormapKind::kRainbow, [](double t) { return 0.55 * t; });

  // Map overlay: procedural coastline (DESIGN.md substitution for Europe).
  std::vector<field::Vec2> coast;
  util::Rng rng(4242);
  const field::Rect d = model.wind().domain();
  double y = d.y0 + 0.25 * d.height();
  for (double x = d.x0; x <= d.x1; x += d.width() / 64.0) {
    y += rng.uniform(-1.0, 1.0) * 0.03 * d.height();
    y = std::clamp(y, d.y0 + 0.1 * d.height(), d.y0 + 0.45 * d.height());
    coast.push_back({x, y});
  }
  render::draw_polyline(img, mapping, coast, {30, 30, 30}, 0.8, 2);
  io::write_ppm("fig6_smog.ppm", img);

  std::printf("fig6 -> fig6_smog.ppm\n");
  std::printf("pipeline timing for the last frame (fig. 3 steps):\n");
  std::printf("  1 read data      %7.2f ms (model step: 53x55 ADR + weather)\n",
              frame.read_seconds * 1e3);
  std::printf("  2 advect         %7.2f ms (%lld particles)\n",
              frame.advect_seconds * 1e3,
              static_cast<long long>(config.spot_count));
  std::printf("  3 synthesize     %7.2f ms (%.2f textures/s at %d procs, %d pipes)\n",
              frame.synthesis.frame_seconds * 1e3,
              frame.synthesis.textures_per_second(), dnc.processors, dnc.pipes);
  std::printf("    spot filtering %7.2f ms (high-pass r=%d + normalize)\n",
              frame.filter_seconds * 1e3, ac.high_pass_radius);
  std::printf("  total            %7.2f ms -> %.1f frames/s animation\n",
              frame.total_seconds * 1e3, 1.0 / frame.total_seconds);
  return 0;
}
