// Micro benchmarks (google-benchmark) for the building blocks: RNG, field
// sampling, integrators, streamline tracing, spot geometry generation,
// rasterization, blending/compose, and texture filters. These are the genP
// and genT primitives whose ratio drives the divide-and-conquer balance.
#include <benchmark/benchmark.h>

#include "core/filters.hpp"
#include "core/spot_geometry.hpp"
#include "field/analytic.hpp"
#include "field/grid_field.hpp"
#include "particles/integrators.hpp"
#include "particles/particle_system.hpp"
#include "particles/tracer.hpp"
#include "render/compose.hpp"
#include "render/rasterizer.hpp"
#include "util/rng.hpp"
#include "util/simd_dispatch.hpp"

#include <cstdint>
#include <vector>

namespace {

using namespace dcsn;

// ---------------------------------------------------------------- util ---

void BM_RngU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngU64);

void BM_RngNormal(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

// --------------------------------------------------------------- field ---

field::GridVectorField make_grid_field(int n) {
  field::RegularGrid grid(n, n, {0.0, 0.0, 1.0, 1.0});
  field::GridVectorField f(grid);
  f.fill([](field::Vec2 p) { return field::Vec2{p.y, -p.x}; });
  return f;
}

void BM_GridFieldSample(benchmark::State& state) {
  const auto f = make_grid_field(static_cast<int>(state.range(0)));
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sample({rng.uniform(), rng.uniform()}));
  }
}
BENCHMARK(BM_GridFieldSample)->Arg(53)->Arg(278);

void BM_RectilinearSample(benchmark::State& state) {
  auto xs = field::RectilinearGrid::stretched_axis(278, 0.0, 1.0, 0.3, 2.5);
  auto ys = field::RectilinearGrid::stretched_axis(208, 0.0, 1.0, 0.5, 2.5);
  field::RectilinearVectorField f(
      field::RectilinearGrid(std::move(xs), std::move(ys)));
  f.fill([](field::Vec2 p) { return field::Vec2{p.y, -p.x}; });
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sample({rng.uniform(), rng.uniform()}));
  }
}
BENCHMARK(BM_RectilinearSample);

// ----------------------------------------------------------- particles ---

void BM_IntegratorStep(benchmark::State& state) {
  const auto f = make_grid_field(64);
  const auto method = static_cast<particles::Integrator>(state.range(0));
  field::Vec2 p{0.5, 0.5};
  for (auto _ : state) {
    p = particles::step(f, p, 1e-3, method);
    p = f.domain().clamp(p);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_IntegratorStep)
    ->Arg(static_cast<int>(particles::Integrator::kEuler))
    ->Arg(static_cast<int>(particles::Integrator::kRk2))
    ->Arg(static_cast<int>(particles::Integrator::kRk4));

void BM_StreamlineTrace(benchmark::State& state) {
  const auto f = make_grid_field(64);
  particles::TracerConfig config;
  config.step_length = 1e-3;
  const particles::StreamlineTracer tracer(config);
  const int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.trace(f, {0.5, 0.5}, steps / 2, steps / 2));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_StreamlineTrace)->Arg(15)->Arg(31)->Arg(124);

void BM_ParticleAdvance(benchmark::State& state) {
  const auto f = make_grid_field(64);
  particles::ParticleSystemConfig config;
  config.count = state.range(0);
  particles::ParticleSystem system(config, f.domain(), util::Rng(4));
  for (auto _ : state) system.advance(f, 1e-3);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParticleAdvance)->Arg(2500)->Arg(40000);

// -------------------------------------------------------- spot geometry ---

void BM_SpotGeometry(benchmark::State& state) {
  const auto f = make_grid_field(64);
  core::SynthesisConfig config;
  config.kind = static_cast<core::SpotKind>(state.range(0));
  config.bent.mesh_cols = 16;
  config.bent.mesh_rows = 3;
  config.bent.trace_substeps = static_cast<int>(state.range(1));
  const core::SpotGeometryGenerator generator(config, f);
  render::CommandBuffer buffer;
  util::Rng rng(5);
  for (auto _ : state) {
    buffer.clear();
    generator.generate({{rng.uniform(), rng.uniform()}, 1.0}, buffer);
    benchmark::DoNotOptimize(buffer.vertex_count());
  }
}
BENCHMARK(BM_SpotGeometry)
    ->Args({static_cast<int>(core::SpotKind::kPoint), 1})
    ->Args({static_cast<int>(core::SpotKind::kEllipse), 1})
    ->Args({static_cast<int>(core::SpotKind::kBent), 1})
    ->Args({static_cast<int>(core::SpotKind::kBent), 4})
    ->Args({static_cast<int>(core::SpotKind::kBent), 24});

// ------------------------------------------------------------ rasterizer ---

void BM_RasterizeQuad(benchmark::State& state) {
  render::Framebuffer fb(256, 256);
  const render::SpotProfile profile(render::SpotShape::kCosine, 64);
  const auto size = static_cast<float>(state.range(0));
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, 2, 2);
  v[0] = {100.0f, 100.0f, 0.0f, 0.0f};
  v[1] = {100.0f + size, 100.0f, 1.0f, 0.0f};
  v[2] = {100.0f, 100.0f + size, 0.0f, 1.0f};
  v[3] = {100.0f + size, 100.0f + size, 1.0f, 1.0f};
  render::RasterStats stats;
  for (auto _ : state) {
    render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                             render::BlendMode::kAdditive, stats);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RasterizeQuad)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_RasterizeBentMesh(benchmark::State& state) {
  // A full bent-spot mesh as the pipes see it: the paper's two shapes.
  render::Framebuffer fb(512, 512);
  const render::SpotProfile profile(render::SpotShape::kCosine, 64);
  const int cols = static_cast<int>(state.range(0));
  const int rows = static_cast<int>(state.range(1));
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, cols, rows);
  for (int j = 0; j < rows; ++j)
    for (int i = 0; i < cols; ++i)
      v[static_cast<std::size_t>(j * cols + i)] = {
          100.0f + 40.0f * i / (cols - 1), 200.0f + 10.0f * j / (rows - 1),
          static_cast<float>(i) / (cols - 1), static_cast<float>(j) / (rows - 1)};
  render::RasterStats stats;
  for (auto _ : state) {
    render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                             render::BlendMode::kAdditive, stats);
  }
  state.SetItemsProcessed(state.iterations() * (cols - 1) * (rows - 1));
}
BENCHMARK(BM_RasterizeBentMesh)->Args({32, 17})->Args({16, 3});

// --------------------------------------------------------------- compose ---

void BM_GatherBlend(benchmark::State& state) {
  const auto pipes = static_cast<std::size_t>(state.range(0));
  std::vector<render::Framebuffer> parts(pipes, render::Framebuffer(512, 512));
  render::Framebuffer final_texture(512, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::gather_blend(final_texture, parts));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(pipes) *
                          512 * 512 * 4);
}
BENCHMARK(BM_GatherBlend)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------- filters ---

void BM_BoxBlur(benchmark::State& state) {
  render::Framebuffer fb(512, 512);
  util::Rng rng(6);
  for (int y = 0; y < 512; ++y)
    for (int x = 0; x < 512; ++x) fb.at(x, y) = rng.uniform_f();
  for (auto _ : state) benchmark::DoNotOptimize(core::box_blur(fb, state.range(0)));
}
BENCHMARK(BM_BoxBlur)->Arg(2)->Arg(8);

void BM_HighPass(benchmark::State& state) {
  render::Framebuffer fb(512, 512);
  util::Rng rng(7);
  for (int y = 0; y < 512; ++y)
    for (int x = 0; x < 512; ++x) fb.at(x, y) = rng.uniform_f();
  for (auto _ : state) benchmark::DoNotOptimize(core::high_pass(fb, 6));
}
BENCHMARK(BM_HighPass);

// ------------------------------------------------------- simd kernels ---
// Every dispatched kernel at every tier the host can run (arg 0 = tier:
// 0 scalar, 1 sse2, 2 avx2, 3 neon; unavailable tiers skip). Items are
// lanes (fragments for the samplers), so rates compare across tiers.

constexpr std::size_t kSimdLanes = 4096;

std::vector<float> simd_bench_buffer(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out(n);
  for (float& f : out) f = rng.uniform_f() - 0.5f;
  return out;
}

bool simd_tier_or_skip(benchmark::State& state, util::simd::Tier& tier) {
  tier = static_cast<util::simd::Tier>(state.range(0));
  if (!util::simd::tier_available(tier)) {
    state.SkipWithError("tier unavailable on this host");
    return false;
  }
  return true;
}

void BM_SimdAdd(benchmark::State& state) {
  util::simd::Tier tier;
  if (!simd_tier_or_skip(state, tier)) return;
  const auto& k = util::simd::kernels_for(tier);
  auto dst = simd_bench_buffer(kSimdLanes, 21);
  const auto src = simd_bench_buffer(kSimdLanes, 22);
  for (auto _ : state) {
    k.add(dst.data(), src.data(), dst.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSimdLanes));
}
BENCHMARK(BM_SimdAdd)->ArgName("tier")->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SimdAddScaled(benchmark::State& state) {
  util::simd::Tier tier;
  if (!simd_tier_or_skip(state, tier)) return;
  const auto& k = util::simd::kernels_for(tier);
  auto dst = simd_bench_buffer(kSimdLanes, 23);
  const auto src = simd_bench_buffer(kSimdLanes, 24);
  for (auto _ : state) {
    k.add_scaled(dst.data(), src.data(), 0.37f, dst.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSimdLanes));
}
BENCHMARK(BM_SimdAddScaled)->ArgName("tier")->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SimdMaxScaled(benchmark::State& state) {
  util::simd::Tier tier;
  if (!simd_tier_or_skip(state, tier)) return;
  const auto& k = util::simd::kernels_for(tier);
  auto dst = simd_bench_buffer(kSimdLanes, 25);
  const auto src = simd_bench_buffer(kSimdLanes, 26);
  for (auto _ : state) {
    k.max_scaled(dst.data(), src.data(), 0.61f, dst.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSimdLanes));
}
BENCHMARK(BM_SimdMaxScaled)->ArgName("tier")->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SimdMaxWith(benchmark::State& state) {
  util::simd::Tier tier;
  if (!simd_tier_or_skip(state, tier)) return;
  const auto& k = util::simd::kernels_for(tier);
  auto dst = simd_bench_buffer(kSimdLanes, 27);
  for (auto _ : state) {
    k.max_with(dst.data(), 0.1f, dst.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSimdLanes));
}
BENCHMARK(BM_SimdMaxWith)->ArgName("tier")->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SimdQuantizeSpan(benchmark::State& state) {
  util::simd::Tier tier;
  if (!simd_tier_or_skip(state, tier)) return;
  const auto& k = util::simd::kernels_for(tier);
  auto dst = simd_bench_buffer(kSimdLanes, 28);
  const auto src = simd_bench_buffer(kSimdLanes, 29);
  for (auto _ : state) {
    k.quantize_span(dst.data(), src.data(), dst.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSimdLanes));
}
BENCHMARK(BM_SimdQuantizeSpan)->ArgName("tier")->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// The fused span sampler over a synthetic profile table: a diagonal 32.32
// walk, single spans of 24 fragments, and the batched form over 64 spans of
// 6 fragments (the short-span regime the batch packing targets).
constexpr std::size_t kSimdTableStride = 80;
constexpr std::size_t kSimdTableRows = 66;

util::simd::SampleSpan simd_bench_span(const std::vector<float>& table,
                                       std::uint64_t row) {
  util::simd::SampleSpan s{};
  s.table = table.data();
  s.stride = kSimdTableStride;
  s.fx0 = static_cast<std::int64_t>(2 + (row % 8)) << 32;
  s.fy0 = static_cast<std::int64_t>(3 + (row % 5)) << 32;
  s.dfx = (1ll << 31);  // half a texel per fragment
  s.dfy = (1ll << 30);
  s.weight = 0.43f;
  return s;
}

void BM_SimdSampleRow(benchmark::State& state) {
  util::simd::Tier tier;
  if (!simd_tier_or_skip(state, tier)) return;
  const auto& k = util::simd::kernels_for(tier);
  const auto table =
      simd_bench_buffer(kSimdTableStride * kSimdTableRows, 30);
  const auto span = simd_bench_span(table, 1);
  constexpr std::size_t kLen = 24;
  std::vector<float> dst(kLen);
  for (auto _ : state) {
    k.sample_row_add(dst.data(), span, kLen);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kLen));
}
BENCHMARK(BM_SimdSampleRow)->ArgName("tier")->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SimdSampleRowsBatch(benchmark::State& state) {
  util::simd::Tier tier;
  if (!simd_tier_or_skip(state, tier)) return;
  const auto& k = util::simd::kernels_for(tier);
  const auto table =
      simd_bench_buffer(kSimdTableStride * kSimdTableRows, 31);
  constexpr std::size_t kCount = 64;
  constexpr std::uint32_t kLen = 6;
  std::vector<util::simd::SampleSpan> spans;
  std::vector<std::uint32_t> lens(kCount, kLen);
  std::vector<float> dst(kCount * kLen);
  std::vector<float*> ptrs(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    spans.push_back(simd_bench_span(table, i));
    ptrs[i] = dst.data() + i * kLen;
  }
  for (auto _ : state) {
    k.sample_rows_add(ptrs.data(), spans.data(), lens.data(), kCount);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kCount * kLen));
}
BENCHMARK(BM_SimdSampleRowsBatch)
    ->ArgName("tier")->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_NormalizeContrast(benchmark::State& state) {
  render::Framebuffer fb(512, 512);
  util::Rng rng(8);
  for (int y = 0; y < 512; ++y)
    for (int x = 0; x < 512; ++x) fb.at(x, y) = rng.uniform_f();
  for (auto _ : state) {
    core::normalize_contrast(fb);
    benchmark::DoNotOptimize(fb.at(0, 0));
  }
}
BENCHMARK(BM_NormalizeContrast);

}  // namespace

BENCHMARK_MAIN();
