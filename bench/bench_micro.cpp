// Micro benchmarks (google-benchmark) for the building blocks: RNG, field
// sampling, integrators, streamline tracing, spot geometry generation,
// rasterization, blending/compose, and texture filters. These are the genP
// and genT primitives whose ratio drives the divide-and-conquer balance.
#include <benchmark/benchmark.h>

#include "core/filters.hpp"
#include "core/spot_geometry.hpp"
#include "field/analytic.hpp"
#include "field/grid_field.hpp"
#include "particles/integrators.hpp"
#include "particles/particle_system.hpp"
#include "particles/tracer.hpp"
#include "render/compose.hpp"
#include "render/rasterizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace dcsn;

// ---------------------------------------------------------------- util ---

void BM_RngU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngU64);

void BM_RngNormal(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

// --------------------------------------------------------------- field ---

field::GridVectorField make_grid_field(int n) {
  field::RegularGrid grid(n, n, {0.0, 0.0, 1.0, 1.0});
  field::GridVectorField f(grid);
  f.fill([](field::Vec2 p) { return field::Vec2{p.y, -p.x}; });
  return f;
}

void BM_GridFieldSample(benchmark::State& state) {
  const auto f = make_grid_field(static_cast<int>(state.range(0)));
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sample({rng.uniform(), rng.uniform()}));
  }
}
BENCHMARK(BM_GridFieldSample)->Arg(53)->Arg(278);

void BM_RectilinearSample(benchmark::State& state) {
  auto xs = field::RectilinearGrid::stretched_axis(278, 0.0, 1.0, 0.3, 2.5);
  auto ys = field::RectilinearGrid::stretched_axis(208, 0.0, 1.0, 0.5, 2.5);
  field::RectilinearVectorField f(
      field::RectilinearGrid(std::move(xs), std::move(ys)));
  f.fill([](field::Vec2 p) { return field::Vec2{p.y, -p.x}; });
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sample({rng.uniform(), rng.uniform()}));
  }
}
BENCHMARK(BM_RectilinearSample);

// ----------------------------------------------------------- particles ---

void BM_IntegratorStep(benchmark::State& state) {
  const auto f = make_grid_field(64);
  const auto method = static_cast<particles::Integrator>(state.range(0));
  field::Vec2 p{0.5, 0.5};
  for (auto _ : state) {
    p = particles::step(f, p, 1e-3, method);
    p = f.domain().clamp(p);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_IntegratorStep)
    ->Arg(static_cast<int>(particles::Integrator::kEuler))
    ->Arg(static_cast<int>(particles::Integrator::kRk2))
    ->Arg(static_cast<int>(particles::Integrator::kRk4));

void BM_StreamlineTrace(benchmark::State& state) {
  const auto f = make_grid_field(64);
  particles::TracerConfig config;
  config.step_length = 1e-3;
  const particles::StreamlineTracer tracer(config);
  const int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.trace(f, {0.5, 0.5}, steps / 2, steps / 2));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_StreamlineTrace)->Arg(15)->Arg(31)->Arg(124);

void BM_ParticleAdvance(benchmark::State& state) {
  const auto f = make_grid_field(64);
  particles::ParticleSystemConfig config;
  config.count = state.range(0);
  particles::ParticleSystem system(config, f.domain(), util::Rng(4));
  for (auto _ : state) system.advance(f, 1e-3);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParticleAdvance)->Arg(2500)->Arg(40000);

// -------------------------------------------------------- spot geometry ---

void BM_SpotGeometry(benchmark::State& state) {
  const auto f = make_grid_field(64);
  core::SynthesisConfig config;
  config.kind = static_cast<core::SpotKind>(state.range(0));
  config.bent.mesh_cols = 16;
  config.bent.mesh_rows = 3;
  config.bent.trace_substeps = static_cast<int>(state.range(1));
  const core::SpotGeometryGenerator generator(config, f);
  render::CommandBuffer buffer;
  util::Rng rng(5);
  for (auto _ : state) {
    buffer.clear();
    generator.generate({{rng.uniform(), rng.uniform()}, 1.0}, buffer);
    benchmark::DoNotOptimize(buffer.vertex_count());
  }
}
BENCHMARK(BM_SpotGeometry)
    ->Args({static_cast<int>(core::SpotKind::kPoint), 1})
    ->Args({static_cast<int>(core::SpotKind::kEllipse), 1})
    ->Args({static_cast<int>(core::SpotKind::kBent), 1})
    ->Args({static_cast<int>(core::SpotKind::kBent), 4})
    ->Args({static_cast<int>(core::SpotKind::kBent), 24});

// ------------------------------------------------------------ rasterizer ---

void BM_RasterizeQuad(benchmark::State& state) {
  render::Framebuffer fb(256, 256);
  const render::SpotProfile profile(render::SpotShape::kCosine, 64);
  const auto size = static_cast<float>(state.range(0));
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, 2, 2);
  v[0] = {100.0f, 100.0f, 0.0f, 0.0f};
  v[1] = {100.0f + size, 100.0f, 1.0f, 0.0f};
  v[2] = {100.0f, 100.0f + size, 0.0f, 1.0f};
  v[3] = {100.0f + size, 100.0f + size, 1.0f, 1.0f};
  render::RasterStats stats;
  for (auto _ : state) {
    render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                             render::BlendMode::kAdditive, stats);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RasterizeQuad)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_RasterizeBentMesh(benchmark::State& state) {
  // A full bent-spot mesh as the pipes see it: the paper's two shapes.
  render::Framebuffer fb(512, 512);
  const render::SpotProfile profile(render::SpotShape::kCosine, 64);
  const int cols = static_cast<int>(state.range(0));
  const int rows = static_cast<int>(state.range(1));
  render::CommandBuffer buf;
  auto v = buf.add_mesh(1.0f, cols, rows);
  for (int j = 0; j < rows; ++j)
    for (int i = 0; i < cols; ++i)
      v[static_cast<std::size_t>(j * cols + i)] = {
          100.0f + 40.0f * i / (cols - 1), 200.0f + 10.0f * j / (rows - 1),
          static_cast<float>(i) / (cols - 1), static_cast<float>(j) / (rows - 1)};
  render::RasterStats stats;
  for (auto _ : state) {
    render::rasterize_buffer({fb.pixels(), 0, 0}, buf, profile,
                             render::BlendMode::kAdditive, stats);
  }
  state.SetItemsProcessed(state.iterations() * (cols - 1) * (rows - 1));
}
BENCHMARK(BM_RasterizeBentMesh)->Args({32, 17})->Args({16, 3});

// --------------------------------------------------------------- compose ---

void BM_GatherBlend(benchmark::State& state) {
  const auto pipes = static_cast<std::size_t>(state.range(0));
  std::vector<render::Framebuffer> parts(pipes, render::Framebuffer(512, 512));
  render::Framebuffer final_texture(512, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::gather_blend(final_texture, parts));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(pipes) *
                          512 * 512 * 4);
}
BENCHMARK(BM_GatherBlend)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------- filters ---

void BM_BoxBlur(benchmark::State& state) {
  render::Framebuffer fb(512, 512);
  util::Rng rng(6);
  for (int y = 0; y < 512; ++y)
    for (int x = 0; x < 512; ++x) fb.at(x, y) = rng.uniform_f();
  for (auto _ : state) benchmark::DoNotOptimize(core::box_blur(fb, state.range(0)));
}
BENCHMARK(BM_BoxBlur)->Arg(2)->Arg(8);

void BM_HighPass(benchmark::State& state) {
  render::Framebuffer fb(512, 512);
  util::Rng rng(7);
  for (int y = 0; y < 512; ++y)
    for (int x = 0; x < 512; ++x) fb.at(x, y) = rng.uniform_f();
  for (auto _ : state) benchmark::DoNotOptimize(core::high_pass(fb, 6));
}
BENCHMARK(BM_HighPass);

void BM_NormalizeContrast(benchmark::State& state) {
  render::Framebuffer fb(512, 512);
  util::Rng rng(8);
  for (int y = 0; y < 512; ++y)
    for (int x = 0; x < 512; ++x) fb.at(x, y) = rng.uniform_f();
  for (auto _ : state) {
    core::normalize_contrast(fb);
    benchmark::DoNotOptimize(fb.at(0, 0));
  }
}
BENCHMARK(BM_NormalizeContrast);

}  // namespace

BENCHMARK_MAIN();
