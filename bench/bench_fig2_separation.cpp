// Regenerates Figure 2: the separation-line study. Top image: default spot
// noise on the (substituted, see DESIGN.md) separation-topology field.
// Bottom image: spot positions advected through the field before synthesis,
// concentrating texture energy along the separation line.
//
// Outputs: fig2_default.ppm, fig2_advected.ppm, plus a quantitative
// line-highlight factor (band/background energy ratio).
#include <cstdio>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/serial_synthesizer.hpp"
#include "field/analytic.hpp"
#include "io/ppm.hpp"
#include "particles/particle_system.hpp"
#include "util/cli.hpp"

namespace {

using namespace dcsn;

double band_energy_ratio(const render::Framebuffer& tex, double sep_frac,
                         double band_frac) {
  const int lo = static_cast<int>((sep_frac - band_frac) * tex.width());
  const int hi = static_cast<int>((sep_frac + band_frac) * tex.width());
  double in_band = 0.0, outside = 0.0;
  std::int64_t n_in = 0, n_out = 0;
  for (int y = 0; y < tex.height(); ++y)
    for (int x = 0; x < tex.width(); ++x) {
      const double e = double(tex.at(x, y)) * tex.at(x, y);
      if (x >= lo && x <= hi) {
        in_band += e;
        ++n_in;
      } else {
        outside += e;
        ++n_out;
      }
    }
  return (in_band / n_in) / (outside / n_out);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const field::Rect domain{0.0, 0.0, 2.0, 1.0};
  const double sep_x = 1.2;
  const auto f = field::analytic::separation(sep_x, 1.0, domain);

  core::SynthesisConfig config;
  config.texture_width = 512;
  config.texture_height = 256;
  config.spot_count = args.get_int("spots", 6000);
  config.spot_radius_px = 5.0;
  config.kind = core::SpotKind::kEllipse;
  config.ellipse.max_stretch = 4.0;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  core::DncSynthesizer synth(config, dnc);

  // Top: default parameters.
  util::Rng rng(config.seed);
  const auto uniform_spots = core::make_random_spots(domain, config.spot_count, rng);
  const auto stats_top = synth.synthesize(*f, uniform_spots);
  render::Framebuffer top = synth.texture();
  core::normalize_contrast(top);
  io::write_ppm("fig2_default.ppm", render::texture_to_image(top));

  // Bottom: spot positions advected through the field (the adjusted
  // spot-position / life-cycle parameters of the paper).
  particles::ParticleSystemConfig pc;
  pc.count = config.spot_count;
  pc.mean_lifetime = 1e9;
  pc.respawn_out_of_domain = false;
  particles::ParticleSystem particles(pc, domain, util::Rng(config.seed));
  for (int step = 0; step < args.get_int("advect-steps", 100); ++step)
    particles.advance(*f, 0.02);
  const auto advected = core::spots_from_particles(particles);
  const auto stats_bottom = synth.synthesize(*f, advected);
  render::Framebuffer bottom = synth.texture();
  core::normalize_contrast(bottom);
  io::write_ppm("fig2_advected.ppm", render::texture_to_image(bottom));

  const double r_top = band_energy_ratio(top, sep_x / 2.0, 0.04);
  const double r_bottom = band_energy_ratio(bottom, sep_x / 2.0, 0.04);
  std::printf("fig2: default  -> fig2_default.ppm  (%.1f ms, band ratio %.2f)\n",
              stats_top.frame_seconds * 1e3, r_top);
  std::printf("fig2: advected -> fig2_advected.ppm (%.1f ms, band ratio %.2f)\n",
              stats_bottom.frame_seconds * 1e3, r_bottom);
  std::printf("fig2: separation line highlighted %.1fx more strongly (paper: "
              "line visible only in the adjusted rendering)\n",
              r_bottom / r_top);
  return 0;
}
