// Regenerates Figure 7: the DNS wake behind a block — vortex shedding and
// the transition from laminar (left of the block) to unsteady flow behind
// it — rendered with the paper's 40000-spot / 16x3-mesh configuration.
//
// Output: fig7_dns_wake.ppm, plus a shedding diagnostic.
#include <cmath>
#include <cstdio>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/serial_synthesizer.hpp"
#include "io/ppm.hpp"
#include "render/overlay.hpp"
#include "sim/dns_solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);

  sim::DnsParams params;
  sim::DnsSolver solver(params);
  const int spinup = args.get_int("spinup", args.has("quick") ? 150 : 500);
  std::printf("fig7: DNS spin-up (%d steps on %dx%d, Re ~ %.0f)...\n", spinup,
              params.nx, params.ny, params.inflow_speed * 2.0 / params.viscosity);
  int shedding_sign_changes = 0;
  double last_vy = 0.0;
  for (int step = 0; step < spinup; ++step) {
    solver.step();
    const double vy = solver.velocity().sample({9.5, 10.4}).y;  // wake probe
    if (vy * last_vy < 0.0) ++shedding_sign_changes;
    if (vy != 0.0) last_vy = vy;
  }

  const auto snapshot = solver.snapshot();
  core::SynthesisConfig config;
  config.spot_count = args.get_int("spots", 40000);
  config.kind = core::SpotKind::kBent;
  config.bent.mesh_cols = 16;
  config.bent.mesh_rows = 3;
  config.bent.length_px = 24.0;
  config.bent.trace_substeps = 4;
  config.spot_radius_px = 2.5;
  config.intensity_scale = core::SerialSynthesizer::natural_intensity(config);
  core::DncConfig dnc;
  dnc.processors = args.get_int("processors", 4);
  dnc.pipes = args.get_int("pipes", 2);
  core::DncSynthesizer synth(config, dnc);
  util::Rng rng(config.seed);
  const auto spots =
      core::make_random_spots(snapshot.domain(), config.spot_count, rng);
  const auto stats = synth.synthesize(snapshot, spots);

  render::Framebuffer texture = synth.texture();
  core::normalize_contrast(texture);
  render::Image img = render::texture_to_image(texture);
  const render::WorldToImage mapping(snapshot.domain(), img.width(), img.height());
  render::fill_rect(img, mapping, params.block, {40, 40, 40});
  io::write_ppm("fig7_dns_wake.ppm", img);

  std::printf("fig7 -> fig7_dns_wake.ppm (%.1f ms synthesis, %.2f textures/s)\n",
              stats.frame_seconds * 1e3, stats.textures_per_second());
  std::printf("  wake probe saw %d cross-stream sign changes during spin-up "
              "(>0 means vortex shedding is active)\n",
              shedding_sign_changes);
  std::printf("  geometry: %.1f MB/texture across %lld vertices\n",
              static_cast<double>(stats.geometry_bytes) / 1e6,
              static_cast<long long>(stats.vertices));
  return 0;
}
