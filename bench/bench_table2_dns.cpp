// Reproduces Table 2: textures per second for the DNS turbulence browser.
//
// Paper:
//             1 pipe  2 pipes  4 pipes
//   1 proc      0.7      -        -
//   2 procs     1.3     1.3       -
//   4 procs     2.1     2.1      2.4
//   8 procs     2.5     3.2      3.5
//
// Same shape claims as Table 1, plus: Table 2 rates sit below Table 1's
// (40000 light spots cost more in total than 2500 heavy ones) and geometry
// traffic is ~31 MB per texture.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", args.has("quick") ? 2 : 3);
  const int spinup = args.get_int("spinup", 120);

  std::printf("Table 2 — DNS of a turbulent flow\n");
  bench::Workload workload = bench::make_dns_workload(spinup);
  std::printf("workload: %s\n", workload.name.c_str());

  const std::vector<std::vector<double>> paper = {
      {0.7, 0.0, 0.0},
      {1.3, 1.3, 0.0},
      {2.1, 2.1, 2.4},
      {2.5, 3.2, 3.5},
  };
  const auto cells = bench::run_table(workload, paper,
                                      bench::kPaperBusBytesPerSecond, frames);
  bench::print_table("Table 2: turbulent flow", cells);
  bench::check_footnote3(workload, bench::kPaperBusBytesPerSecond, frames);

  // §5.2: "approximately 31.0 megabyte per texture" of geometry.
  if (!cells.empty()) {
    const auto& last = cells.back();
    std::printf("  geometry per texture: %.1f MB (paper: ~31 MB)\n",
                static_cast<double>(last.stats.geometry_bytes) / 1.0e6);
  }
  bench::write_csv(bench::csv_path(argc, argv, "table2_dns.csv"), cells);
  return 0;
}
