// Ablation for the paper's §5.1 note: "Using a 32x17 mesh to represent each
// spot will result in very accurate renderings. Lower resolution meshes
// will result in less accurate renderings, but can increase performance
// substantially."
//
// Sweeps bent-spot mesh resolution on the atmospheric workload and reports
// textures/s plus an accuracy proxy (RMS pixel difference against the
// highest-resolution rendering).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/serial_synthesizer.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 2);

  bench::Workload workload = bench::make_atmospheric_workload();
  std::printf("mesh-resolution ablation on: %s\n\n", workload.name.c_str());

  struct MeshChoice {
    int cols, rows;
  };
  const std::vector<MeshChoice> choices = {{32, 17}, {32, 9}, {16, 9},
                                           {16, 3},  {8, 3},  {4, 2}};

  // Reference texture at the paper's resolution.
  core::DncConfig dnc;
  dnc.processors = 4;
  dnc.pipes = 2;
  dnc.bus_bytes_per_second = bench::kPaperBusBytesPerSecond;
  render::Framebuffer reference;
  {
    core::DncSynthesizer engine(workload.synthesis, dnc);
    engine.synthesize(*workload.field, workload.spots);
    reference = engine.texture();
  }
  const double ref_sigma = render::texture_stddev(reference);

  util::CsvWriter csv(bench::csv_path(argc, argv, "ablation_mesh.csv"),
                      {"cols", "rows", "vertices_per_spot", "rate", "rms_error"});
  std::printf("%8s %12s %12s %16s\n", "mesh", "verts/spot", "textures/s",
              "RMS err vs 32x17");
  for (const MeshChoice& m : choices) {
    bench::Workload variant = bench::make_atmospheric_workload();
    variant.synthesis.bent.mesh_cols = m.cols;
    variant.synthesis.bent.mesh_rows = m.rows;
    const double rate = bench::measure_rate(variant, dnc, frames);

    core::DncSynthesizer engine(variant.synthesis, dnc);
    engine.synthesize(*variant.field, variant.spots);
    double sum_sq = 0.0;
    for (int y = 0; y < reference.height(); ++y)
      for (int x = 0; x < reference.width(); ++x) {
        const double d = double(engine.texture().at(x, y)) - reference.at(x, y);
        sum_sq += d * d;
      }
    const double rms =
        std::sqrt(sum_sq / static_cast<double>(reference.pixel_count())) / ref_sigma;
    std::printf("%4dx%-3d %12d %12.2f %15.1f%%\n", m.cols, m.rows, m.cols * m.rows,
                rate, rms * 100.0);
    csv.row({std::to_string(m.cols), std::to_string(m.rows),
             std::to_string(m.cols * m.rows), util::CsvWriter::num(rate),
             util::CsvWriter::num(rms)});
  }
  std::printf("\npaper's claim: lower mesh resolution trades accuracy for "
              "substantial speed — the rate column should rise as verts/spot "
              "falls while RMS error grows.\n");
  return 0;
}
