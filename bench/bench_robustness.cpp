// Availability gate for the fault-tolerant synthesis service — the
// deadline-aware robustness layer measured.
//
// One seeded fault schedule drives a full service torture: two sessions,
// dozens of frames queued up front, per-spot throw faults (poisoned field
// samples, failed pipe submits), contained tile-store faults, a failing
// framebuffer checkout per so many tiles, and scheduling-noise drops at
// worker pickup and master queue pop. Retries with exponential backoff run
// on the virtual service clock; every frame after a session's first carries
// a finite virtual deadline with policy kDegrade, so a job whose retries
// push it past its deadline is served the session's stale frame, flagged —
// availability through degradation, the paper's interactive-steering
// contract under faults.
//
// Four gates, all hard failures:
//
//   availability  >= 99% of frames resolve completed-or-degraded (no
//                 exhausted retries, no cancellations — and the process
//                 finishing at all is the zero-hangs/zero-crashes gate);
//   bit-exact     every *completed* frame's content hash equals the
//                 fault-free baseline for that (session, frame) — recovery
//                 is invisible in the pixels;
//   replay        the same fault seed, run twice, produces identical
//                 service health totals counter for counter;
//   latency SLO   p95 wall latency from submit to resolution stays under a
//                 generous wall budget (queue depth included) — the
//                 practical "no wedged driver" bound.
//
// Determinism notes, load-bearing for the replay gate:
//
//   * The plan mixes throw faults with finite deadlines but injects NO
//     virtual-delay faults. A delay-hit and a throw-hit landing in the same
//     attempt race for the abort classification (JobTimedOut vs retryable
//     FaultInjected) because spots are evaluated in parallel — the verdict
//     set is replay-stable, the *first* verdict reached is not. Keeping
//     delays out of deadline-carrying plans removes the ambiguity; the
//     single-site delay matrices in tests/test_faults.cpp cover virtual
//     delay timeouts. (See "Fault tolerance & SLOs" in ARCHITECTURE.md.)
//   * One driver thread: with the virtual clock, a single driver's dispatch
//     order is a pure function of the queues and the (deterministic)
//     attempt verdicts, so deadline triage at dispatch replays exactly.
//
// Exits nonzero when any gate fails; scripts/bench.sh checks the JSON
// report in as BENCH_robustness.json.
#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/fault_injector.hpp"
#include "core/runtime.hpp"
#include "core/service_clock.hpp"
#include "core/spot_source.hpp"
#include "core/synthesis_service.hpp"
#include "field/analytic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dcsn;

constexpr int kSessions = 2;
constexpr field::Rect kDomain{0.0, 0.0, 2.0, 2.0};
constexpr double kAvailabilityTarget = 0.99;
constexpr double kP95SloSeconds = 5.0;  // wall, queue depth included

core::SynthesisConfig session_config(int session) {
  core::SynthesisConfig config;
  config.texture_width = 64;
  config.texture_height = 64;
  config.spot_count = 160;
  config.spot_radius_px = 5.0;
  config.kind = core::SpotKind::kEllipse;
  config.seed = 42 + static_cast<std::uint64_t>(session);
  return config;
}

core::DncConfig torture_dnc() {
  core::DncConfig dnc;
  dnc.processors = 2;
  dnc.pipes = 2;
  dnc.chunk_spots = 16;
  dnc.tiled = true;
  dnc.tile_cache = true;
  return dnc;
}

std::vector<core::SpotInstance> frame_spots(const core::SynthesisConfig& config,
                                            int frame) {
  util::Rng rng(config.seed + static_cast<std::uint64_t>(frame) * 1000003ULL);
  auto spots = core::make_random_spots(kDomain, config.spot_count, rng);
  for (auto& spot : spots) spot.intensity *= 0.2;
  return spots;
}

core::FaultPlan torture_plan() {
  core::FaultPlan plan;
  plan.seed = 0x0b0b5ca1eULL;
  // Per-spot outcome sites (160 draws per frame attempt): rates sized so an
  // attempt survives ~70% of the time — enough failures to exercise every
  // retry path, few enough that six retries converge.
  plan.rule(core::FaultSite::kFieldSample).throw_rate = 0.0015;
  plan.rule(core::FaultSite::kPipeSubmit).throw_rate = 0.0008;
  // Per-tile mandatory path: a failed checkout fails the attempt.
  plan.rule(core::FaultSite::kFramebufferCheckout).throw_rate = 0.03;
  // Contained sites: a faulted probe is a miss, a faulted publish is
  // skipped — never a frame failure, but the recovery paths run hot.
  plan.rule(core::FaultSite::kStoreProbe).throw_rate = 0.2;
  plan.rule(core::FaultSite::kStorePublish).throw_rate = 0.2;
  // Scheduling noise, demoted to drops by construction.
  plan.rule(core::FaultSite::kWorkerPickup).drop_rate = 0.2;
  plan.rule(core::FaultSite::kQueuePop).drop_rate = 0.1;
  return plan;
}

struct TortureOutcome {
  core::ServiceHealth health;
  /// Resolved outcome per submitted job, in submission order: 'c'ompleted,
  /// 'd'egraded, 'f'ailed, 't'imed out, 'x' canceled.
  std::vector<char> outcomes;
  std::vector<double> latencies_seconds;  ///< wall, submit -> resolved
  bool bit_exact = true;
  std::int64_t census = 0;  ///< leaked framebuffers after teardown
};

/// Health totals that must replay exactly (clock_now excluded on purpose:
/// it is replay-stable too, but comparing doubles for exact equality in a
/// gate invites grief if the advance arithmetic ever changes).
std::array<std::int64_t, 7> replay_totals(const core::ServiceHealth& h) {
  return {h.completed, h.degraded, h.failed,    h.retries,
          h.timeouts,  h.canceled, h.breaker_trips};
}

TortureOutcome run_torture(int frames_per_session,
                           const std::vector<std::vector<std::uint64_t>>&
                               baseline_hash) {
  auto injector = std::make_shared<core::FaultInjector>(torture_plan());
  core::Runtime runtime({.workers = 3, .fault_injector = injector});
  core::VirtualServiceClock clock;
  core::ServiceConfig service_config;
  service_config.drivers = 1;  // deterministic dispatch order (see header)
  service_config.virtual_clock = &clock;
  service_config.admission_control = false;
  service_config.watchdog_interval_seconds = 0.0;
  const auto field = field::analytic::taylor_green(1.0, kDomain);

  TortureOutcome out;
  {
    core::SynthesisService service(service_config, runtime);
    std::array<core::SynthesisService::SessionId, kSessions> ids{};
    for (int s = 0; s < kSessions; ++s) {
      ids[static_cast<std::size_t>(s)] =
          service.open_session(session_config(s), torture_dnc());
    }
    struct Pending {
      core::SynthesisService::JobTicket ticket;
      util::Stopwatch watch;
      int session = 0;
      int frame = 0;
    };
    std::vector<Pending> pending;
    for (int f = 0; f < frames_per_session; ++f) {
      for (int s = 0; s < kSessions; ++s) {
        core::SynthesisRequest req;
        req.field = field.get();
        req.spots = frame_spots(session_config(s), f);
        core::SubmitOptions opt;
        opt.max_retries = 6;
        opt.backoff_seconds = 0.01;
        if (f > 0) {
          // Frame 0 runs unbounded to warm the session's stale frame; every
          // later frame carries a virtual deadline and degrades past it.
          // The budget is sized against backoff drift: jobs queued behind a
          // storm of other sessions' retries run out of deadline at
          // dispatch and resolve degraded — availability, not failure.
          opt.deadline_seconds = 0.2;
          opt.policy = core::SubmitOptions::DeadlinePolicy::kDegrade;
        }
        Pending p;
        p.session = s;
        p.frame = f;
        p.ticket = service.submit(ids[static_cast<std::size_t>(s)],
                                  std::move(req), opt);
        pending.push_back(std::move(p));
      }
    }
    for (Pending& p : pending) {
      char outcome = 'f';
      try {
        const core::SynthesisResult result = p.ticket.result.get();
        if (result.stats.degraded) {
          outcome = 'd';
        } else {
          outcome = 'c';
          const std::uint64_t expected =
              baseline_hash[static_cast<std::size_t>(p.session)]
                           [static_cast<std::size_t>(p.frame)];
          if (result.content_hash != expected) {
            out.bit_exact = false;
            std::printf("BIT-EXACT MISS session %d frame %d\n", p.session,
                        p.frame);
          }
        }
      } catch (const core::JobCanceled&) {
        outcome = 'x';
      } catch (const core::JobTimedOut&) {
        outcome = 't';
      } catch (const util::Error&) {
        outcome = 'f';
      }
      out.outcomes.push_back(outcome);
      out.latencies_seconds.push_back(p.watch.seconds());
    }
    out.health = service.health();
  }
  out.census = runtime.framebuffers().outstanding_count() -
               runtime.tile_store().stats().entries;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::string json_path = bench::parse_json_path(argc, argv);
  const int frames_per_session = smoke ? 8 : 30;

  // Fault-free baseline hashes, fresh runtime: what every completed frame
  // must reproduce bit for bit.
  std::vector<std::vector<std::uint64_t>> baseline_hash(kSessions);
  {
    core::Runtime clean_runtime({.workers = 3});
    const auto field = field::analytic::taylor_green(1.0, kDomain);
    for (int s = 0; s < kSessions; ++s) {
      const auto config = session_config(s);
      core::DncSynthesizer engine(config, torture_dnc(), clean_runtime);
      for (int f = 0; f < frames_per_session; ++f) {
        (void)engine.synthesize(*field, frame_spots(config, f));
        baseline_hash[static_cast<std::size_t>(s)].push_back(
            engine.texture().content_hash());
      }
    }
  }

  std::printf(
      "robustness torture: %d sessions x %d frames, 160 ellipse spots, 64x64 "
      "tiled, per-spot throw faults + contained store faults + scheduling "
      "drops, retries<=6 with virtual backoff, deadline 0.2 virtual s "
      "(kDegrade) after frame 0\n",
      kSessions, frames_per_session);

  const TortureOutcome first = run_torture(frames_per_session, baseline_hash);
  const TortureOutcome second = run_torture(frames_per_session, baseline_hash);

  const int total = static_cast<int>(first.outcomes.size());
  int completed = 0, degraded = 0;
  for (const char o : first.outcomes) {
    completed += o == 'c' ? 1 : 0;
    degraded += o == 'd' ? 1 : 0;
  }
  const double availability =
      total > 0 ? static_cast<double>(completed + degraded) /
                      static_cast<double>(total)
                : 0.0;
  std::vector<double> latency_ms;
  for (const double s : first.latencies_seconds) latency_ms.push_back(s * 1e3);
  const double p50_ms = util::percentile(latency_ms, 0.50);
  const double p95_ms = util::percentile(latency_ms, 0.95);

  const bool replay_ok =
      replay_totals(first.health) == replay_totals(second.health) &&
      first.outcomes == second.outcomes;
  const bool availability_ok = availability >= kAvailabilityTarget;
  const bool latency_ok = p95_ms <= kP95SloSeconds * 1e3;
  const bool census_ok = first.census == 0 && second.census == 0;
  const bool ok = availability_ok && first.bit_exact && replay_ok &&
                  latency_ok && census_ok;

  std::printf(
      "outcomes: %d completed, %d degraded, %lld failed, %lld timed out, "
      "%lld canceled; %lld retries, %lld breaker trips\n",
      completed, degraded, static_cast<long long>(first.health.failed),
      static_cast<long long>(first.health.timeouts),
      static_cast<long long>(first.health.canceled),
      static_cast<long long>(first.health.retries),
      static_cast<long long>(first.health.breaker_trips));
  std::printf(
      "availability %.4f (target >= %.2f)  latency p50 %.2f ms  p95 %.2f ms "
      "(SLO %.0f ms)  bit-exact %s  replay %s  census %s\n",
      availability, kAvailabilityTarget, p50_ms, p95_ms, kP95SloSeconds * 1e3,
      first.bit_exact ? "yes" : "NO", replay_ok ? "yes" : "NO",
      census_ok ? "clean" : "LEAK");

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.set("workload.sessions", static_cast<std::int64_t>(kSessions));
    report.set("workload.frames_per_session",
               static_cast<std::int64_t>(frames_per_session));
    report.set("workload.spots", static_cast<std::int64_t>(160));
    report.set("workload.texture", static_cast<std::int64_t>(64));
    report.set("run.completed", static_cast<std::int64_t>(completed));
    report.set("run.degraded", static_cast<std::int64_t>(degraded));
    report.set("run.failed", first.health.failed);
    report.set("run.timeouts", first.health.timeouts);
    report.set("run.canceled", first.health.canceled);
    report.set("run.retries", first.health.retries);
    report.set("run.breaker_trips", first.health.breaker_trips);
    report.set("run.latency_p50_ms", p50_ms);
    report.set("run.latency_p95_ms", p95_ms);
    report.set("gate.availability", availability);
    report.set("gate.availability_target", kAvailabilityTarget);
    report.set("gate.bit_exact", first.bit_exact);
    report.set("gate.replay_identical", replay_ok);
    report.set("gate.p95_slo_ms", kP95SloSeconds * 1e3);
    report.set("gate.census_clean", census_ok);
    report.set("gate.pass", ok);
    report.set("mode", smoke ? "smoke" : "full");
    report.write(json_path);
  }
  if (!ok) std::printf("TARGET MISSED\n");
  return ok ? 0 : 1;
}
