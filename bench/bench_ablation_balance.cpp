// Ablation for the load-balanced scheduler: static even-split partition vs.
// cross-group work stealing (+ cost-balanced tiles in tiled mode).
//
// The paper's eq. 3.2 assumes every process group carries the same work.
// A clustered spot set breaks that assumption twice over: in contiguous
// mode the even *index* split hands one group the expensive spots, and in
// tiled mode the cluster crowds into one region. This bench measures both
// failure modes on the balance stress workload (see bench_common), then the
// uniform control set where stealing must not cost anything.
//
// The headline number is the *modeled* rate — the eq. 3.2 critical path over
// per-thread CPU time (assign + max(genP, genT) critical path + gather). The
// wall-clock rate is printed alongside, but on a host with fewer cores than
// workers + pipes it serializes the groups and cannot show a balancing win;
// the modeled rate is what a one-core-per-worker host would deliver.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "core/perf_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

struct Row {
  double static_rate = 0.0;
  double balanced_rate = 0.0;
  [[nodiscard]] double speedup() const {
    return static_rate > 0.0 ? balanced_rate / static_rate : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dcsn;
  const util::Args args(argc, argv);
  const int frames = args.get_int("frames", 3);
  const int processors = args.get_int("processors", 4);

  util::CsvWriter csv(bench::csv_path(argc, argv, "ablation_balance.csv"),
                      {"workload", "pipes", "mode", "scheduler", "modeled_rate",
                       "wall_rate", "imbalance", "stolen_chunks", "steal_ms",
                       "genP_critical_s", "genT_critical_s"});

  std::printf("host cores: %u (modeled rate assumes one core per worker+pipe; "
              "wall rate is what this host delivered)\n",
              std::thread::hardware_concurrency());

  double worst_clustered_speedup = 1e9;
  double worst_uniform_speedup = 1e9;

  for (const bool clustered : {true, false}) {
    bench::Workload workload = bench::make_balance_workload(clustered);
    std::printf("\n%s\n", workload.name.c_str());
    std::printf("%6s %11s %10s %11s %9s %11s %10s %8s %9s\n", "pipes", "mode",
                "scheduler", "modeled/s", "wall/s", "speedup", "imbalance",
                "stolen", "steal ms");
    for (const int pipes : {2, 4}) {
      for (const bool tiled : {false, true}) {
        Row row;
        for (const bool balanced : {false, true}) {
          core::DncConfig dnc;
          dnc.processors = processors;
          dnc.pipes = pipes;
          dnc.tiled = tiled;
          dnc.steal = balanced;
          dnc.tile_strategy = balanced ? core::TileStrategy::kCostBalanced
                                       : core::TileStrategy::kGrid;
          const bench::RateSample sample =
              bench::measure_rates(workload, dnc, frames);
          (balanced ? row.balanced_rate : row.static_rate) = sample.modeled_rate;
          char speedup_text[16] = "-";
          if (balanced) {
            std::snprintf(speedup_text, sizeof speedup_text, "%.2fx", row.speedup());
          }
          std::printf("%6d %11s %10s %11.2f %9.2f %11s %10.2f %8lld %9.2f\n",
                      pipes, tiled ? "tiled" : "contiguous",
                      balanced ? "steal+kd" : "static", sample.modeled_rate,
                      sample.wall_rate, speedup_text, sample.stats.imbalance,
                      static_cast<long long>(sample.stats.stolen_chunks),
                      sample.stats.steal_seconds * 1e3);
          csv.row({clustered ? "clustered" : "uniform", std::to_string(pipes),
                   tiled ? "tiled" : "contiguous",
                   balanced ? "steal+kd" : "static",
                   util::CsvWriter::num(sample.modeled_rate),
                   util::CsvWriter::num(sample.wall_rate),
                   util::CsvWriter::num(sample.stats.imbalance),
                   std::to_string(sample.stats.stolen_chunks),
                   util::CsvWriter::num(sample.stats.steal_seconds * 1e3),
                   util::CsvWriter::num(sample.stats.genP_critical_seconds),
                   util::CsvWriter::num(sample.stats.genT_critical_seconds)});
          if (balanced) {
            // The model's per-spot cost estimate is what feeds the kd-cut
            // weights; print it so the calibration is visible.
            const core::PerfModel model =
                core::PerfModel::calibrate(sample.stats, pipes);
            std::printf("%42s per-spot cost estimate %.2f us\n", "",
                        model.per_spot_seconds() * 1e6);
          }
        }
        auto& worst = clustered ? worst_clustered_speedup : worst_uniform_speedup;
        worst = std::min(worst, row.speedup());
      }
    }
  }

  std::printf(
      "\nsummary: worst clustered speedup %.2fx (target >= 1.3x), worst uniform "
      "speedup %.2fx (target: regression < 5%%, i.e. >= 0.95x)\n",
      worst_clustered_speedup, worst_uniform_speedup);
  std::printf(
      "the static partition starves whole groups on clustered spots; stealing "
      "rebalances generation at chunk granularity and the kd-cut rebalances "
      "the pipes' raster work.\n");
  // The targets are this bench's contract (modeled rates, so they hold on
  // any host); exit nonzero on a miss so CI can gate on the scheduler.
  const bool ok = worst_clustered_speedup >= 1.3 && worst_uniform_speedup >= 0.95;
  if (!ok) std::printf("TARGET MISSED\n");
  return ok ? 0 : 1;
}
