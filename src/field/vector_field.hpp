// The vector-field abstraction every consumer (advection, spot warping,
// streamline tracing) programs against.
//
// Step 1 of the spot-noise pipeline "read a data set of a vector field" may
// run 5-15 times per second; per frame the field is treated as steady, so
// the interface is a steady sample(). Unsteady phenomena are handled by the
// application replacing/overwriting grid data between frames, exactly as the
// paper's steering and browsing applications do.
#pragma once

#include "field/vec2.hpp"

namespace dcsn::field {

class VectorField {
 public:
  virtual ~VectorField() = default;

  /// Velocity at world position `p`. Positions outside the domain must
  /// return a finite value (implementations clamp to the border).
  [[nodiscard]] virtual Vec2 sample(Vec2 p) const = 0;

  /// World-space extent of valid data.
  [[nodiscard]] virtual Rect domain() const = 0;

  /// Largest velocity magnitude over the domain (approximate is fine); used
  /// to scale spot deformation and pick advection time steps.
  [[nodiscard]] virtual double max_magnitude() const = 0;
};

}  // namespace dcsn::field
