// Content fingerprint of a vector field: the identity half of every
// field-dependent cache key in the system.
//
// Two consumers share this fingerprint, and sharing it is the point:
//
//   * core::SynthesisCache guards temporal reuse with it — a per-frame field
//     allocation that recycles the previous frame's address, or an in-place
//     dataset reload, must not slip through on pointer identity;
//   * core::TileStore folds it into the content-addressed tile key, so two
//     sessions share cached tiles exactly when their fields agree on the
//     fingerprint.
//
// The fingerprint hashes the domain rectangle, the maximum magnitude, and
// the raw vector bytes sampled on a fixed kGridResolution x kGridResolution
// grid of fractional domain positions (cell centers, so no sample sits on a
// boundary special case). It is a *sampled* identity, not a proof: two
// fields that agree on all 256 samples, the domain and the extremes are
// treated as the same content. For the gridded datasets the paper's
// applications read (curvilinear meshes bilinearly interpolated), agreeing
// on a 16x16 probe lattice while differing elsewhere requires an
// adversarially localized edit — which is why in-place *steering* mutation
// still carries an explicit SynthesisCache::invalidate() contract, and why
// the grid is dense where the old 8-point probes were sparse.
//
// NaN poisoning: a non-finite sample (or domain/max_magnitude) sets
// `finite` false. Hash bytes of a NaN are stable, so without the flag a
// poisoned field would *hit* caches; consumers instead treat non-finite
// fields as uncacheable and fall back to full, unshared renders.
#pragma once

#include <cstdint>

#include "field/vector_field.hpp"

namespace dcsn::field {

struct FieldFingerprint {
  std::uint64_t hash = 0;
  /// False when any probed value (domain, max magnitude, grid sample) is
  /// non-finite; such a field must not be treated as cacheable content.
  bool finite = false;

  bool operator==(const FieldFingerprint&) const = default;
};

/// Samples per axis of the fingerprint grid (kGridResolution^2 samples).
inline constexpr int kFingerprintGridResolution = 16;

/// FNV-1a fingerprint of `f`'s content as seen through the sample grid.
/// Deterministic: same field content, same hash, on any host.
[[nodiscard]] FieldFingerprint fingerprint_field(const VectorField& f);

}  // namespace dcsn::field
