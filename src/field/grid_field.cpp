#include "field/grid_field.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dcsn::field {

template <class Grid>
GridVectorFieldT<Grid>::GridVectorFieldT(Grid grid, std::vector<Vec2> data)
    : grid_(std::move(grid)), data_(std::move(data)) {
  DCSN_CHECK(data_.size() == grid_.sample_count(),
             "sample count must match grid size");
}

template <class Grid>
double GridVectorFieldT<Grid>::max_magnitude() const {
  if (!max_valid_) {
    double best = 0.0;
    for (const Vec2& v : data_) best = std::max(best, v.length_sq());
    max_mag_ = std::sqrt(best);
    max_valid_ = true;
  }
  return max_mag_;
}

template class GridVectorFieldT<RegularGrid>;
template class GridVectorFieldT<RectilinearGrid>;

}  // namespace dcsn::field
