// 2D vector and rectangle primitives shared by all field math.
//
// Field evaluation and particle integration run in double precision: bent
// spots integrate streamlines through strongly varying fields, and single
// precision visibly distorts long streamlines near critical points.
#pragma once

#include <cmath>

namespace dcsn::field {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product; >0 when `o` is counterclockwise of *this.
  [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] constexpr double length_sq() const { return x * x + y * y; }
  [[nodiscard]] double length() const { return std::sqrt(length_sq()); }
  /// Counterclockwise perpendicular.
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }

  /// Unit vector; returns (0,0) for the zero vector rather than NaN, which
  /// is the safe convention for flow fields with stagnation points.
  [[nodiscard]] Vec2 normalized() const {
    const double len = length();
    return len > 0.0 ? Vec2{x / len, y / len} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// Axis-aligned rectangle [x0,x1] x [y0,y1]; the domain of a field.
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 1.0;
  double y1 = 1.0;

  [[nodiscard]] constexpr double width() const { return x1 - x0; }
  [[nodiscard]] constexpr double height() const { return y1 - y0; }
  [[nodiscard]] constexpr Vec2 min() const { return {x0, y0}; }
  [[nodiscard]] constexpr Vec2 max() const { return {x1, y1}; }
  [[nodiscard]] constexpr Vec2 center() const { return {(x0 + x1) * 0.5, (y0 + y1) * 0.5}; }

  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }

  /// Clamps a point into the rectangle.
  [[nodiscard]] constexpr Vec2 clamp(Vec2 p) const {
    return {p.x < x0 ? x0 : (p.x > x1 ? x1 : p.x), p.y < y0 ? y0 : (p.y > y1 ? y1 : p.y)};
  }

  /// Maps normalized [0,1]^2 coordinates into the rectangle.
  [[nodiscard]] constexpr Vec2 at(double u, double v) const {
    return {x0 + u * width(), y0 + v * height()};
  }

  constexpr bool operator==(const Rect&) const = default;
};

}  // namespace dcsn::field
