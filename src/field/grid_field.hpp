// Grid-sampled vector fields with bilinear interpolation.
//
// These are the data-set-backed fields of the two applications: the smog
// model's wind on a RegularGrid and the DNS slice on a RectilinearGrid.
// Sample storage is a flat row-major vector of Vec2; data can be overwritten
// in place each frame (pipeline step 1) without reallocating.
#pragma once

#include <span>
#include <vector>

#include "field/grid.hpp"
#include "field/vector_field.hpp"

namespace dcsn::field {

/// Bilinear interpolation weights applied to a 2x2 sample stencil.
template <class Grid>
class GridVectorFieldT final : public VectorField {
 public:
  GridVectorFieldT() = default;

  /// Zero-initialized field on `grid`.
  explicit GridVectorFieldT(Grid grid)
      : grid_(std::move(grid)), data_(grid_.sample_count()) {}

  GridVectorFieldT(Grid grid, std::vector<Vec2> data);

  [[nodiscard]] Vec2 sample(Vec2 p) const override {
    const CellCoord c = grid_.locate(p);
    const Vec2 v00 = at(c.i, c.j);
    const Vec2 v10 = at(c.i + 1, c.j);
    const Vec2 v01 = at(c.i, c.j + 1);
    const Vec2 v11 = at(c.i + 1, c.j + 1);
    const Vec2 bottom = lerp(v00, v10, c.fx);
    const Vec2 top = lerp(v01, v11, c.fx);
    return lerp(bottom, top, c.fy);
  }

  [[nodiscard]] Rect domain() const override { return grid_.domain(); }

  [[nodiscard]] double max_magnitude() const override;

  [[nodiscard]] const Grid& grid() const { return grid_; }

  [[nodiscard]] Vec2& at(int i, int j) { return data_[grid_.linear_index(i, j)]; }
  [[nodiscard]] const Vec2& at(int i, int j) const { return data_[grid_.linear_index(i, j)]; }

  /// Raw sample storage, row-major; size == grid().sample_count().
  [[nodiscard]] std::span<Vec2> samples() { return data_; }
  [[nodiscard]] std::span<const Vec2> samples() const { return data_; }

  /// Fills every sample from a callable Vec2(Vec2 world_pos).
  template <class F>
  void fill(F&& f) {
    for (int j = 0; j < grid_.ny(); ++j)
      for (int i = 0; i < grid_.nx(); ++i) at(i, j) = f(grid_.position(i, j));
    invalidate_max();
  }

  /// Call after writing samples() directly so max_magnitude() recomputes.
  void invalidate_max() { max_valid_ = false; }

 private:
  Grid grid_{};
  std::vector<Vec2> data_;
  mutable double max_mag_ = 0.0;
  mutable bool max_valid_ = false;
};

using GridVectorField = GridVectorFieldT<RegularGrid>;
using RectilinearVectorField = GridVectorFieldT<RectilinearGrid>;

extern template class GridVectorFieldT<RegularGrid>;
extern template class GridVectorFieldT<RectilinearGrid>;

}  // namespace dcsn::field
