#include "field/analytic.hpp"

#include <cmath>
#include <numbers>

namespace dcsn::field::analytic {

namespace {
constexpr double kPi = std::numbers::pi;
}

std::unique_ptr<VectorField> uniform(Vec2 velocity, Rect domain) {
  return std::make_unique<CallableField>([velocity](Vec2) { return velocity; },
                                         domain, velocity.length());
}

std::unique_ptr<VectorField> shear(double rate, Rect domain) {
  const double yc = domain.center().y;
  const double max_mag = std::abs(rate) * domain.height() * 0.5;
  return std::make_unique<CallableField>(
      [rate, yc](Vec2 p) { return Vec2{rate * (p.y - yc), 0.0}; }, domain, max_mag);
}

std::unique_ptr<VectorField> rigid_vortex(Vec2 center, double omega, Rect domain) {
  // Velocity grows linearly with radius; the domain corner bounds it.
  const double rmax = std::max((domain.max() - center).length(),
                               (domain.min() - center).length());
  return std::make_unique<CallableField>(
      [center, omega](Vec2 p) {
        const Vec2 r = p - center;
        return Vec2{-omega * r.y, omega * r.x};
      },
      domain, std::abs(omega) * rmax);
}

std::unique_ptr<VectorField> rankine_vortex(Vec2 center, double strength,
                                            double core_radius, Rect domain) {
  const double peak = std::abs(strength) / (2.0 * kPi * core_radius);
  return std::make_unique<CallableField>(
      [center, strength, core_radius](Vec2 p) {
        const Vec2 r = p - center;
        const double dist = r.length();
        if (dist < 1e-12) return Vec2{};
        // Tangential speed: (Gamma/2pi) * r/R^2 inside the core, (Gamma/2pi)/r outside.
        const double coef = strength / (2.0 * kPi);
        const double tangential = dist <= core_radius
                                      ? coef * dist / (core_radius * core_radius)
                                      : coef / dist;
        const Vec2 tangent = Vec2{-r.y, r.x} / dist;
        return tangent * tangential;
      },
      domain, peak);
}

std::unique_ptr<VectorField> saddle(Vec2 center, double k, Rect domain) {
  const double reach = std::max(domain.width(), domain.height());
  return std::make_unique<CallableField>(
      [center, k](Vec2 p) {
        const Vec2 r = p - center;
        return Vec2{k * r.x, -k * r.y};
      },
      domain, std::abs(k) * reach);
}

std::unique_ptr<VectorField> separation(double sep_x, double strength, Rect domain) {
  // u decays linearly toward the separation line and reverses beyond it;
  // v diverges away from the attachment point on the line. The result is a
  // saddle on (sep_x, yc) with the separation line x = sep_x as the stable
  // manifold — matching the topology of flow attaching to a blunt face.
  const double yc = domain.center().y;
  const double xspan = std::max(sep_x - domain.x0, domain.x1 - sep_x);
  const double max_mag =
      strength * std::hypot(xspan, domain.height() * 0.5);
  return std::make_unique<CallableField>(
      [sep_x, yc, strength](Vec2 p) {
        return Vec2{-strength * (p.x - sep_x), strength * (p.y - yc)};
      },
      domain, max_mag);
}

std::unique_ptr<VectorField> double_gyre(double amplitude, double eps, double omega,
                                         double t) {
  const Rect domain{0.0, 0.0, 2.0, 1.0};
  const double a = eps * std::sin(omega * t);
  const double b = 1.0 - 2.0 * eps * std::sin(omega * t);
  return std::make_unique<CallableField>(
      [amplitude, a, b](Vec2 p) {
        const double fx = a * p.x * p.x + b * p.x;
        const double dfx = 2.0 * a * p.x + b;
        return Vec2{-kPi * amplitude * std::sin(kPi * fx) * std::cos(kPi * p.y),
                    kPi * amplitude * std::cos(kPi * fx) * std::sin(kPi * p.y) * dfx};
      },
      domain, kPi * amplitude * 2.0);
}

std::unique_ptr<VectorField> taylor_green(double amplitude, Rect domain) {
  const double sx = kPi / domain.width();
  const double sy = kPi / domain.height();
  return std::make_unique<CallableField>(
      [amplitude, sx, sy, domain](Vec2 p) {
        const double u = (p.x - domain.x0) * sx;
        const double v = (p.y - domain.y0) * sy;
        return Vec2{amplitude * std::sin(u) * std::cos(v),
                    -amplitude * std::cos(u) * std::sin(v)};
      },
      domain, amplitude);
}

}  // namespace dcsn::field::analytic
