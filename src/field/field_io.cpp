#include "field/field_io.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "util/error.hpp"

namespace dcsn::field {

namespace {

constexpr std::uint32_t kMagicRectVec = 0x44435631;    // "DCV1"
constexpr std::uint32_t kMagicRegVec = 0x44435632;     // "DCV2"
constexpr std::uint32_t kMagicRectScalar = 0x44435333; // "DCS3"

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  DCSN_CHECK(in.good(), "unexpected end of field stream");
  return v;
}

void write_axis(std::ostream& out, const std::vector<double>& axis) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(axis.size()));
  out.write(reinterpret_cast<const char*>(axis.data()),
            static_cast<std::streamsize>(axis.size() * sizeof(double)));
}

std::vector<double> read_axis(std::istream& in) {
  const auto n = read_pod<std::uint32_t>(in);
  DCSN_CHECK(n >= 2 && n < (1u << 24), "implausible axis length");
  std::vector<double> axis(n);
  in.read(reinterpret_cast<char*>(axis.data()),
          static_cast<std::streamsize>(axis.size() * sizeof(double)));
  DCSN_CHECK(in.good(), "unexpected end of field stream");
  return axis;
}

template <class T>
void write_samples(std::ostream& out, std::span<const T> samples) {
  out.write(reinterpret_cast<const char*>(samples.data()),
            static_cast<std::streamsize>(samples.size() * sizeof(T)));
}

template <class T>
std::vector<T> read_samples(std::istream& in, std::size_t count) {
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  DCSN_CHECK(in.good(), "unexpected end of field stream");
  return data;
}

}  // namespace

void write_field(std::ostream& out, const RectilinearVectorField& f) {
  write_pod(out, kMagicRectVec);
  write_axis(out, f.grid().xs());
  write_axis(out, f.grid().ys());
  write_samples<Vec2>(out, f.samples());
}

RectilinearVectorField read_rectilinear_field(std::istream& in) {
  DCSN_CHECK(read_pod<std::uint32_t>(in) == kMagicRectVec,
             "not a rectilinear vector field stream");
  auto xs = read_axis(in);
  auto ys = read_axis(in);
  RectilinearGrid grid(std::move(xs), std::move(ys));
  auto data = read_samples<Vec2>(in, grid.sample_count());
  return {std::move(grid), std::move(data)};
}

void write_field(std::ostream& out, const GridVectorField& f) {
  write_pod(out, kMagicRegVec);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(f.grid().nx()));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(f.grid().ny()));
  write_pod(out, f.grid().domain());
  write_samples<Vec2>(out, f.samples());
}

GridVectorField read_regular_field(std::istream& in) {
  DCSN_CHECK(read_pod<std::uint32_t>(in) == kMagicRegVec,
             "not a regular vector field stream");
  const auto nx = read_pod<std::uint32_t>(in);
  const auto ny = read_pod<std::uint32_t>(in);
  const auto domain = read_pod<Rect>(in);
  RegularGrid grid(static_cast<int>(nx), static_cast<int>(ny), domain);
  auto data = read_samples<Vec2>(in, grid.sample_count());
  return {std::move(grid), std::move(data)};
}

void write_scalar(std::ostream& out, const RectilinearScalarField& f) {
  write_pod(out, kMagicRectScalar);
  write_axis(out, f.grid().xs());
  write_axis(out, f.grid().ys());
  write_samples<double>(out, f.samples());
}

RectilinearScalarField read_rectilinear_scalar(std::istream& in) {
  DCSN_CHECK(read_pod<std::uint32_t>(in) == kMagicRectScalar,
             "not a rectilinear scalar field stream");
  auto xs = read_axis(in);
  auto ys = read_axis(in);
  RectilinearGrid grid(std::move(xs), std::move(ys));
  auto data = read_samples<double>(in, grid.sample_count());
  return {std::move(grid), std::move(data)};
}

}  // namespace dcsn::field
