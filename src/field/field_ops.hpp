// Derived quantities and resampling.
//
// The DNS browser maps velocity magnitude / vorticity through colormaps, and
// grid-to-grid resampling converts solver output (staggered or rectilinear)
// into whatever grid the synthesizer wants. Central differences everywhere;
// one-sided at borders.
#pragma once

#include "field/grid_field.hpp"
#include "field/scalar_field.hpp"

namespace dcsn::field {

/// z-component of curl (vorticity) sampled on the field's own grid.
[[nodiscard]] ScalarField curl(const GridVectorField& f);
[[nodiscard]] RectilinearScalarField curl(const RectilinearVectorField& f);

/// Divergence sampled on the field's own grid.
[[nodiscard]] ScalarField divergence(const GridVectorField& f);
[[nodiscard]] RectilinearScalarField divergence(const RectilinearVectorField& f);

/// Velocity magnitude sampled on the field's own grid.
[[nodiscard]] ScalarField magnitude(const GridVectorField& f);
[[nodiscard]] RectilinearScalarField magnitude(const RectilinearVectorField& f);

/// Resamples any VectorField onto a regular grid (one bilinear/analytic
/// evaluation per sample).
[[nodiscard]] GridVectorField resample(const VectorField& f, const RegularGrid& grid);

/// Mean and root-mean-square magnitude over all samples of a grid field.
struct FieldStats {
  double mean_magnitude = 0.0;
  double rms_magnitude = 0.0;
  double max_magnitude = 0.0;
};
[[nodiscard]] FieldStats statistics(const GridVectorField& f);
[[nodiscard]] FieldStats statistics(const RectilinearVectorField& f);

}  // namespace dcsn::field
