// Scalar fields on grids: pollutant concentrations, pressure, derived
// quantities (curl, divergence, speed). The figure-6 overlay samples a
// ScalarField through a colormap on top of the spot-noise texture.
#pragma once

#include <span>
#include <vector>

#include "field/grid.hpp"

namespace dcsn::field {

template <class Grid>
class ScalarFieldT {
 public:
  ScalarFieldT() = default;

  explicit ScalarFieldT(Grid grid)
      : grid_(std::move(grid)), data_(grid_.sample_count(), 0.0) {}

  ScalarFieldT(Grid grid, std::vector<double> data);

  [[nodiscard]] double sample(Vec2 p) const {
    const CellCoord c = grid_.locate(p);
    const double v00 = at(c.i, c.j);
    const double v10 = at(c.i + 1, c.j);
    const double v01 = at(c.i, c.j + 1);
    const double v11 = at(c.i + 1, c.j + 1);
    const double bottom = v00 + (v10 - v00) * c.fx;
    const double top = v01 + (v11 - v01) * c.fx;
    return bottom + (top - bottom) * c.fy;
  }

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] Rect domain() const { return grid_.domain(); }

  [[nodiscard]] double& at(int i, int j) { return data_[grid_.linear_index(i, j)]; }
  [[nodiscard]] const double& at(int i, int j) const {
    return data_[grid_.linear_index(i, j)];
  }

  [[nodiscard]] std::span<double> samples() { return data_; }
  [[nodiscard]] std::span<const double> samples() const { return data_; }

  template <class F>
  void fill(F&& f) {
    for (int j = 0; j < grid_.ny(); ++j)
      for (int i = 0; i < grid_.nx(); ++i) at(i, j) = f(grid_.position(i, j));
  }

  /// Minimum and maximum over all samples; {0,0} for an empty field.
  [[nodiscard]] std::pair<double, double> min_max() const;

 private:
  Grid grid_{};
  std::vector<double> data_;
};

using ScalarField = ScalarFieldT<RegularGrid>;
using RectilinearScalarField = ScalarFieldT<RectilinearGrid>;

extern template class ScalarFieldT<RegularGrid>;
extern template class ScalarFieldT<RectilinearGrid>;

}  // namespace dcsn::field
