#include "field/curvilinear.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dcsn::field {

CurvilinearGrid::CurvilinearGrid(int nx, int ny, std::vector<Vec2> nodes)
    : nx_(nx), ny_(ny), nodes_(std::move(nodes)) {
  DCSN_CHECK(nx >= 2 && ny >= 2, "curvilinear grid needs at least 2x2 nodes");
  DCSN_CHECK(nodes_.size() == static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny),
             "node count must be nx * ny");
  double x0 = nodes_[0].x, x1 = nodes_[0].x, y0 = nodes_[0].y, y1 = nodes_[0].y;
  for (const Vec2& n : nodes_) {
    x0 = std::min(x0, n.x);
    x1 = std::max(x1, n.x);
    y0 = std::min(y0, n.y);
    y1 = std::max(y1, n.y);
  }
  DCSN_CHECK(x1 > x0 && y1 > y0, "degenerate curvilinear grid");
  bounds_ = {x0, y0, x1, y1};
  build_index();
}

CurvilinearGrid CurvilinearGrid::from_mapping(
    int nx, int ny, const std::function<Vec2(int, int)>& node) {
  std::vector<Vec2> nodes(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      nodes[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
            static_cast<std::size_t>(i)] = node(i, j);
  return {nx, ny, std::move(nodes)};
}

void CurvilinearGrid::build_index() {
  // Bin resolution ~ one bin per cell on average, clamped for tiny grids.
  const int cells = (nx_ - 1) * (ny_ - 1);
  const int target = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(cells))));
  bins_x_ = target;
  bins_y_ = target;
  bins_.assign(static_cast<std::size_t>(bins_x_) * static_cast<std::size_t>(bins_y_), {});

  auto bin_range = [](double lo, double hi, double b0, double b1, int bins) {
    const int first = std::clamp(
        static_cast<int>((lo - b0) / (b1 - b0) * bins), 0, bins - 1);
    const int last = std::clamp(
        static_cast<int>((hi - b0) / (b1 - b0) * bins), 0, bins - 1);
    return std::pair{first, last};
  };

  for (int cj = 0; cj < ny_ - 1; ++cj) {
    for (int ci = 0; ci < nx_ - 1; ++ci) {
      const Vec2 a = position(ci, cj);
      const Vec2 b = position(ci + 1, cj);
      const Vec2 c = position(ci + 1, cj + 1);
      const Vec2 d = position(ci, cj + 1);
      const double lo_x = std::min({a.x, b.x, c.x, d.x});
      const double hi_x = std::max({a.x, b.x, c.x, d.x});
      const double lo_y = std::min({a.y, b.y, c.y, d.y});
      const double hi_y = std::max({a.y, b.y, c.y, d.y});
      const auto [bx0, bx1] = bin_range(lo_x, hi_x, bounds_.x0, bounds_.x1, bins_x_);
      const auto [by0, by1] = bin_range(lo_y, hi_y, bounds_.y0, bounds_.y1, bins_y_);
      const auto cell_id = static_cast<std::int32_t>(cj * (nx_ - 1) + ci);
      for (int by = by0; by <= by1; ++by)
        for (int bx = bx0; bx <= bx1; ++bx)
          bins_[static_cast<std::size_t>(by) * static_cast<std::size_t>(bins_x_) +
                static_cast<std::size_t>(bx)]
              .push_back(cell_id);
    }
  }
}

bool CurvilinearGrid::point_in_cell(Vec2 p, int ci, int cj) const {
  // Convex quad: p is inside iff it is on the same side of all four edges
  // (counterclockwise or clockwise consistently).
  const Vec2 corners[4] = {position(ci, cj), position(ci + 1, cj),
                           position(ci + 1, cj + 1), position(ci, cj + 1)};
  int sign = 0;
  for (int k = 0; k < 4; ++k) {
    const Vec2 edge = corners[(k + 1) % 4] - corners[k];
    const double cross = edge.cross(p - corners[k]);
    if (cross == 0.0) continue;  // on the edge: acceptable
    const int s = cross > 0.0 ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

std::optional<CellCoord> CurvilinearGrid::invert_cell(Vec2 p, int ci, int cj) const {
  // Bilinear cell mapping: X(u,v) = (1-u)(1-v)A + u(1-v)B + uvC + (1-u)vD.
  // Newton iteration on F(u,v) = X(u,v) - p with the analytic Jacobian.
  const Vec2 a = position(ci, cj);
  const Vec2 b = position(ci + 1, cj);
  const Vec2 c = position(ci + 1, cj + 1);
  const Vec2 d = position(ci, cj + 1);

  double u = 0.5, v = 0.5;
  for (int iter = 0; iter < 12; ++iter) {
    const Vec2 x = a * ((1 - u) * (1 - v)) + b * (u * (1 - v)) + c * (u * v) +
                   d * ((1 - u) * v);
    const Vec2 r = x - p;
    if (r.length_sq() < 1e-24) break;
    const Vec2 dxu = (b - a) * (1 - v) + (c - d) * v;
    const Vec2 dxv = (d - a) * (1 - u) + (c - b) * u;
    const double det = dxu.cross(dxv);
    if (std::abs(det) < 1e-18) return std::nullopt;  // degenerate cell
    // Solve J * delta = r.
    const double du = (r.cross(dxv)) / det;
    const double dv = (dxu.cross(r)) / det;
    u -= du;
    v -= dv;
    if (!std::isfinite(u) || !std::isfinite(v)) return std::nullopt;
  }
  constexpr double kSlack = 1e-9;
  if (u < -kSlack || u > 1.0 + kSlack || v < -kSlack || v > 1.0 + kSlack)
    return std::nullopt;
  CellCoord coord;
  coord.i = ci;
  coord.j = cj;
  coord.fx = std::clamp(u, 0.0, 1.0);
  coord.fy = std::clamp(v, 0.0, 1.0);
  return coord;
}

std::optional<CellCoord> CurvilinearGrid::locate(Vec2 p) const {
  if (!bounds_.contains(p)) return std::nullopt;
  const int bx = std::clamp(
      static_cast<int>((p.x - bounds_.x0) / bounds_.width() * bins_x_), 0, bins_x_ - 1);
  const int by = std::clamp(
      static_cast<int>((p.y - bounds_.y0) / bounds_.height() * bins_y_), 0,
      bins_y_ - 1);
  const auto& candidates =
      bins_[static_cast<std::size_t>(by) * static_cast<std::size_t>(bins_x_) +
            static_cast<std::size_t>(bx)];
  for (const std::int32_t cell : candidates) {
    const int ci = cell % (nx_ - 1);
    const int cj = cell / (nx_ - 1);
    if (!point_in_cell(p, ci, cj)) continue;
    if (auto coord = invert_cell(p, ci, cj)) return coord;
  }
  return std::nullopt;
}

// ------------------------------------------------- CurvilinearVectorField ---

CurvilinearVectorField::CurvilinearVectorField(CurvilinearGrid grid,
                                               std::vector<Vec2> data)
    : grid_(std::move(grid)), data_(std::move(data)) {
  DCSN_CHECK(data_.size() == grid_.sample_count(),
             "sample count must match grid size");
}

Vec2 CurvilinearVectorField::sample(Vec2 p) const {
  const auto coord = grid_.locate(grid_.bounds().clamp(p));
  if (!coord) return {};  // outside the body-fitted region
  const Vec2 v00 = at(coord->i, coord->j);
  const Vec2 v10 = at(coord->i + 1, coord->j);
  const Vec2 v11 = at(coord->i + 1, coord->j + 1);
  const Vec2 v01 = at(coord->i, coord->j + 1);
  const double u = coord->fx;
  const double w = coord->fy;
  return v00 * ((1 - u) * (1 - w)) + v10 * (u * (1 - w)) + v11 * (u * w) +
         v01 * ((1 - u) * w);
}

double CurvilinearVectorField::max_magnitude() const {
  if (!max_valid_) {
    double best = 0.0;
    for (const Vec2& v : data_) best = std::max(best, v.length_sq());
    max_mag_ = std::sqrt(best);
    max_valid_ = true;
  }
  return max_mag_;
}

CurvilinearGrid make_annulus_grid(Vec2 center, double r_inner, double r_outer,
                                  int radial, int angular) {
  DCSN_CHECK(r_outer > r_inner && r_inner > 0.0, "annulus radii must satisfy 0 < inner < outer");
  DCSN_CHECK(radial >= 2 && angular >= 4, "annulus grid too coarse");
  return CurvilinearGrid::from_mapping(angular, radial, [&](int i, int j) {
    // Note: angular direction stops short of 2*pi so the grid does not
    // self-overlap (the seam is a boundary, like a C-grid cut).
    const double theta =
        2.0 * std::numbers::pi * (static_cast<double>(i) / angular);
    const double r =
        r_inner + (r_outer - r_inner) * (static_cast<double>(j) / (radial - 1));
    return Vec2{center.x + r * std::cos(theta), center.y + r * std::sin(theta)};
  });
}

}  // namespace dcsn::field
