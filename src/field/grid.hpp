// Grid descriptors: where samples live in world space.
//
// The paper's two applications use the two grid kinds implemented here: the
// atmospheric model is a regular 53x55 grid, the DNS slice is rectilinear
// 278x208 (stretched toward the block). Descriptors are separated from data
// so vector fields, scalar fields and solvers share the same geometry code.
#pragma once

#include <vector>

#include "field/vec2.hpp"

namespace dcsn::field {

/// Cell location plus interpolation weights for a bilinear stencil.
struct CellCoord {
  int i = 0;       ///< column of the lower-left sample
  int j = 0;       ///< row of the lower-left sample
  double fx = 0.0; ///< fractional position within the cell, in [0,1]
  double fy = 0.0;
};

/// Uniformly spaced samples: sample (i, j) sits at origin + (i*dx, j*dy).
class RegularGrid {
 public:
  RegularGrid() = default;

  /// Builds a grid of nx-by-ny *samples* covering `domain` (inclusive edges).
  /// nx, ny >= 2.
  RegularGrid(int nx, int ny, const Rect& domain);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] const Rect& domain() const { return domain_; }
  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double dy() const { return dy_; }
  [[nodiscard]] std::size_t sample_count() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  }

  /// World position of sample (i, j).
  [[nodiscard]] Vec2 position(int i, int j) const {
    return {domain_.x0 + i * dx_, domain_.y0 + j * dy_};
  }

  /// Locates `p` for bilinear interpolation, clamping to the grid border.
  [[nodiscard]] CellCoord locate(Vec2 p) const;

  [[nodiscard]] std::size_t linear_index(int i, int j) const {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(i);
  }

  bool operator==(const RegularGrid&) const = default;

 private:
  int nx_ = 0;
  int ny_ = 0;
  Rect domain_{};
  double dx_ = 0.0;
  double dy_ = 0.0;
};

/// Tensor-product grid with per-axis coordinate arrays (strictly increasing).
/// Lookup is O(log n) via binary search with a per-call monotonic hint.
class RectilinearGrid {
 public:
  RectilinearGrid() = default;
  RectilinearGrid(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] int nx() const { return static_cast<int>(xs_.size()); }
  [[nodiscard]] int ny() const { return static_cast<int>(ys_.size()); }
  [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const { return ys_; }
  [[nodiscard]] const Rect& domain() const { return domain_; }
  [[nodiscard]] std::size_t sample_count() const { return xs_.size() * ys_.size(); }

  [[nodiscard]] Vec2 position(int i, int j) const {
    return {xs_[static_cast<std::size_t>(i)], ys_[static_cast<std::size_t>(j)]};
  }

  [[nodiscard]] CellCoord locate(Vec2 p) const;

  [[nodiscard]] std::size_t linear_index(int i, int j) const {
    return static_cast<std::size_t>(j) * xs_.size() + static_cast<std::size_t>(i);
  }

  /// Geometrically stretched coordinates: spacing grows by `ratio` per cell
  /// away from `focus` (in [0,1] of the axis). Used to build DNS-style grids
  /// that refine near the obstacle.
  static std::vector<double> stretched_axis(int n, double lo, double hi,
                                            double focus, double ratio);

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  Rect domain_{};
};

}  // namespace dcsn::field
