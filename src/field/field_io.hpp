// Binary serialization of grid fields.
//
// The DNS application writes solver snapshots to a dataset file and the
// browser reads them back (the paper's "very large scientific data base").
// Format: little-endian, a small tagged header, then raw samples.
#pragma once

#include <iosfwd>
#include <string>

#include "field/grid_field.hpp"
#include "field/scalar_field.hpp"

namespace dcsn::field {

void write_field(std::ostream& out, const RectilinearVectorField& f);
[[nodiscard]] RectilinearVectorField read_rectilinear_field(std::istream& in);

void write_field(std::ostream& out, const GridVectorField& f);
[[nodiscard]] GridVectorField read_regular_field(std::istream& in);

void write_scalar(std::ostream& out, const RectilinearScalarField& f);
[[nodiscard]] RectilinearScalarField read_rectilinear_scalar(std::istream& in);

}  // namespace dcsn::field
