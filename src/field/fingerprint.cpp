#include "field/fingerprint.hpp"

#include <cmath>

#include "util/hash.hpp"

namespace dcsn::field {

namespace {

/// Folds a double's raw bytes into the running hash, tracking finiteness.
/// Raw bytes, not a rounded form: the engine's pixels are an exact function
/// of these values, so the fingerprint must distinguish everything the
/// renderer would.
std::uint64_t fold(double value, std::uint64_t h, bool& finite) {
  finite = finite && std::isfinite(value);
  return util::fnv1a(&value, sizeof(value), h);
}

}  // namespace

FieldFingerprint fingerprint_field(const VectorField& f) {
  constexpr int kN = kFingerprintGridResolution;
  const Rect d = f.domain();
  bool finite = true;
  std::uint64_t h = util::kFnv1aOffset;
  h = fold(d.x0, h, finite);
  h = fold(d.y0, h, finite);
  h = fold(d.width(), h, finite);
  h = fold(d.height(), h, finite);
  h = fold(f.max_magnitude(), h, finite);
  for (int j = 0; j < kN; ++j) {
    const double fy = (j + 0.5) / kN;
    for (int i = 0; i < kN; ++i) {
      const double fx = (i + 0.5) / kN;
      const Vec2 v =
          f.sample({d.x0 + fx * d.width(), d.y0 + fy * d.height()});
      h = fold(v.x, h, finite);
      h = fold(v.y, h, finite);
    }
  }
  return {h, finite};
}

}  // namespace dcsn::field
