// Structured curvilinear (body-fitted) grids.
//
// The enhanced-spot-noise lineage the paper builds on ([4], §2) extends
// spot noise to non-uniform data grids. Rectilinear grids cover the DNS
// slice; curvilinear grids cover body-fitted meshes (annuli around
// cylinders, C-grids around airfoils) where cell edges curve. A sample
// lives at world position node(i, j); sampling at an arbitrary point
// requires *inverting* the bilinear cell mapping, done here with a coarse
// spatial index for the cell guess plus Newton iteration for the local
// coordinates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "field/grid.hpp"
#include "field/vec2.hpp"
#include "field/vector_field.hpp"

namespace dcsn::field {

class CurvilinearGrid {
 public:
  CurvilinearGrid() = default;

  /// Nodes in row-major order: nodes[j * nx + i] is the world position of
  /// logical node (i, j). Cells must be convex, non-degenerate quads.
  CurvilinearGrid(int nx, int ny, std::vector<Vec2> nodes);

  /// Convenience: builds nodes from a callable Vec2(i, j).
  static CurvilinearGrid from_mapping(int nx, int ny,
                                      const std::function<Vec2(int, int)>& node);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] std::size_t sample_count() const { return nodes_.size(); }
  [[nodiscard]] Vec2 position(int i, int j) const {
    return nodes_[linear_index(i, j)];
  }
  /// World-space bounding box of all nodes.
  [[nodiscard]] const Rect& bounds() const { return bounds_; }

  [[nodiscard]] std::size_t linear_index(int i, int j) const {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(i);
  }

  /// Cell (i, j) plus local coordinates (fx, fy) in [0,1]^2 such that the
  /// bilinear blend of the cell's corners reproduces `p`. Returns nullopt
  /// when `p` lies outside the grid.
  [[nodiscard]] std::optional<CellCoord> locate(Vec2 p) const;

 private:
  void build_index();
  [[nodiscard]] bool point_in_cell(Vec2 p, int ci, int cj) const;
  [[nodiscard]] std::optional<CellCoord> invert_cell(Vec2 p, int ci, int cj) const;

  int nx_ = 0;
  int ny_ = 0;
  std::vector<Vec2> nodes_;
  Rect bounds_{};

  // Coarse uniform bins over the bounding box: each bin lists the cells
  // whose bounding boxes overlap it, turning locate() into a handful of
  // point-in-quad tests.
  int bins_x_ = 0;
  int bins_y_ = 0;
  std::vector<std::vector<std::int32_t>> bins_;
};

/// Vector field sampled on a curvilinear grid with bilinear interpolation
/// in the cell's local coordinates. Outside the grid, the value of the
/// nearest located cell edge is not defined — sampling clamps the query to
/// the grid bounds and returns zero when no cell contains it (stagnant
/// exterior), which keeps integrators stable near the boundary.
class CurvilinearVectorField final : public VectorField {
 public:
  CurvilinearVectorField() = default;
  explicit CurvilinearVectorField(CurvilinearGrid grid)
      : grid_(std::move(grid)), data_(grid_.sample_count()) {}
  CurvilinearVectorField(CurvilinearGrid grid, std::vector<Vec2> data);

  [[nodiscard]] Vec2 sample(Vec2 p) const override;
  [[nodiscard]] Rect domain() const override { return grid_.bounds(); }
  [[nodiscard]] double max_magnitude() const override;

  [[nodiscard]] const CurvilinearGrid& grid() const { return grid_; }
  [[nodiscard]] Vec2& at(int i, int j) { return data_[grid_.linear_index(i, j)]; }
  [[nodiscard]] const Vec2& at(int i, int j) const {
    return data_[grid_.linear_index(i, j)];
  }

  /// Fills every sample from a callable Vec2(Vec2 world_pos).
  template <class F>
  void fill(F&& f) {
    for (int j = 0; j < grid_.ny(); ++j)
      for (int i = 0; i < grid_.nx(); ++i) at(i, j) = f(grid_.position(i, j));
    max_valid_ = false;
  }

 private:
  CurvilinearGrid grid_;
  std::vector<Vec2> data_;
  mutable double max_mag_ = 0.0;
  mutable bool max_valid_ = false;
};

/// Annulus grid: ring between radii [r_inner, r_outer] around `center`,
/// `radial` x `angular` nodes — the classic body-fitted test mesh (flow
/// around a cylinder).
[[nodiscard]] CurvilinearGrid make_annulus_grid(Vec2 center, double r_inner,
                                                double r_outer, int radial,
                                                int angular);

}  // namespace dcsn::field
