#include "field/field_ops.hpp"

#include <cmath>

namespace dcsn::field {

namespace {

// Central differences with one-sided stencils at the borders, for either
// grid kind. Position spacing comes from the grid geometry so the same code
// serves regular and rectilinear fields.
template <class Grid, class FieldT, class Fn>
auto derived_scalar(const FieldT& f, Fn&& value) {
  const Grid& g = f.grid();
  ScalarFieldT<Grid> out(g);
  for (int j = 0; j < g.ny(); ++j) {
    for (int i = 0; i < g.nx(); ++i) {
      const int il = i > 0 ? i - 1 : i;
      const int ir = i < g.nx() - 1 ? i + 1 : i;
      const int jl = j > 0 ? j - 1 : j;
      const int jr = j < g.ny() - 1 ? j + 1 : j;
      const double dx = g.position(ir, j).x - g.position(il, j).x;
      const double dy = g.position(i, jr).y - g.position(i, jl).y;
      const Vec2 ddx = (f.at(ir, j) - f.at(il, j)) / dx;
      const Vec2 ddy = (f.at(i, jr) - f.at(i, jl)) / dy;
      out.at(i, j) = value(ddx, ddy, f.at(i, j));
    }
  }
  return out;
}

template <class Grid, class FieldT>
FieldStats stats_impl(const FieldT& f) {
  FieldStats s;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const Vec2& v : f.samples()) {
    const double m = v.length();
    sum += m;
    sum_sq += m * m;
    if (m > s.max_magnitude) s.max_magnitude = m;
  }
  const auto n = static_cast<double>(f.samples().size());
  if (n > 0) {
    s.mean_magnitude = sum / n;
    s.rms_magnitude = std::sqrt(sum_sq / n);
  }
  return s;
}

const auto kCurl = [](Vec2 ddx, Vec2 ddy, Vec2) { return ddx.y - ddy.x; };
const auto kDiv = [](Vec2 ddx, Vec2 ddy, Vec2) { return ddx.x + ddy.y; };
const auto kMag = [](Vec2, Vec2, Vec2 v) { return v.length(); };

}  // namespace

ScalarField curl(const GridVectorField& f) {
  return derived_scalar<RegularGrid>(f, kCurl);
}
RectilinearScalarField curl(const RectilinearVectorField& f) {
  return derived_scalar<RectilinearGrid>(f, kCurl);
}

ScalarField divergence(const GridVectorField& f) {
  return derived_scalar<RegularGrid>(f, kDiv);
}
RectilinearScalarField divergence(const RectilinearVectorField& f) {
  return derived_scalar<RectilinearGrid>(f, kDiv);
}

ScalarField magnitude(const GridVectorField& f) {
  return derived_scalar<RegularGrid>(f, kMag);
}
RectilinearScalarField magnitude(const RectilinearVectorField& f) {
  return derived_scalar<RectilinearGrid>(f, kMag);
}

GridVectorField resample(const VectorField& f, const RegularGrid& grid) {
  GridVectorField out(grid);
  out.fill([&f](Vec2 p) { return f.sample(p); });
  return out;
}

FieldStats statistics(const GridVectorField& f) {
  return stats_impl<RegularGrid>(f);
}
FieldStats statistics(const RectilinearVectorField& f) {
  return stats_impl<RectilinearGrid>(f);
}

}  // namespace dcsn::field
