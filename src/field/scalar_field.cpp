#include "field/scalar_field.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dcsn::field {

template <class Grid>
ScalarFieldT<Grid>::ScalarFieldT(Grid grid, std::vector<double> data)
    : grid_(std::move(grid)), data_(std::move(data)) {
  DCSN_CHECK(data_.size() == grid_.sample_count(),
             "sample count must match grid size");
}

template <class Grid>
std::pair<double, double> ScalarFieldT<Grid>::min_max() const {
  if (data_.empty()) return {0.0, 0.0};
  const auto [lo, hi] = std::minmax_element(data_.begin(), data_.end());
  return {*lo, *hi};
}

template class ScalarFieldT<RegularGrid>;
template class ScalarFieldT<RectilinearGrid>;

}  // namespace dcsn::field
