#include "field/grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dcsn::field {

RegularGrid::RegularGrid(int nx, int ny, const Rect& domain)
    : nx_(nx), ny_(ny), domain_(domain) {
  DCSN_CHECK(nx >= 2 && ny >= 2, "regular grid needs at least 2x2 samples");
  DCSN_CHECK(domain.width() > 0.0 && domain.height() > 0.0, "empty grid domain");
  dx_ = domain.width() / (nx - 1);
  dy_ = domain.height() / (ny - 1);
}

CellCoord RegularGrid::locate(Vec2 p) const {
  const double gx = (p.x - domain_.x0) / dx_;
  const double gy = (p.y - domain_.y0) / dy_;
  CellCoord c;
  c.i = std::clamp(static_cast<int>(std::floor(gx)), 0, nx_ - 2);
  c.j = std::clamp(static_cast<int>(std::floor(gy)), 0, ny_ - 2);
  c.fx = std::clamp(gx - c.i, 0.0, 1.0);
  c.fy = std::clamp(gy - c.j, 0.0, 1.0);
  return c;
}

RectilinearGrid::RectilinearGrid(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  DCSN_CHECK(xs_.size() >= 2 && ys_.size() >= 2,
             "rectilinear grid needs at least 2x2 samples");
  DCSN_CHECK(std::is_sorted(xs_.begin(), xs_.end()) &&
                 std::adjacent_find(xs_.begin(), xs_.end()) == xs_.end(),
             "x coordinates must be strictly increasing");
  DCSN_CHECK(std::is_sorted(ys_.begin(), ys_.end()) &&
                 std::adjacent_find(ys_.begin(), ys_.end()) == ys_.end(),
             "y coordinates must be strictly increasing");
  domain_ = Rect{xs_.front(), ys_.front(), xs_.back(), ys_.back()};
}

namespace {
/// Index of the interval [axis[k], axis[k+1]] containing v, clamped.
int locate_axis(const std::vector<double>& axis, double v) {
  const auto it = std::upper_bound(axis.begin(), axis.end(), v);
  const auto idx = static_cast<int>(it - axis.begin()) - 1;
  return std::clamp(idx, 0, static_cast<int>(axis.size()) - 2);
}
}  // namespace

CellCoord RectilinearGrid::locate(Vec2 p) const {
  CellCoord c;
  c.i = locate_axis(xs_, p.x);
  c.j = locate_axis(ys_, p.y);
  const double x0 = xs_[static_cast<std::size_t>(c.i)];
  const double x1 = xs_[static_cast<std::size_t>(c.i) + 1];
  const double y0 = ys_[static_cast<std::size_t>(c.j)];
  const double y1 = ys_[static_cast<std::size_t>(c.j) + 1];
  c.fx = std::clamp((p.x - x0) / (x1 - x0), 0.0, 1.0);
  c.fy = std::clamp((p.y - y0) / (y1 - y0), 0.0, 1.0);
  return c;
}

std::vector<double> RectilinearGrid::stretched_axis(int n, double lo, double hi,
                                                    double focus, double ratio) {
  DCSN_CHECK(n >= 2, "axis needs at least 2 samples");
  DCSN_CHECK(hi > lo, "axis range must be positive");
  DCSN_CHECK(ratio > 0.0, "stretch ratio must be positive");
  // Build relative spacings growing geometrically with distance from focus,
  // then normalize to the requested range.
  std::vector<double> spacing(static_cast<std::size_t>(n) - 1);
  const double focus_pos = focus * (n - 1);
  for (int k = 0; k < n - 1; ++k) {
    const double mid = k + 0.5;
    const double dist = std::abs(mid - focus_pos) / (n - 1);
    spacing[static_cast<std::size_t>(k)] = std::pow(ratio, dist);
  }
  double total = 0.0;
  for (const double s : spacing) total += s;
  std::vector<double> axis(static_cast<std::size_t>(n));
  axis[0] = lo;
  double acc = 0.0;
  for (int k = 0; k < n - 1; ++k) {
    acc += spacing[static_cast<std::size_t>(k)];
    axis[static_cast<std::size_t>(k) + 1] = lo + (hi - lo) * (acc / total);
  }
  axis.back() = hi;  // guard against rounding drift
  return axis;
}

}  // namespace dcsn::field
