// 3D volume fields and slice extraction.
//
// Both of the paper's applications visualize "a slice from the three
// dimensional data set" (§5.1, §5.2): the atmospheric model and the DNS are
// 3D, spot noise is 2D. This module supplies the 3D side of that pipeline —
// a trilinear volume container plus the slicer that turns an axis-aligned
// plane of it into the 2D GridVectorField every synthesizer consumes,
// keeping the two in-plane velocity components.
#pragma once

#include <functional>
#include <vector>

#include "field/grid_field.hpp"
#include "field/vec2.hpp"

namespace dcsn::field {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] double length() const { return std::sqrt(x * x + y * y + z * z); }
};

/// Axis-aligned box, the domain of a volume.
struct Box {
  double x0 = 0.0, y0 = 0.0, z0 = 0.0;
  double x1 = 1.0, y1 = 1.0, z1 = 1.0;

  [[nodiscard]] constexpr double width() const { return x1 - x0; }
  [[nodiscard]] constexpr double height() const { return y1 - y0; }
  [[nodiscard]] constexpr double depth() const { return z1 - z0; }
  [[nodiscard]] constexpr bool contains(Vec3 p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1 && p.z >= z0 &&
           p.z <= z1;
  }
};

/// Regularly sampled 3D vector field with trilinear interpolation.
class VolumeField {
 public:
  VolumeField() = default;

  /// nx, ny, nz >= 2 samples spanning `domain` (inclusive edges).
  VolumeField(int nx, int ny, int nz, const Box& domain);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] const Box& domain() const { return domain_; }
  [[nodiscard]] std::size_t sample_count() const { return data_.size(); }

  [[nodiscard]] Vec3 position(int i, int j, int k) const {
    return {domain_.x0 + i * dx_, domain_.y0 + j * dy_, domain_.z0 + k * dz_};
  }

  [[nodiscard]] Vec3& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  [[nodiscard]] const Vec3& at(int i, int j, int k) const {
    return data_[index(i, j, k)];
  }

  /// Trilinear sample, border-clamped.
  [[nodiscard]] Vec3 sample(Vec3 p) const;

  /// Fills every sample from a callable Vec3(Vec3 world_pos).
  void fill(const std::function<Vec3(Vec3)>& f);

 private:
  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(i);
  }

  int nx_ = 0, ny_ = 0, nz_ = 0;
  Box domain_{};
  double dx_ = 0.0, dy_ = 0.0, dz_ = 0.0;
  std::vector<Vec3> data_;
};

enum class SliceAxis { kX, kY, kZ };

/// Extracts the axis-aligned plane `axis = coord` as a 2D vector field of
/// the two in-plane components, sampled on an nx-by-ny regular grid. Plane
/// coordinates follow the right-handed convention:
///   kZ slice -> (x, y) plane carrying (u, v)
///   kY slice -> (x, z) plane carrying (u, w)
///   kX slice -> (y, z) plane carrying (v, w)
[[nodiscard]] GridVectorField extract_slice(const VolumeField& volume,
                                            SliceAxis axis, double coord, int nx,
                                            int ny);

namespace analytic3d {

/// Arnold–Beltrami–Childress flow on [0, 2pi]^3 — the standard analytic 3D
/// test field (steady, divergence-free, chaotic streamlines):
///   u = A sin z + C cos y,  v = B sin x + A cos z,  w = C sin y + B cos x.
[[nodiscard]] VolumeField abc_flow(double a, double b, double c, int resolution);

}  // namespace analytic3d
}  // namespace dcsn::field
