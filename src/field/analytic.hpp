// Analytic vector fields: ground truth for tests and the figure scenarios.
//
// The separation-topology field substitutes for the paper's 3D block
// skin-friction data in figure 2 (see DESIGN.md §2): the figure's point is
// that advected spot positions reveal a separation line, which only needs a
// 2D field with the same critical-point topology.
#pragma once

#include <functional>
#include <memory>

#include "field/vector_field.hpp"

namespace dcsn::field {

/// Wraps any callable Vec2(Vec2) as a VectorField.
class CallableField final : public VectorField {
 public:
  using Fn = std::function<Vec2(Vec2)>;

  CallableField(Fn fn, Rect domain, double max_mag)
      : fn_(std::move(fn)), domain_(domain), max_mag_(max_mag) {}

  [[nodiscard]] Vec2 sample(Vec2 p) const override { return fn_(p); }
  [[nodiscard]] Rect domain() const override { return domain_; }
  [[nodiscard]] double max_magnitude() const override { return max_mag_; }

 private:
  Fn fn_;
  Rect domain_;
  double max_mag_;
};

namespace analytic {

/// Uniform flow with the given velocity.
[[nodiscard]] std::unique_ptr<VectorField> uniform(Vec2 velocity, Rect domain);

/// Horizontal shear: u = rate * (y - y_center), v = 0.
[[nodiscard]] std::unique_ptr<VectorField> shear(double rate, Rect domain);

/// Solid-body rotation of angular velocity `omega` about `center`.
[[nodiscard]] std::unique_ptr<VectorField> rigid_vortex(Vec2 center, double omega,
                                                        Rect domain);

/// Rankine vortex: solid-body core of radius `core_radius`, 1/r decay
/// outside. The standard well-behaved vortex for visualization tests.
[[nodiscard]] std::unique_ptr<VectorField> rankine_vortex(Vec2 center, double strength,
                                                          double core_radius, Rect domain);

/// Saddle centered at `center`: u = k(x-cx), v = -k(y-cy).
[[nodiscard]] std::unique_ptr<VectorField> saddle(Vec2 center, double k, Rect domain);

/// Separation-topology field for the figure-2 scenario: free-stream flow in
/// +x that decelerates and splits along the vertical line x = sep_x, with an
/// attachment saddle on it. Particles advected through this field pile up
/// along the separation line, the effect figure 2 demonstrates.
[[nodiscard]] std::unique_ptr<VectorField> separation(double sep_x, double strength,
                                                      Rect domain);

/// Unsteady double gyre evaluated at fixed time t — the classic test case
/// for advection code. Domain [0,2]x[0,1].
[[nodiscard]] std::unique_ptr<VectorField> double_gyre(double amplitude, double eps,
                                                       double omega, double t);

/// Taylor–Green vortex array on [0,pi]^2 scaled to `domain`: an analytic
/// solenoidal field with known curl, used to validate field_ops.
[[nodiscard]] std::unique_ptr<VectorField> taylor_green(double amplitude, Rect domain);

}  // namespace analytic
}  // namespace dcsn::field
