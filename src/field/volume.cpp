#include "field/volume.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dcsn::field {

VolumeField::VolumeField(int nx, int ny, int nz, const Box& domain)
    : nx_(nx), ny_(ny), nz_(nz), domain_(domain) {
  DCSN_CHECK(nx >= 2 && ny >= 2 && nz >= 2, "volume needs at least 2 samples per axis");
  DCSN_CHECK(domain.width() > 0 && domain.height() > 0 && domain.depth() > 0,
             "volume domain must be non-empty");
  dx_ = domain.width() / (nx - 1);
  dy_ = domain.height() / (ny - 1);
  dz_ = domain.depth() / (nz - 1);
  data_.resize(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
               static_cast<std::size_t>(nz));
}

Vec3 VolumeField::sample(Vec3 p) const {
  const double gx = (p.x - domain_.x0) / dx_;
  const double gy = (p.y - domain_.y0) / dy_;
  const double gz = (p.z - domain_.z0) / dz_;
  const int i = std::clamp(static_cast<int>(std::floor(gx)), 0, nx_ - 2);
  const int j = std::clamp(static_cast<int>(std::floor(gy)), 0, ny_ - 2);
  const int k = std::clamp(static_cast<int>(std::floor(gz)), 0, nz_ - 2);
  const double fx = std::clamp(gx - i, 0.0, 1.0);
  const double fy = std::clamp(gy - j, 0.0, 1.0);
  const double fz = std::clamp(gz - k, 0.0, 1.0);

  auto blend2 = [](Vec3 a, Vec3 b, double t) { return a + (b - a) * t; };
  const Vec3 c00 = blend2(at(i, j, k), at(i + 1, j, k), fx);
  const Vec3 c10 = blend2(at(i, j + 1, k), at(i + 1, j + 1, k), fx);
  const Vec3 c01 = blend2(at(i, j, k + 1), at(i + 1, j, k + 1), fx);
  const Vec3 c11 = blend2(at(i, j + 1, k + 1), at(i + 1, j + 1, k + 1), fx);
  return blend2(blend2(c00, c10, fy), blend2(c01, c11, fy), fz);
}

void VolumeField::fill(const std::function<Vec3(Vec3)>& f) {
  for (int k = 0; k < nz_; ++k)
    for (int j = 0; j < ny_; ++j)
      for (int i = 0; i < nx_; ++i) at(i, j, k) = f(position(i, j, k));
}

GridVectorField extract_slice(const VolumeField& volume, SliceAxis axis,
                              double coord, int nx, int ny) {
  const Box& b = volume.domain();
  Rect plane;
  switch (axis) {
    case SliceAxis::kZ:
      DCSN_CHECK(coord >= b.z0 && coord <= b.z1, "slice plane outside the volume");
      plane = {b.x0, b.y0, b.x1, b.y1};
      break;
    case SliceAxis::kY:
      DCSN_CHECK(coord >= b.y0 && coord <= b.y1, "slice plane outside the volume");
      plane = {b.x0, b.z0, b.x1, b.z1};
      break;
    case SliceAxis::kX:
      DCSN_CHECK(coord >= b.x0 && coord <= b.x1, "slice plane outside the volume");
      plane = {b.y0, b.z0, b.y1, b.z1};
      break;
  }
  GridVectorField out(RegularGrid(nx, ny, plane));
  out.fill([&](Vec2 p) {
    Vec3 world;
    switch (axis) {
      case SliceAxis::kZ: world = {p.x, p.y, coord}; break;
      case SliceAxis::kY: world = {p.x, coord, p.y}; break;
      case SliceAxis::kX: world = {coord, p.x, p.y}; break;
    }
    const Vec3 v = volume.sample(world);
    switch (axis) {
      case SliceAxis::kZ: return Vec2{v.x, v.y};
      case SliceAxis::kY: return Vec2{v.x, v.z};
      case SliceAxis::kX: return Vec2{v.y, v.z};
    }
    return Vec2{};
  });
  return out;
}

namespace analytic3d {

VolumeField abc_flow(double a, double b, double c, int resolution) {
  const double two_pi = 2.0 * std::numbers::pi;
  VolumeField volume(resolution, resolution, resolution,
                     Box{0, 0, 0, two_pi, two_pi, two_pi});
  volume.fill([a, b, c](Vec3 p) {
    return Vec3{a * std::sin(p.z) + c * std::cos(p.y),
                b * std::sin(p.x) + a * std::cos(p.z),
                c * std::sin(p.y) + b * std::cos(p.x)};
  });
  return volume;
}

}  // namespace analytic3d
}  // namespace dcsn::field
