// Compiler-checked locking discipline: Clang Thread Safety Analysis
// attribute macros and annotated synchronization primitives.
//
// Every mutex-protected member in the concurrent runtime (core::Runtime,
// core::TileStore, core::SynthesisService, util::BoundedQueue,
// render::GraphicsPipe, render::Bus, render::FramebufferPool, the
// synthesizers) declares *which* mutex guards it via DCSN_GUARDED_BY, and
// every function with a locking precondition declares it via DCSN_REQUIRES.
// Compiled with clang under `-Wthread-safety -Werror=thread-safety` (the
// `analyze` CMake preset, driven by scripts/analyze.sh), a lock-discipline
// violation — touching a guarded member without its mutex, double-locking,
// leaking a lock — is a *build error*, not a hope that a test provokes the
// race under TSan.
//
// On compilers without the attributes (GCC — the default toolchain) the
// macros expand to nothing and the wrappers degrade to their std::
// equivalents with zero overhead; scripts/lock_lint.py then enforces the
// textual half of the discipline (no raw std primitives, no unannotated
// members in mutex-owning classes) so the annotations cannot rot while the
// tree is built with GCC only.
//
// The vocabulary mirrors the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and the
// conventional capability wrappers (absl::Mutex, Chromium's
// base/thread_annotations.h): util::Mutex is a CAPABILITY, util::MutexLock
// is a SCOPED_CAPABILITY modeled on std::unique_lock (always constructed
// locked; supports early unlock()/relock() for the unlock-before-notify
// pattern), util::CondVar waits on a MutexLock. The condition-variable
// wait's internal release/reacquire is deliberately invisible to the
// analysis — the capability is treated as continuously held across wait(),
// which matches how the guarded data may actually be used around it.
#pragma once

#include <condition_variable>  // lock-lint: allow-std (the wrapper layer itself)
#include <mutex>               // lock-lint: allow-std (the wrapper layer itself)
#include <shared_mutex>        // lock-lint: allow-std (the wrapper layer itself)
#include <utility>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DCSN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DCSN_THREAD_ANNOTATION
#define DCSN_THREAD_ANNOTATION(x)  // expands to nothing outside clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define DCSN_CAPABILITY(x) DCSN_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires on construction, releases on destruction.
#define DCSN_SCOPED_CAPABILITY DCSN_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while `x` is held.
#define DCSN_GUARDED_BY(x) DCSN_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by `x`.
#define DCSN_PT_GUARDED_BY(x) DCSN_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function precondition: the caller holds the capability exclusively.
#define DCSN_REQUIRES(...) DCSN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function precondition: the caller holds the capability at least shared.
#define DCSN_REQUIRES_SHARED(...) \
  DCSN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (and the caller must not hold it).
#define DCSN_ACQUIRE(...) DCSN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DCSN_ACQUIRE_SHARED(...) \
  DCSN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (which the caller must hold).
#define DCSN_RELEASE(...) DCSN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DCSN_RELEASE_SHARED(...) \
  DCSN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define DCSN_TRY_ACQUIRE(...) \
  DCSN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must be called with the capability NOT held (deadlock guard).
#define DCSN_EXCLUDES(...) DCSN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Assert-at-runtime that the capability is held (analysis trusts it).
#define DCSN_ASSERT_CAPABILITY(x) DCSN_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define DCSN_RETURN_CAPABILITY(x) DCSN_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disable the analysis for one function. Every use must
/// explain itself in a comment — see docs/STATIC_ANALYSIS.md.
#define DCSN_NO_THREAD_SAFETY_ANALYSIS \
  DCSN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dcsn::util {

class CondVar;
class MutexLock;

/// std::mutex annotated as a thread-safety capability. Prefer MutexLock over
/// calling lock()/unlock() directly (scripts/lock_lint.py bans direct calls
/// outside this header).
class DCSN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DCSN_ACQUIRE() { m_.lock(); }
  void unlock() DCSN_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() DCSN_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex m_;
};

/// RAII lock over util::Mutex, modeled on std::unique_lock: constructed
/// locked, destructor releases if still held, and unlock()/lock() support
/// the unlock-before-notify and unlock-around-slow-work patterns the queue
/// and service use.
class DCSN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DCSN_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() DCSN_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() DCSN_RELEASE() { lock_.unlock(); }
  void lock() DCSN_ACQUIRE() { lock_.lock(); }
  [[nodiscard]] bool owns_lock() const noexcept { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable waiting on a util::MutexLock. The capability is
/// treated as continuously held across a wait (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Predicate>
  void wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <class Rep, class Period, class Predicate>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) {
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <class Clock, class Duration, class Predicate>
  bool wait_until(MutexLock& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) {
    return cv_.wait_until(lock.lock_, deadline, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex annotated as a shared capability (reader/writer).
class DCSN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DCSN_ACQUIRE() { m_.lock(); }
  void unlock() DCSN_RELEASE() { m_.unlock(); }
  void lock_shared() DCSN_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() DCSN_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// Exclusive (writer) RAII lock over util::SharedMutex.
class DCSN_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) DCSN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();  // lock-lint: allow-direct-lock (the RAII wrapper itself)
  }
  ~WriterLock() DCSN_RELEASE() {
    mutex_.unlock();  // lock-lint: allow-direct-lock (the RAII wrapper itself)
  }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Shared (reader) RAII lock over util::SharedMutex.
class DCSN_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) DCSN_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();  // lock-lint: allow-direct-lock (the RAII wrapper itself)
  }
  ~ReaderLock() DCSN_RELEASE() {
    mutex_.unlock_shared();  // lock-lint: allow-direct-lock (the RAII wrapper itself)
  }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace dcsn::util
