// Explicit-SIMD kernel tiers + runtime dispatch. See simd_dispatch.hpp for
// the determinism contract; the one-line version: every lane performs the
// exact IEEE operations of the scalar expression — multiply, add, subtract,
// compare-and-select — in the same order, with no FMA and no reassociation,
// so all tiers return byte-identical results and the contribution lattice
// stays exact. tests/test_simd.cpp asserts the byte equality per kernel and
// per tier; the determinism lint (rule D4) keeps unquantized vector
// accumulation from sneaking into this file.
#include "util/simd_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"
#include "util/simd.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace dcsn::util::simd {

namespace {

// Staging geometry shared by the non-gathering tiers: texels for one chunk
// of a span live in a small stack SoA buffer (contiguous floats, no
// allocation), then a straight-line blend kernel runs over them. These are
// the same constants the rasterizer used before the hoist — performance of
// the scalar tier IS the pre-dispatch span kernel.
constexpr std::size_t kRowTile = 256;   // texel staging chunk
constexpr std::size_t kFusedSpan = 16;  // below this, fused stepping wins

// The scalar fixed-point bilinear fetch, shared verbatim by every tier's
// remainder loop. Mirrors render::SpotProfile::RowSampler::sample_at bit
// for bit: 32.32 position step in exact int64 arithmetic, low-side clamp,
// shift/mask split, three single-rounded lerps.
inline float bilinear_at(const SampleSpan& s, std::size_t k) {
  std::int64_t fx = s.fx0 + static_cast<std::int64_t>(k) * s.dfx;
  std::int64_t fy = s.fy0 + static_cast<std::int64_t>(k) * s.dfy;
  fx = fx < 0 ? 0 : fx;
  fy = fy < 0 ? 0 : fy;
  const int x0 = static_cast<int>(fx >> 32);
  const int y0 = static_cast<int>(fy >> 32);
  const float tx = static_cast<float>(static_cast<std::uint32_t>(fx)) * 0x1p-32f;
  const float ty = static_cast<float>(static_cast<std::uint32_t>(fy)) * 0x1p-32f;
  const float* row0 = s.table + static_cast<std::size_t>(y0) * s.stride;
  const float* row1 = row0 + s.stride;
  const float a = row0[x0] + (row0[x0 + 1] - row0[x0]) * tx;
  const float b = row1[x0] + (row1[x0 + 1] - row1[x0]) * tx;
  return a + (b - a) * ty;
}

// ---------------------------------------------------------------------------
// Scalar tier: the util/simd.hpp portable kernels, plus the staged span
// sampler exactly as the rasterizer's pre-SoA hot loop wrote it.
// ---------------------------------------------------------------------------

void add_portable(float* dst, const float* src, std::size_t n) {
  simd::add(dst, src, n);
}
void add_scaled_portable(float* dst, const float* src, float w, std::size_t n) {
  simd::add_scaled(dst, src, w, n);
}
void max_scaled_portable(float* dst, const float* src, float w, std::size_t n) {
  simd::max_scaled(dst, src, w, n);
}
void max_with_portable(float* dst, float v, std::size_t n) {
  simd::max_with(dst, v, n);
}
void quantize_portable(float* dst, const float* src, std::size_t n) {
  simd::quantize_span(dst, src, n);
}

template <bool Additive>
void sample_row_portable(float* dst, const SampleSpan& s, std::size_t n) {
  if (n < kFusedSpan) {
    // Short span: fused step+sample+blend, no staging overhead.
    for (std::size_t k = 0; k < n; ++k) {
      const float value = quantize_contribution(s.weight * bilinear_at(s, k));
      if constexpr (Additive) {
        dst[k] += value;
      } else {
        dst[k] = dst[k] < value ? value : dst[k];
      }
    }
    return;
  }
  // Long span: stage texels into the stack SoA buffer, then run the
  // straight-line blend kernel over the contiguous floats.
  float texels[kRowTile];
  std::size_t k = 0;
  while (k < n) {
    const std::size_t chunk = n - k < kRowTile ? n - k : kRowTile;
#pragma omp simd
    for (std::size_t i = 0; i < chunk; ++i) texels[i] = bilinear_at(s, k + i);
    if constexpr (Additive) {
      simd::add_scaled(dst + k, texels, s.weight, chunk);
    } else {
      simd::max_scaled(dst + k, texels, s.weight, chunk);
    }
    k += chunk;
  }
}

template <bool Additive>
void sample_rows_portable(float* const* dst, const SampleSpan* spans,
                          const std::uint32_t* lens, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    sample_row_portable<Additive>(dst[i], spans[i], lens[i]);
  }
}

constexpr KernelTable kScalarTable = {
    &add_portable,        &add_scaled_portable,
    &max_scaled_portable, &max_with_portable,
    &quantize_portable,   &sample_row_portable<true>,
    &sample_row_portable<false>,
    &sample_rows_portable<true>,
    &sample_rows_portable<false>,
};

// ---------------------------------------------------------------------------
// SSE2 tier (x86-64 baseline): 128-bit lanes. Select is spelled with
// and/andnot/or (no SSE4.1 blendv at this tier); comparisons are the quiet
// ordered forms, so a NaN lane selects the scalar expression's branch.
// ---------------------------------------------------------------------------
#if defined(__x86_64__)

// mask ? b : a, bit-select semantics (mask lanes are all-ones/all-zeros).
inline __m128 select128(__m128 a, __m128 b, __m128 mask) {
  return _mm_or_ps(_mm_and_ps(mask, b), _mm_andnot_ps(mask, a));
}

// The lattice snap, lane-for-lane identical to quantize_contribution:
// the same three single-rounded ops, the same negated in-range guard
// (a NaN lane fails both compares and passes through untouched).
inline __m128 quantize128(__m128 v) {
  const __m128 x = _mm_mul_ps(v, _mm_set1_ps(kContributionScale));
  const __m128 in_range = _mm_and_ps(_mm_cmpgt_ps(x, _mm_set1_ps(-4194304.0f)),
                                     _mm_cmplt_ps(x, _mm_set1_ps(4194304.0f)));
  const __m128 magic = _mm_set1_ps(12582912.0f);  // 1.5 * 2^23
  const __m128 snapped = _mm_mul_ps(_mm_sub_ps(_mm_add_ps(x, magic), magic),
                                    _mm_set1_ps(kContributionQuantum));
  return select128(v, snapped, in_range);
}

void add_sse2(float* dst, const float* src, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // determinism: lattice-exact — both operands hold in-range lattice sums
    const __m128 sum = _mm_add_ps(_mm_loadu_ps(dst + k), _mm_loadu_ps(src + k));
    _mm_storeu_ps(dst + k, sum);
  }
  if (k < n) simd::add(dst + k, src + k, n - k);
}

void add_scaled_sse2(float* dst, const float* src, float w, std::size_t n) {
  const __m128 wv = _mm_set1_ps(w);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128 s = quantize128(_mm_mul_ps(wv, _mm_loadu_ps(src + k)));
    _mm_storeu_ps(dst + k, _mm_add_ps(_mm_loadu_ps(dst + k), s));
  }
  if (k < n) simd::add_scaled(dst + k, src + k, w, n - k);
}

void max_scaled_sse2(float* dst, const float* src, float w, std::size_t n) {
  const __m128 wv = _mm_set1_ps(w);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128 s = quantize128(_mm_mul_ps(wv, _mm_loadu_ps(src + k)));
    const __m128 d = _mm_loadu_ps(dst + k);
    _mm_storeu_ps(dst + k, select128(d, s, _mm_cmplt_ps(d, s)));
  }
  if (k < n) simd::max_scaled(dst + k, src + k, w, n - k);
}

void max_with_sse2(float* dst, float v, std::size_t n) {
  const __m128 s = _mm_set1_ps(v);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128 d = _mm_loadu_ps(dst + k);
    _mm_storeu_ps(dst + k, select128(d, s, _mm_cmplt_ps(d, s)));
  }
  if (k < n) simd::max_with(dst + k, v, n - k);
}

void quantize_sse2(float* dst, const float* src, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm_storeu_ps(dst + k, quantize128(_mm_loadu_ps(src + k)));
  }
  if (k < n) simd::quantize_span(dst + k, src + k, n - k);
}

// SSE2 has no gather: stage texels with the scalar fetch (identical bits),
// then blend the contiguous chunk with the 128-bit kernels.
template <bool Additive>
void sample_row_sse2(float* dst, const SampleSpan& s, std::size_t n) {
  if (n < kFusedSpan) {
    sample_row_portable<Additive>(dst, s, n);
    return;
  }
  float texels[kRowTile];
  std::size_t k = 0;
  while (k < n) {
    const std::size_t chunk = n - k < kRowTile ? n - k : kRowTile;
    for (std::size_t i = 0; i < chunk; ++i) texels[i] = bilinear_at(s, k + i);
    if constexpr (Additive) {
      add_scaled_sse2(dst + k, texels, s.weight, chunk);
    } else {
      max_scaled_sse2(dst + k, texels, s.weight, chunk);
    }
    k += chunk;
  }
}

template <bool Additive>
void sample_rows_sse2(float* const* dst, const SampleSpan* spans,
                      const std::uint32_t* lens, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    sample_row_sse2<Additive>(dst[i], spans[i], lens[i]);
  }
}

constexpr KernelTable kSse2Table = {
    &add_sse2,        &add_scaled_sse2,
    &max_scaled_sse2, &max_with_sse2,
    &quantize_sse2,   &sample_row_sse2<true>,
    &sample_row_sse2<false>,
    &sample_rows_sse2<true>,
    &sample_rows_sse2<false>,
};

// ---------------------------------------------------------------------------
// AVX2 tier: 256-bit lanes and the fully fused span sampler — the 32.32
// fixed-point walk runs eight fragments at a time in 64-bit integer lanes,
// the four bilinear neighbours come in as gathers from the padded profile
// table, and the lerp/quantize/blend is straight-line vector float math.
// Compiled with the per-function target attribute, so the translation unit
// itself needs no -mavx2 and the binary still boots on SSE2-only hosts.
// ---------------------------------------------------------------------------
#define DCSN_TARGET_AVX2 __attribute__((target("avx2")))

DCSN_TARGET_AVX2 inline __m256 quantize256(__m256 v) {
  const __m256 x = _mm256_mul_ps(v, _mm256_set1_ps(kContributionScale));
  const __m256 in_range =
      _mm256_and_ps(_mm256_cmp_ps(x, _mm256_set1_ps(-4194304.0f), _CMP_GT_OQ),
                    _mm256_cmp_ps(x, _mm256_set1_ps(4194304.0f), _CMP_LT_OQ));
  const __m256 magic = _mm256_set1_ps(12582912.0f);  // 1.5 * 2^23
  const __m256 snapped = _mm256_mul_ps(_mm256_sub_ps(_mm256_add_ps(x, magic), magic),
                                       _mm256_set1_ps(kContributionQuantum));
  return _mm256_blendv_ps(v, snapped, in_range);
}

void DCSN_TARGET_AVX2 add_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    // determinism: lattice-exact — both operands hold in-range lattice sums
    const __m256 sum = _mm256_add_ps(_mm256_loadu_ps(dst + k), _mm256_loadu_ps(src + k));
    _mm256_storeu_ps(dst + k, sum);
  }
  if (k < n) simd::add(dst + k, src + k, n - k);
}

void DCSN_TARGET_AVX2 add_scaled_avx2(float* dst, const float* src, float w,
                                      std::size_t n) {
  const __m256 wv = _mm256_set1_ps(w);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256 s = quantize256(_mm256_mul_ps(wv, _mm256_loadu_ps(src + k)));
    _mm256_storeu_ps(dst + k, _mm256_add_ps(_mm256_loadu_ps(dst + k), s));
  }
  if (k < n) simd::add_scaled(dst + k, src + k, w, n - k);
}

void DCSN_TARGET_AVX2 max_scaled_avx2(float* dst, const float* src, float w,
                                      std::size_t n) {
  const __m256 wv = _mm256_set1_ps(w);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256 s = quantize256(_mm256_mul_ps(wv, _mm256_loadu_ps(src + k)));
    const __m256 d = _mm256_loadu_ps(dst + k);
    // dst < s ? s : dst — blendv, not maxps, to keep scalar NaN semantics.
    _mm256_storeu_ps(dst + k, _mm256_blendv_ps(d, s, _mm256_cmp_ps(d, s, _CMP_LT_OQ)));
  }
  if (k < n) simd::max_scaled(dst + k, src + k, w, n - k);
}

void DCSN_TARGET_AVX2 max_with_avx2(float* dst, float v, std::size_t n) {
  const __m256 s = _mm256_set1_ps(v);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256 d = _mm256_loadu_ps(dst + k);
    _mm256_storeu_ps(dst + k, _mm256_blendv_ps(d, s, _mm256_cmp_ps(d, s, _CMP_LT_OQ)));
  }
  if (k < n) simd::max_with(dst + k, v, n - k);
}

void DCSN_TARGET_AVX2 quantize_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm256_storeu_ps(dst + k, quantize256(_mm256_loadu_ps(src + k)));
  }
  if (k < n) simd::quantize_span(dst + k, src + k, n - k);
}

// Bit-exact unsigned 32 -> float: split into exact 16-bit halves; the one
// float add rounds once, which is precisely what the scalar
// static_cast<float>(uint32) performs (round-to-nearest-even of the exact
// value). cvtepi32 alone would misread bit 31 as a sign.
DCSN_TARGET_AVX2 inline __m256 u32_to_float(__m256i u) {
  const __m256i lo16 = _mm256_and_si256(u, _mm256_set1_epi32(0xffff));
  const __m256i hi16 = _mm256_srli_epi32(u, 16);
  // determinism: exact 16-bit halves — the one add rounds once, like the cast
  return _mm256_add_ps(
      _mm256_mul_ps(_mm256_cvtepi32_ps(hi16), _mm256_set1_ps(65536.0f)),
      _mm256_cvtepi32_ps(lo16));
}

// Lane-count -> vmaskmovps/vgatherdps mask: loading 8 ints at &[8 - m]
// yields m leading all-ones lanes. The masked tail is what lets the fused
// walk cover the workload's dominant 5..16-fragment spans end to end —
// masked-off lanes touch no memory, so the active lanes stay bit-identical
// to the scalar walk and out-of-span positions are never dereferenced.
alignas(32) constexpr std::int32_t kTailMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                   0,  0,  0,  0,  0,  0,  0,  0};

// The eight 32.32 lane positions, split per axis into the signed high word
// (texel index) and the unsigned low word (lerp fraction), each in a single
// 8x32 register. Stepping is exact multiword integer arithmetic — add the
// step's low word, detect the unsigned carry, fold step-high plus carry
// into the high word — so every lane position equals the scalar sampler's
// int64 `f0 + k * df` bit for bit, while the per-block work stays in cheap
// full-width 32-bit ops (no 64-bit lane pairs to clamp, shift and re-pack).
struct Avx2Span {
  __m256i x_hi, x_lo, y_hi, y_lo;          // lane positions, split 32/32
  __m256i sx_hi, sx_lo_f, sy_hi, sy_lo_f;  // step high; step low sign-flipped
  __m256i sx_lo, sy_lo;                    // step low, raw
  __m256i stride_v;
  __m256 wv;
  const float* table;
};

// Packs one 32-bit half of eight 64-bit lanes (lo = lanes 0-3, hi = 4-7)
// into a single 8x32 vector, preserving lane order. `kHalf` picks the
// dword: 0x88 keeps the low words, 0xdd the high words. shufps is a raw bit
// move, so routing integer lanes through the float domain is exact; two
// shuffles per split instead of the four a shuffle+blend sequence needs.
template <int kHalf>
DCSN_TARGET_AVX2 inline __m256i pack_shufps(__m256i lo, __m256i hi) {
  const __m256 m = _mm256_shuffle_ps(_mm256_castsi256_ps(lo),
                                     _mm256_castsi256_ps(hi), kHalf);
  return _mm256_permute4x64_epi64(_mm256_castps_si256(m), 0xd8);
}

// Lanes k = 0..3 of `f0 + k*df` as exact 4x64 lanes, built with broadcast
// loads and vpmuludq ramps. The obvious _mm256_setr_epi64x spelling costs a
// chain of GPR->vector inserts (port-5 serialized, measurably slower);
// here k*df is assembled mod 2^64 from k*lo32(df) (vpmuludq reads only the
// low dword of each lane, the product is exact) plus k*hi32(df) shifted up
// — identical bits, ~3 cycles cheaper per span.
DCSN_TARGET_AVX2 inline __m256i avx2_axis_ramp(std::int64_t f0, std::int64_t df) {
  const __m256i r03 = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i bf = _mm256_set1_epi64x(f0);
  const __m256i bd = _mm256_set1_epi64x(df);
  const __m256i p_lo = _mm256_mul_epu32(r03, bd);
  const __m256i p_hi =
      _mm256_slli_epi64(_mm256_mul_epu32(r03, _mm256_srli_epi64(bd, 32)), 32);
  return _mm256_add_epi64(bf, _mm256_add_epi64(p_lo, p_hi));
}

DCSN_TARGET_AVX2 inline Avx2Span avx2_span_positions(const SampleSpan& s) {
  // Build the eight exact int64 positions once, then split into the 32/32
  // working form; everything after steps in 32-bit lanes. Step constants
  // are NOT set here — avx2_span_steps() folds them in only when the span
  // has a second block, so the workload's dominant single-block spans skip
  // six broadcasts.
  const __m256i fx_lo = avx2_axis_ramp(s.fx0, s.dfx);
  const __m256i fx_hi = _mm256_add_epi64(fx_lo, _mm256_set1_epi64x(4 * s.dfx));
  const __m256i fy_lo = avx2_axis_ramp(s.fy0, s.dfy);
  const __m256i fy_hi = _mm256_add_epi64(fy_lo, _mm256_set1_epi64x(4 * s.dfy));
  Avx2Span v;
  v.x_hi = pack_shufps<0xdd>(fx_lo, fx_hi);
  v.x_lo = pack_shufps<0x88>(fx_lo, fx_hi);
  v.y_hi = pack_shufps<0xdd>(fy_lo, fy_hi);
  v.y_lo = pack_shufps<0x88>(fy_lo, fy_hi);
  v.stride_v = _mm256_set1_epi32(static_cast<int>(s.stride));
  v.wv = _mm256_set1_ps(s.weight);
  v.table = s.table;
  return v;
}

DCSN_TARGET_AVX2 inline void avx2_span_steps(Avx2Span& v, const SampleSpan& s) {
  const std::int64_t step_x = 8 * s.dfx;
  const std::int64_t step_y = 8 * s.dfy;
  const auto sign = _mm256_set1_epi32(static_cast<std::int32_t>(0x80000000));
  v.sx_hi = _mm256_set1_epi32(static_cast<std::int32_t>(step_x >> 32));
  v.sx_lo = _mm256_set1_epi32(static_cast<std::int32_t>(step_x));
  v.sx_lo_f = _mm256_xor_si256(v.sx_lo, sign);
  v.sy_hi = _mm256_set1_epi32(static_cast<std::int32_t>(step_y >> 32));
  v.sy_lo = _mm256_set1_epi32(static_cast<std::int32_t>(step_y));
  v.sy_lo_f = _mm256_xor_si256(v.sy_lo, sign);
}

// Step all lanes by eight fragments: exact 64-bit add, lane-split. The
// unsigned carry out of the low word is `new_lo <u step_lo` (sign-flip
// compare; the flipped step is precomputed), and the carry mask is all-ones
// where set, so *subtracting* it adds one to the high word.
DCSN_TARGET_AVX2 inline void avx2_span_advance(Avx2Span& v) {
  const auto sign = _mm256_set1_epi32(static_cast<std::int32_t>(0x80000000));
  const __m256i nx_lo = _mm256_add_epi32(v.x_lo, v.sx_lo);
  const __m256i cx =
      _mm256_cmpgt_epi32(v.sx_lo_f, _mm256_xor_si256(nx_lo, sign));
  v.x_hi = _mm256_sub_epi32(_mm256_add_epi32(v.x_hi, v.sx_hi), cx);
  v.x_lo = nx_lo;
  const __m256i ny_lo = _mm256_add_epi32(v.y_lo, v.sy_lo);
  const __m256i cy =
      _mm256_cmpgt_epi32(v.sy_lo_f, _mm256_xor_si256(ny_lo, sign));
  v.y_hi = _mm256_sub_epi32(_mm256_add_epi32(v.y_hi, v.sy_hi), cy);
  v.y_lo = ny_lo;
}

// One block of the fused sampler. The lane positions arrive pre-split into
// texel index (signed high word) and lerp fraction (low word); the int64
// position is negative exactly when its high word is, so the scalar
// `fx < 0 ? 0 : fx` clamp is one compare-and-mask over both words. The four
// bilinear neighbours come in as gathers under `gmask` (all-ones for a full
// block — the same vgatherdps the unmasked intrinsic emits; 64-bit pair
// gathers were tried and measured slower here), and everything after is the
// scalar lerp/quantize expression, lane-for-lane. Masked-off lanes never
// touch memory, so a tail block reads nothing past the span.
DCSN_TARGET_AVX2 inline __m256 avx2_span_value(const Avx2Span& v, __m256 gmask) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i neg_x = _mm256_cmpgt_epi32(zero, v.x_hi);
  const __m256i neg_y = _mm256_cmpgt_epi32(zero, v.y_hi);
  const __m256i x0 = _mm256_andnot_si256(neg_x, v.x_hi);
  const __m256i y0 = _mm256_andnot_si256(neg_y, v.y_hi);
  const __m256i frac_x = _mm256_andnot_si256(neg_x, v.x_lo);
  const __m256i frac_y = _mm256_andnot_si256(neg_y, v.y_lo);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(y0, v.stride_v), x0);
  const __m256i idx1 = _mm256_add_epi32(idx, v.stride_v);
  const __m256 zf = _mm256_setzero_ps();
  const __m256 r00 = _mm256_mask_i32gather_ps(zf, v.table, idx, gmask, 4);
  const __m256 r01 =
      _mm256_mask_i32gather_ps(zf, v.table, _mm256_add_epi32(idx, one), gmask, 4);
  const __m256 r10 = _mm256_mask_i32gather_ps(zf, v.table, idx1, gmask, 4);
  const __m256 r11 =
      _mm256_mask_i32gather_ps(zf, v.table, _mm256_add_epi32(idx1, one), gmask, 4);
  const __m256 inv232 = _mm256_set1_ps(0x1p-32f);
  const __m256 tx = _mm256_mul_ps(u32_to_float(frac_x), inv232);
  const __m256 ty = _mm256_mul_ps(u32_to_float(frac_y), inv232);
  // The scalar bilinear lerp, three single-rounded mul/adds per lane.
  const __m256 a = _mm256_add_ps(r00, _mm256_mul_ps(_mm256_sub_ps(r01, r00), tx));
  const __m256 b = _mm256_add_ps(r10, _mm256_mul_ps(_mm256_sub_ps(r11, r10), tx));
  const __m256 texel = _mm256_add_ps(a, _mm256_mul_ps(_mm256_sub_ps(b, a), ty));
  return quantize256(_mm256_mul_ps(v.wv, texel));
}

// The fused span sampler: full eight-lane blocks while more than one block
// remains, then ONE masked block for whatever is left (1..8 lanes; the mask
// is all-ones when exactly eight remain, in which case vgatherdps and
// vmaskmovps touch the same memory the unmasked forms would). Masked-off
// lanes never touch memory, so the active lanes are the same bits the
// scalar loop would produce and nothing reads past the span. One
// straight-line path for every length — even one-fragment spans take the
// masked block: under the workload's mixed span-length stream, every
// data-dependent branch (a short-span scalar fallback, masked-vs-scalar
// tail choice, scalar remainder trip counts) costs more in mispredicts
// than a masked block ever costs in lanes.
// One masked block: blends `rem` (1..8) lanes of the span's current
// position into dst. Masked-off lanes never touch memory.
template <bool Additive>
DCSN_TARGET_AVX2 inline void avx2_masked_block(float* dst, const Avx2Span& v,
                                               std::size_t rem) {
  const __m256i im = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTailMask + (8 - rem)));
  const __m256 value = avx2_span_value(v, _mm256_castsi256_ps(im));
  const __m256 d = _mm256_maskload_ps(dst, im);
  if constexpr (Additive) {
    // determinism: lattice-exact — avx2_span_value returns quantized lanes
    _mm256_maskstore_ps(dst, im, _mm256_add_ps(d, value));
  } else {
    _mm256_maskstore_ps(
        dst, im,
        _mm256_blendv_ps(d, value, _mm256_cmp_ps(d, value, _CMP_LT_OQ)));
  }
}

// Full eight-lane blocks while more than one block remains, then one masked
// block for the 1..8 leftover lanes. Positions (and steps, when n > 8) must
// already be loaded into `v`.
template <bool Additive>
DCSN_TARGET_AVX2 inline void avx2_row_blocks(float* dst, Avx2Span& v,
                                             std::size_t n) {
  std::size_t k = 0;
  if (n > 8) {
    const __m256 full = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    do {
      const __m256 value = avx2_span_value(v, full);
      const __m256 d = _mm256_loadu_ps(dst + k);
      if constexpr (Additive) {
        // determinism: lattice-exact — avx2_span_value returns quantized lanes
        _mm256_storeu_ps(dst + k, _mm256_add_ps(d, value));
      } else {
        // dst < s ? s : dst — blendv, not maxps, to keep scalar NaN semantics.
        _mm256_storeu_ps(
            dst + k,
            _mm256_blendv_ps(d, value, _mm256_cmp_ps(d, value, _CMP_LT_OQ)));
      }
      avx2_span_advance(v);
      k += 8;
    } while (n - k > 8);
  }
  avx2_masked_block<Additive>(dst + k, v, n - k);
}

template <bool Additive>
void DCSN_TARGET_AVX2 sample_row_avx2(float* dst, const SampleSpan& s,
                                      std::size_t n) {
  if (n == 0) return;
  Avx2Span v = avx2_span_positions(s);
  if (n > 8) avx2_span_steps(v, s);
  avx2_row_blocks<Additive>(dst, v, n);
}

// One packed pair block: span a -> dst_a (na <= 4 lanes 0-3), span b ->
// dst_b (nb <= 4 lanes 4-7). The half masks load straight from kTailMask
// (na ones in four lanes = the xmm at &kTailMask[8 - na]); destinations are
// touched with per-half xmm maskmov, so each span's framebuffer access is
// exactly the single-span path's.
template <bool Additive>
DCSN_TARGET_AVX2 inline void avx2_pair_block(float* dst_a, float* dst_b,
                                             const Avx2Span& v, std::size_t na,
                                             std::size_t nb) {
  const __m128i im_a = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(kTailMask + (8 - na)));
  const __m128i im_b = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(kTailMask + (8 - nb)));
  const __m256i im =
      _mm256_inserti128_si256(_mm256_castsi128_si256(im_a), im_b, 1);
  const __m256 value = avx2_span_value(v, _mm256_castsi256_ps(im));
  const __m128 da = _mm_maskload_ps(dst_a, im_a);
  const __m128 db = _mm_maskload_ps(dst_b, im_b);
  const __m256 d =
      _mm256_insertf128_ps(_mm256_castps128_ps256(da), db, 1);
  __m256 out;
  if constexpr (Additive) {
    // determinism: lattice-exact — avx2_span_value returns quantized lanes
    out = _mm256_add_ps(d, value);
  } else {
    out = _mm256_blendv_ps(d, value, _mm256_cmp_ps(d, value, _CMP_LT_OQ));
  }
  _mm_maskstore_ps(dst_a, im_a, _mm256_castps256_ps128(out));
  _mm_maskstore_ps(dst_b, im_b, _mm256_extractf128_ps(out, 1));
}

// A pending 1..4-lane block: the computed low-half lane state of a span
// remainder, parked until a partner shows up. This is where the batched
// kernel earns its keep — the spans of one batch never alias, so processing
// order cannot change a single output byte, which licenses holding a
// remainder back and packing it with the NEXT remainder into one 8-lane
// block (lanes 0-3 from the first, 4-7 from the second), halving the
// gather/lerp/quantize cost of the short work. Under the production span
// histogram roughly a third of spans are <= 4 fragments outright, and the
// multi-block spans park their tails here too.
struct Avx2Tail {
  float* dst;
  std::size_t rem;  // 1..4
  const float* table;
  std::size_t stride;
  __m256i x_hi, x_lo, y_hi, y_lo;
  __m256i stride_v;
  __m256 wv;
};

DCSN_TARGET_AVX2 inline void avx2_park_tail(Avx2Tail& t, float* dst,
                                            const Avx2Span& v,
                                            const SampleSpan& s,
                                            std::size_t rem) {
  t.dst = dst;
  t.rem = rem;
  t.table = v.table;
  t.stride = s.stride;
  t.x_hi = v.x_hi;
  t.x_lo = v.x_lo;
  t.y_hi = v.y_hi;
  t.y_lo = v.y_lo;
  t.stride_v = v.stride_v;
  t.wv = v.wv;
}

// Merge the parked low half with the incoming remainder's low half: four
// integer inserts for the positions, one float insert for the weight. Both
// remainders' live lanes sit in lanes 0..rem-1, so the combine is pure
// 128-bit lane surgery; stride/table come from the (checked equal) pair.
DCSN_TARGET_AVX2 inline Avx2Span avx2_merge_tails(const Avx2Tail& t,
                                                  const Avx2Span& v) {
  Avx2Span m;
  m.x_hi = _mm256_inserti128_si256(t.x_hi, _mm256_castsi256_si128(v.x_hi), 1);
  m.x_lo = _mm256_inserti128_si256(t.x_lo, _mm256_castsi256_si128(v.x_lo), 1);
  m.y_hi = _mm256_inserti128_si256(t.y_hi, _mm256_castsi256_si128(v.y_hi), 1);
  m.y_lo = _mm256_inserti128_si256(t.y_lo, _mm256_castsi256_si128(v.y_lo), 1);
  m.wv = _mm256_insertf128_ps(t.wv, _mm256_castps256_ps128(v.wv), 1);
  m.stride_v = t.stride_v;
  m.table = t.table;
  return m;
}

DCSN_TARGET_AVX2 inline Avx2Span avx2_tail_span(const Avx2Tail& t) {
  Avx2Span v;
  v.x_hi = t.x_hi;
  v.x_lo = t.x_lo;
  v.y_hi = t.y_hi;
  v.y_lo = t.y_lo;
  v.stride_v = t.stride_v;
  v.wv = t.wv;
  v.table = t.table;
  return v;
}

// The batched sampler: full blocks run immediately; every 1..4-lane
// remainder — a short span or a multi-block span's tail — is parked and
// packed in pairs (see Avx2Tail above). A remainder of 5..8 lanes fills a
// block well enough on its own.
template <bool Additive>
void DCSN_TARGET_AVX2 sample_rows_avx2(float* const* dst, const SampleSpan* spans,
                                       const std::uint32_t* lens,
                                       std::size_t count) {
  Avx2Tail pend;
  bool pending = false;
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t n = lens[i];
    if (n == 0) continue;
    const SampleSpan& s = spans[i];
    float* d = dst[i];
    Avx2Span v = avx2_span_positions(s);
    if (n > 8) {
      avx2_span_steps(v, s);
      const __m256 full = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
      do {
        const __m256 value = avx2_span_value(v, full);
        const __m256 dv = _mm256_loadu_ps(d);
        if constexpr (Additive) {
          // determinism: lattice-exact — avx2_span_value returns quantized
          _mm256_storeu_ps(d, _mm256_add_ps(dv, value));
        } else {
          _mm256_storeu_ps(
              d, _mm256_blendv_ps(dv, value,
                                  _mm256_cmp_ps(dv, value, _CMP_LT_OQ)));
        }
        avx2_span_advance(v);
        d += 8;
        n -= 8;
      } while (n > 8);
    }
    if (n > 4) {
      avx2_masked_block<Additive>(d, v, n);
      continue;
    }
    if (!pending) {
      avx2_park_tail(pend, d, v, s, n);
      pending = true;
      continue;
    }
    if (pend.table == s.table && pend.stride == s.stride) {
      const Avx2Span m = avx2_merge_tails(pend, v);
      avx2_pair_block<Additive>(pend.dst, d, m, pend.rem, n);
      pending = false;
    } else {  // different profiles in one batch — flush singly, park anew
      const Avx2Span pv = avx2_tail_span(pend);
      avx2_masked_block<Additive>(pend.dst, pv, pend.rem);
      avx2_park_tail(pend, d, v, s, n);
    }
  }
  if (pending) {
    const Avx2Span pv = avx2_tail_span(pend);
    avx2_masked_block<Additive>(pend.dst, pv, pend.rem);
  }
}

constexpr KernelTable kAvx2Table = {
    &add_avx2,        &add_scaled_avx2,
    &max_scaled_avx2, &max_with_avx2,
    &quantize_avx2,   &sample_row_avx2<true>,
    &sample_row_avx2<false>,
    &sample_rows_avx2<true>,
    &sample_rows_avx2<false>,
};

#endif  // __x86_64__

// ---------------------------------------------------------------------------
// NEON tier (aarch64 baseline): 128-bit lanes. vbslq selects with the
// scalar comparison's branch on NaN lanes; no vmla/fma anywhere (aarch64
// multiply-accumulate fuses, which would break lattice exactness).
// ---------------------------------------------------------------------------
#if defined(__aarch64__)

inline float32x4_t quantize_neon(float32x4_t v) {
  const float32x4_t x = vmulq_f32(v, vdupq_n_f32(kContributionScale));
  const uint32x4_t in_range = vandq_u32(vcgtq_f32(x, vdupq_n_f32(-4194304.0f)),
                                        vcltq_f32(x, vdupq_n_f32(4194304.0f)));
  const float32x4_t magic = vdupq_n_f32(12582912.0f);  // 1.5 * 2^23
  const float32x4_t snapped = vmulq_f32(vsubq_f32(vaddq_f32(x, magic), magic),
                                        vdupq_n_f32(kContributionQuantum));
  return vbslq_f32(in_range, snapped, v);
}

void add_neon(float* dst, const float* src, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // determinism: lattice-exact — both operands hold in-range lattice sums
    vst1q_f32(dst + k, vaddq_f32(vld1q_f32(dst + k), vld1q_f32(src + k)));
  }
  if (k < n) simd::add(dst + k, src + k, n - k);
}

void add_scaled_neon(float* dst, const float* src, float w, std::size_t n) {
  const float32x4_t wv = vdupq_n_f32(w);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const float32x4_t s = quantize_neon(vmulq_f32(wv, vld1q_f32(src + k)));
    vst1q_f32(dst + k, vaddq_f32(vld1q_f32(dst + k), s));
  }
  if (k < n) simd::add_scaled(dst + k, src + k, w, n - k);
}

void max_scaled_neon(float* dst, const float* src, float w, std::size_t n) {
  const float32x4_t wv = vdupq_n_f32(w);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const float32x4_t s = quantize_neon(vmulq_f32(wv, vld1q_f32(src + k)));
    const float32x4_t d = vld1q_f32(dst + k);
    // dst < s ? s : dst — select, not vmaxq, to keep scalar NaN semantics.
    vst1q_f32(dst + k, vbslq_f32(vcltq_f32(d, s), s, d));
  }
  if (k < n) simd::max_scaled(dst + k, src + k, w, n - k);
}

void max_with_neon(float* dst, float v, std::size_t n) {
  const float32x4_t s = vdupq_n_f32(v);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const float32x4_t d = vld1q_f32(dst + k);
    vst1q_f32(dst + k, vbslq_f32(vcltq_f32(d, s), s, d));
  }
  if (k < n) simd::max_with(dst + k, v, n - k);
}

void quantize_neon_span(float* dst, const float* src, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    vst1q_f32(dst + k, quantize_neon(vld1q_f32(src + k)));
  }
  if (k < n) simd::quantize_span(dst + k, src + k, n - k);
}

// NEON has no gather: stage texels with the scalar fetch, vector-blend the
// contiguous chunk.
template <bool Additive>
void sample_row_neon(float* dst, const SampleSpan& s, std::size_t n) {
  if (n < kFusedSpan) {
    sample_row_portable<Additive>(dst, s, n);
    return;
  }
  float texels[kRowTile];
  std::size_t k = 0;
  while (k < n) {
    const std::size_t chunk = n - k < kRowTile ? n - k : kRowTile;
    for (std::size_t i = 0; i < chunk; ++i) texels[i] = bilinear_at(s, k + i);
    if constexpr (Additive) {
      add_scaled_neon(dst + k, texels, s.weight, chunk);
    } else {
      max_scaled_neon(dst + k, texels, s.weight, chunk);
    }
    k += chunk;
  }
}

template <bool Additive>
void sample_rows_neon(float* const* dst, const SampleSpan* spans,
                      const std::uint32_t* lens, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    sample_row_neon<Additive>(dst[i], spans[i], lens[i]);
  }
}

constexpr KernelTable kNeonTable = {
    &add_neon,        &add_scaled_neon,
    &max_scaled_neon, &max_with_neon,
    &quantize_neon_span, &sample_row_neon<true>,
    &sample_row_neon<false>,
    &sample_rows_neon<true>,
    &sample_rows_neon<false>,
};

#endif  // __aarch64__

// ---------------------------------------------------------------------------
// Detection and dispatch
// ---------------------------------------------------------------------------

Tier detect_best() {
#if defined(__x86_64__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  return Tier::kSse2;  // architectural baseline on x86-64
#elif defined(__aarch64__)
  return Tier::kNeon;  // architectural baseline on aarch64
#else
  return Tier::kScalar;
#endif
}

Tier init_tier() {
  const Tier best = detect_best();
  const char* env = std::getenv("DCSN_SIMD");
  if (env == nullptr || *env == '\0') return best;
  Tier requested;
  if (!tier_from_name(env, requested)) {
    std::fprintf(stderr,
                 "dcsn: unknown DCSN_SIMD value '%s' "
                 "(expected scalar|sse2|avx2|neon); using %s\n",
                 env, tier_name(best));
    return best;
  }
  if (!tier_available(requested)) {
    std::fprintf(stderr, "dcsn: DCSN_SIMD=%s is not available on this host; using %s\n",
                 env, tier_name(best));
    return best;
  }
  return requested;
}

// -1 = not yet initialized. Racing first calls all compute the same value,
// so the benign double-store needs no lock; set_active_tier's later writes
// become visible to workers through the job-queue handoff that precedes any
// rasterization.
std::atomic<int> g_active_tier{-1};

}  // namespace

bool tier_available(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
#if defined(__x86_64__)
    case Tier::kSse2:
      return true;
    case Tier::kAvx2:
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2");
#endif
#if defined(__aarch64__)
    case Tier::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

std::vector<Tier> available_tiers() {
  std::vector<Tier> tiers;
  for (const Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2, Tier::kNeon}) {
    if (tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

const KernelTable& kernels_for(Tier tier) {
  DCSN_CHECK(tier_available(tier), "requested SIMD tier is not available on this host");
  switch (tier) {
#if defined(__x86_64__)
    case Tier::kSse2:
      return kSse2Table;
    case Tier::kAvx2:
      return kAvx2Table;
#endif
#if defined(__aarch64__)
    case Tier::kNeon:
      return kNeonTable;
#endif
    default:
      return kScalarTable;
  }
}

Tier active_tier() {
  int tier = g_active_tier.load(std::memory_order_acquire);
  if (tier < 0) {
    tier = static_cast<int>(init_tier());
    g_active_tier.store(tier, std::memory_order_release);
  }
  return static_cast<Tier>(tier);
}

void set_active_tier(Tier tier) {
  DCSN_CHECK(tier_available(tier), "cannot activate an unavailable SIMD tier");
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
}

const KernelTable& kernels() { return kernels_for(active_tier()); }

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
  }
  return "unknown";
}

bool tier_from_name(std::string_view name, Tier& out) {
  for (const Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2, Tier::kNeon}) {
    if (name == tier_name(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

std::string cpu_flags() {
  std::string flags;
  const auto append = [&flags](const char* name) {
    if (!flags.empty()) flags += ' ';
    flags += name;
  };
#if defined(__x86_64__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("sse2")) append("sse2");
  if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
  if (__builtin_cpu_supports("avx")) append("avx");
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("fma")) append("fma");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
#elif defined(__aarch64__)
  append("neon");
#else
  append("generic");
#endif
  return flags;
}

}  // namespace dcsn::util::simd
