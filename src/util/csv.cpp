#include "util/csv.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dcsn::util {

CsvWriter::CsvWriter(const std::string& path, std::initializer_list<std::string> columns)
    : out_(path), columns_(columns.size()) {
  bool first = true;
  for (const auto& c : columns) {
    if (!first) out_ << ',';
    out_ << c;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  DCSN_CHECK(cells.size() == columns_, "CSV row width must match header");
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << c;
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace dcsn::util
