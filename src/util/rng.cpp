#include "util/rng.hpp"

// Header-only; this translation unit anchors the library target.
