// Non-owning 2D view over contiguous row-major storage.
//
// Textures, framebuffers and simulation grids all share this access pattern;
// Span2D gives them bounds-checked (in debug) indexed access without copying
// and without committing to a particular container.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

namespace dcsn::util {

/// Row-major 2D view: element (x, y) lives at data[y * stride + x].
/// `stride` >= width allows views into sub-rectangles (texture tiles).
template <class T>
class Span2D {
 public:
  constexpr Span2D() noexcept = default;

  constexpr Span2D(T* data, int width, int height) noexcept
      : Span2D(data, width, height, width) {}

  constexpr Span2D(T* data, int width, int height, int stride) noexcept
      : data_(data), width_(width), height_(height), stride_(stride) {
    assert(width >= 0 && height >= 0 && stride >= width);
  }

  [[nodiscard]] constexpr int width() const noexcept { return width_; }
  [[nodiscard]] constexpr int height() const noexcept { return height_; }
  [[nodiscard]] constexpr int stride() const noexcept { return stride_; }
  [[nodiscard]] constexpr T* data() const noexcept { return data_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return width_ == 0 || height_ == 0; }

  [[nodiscard]] constexpr T& operator()(int x, int y) const noexcept {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::ptrdiff_t>(y) * stride_ + x];
  }

  /// One row as a contiguous span.
  [[nodiscard]] constexpr std::span<T> row(int y) const noexcept {
    assert(y >= 0 && y < height_);
    return {data_ + static_cast<std::ptrdiff_t>(y) * stride_,
            static_cast<std::size_t>(width_)};
  }

  /// Rectangular sub-view. The rectangle must lie inside the span.
  [[nodiscard]] constexpr Span2D subview(int x0, int y0, int w, int h) const noexcept {
    assert(x0 >= 0 && y0 >= 0 && w >= 0 && h >= 0);
    assert(x0 + w <= width_ && y0 + h <= height_);
    return {data_ + static_cast<std::ptrdiff_t>(y0) * stride_ + x0, w, h, stride_};
  }

  /// Implicit conversion to a const view.
  constexpr operator Span2D<const T>() const noexcept
    requires(!std::is_const_v<T>)
  {
    return {data_, width_, height_, stride_};
  }

 private:
  T* data_ = nullptr;
  int width_ = 0;
  int height_ = 0;
  int stride_ = 0;
};

}  // namespace dcsn::util
