// FNV-1a 64-bit: tiny, dependency-free content fingerprinting.
//
// Used to hash float framebuffers for the golden-frame regression suite —
// the engine is bit-deterministic (see render/rasterizer.hpp), so a frame's
// hash is a stable fingerprint on a given toolchain. FNV-1a is not a
// cryptographic hash; it only has to make an accidental collision between a
// regressed frame and its golden astronomically unlikely.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcsn::util {

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// Hashes `bytes` bytes starting at `data`; chain calls via `seed`.
[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                                         std::uint64_t seed = kFnv1aOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace dcsn::util
