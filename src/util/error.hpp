// Error handling: precondition checks that survive release builds.
//
// DCSN_CHECK throws on violated runtime preconditions (bad sizes, bad
// configuration) — these are user-reachable and must not be compiled out.
// assert() remains for internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dcsn::util {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An Error the caller may reasonably retry: the failure was transient
/// (an injected fault, a momentarily unavailable resource), not a property
/// of the request itself. core::SynthesisService retries these with bounded
/// exponential backoff when the job's SubmitOptions allow it; plain Errors
/// are permanent and fail the job immediately.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace dcsn::util

/// Throws dcsn::util::Error when `expr` is false. Always active.
#define DCSN_CHECK(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::dcsn::util::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                                (msg));                      \
    }                                                                        \
  } while (false)
