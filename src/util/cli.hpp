// Minimal command-line parsing for benches and examples.
//
// Accepts `--key=value` and bare `--flag` arguments. Benches must run with
// no arguments (the harness invokes them bare), so every option has a
// default; flags like --full unlock longer sweeps.
#pragma once

#include <map>
#include <string>

namespace dcsn::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dcsn::util
