// Thread utilities for the process-group runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dcsn::util {

/// Number of hardware threads, at least 1.
[[nodiscard]] int hardware_threads() noexcept;

/// Best-effort thread naming (visible in debuggers/profilers). No-op on
/// failure.
void set_current_thread_name(const std::string& name) noexcept;

/// Chunked dynamic work distribution over [0, total): each claim() returns a
/// half-open range of at most `chunk` items, or an empty range when done.
/// This is the load balancer inside a process group — spots are independent
/// and uniform (the paper's observation), so chunked self-scheduling keeps
/// all workers busy without a central scheduler.
class WorkCounter {
 public:
  struct Range {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    [[nodiscard]] bool empty() const noexcept { return begin >= end; }
    [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
  };

  WorkCounter(std::int64_t total, std::int64_t chunk) noexcept
      : total_(total), chunk_(chunk > 0 ? chunk : 1) {}

  [[nodiscard]] Range claim() noexcept {
    const std::int64_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= total_) return {};
    return {begin, begin + chunk_ < total_ ? begin + chunk_ : total_};
  }

  void reset() noexcept { next_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] std::int64_t total() const noexcept { return total_; }

 private:
  std::int64_t total_;
  std::int64_t chunk_;
  std::atomic<std::int64_t> next_{0};
};

}  // namespace dcsn::util
