// Thread utilities for the process-group runtime.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace dcsn::util {

/// Number of hardware threads, at least 1.
[[nodiscard]] int hardware_threads() noexcept;

/// Best-effort thread naming (visible in debuggers/profilers). No-op on
/// failure.
void set_current_thread_name(const std::string& name) noexcept;

/// Chunked dynamic work distribution over [0, total): each claim() returns a
/// half-open range of at most `chunk` items, or an empty range when done.
/// This is the load balancer inside a process group — spots are independent
/// and uniform (the paper's observation), so chunked self-scheduling keeps
/// all workers busy without a central scheduler.
class WorkCounter {
 public:
  struct Range {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    [[nodiscard]] bool empty() const noexcept { return begin >= end; }
    [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
  };

  WorkCounter(std::int64_t total, std::int64_t chunk) noexcept
      : total_(total), chunk_(chunk > 0 ? chunk : 1) {}

  [[nodiscard]] Range claim() noexcept {
    const std::int64_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= total_) return {};
    return {begin, begin + chunk_ < total_ ? begin + chunk_ : total_};
  }

  void reset() noexcept { next_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] std::int64_t total() const noexcept { return total_; }

  /// Every item has been handed out (a racy snapshot, monotone once true).
  [[nodiscard]] bool drained() const noexcept {
    return next_.load(std::memory_order_acquire) >= total_;
  }

 private:
  std::int64_t total_;
  std::int64_t chunk_;
  std::atomic<std::int64_t> next_{0};
};

/// WorkCounter extended with stealing: the owner side claims chunks from the
/// front, idle workers of *other* process groups steal chunks from the back.
/// Both ends live in one 64-bit word updated by compare-and-swap, so a claim
/// and a steal can never hand out overlapping ranges and neither side ever
/// takes a lock (lock-free in the obstruction-free-progress sense: some CAS
/// always succeeds).
///
/// This is the cross-group load balancer: within a group the counter behaves
/// exactly like WorkCounter; across groups it lets a drained group's workers
/// pull work from the most loaded group instead of idling at the end barrier
/// (the eq. 3.2 collapse when the static partition is unbalanced).
class StealableWorkCounter {
 public:
  using Range = WorkCounter::Range;

  StealableWorkCounter(std::int64_t total, std::int64_t chunk)
      : chunk_(chunk > 0 ? chunk : 1) {
    reset(total);
  }

  /// Rearms the counter over [0, total) for a new frame. Not thread-safe:
  /// call only while no worker is claiming or stealing.
  void reset(std::int64_t total) {
    DCSN_CHECK(total >= 0 && total <= kMaxItems,
               "StealableWorkCounter supports up to 2^32-1 items");
    state_.store(pack(0, total), std::memory_order_release);
  }

  /// Owner side: takes up to `chunk` items from the front.
  [[nodiscard]] Range claim() noexcept {
    std::uint64_t s = state_.load(std::memory_order_acquire);
    for (;;) {
      const std::int64_t next = unpack_next(s);
      const std::int64_t end = unpack_end(s);
      if (next >= end) return {};
      const std::int64_t take = std::min(chunk_, end - next);
      if (state_.compare_exchange_weak(s, pack(next + take, end),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return {next, next + take};
      }
    }
  }

  /// Thief side: takes up to `max_items` items from the back. Safe to call
  /// concurrently with claim() and other steal()s.
  [[nodiscard]] Range steal(std::int64_t max_items) noexcept {
    if (max_items <= 0) return {};
    std::uint64_t s = state_.load(std::memory_order_acquire);
    for (;;) {
      const std::int64_t next = unpack_next(s);
      const std::int64_t end = unpack_end(s);
      if (next >= end) return {};
      const std::int64_t take = std::min(max_items, end - next);
      if (state_.compare_exchange_weak(s, pack(next, end - take),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return {end - take, end};
      }
    }
  }

  /// Items not yet claimed or stolen (a racy snapshot).
  [[nodiscard]] std::int64_t remaining() const noexcept {
    const std::uint64_t s = state_.load(std::memory_order_acquire);
    const std::int64_t left = unpack_end(s) - unpack_next(s);
    return left > 0 ? left : 0;
  }

  [[nodiscard]] bool drained() const noexcept { return remaining() == 0; }

  [[nodiscard]] std::int64_t chunk() const noexcept { return chunk_; }

 private:
  static constexpr std::int64_t kMaxItems = 0xffffffffLL;

  static constexpr std::uint64_t pack(std::int64_t next, std::int64_t end) noexcept {
    return (static_cast<std::uint64_t>(next) << 32) |
           (static_cast<std::uint64_t>(end) & 0xffffffffULL);
  }
  static constexpr std::int64_t unpack_next(std::uint64_t s) noexcept {
    return static_cast<std::int64_t>(s >> 32);
  }
  static constexpr std::int64_t unpack_end(std::uint64_t s) noexcept {
    return static_cast<std::int64_t>(s & 0xffffffffULL);
  }

  std::int64_t chunk_;
  std::atomic<std::uint64_t> state_{0};
};

}  // namespace dcsn::util
