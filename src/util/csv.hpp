// CSV output for benchmark results.
//
// Every table/figure bench writes its measurements next to the printed table
// so EXPERIMENTS.md entries can be regenerated mechanically.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace dcsn::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::initializer_list<std::string> columns);

  /// Appends one row; the cell count must match the header.
  void row(std::initializer_list<std::string> cells);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double v);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace dcsn::util
