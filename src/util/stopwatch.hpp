// Wall-clock timing for the benchmark harness and the performance model.
//
// The divide-and-conquer engine needs two kinds of measurement: end-to-end
// frame times (Stopwatch) and per-component accumulated busy time such as
// genP / genT from the paper's eq. 2.1 (Accumulator + ScopedTimer).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace dcsn::util {

/// Monotonic stopwatch. Started on construction.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch: counts only the time this thread actually
/// executed, excluding preemption by other threads. This is the right clock
/// for *attributing* work to a worker (genP, genT) on an oversubscribed
/// host — with more worker threads than cores, wall-clock intervals charge a
/// worker for time its neighbors ran, which breaks per-component accounting
/// and every critical-path model built on it. Falls back to wall clock where
/// no thread CPU clock exists.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() noexcept : start_(now()) {}

  void restart() noexcept { start_ = now(); }

  /// CPU seconds this thread has executed since construction or restart().
  [[nodiscard]] double seconds() const noexcept { return now() - start_; }

 private:
  [[nodiscard]] static double now() noexcept {
#if defined(__unix__) || defined(__APPLE__)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

/// Accumulates busy time across many short intervals, e.g. total genP over
/// all spots handled by one worker. Single-writer; aggregate across workers
/// by summing the per-worker accumulators after a frame.
class TimeAccumulator {
 public:
  void add_seconds(double s) noexcept {
    total_ += s;
    ++intervals_;
  }

  void reset() noexcept {
    total_ = 0.0;
    intervals_ = 0;
  }

  [[nodiscard]] double seconds() const noexcept { return total_; }
  [[nodiscard]] std::int64_t intervals() const noexcept { return intervals_; }

 private:
  double total_ = 0.0;
  std::int64_t intervals_ = 0;
};

/// RAII interval timer: adds the scope's duration to an accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator& acc) noexcept : acc_(acc) {}
  ~ScopedTimer() { acc_.add_seconds(watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator& acc_;
  Stopwatch watch_;
};

}  // namespace dcsn::util
