// Wall-clock timing for the benchmark harness and the performance model.
//
// The divide-and-conquer engine needs two kinds of measurement: end-to-end
// frame times (Stopwatch) and per-component accumulated busy time such as
// genP / genT from the paper's eq. 2.1 (Accumulator + ScopedTimer).
#pragma once

#include <chrono>
#include <cstdint>

namespace dcsn::util {

/// Monotonic stopwatch. Started on construction.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  Clock::time_point start_;
};

/// Accumulates busy time across many short intervals, e.g. total genP over
/// all spots handled by one worker. Single-writer; aggregate across workers
/// by summing the per-worker accumulators after a frame.
class TimeAccumulator {
 public:
  void add_seconds(double s) noexcept {
    total_ += s;
    ++intervals_;
  }

  void reset() noexcept {
    total_ = 0.0;
    intervals_ = 0;
  }

  [[nodiscard]] double seconds() const noexcept { return total_; }
  [[nodiscard]] std::int64_t intervals() const noexcept { return intervals_; }

 private:
  double total_ = 0.0;
  std::int64_t intervals_ = 0;
};

/// RAII interval timer: adds the scope's duration to an accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator& acc) noexcept : acc_(acc) {}
  ~ScopedTimer() { acc_.add_seconds(watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator& acc_;
  Stopwatch watch_;
};

}  // namespace dcsn::util
