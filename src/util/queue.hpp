// Bounded multi-producer queue used for command streaming.
//
// In the divide-and-conquer engine, workers of a process group produce
// command buffers of transformed spot geometry and the group's graphics pipe
// consumes them. Command buffers are chunky (dozens of spots each), so a
// mutex + condition-variable queue is plenty: the lock is taken a few
// thousand times per frame, far from contention. Boundedness provides the
// back-pressure that models a saturated pipe — when the pipe cannot keep up,
// producers block, which is exactly the "starvation vs. saturation" balance
// eq. 3.2 describes.
//
// Lock discipline is compiler-checked: items_ and closed_ are
// DCSN_GUARDED_BY(mutex_), so under the `analyze` preset (clang
// -Wthread-safety) any access outside a util::MutexLock is a build error.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "util/thread_annotations.hpp"

namespace dcsn::util {

/// Bounded MPSC/MPMC FIFO with close() semantics.
template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T value) {
    MutexLock lock(mutex_);
    not_full_.wait(lock, [&]() DCSN_REQUIRES(mutex_) {
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T value) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push that leaves `value` intact when the queue is full or
  /// closed, so the caller can retry later (try_push consumes its argument
  /// either way).
  bool try_push_or_keep(T& value) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    MutexLock lock(mutex_);
    not_empty_.wait(lock, [&]() DCSN_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Blocks up to `timeout` for an item. Returns nullopt on timeout or once
  /// closed and drained. Masters of the synthesis engine use this while
  /// waiting out their in-flight accounting: a producer that claimed a range
  /// may race to an empty claim and never push, so an unbounded pop() could
  /// wait on a message that is provably never coming — the timeout bounds
  /// that window and the caller rechecks its exit condition.
  template <class Rep, class Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    MutexLock lock(mutex_);
    not_empty_.wait_for(lock, timeout, [&]() DCSN_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;  // timeout, or closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Reopens a drained, closed queue for reuse (e.g. between frames).
  void reopen() {
    MutexLock lock(mutex_);
    closed_ = false;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ DCSN_GUARDED_BY(mutex_);
  const std::size_t capacity_;
  bool closed_ DCSN_GUARDED_BY(mutex_) = false;
};

}  // namespace dcsn::util
