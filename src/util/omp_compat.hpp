// Thin OpenMP shim: when the compiler has no OpenMP support the `#pragma omp`
// directives vanish on their own, but calls into the runtime (omp_get_*) do
// not — this header supplies serial fallbacks so the same sources build
// either way. Include this instead of <omp.h>.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#else
inline int omp_get_thread_num() { return 0; }
inline int omp_get_max_threads() { return 1; }
inline int omp_get_num_threads() { return 1; }
#endif
