#include "util/cli.hpp"

#include <string_view>

namespace dcsn::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_.emplace(std::string(arg), "");
    } else {
      values_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    }
  }
}

bool Args::has(const std::string& key) const { return values_.contains(key); }

int Args::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoi(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

std::string Args::get_string(const std::string& key, std::string fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return it->second;
}

}  // namespace dcsn::util
