// Portable SIMD kernel layer for the pixel hot paths.
//
// Every kernel is a restrict-qualified straight-line loop annotated with
// `#pragma omp simd`. With OpenMP (or any compiler that honours the pragma)
// the loop vectorizes; without it the pragma is ignored and the same code
// runs as the scalar fallback — no intrinsics, no runtime dispatch, no
// second code path to keep correct. Callers guarantee that `dst` and `src`
// do not alias; the restrict qualifier is what licenses the vectorization.
//
// Semantics are pinned to the scalar expressions the rasterizer historically
// used (`dst += w * src`, `std::max(dst, w * src)` spelled as a comparison),
// so switching a call site to these kernels never changes results, only
// speed. In particular the max kernels replicate std::max's NaN/signed-zero
// behaviour: `a < b ? b : a`.
#pragma once

#include <cstddef>

namespace dcsn::util::simd {

/// dst[i] += src[i] — the gather-blend accumulation.
inline void add(float* __restrict__ dst, const float* __restrict__ src,
                std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// dst[i] += w * src[i] — additive spot blending (the spot-noise sum).
inline void add_scaled(float* __restrict__ dst, const float* __restrict__ src,
                       float w, int n) {
#pragma omp simd
  for (int i = 0; i < n; ++i) dst[i] += w * src[i];
}

/// dst[i] = max(dst[i], w * src[i]) — maximum spot blending.
inline void max_scaled(float* __restrict__ dst, const float* __restrict__ src,
                       float w, int n) {
#pragma omp simd
  for (int i = 0; i < n; ++i) {
    const float s = w * src[i];
    dst[i] = dst[i] < s ? s : dst[i];
  }
}

/// dst[i] = max(dst[i], v) — maximum blend against a constant (the span
/// rasterizer's zero-texel flanks, where the reference blends w * 0).
inline void max_with(float* __restrict__ dst, float v, int n) {
#pragma omp simd
  for (int i = 0; i < n; ++i) dst[i] = dst[i] < v ? v : dst[i];
}

}  // namespace dcsn::util::simd
