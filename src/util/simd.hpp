// Portable SIMD kernel layer for the pixel hot paths.
//
// Every kernel is a restrict-qualified straight-line loop annotated with
// `#pragma omp simd`. With OpenMP (or any compiler that honours the pragma)
// the loop vectorizes; without it the pragma is ignored and the same code
// runs as the scalar fallback — no intrinsics, no runtime dispatch, no
// second code path to keep correct. Callers guarantee that `dst` and `src`
// do not alias; the restrict qualifier is what licenses the vectorization.
//
// Semantics are pinned to the scalar expressions the rasterizer uses
// (`dst += quantize_contribution(w * src)`, max spelled as a comparison),
// so switching a call site to these kernels never changes results, only
// speed. In particular the max kernels replicate std::max's NaN/signed-zero
// behaviour: `a < b ? b : a`.
//
// ---------------------------------------------------------------------------
// The contribution lattice (exact, order-independent accumulation)
// ---------------------------------------------------------------------------
// Spot noise is a sum of fragment contributions, and the engine adds them in
// whatever order the scheduler produces: chunk arrival order varies with
// slave interleaving and work stealing, partial textures are grouped by pipe
// and tile layout, and the gather adds the groups. Raw float addition is not
// associative, so every one of those choices would perturb the last bits —
// no golden-frame hash could be stable, and an incrementally reused tile
// could never be *proved* equal to a re-rendered one.
//
// Instead, every fragment contribution is rounded to the nearest multiple of
// kContributionQuantum (2^-17) before blending. A float holds integer
// multiples of the quantum exactly up to 2^24 quanta = kContributionExactBound
// (128.0), far above any real per-pixel sum (worst measured workloads stay
// under ~100 summed absolute contributions), so every partial sum is exact —
// no rounding ever happens in the additions. Exact addition IS associative
// and commutative: any accumulation order, grouping, pipe count, tile
// decomposition, or steal pattern produces bit-identical textures. That
// invariant is what the determinism suite asserts and what makes temporal
// tile reuse (core::SynthesisCache) exactly equal to full resynthesis.
//
// The quantum (7.6e-6) is ~500x below the 8-bit tone-map step at typical
// texture contrast — invisible — and quantization costs three flops per
// fragment next to a bilinear texture fetch.
#pragma once

#include <cstddef>

namespace dcsn::util::simd {

inline constexpr float kContributionScale = 131072.0f;  // 2^17
inline constexpr float kContributionQuantum = 1.0f / kContributionScale;
/// Largest magnitude up to which lattice sums stay exact (2^24 quanta).
inline constexpr float kContributionExactBound = 128.0f;

/// Rounds `v` to the nearest lattice multiple (ties to even), via the
/// magic-constant trick: adding 1.5 * 2^23 to a float in (-2^22, 2^22)
/// forces its ulp to 1, i.e. rounds it to an integer, and the subtraction
/// is exact. The power-of-two scale multiplies are exact too, so the whole
/// function is a correctly rounded snap-to-lattice. NaN and out-of-range
/// magnitudes (|v| >= 32, far outside the design range) pass through
/// unchanged — the guard is written negated so NaN lands in it.
inline float quantize_contribution(float v) {
  const float x = v * kContributionScale;
  if (!(x > -4194304.0f && x < 4194304.0f)) return v;
  const float magic = 12582912.0f;  // 1.5 * 2^23
  return ((x + magic) - magic) * kContributionQuantum;
}

/// dst[i] += src[i] — the gather-blend accumulation. Lattice-exact when both
/// operands hold in-range lattice sums.
inline void add(float* __restrict__ dst, const float* __restrict__ src,
                std::size_t n) {
#pragma omp simd
  // determinism: lattice-exact — both operands hold in-range lattice sums
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// dst[i] += quantize(w * src[i]) — additive spot blending (the spot-noise
/// sum, snapped to the contribution lattice).
inline void add_scaled(float* __restrict__ dst, const float* __restrict__ src,
                       float w, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) dst[i] += quantize_contribution(w * src[i]);
}

/// dst[i] = max(dst[i], quantize(w * src[i])) — maximum spot blending.
inline void max_scaled(float* __restrict__ dst, const float* __restrict__ src,
                       float w, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    const float s = quantize_contribution(w * src[i]);
    dst[i] = dst[i] < s ? s : dst[i];
  }
}

/// dst[i] = max(dst[i], v) — maximum blend against a constant (the span
/// rasterizer's zero-texel flanks, where the reference blends w * 0).
inline void max_with(float* __restrict__ dst, float v, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) dst[i] = dst[i] < v ? v : dst[i];
}

/// dst[i] = quantize(src[i]) — the lattice snap over a whole lane buffer.
/// Like every kernel here, dst and src must not alias.
inline void quantize_span(float* __restrict__ dst, const float* __restrict__ src,
                          std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) dst[i] = quantize_contribution(src[i]);
}

}  // namespace dcsn::util::simd
