// Runtime-dispatched explicit-SIMD kernels for the pixel hot paths.
//
// util/simd.hpp holds the portable reference kernels: `#pragma omp simd`
// loops whose vectorization is at the compiler's mercy. This layer adds
// hand-written SSE2 / AVX2 / NEON implementations of the same kernels plus
// the fused span sampler the SoA rasterizer refactor enables, selected once
// at startup from CPU feature detection (CPUID on x86-64, baseline NEON on
// aarch64) — the binary needs no -march flags and still runs the widest ISA
// the host offers.
//
// Determinism contract: every tier is pinned to the scalar expressions
// BIT-FOR-BIT. The contribution-lattice snap (util/simd.hpp) is the magic-
// constant round `((x + 1.5*2^23) - 1.5*2^23) * 2^-17`, three IEEE
// single-rounded operations — a vector lane performs the identical
// operations on the identical bits, so the snap vectorizes exactly. Maximum
// blending is spelled as the same `dst < s ? s : dst` comparison (NaN and
// -0.0 behaviour included; never the ISA's min/max instruction, whose NaN
// rules differ). FMA is *never* used, not even on tiers that have it: a
// fused multiply-add rounds once where the scalar expression rounds twice,
// which would break lattice exactness and with it every golden hash,
// incremental-reuse proof and delta stream. The cross-tier byte-equality
// suite (tests/test_simd.cpp, ctest -L simd) and the per-tier golden runs
// (scripts/verify.sh --simd-tiers) enforce all of this.
//
// Thread safety: the active tier is read with an atomic load and written
// only by startup init or set_active_tier() (tests/benches, between renders
// — never while workers are rasterizing). The kernel tables themselves are
// immutable statics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcsn::util::simd {

/// Implementation tiers, ordered by preference within an architecture.
enum class Tier : int {
  kScalar = 0,  ///< util/simd.hpp portable kernels (omp-simd, any compiler)
  kSse2 = 1,    ///< 128-bit, baseline on x86-64
  kAvx2 = 2,    ///< 256-bit + gathers, detected via CPUID
  kNeon = 3,    ///< 128-bit, baseline on aarch64
};

/// Everything the fused span sampler needs: the padded bilinear table and
/// the 32.32 fixed-point walk (render::SpotProfile::RowSampler state,
/// rebased to the span start). Plain data so util/ stays independent of
/// render/ — the rasterizer builds one per rendered span.
struct SampleSpan {
  const float* table = nullptr;  ///< padded profile table, row-major
  std::size_t stride = 0;        ///< table row stride in floats (padded)
  std::int64_t fx0 = 0, fy0 = 0; ///< 32.32 texel position of fragment 0
  std::int64_t dfx = 0, dfy = 0; ///< 32.32 per-fragment step
  float weight = 0.0f;           ///< spot intensity, applied pre-quantize
};

/// One tier's kernel set. All pointers are non-null in every table.
/// Preconditions match the scalar kernels: dst/src never alias, and for the
/// sample_row kernels every fragment position in [0, n) lies inside the
/// table (the rasterizer's in-range sub-span solve guarantees it).
struct KernelTable {
  void (*add)(float* dst, const float* src, std::size_t n);
  void (*add_scaled)(float* dst, const float* src, float w, std::size_t n);
  void (*max_scaled)(float* dst, const float* src, float w, std::size_t n);
  void (*max_with)(float* dst, float v, std::size_t n);
  void (*quantize_span)(float* dst, const float* src, std::size_t n);
  /// dst[k] += quantize(weight * bilinear(fx0 + k*dfx, fy0 + k*dfy))
  void (*sample_row_add)(float* dst, const SampleSpan& span, std::size_t n);
  /// dst[k] = max(dst[k], quantize(weight * bilinear(...))), max spelled
  /// as the scalar comparison.
  void (*sample_row_max)(float* dst, const SampleSpan& span, std::size_t n);
  /// Batched sample_row_add: span i blends into dst[i][0..lens[i]).
  /// PRECONDITION: the spans of one batch never alias (the rasterizer
  /// batches one triangle's rows — distinct framebuffer rows). That makes
  /// the result byte-identical to calling sample_row_add span by span in
  /// ANY order, and tiers exploit it: a tier may reorder the batch (e.g. to
  /// peel branch-free span-length classes) and keep its lane constants
  /// resident across the whole batch.
  void (*sample_rows_add)(float* const* dst, const SampleSpan* spans,
                          const std::uint32_t* lens, std::size_t count);
  /// Batched sample_row_max, same contract.
  void (*sample_rows_max)(float* const* dst, const SampleSpan* spans,
                          const std::uint32_t* lens, std::size_t count);
};

/// The ambient dispatched table: best available tier, or the DCSN_SIMD
/// override (scalar|sse2|avx2|neon; unknown or unavailable values warn on
/// stderr and fall back to the detected best). First call decides.
[[nodiscard]] const KernelTable& kernels();

/// Tier behind kernels().
[[nodiscard]] Tier active_tier();

/// Re-points kernels() at another *available* tier (util::Error otherwise).
/// For tests and tier-ablation benches only; call between renders, never
/// while workers are inside the rasterizer.
void set_active_tier(Tier tier);

/// True when this host can run `tier`.
[[nodiscard]] bool tier_available(Tier tier);

/// Every tier this host can run, scalar first.
[[nodiscard]] std::vector<Tier> available_tiers();

/// A specific tier's kernels (util::Error when unavailable).
[[nodiscard]] const KernelTable& kernels_for(Tier tier);

/// "scalar" / "sse2" / "avx2" / "neon".
[[nodiscard]] const char* tier_name(Tier tier);

/// Parses a DCSN_SIMD-style name; returns false on unknown names.
[[nodiscard]] bool tier_from_name(std::string_view name, Tier& out);

/// Detected CPU features, e.g. "sse2 sse4.2 avx avx2 fma" — recorded in
/// bench JSON reports so perf baselines name the ISA they ran on.
[[nodiscard]] std::string cpu_flags();

}  // namespace dcsn::util::simd
