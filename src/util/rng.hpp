// Deterministic pseudo-random number generation for spot noise.
//
// Spot noise is a stochastic texture: every spot has a random position and a
// zero-mean random intensity (van Wijk '91, eq. f(x) = sum a_i h(x - x_i)).
// Reproducibility of images and tests requires explicit, splittable seeding,
// so the library never touches global RNG state. The generator is
// xoshiro256++ (Blackman & Vigna), seeded via splitmix64; `split()` derives
// statistically independent child streams so each process group of the
// divide-and-conquer engine can draw its spots without synchronization.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace dcsn::util {

/// xoshiro256++ generator with splitmix64 seeding and stream splitting.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit draw (xoshiro256++ step).
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [0, 1).
  [[nodiscard]] float uniform_f() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer index in [0, n). n must be positive.
  [[nodiscard]] std::int64_t index(std::int64_t n) noexcept {
    // Lemire's multiply-shift rejection-free variant is overkill here; the
    // bias for n << 2^64 is negligible for texture synthesis.
    return static_cast<std::int64_t>((*this)() % static_cast<std::uint64_t>(n));
  }

  /// Zero-mean spot intensity: uniform in [-1, 1]. This is the a_i of the
  /// spot-noise definition; zero mean keeps the texture's DC level flat.
  [[nodiscard]] double intensity() noexcept { return uniform(-1.0, 1.0); }

  /// Standard normal draw (Box–Muller with caching).
  [[nodiscard]] double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    const double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal draw with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derives an independent child stream. Equivalent to seeding a fresh
  /// generator from this one, then applying the xoshiro jump polynomial so
  /// parent and child sequences do not overlap in practice.
  [[nodiscard]] Rng split() noexcept {
    Rng child((*this)());
    child.jump();
    return child;
  }

  /// Advances the state by 2^128 steps (the canonical xoshiro jump).
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace dcsn::util
