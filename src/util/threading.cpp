#include "util/threading.hpp"

#include <pthread.h>

#include <thread>

namespace dcsn::util {

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_current_thread_name(const std::string& name) noexcept {
  // Linux limits thread names to 15 characters + NUL.
  std::string truncated = name.substr(0, 15);
  (void)pthread_setname_np(pthread_self(), truncated.c_str());
}

}  // namespace dcsn::util
