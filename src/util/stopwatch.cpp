#include "util/stopwatch.hpp"

// Header-only; this translation unit anchors the library target.
