#pragma once

/// \file stats.hpp
/// Small shared statistics helpers for benches and demos.
///
/// Exists because three tools (serve_demo, bench_service, bench_robustness)
/// each grew a private percentile() with subtly different rounding and —
/// in one case — no empty-vector guard (UB when a client completes zero
/// frames, e.g. under fault plans). One definition, one rounding rule.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace dcsn::util {

/// Percentile of `values` by nearest-rank interpolation on the sorted
/// sample: index round(p * (n - 1)). `p` is clamped to [0, 1]; an empty
/// sample yields 0.0 instead of indexing out of bounds. Takes the vector
/// by value — callers keep their sample order.
[[nodiscard]] inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

}  // namespace dcsn::util
