#include "sim/dns_solver.hpp"

#include <algorithm>
#include <cmath>

#include "particles/integrators.hpp"
#include "util/error.hpp"

namespace dcsn::sim {

DnsSolver::DnsSolver(DnsParams params)
    : params_(params),
      velocity_(field::RegularGrid(params.nx, params.ny, params.domain)),
      scratch_(velocity_.grid()),
      pressure_(velocity_.grid()),
      divergence_(velocity_.grid()),
      solid_(velocity_.grid().sample_count(), 0) {
  DCSN_CHECK(params_.inflow_speed > 0.0, "inflow speed must be positive");
  DCSN_CHECK(params_.viscosity > 0.0, "viscosity must be positive");
  DCSN_CHECK(params_.pressure_iterations >= 1, "need at least one SOR sweep");
  DCSN_CHECK(params_.sor_omega > 0.0 && params_.sor_omega < 2.0,
             "SOR relaxation must lie in (0,2)");
  DCSN_CHECK(params_.domain.contains(params_.block.min()) &&
                 params_.domain.contains(params_.block.max()),
             "block must lie inside the domain");

  const field::RegularGrid& g = grid();
  for (int j = 0; j < g.ny(); ++j)
    for (int i = 0; i < g.nx(); ++i)
      if (params_.block.contains(g.position(i, j)))
        solid_[g.linear_index(i, j)] = 1;

  // Impulsive start: uniform inflow with a slight tilt that breaks the
  // wake's top/bottom symmetry so vortex shedding develops quickly.
  velocity_.fill([this](field::Vec2) {
    return field::Vec2{params_.inflow_speed,
                       params_.perturbation * params_.inflow_speed};
  });
  apply_boundaries(velocity_);
}

void DnsSolver::apply_boundaries(field::GridVectorField& v) const {
  const field::RegularGrid& g = grid();
  const int nx = g.nx();
  const int ny = g.ny();
  // Inflow: prescribed velocity. Outflow: zero-gradient. Top/bottom:
  // free-slip (zero normal velocity, zero shear).
  for (int j = 0; j < ny; ++j) {
    v.at(0, j) = {params_.inflow_speed, params_.perturbation * params_.inflow_speed};
    v.at(nx - 1, j) = v.at(nx - 2, j);
  }
  for (int i = 0; i < nx; ++i) {
    v.at(i, 0) = {v.at(i, 1).x, 0.0};
    v.at(i, ny - 1) = {v.at(i, ny - 2).x, 0.0};
  }
  // No-slip block.
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (solid_[g.linear_index(i, j)]) v.at(i, j) = {};
  v.invalidate_max();
}

void DnsSolver::step() {
  const field::RegularGrid& g = grid();
  const double h = std::min(g.dx(), g.dy());
  const double vmax = std::max(velocity_.max_magnitude(), params_.inflow_speed);
  dt_ = 0.35 * h / vmax;

  advect();
  diffuse();
  project();
  apply_boundaries(velocity_);

  time_ += dt_;
  ++steps_;
}

void DnsSolver::advect() {
  // Semi-Lagrangian: trace each sample backwards through the flow and pick
  // up the velocity found there (unconditionally stable).
  const field::RegularGrid& g = grid();
#pragma omp parallel for schedule(static)
  for (int j = 0; j < g.ny(); ++j) {
    for (int i = 0; i < g.nx(); ++i) {
      if (solid_[g.linear_index(i, j)]) {
        scratch_.at(i, j) = {};
        continue;
      }
      const field::Vec2 p = g.position(i, j);
      const field::Vec2 back = particles::rk2_step(velocity_, p, -dt_);
      scratch_.at(i, j) = velocity_.sample(params_.domain.clamp(back));
    }
  }
  std::swap(velocity_, scratch_);
  apply_boundaries(velocity_);
}

void DnsSolver::diffuse() {
  // Explicit diffusion; the advective dt is far below the diffusive limit
  // at the default parameters (checked here for safety).
  const field::RegularGrid& g = grid();
  const double h = std::min(g.dx(), g.dy());
  DCSN_CHECK(params_.viscosity * dt_ / (h * h) < 0.25,
             "explicit diffusion unstable: lower viscosity or resolution");
  const double kx = params_.viscosity * dt_ / (g.dx() * g.dx());
  const double ky = params_.viscosity * dt_ / (g.dy() * g.dy());
  const int nx = g.nx();
  const int ny = g.ny();
#pragma omp parallel for schedule(static)
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (solid_[g.linear_index(i, j)]) {
        scratch_.at(i, j) = {};
        continue;
      }
      const field::Vec2 c = velocity_.at(i, j);
      const field::Vec2 l = velocity_.at(std::max(i - 1, 0), j);
      const field::Vec2 r = velocity_.at(std::min(i + 1, nx - 1), j);
      const field::Vec2 d = velocity_.at(i, std::max(j - 1, 0));
      const field::Vec2 u = velocity_.at(i, std::min(j + 1, ny - 1));
      scratch_.at(i, j) = c + (l + r - c * 2.0) * kx + (d + u - c * 2.0) * ky;
    }
  }
  std::swap(velocity_, scratch_);
  apply_boundaries(velocity_);
}

void DnsSolver::project() {
  const field::RegularGrid& g = grid();
  const int nx = g.nx();
  const int ny = g.ny();
  const double dx = g.dx();
  const double dy = g.dy();

  // Velocity divergence (central differences).
#pragma omp parallel for schedule(static)
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (solid_[g.linear_index(i, j)] || i == 0 || i == nx - 1 || j == 0 ||
          j == ny - 1) {
        divergence_.at(i, j) = 0.0;
        continue;
      }
      divergence_.at(i, j) =
          (velocity_.at(i + 1, j).x - velocity_.at(i - 1, j).x) / (2.0 * dx) +
          (velocity_.at(i, j + 1).y - velocity_.at(i, j - 1).y) / (2.0 * dy);
    }
  }

  // Pressure Poisson: nabla^2 p = div / dt, Neumann at walls and the block,
  // red-black SOR so sweeps parallelize.
  const double ax = 1.0 / (dx * dx);
  const double ay = 1.0 / (dy * dy);
  const double inv_diag = 1.0 / (2.0 * ax + 2.0 * ay);
  const double omega = params_.sor_omega;

  auto neighbor = [&](int i, int j, int ci, int cj) -> double {
    // Neumann boundary: mirror the center value outside the fluid.
    if (i < 0 || i >= nx || j < 0 || j >= ny || solid_[g.linear_index(i, j)])
      return pressure_.at(ci, cj);
    return pressure_.at(i, j);
  };

  for (int sweep = 0; sweep < params_.pressure_iterations; ++sweep) {
    for (int color = 0; color < 2; ++color) {
#pragma omp parallel for schedule(static)
      for (int j = 0; j < ny; ++j) {
        for (int i = (j + color) % 2; i < nx; i += 2) {
          if (solid_[g.linear_index(i, j)]) continue;
          const double rhs = divergence_.at(i, j) / dt_;
          const double sum = ax * (neighbor(i - 1, j, i, j) + neighbor(i + 1, j, i, j)) +
                             ay * (neighbor(i, j - 1, i, j) + neighbor(i, j + 1, i, j));
          const double gs = (sum - rhs) * inv_diag;
          pressure_.at(i, j) += omega * (gs - pressure_.at(i, j));
        }
      }
    }
  }

  // Subtract the pressure gradient to make the field divergence-free.
#pragma omp parallel for schedule(static)
  for (int j = 1; j < ny - 1; ++j) {
    for (int i = 1; i < nx - 1; ++i) {
      if (solid_[g.linear_index(i, j)]) continue;
      const double px =
          (neighbor(i + 1, j, i, j) - neighbor(i - 1, j, i, j)) / (2.0 * dx);
      const double py =
          (neighbor(i, j + 1, i, j) - neighbor(i, j - 1, i, j)) / (2.0 * dy);
      velocity_.at(i, j) -= field::Vec2{px, py} * dt_;
    }
  }
  velocity_.invalidate_max();
}

field::RectilinearVectorField DnsSolver::snapshot(double stretch) const {
  DCSN_CHECK(stretch >= 1.0, "stretch factor must be >= 1");
  const field::Rect& d = params_.domain;
  const field::Vec2 focus = params_.block.center();
  // Inverse ratio: spacing *shrinks* toward the block by `stretch`.
  auto xs = field::RectilinearGrid::stretched_axis(
      params_.nx, d.x0, d.x1, (focus.x - d.x0) / d.width(), stretch);
  auto ys = field::RectilinearGrid::stretched_axis(
      params_.ny, d.y0, d.y1, (focus.y - d.y0) / d.height(), stretch);
  field::RectilinearGrid g(std::move(xs), std::move(ys));
  field::RectilinearVectorField out(g);
  out.fill([this](field::Vec2 p) { return velocity_.sample(p); });
  return out;
}

double DnsSolver::kinetic_energy() const {
  const field::RegularGrid& g = grid();
  double sum = 0.0;
  for (const field::Vec2& v : velocity_.samples()) sum += v.length_sq();
  return 0.5 * sum * g.dx() * g.dy();
}

}  // namespace dcsn::sim
