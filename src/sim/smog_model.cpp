#include "sim/smog_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace dcsn::sim {

SmogModel::SmogModel(SmogParams params)
    : params_(params),
      wind_(field::RegularGrid(params.nx, params.ny, params.domain)),
      concentration_{field::ScalarField(wind_.grid()), field::ScalarField(wind_.grid())},
      scratch_{field::ScalarField(wind_.grid()), field::ScalarField(wind_.grid())} {
  DCSN_CHECK(params_.pressure_systems >= 0, "pressure system count must be >= 0");
  util::Rng rng(params_.seed);
  const field::Rect& d = params_.domain;
  for (int s = 0; s < params_.pressure_systems; ++s) {
    PressureSystem sys;
    sys.position = {rng.uniform(d.x0, d.x1), rng.uniform(d.y0, d.y1)};
    const double angle = rng.uniform(0.0, 2.0 * 3.141592653589793);
    sys.drift = {std::cos(angle), std::sin(angle)};
    sys.sign = rng.uniform() < 0.5 ? 1.0 : -1.0;
    systems_.push_back(sys);
  }
  // Default emission sources: three "cities" spread over the domain.
  sources_.push_back({d.at(0.25, 0.35), 8.0});
  sources_.push_back({d.at(0.55, 0.60), 12.0});
  sources_.push_back({d.at(0.75, 0.30), 6.0});
  update_wind();
}

void SmogModel::set_source_rate(std::size_t index, double rate) {
  DCSN_CHECK(index < sources_.size(), "emission source index out of range");
  DCSN_CHECK(rate >= 0.0, "emission rate must be non-negative");
  sources_[index].rate = rate;
}

void SmogModel::update_wind() {
  // Geostrophic flow: wind circulates around pressure centers; a Gaussian
  // pressure bump of radius R gives a rotational wind peaking near R.
  wind_.fill([this](field::Vec2 p) {
    field::Vec2 v = params_.base_wind;
    for (const PressureSystem& sys : systems_) {
      const field::Vec2 r = p - sys.position;
      const double dist_sq = r.length_sq();
      const double r2 = params_.system_radius * params_.system_radius;
      // tangential speed ~ strength * (|r|/R) * exp(1/2 - |r|^2 / 2R^2),
      // normalized so the peak (at |r| = R) equals system_strength.
      const double envelope = std::exp(0.5 - 0.5 * dist_sq / r2);
      const field::Vec2 tangent = r.perp();
      v += tangent * (sys.sign * params_.system_strength * envelope /
                      params_.system_radius);
    }
    return v;
  });
}

void SmogModel::step(double dt) {
  DCSN_CHECK(dt > 0.0, "time step must be positive");
  // Move the weather: pressure systems drift and wrap around the domain.
  const field::Rect& d = params_.domain;
  for (PressureSystem& sys : systems_) {
    sys.position += sys.drift * (params_.system_speed * dt);
    if (sys.position.x < d.x0) sys.position.x += d.width();
    if (sys.position.x > d.x1) sys.position.x -= d.width();
    if (sys.position.y < d.y0) sys.position.y += d.height();
    if (sys.position.y > d.y1) sys.position.y -= d.height();
  }
  update_wind();

  // CFL-limited substepping for the explicit transport scheme.
  const field::RegularGrid& grid = wind_.grid();
  const double h = std::min(grid.dx(), grid.dy());
  const double vmax = std::max(wind_.max_magnitude(), 1e-9);
  const double dt_adv = 0.4 * h / vmax;
  const double dt_diff = params_.diffusivity > 0.0
                             ? 0.2 * h * h / params_.diffusivity
                             : dt;
  const double dt_max = std::min(dt_adv, dt_diff);
  const int substeps = std::max(1, static_cast<int>(std::ceil(dt / dt_max)));
  const double sub_dt = dt / substeps;
  for (int s = 0; s < substeps; ++s) advect_diffuse_react(sub_dt);
  time_ += dt;
}

void SmogModel::advect_diffuse_react(double dt) {
  const field::RegularGrid& grid = wind_.grid();
  const int nx = grid.nx();
  const int ny = grid.ny();
  const double dx = grid.dx();
  const double dy = grid.dy();

  for (int species = 0; species < 2; ++species) {
    const field::ScalarField& c = concentration_[static_cast<std::size_t>(species)];
    field::ScalarField& out = scratch_[static_cast<std::size_t>(species)];

#pragma omp parallel for schedule(static)
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const field::Vec2 v = wind_.at(i, j);
        const double cc = c.at(i, j);
        const double cl = c.at(std::max(i - 1, 0), j);
        const double cr = c.at(std::min(i + 1, nx - 1), j);
        const double cd = c.at(i, std::max(j - 1, 0));
        const double cu = c.at(i, std::min(j + 1, ny - 1));

        // First-order upwind advection (stable under the CFL substepping).
        const double ddx = v.x >= 0.0 ? (cc - cl) / dx : (cr - cc) / dx;
        const double ddy = v.y >= 0.0 ? (cc - cd) / dy : (cu - cc) / dy;
        const double advection = -(v.x * ddx + v.y * ddy);

        const double laplacian =
            (cl - 2.0 * cc + cr) / (dx * dx) + (cd - 2.0 * cc + cu) / (dy * dy);

        double reaction;
        if (species == static_cast<int>(Species::kPrecursor)) {
          reaction = -(params_.photo_rate + params_.precursor_decay) * cc;
        } else {
          const double precursor =
              concentration_[static_cast<std::size_t>(Species::kPrecursor)].at(i, j);
          reaction = params_.photo_rate * precursor - params_.ozone_decay * cc;
        }

        out.at(i, j) =
            std::max(0.0, cc + dt * (advection + params_.diffusivity * laplacian +
                                     reaction));
      }
    }
  }
  for (int species = 0; species < 2; ++species) {
    std::swap(concentration_[static_cast<std::size_t>(species)],
              scratch_[static_cast<std::size_t>(species)]);
  }

  // Emissions: Gaussian stamps around each source feed the precursor field.
  field::ScalarField& precursor =
      concentration_[static_cast<std::size_t>(Species::kPrecursor)];
  const double stamp_radius = 1.5 * std::max(dx, dy);
  for (const EmissionSource& src : sources_) {
    if (src.rate <= 0.0) continue;
    const field::CellCoord cc = grid.locate(src.position);
    for (int j = std::max(0, cc.j - 3); j <= std::min(ny - 1, cc.j + 3); ++j) {
      for (int i = std::max(0, cc.i - 3); i <= std::min(nx - 1, cc.i + 3); ++i) {
        const field::Vec2 p = grid.position(i, j);
        const double dist_sq = (p - src.position).length_sq();
        const double w = std::exp(-0.5 * dist_sq / (stamp_radius * stamp_radius));
        precursor.at(i, j) += dt * src.rate * w;
      }
    }
  }
}

}  // namespace dcsn::sim
