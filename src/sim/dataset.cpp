#include "sim/dataset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dcsn::sim {

namespace {

constexpr std::uint32_t kMagic = 0x44435344;  // "DCSD"

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  DCSN_CHECK(in.good(), "unexpected end of dataset");
  return v;
}

void write_axis(std::ostream& out, const std::vector<double>& axis) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(axis.size()));
  out.write(reinterpret_cast<const char*>(axis.data()),
            static_cast<std::streamsize>(axis.size() * sizeof(double)));
}

std::vector<double> read_axis(std::istream& in) {
  const auto n = read_pod<std::uint32_t>(in);
  DCSN_CHECK(n >= 2 && n < (1u << 24), "implausible dataset axis length");
  std::vector<double> axis(n);
  in.read(reinterpret_cast<char*>(axis.data()),
          static_cast<std::streamsize>(axis.size() * sizeof(double)));
  DCSN_CHECK(in.good(), "unexpected end of dataset");
  return axis;
}

}  // namespace

// ---------------------------------------------------------------- writer ---

DatasetWriter::DatasetWriter(std::string path, const field::RectilinearGrid& grid)
    : path_(std::move(path)), out_(path_, std::ios::binary), grid_(grid) {
  DCSN_CHECK(out_.good(), "cannot open dataset for writing: " + path_);
  write_pod(out_, kMagic);
  write_pod<std::int64_t>(out_, 0);  // frame count patched by close()
  write_axis(out_, grid_.xs());
  write_axis(out_, grid_.ys());
}

DatasetWriter::~DatasetWriter() { close(); }

void DatasetWriter::append(const field::RectilinearVectorField& snapshot,
                           double time) {
  DCSN_CHECK(!closed_, "dataset already closed");
  DCSN_CHECK(snapshot.grid().nx() == grid_.nx() && snapshot.grid().ny() == grid_.ny(),
             "snapshot grid does not match the dataset grid");
  write_pod(out_, time);
  const auto samples = snapshot.samples();
  out_.write(reinterpret_cast<const char*>(samples.data()),
             static_cast<std::streamsize>(samples.size() * sizeof(field::Vec2)));
  DCSN_CHECK(out_.good(), "short write to dataset: " + path_);
  ++frames_;
}

void DatasetWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(sizeof(kMagic));
  write_pod<std::int64_t>(out_, frames_);
  out_.close();
}

// ---------------------------------------------------------------- reader ---

DatasetReader::DatasetReader(const std::string& path) : in_(path, std::ios::binary) {
  DCSN_CHECK(in_.good(), "cannot open dataset: " + path);
  DCSN_CHECK(read_pod<std::uint32_t>(in_) == kMagic, "not a dcsn dataset: " + path);
  frames_ = read_pod<std::int64_t>(in_);
  auto xs = read_axis(in_);
  auto ys = read_axis(in_);
  grid_ = field::RectilinearGrid(std::move(xs), std::move(ys));
  data_begin_ = in_.tellg();
  frame_bytes_ = static_cast<std::streamoff>(
      sizeof(double) + grid_.sample_count() * sizeof(field::Vec2));
}

void DatasetReader::seek_frame(std::int64_t index) {
  DCSN_CHECK(index >= 0 && index < frames_, "dataset frame index out of range");
  in_.clear();
  in_.seekg(data_begin_ + index * frame_bytes_);
}

field::RectilinearVectorField DatasetReader::load(std::int64_t index) {
  seek_frame(index);
  (void)read_pod<double>(in_);  // time
  std::vector<field::Vec2> data(grid_.sample_count());
  in_.read(reinterpret_cast<char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(field::Vec2)));
  DCSN_CHECK(in_.good(), "truncated dataset frame");
  return {grid_, std::move(data)};
}

double DatasetReader::time_of(std::int64_t index) {
  seek_frame(index);
  return read_pod<double>(in_);
}

// --------------------------------------------------------------- browser ---

DataBrowser::DataBrowser(DatasetReader& reader, std::size_t cache_frames)
    : reader_(reader), capacity_(std::max<std::size_t>(1, cache_frames)) {
  DCSN_CHECK(reader.frame_count() > 0, "cannot browse an empty dataset");
}

const field::RectilinearVectorField& DataBrowser::fetch(std::int64_t frame) {
  const auto it = std::find_if(cache_.begin(), cache_.end(),
                               [frame](const auto& e) { return e.first == frame; });
  if (it != cache_.end()) {
    ++hits_;
    cache_.splice(cache_.begin(), cache_, it);  // move to front
    return cache_.front().second;
  }
  ++misses_;
  cache_.emplace_front(frame, reader_.load(frame));
  if (cache_.size() > capacity_) cache_.pop_back();
  return cache_.front().second;
}

const field::RectilinearVectorField& DataBrowser::current() {
  return fetch(position_);
}

double DataBrowser::current_time() { return reader_.time_of(position_); }

void DataBrowser::step() {
  const std::int64_t n = reader_.frame_count();
  if (direction_ == Direction::kForward) {
    position_ = (position_ + 1) % n;
  } else {
    position_ = (position_ + n - 1) % n;
  }
}

void DataBrowser::seek(std::int64_t frame) {
  DCSN_CHECK(frame >= 0 && frame < reader_.frame_count(),
             "seek target out of range");
  position_ = frame;
}

}  // namespace dcsn::sim
