// The scientific database and its browser (paper §5.2).
//
// The DNS application writes snapshots to disk for weeks, producing
// terabytes; the paper's browser "allows the user to first select
// visualization mappings and then play through any part of the data base".
// Dataset is that store at laptop scale: an append-only file of fixed-size
// rectilinear field snapshots with O(1) random access by frame number.
// DataBrowser adds the playback state (position, direction, looping) and a
// small LRU cache so scrubbing back and forth does not re-read the file.
#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "field/grid_field.hpp"

namespace dcsn::sim {

/// Appends snapshots to a dataset file. All snapshots share one grid.
class DatasetWriter {
 public:
  DatasetWriter(std::string path, const field::RectilinearGrid& grid);
  ~DatasetWriter();

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  /// Appends one snapshot taken at simulation time `time`.
  void append(const field::RectilinearVectorField& snapshot, double time);

  /// Flushes and finalizes the header. Called by the destructor too.
  void close();

  [[nodiscard]] std::int64_t frames_written() const { return frames_; }

 private:
  std::string path_;
  std::ofstream out_;
  field::RectilinearGrid grid_;
  std::int64_t frames_ = 0;
  bool closed_ = false;
};

/// Random-access reader.
class DatasetReader {
 public:
  explicit DatasetReader(const std::string& path);

  [[nodiscard]] std::int64_t frame_count() const { return frames_; }
  [[nodiscard]] const field::RectilinearGrid& grid() const { return grid_; }

  /// Loads frame `index` (0-based). Throws util::Error on bad index.
  [[nodiscard]] field::RectilinearVectorField load(std::int64_t index);

  /// Simulation time of frame `index`.
  [[nodiscard]] double time_of(std::int64_t index);

 private:
  void seek_frame(std::int64_t index);

  std::ifstream in_;
  field::RectilinearGrid grid_;
  std::int64_t frames_ = 0;
  std::streamoff data_begin_ = 0;
  std::streamoff frame_bytes_ = 0;
};

/// Playback over a DatasetReader with an LRU frame cache.
class DataBrowser {
 public:
  enum class Direction { kForward, kBackward };

  DataBrowser(DatasetReader& reader, std::size_t cache_frames = 8);

  /// The frame at the current position (cached).
  [[nodiscard]] const field::RectilinearVectorField& current();

  [[nodiscard]] std::int64_t position() const { return position_; }
  [[nodiscard]] double current_time();

  /// Steps one frame in the playback direction, wrapping around.
  void step();
  void seek(std::int64_t frame);
  void set_direction(Direction d) { direction_ = d; }
  [[nodiscard]] Direction direction() const { return direction_; }

  [[nodiscard]] std::size_t cache_hits() const { return hits_; }
  [[nodiscard]] std::size_t cache_misses() const { return misses_; }

 private:
  const field::RectilinearVectorField& fetch(std::int64_t frame);

  DatasetReader& reader_;
  std::size_t capacity_;
  // LRU: most recently used at the front.
  std::list<std::pair<std::int64_t, field::RectilinearVectorField>> cache_;
  std::int64_t position_ = 0;
  Direction direction_ = Direction::kForward;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace dcsn::sim
