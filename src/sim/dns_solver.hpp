// Direct numerical simulation substrate (paper §5.2).
//
// The paper browses a terabyte database produced by a spectral DNS code
// (Verstappen & Veldman) of turbulent flow around a block. That database is
// unavailable, so this module computes the closest laptop-scale equivalent:
// a 2D incompressible Navier–Stokes solver (Chorin projection with
// semi-Lagrangian advection) around a square block on the paper's 278x208
// grid. At the default Reynolds number the wake forms a Kármán vortex
// street — the vortex shedding and laminar-to-turbulent transition
// structures figure 7 shows. Snapshots are exported on a rectilinear grid
// stretched toward the block, matching the paper's data layout, and written
// to a Dataset for the browser application.
#pragma once

#include <cstdint>
#include <vector>

#include "field/grid_field.hpp"
#include "field/scalar_field.hpp"

namespace dcsn::sim {

struct DnsParams {
  int nx = 278;  ///< the paper's slice resolution
  int ny = 208;
  field::Rect domain{0.0, 0.0, 27.8, 20.8};  ///< block diameters ~ 2 units

  field::Rect block{6.0, 9.4, 8.0, 11.4};  ///< the obstacle
  double inflow_speed = 1.0;
  double viscosity = 5e-3;  ///< Re = U * D / nu = 400 with D = 2

  int pressure_iterations = 80;  ///< SOR sweeps per projection
  double sor_omega = 1.7;
  /// Inflow perturbation that breaks top/bottom symmetry so shedding starts
  /// promptly (physical DNS relies on round-off; we cannot wait that long).
  double perturbation = 0.02;
};

class DnsSolver {
 public:
  explicit DnsSolver(DnsParams params);

  /// Advances one time step (dt chosen from the advective CFL limit).
  void step();

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const DnsParams& params() const { return params_; }

  /// Current velocity on the solver's uniform grid.
  [[nodiscard]] const field::GridVectorField& velocity() const { return velocity_; }

  /// Pressure from the last projection.
  [[nodiscard]] const field::ScalarField& pressure() const { return pressure_; }

  /// Snapshot resampled onto a rectilinear grid stretched toward the block
  /// (`stretch` > 1 concentrates samples near it) — the paper's data format.
  [[nodiscard]] field::RectilinearVectorField snapshot(double stretch = 2.5) const;

  /// True for cells covered by the block (useful for masking and tests).
  [[nodiscard]] bool is_solid(int i, int j) const {
    return solid_[grid().linear_index(i, j)] != 0;
  }
  [[nodiscard]] const field::RegularGrid& grid() const { return velocity_.grid(); }

  /// Mean-flow kinetic energy — a cheap stability diagnostic for tests.
  [[nodiscard]] double kinetic_energy() const;

 private:
  void apply_boundaries(field::GridVectorField& v) const;
  void advect();
  void diffuse();
  void project();

  DnsParams params_;
  field::GridVectorField velocity_;
  field::GridVectorField scratch_;
  field::ScalarField pressure_;
  field::ScalarField divergence_;
  std::vector<std::uint8_t> solid_;
  double time_ = 0.0;
  double dt_ = 0.0;
  std::int64_t steps_ = 0;
};

}  // namespace dcsn::sim
