// The atmospheric pollution substrate (paper §5.1).
//
// The paper steers a smog prediction model (ref [6]) and visualizes its
// wind field with spot noise, the pollutant superimposed in color. That
// model and its data are not available, so this is the closest synthetic
// equivalent exercising the same code path (see DESIGN.md §2):
//
//   * wind — a synthetic weather system: a steady westerly base flow plus
//     rotating (geostrophic) winds around a handful of moving pressure
//     systems, sampled onto the paper's 53x55 regular grid every step;
//   * pollution — advection-diffusion-reaction of two species on the same
//     grid: an emitted precursor (think NOx) and a secondary pollutant
//     (think O3) produced from the precursor photochemically;
//   * steering — emission rates, wind parameters and diffusivity are
//     mutable between steps, exactly the user-controllable parameters of
//     the computational steering application.
#pragma once

#include <vector>

#include "field/grid_field.hpp"
#include "field/scalar_field.hpp"
#include "util/rng.hpp"

namespace dcsn::sim {

enum class Species : int { kPrecursor = 0, kOzone = 1 };

struct EmissionSource {
  field::Vec2 position;
  double rate = 1.0;  ///< concentration units per hour
};

struct SmogParams {
  int nx = 53;  ///< the paper's grid
  int ny = 55;
  field::Rect domain{0.0, 0.0, 1060.0, 1100.0};  ///< km, continental scale

  // Wind model.
  field::Vec2 base_wind{30.0, 5.0};  ///< km/h, prevailing westerly
  int pressure_systems = 3;
  double system_strength = 55.0;   ///< km/h peak rotational wind
  double system_radius = 250.0;    ///< km
  double system_speed = 40.0;      ///< km/h drift of the systems

  // Pollution model.
  double diffusivity = 15.0;       ///< km^2/h
  double photo_rate = 0.35;        ///< precursor -> ozone conversion, 1/h
  double precursor_decay = 0.08;   ///< deposition, 1/h
  double ozone_decay = 0.05;       ///< 1/h

  std::uint64_t seed = 7;
};

class SmogModel {
 public:
  explicit SmogModel(SmogParams params);

  /// Advances weather and chemistry by `dt` hours (internally substepped to
  /// respect the advection CFL limit).
  void step(double dt);

  /// Steering entry points — callable between steps, take effect next step.
  void set_base_wind(field::Vec2 wind) { params_.base_wind = wind; }
  void set_diffusivity(double d) { params_.diffusivity = d; }
  void set_photo_rate(double r) { params_.photo_rate = r; }
  void add_source(EmissionSource source) { sources_.push_back(source); }
  void set_source_rate(std::size_t index, double rate);
  [[nodiscard]] const std::vector<EmissionSource>& sources() const { return sources_; }

  [[nodiscard]] const field::GridVectorField& wind() const { return wind_; }
  [[nodiscard]] const field::ScalarField& concentration(Species s) const {
    return concentration_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double time_hours() const { return time_; }
  [[nodiscard]] const SmogParams& params() const { return params_; }

 private:
  void update_wind();
  void advect_diffuse_react(double dt);

  SmogParams params_;
  field::GridVectorField wind_;
  std::array<field::ScalarField, 2> concentration_;
  std::array<field::ScalarField, 2> scratch_;
  std::vector<EmissionSource> sources_;
  struct PressureSystem {
    field::Vec2 position;
    field::Vec2 drift;
    double sign;  ///< +1 cyclone, -1 anticyclone
  };
  std::vector<PressureSystem> systems_;
  double time_ = 0.0;
};

}  // namespace dcsn::sim
