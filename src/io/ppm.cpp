#include "io/ppm.hpp"

#include <fstream>

#include "util/error.hpp"

namespace dcsn::io {

void write_ppm(const std::string& path, const render::Image& image) {
  std::ofstream out(path, std::ios::binary);
  DCSN_CHECK(out.good(), "cannot open PPM output: " + path);
  out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const render::Rgb& p = image.at(x, y);
      out.put(static_cast<char>(p.r));
      out.put(static_cast<char>(p.g));
      out.put(static_cast<char>(p.b));
    }
  }
  DCSN_CHECK(out.good(), "short write to PPM output: " + path);
}

void write_pgm(const std::string& path, const render::Framebuffer& texture) {
  const render::Image img = render::texture_to_image(texture);
  std::ofstream out(path, std::ios::binary);
  DCSN_CHECK(out.good(), "cannot open PGM output: " + path);
  out << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) out.put(static_cast<char>(img.at(x, y).r));
  DCSN_CHECK(out.good(), "short write to PGM output: " + path);
}

render::Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCSN_CHECK(in.good(), "cannot open PGM input: " + path);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  DCSN_CHECK(magic == "P5", "not a P5 PGM: " + path);
  DCSN_CHECK(w > 0 && h > 0 && maxval == 255, "unsupported PGM header: " + path);
  in.get();  // the single whitespace after the header
  render::Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int byte = in.get();
      DCSN_CHECK(byte >= 0, "truncated PGM input: " + path);
      const auto g = static_cast<std::uint8_t>(byte);
      img.at(x, y) = {g, g, g};
    }
  }
  return img;
}

render::Image read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCSN_CHECK(in.good(), "cannot open PPM input: " + path);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  DCSN_CHECK(magic == "P6", "not a P6 PPM: " + path);
  DCSN_CHECK(w > 0 && h > 0 && maxval == 255, "unsupported PPM header: " + path);
  in.get();  // the single whitespace after the header
  render::Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      char rgb[3];
      in.read(rgb, 3);
      img.at(x, y) = {static_cast<std::uint8_t>(rgb[0]),
                      static_cast<std::uint8_t>(rgb[1]),
                      static_cast<std::uint8_t>(rgb[2])};
    }
  }
  DCSN_CHECK(in.good(), "truncated PPM input: " + path);
  return img;
}

}  // namespace dcsn::io
