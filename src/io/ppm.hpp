// PPM/PGM image output — the portable, dependency-free way to write the
// regenerated paper figures to disk.
#pragma once

#include <string>

#include "render/framebuffer.hpp"
#include "render/image.hpp"

namespace dcsn::io {

/// Binary PPM (P6).
void write_ppm(const std::string& path, const render::Image& image);

/// Binary PGM (P5) of a float texture through the default tone map.
void write_pgm(const std::string& path, const render::Framebuffer& texture);

/// Reads back a P6 file (for round-trip tests).
[[nodiscard]] render::Image read_ppm(const std::string& path);

/// Reads back a P5 file as a grayscale image (r = g = b), the inverse of
/// write_pgm's byte stream — for round-trip tests of the float→byte cast.
[[nodiscard]] render::Image read_pgm(const std::string& path);

}  // namespace dcsn::io
