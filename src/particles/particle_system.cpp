#include "particles/particle_system.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dcsn::particles {

ParticleSystem::ParticleSystem(ParticleSystemConfig config, field::Rect domain,
                               util::Rng rng)
    : config_(config), domain_(domain) {
  DCSN_CHECK(config_.count > 0, "particle count must be positive");
  DCSN_CHECK(config_.mean_lifetime > 0.0, "mean lifetime must be positive");
  DCSN_CHECK(config_.fade_fraction >= 0.0 && config_.fade_fraction <= 0.5,
             "fade fraction must lie in [0, 0.5]");
  stream_seed_ = rng();
  particles_.resize(static_cast<std::size_t>(config_.count));
  for (Particle& p : particles_) {
    respawn(p, rng);
    // Spread birth times uniformly across the life cycle so the initial
    // population is already in steady state.
    p.age = rng.uniform() * p.lifetime;
  }
}

void ParticleSystem::advance(const field::VectorField& f, double dt) {
  ++generation_;
  const auto n = static_cast<std::int64_t>(particles_.size());
  const std::uint64_t gen_salt =
      stream_seed_ ^ (static_cast<std::uint64_t>(generation_) * 0x9e3779b97f4a7c15ULL);
  std::int64_t respawned = 0;
#pragma omp parallel for schedule(static) reduction(+ : respawned)
  for (std::int64_t idx = 0; idx < n; ++idx) {
    Particle& p = particles_[static_cast<std::size_t>(idx)];
    p.position = step(f, p.position, dt, config_.method);
    p.age += dt;
    const bool died = p.age >= p.lifetime;
    const bool escaped =
        config_.respawn_out_of_domain && !domain_.contains(p.position);
    if (died || escaped) {
      // Per-particle deterministic stream: independent of thread count.
      util::Rng local(gen_salt ^ static_cast<std::uint64_t>(idx));
      respawn(p, local);
      ++respawned;
    }
  }
  last_respawns_ = respawned;
}

double ParticleSystem::fade_weight(const Particle& p, double fade_fraction) {
  if (p.lifetime <= 0.0) return 0.0;
  const double phase = std::clamp(p.age / p.lifetime, 0.0, 1.0);
  if (fade_fraction <= 0.0) return 1.0;
  // sin^2 ramps: C1-continuous so spot intensities never pop frame to frame.
  if (phase < fade_fraction) {
    const double t = phase / fade_fraction;
    const double s = std::sin(0.5 * std::numbers::pi * t);
    return s * s;
  }
  if (phase > 1.0 - fade_fraction) {
    const double t = (1.0 - phase) / fade_fraction;
    const double s = std::sin(0.5 * std::numbers::pi * t);
    return s * s;
  }
  return 1.0;
}

void ParticleSystem::respawn(Particle& p, util::Rng& rng) const {
  p.position = {rng.uniform(domain_.x0, domain_.x1), rng.uniform(domain_.y0, domain_.y1)};
  p.intensity = rng.intensity();
  p.age = 0.0;
  p.lifetime = config_.mean_lifetime * rng.uniform(0.5, 1.5);
}

}  // namespace dcsn::particles
