// The particle population behind an animated spot-noise texture.
//
// Each spot is tied to a particle (paper §2): a new animation frame advects
// every particle a small distance. Particles carry the spot's random
// intensity and a life cycle — spots fade in, live, fade out and respawn at
// a fresh random position, which avoids the frozen-pattern artifacts of
// immortal particles and is the "spot life cycle" parameter adjusted in
// figure 2.
#pragma once

#include <span>
#include <vector>

#include "field/vector_field.hpp"
#include "particles/integrators.hpp"
#include "util/rng.hpp"

namespace dcsn::particles {

struct Particle {
  field::Vec2 position;
  double intensity = 0.0;  ///< zero-mean random spot weight a_i
  double age = 0.0;        ///< seconds since (re)birth
  double lifetime = 1.0;   ///< seconds until respawn
};

struct ParticleSystemConfig {
  std::int64_t count = 1000;
  double mean_lifetime = 2.0;      ///< seconds; individual lifetimes jitter ±50%
  double fade_fraction = 0.25;     ///< head/tail fraction of life spent fading
  Integrator method = Integrator::kRk2;
  bool respawn_out_of_domain = true;
};

class ParticleSystem {
 public:
  /// Populates `count` particles uniformly over `domain`, ages randomized so
  /// the population's births are spread out (no synchronized global blink).
  ParticleSystem(ParticleSystemConfig config, field::Rect domain, util::Rng rng);

  /// Advects every particle by `dt` through `f`, ages it, and respawns those
  /// that died or left the domain. Parallelized with OpenMP; respawn draws
  /// come from per-particle hash streams so results are independent of the
  /// thread count.
  ///
  /// Temporal-coherence guarantee: a particle whose local velocity is zero
  /// keeps its position bit for bit (the integrators add an exact 0.0), and
  /// one inside the plateau of its life cycle keeps fade_weight() == 1.0
  /// exactly — so spots in stagnant flow are frame-to-frame identical and
  /// core::FrameDelta classifies them as unchanged.
  void advance(const field::VectorField& f, double dt);

  /// Particles respawned (death or domain exit) by the last advance() —
  /// the population churn that forces tile re-renders on the incremental
  /// path; the temporal benches report it alongside reuse rates.
  [[nodiscard]] std::int64_t last_respawn_count() const { return last_respawns_; }

  /// Life-cycle envelope in [0,1]: smooth fade-in / fade-out ramps.
  [[nodiscard]] static double fade_weight(const Particle& p, double fade_fraction);

  [[nodiscard]] double fade_weight(const Particle& p) const {
    return fade_weight(p, config_.fade_fraction);
  }

  [[nodiscard]] std::span<const Particle> particles() const { return particles_; }
  [[nodiscard]] std::span<Particle> particles() { return particles_; }
  [[nodiscard]] const ParticleSystemConfig& config() const { return config_; }
  [[nodiscard]] field::Rect domain() const { return domain_; }
  [[nodiscard]] std::int64_t generation() const { return generation_; }

 private:
  void respawn(Particle& p, util::Rng& rng) const;

  ParticleSystemConfig config_;
  field::Rect domain_;
  std::vector<Particle> particles_;
  std::uint64_t stream_seed_;  ///< base seed for per-particle respawn streams
  std::int64_t generation_ = 0;
  std::int64_t last_respawns_ = 0;
};

}  // namespace dcsn::particles
