#include "particles/seeding.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dcsn::particles {

std::vector<field::Vec2> seed_uniform(field::Rect domain, std::int64_t count,
                                      util::Rng& rng) {
  DCSN_CHECK(count >= 0, "seed count must be non-negative");
  std::vector<field::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k) {
    pts.push_back({rng.uniform(domain.x0, domain.x1), rng.uniform(domain.y0, domain.y1)});
  }
  return pts;
}

std::vector<field::Vec2> seed_jittered_grid(field::Rect domain, std::int64_t count,
                                            util::Rng& rng) {
  DCSN_CHECK(count >= 0, "seed count must be non-negative");
  if (count == 0) return {};
  // Pick a grid whose aspect matches the domain and whose cell count is >= count.
  const double aspect = domain.width() / domain.height();
  auto cols = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(count) * aspect)));
  cols = std::max<std::int64_t>(cols, 1);
  const std::int64_t rows = (count + cols - 1) / cols;
  const double cw = domain.width() / static_cast<double>(cols);
  const double ch = domain.height() / static_cast<double>(rows);

  std::vector<field::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (std::int64_t r = 0; r < rows && std::ssize(pts) < count; ++r) {
    for (std::int64_t c = 0; c < cols && std::ssize(pts) < count; ++c) {
      pts.push_back({domain.x0 + (static_cast<double>(c) + rng.uniform()) * cw,
                     domain.y0 + (static_cast<double>(r) + rng.uniform()) * ch});
    }
  }
  return pts;
}

namespace {
double radical_inverse(std::int64_t index, int base) {
  double result = 0.0;
  double f = 1.0 / base;
  while (index > 0) {
    result += f * static_cast<double>(index % base);
    index /= base;
    f /= base;
  }
  return result;
}
}  // namespace

std::vector<field::Vec2> seed_halton(field::Rect domain, std::int64_t count,
                                     std::int64_t offset) {
  DCSN_CHECK(count >= 0, "seed count must be non-negative");
  DCSN_CHECK(offset >= 0, "offset must be non-negative");
  std::vector<field::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k) {
    const std::int64_t idx = offset + k + 1;  // Halton index 0 is degenerate
    pts.push_back(domain.at(radical_inverse(idx, 2), radical_inverse(idx, 3)));
  }
  return pts;
}

}  // namespace dcsn::particles
