#include "particles/tracer.hpp"

#include <algorithm>

namespace dcsn::particles {

namespace {

// Unit-speed wrapper: integrating this field advances by arc length, not
// time, giving streamline points evenly spaced along the curve.
class UnitSpeedField final : public field::VectorField {
 public:
  UnitSpeedField(const field::VectorField& base, double direction,
                 double stagnation_speed)
      : base_(base), direction_(direction), stagnation_(stagnation_speed) {}

  [[nodiscard]] field::Vec2 sample(field::Vec2 p) const override {
    const field::Vec2 v = base_.sample(p);
    const double len = v.length();
    if (len < stagnation_) return {};
    return v * (direction_ / len);
  }

  [[nodiscard]] field::Rect domain() const override { return base_.domain(); }
  [[nodiscard]] double max_magnitude() const override { return 1.0; }

 private:
  const field::VectorField& base_;
  double direction_;
  double stagnation_;
};

}  // namespace

Streamline StreamlineTracer::trace(const field::VectorField& f, field::Vec2 seed,
                                   int steps_forward, int steps_backward) const {
  const field::Rect domain = f.domain();

  auto march = [&](double direction, int steps, std::vector<field::Vec2>& pts,
                   std::vector<field::Vec2>& tans) {
    const UnitSpeedField unit(f, direction, config_.stagnation_speed);
    field::Vec2 p = seed;
    for (int k = 0; k < steps; ++k) {
      const field::Vec2 v = unit.sample(p);
      if (v.length_sq() == 0.0) break;  // stagnation
      const field::Vec2 next = step(unit, p, config_.step_length, config_.method);
      if (config_.clamp_to_domain && !domain.contains(next)) break;
      if ((next - p).length_sq() == 0.0) break;  // no progress
      p = next;
      pts.push_back(p);
      tans.push_back(unit.sample(p) * direction);  // flow direction, not march direction
    }
  };

  std::vector<field::Vec2> fwd_pts, fwd_tans;
  std::vector<field::Vec2> bwd_pts, bwd_tans;
  fwd_pts.reserve(static_cast<std::size_t>(std::max(steps_forward, 0)));
  bwd_pts.reserve(static_cast<std::size_t>(std::max(steps_backward, 0)));
  march(+1.0, steps_forward, fwd_pts, fwd_tans);
  march(-1.0, steps_backward, bwd_pts, bwd_tans);

  Streamline line;
  line.points.reserve(bwd_pts.size() + 1 + fwd_pts.size());
  line.tangents.reserve(line.points.capacity());

  // Upstream points come out seed-first; reverse so the polyline runs
  // upstream -> seed -> downstream.
  for (auto it = bwd_pts.rbegin(); it != bwd_pts.rend(); ++it) line.points.push_back(*it);
  for (auto it = bwd_tans.rbegin(); it != bwd_tans.rend(); ++it) line.tangents.push_back(*it);

  line.seed_index = line.points.size();
  line.points.push_back(seed);
  {
    const field::Vec2 v = f.sample(seed);
    const double len = v.length();
    line.tangents.push_back(len >= config_.stagnation_speed ? v / len
                                                            : field::Vec2{1.0, 0.0});
  }

  line.points.insert(line.points.end(), fwd_pts.begin(), fwd_pts.end());
  line.tangents.insert(line.tangents.end(), fwd_tans.begin(), fwd_tans.end());
  return line;
}

}  // namespace dcsn::particles
