// Streamline tracing: the geometric substrate of bent spots.
//
// A bent spot (de Leeuw & van Wijk '95) is a textured mesh swept along a
// streamline through the spot's position, so the spot follows the flow even
// where curvature is high. The tracer integrates with fixed *spatial* step
// length (unit-speed field) so a spot's extent is controlled in texture
// space, independent of local velocity magnitude.
#pragma once

#include <vector>

#include "field/vector_field.hpp"
#include "particles/integrators.hpp"

namespace dcsn::particles {

struct TracerConfig {
  double step_length = 1.0;           ///< arc length per step, world units
  Integrator method = Integrator::kRk4;
  double stagnation_speed = 1e-9;     ///< stop when |v| falls below this
  bool clamp_to_domain = true;        ///< stop when leaving the field domain
};

/// A traced streamline: points[k] is the position after k steps from the
/// seed; tangents[k] the unit flow direction there. `seed_index` locates the
/// seed inside `points` when tracing both directions.
struct Streamline {
  std::vector<field::Vec2> points;
  std::vector<field::Vec2> tangents;
  std::size_t seed_index = 0;

  [[nodiscard]] std::size_t size() const { return points.size(); }
};

class StreamlineTracer {
 public:
  explicit StreamlineTracer(TracerConfig config = {}) : config_(config) {}

  /// Traces `steps_forward` steps downstream and `steps_backward` upstream
  /// of `seed`; the seed itself is always included. Stops early at domain
  /// boundaries or stagnation points, so the result may be shorter than
  /// requested (never empty).
  [[nodiscard]] Streamline trace(const field::VectorField& f, field::Vec2 seed,
                                 int steps_forward, int steps_backward) const;

  [[nodiscard]] const TracerConfig& config() const { return config_; }

 private:
  TracerConfig config_;
};

}  // namespace dcsn::particles
