// Seed-point generation strategies.
//
// Default spot noise draws positions uniformly at random (the x_i of the
// spot-noise definition). Jittered-grid and Halton seeding trade some
// randomness for more even coverage — fewer accidental bare patches at low
// spot counts — and are what the tiled engine uses to bound per-tile counts.
#pragma once

#include <vector>

#include "field/vec2.hpp"
#include "util/rng.hpp"

namespace dcsn::particles {

/// `count` i.i.d. uniform positions in `domain`.
[[nodiscard]] std::vector<field::Vec2> seed_uniform(field::Rect domain,
                                                    std::int64_t count,
                                                    util::Rng& rng);

/// Stratified sampling: the domain is split into ~count cells and one point
/// is jittered inside each. Returns exactly `count` points.
[[nodiscard]] std::vector<field::Vec2> seed_jittered_grid(field::Rect domain,
                                                          std::int64_t count,
                                                          util::Rng& rng);

/// Low-discrepancy Halton sequence (bases 2 and 3) mapped into `domain`.
[[nodiscard]] std::vector<field::Vec2> seed_halton(field::Rect domain,
                                                   std::int64_t count,
                                                   std::int64_t offset = 0);

}  // namespace dcsn::particles
