// Numerical integrators for particle advection (pipeline step 2).
//
// The paper advects every spot's particle a small distance per frame. Euler
// is the 1991 original's choice; RK4 is what the bent-spot streamlines need
// near high-curvature regions. All steppers take velocity from the field at
// intermediate positions, so they work with any VectorField.
#pragma once

#include "field/vector_field.hpp"

namespace dcsn::particles {

enum class Integrator { kEuler, kRk2, kRk4 };

[[nodiscard]] inline field::Vec2 euler_step(const field::VectorField& f,
                                            field::Vec2 p, double dt) {
  return p + f.sample(p) * dt;
}

/// Midpoint rule (second order).
[[nodiscard]] inline field::Vec2 rk2_step(const field::VectorField& f,
                                          field::Vec2 p, double dt) {
  const field::Vec2 k1 = f.sample(p);
  const field::Vec2 k2 = f.sample(p + k1 * (dt * 0.5));
  return p + k2 * dt;
}

/// Classic fourth-order Runge–Kutta.
[[nodiscard]] inline field::Vec2 rk4_step(const field::VectorField& f,
                                          field::Vec2 p, double dt) {
  const field::Vec2 k1 = f.sample(p);
  const field::Vec2 k2 = f.sample(p + k1 * (dt * 0.5));
  const field::Vec2 k3 = f.sample(p + k2 * (dt * 0.5));
  const field::Vec2 k4 = f.sample(p + k3 * dt);
  return p + (k1 + (k2 + k3) * 2.0 + k4) * (dt / 6.0);
}

[[nodiscard]] inline field::Vec2 step(const field::VectorField& f, field::Vec2 p,
                                      double dt, Integrator method) {
  switch (method) {
    case Integrator::kEuler:
      return euler_step(f, p, dt);
    case Integrator::kRk2:
      return rk2_step(f, p, dt);
    case Integrator::kRk4:
      return rk4_step(f, p, dt);
  }
  return p;  // unreachable
}

}  // namespace dcsn::particles
