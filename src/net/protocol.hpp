// Length-prefixed binary frame protocol (the wire half of the streaming
// frame server).
//
// Every message is one frame on the wire:
//
//   [u32 magic 'DCSN'] [u8 type] [u32 payload_len] [payload_len bytes]
//
// All integers are little-endian regardless of host order, written and read
// byte by byte; floating-point values travel as the bit pattern of their
// IEEE-754 representation (std::bit_cast through the matching unsigned
// type), never through text — the whole point of the delta stream is that a
// client framebuffer reassembles *bit-identically* to the server's engine
// texture, so the serializer must not perturb a single mantissa bit.
//
// A frame result travels as a kFrameBegin header (dimensions, the engine's
// Framebuffer::content_hash, tile count, flags) followed by one kFrameTile
// per transmitted tile (pixel rect + an FNV-1a hash binding the rect to its
// payload, so a reordered or swapped payload is rejected) and a kFrameEnd.
// Clean tiles are simply not transmitted: the client's previous pixels are
// already bit-exact there (the PR 4 determinism lattice), which is how
// core::FrameDelta doubles as bandwidth compression.
//
// Defensive decoding: WireReader bounds-checks every get, read_message()
// rejects bad magic, oversized declared lengths (kMaxPayloadBytes) and
// mid-message EOF with ProtocolError — the torture suite in
// tests/test_net.cpp feeds exactly those corruptions.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/spot_params.hpp"
#include "core/spot_source.hpp"
#include "field/vector_field.hpp"
#include "util/error.hpp"

namespace dcsn::net {

/// Malformed wire data: bad magic, oversized/truncated payload, a payload
/// shorter than its message claims, or an out-of-range enum value.
class ProtocolError : public util::Error {
 public:
  explicit ProtocolError(const std::string& what) : util::Error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x4E534344u;  // "DCSN" little-endian
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on a declared payload length. A 4 KiB texture at f32 is
/// 64 MiB; anything above this is a corrupt or hostile length prefix, not a
/// frame, and must be rejected *before* allocating.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
inline constexpr std::size_t kHeaderBytes = 9;

enum class MsgType : std::uint8_t {
  // client -> server
  kOpenSession = 1,
  kSubmit = 2,
  kCancel = 3,
  kHealthReq = 4,
  kCloseSession = 5,
  // server -> client
  kSessionOpened = 64,
  kSubmitAck = 65,
  kFrameBegin = 66,
  kFrameTile = 67,
  kFrameEnd = 68,
  kJobError = 69,
  kHealthResp = 70,
  kError = 71,
};

/// Little-endian append-only serializer.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    // Byte loop instead of insert(begin, end): GCC 12's -Wstringop-overflow
    // false-positives on short-string iterator inserts under -O2.
    for (const char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  }
  void bytes(const void* data, std::size_t n) {
    if (n == 0) return;
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian deserializer over a received payload.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] float f32() { return std::bit_cast<float>(u32()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> raw(std::size_t n) { return take(n); }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Call after decoding a full message: trailing garbage is a protocol
  /// violation, not padding.
  void expect_end() const {
    if (remaining() != 0) throw ProtocolError("trailing bytes after message payload");
  }

 private:
  [[nodiscard]] std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n) throw ProtocolError("message payload truncated");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Server-hosted dataset selection: the client names an analytic field and
/// its parameters, the server instantiates it (the smog-browser model —
/// data lives next to the engine, only frames cross the wire).
struct FieldSpec {
  enum class Kind : std::uint8_t {
    kUniform = 0,        ///< a=vx, b=vy
    kRankineVortex = 1,  ///< a=center.x, b=center.y, c=strength, d=core_radius
    kTaylorGreen = 2,    ///< a=amplitude
    kDoubleGyre = 3,     ///< a=amplitude, b=eps, c=omega, d=t (domain ignored)
  };

  Kind kind = Kind::kRankineVortex;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double d = 0.0;
  field::Rect domain{0.0, 0.0, 1.0, 1.0};

  void encode(WireWriter& w) const;
  [[nodiscard]] static FieldSpec decode(WireReader& r);
  /// Instantiates the named field. Throws ProtocolError on an unknown kind.
  [[nodiscard]] std::unique_ptr<field::VectorField> make_field() const;
};

struct OpenSessionMsg {
  std::uint32_t version = kProtocolVersion;
  std::int32_t priority = 0;
  FieldSpec field;
  core::SynthesisConfig synthesis;
  core::DncConfig dnc;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static OpenSessionMsg decode(WireReader& r);
};

struct SubmitMsg {
  static constexpr std::uint8_t kFlagIncremental = 1u << 0;

  std::uint64_t client_tag = 0;
  std::uint8_t flags = 0;
  double deadline_seconds = std::numeric_limits<double>::infinity();
  std::uint8_t policy = 0;  ///< core::SubmitOptions::DeadlinePolicy
  std::int32_t max_retries = 0;
  std::vector<core::SpotInstance> spots;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static SubmitMsg decode(WireReader& r);
};

struct CancelMsg {
  std::int64_t job_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static CancelMsg decode(WireReader& r);
};

struct SessionOpenedMsg {
  std::int64_t session_id = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static SessionOpenedMsg decode(WireReader& r);
};

struct SubmitAckMsg {
  std::uint64_t client_tag = 0;
  std::int64_t job_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static SubmitAckMsg decode(WireReader& r);
};

struct FrameBeginMsg {
  static constexpr std::uint8_t kFlagDegraded = 1u << 0;
  /// Every tile of the frame is transmitted (first frame, or the delta
  /// baseline was invalidated by a degraded/failed frame).
  static constexpr std::uint8_t kFlagFull = 1u << 1;

  std::uint64_t client_tag = 0;
  std::int64_t job_id = 0;
  std::uint64_t content_hash = 0;  ///< Framebuffer::content_hash of the frame
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::uint32_t tile_count = 0;  ///< kFrameTile messages that follow
  std::uint8_t flags = 0;
  std::int64_t service_seq = 0;
  std::int32_t attempts = 1;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static FrameBeginMsg decode(WireReader& r);
};

struct FrameTileMsg {
  std::int32_t x0 = 0;
  std::int32_t y0 = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;
  /// tile_payload_hash over (rect, pixels): binds the payload to its rect,
  /// so swapping two tiles' pixel blocks — same bytes, wrong place — fails
  /// verification even though each block is individually intact.
  std::uint64_t tile_hash = 0;
  std::vector<float> pixels;  ///< row-major, width*height

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static FrameTileMsg decode(WireReader& r);
};

/// FNV-1a over the rect followed by the raw pixel bits.
[[nodiscard]] std::uint64_t tile_payload_hash(std::int32_t x0, std::int32_t y0,
                                              std::int32_t width,
                                              std::int32_t height,
                                              std::span<const float> pixels);

struct FrameEndMsg {
  std::uint64_t client_tag = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static FrameEndMsg decode(WireReader& r);
};

/// Why a submitted job produced no frame.
enum class JobErrorCode : std::uint8_t {
  kCanceled = 1,
  kTimedOut = 2,
  kRejected = 3,
  kQuarantined = 4,
  kFailed = 5,
};

struct JobErrorMsg {
  std::uint64_t client_tag = 0;
  std::uint8_t code = 0;  ///< JobErrorCode
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static JobErrorMsg decode(WireReader& r);
};

/// Service-lifetime totals of core::ServiceHealth, flattened for the wire.
struct HealthRespMsg {
  std::int64_t completed = 0;
  std::int64_t degraded = 0;
  std::int64_t failed = 0;
  std::int64_t retries = 0;
  std::int64_t timeouts = 0;
  std::int64_t canceled = 0;
  std::int64_t rejected = 0;
  std::int64_t quarantined = 0;
  std::int64_t yielded = 0;
  std::int64_t breaker_trips = 0;
  double clock_now = 0.0;
  std::int32_t open_sessions = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static HealthRespMsg decode(WireReader& r);
};

struct ErrorMsg {
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ErrorMsg decode(WireReader& r);
};

/// Prepends the 9-byte header to `payload`.
[[nodiscard]] std::vector<std::uint8_t> frame_message(
    MsgType type, std::span<const std::uint8_t> payload);

}  // namespace dcsn::net
