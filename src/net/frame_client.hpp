// Synchronous client for the streaming frame protocol.
//
// Single-threaded by design: submit() writes a request and returns a client
// tag immediately (frames pipeline server-side up to the server's inflight
// ceiling); await_frame() reads messages until one full frame sequence —
// Begin, the dirty tiles, End — has been applied to the local framebuffer.
//
// Verification is the protocol's backbone: every tile's payload hash is
// checked against its rect+pixels (a reordered or swapped payload fails
// here), and after the last tile the reassembled framebuffer's
// content_hash must equal the engine hash in the frame header bit for bit.
// A mismatch throws — a client never silently displays a corrupt frame.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "core/spot_source.hpp"
#include "core/synthesis_service.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "render/framebuffer.hpp"

namespace dcsn::net {

/// The server reported a job-level failure (kJobError) for a submitted
/// frame: canceled, timed out, rejected, quarantined or failed.
class ServerJobError : public util::Error {
 public:
  ServerJobError(JobErrorCode code, const std::string& message)
      : util::Error("server job error: " + message), code_(code) {}
  [[nodiscard]] JobErrorCode code() const { return code_; }

 private:
  JobErrorCode code_;
};

/// Per-submit wire options (mirrors core::SubmitOptions' wire subset).
struct ClientSubmitOptions {
  bool incremental = true;
  double deadline_seconds = std::numeric_limits<double>::infinity();
  core::SubmitOptions::DeadlinePolicy policy =
      core::SubmitOptions::DeadlinePolicy::kStrict;
  int max_retries = 0;
};

class FrameClient {
 public:
  /// What await_frame() hands back besides the framebuffer update.
  struct FrameResult {
    std::uint64_t client_tag = 0;
    std::int64_t job_id = 0;
    std::uint64_t content_hash = 0;
    bool degraded = false;
    bool full = false;  ///< every tile transmitted (no delta baseline)
    int tiles = 0;      ///< tiles actually transmitted
    /// Bytes on the wire for this frame: headers + tile payloads. The
    /// bench's delta-vs-full ratio numerator.
    std::uint64_t wire_bytes = 0;
    std::int64_t service_seq = 0;
    int attempts = 1;
  };

  explicit FrameClient(const std::string& socket_path);
  /// Wraps an already-connected socket (Socket::pair() loopback tests).
  explicit FrameClient(Socket socket);

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// Opens this connection's session. Must be called once, first.
  SessionOpenedMsg open_session(const FieldSpec& field,
                                const core::SynthesisConfig& synthesis,
                                const core::DncConfig& dnc, int priority = 0);

  /// Sends one frame request; returns its client tag without waiting.
  std::uint64_t submit(std::span<const core::SpotInstance> spots,
                       const ClientSubmitOptions& options = {});

  /// Blocks until the next frame (in submit order) is fully reassembled
  /// and verified. Throws ServerJobError when the server reported the job
  /// failed, ProtocolError on hash mismatch or malformed stream, and
  /// ConnectionClosed when the server went away.
  FrameResult await_frame();

  /// Blocks until the server's ack for `client_tag` arrives; returns the
  /// job id (the handle cancel() needs).
  std::int64_t job_id_for(std::uint64_t client_tag);

  void cancel(std::int64_t job_id);

  /// Round-trips a health request.
  HealthRespMsg health();

  /// The reassembled texture: after await_frame() it is bit-identical to
  /// the server engine's framebuffer (verified via content_hash).
  [[nodiscard]] const render::Framebuffer& framebuffer() const { return fb_; }

  /// Half-closes the write side (the goodbye) — the server reader sees EOF
  /// and drains what was submitted.
  void finish_writes();

 private:
  /// One frame outcome in submit order: a result or a failure.
  struct FrameEvent {
    std::optional<FrameResult> result;
    std::optional<ServerJobError> failure;
  };

  /// Reads one message and dispatches it to the ack map / frame queue /
  /// health slot. A kFrameBegin consumes its whole contiguous sequence.
  void pump_one();
  void apply_frame_sequence(const FrameBeginMsg& begin,
                            std::size_t begin_payload_bytes);

  Socket socket_;
  render::Framebuffer fb_;
  bool session_open_ = false;
  std::uint64_t next_tag_ = 1;
  std::map<std::uint64_t, std::int64_t> acks_;  ///< tag -> job id
  std::deque<FrameEvent> frames_;
  std::deque<HealthRespMsg> health_;
};

}  // namespace dcsn::net
