#include "net/frame_server.hpp"

#include <algorithm>
#include <utility>

#include "core/frame_delta.hpp"
#include "util/threading.hpp"

namespace dcsn::net {

FrameServer::FrameServer(FrameServerOptions options, core::Runtime& runtime)
    : options_(std::move(options)), service_(options_.service, runtime) {
  if (!options_.socket_path.empty()) {
    listener_ = listen_unix(options_.socket_path);
    accept_thread_ = std::jthread([this] { accept_loop(); });
  }
}

FrameServer::~FrameServer() { stop(); }

void FrameServer::stop() {
  if (stopping_.exchange(true)) return;
  // Unblock the accept poll and refuse new connections.
  listener_.shutdown_read();
  // Half-close every connection: readers see EOF and stop accepting work;
  // pumps drain what was already submitted (the service is still running,
  // so every pending ticket resolves) and deliver it before exiting.
  {
    util::MutexLock lock(mutex_);
    for (auto& conn : connections_) conn->socket.shutdown_read();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_finished(/*all=*/true);  // joins reader/pump threads
  listener_.close();
  service_.shutdown(/*drain=*/true);
}

void FrameServer::adopt(Socket socket) {
  if (stopping_.load()) throw util::Error("server is stopping");
  spawn_connection(std::move(socket));
}

void FrameServer::spawn_connection(Socket socket) {
  auto conn = std::make_unique<Connection>(std::move(socket));
  Connection* raw = conn.get();
  {
    util::MutexLock lock(mutex_);
    connections_.push_back(std::move(conn));
  }
  raw->reader = std::jthread([this, raw] { reader_loop(*raw); });
  raw->pump = std::jthread([this, raw] { pump_loop(*raw); });
}

void FrameServer::reap_finished(bool all) {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    util::MutexLock lock(mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (all || (*it)->finished.load()) {
        dead.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  dead.clear();  // jthread dtors join outside the lock
}

void FrameServer::accept_loop() {
  util::set_current_thread_name("dcsn-accept");
  while (!stopping_.load()) {
    std::optional<Socket> accepted = accept_connection(listener_, 100);
    reap_finished(/*all=*/false);
    if (!accepted.has_value()) continue;
    if (stopping_.load()) break;  // raced with stop(): drop the connection
    spawn_connection(std::move(*accepted));
  }
}

void FrameServer::send_control(Connection& conn, MsgType type,
                               std::span<const std::uint8_t> payload) {
  util::MutexLock lock(conn.write_mutex);
  send_message(conn.socket, type, payload);
}

void FrameServer::handle_open_session(Connection& conn, WireReader& reader) {
  if (conn.session_open) {
    throw ProtocolError("session already open on this connection");
  }
  const OpenSessionMsg msg = OpenSessionMsg::decode(reader);
  conn.field = msg.field.make_field();
  conn.session =
      service_.open_session(msg.synthesis, msg.dnc, msg.priority);
  // The engine's own world->pixel mapping and conservative spot extent:
  // dirty_tiles with these inputs is the same predicate that makes
  // incremental resynthesis bit-exact, so an untransmitted wire tile is
  // provably unchanged on the client.
  conn.generator =
      std::make_unique<core::SpotGeometryGenerator>(msg.synthesis, *conn.field);
  conn.wire_tiles = core::make_tile_grid(
      msg.synthesis.texture_width, msg.synthesis.texture_height,
      std::max(1, options_.wire_tiles));
  conn.session_open = true;

  SessionOpenedMsg reply;
  reply.session_id = conn.session;
  reply.width = msg.synthesis.texture_width;
  reply.height = msg.synthesis.texture_height;
  send_control(conn, MsgType::kSessionOpened, reply.encode());
}

void FrameServer::handle_submit(Connection& conn, WireReader& reader) {
  SubmitMsg msg = SubmitMsg::decode(reader);
  if (!conn.session_open) {
    throw ProtocolError("submit before open_session");
  }

  core::SynthesisRequest request;
  request.field = conn.field.get();
  request.spots = msg.spots;  // copy: the pump needs its own diff snapshot
  request.incremental = (msg.flags & SubmitMsg::kFlagIncremental) != 0;
  request.capture_texture = true;  // the pump encodes pixels from the result

  core::SubmitOptions options;
  options.deadline_seconds = msg.deadline_seconds;
  options.max_retries = msg.max_retries;
  options.policy =
      static_cast<core::SubmitOptions::DeadlinePolicy>(msg.policy);

  core::SynthesisService::JobTicket ticket;
  try {
    ticket = service_.submit(conn.session, std::move(request), options);
  } catch (const core::JobRejected& e) {
    JobErrorMsg err;
    err.client_tag = msg.client_tag;
    err.code = static_cast<std::uint8_t>(JobErrorCode::kRejected);
    err.message = e.what();
    send_control(conn, MsgType::kJobError, err.encode());
    return;
  } catch (const core::SessionQuarantined& e) {
    JobErrorMsg err;
    err.client_tag = msg.client_tag;
    err.code = static_cast<std::uint8_t>(JobErrorCode::kQuarantined);
    err.message = e.what();
    send_control(conn, MsgType::kJobError, err.encode());
    return;
  }

  SubmitAckMsg ack;
  ack.client_tag = msg.client_tag;
  ack.job_id = ticket.id;
  {
    util::MutexLock lock(conn.mutex);
    // Backpressure: with max_inflight undelivered frames, stop here — the
    // socket stops draining, the kernel buffer fills, the client blocks.
    while (static_cast<int>(conn.pending.size()) >= options_.max_inflight &&
           !conn.pump_done) {
      conn.cv.wait(lock);
    }
    if (conn.pump_done) throw ConnectionClosed();
    PendingFrame frame;
    frame.client_tag = msg.client_tag;
    frame.ticket = std::move(ticket);
    frame.spots = std::move(msg.spots);
    conn.pending.push_back(std::move(frame));
  }
  conn.cv.notify_all();
  send_control(conn, MsgType::kSubmitAck, ack.encode());
}

void FrameServer::reader_loop(Connection& conn) {
  util::set_current_thread_name("dcsn-net-rd");
  try {
    MsgType type{};
    std::vector<std::uint8_t> payload;
    while (!stopping_.load() && read_message(conn.socket, &type, &payload)) {
      WireReader reader(payload);
      switch (type) {
        case MsgType::kOpenSession:
          handle_open_session(conn, reader);
          break;
        case MsgType::kSubmit:
          handle_submit(conn, reader);
          break;
        case MsgType::kCancel: {
          const CancelMsg msg = CancelMsg::decode(reader);
          service_.cancel(msg.job_id);
          break;
        }
        case MsgType::kHealthReq: {
          const core::ServiceHealth h = service_.health();
          HealthRespMsg reply;
          reply.completed = h.completed;
          reply.degraded = h.degraded;
          reply.failed = h.failed;
          reply.retries = h.retries;
          reply.timeouts = h.timeouts;
          reply.canceled = h.canceled;
          reply.rejected = h.rejected;
          reply.quarantined = h.quarantined;
          reply.yielded = h.yielded;
          reply.breaker_trips = h.breaker_trips;
          reply.clock_now = h.clock_now;
          reply.open_sessions = static_cast<std::int32_t>(h.sessions.size());
          send_control(conn, MsgType::kHealthResp, reply.encode());
          break;
        }
        case MsgType::kCloseSession:
          if (conn.session_open) service_.close_session(conn.session);
          break;
        default:
          throw ProtocolError("unexpected message type from client");
      }
    }
  } catch (const std::exception& e) {
    // Malformed input or a vanished peer: report best-effort, then drop the
    // connection. One bad client must not take the server down.
    try {
      ErrorMsg err;
      err.message = e.what();
      send_control(conn, MsgType::kError, err.encode());
    } catch (...) {
    }
  }
  {
    util::MutexLock lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_all();
}

void FrameServer::send_frame(Connection& conn, PendingFrame& frame,
                             core::SynthesisResult& result) {
  const render::Framebuffer& texture = *result.texture;
  const bool degraded = result.stats.degraded;
  // A valid baseline plus a clean (non-degraded) frame allows a delta; the
  // first frame and any frame after a degraded/failed one ship full,
  // because a degraded frame's stale pixels break the spot<->pixel
  // correspondence the diff relies on.
  const bool full = !conn.baseline_valid || degraded;

  std::vector<const core::Tile*> to_send;
  if (full) {
    to_send.reserve(conn.wire_tiles.size());
    for (const core::Tile& t : conn.wire_tiles) to_send.push_back(&t);
  } else {
    const core::FrameDelta delta =
        core::diff_spots(conn.prev_spots, frame.spots);
    const std::vector<std::uint8_t> dirty = core::dirty_tiles(
        delta, conn.prev_spots, frame.spots, conn.generator->mapping(),
        conn.generator->max_extent_px(), conn.wire_tiles);
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      if (dirty[i] != 0) to_send.push_back(&conn.wire_tiles[i]);
    }
  }

  FrameBeginMsg begin;
  begin.client_tag = frame.client_tag;
  begin.job_id = frame.ticket.id;
  begin.content_hash = result.content_hash;
  begin.width = texture.width();
  begin.height = texture.height();
  begin.tile_count = static_cast<std::uint32_t>(to_send.size());
  begin.flags = (degraded ? FrameBeginMsg::kFlagDegraded : 0) |
                (full ? FrameBeginMsg::kFlagFull : 0);
  begin.service_seq = result.service_seq;
  begin.attempts = result.attempts;

  render::Framebuffer scratch;
  {
    // Hold the write mutex across the whole Begin -> Tiles -> End sequence
    // so reader-thread control replies cannot splice into the frame.
    util::MutexLock lock(conn.write_mutex);
    send_message(conn.socket, MsgType::kFrameBegin, begin.encode());
    for (const core::Tile* tile : to_send) {
      scratch.reset(tile->width, tile->height);
      texture.extract_rect_into(scratch, tile->x0, tile->y0);
      FrameTileMsg msg;
      msg.x0 = tile->x0;
      msg.y0 = tile->y0;
      msg.width = tile->width;
      msg.height = tile->height;
      const auto pixels = scratch.pixels();
      const std::span<const float> flat(pixels.data(), scratch.pixel_count());
      msg.tile_hash =
          tile_payload_hash(msg.x0, msg.y0, msg.width, msg.height, flat);
      msg.pixels.assign(flat.begin(), flat.end());
      send_message(conn.socket, MsgType::kFrameTile, msg.encode());
    }
    FrameEndMsg end;
    end.client_tag = frame.client_tag;
    send_message(conn.socket, MsgType::kFrameEnd, end.encode());
  }

  if (degraded) {
    // The client now holds stale pixels; the next clean frame must ship
    // full because prev_spots no longer describes what the client sees.
    conn.baseline_valid = false;
  } else {
    conn.prev_spots = std::move(frame.spots);
    conn.baseline_valid = true;
  }
}

void FrameServer::pump_loop(Connection& conn) {
  util::set_current_thread_name("dcsn-net-tx");
  for (;;) {
    PendingFrame frame;
    {
      util::MutexLock lock(conn.mutex);
      while (conn.pending.empty() && !conn.reader_done) conn.cv.wait(lock);
      if (conn.pending.empty()) break;  // reader done and nothing left
      frame = std::move(conn.pending.front());
      conn.pending.pop_front();
    }
    conn.cv.notify_all();  // backpressure release

    JobErrorMsg err;
    err.client_tag = frame.client_tag;
    try {
      core::SynthesisResult result = frame.ticket.result.get();
      send_frame(conn, frame, result);
      continue;
    } catch (const core::JobCanceled& e) {
      err.code = static_cast<std::uint8_t>(JobErrorCode::kCanceled);
      err.message = e.what();
    } catch (const core::JobTimedOut& e) {
      err.code = static_cast<std::uint8_t>(JobErrorCode::kTimedOut);
      err.message = e.what();
    } catch (const std::exception& e) {
      err.code = static_cast<std::uint8_t>(JobErrorCode::kFailed);
      err.message = e.what();
    }
    // A failed/canceled/timed-out job delivered nothing; the engine may
    // advance on retry-after-failure paths, so be conservative and resend
    // full next time.
    conn.baseline_valid = false;
    try {
      send_control(conn, MsgType::kJobError, err.encode());
    } catch (...) {
      break;  // peer gone: nothing left to deliver to
    }
  }
  {
    util::MutexLock lock(conn.mutex);
    conn.pump_done = true;
  }
  conn.cv.notify_all();  // a reader blocked on backpressure must not hang
  if (conn.session_open) service_.close_session(conn.session);
  // If we bailed early (peer vanished) the reader may still be blocked in
  // recv — half-close the read side so it sees EOF and exits promptly
  // before the accept loop joins this connection.
  conn.socket.shutdown_read();
  conn.socket.shutdown_write();
  conn.finished.store(true);
}

}  // namespace dcsn::net
