#include "net/frame_client.hpp"

#include <algorithm>

namespace dcsn::net {

FrameClient::FrameClient(const std::string& socket_path)
    : socket_(connect_unix(socket_path)) {}

FrameClient::FrameClient(Socket socket) : socket_(std::move(socket)) {}

SessionOpenedMsg FrameClient::open_session(
    const FieldSpec& field, const core::SynthesisConfig& synthesis,
    const core::DncConfig& dnc, int priority) {
  if (session_open_) throw util::Error("session already open");
  OpenSessionMsg msg;
  msg.priority = priority;
  msg.field = field;
  msg.synthesis = synthesis;
  msg.dnc = dnc;
  send_message(socket_, MsgType::kOpenSession, msg.encode());

  MsgType type{};
  std::vector<std::uint8_t> payload;
  if (!read_message(socket_, &type, &payload)) throw ConnectionClosed();
  WireReader reader(payload);
  if (type == MsgType::kError) {
    throw util::Error("server refused session: " +
                      ErrorMsg::decode(reader).message);
  }
  if (type != MsgType::kSessionOpened) {
    throw ProtocolError("expected kSessionOpened");
  }
  const SessionOpenedMsg opened = SessionOpenedMsg::decode(reader);
  fb_.reset(opened.width, opened.height);
  session_open_ = true;
  return opened;
}

std::uint64_t FrameClient::submit(std::span<const core::SpotInstance> spots,
                                  const ClientSubmitOptions& options) {
  if (!session_open_) throw util::Error("submit before open_session");
  SubmitMsg msg;
  msg.client_tag = next_tag_++;
  msg.flags = options.incremental ? SubmitMsg::kFlagIncremental : 0;
  msg.deadline_seconds = options.deadline_seconds;
  msg.policy = static_cast<std::uint8_t>(options.policy);
  msg.max_retries = options.max_retries;
  msg.spots.assign(spots.begin(), spots.end());
  send_message(socket_, MsgType::kSubmit, msg.encode());
  return msg.client_tag;
}

void FrameClient::apply_frame_sequence(const FrameBeginMsg& begin,
                                       std::size_t begin_payload_bytes) {
  if (begin.width != fb_.width() || begin.height != fb_.height()) {
    throw ProtocolError("frame dimensions do not match the session");
  }
  FrameResult result;
  result.client_tag = begin.client_tag;
  result.job_id = begin.job_id;
  result.content_hash = begin.content_hash;
  result.degraded = (begin.flags & FrameBeginMsg::kFlagDegraded) != 0;
  result.full = (begin.flags & FrameBeginMsg::kFlagFull) != 0;
  result.tiles = static_cast<int>(begin.tile_count);
  result.service_seq = begin.service_seq;
  result.attempts = begin.attempts;
  result.wire_bytes = kHeaderBytes + begin_payload_bytes;

  // The server sends a frame sequence contiguously (its write mutex is
  // held across Begin..End), so every next message must belong to it.
  render::Framebuffer tile_fb;
  MsgType type{};
  std::vector<std::uint8_t> payload;
  for (std::uint32_t i = 0; i < begin.tile_count; ++i) {
    if (!read_message(socket_, &type, &payload)) {
      throw ProtocolError("connection closed mid-frame");
    }
    if (type != MsgType::kFrameTile) {
      throw ProtocolError("expected kFrameTile inside a frame sequence");
    }
    WireReader reader(payload);
    const FrameTileMsg tile = FrameTileMsg::decode(reader);
    if (tile.x0 < 0 || tile.y0 < 0 || tile.x0 + tile.width > fb_.width() ||
        tile.y0 + tile.height > fb_.height()) {
      throw ProtocolError("tile rect outside the framebuffer");
    }
    // The payload hash binds pixels to their rect: a swapped or reordered
    // payload — valid bytes in the wrong tile — fails here.
    const std::uint64_t expected = tile_payload_hash(
        tile.x0, tile.y0, tile.width, tile.height, tile.pixels);
    if (expected != tile.tile_hash) {
      throw ProtocolError("tile payload hash mismatch");
    }
    tile_fb.reset(tile.width, tile.height);
    std::copy(tile.pixels.begin(), tile.pixels.end(), tile_fb.pixels().data());
    fb_.copy_rect_from(tile_fb, tile.x0, tile.y0);
    result.wire_bytes += kHeaderBytes + payload.size();
  }
  if (!read_message(socket_, &type, &payload)) {
    throw ProtocolError("connection closed mid-frame");
  }
  if (type != MsgType::kFrameEnd) {
    throw ProtocolError("expected kFrameEnd after the last tile");
  }
  result.wire_bytes += kHeaderBytes + payload.size();

  // End-to-end bit-exactness: the reassembled framebuffer must hash to
  // exactly what the server engine produced.
  if (fb_.content_hash() != begin.content_hash) {
    throw ProtocolError("reassembled frame hash does not match the engine");
  }
  frames_.push_back(FrameEvent{result, std::nullopt});
}

void FrameClient::pump_one() {
  MsgType type{};
  std::vector<std::uint8_t> payload;
  if (!read_message(socket_, &type, &payload)) throw ConnectionClosed();
  WireReader reader(payload);
  switch (type) {
    case MsgType::kSubmitAck: {
      const SubmitAckMsg ack = SubmitAckMsg::decode(reader);
      acks_[ack.client_tag] = ack.job_id;
      break;
    }
    case MsgType::kFrameBegin:
      apply_frame_sequence(FrameBeginMsg::decode(reader), payload.size());
      break;
    case MsgType::kJobError: {
      const JobErrorMsg err = JobErrorMsg::decode(reader);
      FrameEvent event;
      event.failure.emplace(static_cast<JobErrorCode>(err.code), err.message);
      frames_.push_back(std::move(event));
      break;
    }
    case MsgType::kHealthResp:
      health_.push_back(HealthRespMsg::decode(reader));
      break;
    case MsgType::kError:
      throw util::Error("server error: " + ErrorMsg::decode(reader).message);
    default:
      throw ProtocolError("unexpected message type from server");
  }
}

FrameClient::FrameResult FrameClient::await_frame() {
  while (frames_.empty()) pump_one();
  FrameEvent event = std::move(frames_.front());
  frames_.pop_front();
  if (event.failure.has_value()) throw *event.failure;
  return *event.result;
}

std::int64_t FrameClient::job_id_for(std::uint64_t client_tag) {
  for (;;) {
    const auto it = acks_.find(client_tag);
    if (it != acks_.end()) return it->second;
    pump_one();
  }
}

void FrameClient::cancel(std::int64_t job_id) {
  CancelMsg msg;
  msg.job_id = job_id;
  send_message(socket_, MsgType::kCancel, msg.encode());
}

HealthRespMsg FrameClient::health() {
  send_message(socket_, MsgType::kHealthReq, {});
  while (health_.empty()) pump_one();
  HealthRespMsg h = std::move(health_.front());
  health_.pop_front();
  return h;
}

void FrameClient::finish_writes() { socket_.shutdown_write(); }

}  // namespace dcsn::net
