// Network front end for core::SynthesisService: sessions over local
// sockets, frames as dirty-tile deltas.
//
// Threading model (per server):
//
//   * one accept thread polls the listen socket and reaps finished
//     connections;
//   * per connection, a *reader* thread decodes requests and a *pump*
//     thread resolves submitted tickets in FIFO order and streams the
//     finished frames back.
//
// Writes to a connection interleave from both threads (acks and health
// replies from the reader, frame sequences from the pump), serialized by a
// per-connection write mutex held across a whole logical unit — one control
// message, or one Begin→Tiles→End frame sequence — so a client never sees a
// message splice into the middle of a frame.
//
// Backpressure feeds admission control: the reader blocks once
// `max_inflight` submitted frames are undelivered, which stops draining the
// socket, which fills the kernel buffer, which blocks the client's next
// write. The service therefore never sees more than `max_inflight` queued
// jobs per connection — exactly the bounded queue depth its PerfModel
// admission check reasons about.
//
// Delta encoding: the pump keeps the per-connection baseline (last
// delivered spot snapshot + shadow framebuffer). For each completed frame
// it diffs spot populations (core::diff_spots) and projects changed extents
// onto a wire tile grid (core::dirty_tiles) with the engine's own
// world->pixel mapping and conservative spot extent — the same predicate
// that makes incremental resynthesis sound makes the untransmitted tiles
// provably bit-identical on the client. Degraded frames (stale pixels) and
// the first frame ship full and reset the baseline.
//
// Shutdown is a graceful drain: stop() half-closes every connection's read
// side (clients see EOF, readers stop accepting), pumps deliver every
// already-submitted frame, then the service drains.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "core/spot_geometry.hpp"
#include "core/synthesis_service.hpp"
#include "core/tiling.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "render/framebuffer.hpp"
#include "util/thread_annotations.hpp"

namespace dcsn::net {

struct FrameServerOptions {
  /// AF_UNIX path to listen on.
  std::string socket_path;
  /// Forwarded to the owned SynthesisService (drivers, SLO knobs, clocks).
  core::ServiceConfig service;
  /// Tile count of the wire delta grid (near-square, may round). Finer than
  /// the engine's render tiling: wire tiles only bound *transmission*, so a
  /// small grid cell around each moved spot beats re-sending a render tile.
  int wire_tiles = 96;
  /// Submitted-but-undelivered frames per connection before the reader
  /// stops draining the socket (the backpressure ceiling).
  int max_inflight = 4;
};

class FrameServer {
 public:
  explicit FrameServer(FrameServerOptions options,
                       core::Runtime& runtime = core::Runtime::global());
  ~FrameServer();  // stop()

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Graceful drain (see file comment). Idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  /// The owned service — tests and benches inspect health()/tile stats.
  [[nodiscard]] core::SynthesisService& service() { return service_; }

  /// Serves one already-connected socket (e.g. Socket::pair()) instead of
  /// an accepted one — loopback tests without a listen path.
  void adopt(Socket socket);

 private:
  struct PendingFrame {
    std::uint64_t client_tag = 0;
    core::SynthesisService::JobTicket ticket;
    /// Owned snapshot of the submitted spots — the pump's diff input.
    std::vector<core::SpotInstance> spots;
  };

  struct Connection {
    explicit Connection(Socket s) : socket(std::move(s)) {}

    /// Reader thread reads; both threads write under write_mutex.
    Socket socket;  // lock-lint: unguarded(reads reader-only; writes serialized by write_mutex)
    /// Serializes whole socket writes — one control message or one
    /// Begin→Tiles→End frame sequence — across the reader and pump threads.
    /// It guards an *action* on the (unguardable fd) socket, not a data
    /// member, hence standalone.
    util::Mutex write_mutex;  // lock-lint: standalone

    util::Mutex mutex;
    util::CondVar cv;
    std::deque<PendingFrame> pending DCSN_GUARDED_BY(mutex);
    bool reader_done DCSN_GUARDED_BY(mutex) = false;
    /// The pump bailed (peer vanished mid-delivery): a reader blocked on
    /// backpressure must not wait for a drain that will never happen.
    bool pump_done DCSN_GUARDED_BY(mutex) = false;

    // Session state: written by the reader while handling kOpenSession —
    // before any PendingFrame exists — and read by the pump afterwards; the
    // pending-queue mutex handoff orders the two.
    core::SynthesisService::SessionId session = 0;  // lock-lint: unguarded(written before first submit, mutex handoff)
    bool session_open = false;  // lock-lint: unguarded(written before first submit, mutex handoff)
    std::unique_ptr<field::VectorField> field;  // lock-lint: unguarded(written before first submit, mutex handoff)
    std::unique_ptr<core::SpotGeometryGenerator> generator;  // lock-lint: unguarded(written before first submit, mutex handoff)
    std::vector<core::Tile> wire_tiles;  // lock-lint: unguarded(written before first submit, mutex handoff)

    // Delta baseline: pump thread only. No shadow framebuffer is needed —
    // determinism (PR 4 lattice) plus the conservative dirty predicate
    // guarantee the client's retained pixels equal the new frame's clean
    // tiles, so the spot snapshot alone defines the baseline.
    std::vector<core::SpotInstance> prev_spots;  // lock-lint: unguarded(pump thread only)
    bool baseline_valid = false;  // lock-lint: unguarded(pump thread only)

    std::atomic<bool> finished{false};  ///< both loops exited (reapable)

    /// Joined (jthread dtor) when the Connection is reaped by the accept
    /// loop or destroyed by stop() — after the loops flagged `finished` or
    /// after shutdown_read unblocked them.
    std::jthread reader;  // lock-lint: unguarded(joined after loops exit)
    std::jthread pump;    // lock-lint: unguarded(joined after loops exit)
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  void pump_loop(Connection& conn);
  void handle_open_session(Connection& conn, WireReader& reader);
  void handle_submit(Connection& conn, WireReader& reader);
  /// Streams one finished frame (full or delta) under the write mutex.
  void send_frame(Connection& conn, PendingFrame& frame,
                  core::SynthesisResult& result);
  void send_control(Connection& conn, MsgType type,
                    std::span<const std::uint8_t> payload);
  void spawn_connection(Socket socket) DCSN_EXCLUDES(mutex_);
  void reap_finished(bool all) DCSN_EXCLUDES(mutex_);

  FrameServerOptions options_;  // lock-lint: unguarded(immutable after construction)
  core::SynthesisService service_;  // lock-lint: unguarded(internally synchronized)
  Socket listener_;  // lock-lint: unguarded(accept thread reads; stop() only shuts down)
  std::atomic<bool> stopping_{false};

  util::Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_ DCSN_GUARDED_BY(mutex_);

  std::jthread accept_thread_;  // lock-lint: unguarded(joined in stop)
};

}  // namespace dcsn::net
