// Thin RAII layer over local (AF_UNIX) stream sockets, plus the framed
// message I/O the protocol rides on.
//
// Local sockets only: the server fronts an in-process SynthesisService for
// co-located clients (the paper's interactive browser), so there is no TLS,
// no auth, and no hostname handling here — just file-system-addressed
// stream endpoints with the kernel's flow control, which is what the
// backpressure design leans on (a client that outruns the server blocks in
// write()).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "util/error.hpp"

namespace dcsn::net {

/// Peer closed the connection cleanly between messages. Distinct from
/// ProtocolError: EOF *inside* a message is a truncation, not a goodbye.
class ConnectionClosed : public util::Error {
 public:
  ConnectionClosed() : util::Error("connection closed by peer") {}
};

/// Move-only owned file descriptor with blocking byte-stream helpers.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Blocking write of the whole buffer. Throws util::Error on any socket
  /// error (EPIPE included — callers treat it as the peer going away).
  void send_all(const void* data, std::size_t n);

  /// Blocking read of exactly `n` bytes. Returns false on clean EOF before
  /// the first byte; throws ProtocolError when the stream ends mid-buffer
  /// (a truncated message) and util::Error on socket errors.
  [[nodiscard]] bool recv_exact(void* data, std::size_t n);

  /// Half-close helpers (see shutdown(2)). shutdown_read unblocks a peer's
  /// reader with EOF — the server's graceful-drain signal.
  void shutdown_read();
  void shutdown_write();

  void close();

  /// Connected AF_UNIX pair (socketpair(2)) — loopback tests without a
  /// file-system path.
  [[nodiscard]] static std::pair<Socket, Socket> pair();

 private:
  int fd_ = -1;
};

/// Binds and listens on an AF_UNIX path (unlinking any stale socket file).
[[nodiscard]] Socket listen_unix(const std::string& path, int backlog = 16);

/// Blocks up to `timeout_ms` for one incoming connection; empty on timeout
/// or when the listen socket was shut down/closed under us (server stop).
[[nodiscard]] std::optional<Socket> accept_connection(Socket& listener,
                                                      int timeout_ms);

/// Connects to an AF_UNIX path.
[[nodiscard]] Socket connect_unix(const std::string& path);

/// Writes one framed protocol message (header + payload) atomically with
/// respect to this call — callers serialize concurrent senders themselves.
void send_message(Socket& socket, MsgType type,
                  std::span<const std::uint8_t> payload);

/// Reads one framed message. Returns false on clean EOF at a message
/// boundary; throws ProtocolError on bad magic, an oversized declared
/// length, unknown type range, or EOF mid-message.
[[nodiscard]] bool read_message(Socket& socket, MsgType* type,
                                std::vector<std::uint8_t>* payload);

}  // namespace dcsn::net
