#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dcsn::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw util::Error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

bool Socket::recv_exact(void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      throw ProtocolError("connection closed mid-message");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

Socket listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw util::Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind " + path);
  }
  if (::listen(s.fd(), backlog) != 0) throw_errno("listen " + path);
  return s;
}

std::optional<Socket> accept_connection(Socket& listener, int timeout_ms) {
  pollfd p{listener.fd(), POLLIN, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if (rc == 0) return std::nullopt;  // timeout
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;  // racing close/shutdown: caller re-checks
  return Socket(fd);
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw util::Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect " + path);
  }
  return s;
}

void send_message(Socket& socket, MsgType type,
                  std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> framed = frame_message(type, payload);
  socket.send_all(framed.data(), framed.size());
}

bool read_message(Socket& socket, MsgType* type,
                  std::vector<std::uint8_t>* payload) {
  std::uint8_t header[kHeaderBytes];
  if (!socket.recv_exact(header, sizeof(header))) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (magic != kMagic) throw ProtocolError("bad message magic");
  const std::uint8_t raw_type = header[4];
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[5 + i]) << (8 * i);
  }
  // Reject the declared length *before* allocating: a corrupt or hostile
  // prefix must not become a multi-gigabyte resize.
  if (len > kMaxPayloadBytes) {
    throw ProtocolError("declared payload length exceeds limit");
  }
  payload->resize(len);
  if (len > 0 && !socket.recv_exact(payload->data(), len)) {
    throw ProtocolError("connection closed mid-message");
  }
  *type = static_cast<MsgType>(raw_type);
  return true;
}

}  // namespace dcsn::net
