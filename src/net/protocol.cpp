#include "net/protocol.hpp"

#include "field/analytic.hpp"
#include "util/hash.hpp"

namespace dcsn::net {

namespace {

[[nodiscard]] std::uint8_t checked_u8_enum(std::uint8_t v, std::uint8_t max,
                                           const char* what) {
  if (v > max) throw ProtocolError(std::string("out-of-range enum: ") + what);
  return v;
}

void encode_rect(WireWriter& w, const field::Rect& r) {
  w.f64(r.x0);
  w.f64(r.y0);
  w.f64(r.x1);
  w.f64(r.y1);
}

[[nodiscard]] field::Rect decode_rect(WireReader& r) {
  field::Rect rect;
  rect.x0 = r.f64();
  rect.y0 = r.f64();
  rect.x1 = r.f64();
  rect.y1 = r.f64();
  return rect;
}

void encode_synthesis(WireWriter& w, const core::SynthesisConfig& c) {
  w.i32(c.texture_width);
  w.i32(c.texture_height);
  w.i64(c.spot_count);
  w.f64(c.spot_radius_px);
  w.u8(static_cast<std::uint8_t>(c.kind));
  w.f64(c.ellipse.max_stretch);
  w.i32(c.bent.mesh_cols);
  w.i32(c.bent.mesh_rows);
  w.f64(c.bent.length_px);
  w.i32(c.bent.trace_substeps);
  w.u8(static_cast<std::uint8_t>(c.profile_shape));
  w.i32(c.profile_resolution);
  w.f64(c.intensity_scale);
  w.u8(c.window.has_value() ? 1 : 0);
  if (c.window.has_value()) encode_rect(w, *c.window);
  w.u64(c.seed);
}

[[nodiscard]] core::SynthesisConfig decode_synthesis(WireReader& r) {
  core::SynthesisConfig c;
  c.texture_width = r.i32();
  c.texture_height = r.i32();
  c.spot_count = r.i64();
  c.spot_radius_px = r.f64();
  c.kind = static_cast<core::SpotKind>(checked_u8_enum(
      r.u8(), static_cast<std::uint8_t>(core::SpotKind::kBent), "SpotKind"));
  c.ellipse.max_stretch = r.f64();
  c.bent.mesh_cols = r.i32();
  c.bent.mesh_rows = r.i32();
  c.bent.length_px = r.f64();
  c.bent.trace_substeps = r.i32();
  c.profile_shape = static_cast<render::SpotShape>(checked_u8_enum(
      r.u8(), static_cast<std::uint8_t>(render::SpotShape::kRing), "SpotShape"));
  c.profile_resolution = r.i32();
  c.intensity_scale = r.f64();
  if (r.u8() != 0) c.window = decode_rect(r);
  c.seed = r.u64();
  return c;
}

void encode_dnc(WireWriter& w, const core::DncConfig& c) {
  w.i32(c.processors);
  w.i32(c.pipes);
  w.i64(c.chunk_spots);
  w.f64(c.bus_bytes_per_second);
  w.f64(c.state_change_seconds);
  w.f64(c.raster_cost_multiplier);
  w.u8(static_cast<std::uint8_t>(c.raster_algorithm));
  w.u32(static_cast<std::uint32_t>(c.pipe_queue_capacity));
  w.u8(c.tiled ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(c.tile_strategy));
  w.u8(c.steal ? 1 : 0);
  w.u8(c.tile_cache ? 1 : 0);
}

[[nodiscard]] core::DncConfig decode_dnc(WireReader& r) {
  core::DncConfig c;
  c.processors = r.i32();
  c.pipes = r.i32();
  c.chunk_spots = r.i64();
  c.bus_bytes_per_second = r.f64();
  c.state_change_seconds = r.f64();
  c.raster_cost_multiplier = r.f64();
  c.raster_algorithm = static_cast<render::RasterAlgorithm>(checked_u8_enum(
      r.u8(), static_cast<std::uint8_t>(render::RasterAlgorithm::kReference),
      "RasterAlgorithm"));
  c.pipe_queue_capacity = r.u32();
  c.tiled = r.u8() != 0;
  c.tile_strategy = static_cast<core::TileStrategy>(checked_u8_enum(
      r.u8(), static_cast<std::uint8_t>(core::TileStrategy::kCostBalanced),
      "TileStrategy"));
  c.steal = r.u8() != 0;
  c.tile_cache = r.u8() != 0;
  return c;
}

}  // namespace

void FieldSpec::encode(WireWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.f64(a);
  w.f64(b);
  w.f64(c);
  w.f64(d);
  encode_rect(w, domain);
}

FieldSpec FieldSpec::decode(WireReader& r) {
  FieldSpec s;
  s.kind = static_cast<Kind>(checked_u8_enum(
      r.u8(), static_cast<std::uint8_t>(Kind::kDoubleGyre), "FieldSpec::Kind"));
  s.a = r.f64();
  s.b = r.f64();
  s.c = r.f64();
  s.d = r.f64();
  s.domain = decode_rect(r);
  return s;
}

std::unique_ptr<field::VectorField> FieldSpec::make_field() const {
  switch (kind) {
    case Kind::kUniform:
      return field::analytic::uniform({a, b}, domain);
    case Kind::kRankineVortex:
      return field::analytic::rankine_vortex({a, b}, c, d, domain);
    case Kind::kTaylorGreen:
      return field::analytic::taylor_green(a, domain);
    case Kind::kDoubleGyre:
      return field::analytic::double_gyre(a, b, c, d);
  }
  throw ProtocolError("unknown field kind");
}

std::vector<std::uint8_t> OpenSessionMsg::encode() const {
  WireWriter w;
  w.u32(version);
  w.i32(priority);
  field.encode(w);
  encode_synthesis(w, synthesis);
  encode_dnc(w, dnc);
  return w.take();
}

OpenSessionMsg OpenSessionMsg::decode(WireReader& r) {
  OpenSessionMsg m;
  m.version = r.u32();
  if (m.version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version");
  }
  m.priority = r.i32();
  m.field = FieldSpec::decode(r);
  m.synthesis = decode_synthesis(r);
  m.dnc = decode_dnc(r);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> SubmitMsg::encode() const {
  WireWriter w;
  w.u64(client_tag);
  w.u8(flags);
  w.f64(deadline_seconds);
  w.u8(policy);
  w.i32(max_retries);
  w.u32(static_cast<std::uint32_t>(spots.size()));
  for (const core::SpotInstance& s : spots) {
    w.f64(s.position.x);
    w.f64(s.position.y);
    w.f64(s.intensity);
  }
  return w.take();
}

SubmitMsg SubmitMsg::decode(WireReader& r) {
  SubmitMsg m;
  m.client_tag = r.u64();
  m.flags = r.u8();
  m.deadline_seconds = r.f64();
  m.policy = checked_u8_enum(r.u8(), 2, "DeadlinePolicy");
  m.max_retries = r.i32();
  const std::uint32_t count = r.u32();
  if (static_cast<std::size_t>(count) * 24 > r.remaining()) {
    throw ProtocolError("spot count exceeds payload");
  }
  m.spots.resize(count);
  for (core::SpotInstance& s : m.spots) {
    s.position.x = r.f64();
    s.position.y = r.f64();
    s.intensity = r.f64();
  }
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> CancelMsg::encode() const {
  WireWriter w;
  w.i64(job_id);
  return w.take();
}

CancelMsg CancelMsg::decode(WireReader& r) {
  CancelMsg m;
  m.job_id = r.i64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> SessionOpenedMsg::encode() const {
  WireWriter w;
  w.i64(session_id);
  w.i32(width);
  w.i32(height);
  return w.take();
}

SessionOpenedMsg SessionOpenedMsg::decode(WireReader& r) {
  SessionOpenedMsg m;
  m.session_id = r.i64();
  m.width = r.i32();
  m.height = r.i32();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> SubmitAckMsg::encode() const {
  WireWriter w;
  w.u64(client_tag);
  w.i64(job_id);
  return w.take();
}

SubmitAckMsg SubmitAckMsg::decode(WireReader& r) {
  SubmitAckMsg m;
  m.client_tag = r.u64();
  m.job_id = r.i64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> FrameBeginMsg::encode() const {
  WireWriter w;
  w.u64(client_tag);
  w.i64(job_id);
  w.u64(content_hash);
  w.i32(width);
  w.i32(height);
  w.u32(tile_count);
  w.u8(flags);
  w.i64(service_seq);
  w.i32(attempts);
  return w.take();
}

FrameBeginMsg FrameBeginMsg::decode(WireReader& r) {
  FrameBeginMsg m;
  m.client_tag = r.u64();
  m.job_id = r.i64();
  m.content_hash = r.u64();
  m.width = r.i32();
  m.height = r.i32();
  m.tile_count = r.u32();
  m.flags = r.u8();
  m.service_seq = r.i64();
  m.attempts = r.i32();
  r.expect_end();
  return m;
}

std::uint64_t tile_payload_hash(std::int32_t x0, std::int32_t y0,
                                std::int32_t width, std::int32_t height,
                                std::span<const float> pixels) {
  const std::int32_t rect[4] = {x0, y0, width, height};
  std::uint64_t h = util::fnv1a(rect, sizeof(rect));
  return util::fnv1a(pixels.data(), pixels.size_bytes(), h);
}

std::vector<std::uint8_t> FrameTileMsg::encode() const {
  WireWriter w;
  w.i32(x0);
  w.i32(y0);
  w.i32(width);
  w.i32(height);
  w.u64(tile_hash);
  for (const float p : pixels) w.f32(p);
  return w.take();
}

FrameTileMsg FrameTileMsg::decode(WireReader& r) {
  FrameTileMsg m;
  m.x0 = r.i32();
  m.y0 = r.i32();
  m.width = r.i32();
  m.height = r.i32();
  m.tile_hash = r.u64();
  if (m.width <= 0 || m.height <= 0) throw ProtocolError("empty tile rect");
  const std::size_t count =
      static_cast<std::size_t>(m.width) * static_cast<std::size_t>(m.height);
  if (count * 4 != r.remaining()) {
    throw ProtocolError("tile pixel payload does not match rect");
  }
  m.pixels.resize(count);
  for (float& p : m.pixels) p = r.f32();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> FrameEndMsg::encode() const {
  WireWriter w;
  w.u64(client_tag);
  return w.take();
}

FrameEndMsg FrameEndMsg::decode(WireReader& r) {
  FrameEndMsg m;
  m.client_tag = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> JobErrorMsg::encode() const {
  WireWriter w;
  w.u64(client_tag);
  w.u8(code);
  w.str(message);
  return w.take();
}

JobErrorMsg JobErrorMsg::decode(WireReader& r) {
  JobErrorMsg m;
  m.client_tag = r.u64();
  m.code = r.u8();
  m.message = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> HealthRespMsg::encode() const {
  WireWriter w;
  w.i64(completed);
  w.i64(degraded);
  w.i64(failed);
  w.i64(retries);
  w.i64(timeouts);
  w.i64(canceled);
  w.i64(rejected);
  w.i64(quarantined);
  w.i64(yielded);
  w.i64(breaker_trips);
  w.f64(clock_now);
  w.i32(open_sessions);
  return w.take();
}

HealthRespMsg HealthRespMsg::decode(WireReader& r) {
  HealthRespMsg m;
  m.completed = r.i64();
  m.degraded = r.i64();
  m.failed = r.i64();
  m.retries = r.i64();
  m.timeouts = r.i64();
  m.canceled = r.i64();
  m.rejected = r.i64();
  m.quarantined = r.i64();
  m.yielded = r.i64();
  m.breaker_trips = r.i64();
  m.clock_now = r.f64();
  m.open_sessions = r.i32();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> ErrorMsg::encode() const {
  WireWriter w;
  w.str(message);
  return w.take();
}

ErrorMsg ErrorMsg::decode(WireReader& r) {
  ErrorMsg m;
  m.message = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> frame_message(MsgType type,
                                        std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw ProtocolError("message payload exceeds kMaxPayloadBytes");
  }
  WireWriter w;
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

}  // namespace dcsn::net
