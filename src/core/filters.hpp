// Texture post-filters ("additional spot filtering operations may be applied
// to the map", pipeline step 3; filtering enhancements are from de Leeuw &
// van Wijk '95).
//
// High-pass filtering removes the low-frequency blotchiness of raw spot
// noise so the fine advected streaks read clearly; contrast normalization
// maps the result onto the displayable range independent of spot count.
#pragma once

#include "render/framebuffer.hpp"

namespace dcsn::core {

/// Separable box blur with the given half-width (radius), border-clamped.
/// radius == 0 is a copy.
[[nodiscard]] render::Framebuffer box_blur(const render::Framebuffer& texture,
                                           int radius);

/// High-pass: texture minus its box blur. The classic spot filter.
[[nodiscard]] render::Framebuffer high_pass(const render::Framebuffer& texture,
                                            int radius);

/// Affine remap so that mean -> 0 and `sigmas` standard deviations -> ±1.
/// Gives frames of an animation a stable contrast.
void normalize_contrast(render::Framebuffer& texture, double sigmas = 2.0);

/// Histogram equalization onto [-1, 1] (256 bins) — the strongest contrast
/// enhancement, used when textures must stay readable across extreme
/// parameter settings.
void equalize_histogram(render::Framebuffer& texture);

}  // namespace dcsn::core
