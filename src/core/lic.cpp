#include "core/lic.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>
#include <cmath>

#include "render/overlay.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dcsn::core {

render::Framebuffer make_lic_noise(int width, int height, std::uint64_t seed) {
  render::Framebuffer noise(width, height);
  util::Rng rng(seed);
  auto px = noise.pixels();
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      px(x, y) = static_cast<float>(rng.intensity());
  return noise;
}

render::Framebuffer lic(const field::VectorField& f,
                        const render::Framebuffer& noise, const LicConfig& config) {
  DCSN_CHECK(noise.width() == config.width && noise.height() == config.height,
             "noise texture must match the LIC output size");
  DCSN_CHECK(config.kernel_half_length_px > 0.0, "kernel length must be positive");
  DCSN_CHECK(config.step_px > 0.0, "step must be positive");

  render::Framebuffer out(config.width, config.height);
  const render::WorldToImage mapping(f.domain(), config.width, config.height);
  const int steps =
      std::max(1, static_cast<int>(config.kernel_half_length_px / config.step_px));

  const auto noise_px = noise.pixels();
  auto out_px = out.pixels();
  auto sample_noise = [&](double px, double py) -> float {
    const int x = std::clamp(static_cast<int>(px), 0, config.width - 1);
    const int y = std::clamp(static_cast<int>(py), 0, config.height - 1);
    return noise_px(x, y);
  };

  // [[maybe_unused]]: without -fopenmp the pragma below is discarded and
  // this would otherwise be the TU's only use.
  [[maybe_unused]] const int threads =
      config.threads > 0 ? config.threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 4) num_threads(threads)
  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) {
      double sum = sample_noise(x + 0.5, y + 0.5);
      int taps = 1;
      // March both directions along the flow in image space; unit-speed so
      // the kernel length is measured in pixels regardless of |v|.
      for (const double direction : {+1.0, -1.0}) {
        double px = x + 0.5;
        double py = y + 0.5;
        for (int k = 0; k < steps; ++k) {
          const field::Vec2 world = mapping.unmap(px, py);
          const field::Vec2 v = f.sample(world);
          // World velocity to image direction: x scales, y flips.
          const double ix = v.x;
          const double iy = -v.y;
          const double len = std::hypot(ix, iy);
          if (len < 1e-12) break;  // stagnation: kernel truncates
          px += direction * config.step_px * ix / len;
          py += direction * config.step_px * iy / len;
          if (px < 0.0 || px >= config.width || py < 0.0 || py >= config.height)
            break;
          sum += sample_noise(px, py);
          ++taps;
        }
      }
      out_px(x, y) = static_cast<float>(sum / taps);
    }
  }
  return out;
}

}  // namespace dcsn::core
