#include "core/spot_geometry.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace dcsn::core {

namespace {
constexpr double kMinDirection = 1e-12;
}

SpotGeometryGenerator::SpotGeometryGenerator(const SynthesisConfig& config,
                                             const field::VectorField& f)
    : config_(config),
      field_(&f),
      mapping_(config.window.value_or(f.domain()), config.texture_width,
               config.texture_height),
      tracer_(particles::TracerConfig{}) {
  DCSN_CHECK(config.texture_width > 0 && config.texture_height > 0,
             "texture dimensions must be positive");
  DCSN_CHECK(config.spot_radius_px > 0.0, "spot radius must be positive");
  DCSN_CHECK(config.bent.mesh_cols >= 2 && config.bent.mesh_rows >= 2,
             "bent spot mesh needs at least 2x2 vertices");
  DCSN_CHECK(config.bent.trace_substeps >= 1, "trace substeps must be >= 1");

  const field::Rect view = config.window.value_or(f.domain());
  world_per_px_ = 0.5 * (view.width() / config.texture_width +
                         view.height() / config.texture_height);
  const double max_mag = f.max_magnitude();
  inv_max_mag_ = max_mag > 0.0 ? 1.0 / max_mag : 0.0;

  // Fixed arc length per integration substep so the traced spine spans
  // length_px regardless of local velocity magnitude.
  const double length_world = config.bent.length_px * world_per_px_;
  const int segments = (config.bent.mesh_cols - 1) * config.bent.trace_substeps;
  particles::TracerConfig tc;
  tc.step_length = length_world / segments;
  tc.method = particles::Integrator::kRk4;
  tracer_ = particles::StreamlineTracer(tc);
}

void SpotGeometryGenerator::generate(const SpotInstance& spot,
                                     render::CommandBuffer& out) const {
  switch (config_.kind) {
    case SpotKind::kPoint:
      generate_point(spot, out);
      return;
    case SpotKind::kEllipse:
      generate_ellipse(spot, out);
      return;
    case SpotKind::kBent:
      generate_bent(spot, out);
      return;
  }
}

double SpotGeometryGenerator::max_extent_px() const {
  switch (config_.kind) {
    case SpotKind::kPoint:
      return config_.spot_radius_px + 1.0;
    case SpotKind::kEllipse:
      return config_.spot_radius_px * config_.ellipse.max_stretch + 1.0;
    case SpotKind::kBent:
      return 0.5 * config_.bent.length_px + config_.spot_radius_px + 1.0;
  }
  return config_.spot_radius_px + 1.0;
}

field::Vec2 SpotGeometryGenerator::map_direction(field::Vec2 d) const {
  // Linear part of the world->pixel map; y flips because image rows grow
  // downward while world y grows upward.
  const field::Rect& world = mapping_.world();
  return {d.x * (config_.texture_width / world.width()),
          -d.y * (config_.texture_height / world.height())};
}

void SpotGeometryGenerator::generate_point(const SpotInstance& spot,
                                           render::CommandBuffer& out) const {
  const auto [px, py] = mapping_.map(spot.position);
  const auto h = static_cast<float>(config_.spot_radius_px);
  const auto intensity =
      static_cast<float>(spot.intensity * config_.intensity_scale);
  auto verts = out.add_mesh(intensity, 2, 2);
  const auto cx = static_cast<float>(px);
  const auto cy = static_cast<float>(py);
  verts[0] = {cx - h, cy - h, 0.0f, 0.0f};
  verts[1] = {cx + h, cy - h, 1.0f, 0.0f};
  verts[2] = {cx - h, cy + h, 0.0f, 1.0f};
  verts[3] = {cx + h, cy + h, 1.0f, 1.0f};
}

void SpotGeometryGenerator::generate_ellipse(const SpotInstance& spot,
                                             render::CommandBuffer& out) const {
  const field::Vec2 velocity = field_->sample(spot.position);
  const field::Vec2 dir_px = map_direction(velocity);
  const double dir_len = dir_px.length();
  if (dir_len < kMinDirection) {
    generate_point(spot, out);
    return;
  }

  // Stretch grows with relative speed; area preserved (a*b = radius^2) so
  // every spot deposits the same energy (van Wijk '91 spot transformation).
  const double rel = std::min(velocity.length() * inv_max_mag_, 1.0);
  const double stretch = 1.0 + (config_.ellipse.max_stretch - 1.0) * rel;
  const double a = config_.spot_radius_px * stretch;
  const double b = config_.spot_radius_px / stretch;

  const field::Vec2 along = dir_px / dir_len;
  const field::Vec2 across = along.perp();
  const auto [px, py] = mapping_.map(spot.position);
  const field::Vec2 center{px, py};

  const field::Vec2 ea = along * a;
  const field::Vec2 eb = across * b;
  const auto intensity =
      static_cast<float>(spot.intensity * config_.intensity_scale);
  auto verts = out.add_mesh(intensity, 2, 2);
  auto put = [](render::MeshVertex& v, field::Vec2 p, float u, float w) {
    v = {static_cast<float>(p.x), static_cast<float>(p.y), u, w};
  };
  put(verts[0], center - ea - eb, 0.0f, 0.0f);
  put(verts[1], center + ea - eb, 1.0f, 0.0f);
  put(verts[2], center - ea + eb, 0.0f, 1.0f);
  put(verts[3], center + ea + eb, 1.0f, 1.0f);
}

void SpotGeometryGenerator::generate_bent(const SpotInstance& spot,
                                          render::CommandBuffer& out) const {
  const int cols = config_.bent.mesh_cols;
  const int rows = config_.bent.mesh_rows;
  const int substeps = config_.bent.trace_substeps;

  // Trace half the spine upstream, half downstream, at substep resolution.
  const int fwd_segments = (cols - 1) / 2;
  const int bwd_segments = (cols - 1) - fwd_segments;
  const particles::Streamline line = tracer_.trace(
      *field_, spot.position, fwd_segments * substeps, bwd_segments * substeps);

  // Keep every substeps-th sample; the rest only improved accuracy.
  struct SpinePoint {
    field::Vec2 pos_px;
    field::Vec2 normal_px;
  };
  std::array<SpinePoint, 256> spine_storage;
  DCSN_CHECK(cols <= static_cast<int>(spine_storage.size()),
             "bent spot mesh_cols exceeds the supported maximum of 256");
  int spine_count = 0;

  const auto seed = static_cast<std::ptrdiff_t>(line.seed_index);
  const auto total = static_cast<std::ptrdiff_t>(line.size());
  for (std::ptrdiff_t k = seed % substeps; k < total; k += substeps) {
    const field::Vec2 p = line.points[static_cast<std::size_t>(k)];
    const field::Vec2 t = line.tangents[static_cast<std::size_t>(k)];
    const auto [px, py] = mapping_.map(p);
    const field::Vec2 tangent_px = map_direction(t);
    const double len = tangent_px.length();
    SpinePoint sp;
    sp.pos_px = {px, py};
    sp.normal_px = len > kMinDirection ? tangent_px.perp() / len
                                       : field::Vec2{0.0, 1.0};
    spine_storage[static_cast<std::size_t>(spine_count++)] = sp;
    if (spine_count == cols) break;
  }

  if (spine_count < 2) {
    // Stagnation or immediate domain exit: degrade to an untransformed spot.
    generate_point(spot, out);
    return;
  }

  const double width_px = 2.0 * config_.spot_radius_px;
  const auto intensity =
      static_cast<float>(spot.intensity * config_.intensity_scale);
  auto verts = out.add_mesh(intensity, spine_count, rows);
  for (int j = 0; j < rows; ++j) {
    const double across = (static_cast<double>(j) / (rows - 1) - 0.5) * width_px;
    const auto v_coord = static_cast<float>(j) / static_cast<float>(rows - 1);
    for (int i = 0; i < spine_count; ++i) {
      const SpinePoint& sp = spine_storage[static_cast<std::size_t>(i)];
      const field::Vec2 p = sp.pos_px + sp.normal_px * across;
      const auto u_coord = static_cast<float>(i) / static_cast<float>(spine_count - 1);
      verts[static_cast<std::size_t>(j) * static_cast<std::size_t>(spine_count) +
            static_cast<std::size_t>(i)] = {static_cast<float>(p.x),
                                            static_cast<float>(p.y), u_coord, v_coord};
    }
  }
}

}  // namespace dcsn::core
