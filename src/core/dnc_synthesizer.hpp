// The divide-and-conquer spot noise engine — the paper's contribution.
//
// The spot collection is partitioned into disjoint sets, one per process
// group. A process group is one master plus zero or more slaves mapped onto
// the available processors, driving exactly one graphics pipe (paper §4):
//
//   * the master owns the pipe's context: it is the only thread that
//     submits commands, and it performs spot-shape calculation itself
//     whenever it would otherwise idle (or has no slaves at all);
//   * slaves claim chunks of the group's spot set, transform them into
//     command buffers and hand the buffers to their master;
//   * each pipe renders its group's spots into a partial texture; after all
//     groups complete, partial textures are gathered across the bus and
//     blended sequentially — the overhead term c of eq. 3.2.
//
// With DncConfig::tiled set, groups work on disjoint texture regions
// instead (texture decomposition): spots are assigned to regions by
// location in a preprocessing step, spots near boundaries are duplicated
// into every region they may touch, and the final compose is a cheap copy.
//
// Scheduling is load-balanced (see docs/ARCHITECTURE.md, "Scheduling & load
// balancing"): every group's spot set sits behind a StealableWorkCounter,
// and once a worker's own group drains it steals chunk ranges from the most
// loaded group. In contiguous mode stolen geometry is submitted through the
// thief's own master/pipe (every pipe renders the full texture, addition
// commutes); in tiled mode it is routed back to the owning group's inbox,
// because only that group's pipe renders the owning region. Tiled mode can
// additionally derive its regions from the frame's spot distribution
// (TileStrategy::kCostBalanced), splitting the texture into regions of
// approximately equal work instead of a fixed grid.
//
// Process groups persist across frames; synthesize() is called once per
// animation frame with that frame's field and spot set, which is what makes
// the algorithm usable for the paper's interactive steering and browsing
// applications.
#pragma once

#include <atomic>
#include <barrier>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/frame_delta.hpp"
#include "core/spot_geometry.hpp"
#include "core/spot_params.hpp"
#include "core/tiling.hpp"
#include "render/bus.hpp"
#include "render/compose.hpp"
#include "render/pipe.hpp"
#include "util/queue.hpp"
#include "util/stopwatch.hpp"
#include "util/threading.hpp"

namespace dcsn::core {

/// How tiled mode carves the texture into per-pipe regions.
enum class TileStrategy {
  kGrid,          ///< fixed near-square grid, independent of the spots
  kCostBalanced,  ///< per-frame kd-cut balancing per-region spot work
};

struct DncConfig {
  int processors = 4;  ///< total worker threads (masters included), the nP of eq. 3.2
  int pipes = 1;       ///< graphics pipes / process groups, the nG of eq. 3.2
  /// Spots per command buffer: the streaming granularity from processors to
  /// pipes. Small enough to overlap generation with rendering, large enough
  /// to amortize queue traffic.
  std::int64_t chunk_spots = 32;
  /// Shared host<->graphics bus bandwidth; 0 disables the bus model. The
  /// paper's Onyx2 bus moves 800 MB/s.
  double bus_bytes_per_second = 0.0;
  /// Pipe state-change sync latency (see render::PipeConfig).
  double state_change_seconds = 20e-6;
  /// >1 slows rasterization to model a weaker pipe (ablations only).
  double raster_cost_multiplier = 1.0;
  /// Triangle fill algorithm the pipes rasterize with. kSpan is the fast
  /// span-based scanline kernel; kReference is the bbox-walk oracle
  /// (equivalence tests, bench_raster_kernel ablation).
  render::RasterAlgorithm raster_algorithm = render::RasterAlgorithm::kSpan;
  std::size_t pipe_queue_capacity = 64;
  /// Texture decomposition instead of full-texture gather-blend.
  bool tiled = false;
  /// Region layout in tiled mode (ignored otherwise).
  TileStrategy tile_strategy = TileStrategy::kGrid;
  /// Cross-group work stealing: idle workers pull chunk ranges from the most
  /// loaded group once their own group's counter drains. Off reproduces the
  /// static partition (the bench_ablation_balance baseline).
  bool steal = true;
};

/// Everything measured about one synthesized frame. The benches derive the
/// paper's numbers from these.
struct FrameStats {
  double frame_seconds = 0.0;    ///< wall clock for the whole frame
  double genP_seconds = 0.0;     ///< CPU spot-shape time, summed over workers
  double genT_seconds = 0.0;     ///< pipe busy time, summed over pipes
  double gather_seconds = 0.0;   ///< sequential readback + blend (term c)
  double assign_seconds = 0.0;   ///< tiling preprocessing (tiled mode only)
  std::int64_t spots = 0;            ///< input spot count
  std::int64_t spots_submitted = 0;  ///< includes tiling duplicates
  std::int64_t duplicated_spots = 0;
  std::int64_t vertices = 0;
  std::uint64_t geometry_bytes = 0;  ///< vertex traffic to the pipes
  std::uint64_t readback_bytes = 0;  ///< texture traffic back to the host
  double pipe_stall_seconds = 0.0;   ///< pipes waiting on the bus
  double pipe_state_seconds = 0.0;   ///< pipes executing state changes
  render::RasterStats raster;

  // Temporal-coherence accounting (incremental frames only; see
  // core::SynthesisCache). A reused tile skipped its clear, generation,
  // rasterization and readback entirely; its region of the final texture
  // retains the previous frame's bit-exact pixels.
  std::int64_t tiles_reused = 0;   ///< clean tiles served from retention
  std::int64_t spots_skipped = 0;  ///< assignments not generated/rendered

  /// Largest |pixel| of the frame — the canary for the contribution
  /// lattice's exact-summation budget (util::simd::kContributionExactBound,
  /// 128): bit-determinism and incremental retention rest on per-pixel
  /// partial sums staying inside that range, and this is the cheap
  /// necessary-condition monitor. Workloads that push it toward the bound
  /// (it sits around 1 for natural-intensity populations) are leaving the
  /// design envelope; the determinism suite and bench_incremental assert
  /// generous headroom.
  double peak_pixel_magnitude = 0.0;

  // Load-balance accounting.
  std::int64_t stolen_chunks = 0;  ///< chunk ranges taken across groups
  std::int64_t stolen_spots = 0;   ///< spots inside those ranges
  double steal_seconds = 0.0;      ///< CPU time generating stolen chunks (subset of genP)
  /// Static-partition imbalance: max over groups of assigned spots divided
  /// by the per-group mean (1.0 = perfectly even). Measured before stealing.
  double imbalance = 1.0;

  // Eq. 3.2 critical path, from per-thread CPU clocks. genP/genT attribution
  // uses CPU time (ThreadCpuStopwatch), so these stay meaningful when the
  // host has fewer cores than workers + pipes — wall-clock frame_seconds on
  // such a host serializes everything and cannot show a balancing win.
  double genP_critical_seconds = 0.0;  ///< max over workers of generation CPU
  double genT_critical_seconds = 0.0;  ///< max over pipes of busy CPU
  /// assign + max(genP critical, genT critical) + gather: the frame time a
  /// host with one core per worker and pipe would see (generation overlaps
  /// rendering, pipes run concurrently, pre/post processing is sequential).
  double modeled_frame_seconds = 0.0;

  /// Textures per second as the paper's tables report it.
  [[nodiscard]] double textures_per_second() const {
    return frame_seconds > 0.0 ? 1.0 / frame_seconds : 0.0;
  }

  /// Textures per second on the modeled fully-parallel host.
  [[nodiscard]] double modeled_textures_per_second() const {
    return modeled_frame_seconds > 0.0 ? 1.0 / modeled_frame_seconds : 0.0;
  }
};

class DncSynthesizer {
 public:
  DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc);
  ~DncSynthesizer();

  DncSynthesizer(const DncSynthesizer&) = delete;
  DncSynthesizer& operator=(const DncSynthesizer&) = delete;

  /// Synthesizes one texture. `f` and `spots` must stay valid for the call.
  /// If a worker thread throws (e.g. a DCSN_CHECK inside spot generation),
  /// the frame is abandoned and the first exception is rethrown here; the
  /// engine stays usable for subsequent frames.
  ///
  /// `plan` (tiled mode only, normally produced by core::SynthesisCache)
  /// enables temporal reuse: tiles whose flag is clear are not cleared,
  /// generated, rasterized or read back — their region of the final
  /// texture retains the previous frame's pixels, which is bit-identical
  /// to re-rendering them because their spot set did not change. On a
  /// planned frame the tile grid is kept frozen (no kCostBalanced reshape):
  /// the plan was derived against the current grid.
  FrameStats synthesize(const field::VectorField& f,
                        std::span<const SpotInstance> spots,
                        const FramePlan* plan = nullptr);

  [[nodiscard]] const render::Framebuffer& texture() const { return final_; }
  [[nodiscard]] const SynthesisConfig& config() const { return synthesis_; }
  [[nodiscard]] const DncConfig& dnc_config() const { return dnc_; }
  [[nodiscard]] const std::vector<Tile>& tiles() const { return tiles_; }
  [[nodiscard]] render::PipeStats pipe_stats(int pipe) const;

  /// Bumped at the start of every synthesize() call (failed frames
  /// included). SynthesisCache uses it to detect frames it did not commit.
  [[nodiscard]] std::int64_t frame_serial() const { return frame_serial_; }

 private:
  struct Message {
    render::CommandBuffer buffer;
    std::int64_t items = 0;  ///< spots covered by `buffer` (tiled accounting)
    bool done = false;       ///< slave finished its share of the frame
  };

  struct Group {
    std::unique_ptr<render::GraphicsPipe> pipe;
    util::BoundedQueue<Message> inbox{256};
    std::unique_ptr<util::StealableWorkCounter> work;  ///< over the group's local indices
    const std::vector<std::int64_t>* tile_indices = nullptr;  ///< tiled mode
    std::int64_t begin = 0;  ///< contiguous mode: global range [begin, end)
    std::int64_t end = 0;
    std::int64_t total_items = 0;  ///< spots assigned to this group this frame
    int slave_count = 0;
    /// Cleared for a clean tile of an incremental frame: the group renders
    /// nothing (its members still steal for dirty groups) and the gather
    /// retains its texture region.
    bool active = true;
  };

  void worker_loop(int worker_id, int group_id, bool is_master);
  void run_master(Group& group, int group_id, int worker_id);
  void run_slave(Group& group, int group_id, int worker_id);
  render::CommandBuffer generate_chunk(const Group& group,
                                       util::StealableWorkCounter::Range range,
                                       int worker_id);
  /// Largest-remainder victim for a thief from `group_id`; null when every
  /// other group is drained.
  [[nodiscard]] Group* pick_victim(int group_id);
  /// Steals one chunk from `victim` and generates it into `out`, charging
  /// the thief's steal accounting. False when the steal raced with the
  /// owner and nothing was taken.
  bool steal_chunk(Group& victim, int worker_id, Message& out);
  /// Relative per-spot cost weights for the kd-cut; empty means uniform.
  [[nodiscard]] std::vector<double> estimate_spot_costs(
      std::span<const SpotInstance> spots) const;
  /// One steal attempt on behalf of a master; returns true if work was done.
  bool master_steal_once(Group& group, int group_id, int worker_id,
                         std::int64_t& items_done);
  /// Records the first failure, closes every inbox so no worker stays
  /// blocked, and marks the frame failed.
  void fail_frame(std::exception_ptr error);
  void prepare_tiles(std::span<const SpotInstance> spots);
  [[nodiscard]] std::int64_t global_index(const Group& group, std::int64_t local) const;

  SynthesisConfig synthesis_;
  DncConfig dnc_;

  std::shared_ptr<render::Bus> bus_;
  std::vector<Tile> tiles_;            ///< one per group in tiled mode
  std::vector<std::unique_ptr<Group>> groups_;  // Group is immovable (owns a queue)
  render::Framebuffer final_;
  std::int64_t frame_serial_ = 0;

  // Per-frame job state, written by synthesize() before the start barrier.
  const field::VectorField* job_field_ = nullptr;
  std::span<const SpotInstance> job_spots_;
  std::unique_ptr<SpotGeometryGenerator> job_generator_;
  TileAssignment job_assignment_;
  bool stop_ = false;

  // Frame failure protocol: the first worker to throw stores its exception,
  // flips the flag, and closes every inbox; everyone else drains to the end
  // barrier and synthesize() rethrows.
  std::atomic<bool> frame_failed_{false};
  std::mutex error_mutex_;
  std::exception_ptr frame_error_;

  std::vector<double> worker_genP_;   ///< per-worker CPU seconds, last frame
  std::vector<double> worker_steal_seconds_;
  std::vector<std::int64_t> worker_stolen_chunks_;
  std::vector<std::int64_t> worker_stolen_spots_;
  std::barrier<> start_barrier_;
  std::barrier<> end_barrier_;
  std::vector<std::jthread> workers_;  // last member: join before teardown
};

}  // namespace dcsn::core
