// The divide-and-conquer spot noise engine — the paper's contribution.
//
// The spot collection is partitioned into disjoint sets, one per process
// group. A process group is one master plus zero or more slaves mapped onto
// the available processors, driving exactly one graphics pipe (paper §4):
//
//   * the master owns the pipe's context: it is the only thread that
//     submits commands, and it performs spot-shape calculation itself
//     whenever it would otherwise idle (or has no slaves at all);
//   * slaves claim chunks of the group's spot set, transform them into
//     command buffers and hand the buffers to their master;
//   * each pipe renders its group's spots into a partial texture; after all
//     groups complete, partial textures are gathered across the bus and
//     blended sequentially — the overhead term c of eq. 3.2.
//
// With DncConfig::tiled set, groups work on disjoint texture regions
// instead (texture decomposition): spots are assigned to regions by
// location in a preprocessing step, spots near boundaries are duplicated
// into every region they may touch, and the final compose is a cheap copy.
//
// Process groups persist across frames; synthesize() is called once per
// animation frame with that frame's field and spot set, which is what makes
// the algorithm usable for the paper's interactive steering and browsing
// applications.
#pragma once

#include <barrier>
#include <memory>
#include <thread>
#include <vector>

#include "core/spot_geometry.hpp"
#include "core/spot_params.hpp"
#include "core/tiling.hpp"
#include "render/bus.hpp"
#include "render/compose.hpp"
#include "render/pipe.hpp"
#include "util/queue.hpp"
#include "util/stopwatch.hpp"
#include "util/threading.hpp"

namespace dcsn::core {

struct DncConfig {
  int processors = 4;  ///< total worker threads (masters included), the nP of eq. 3.2
  int pipes = 1;       ///< graphics pipes / process groups, the nG of eq. 3.2
  /// Spots per command buffer: the streaming granularity from processors to
  /// pipes. Small enough to overlap generation with rendering, large enough
  /// to amortize queue traffic.
  std::int64_t chunk_spots = 32;
  /// Shared host<->graphics bus bandwidth; 0 disables the bus model. The
  /// paper's Onyx2 bus moves 800 MB/s.
  double bus_bytes_per_second = 0.0;
  /// Pipe state-change sync latency (see render::PipeConfig).
  double state_change_seconds = 20e-6;
  /// >1 slows rasterization to model a weaker pipe (ablations only).
  double raster_cost_multiplier = 1.0;
  std::size_t pipe_queue_capacity = 64;
  /// Texture decomposition instead of full-texture gather-blend.
  bool tiled = false;
};

/// Everything measured about one synthesized frame. The benches derive the
/// paper's numbers from these.
struct FrameStats {
  double frame_seconds = 0.0;    ///< wall clock for the whole frame
  double genP_seconds = 0.0;     ///< CPU spot-shape time, summed over workers
  double genT_seconds = 0.0;     ///< pipe busy time, summed over pipes
  double gather_seconds = 0.0;   ///< sequential readback + blend (term c)
  double assign_seconds = 0.0;   ///< tiling preprocessing (tiled mode only)
  std::int64_t spots = 0;            ///< input spot count
  std::int64_t spots_submitted = 0;  ///< includes tiling duplicates
  std::int64_t duplicated_spots = 0;
  std::int64_t vertices = 0;
  std::uint64_t geometry_bytes = 0;  ///< vertex traffic to the pipes
  std::uint64_t readback_bytes = 0;  ///< texture traffic back to the host
  double pipe_stall_seconds = 0.0;   ///< pipes waiting on the bus
  double pipe_state_seconds = 0.0;   ///< pipes executing state changes
  render::RasterStats raster;

  /// Textures per second as the paper's tables report it.
  [[nodiscard]] double textures_per_second() const {
    return frame_seconds > 0.0 ? 1.0 / frame_seconds : 0.0;
  }
};

class DncSynthesizer {
 public:
  DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc);
  ~DncSynthesizer();

  DncSynthesizer(const DncSynthesizer&) = delete;
  DncSynthesizer& operator=(const DncSynthesizer&) = delete;

  /// Synthesizes one texture. `f` and `spots` must stay valid for the call.
  FrameStats synthesize(const field::VectorField& f,
                        std::span<const SpotInstance> spots);

  [[nodiscard]] const render::Framebuffer& texture() const { return final_; }
  [[nodiscard]] const SynthesisConfig& config() const { return synthesis_; }
  [[nodiscard]] const DncConfig& dnc_config() const { return dnc_; }
  [[nodiscard]] const std::vector<Tile>& tiles() const { return tiles_; }
  [[nodiscard]] render::PipeStats pipe_stats(int pipe) const;

 private:
  struct Message {
    render::CommandBuffer buffer;
    bool done = false;  ///< slave finished its share of the frame
  };

  struct Group {
    std::unique_ptr<render::GraphicsPipe> pipe;
    util::BoundedQueue<Message> inbox{256};
    std::unique_ptr<util::WorkCounter> work;  ///< over the group's local indices
    const std::vector<std::int64_t>* tile_indices = nullptr;  ///< tiled mode
    std::int64_t begin = 0;  ///< contiguous mode: global range [begin, end)
    std::int64_t end = 0;
    int slave_count = 0;
  };

  void worker_loop(int worker_id, int group_id, bool is_master);
  void run_master(Group& group, int worker_id);
  void run_slave(Group& group, int worker_id);
  render::CommandBuffer generate_chunk(const Group& group,
                                       util::WorkCounter::Range range,
                                       int worker_id);
  [[nodiscard]] std::int64_t global_index(const Group& group, std::int64_t local) const;

  SynthesisConfig synthesis_;
  DncConfig dnc_;

  std::shared_ptr<render::Bus> bus_;
  std::vector<Tile> tiles_;            ///< one per group in tiled mode
  std::vector<std::unique_ptr<Group>> groups_;  // Group is immovable (owns a queue)
  render::Framebuffer final_;

  // Per-frame job state, written by synthesize() before the start barrier.
  const field::VectorField* job_field_ = nullptr;
  std::span<const SpotInstance> job_spots_;
  std::unique_ptr<SpotGeometryGenerator> job_generator_;
  TileAssignment job_assignment_;
  bool stop_ = false;

  std::vector<double> worker_genP_;  ///< per-worker CPU seconds, last frame
  std::barrier<> start_barrier_;
  std::barrier<> end_barrier_;
  std::vector<std::jthread> workers_;  // last member: join before teardown
};

}  // namespace dcsn::core
